// Multithreaded stress harness for the sharded observability runtime.
//
// Worker pools hammer every collector concurrently — phase scopes,
// charges, metrics, memory events, host samples, and event-recorder
// rings — then the primary merges and the tests assert that nothing was
// lost, double-counted, or reordered. Built as its own ctest suite
// (label "stress_concurrency") so the TSan CI job can run exactly these
// binaries under -fsanitize=thread; the assertions here are the
// functional half of the contract, TSan is the data-race half.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mpsim/cost_model.hpp"
#include "mpsim/event_log.hpp"
#include "obs/atomic_file.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "obs/threads.hpp"

namespace pdt::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(StressConcurrency, AllCollectorsSurviveConcurrentHammering) {
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;

  Observability o;
  HostProfiler& host = o.enable_host_profiler();
  mpsim::EventRecorder& rec = o.enable_event_log();
  rec.bind(kThreads, mpsim::CostModel{});

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      // Register (and hold) this thread's shard before any worker starts,
      // so the pool provably holds kThreads distinct leases for the whole
      // run — the deterministic anchor/shard counts below rely on it.
      ThreadRegistry::current_shard();
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      const std::string phase = "worker-" + std::to_string(w);
      for (int i = 0; i < kIters; ++i) {
        PhaseScope ph(&o.profiler(), phase);
        LevelScope lv(&o.profiler(), w % 4);
        o.profiler().on_charge(w, mpsim::ChargeKind::Compute, 0.0, 1.0, 0.0,
                               0.0);
        host.on_charge(w, mpsim::ChargeKind::Compute);
        o.metrics().counter("stress.ops").add(1.0);
        o.metrics().histogram("stress.sizes").observe(static_cast<double>(i));
        o.mem_ledger().on_alloc(w, mpsim::MemTag::Records, 64);
        o.mem_ledger().on_free(w, mpsim::MemTag::Records, 64);
        rec.record_charge(w, mpsim::ChargeKind::Compute, 1.0, 0.0, 0.0, 0.0,
                          0, w % 4);
      }
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true);
  for (std::thread& t : pool) t.join();

  constexpr auto kTotal =
      static_cast<std::uint64_t>(kThreads) * static_cast<std::uint64_t>(kIters);

  // Nothing dropped: 2000 events per worker fits every ring.
  EXPECT_EQ(o.profiler().dropped(), 0u);
  EXPECT_EQ(o.mem_ledger().dropped(), 0u);
  EXPECT_EQ(host.dropped(), 0u);
  EXPECT_EQ(rec.ring_dropped(), 0u);

  // Every charge accounted, exactly once.
  std::uint64_t charges = 0;
  for (const PhaseProfiler::Row& r : o.profiler().rows()) {
    charges += r.totals.charges;
  }
  EXPECT_EQ(charges, kTotal);
  EXPECT_EQ(o.metrics().counters().at("stress.ops").value(),
            static_cast<double>(kTotal));
  EXPECT_EQ(o.metrics().histograms().at("stress.sizes").count(), kTotal);
  EXPECT_EQ(o.mem_ledger().events(), 2 * kTotal);
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_EQ(o.mem_ledger().live_bytes(w), 0) << "rank " << w;
  }
  // Each worker's first host sample anchors its interval chain.
  EXPECT_EQ(host.samples(),
            static_cast<std::uint64_t>(kThreads) * (kIters - 1));

  // merge_shards drains every ring and restores global order by stamp.
  const std::size_t merged = rec.merge_shards();
  EXPECT_EQ(merged, kTotal);
  ASSERT_EQ(rec.events().size(), kTotal);
  for (std::size_t i = 1; i < rec.events().size(); ++i) {
    ASSERT_LT(rec.events()[i - 1].seq, rec.events()[i].seq)
        << "merged events must be in causal (stamp) order";
  }
  // Shadow-clock arithmetic applied per merged event: each worker
  // charged its own rank kIters times with dt=1.
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_EQ(rec.clocks()[static_cast<std::size_t>(w)],
              static_cast<double>(kIters))
        << "rank " << w;
  }
  const std::vector<mpsim::EventRecorder::WorkerStats> ws = rec.worker_stats();
  ASSERT_EQ(ws.size(), static_cast<std::size_t>(kThreads));
  std::uint64_t recorded = 0;
  for (const mpsim::EventRecorder::WorkerStats& s : ws) recorded += s.recorded;
  EXPECT_EQ(recorded, kTotal);

  // A collector merge after quiesce leaves the folded views unchanged.
  const std::vector<PhaseProfiler::Row> rows_before = o.profiler().rows();
  o.profiler().merge();
  host.merge();
  o.mem_ledger().merge();
  o.metrics().merge();
  EXPECT_EQ(o.profiler().rows().size(), rows_before.size());
  EXPECT_EQ(o.metrics().counters().at("stress.ops").value(),
            static_cast<double>(kTotal));

  // pdt-threads-v1 renders, and renders deterministically: two
  // back-to-back renders differ at most in the monotonic lock counters.
  std::ostringstream r1;
  std::ostringstream r2;
  write_threads_report(r1, o);
  write_threads_report(r2, o);
  const auto structural = [](std::string s) {
    return s.substr(0, s.find("\"locks\":["));
  };
  EXPECT_EQ(structural(r1.str()), structural(r2.str()));
  EXPECT_NE(r1.str().find("\"name\":\"events\""), std::string::npos);
  EXPECT_NE(r1.str().find("\"name\":\"host\""), std::string::npos);
}

TEST(StressConcurrency, RegistrationChurnKeepsShardIdsDense) {
  const ThreadRegistry::Stats base = ThreadRegistry::instance().stats();
  constexpr int kWaves = 5;
  constexpr int kPerWave = 8;
  int max_id = -1;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> pool;
    std::vector<int> ids(kPerWave, -1);
    for (int i = 0; i < kPerWave; ++i) {
      pool.emplace_back([&, i] {
        ids[static_cast<std::size_t>(i)] = ThreadRegistry::current_shard();
      });
    }
    for (std::thread& t : pool) t.join();
    for (const int id : ids) {
      ASSERT_GE(id, 0);
      max_id = std::max(max_id, id);
    }
  }
  // Lowest-free-id reuse: 40 short-lived threads across 5 waves must not
  // consume 40 ids — each wave reuses the previous wave's.
  EXPECT_LT(max_id, base.active + kPerWave)
      << "released ids must be reused lowest-first";
  const ThreadRegistry::Stats after = ThreadRegistry::instance().stats();
  EXPECT_EQ(after.active, base.active);
  EXPECT_EQ(after.registered, base.registered + kWaves * kPerWave);
}

TEST(StressConcurrency, EventRecorderFullRingDropsAndCountsInsteadOfBlocking) {
  mpsim::EventRecorder rec;
  rec.bind(1, mpsim::CostModel{});
  constexpr std::uint64_t kExtra = 100;
  std::thread t([&] {
    const std::uint64_t n = mpsim::EventRecorder::kRingCapacity + kExtra;
    for (std::uint64_t i = 0; i < n; ++i) {
      rec.record_charge(0, mpsim::ChargeKind::Compute, 1.0, 0.0, 0.0, 0.0, 0,
                        -1);
    }
  });
  t.join();
  EXPECT_EQ(rec.ring_dropped(), kExtra)
      << "overflow must drop and count, never block or grow";
  const std::size_t merged = rec.merge_shards();
  EXPECT_EQ(merged, mpsim::EventRecorder::kRingCapacity);
  EXPECT_EQ(rec.events().size(), mpsim::EventRecorder::kRingCapacity);
  EXPECT_EQ(rec.merged_events(), mpsim::EventRecorder::kRingCapacity);
}

TEST(StressConcurrency, AtomicFileConcurrentWritersOnDistinctPaths) {
  const std::string dir = ::testing::TempDir();
  constexpr int kWriters = 4;
  std::vector<std::string> paths;
  for (int i = 0; i < kWriters; ++i) {
    paths.push_back(dir + "/stress_distinct_" + std::to_string(i) + ".json");
    std::filesystem::remove(paths.back());
  }
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  // NOT vector<bool>: adjacent elements must be distinct memory
  // locations so the concurrent per-writer stores don't race.
  std::array<bool, kWriters> ok{};
  for (int i = 0; i < kWriters; ++i) {
    pool.emplace_back([&, i] {
      while (!go.load()) std::this_thread::yield();
      AtomicFile f(paths[static_cast<std::size_t>(i)]);
      if (!f.ok()) return;
      f.stream() << "{\"writer\": " << i << "}\n";
      ok[static_cast<std::size_t>(i)] = f.commit();
    });
  }
  go.store(true);
  for (std::thread& t : pool) t.join();
  for (int i = 0; i < kWriters; ++i) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(i)]) << paths[i];
    EXPECT_EQ(read_file(paths[static_cast<std::size_t>(i)]),
              "{\"writer\": " + std::to_string(i) + "}\n");
    std::filesystem::remove(paths[static_cast<std::size_t>(i)]);
  }
}

TEST(StressConcurrency, AtomicFileRacingSamePathLastRenameWinsNoTornFile) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/stress_same_path.json";
  std::filesystem::remove(path);

  // Two large, distinguishable payloads: any interleaving of the two
  // writers into one temp file would produce a mixed or truncated body.
  const std::string payload_a(1 << 20, 'a');
  const std::string payload_b(1 << 20, 'b');

  std::atomic<bool> go{false};
  const auto writer = [&](const std::string& payload, bool* committed) {
    while (!go.load()) std::this_thread::yield();
    AtomicFile f(path);
    ASSERT_TRUE(f.ok());
    f.stream() << payload;
    *committed = f.commit();
  };
  bool a_ok = false;
  bool b_ok = false;
  std::thread ta(writer, payload_a, &a_ok);
  std::thread tb(writer, payload_b, &b_ok);
  go.store(true);
  ta.join();
  tb.join();
  EXPECT_TRUE(a_ok);
  EXPECT_TRUE(b_ok);

  // Last rename wins with a COMPLETE file — all one writer's bytes.
  const std::string final = read_file(path);
  EXPECT_TRUE(final == payload_a || final == payload_b)
      << "torn file: " << final.size() << " bytes, first char '"
      << (final.empty() ? '?' : final[0]) << "'";

  // Neither writer leaked a temp file.
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(e.path().string().find(path + ".tmp"), std::string::npos)
        << "leftover temp file: " << e.path();
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace pdt::obs
