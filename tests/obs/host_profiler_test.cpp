// Unit tests for the wall-clock side of the observability layer: the
// HostProfiler's interval attribution against a deterministic fake
// clock, its pairing contract with the virtual PhaseProfiler, the
// monotonicity/overhead bound of the production clock, and the
// crash-safe AtomicFile writer every JSON exporter goes through.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/atomic_file.hpp"
#include "obs/host_clock.hpp"
#include "obs/host_profiler.hpp"
#include "obs/phase.hpp"

namespace pdt::obs {
namespace {

// Deterministic clock: hands out the scripted timestamps in order and
// repeats the last one when the script runs dry.
class FakeClock final : public HostClock {
 public:
  explicit FakeClock(std::vector<std::int64_t> times)
      : times_(std::move(times)) {}
  std::int64_t now_ns() override {
    const std::int64_t t = times_[next_];
    if (next_ + 1 < times_.size()) ++next_;
    return t;
  }
  const char* name() const override { return "fake"; }

 private:
  std::vector<std::int64_t> times_;
  std::size_t next_ = 0;
};

TEST(HostProfiler, FirstChargeAnchorsAndIntervalsAttributeToTheCharge) {
  FakeClock clock({100, 250, 400, 1000});
  HostProfiler h(nullptr, &clock);
  EXPECT_EQ(h.total_ns(), 0);
  EXPECT_EQ(h.samples(), 0u);

  h.on_charge(0, mpsim::ChargeKind::Compute);  // t=100: anchor only
  EXPECT_EQ(h.total_ns(), 0);
  EXPECT_EQ(h.samples(), 0u);

  h.on_charge(0, mpsim::ChargeKind::Compute);  // t=250: 150ns compute
  h.on_charge(1, mpsim::ChargeKind::Comm);     // t=400: 150ns comm
  h.on_charge(0, mpsim::ChargeKind::Io);       // t=1000: 600ns io
  EXPECT_EQ(h.total_ns(), 900);
  EXPECT_EQ(h.samples(), 3u);
  EXPECT_EQ(h.num_ranks(), 2);

  const HostTotals all = h.phase_totals(0, kNoLevel, /*any_level=*/true);
  EXPECT_EQ(all.compute_ns, 150);
  EXPECT_EQ(all.comm_ns, 150);
  EXPECT_EQ(all.io_ns, 600);
  EXPECT_EQ(all.idle_ns, 0);
  EXPECT_EQ(all.total_ns(), 900);
  EXPECT_EQ(all.samples, 3u);
}

TEST(HostProfiler, RowsPairWithVirtualProfilerCells) {
  PhaseProfiler stamps;
  FakeClock clock({0, 10, 30, 60, 100});
  HostProfiler h(&stamps, &clock);
  EXPECT_STREQ(h.clock_name(), "fake");
  EXPECT_EQ(h.stamps(), &stamps);

  // Drive the same (phase, level) stamps through both profilers, the
  // way ObserverFanout does on a real run.
  auto charge = [&](mpsim::Rank r, mpsim::ChargeKind k) {
    stamps.on_charge(r, k, 0.0, 1.0, 0.0, 0.0);
    h.on_charge(r, k);
  };
  charge(0, mpsim::ChargeKind::Compute);  // anchor, lands in (unattributed)
  {
    PhaseScope ph(&stamps, "histogram");
    LevelScope lv(&stamps, 2);
    charge(0, mpsim::ChargeKind::Compute);  // 10ns
    charge(1, mpsim::ChargeKind::Compute);  // 20ns
  }
  {
    PhaseScope ph(&stamps, "all-reduce");
    charge(0, mpsim::ChargeKind::Comm);  // 30ns
    charge(0, mpsim::ChargeKind::Comm);  // 40ns
  }

  const std::vector<HostProfiler::Row> rows = h.rows();
  ASSERT_EQ(rows.size(), 3u);
  // Ordered by (phase, level, rank), exactly like the virtual rows.
  const PhaseId hist = 1;  // interned first after phase 0
  const PhaseId allr = 2;
  EXPECT_EQ(rows[0].phase, hist);
  EXPECT_EQ(rows[0].level, 2);
  EXPECT_EQ(rows[0].rank, 0);
  EXPECT_EQ(rows[0].totals.compute_ns, 10);
  EXPECT_EQ(rows[1].phase, hist);
  EXPECT_EQ(rows[1].level, 2);
  EXPECT_EQ(rows[1].rank, 1);
  EXPECT_EQ(rows[1].totals.compute_ns, 20);
  EXPECT_EQ(rows[2].phase, allr);
  EXPECT_EQ(rows[2].level, kNoLevel);
  EXPECT_EQ(rows[2].totals.comm_ns, 70);
  EXPECT_EQ(h.max_level(), 2);

  // Every host row must have a virtual twin under the same key.
  for (const HostProfiler::Row& row : rows) {
    const PhaseTotals v = stamps.phase_totals(row.phase, row.level);
    EXPECT_GT(v.charges, 0u)
        << "host cell (" << row.phase << ", " << row.level
        << ") has no paired virtual cell";
  }
  EXPECT_EQ(h.phase_totals(hist, 2).total_ns(), 30);
  EXPECT_EQ(h.phase_totals(allr, kNoLevel).total_ns(), 70);
}

TEST(HostProfiler, BackwardsClockClampsToZeroInsteadOfGoingNegative) {
  FakeClock clock({1000, 400, 500});
  HostProfiler h(nullptr, &clock);
  EXPECT_EQ(h.clamped(), 0u);
  h.on_charge(0, mpsim::ChargeKind::Compute);  // anchor at 1000
  h.on_charge(0, mpsim::ChargeKind::Compute);  // clock "went back" to 400
  EXPECT_EQ(h.total_ns(), 0) << "negative intervals must clamp, not wrap";
  // The anomaly is observable, not silent: pdt-host-v1 and the
  // pdt-threads-v1 drop block both surface this count.
  EXPECT_EQ(h.clamped(), 1u);
  h.on_charge(0, mpsim::ChargeKind::Compute);  // 400 -> 500
  EXPECT_EQ(h.total_ns(), 100);
  EXPECT_EQ(h.clamped(), 1u) << "a forward step must not count as clamped";
  // The clamped sample still lands in a cell (with zero width) and the
  // count survives a shard merge.
  h.merge();
  EXPECT_EQ(h.clamped(), 1u);
  EXPECT_EQ(h.total_ns(), 100);
}

TEST(HostProfiler, SteadyClockIsMonotonicAndCheap) {
  SteadyHostClock clock;
  std::int64_t prev = clock.now_ns();
  EXPECT_GT(prev, 0);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t now = clock.now_ns();
    ASSERT_GE(now, prev);
    prev = now;
  }

  // Overhead bound: attributing 100k charges must stay far below the
  // budget of a single bench run (generous 1ms/sample ceiling would be
  // absurd; require < 2us average, ~100x the typical clock_gettime cost,
  // so the test never flakes on a loaded CI box).
  HostProfiler h(nullptr, &clock);
  const std::int64_t t0 = clock.now_ns();
  constexpr int kCharges = 100000;
  for (int i = 0; i < kCharges; ++i) {
    h.on_charge(i & 7, mpsim::ChargeKind::Compute);
  }
  const std::int64_t elapsed = clock.now_ns() - t0;
  EXPECT_LT(elapsed / kCharges, 2000) << "per-charge overhead too high";
  // The profiler saw the whole interval chain: its own account of the
  // loop cannot exceed the wall time around it.
  EXPECT_LE(h.total_ns(), elapsed);
  EXPECT_EQ(h.samples(), static_cast<std::uint64_t>(kCharges - 1));
}

TEST(HostProfiler, CountersOffByDefaultAndReportedHonestly) {
  FakeClock clock({0, 1});
  HostProfiler h(nullptr, &clock);
  EXPECT_FALSE(h.counters_requested());
  EXPECT_FALSE(h.counters().enabled);

  HostProfiler asked(nullptr, &clock, HostProfilerConfig{.counters = true});
  EXPECT_TRUE(asked.counters_requested());
  // enabled may be true or false depending on the kernel; what must hold
  // is that a disabled group reads zeros.
  const HostCounters c = asked.counters();
  if (!c.enabled) {
    EXPECT_EQ(c.cycles, 0);
    EXPECT_EQ(c.instructions, 0);
  }
}

TEST(AtomicFile, CommitPublishesAndAbandonLeavesNothing) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/atomic_file_test.json";
  std::filesystem::remove(path);

  {
    AtomicFile f(path);
    ASSERT_TRUE(f.ok());
    f.stream() << "{\"a\": 1}\n";
    // Not committed yet: the target must not exist.
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_TRUE(f.commit());
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_TRUE(f.commit()) << "commit is idempotent";
  }
  {
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "{\"a\": 1}\n");
  }

  // Abandoned writer: destructor removes the temp, target is untouched.
  {
    AtomicFile f(path);
    ASSERT_TRUE(f.ok());
    f.stream() << "partial garbage";
  }
  {
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "{\"a\": 1}\n") << "abandoning must not clobber";
  }
  // No stray temp files left behind.
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(e.path().string().find(path + ".tmp"), std::string::npos)
        << "leftover temp file: " << e.path();
  }
  std::filesystem::remove(path);
}

TEST(AtomicFile, MissingTargetDirectoryFailsCleanly) {
  // AtomicFile does not create directories — that is the writer's job
  // (bench_util::json_dir() pre-creates PDT_JSON_DIR). A missing parent
  // must surface as ok()==false, not a crash or a stray file.
  const std::string missing =
      ::testing::TempDir() + "/no_such_dir_atomic/sub/x.json";
  AtomicFile f(missing);
  EXPECT_FALSE(f.ok());
  f.stream() << "into the void";  // null sink: must not throw
  EXPECT_FALSE(f.commit());
  EXPECT_FALSE(std::filesystem::exists(missing));
}

TEST(AtomicFile, OverwriteReplacesContentOnlyOnCommit) {
  const std::string path = ::testing::TempDir() + "/atomic_overwrite.json";
  {
    AtomicFile f(path);
    ASSERT_TRUE(f.ok());
    f.stream() << "old";
    ASSERT_TRUE(f.commit());
  }
  {
    AtomicFile f(path);
    ASSERT_TRUE(f.ok());
    f.stream() << "new and longer";
    // Until commit, readers still see the previous artifact whole.
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "old");
    ASSERT_TRUE(f.commit());
  }
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "new and longer");
  std::filesystem::remove(path);
}

TEST(AtomicFile, AbandonAfterPartialWriteLeavesNoTrace) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/atomic_abandon_fresh.json";
  std::filesystem::remove(path);
  {
    AtomicFile f(path);
    ASSERT_TRUE(f.ok());
    f.stream() << "{\"truncated\": ";
    // Scope exit without commit(): the destructor must clean up.
  }
  EXPECT_FALSE(std::filesystem::exists(path))
      << "abandon must not publish a torn artifact";
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(e.path().string().find(path + ".tmp"), std::string::npos)
        << "leftover temp file: " << e.path();
  }
}

}  // namespace
}  // namespace pdt::obs
