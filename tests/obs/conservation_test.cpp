// Conservation invariants over full instrumented runs of every
// formulation: the comm matrix conserves bytes (total sent == total
// received), and the critical path telescopes bit-exactly from 0 to
// max_clock with no gaps or overlaps — i.e. the tracer's explanation of
// the runtime accounts for every last virtual microsecond.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "obs/observability.hpp"

namespace pdt::core {
namespace {

data::Dataset quest_binned(std::size_t n, std::uint64_t seed = 31) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = seed}),
      data::quest_paper_bins());
}

class Conservation
    : public ::testing::TestWithParam<std::tuple<Formulation, int>> {};

TEST_P(Conservation, CommMatrixConservesWords) {
  const auto [f, procs] = GetParam();
  const data::Dataset ds = quest_binned(2500);
  ParOptions opt;
  opt.num_procs = procs;
  obs::Observability o;
  opt.obs = &o;
  (void)build(f, ds, opt);

  const mpsim::CommLedger& ledger = o.comm_ledger();
  ASSERT_GT(ledger.entries().size(), 0u);
  ASSERT_EQ(ledger.num_ranks(), procs);

  // Every word sent lands somewhere: row sums and column sums of the
  // traffic matrix agree in total. (DOUBLE_EQ, not EQ: the two totals
  // add the same cells in different orders.)
  double sent = 0.0, received = 0.0;
  std::uint64_t msgs_out = 0, msgs_in = 0;
  for (int r = 0; r < procs; ++r) {
    sent += ledger.words_sent(r);
    received += ledger.words_received(r);
    for (int t = 0; t < procs; ++t) {
      msgs_out += ledger.messages(r, t);
      msgs_in += ledger.messages(t, r);
      EXPECT_EQ(ledger.words(r, r), 0.0) << "no self-traffic";
    }
  }
  EXPECT_GT(sent, 0.0);
  EXPECT_DOUBLE_EQ(sent, received);
  EXPECT_EQ(msgs_out, msgs_in);

  // Ledger entry totals are consistent with the per-kind aggregation.
  double entry_words = 0.0;
  for (const auto& e : ledger.entries()) entry_words += e.words;
  double kind_words = 0.0;
  for (int k = 0; k < mpsim::kNumCollectiveKinds; ++k) {
    kind_words +=
        ledger.kind_totals(static_cast<mpsim::CollectiveKind>(k)).words;
  }
  EXPECT_DOUBLE_EQ(entry_words, kind_words);
}

TEST_P(Conservation, CriticalPathTelescopesToMaxClock) {
  const auto [f, procs] = GetParam();
  const data::Dataset ds = quest_binned(2500);
  ParOptions opt;
  opt.num_procs = procs;
  obs::Observability o;
  opt.obs = &o;
  const ParResult res = build(f, ds, opt);

  const auto path = o.critical_path().path();
  ASSERT_GT(path.segments.size(), 0u);

  // Bit-exact, not approximately: the path starts at 0, every segment
  // starts exactly where the previous one ended, and the last segment
  // ends exactly at the run's max_clock. No floating-point summation is
  // involved — contiguity is structural.
  EXPECT_EQ(path.segments.front().start_us, 0.0);
  for (std::size_t i = 1; i < path.segments.size(); ++i) {
    EXPECT_EQ(path.segments[i].start_us, path.segments[i - 1].end_us)
        << "gap/overlap at segment " << i;
    EXPECT_GT(path.segments[i].end_us, path.segments[i].start_us);
  }
  EXPECT_EQ(path.segments.back().end_us, path.max_clock_us);
  EXPECT_EQ(path.max_clock_us, res.parallel_time);

  // Handoff count is consistent with the segment sequence.
  std::uint64_t rank_changes = 0;
  for (std::size_t i = 1; i < path.segments.size(); ++i) {
    rank_changes += (path.segments[i].rank != path.segments[i - 1].rank);
  }
  EXPECT_EQ(path.handoffs, rank_changes);
  EXPECT_EQ(path.end_rank, path.segments.back().rank);
  EXPECT_GT(o.critical_path().barriers(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllFormulations, Conservation,
    ::testing::Combine(::testing::Values(Formulation::Sync,
                                         Formulation::Partitioned,
                                         Formulation::Hybrid),
                       ::testing::Values(4, 8)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_P" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace pdt::core
