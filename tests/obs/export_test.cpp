#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <string>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "mpsim/comm_ledger.hpp"

namespace pdt::obs {
namespace {

// ---------------------------------------------------------------------------
// A strict little JSON syntax checker (values are not materialized). Keeps
// the golden-file checks self-contained without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > begin;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};
// ---------------------------------------------------------------------------

TEST(JsonWriter, BasicDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", "x");
  w.kv("n", 3);
  w.key("list").begin_array().value(1.5).value(true).null().end_array();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"name":"x","n":3,"list":[1.5,true,null]})");
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST(JsonWriter, EscapesStringsAndControlCharacters) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("s", "a\"b\\c\n\t\x01");
  w.end_object();
  EXPECT_EQ(os.str(), "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0001\"}");
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::nan(""));
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(1.0);
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null,null,1]");
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST(JsonWriter, NonFiniteObjectValuesBecomeNullToo) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("bad", std::nan(""));
  w.kv("worse", -std::numeric_limits<double>::infinity());
  w.kv("fine", 2.0);
  w.end_object();
  EXPECT_EQ(os.str(), R"({"bad":null,"worse":null,"fine":2})");
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST(JsonWriter, RoundTripsDoublesExactly) {
  std::ostringstream os;
  JsonWriter w(os);
  w.value(0.1 + 0.2);
  EXPECT_EQ(std::stod(os.str()), 0.1 + 0.2) << "%.17g must round-trip";
}

/// One small instrumented hybrid run shared by the export checks.
struct InstrumentedRun {
  InstrumentedRun() : o(ProfilerConfig{.timeline = true}) {
    const data::Dataset ds = data::discretize_uniform(
        data::quest_generate(1500, {.function = 2, .seed = 21}),
        data::quest_paper_bins());
    core::ParOptions opt;
    opt.num_procs = 8;
    opt.trace = true;
    opt.obs = &o;
    res = core::build(core::Formulation::Hybrid, ds, opt);
  }
  Observability o;
  core::ParResult res;
};

TEST(PerfettoExport, IsValidJsonWithTrackMetadata) {
  InstrumentedRun run;
  std::ostringstream os;
  write_perfetto_trace(os, run.o.profiler(), run.res.trace);
  const std::string trace = os.str();

  EXPECT_TRUE(JsonChecker(trace).valid()) << "trace must parse as JSON";
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(trace.find("\"rank 7\""), std::string::npos);
  // Collectives became flow events.
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
}

TEST(PerfettoExport, SlicesAreMonotonePerRank) {
  InstrumentedRun run;
  ASSERT_FALSE(run.o.profiler().slices().empty());
  std::map<mpsim::Rank, double> end;
  for (const Slice& s : run.o.profiler().slices()) {
    EXPECT_GE(s.dur, 0.0);
    auto [it, fresh] = end.try_emplace(s.rank, 0.0);
    if (!fresh) {
      EXPECT_GE(s.start, it->second - 1e-9)
          << "rank " << s.rank << " slices must not overlap";
    }
    it->second = s.start + s.dur;
  }
  EXPECT_EQ(static_cast<int>(end.size()), 8) << "every rank has a track";
}

TEST(PerfettoExport, DeterministicForIdenticalRuns) {
  InstrumentedRun a;
  InstrumentedRun b;
  std::ostringstream osa;
  std::ostringstream osb;
  write_perfetto_trace(osa, a.o.profiler(), a.res.trace);
  write_perfetto_trace(osb, b.o.profiler(), b.res.trace);
  EXPECT_EQ(osa.str(), osb.str());
}

TEST(MetricsExport, ReportIsValidJsonWithExpectedFields) {
  InstrumentedRun run;
  std::ostringstream os;
  write_metrics_report(os, run.o);
  const std::string rep = os.str();

  EXPECT_TRUE(JsonChecker(rep).valid()) << "metrics report must parse";
  EXPECT_NE(rep.find("\"pdt-metrics-v1\""), std::string::npos);
  EXPECT_NE(rep.find("\"levels\""), std::string::npos);
  EXPECT_NE(rep.find("\"compute_us\""), std::string::npos);
  EXPECT_NE(rep.find("\"comm_us\""), std::string::npos);
  EXPECT_NE(rep.find("\"idle_us\""), std::string::npos);
  EXPECT_NE(rep.find("\"load_imbalance\""), std::string::npos);
  EXPECT_NE(rep.find("\"comm_to_compute\""), std::string::npos);
  EXPECT_NE(rep.find("\"records_relocated\""), std::string::npos);
  EXPECT_NE(rep.find("\"words_all_reduced\""), std::string::npos);
  EXPECT_NE(rep.find("\"record-shuffle\""), std::string::npos)
      << "the hybrid must have shuffled records";
}

TEST(MetricsExport, EmptyObservabilityStillExportsCleanly) {
  Observability o;
  std::ostringstream os;
  write_metrics_report(os, o);
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST(CommExport, IsValidJsonWithSchemaFields) {
  InstrumentedRun run;
  std::ostringstream os;
  JsonWriter w(os);
  write_comm(w, run.o.comm_ledger(), &run.o.critical_path(),
             &run.o.profiler());
  const std::string doc = os.str();

  EXPECT_TRUE(JsonChecker(doc).valid()) << "pdt-comm-v1 must parse as JSON";
  EXPECT_NE(doc.find("\"pdt-comm-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"collectives\""), std::string::npos);
  EXPECT_NE(doc.find("\"all-reduce\""), std::string::npos);
  EXPECT_NE(doc.find("\"predicted_us\""), std::string::npos);
  EXPECT_NE(doc.find("\"measured_us\""), std::string::npos);
  EXPECT_NE(doc.find("\"delta_us\""), std::string::npos);
  EXPECT_NE(doc.find("\"matrix\""), std::string::npos);
  EXPECT_NE(doc.find("\"bytes\""), std::string::npos);
  EXPECT_NE(doc.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(doc.find("\"top_segments\""), std::string::npos);
  EXPECT_NE(doc.find("\"by_phase\""), std::string::npos);
  EXPECT_NE(doc.find("\"handoffs\""), std::string::npos);
}

TEST(CommExport, DeterministicForIdenticalRuns) {
  InstrumentedRun a;
  InstrumentedRun b;
  std::ostringstream osa;
  std::ostringstream osb;
  JsonWriter wa(osa);
  JsonWriter wb(osb);
  write_comm(wa, a.o.comm_ledger(), &a.o.critical_path(), &a.o.profiler());
  write_comm(wb, b.o.comm_ledger(), &b.o.critical_path(), &b.o.profiler());
  EXPECT_EQ(osa.str(), osb.str());
}

TEST(CommExport, LedgerAloneExportsWithNullCriticalPath) {
  mpsim::CommLedger ledger;
  ledger.add_traffic(0, 1, 3.0);
  std::ostringstream os;
  JsonWriter w(os);
  write_comm(w, ledger);
  EXPECT_TRUE(JsonChecker(os.str()).valid());
  EXPECT_NE(os.str().find("\"pdt-comm-v1\""), std::string::npos);
}

// Like InstrumentedRun but with the event log and host profiler riding
// along, for the pdt-host-v1 and events-overlay tests.
struct HostedRun {
  HostedRun(bool with_host = true) : o(ProfilerConfig{.timeline = true}) {
    o.enable_event_log();
    if (with_host) o.enable_host_profiler();
    const data::Dataset ds = data::discretize_uniform(
        data::quest_generate(1500, {.function = 2, .seed = 21}),
        data::quest_paper_bins());
    core::ParOptions opt;
    opt.num_procs = 8;
    opt.obs = &o;
    res = core::build(core::Formulation::Hybrid, ds, opt);
  }
  Observability o;
  core::ParResult res;
};

TEST(HostExport, ReportIsValidJsonWithSchemaFields) {
  HostedRun run;
  ASSERT_NE(run.o.host_profiler(), nullptr);
  std::ostringstream os;
  write_host_report(os, *run.o.host_profiler());
  const std::string doc = os.str();
  EXPECT_TRUE(JsonChecker(doc).valid());
  EXPECT_NE(doc.find("\"pdt-host-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"clock\":\"steady_clock\""), std::string::npos);
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"phases\""), std::string::npos);
  EXPECT_NE(doc.find("\"per_rank\""), std::string::npos);
  EXPECT_NE(doc.find("\"by_phase\""), std::string::npos);
  EXPECT_NE(doc.find("\"divergence_pp\""), std::string::npos);
  // Every host group carries its paired virtual account.
  EXPECT_NE(doc.find("\"virtual_us\""), std::string::npos);
  EXPECT_NE(doc.find("\"virtual_total_us\""), std::string::npos);
}

TEST(HostExport, EventsLogWithoutHostStaysHostFree) {
  // A run whose exporter is not handed a host profiler must serialize
  // the exact pre-host pdt-events-v1 bytes: the overlay key is absent
  // even when a profiler was attached to the run.
  HostedRun hosted;
  HostedRun plain(/*with_host=*/false);
  ASSERT_NE(hosted.o.event_log(), nullptr);
  ASSERT_NE(plain.o.event_log(), nullptr);

  std::ostringstream with_overlay;
  write_events_report(with_overlay, *hosted.o.event_log(), {},
                      hosted.o.host_profiler());
  EXPECT_TRUE(JsonChecker(with_overlay.str()).valid());
  EXPECT_NE(with_overlay.str().find("\"host\""), std::string::npos);

  std::ostringstream hosted_no_overlay;
  write_events_report(hosted_no_overlay, *hosted.o.event_log(), {});
  std::ostringstream plain_os;
  write_events_report(plain_os, *plain.o.event_log(), {});
  EXPECT_EQ(hosted_no_overlay.str(), plain_os.str())
      << "host profiler must not perturb the recorded event stream";
  EXPECT_EQ(hosted_no_overlay.str().find("\"host\""), std::string::npos);
}

}  // namespace
}  // namespace pdt::obs
