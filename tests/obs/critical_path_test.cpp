// CriticalPathTracer unit tests, driving a Machine by hand so the
// expected path is known exactly: telescoping segment chains, barrier
// handoffs to the max-clock holder, coalescing of contiguous charges,
// and idle attribution.
#include "obs/critical_path.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "mpsim/machine.hpp"

namespace pdt::obs {
namespace {

mpsim::CostModel unit_cost() {
  mpsim::CostModel cm;
  cm.t_s = 1.0;
  cm.t_w = 1.0;
  cm.t_c = 1.0;
  cm.t_io = 1.0;
  return cm;
}

TEST(CriticalPath, SingleRankChargesTelescopeFromZero) {
  mpsim::Machine m(1, unit_cost());
  CriticalPathTracer tracer;
  m.set_observer(&tracer);
  m.charge_compute(0, 10.0);
  m.charge_comm(0, 5.0, 1.0, 0.0, 1);
  m.charge_io(0, 2.0);

  const auto path = tracer.path();
  EXPECT_EQ(path.max_clock_us, m.max_clock());
  EXPECT_EQ(path.end_rank, 0);
  EXPECT_EQ(path.handoffs, 0u);
  ASSERT_EQ(path.segments.size(), 3u);
  EXPECT_EQ(path.segments[0].kind, mpsim::ChargeKind::Compute);
  EXPECT_EQ(path.segments[1].kind, mpsim::ChargeKind::Comm);
  EXPECT_EQ(path.segments[2].kind, mpsim::ChargeKind::Io);
  EXPECT_EQ(path.segments.front().start_us, 0.0);
  for (std::size_t i = 1; i < path.segments.size(); ++i) {
    EXPECT_EQ(path.segments[i].start_us, path.segments[i - 1].end_us);
  }
  EXPECT_EQ(path.segments.back().end_us, path.max_clock_us);
}

TEST(CriticalPath, ContiguousSameKindChargesCoalesce) {
  mpsim::Machine m(1, unit_cost());
  CriticalPathTracer tracer;
  m.set_observer(&tracer);
  m.charge_compute(0, 3.0);
  m.charge_compute(0, 4.0);
  m.charge_compute(0, 5.0);

  const auto path = tracer.path();
  ASSERT_EQ(path.segments.size(), 1u);
  EXPECT_EQ(path.segments[0].start_us, 0.0);
  EXPECT_EQ(path.segments[0].end_us, m.max_clock());
}

TEST(CriticalPath, BarrierHandsChainToSlowRanks) {
  mpsim::Machine m(2, unit_cost());
  CriticalPathTracer tracer;
  m.set_observer(&tracer);
  m.charge_compute(0, 10.0);
  m.charge_compute(1, 3.0);
  m.barrier_over({0, 1});  // holder is rank 0; rank 1 idles 7us
  m.charge_comm(1, 5.0, 0.0, 0.0, 0);

  const auto path = tracer.path();
  EXPECT_EQ(path.end_rank, 1);
  EXPECT_EQ(path.max_clock_us, m.max_clock());
  EXPECT_EQ(tracer.barriers(), 1u);
  // The path runs through rank 0's compute (the holder), then hands off
  // to rank 1's comm. Rank 1's own pre-barrier compute and its idle wait
  // are NOT on the path.
  ASSERT_EQ(path.segments.size(), 2u);
  EXPECT_EQ(path.segments[0].rank, 0);
  EXPECT_EQ(path.segments[0].kind, mpsim::ChargeKind::Compute);
  EXPECT_EQ(path.segments[0].end_us, 10.0);
  EXPECT_EQ(path.segments[1].rank, 1);
  EXPECT_EQ(path.segments[1].kind, mpsim::ChargeKind::Comm);
  EXPECT_EQ(path.segments[1].start_us, 10.0);
  EXPECT_EQ(path.handoffs, 1u);
}

TEST(CriticalPath, TiedBarrierKeepsLowestRankAsHolder) {
  mpsim::Machine m(2, unit_cost());
  CriticalPathTracer tracer;
  m.set_observer(&tracer);
  m.charge_compute(0, 4.0);
  m.charge_compute(1, 4.0);
  m.barrier_over({0, 1});
  const auto path = tracer.path();
  // Deterministic tie-break: the first max-clock member in rank order.
  EXPECT_EQ(path.segments.back().rank, 0);
  EXPECT_EQ(path.handoffs, 0u);
}

TEST(CriticalPath, ChainsShareThePrefixAcrossHandoffs) {
  mpsim::Machine m(4, unit_cost());
  CriticalPathTracer tracer;
  m.set_observer(&tracer);
  // Two rounds: a different rank is slowest each time.
  m.charge_compute(2, 20.0);
  m.barrier_over({0, 1, 2, 3});
  m.charge_compute(1, 7.0);
  m.barrier_over({0, 1, 2, 3});
  m.charge_io(3, 1.0);

  const auto path = tracer.path();
  EXPECT_EQ(path.end_rank, 3);
  ASSERT_EQ(path.segments.size(), 3u);
  EXPECT_EQ(path.segments[0].rank, 2);
  EXPECT_EQ(path.segments[1].rank, 1);
  EXPECT_EQ(path.segments[2].rank, 3);
  EXPECT_EQ(path.handoffs, 2u);
  EXPECT_EQ(path.segments.back().end_us, m.max_clock());
  EXPECT_EQ(path.segments.front().start_us, 0.0);
  for (std::size_t i = 1; i < path.segments.size(); ++i) {
    EXPECT_EQ(path.segments[i].start_us, path.segments[i - 1].end_us);
  }
}

TEST(CriticalPath, ZeroDurationChargesAreDropped) {
  mpsim::Machine m(1, unit_cost());
  CriticalPathTracer tracer;
  m.set_observer(&tracer);
  m.charge_compute(0, 0.0);
  EXPECT_TRUE(tracer.path().segments.empty());
  m.charge_compute(0, 2.0);
  EXPECT_EQ(tracer.path().segments.size(), 1u);
}

TEST(CriticalPath, ProfilerSuppliesPhaseAndLevelAttribution) {
  mpsim::Machine m(1, unit_cost());
  PhaseProfiler profiler;
  CriticalPathTracer tracer(&profiler);
  m.set_observer(&tracer);
  {
    const PhaseScope scope(&profiler, "split");
    const LevelScope level(&profiler, 2);
    m.charge_compute(0, 5.0);
  }
  m.charge_compute(0, 1.0);

  const auto path = tracer.path();
  ASSERT_EQ(path.segments.size(), 2u);
  EXPECT_EQ(profiler.phase_name(path.segments[0].phase), "split");
  EXPECT_EQ(path.segments[0].level, 2);
  EXPECT_EQ(path.segments[1].level, kNoLevel);
}

TEST(CriticalPath, ClearResetsState) {
  mpsim::Machine m(2, unit_cost());
  CriticalPathTracer tracer;
  m.set_observer(&tracer);
  m.charge_compute(0, 5.0);
  m.barrier_over({0, 1});
  tracer.clear();
  EXPECT_TRUE(tracer.path().segments.empty());
  EXPECT_EQ(tracer.barriers(), 0u);
}

TEST(CriticalPath, DeepChainsDestructWithoutOverflow) {
  // ~200k segments; a recursive spine destructor would blow the stack.
  mpsim::Machine m(1, unit_cost());
  auto tracer = std::make_unique<CriticalPathTracer>();
  m.set_observer(tracer.get());
  for (int i = 0; i < 200000; ++i) {
    m.charge_compute(0, 1.0);
    m.charge_io(0, 1.0);  // alternate kinds so nothing coalesces
  }
  EXPECT_EQ(tracer->path().segments.size(), 400000u);
  tracer.reset();  // must not crash
}

}  // namespace
}  // namespace pdt::obs
