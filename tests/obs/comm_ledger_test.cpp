// CommLedger unit tests: entry recording semantics for every collective,
// the measured-vs-predicted accounting convention (delta is bit-exact 0
// for the uniform-cost collectives, the trailing-barrier fold otherwise),
// traffic-matrix bookkeeping, and level tagging.
#include "mpsim/comm_ledger.hpp"

#include <gtest/gtest.h>

#include "mpsim/group.hpp"
#include "mpsim/machine.hpp"

namespace pdt::mpsim {
namespace {

CostModel unit_cost() {
  CostModel cm;
  cm.t_s = 1.0;
  cm.t_w = 1.0;
  cm.t_c = 1.0;
  cm.t_io = 0.0;
  return cm;
}

TEST(CommLedger, AllReduceRecordsEntryWithExactlyZeroDelta) {
  Machine m(4, unit_cost());
  CommLedger ledger;
  m.set_comm_ledger(&ledger);
  Group g = Group::whole(m);
  g.charge_all_reduce(6.0);

  ASSERT_EQ(ledger.entries().size(), 1u);
  const CollectiveEntry& e = ledger.entries()[0];
  EXPECT_EQ(e.kind, CollectiveKind::AllReduce);
  EXPECT_EQ(e.group_size, 4);
  EXPECT_EQ(e.level, -1);
  EXPECT_DOUBLE_EQ(e.words, 6.0);
  // Per member: (t_s + t_w*6) * log2(4) = 14; 4 members.
  EXPECT_DOUBLE_EQ(e.predicted_us, 4 * 14.0);
  EXPECT_EQ(e.measured_us, e.predicted_us);  // bit-exact, not just close
  EXPECT_EQ(e.delta_us(), 0.0);
  // Recursive doubling on 4 members: 2 rounds x 4 sends.
  EXPECT_EQ(e.messages, 8u);
}

TEST(CommLedger, BroadcastRecordsBinomialTreeTraffic) {
  Machine m(4, unit_cost());
  CommLedger ledger;
  m.set_comm_ledger(&ledger);
  Group g = Group::whole(m);
  g.charge_broadcast(10.0);

  ASSERT_EQ(ledger.entries().size(), 1u);
  const CollectiveEntry& e = ledger.entries()[0];
  EXPECT_EQ(e.kind, CollectiveKind::Broadcast);
  EXPECT_EQ(e.delta_us(), 0.0);
  // Binomial tree on 4: 0->1, then 0->2 and 1->3.
  EXPECT_EQ(e.messages, 3u);
  EXPECT_DOUBLE_EQ(ledger.words(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(ledger.words(0, 2), 10.0);
  EXPECT_DOUBLE_EQ(ledger.words(1, 3), 10.0);
  EXPECT_DOUBLE_EQ(ledger.words(1, 0), 0.0);
}

TEST(CommLedger, PairwiseExchangeDeltaIsTheBarrierFold) {
  Machine m(4, unit_cost());
  CommLedger ledger;
  m.set_comm_ledger(&ledger);
  Group g = Group::whole(m);
  // Pair (0,2): t_s + t_w*max(10,4) = 11. Pair (1,3): t_s = 1.
  g.pairwise_exchange({10.0, 0.0, 4.0, 0.0});

  ASSERT_EQ(ledger.entries().size(), 1u);
  const CollectiveEntry& e = ledger.entries()[0];
  EXPECT_EQ(e.kind, CollectiveKind::PairwiseExchange);
  EXPECT_DOUBLE_EQ(e.words, 14.0);
  // predicted = sum of per-member charges = 2*11 + 2*1 = 24;
  // measured = every member pays the heaviest pair = 4*11 = 44.
  EXPECT_DOUBLE_EQ(e.predicted_us, 24.0);
  EXPECT_DOUBLE_EQ(e.measured_us, 44.0);
  EXPECT_DOUBLE_EQ(e.delta_us(), 20.0);
  EXPECT_DOUBLE_EQ(ledger.words(0, 2), 10.0);
  EXPECT_DOUBLE_EQ(ledger.words(2, 0), 4.0);
}

TEST(CommLedger, EquallyLoadedPairwiseExchangeHasZeroDelta) {
  Machine m(2, unit_cost());
  CommLedger ledger;
  m.set_comm_ledger(&ledger);
  Group g = Group::whole(m);
  g.pairwise_exchange({7.0, 7.0});
  ASSERT_EQ(ledger.entries().size(), 1u);
  EXPECT_EQ(ledger.entries()[0].delta_us(), 0.0);
}

TEST(CommLedger, TransfersRecordEndpointsAndFold) {
  Machine m(4, unit_cost());
  CommLedger ledger;
  m.set_comm_ledger(&ledger);
  Group g = Group::whole(m);
  g.charge_transfers({Transfer{0, 1, 5}, Transfer{2, 3, 1}}, 2.0);

  ASSERT_EQ(ledger.entries().size(), 1u);
  const CollectiveEntry& e = ledger.entries()[0];
  EXPECT_EQ(e.kind, CollectiveKind::Transfers);
  EXPECT_DOUBLE_EQ(e.words, 12.0);
  // Member costs: 0 and 1 pay t_s + t_w*10 = 11; 2 and 3 pay 1 + 2 = 3.
  EXPECT_DOUBLE_EQ(e.predicted_us, 2 * 11.0 + 2 * 3.0);
  EXPECT_DOUBLE_EQ(e.measured_us, 4 * 11.0);
  EXPECT_EQ(e.messages, 2u);
  EXPECT_DOUBLE_EQ(ledger.words(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(ledger.words(2, 3), 2.0);
  EXPECT_EQ(ledger.messages(0, 1), 1u);
}

TEST(CommLedger, EmptyTransferPlanRecordsNothing) {
  Machine m(4, unit_cost());
  CommLedger ledger;
  m.set_comm_ledger(&ledger);
  Group g = Group::whole(m);
  g.charge_transfers({}, 2.0);
  EXPECT_TRUE(ledger.entries().empty());
}

TEST(CommLedger, AllToAllRecordsOffDiagonalTraffic) {
  Machine m(2, unit_cost());
  CommLedger ledger;
  m.set_comm_ledger(&ledger);
  Group g = Group::whole(m);
  g.all_to_all_personalized({{0.0, 10.0}, {0.0, 0.0}});

  ASSERT_EQ(ledger.entries().size(), 1u);
  const CollectiveEntry& e = ledger.entries()[0];
  EXPECT_EQ(e.kind, CollectiveKind::AllToAll);
  // Member volumes: max(10,0)=10 and max(0,10)=10, so both pay
  // t_s*log2(2) + t_w*10 = 11 — symmetric, hence no fold penalty.
  EXPECT_DOUBLE_EQ(e.predicted_us, 22.0);
  EXPECT_EQ(e.delta_us(), 0.0);
  EXPECT_EQ(e.messages, 1u);
  EXPECT_DOUBLE_EQ(ledger.words(0, 1), 10.0);
}

TEST(CommLedger, LevelScopeStampsEntries) {
  Machine m(2, unit_cost());
  CommLedger ledger;
  m.set_comm_ledger(&ledger);
  Group g = Group::whole(m);
  {
    LedgerLevelScope level(&ledger, 3);
    g.charge_all_reduce(1.0);
    {
      LedgerLevelScope inner(&ledger, 4);
      g.charge_all_reduce(1.0);
    }
    g.charge_all_reduce(1.0);
  }
  g.charge_all_reduce(1.0);
  ASSERT_EQ(ledger.entries().size(), 4u);
  EXPECT_EQ(ledger.entries()[0].level, 3);
  EXPECT_EQ(ledger.entries()[1].level, 4);
  EXPECT_EQ(ledger.entries()[2].level, 3);
  EXPECT_EQ(ledger.entries()[3].level, -1);
  EXPECT_EQ(ledger.max_level(), 4);
  EXPECT_EQ(ledger.level_totals(3).calls, 2u);
  EXPECT_EQ(ledger.level_totals(4).calls, 1u);
  // A null ledger scope is a safe no-op.
  { LedgerLevelScope noop(nullptr, 9); }
}

TEST(CommLedger, KindTotalsAggregate) {
  Machine m(2, unit_cost());
  CommLedger ledger;
  m.set_comm_ledger(&ledger);
  Group g = Group::whole(m);
  g.charge_all_reduce(2.0);
  g.charge_all_reduce(3.0);
  g.charge_broadcast(1.0);
  const CommLedger::Totals ar = ledger.kind_totals(CollectiveKind::AllReduce);
  EXPECT_EQ(ar.calls, 2u);
  EXPECT_DOUBLE_EQ(ar.words, 5.0);
  EXPECT_EQ(ledger.kind_totals(CollectiveKind::Broadcast).calls, 1u);
  EXPECT_EQ(ledger.kind_totals(CollectiveKind::AllToAll).calls, 0u);
}

TEST(CommLedger, EnsureRanksGrowsPreservingCounts) {
  CommLedger ledger;
  ledger.add_traffic(0, 1, 5.0);
  EXPECT_EQ(ledger.num_ranks(), 2);
  ledger.add_traffic(3, 0, 7.0);  // auto-grow to 4 ranks
  EXPECT_EQ(ledger.num_ranks(), 4);
  EXPECT_DOUBLE_EQ(ledger.words(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(ledger.words(3, 0), 7.0);
  EXPECT_DOUBLE_EQ(ledger.words_sent(0), 5.0);
  EXPECT_DOUBLE_EQ(ledger.words_received(0), 7.0);
}

TEST(CommLedger, ClearResetsEverything) {
  Machine m(2, unit_cost());
  CommLedger ledger;
  m.set_comm_ledger(&ledger);
  Group g = Group::whole(m);
  g.charge_all_reduce(2.0);
  ledger.clear();
  EXPECT_TRUE(ledger.entries().empty());
  EXPECT_EQ(ledger.max_level(), -1);
  EXPECT_DOUBLE_EQ(ledger.words(0, 1), 0.0);
  EXPECT_EQ(ledger.num_ranks(), 2);  // sizing survives, counts don't
}

TEST(CommLedger, RecordingNeverChangesSimulatedTime) {
  Machine plain(4, unit_cost());
  Machine instrumented(4, unit_cost());
  CommLedger ledger;
  instrumented.set_comm_ledger(&ledger);
  for (Machine* m : {&plain, &instrumented}) {
    m->charge_compute(1, 13.0);
    Group g = Group::whole(*m);
    g.charge_all_reduce(6.0);
    g.pairwise_exchange({3.0, 0.0, 9.0, 0.0});
    g.charge_transfers({Transfer{0, 3, 2}}, 1.0);
    g.all_to_all_personalized({{0.0, 1.0, 2.0, 3.0},
                               {1.0, 0.0, 1.0, 0.0},
                               {0.0, 0.0, 0.0, 4.0},
                               {2.0, 2.0, 2.0, 0.0}});
  }
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(plain.clock(r), instrumented.clock(r)) << "rank " << r;
  }
  EXPECT_GE(ledger.entries().size(), 4u);
}

}  // namespace
}  // namespace pdt::mpsim
