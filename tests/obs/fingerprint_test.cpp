// EnvFingerprint: provenance collection and deterministic JSON shape.
#include "obs/fingerprint.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "obs/export.hpp"

namespace pdt::obs {
namespace {

TEST(EnvFingerprint, CollectFillsEveryFieldWithSaneValues) {
  ::setenv("PDT_FP_TEST_B", "2", 1);
  ::setenv("PDT_FP_TEST_A", "1", 1);
  const EnvFingerprint fp = EnvFingerprint::collect();
  ::unsetenv("PDT_FP_TEST_A");
  ::unsetenv("PDT_FP_TEST_B");

  // The build embeds git metadata at configure time; outside a checkout
  // the fallback is "unknown", never empty.
  EXPECT_FALSE(fp.git_sha.empty());
  EXPECT_FALSE(fp.compiler.empty());
  EXPECT_NE(fp.compiler.find(' '), std::string::npos)
      << "compiler is \"<id> <version>\": " << fp.compiler;
  EXPECT_FALSE(fp.cpu.empty());
  EXPECT_GE(fp.cores, 1);
  EXPECT_FALSE(fp.hostname.empty());

  // Only PDT_* vars, sorted by name.
  bool saw_a = false;
  bool saw_b = false;
  for (std::size_t i = 0; i < fp.pdt_env.size(); ++i) {
    EXPECT_EQ(fp.pdt_env[i].first.rfind("PDT_", 0), 0u)
        << "non-PDT var leaked: " << fp.pdt_env[i].first;
    if (i > 0) {
      EXPECT_LT(fp.pdt_env[i - 1].first, fp.pdt_env[i].first)
          << "env not sorted";
    }
    if (fp.pdt_env[i].first == "PDT_FP_TEST_A") {
      saw_a = true;
      EXPECT_EQ(fp.pdt_env[i].second, "1");
    }
    if (fp.pdt_env[i].first == "PDT_FP_TEST_B") saw_b = true;
  }
  EXPECT_TRUE(saw_a && saw_b);
}

TEST(EnvFingerprint, WritesDeterministicJsonObject) {
  EnvFingerprint fp;
  fp.git_sha = "abc123";
  fp.git_dirty = true;
  fp.compiler = "gcc 13.2.0";
  fp.flags = "-O2 -g";
  fp.cpu = "Test CPU";
  fp.cores = 8;
  fp.hostname = "box";
  fp.pdt_env = {{"PDT_HOST", "1"}, {"PDT_SCALE", "0.05"}};

  std::ostringstream os1, os2;
  {
    JsonWriter w(os1);
    write_fingerprint(w, fp);
  }
  {
    JsonWriter w(os2);
    write_fingerprint(w, fp);
  }
  EXPECT_EQ(os1.str(), os2.str()) << "byte-identical re-render";
  const std::string out = os1.str();
  EXPECT_NE(out.find("\"git_sha\":\"abc123\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"git_dirty\":true"), std::string::npos);
  EXPECT_NE(out.find("\"compiler\":\"gcc 13.2.0\""), std::string::npos);
  EXPECT_NE(out.find("\"cores\":8"), std::string::npos);
  EXPECT_NE(out.find("\"PDT_HOST\":\"1\""), std::string::npos);
  EXPECT_LT(out.find("\"PDT_HOST\""), out.find("\"PDT_SCALE\""));
}

TEST(EnvFingerprint, PdtThreadsIsLiftedOutOfEnvAndOmittedWhenUnset) {
  // PDT_THREADS gets its own first-class field (next to cores) so
  // pdt-trend explain can attribute a perf move to a requested
  // thread-count change without digging through the env map.
  ::setenv("PDT_THREADS", "16", 1);
  const EnvFingerprint with = EnvFingerprint::collect();
  ::unsetenv("PDT_THREADS");
  const EnvFingerprint without = EnvFingerprint::collect();
  EXPECT_EQ(with.pdt_threads, "16");
  EXPECT_TRUE(without.pdt_threads.empty());

  std::ostringstream os_with, os_without;
  {
    JsonWriter w(os_with);
    write_fingerprint(w, with);
  }
  {
    JsonWriter w(os_without);
    write_fingerprint(w, without);
  }
  EXPECT_NE(os_with.str().find("\"pdt_threads\":\"16\""), std::string::npos)
      << os_with.str();
  // Byte-identity rule: the key is omitted entirely when unset, so
  // pre-existing fingerprints don't change by a single byte.
  EXPECT_EQ(os_without.str().find("\"pdt_threads\""), std::string::npos)
      << os_without.str();
}

TEST(EnvFingerprint, CollectIsCachedPerProcess) {
  // bench_util::fingerprint() memoizes; collect() itself must also be
  // stable call-to-call for the fields that cannot change mid-process.
  const EnvFingerprint a = EnvFingerprint::collect();
  const EnvFingerprint b = EnvFingerprint::collect();
  EXPECT_EQ(a.git_sha, b.git_sha);
  EXPECT_EQ(a.compiler, b.compiler);
  EXPECT_EQ(a.flags, b.flags);
  EXPECT_EQ(a.cpu, b.cpu);
  EXPECT_EQ(a.cores, b.cores);
  EXPECT_EQ(a.hostname, b.hostname);
}

}  // namespace
}  // namespace pdt::obs
