// Invariants of the per-rank memory accounting and its MemLedger
// attribution, across all three parallel formulations:
//
//  * the peak is the running maximum of live bytes over the event stream,
//    and live bytes never go negative at any event;
//  * the ledger's (tag, phase, level) cell deltas telescope back to each
//    rank's live bytes;
//  * every byte charged over a run is released by teardown (live == 0);
//  * the analytic Section-4 prediction brackets the measured bottleneck
//    for the synchronous formulation;
//  * the per-rank peak shrinks as processors are added at fixed N — the
//    paper's memory-scalability claim, and the basis of pdt-report's
//    verdict.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "alist/parallel.hpp"
#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "mpsim/machine.hpp"
#include "obs/observability.hpp"

namespace pdt::obs {
namespace {

data::Dataset quest_binned(std::size_t n, std::uint64_t seed = 31) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = seed}),
      data::quest_paper_bins());
}

std::int64_t max_rank_peak(const std::vector<mpsim::MemStats>& mem) {
  std::int64_t peak = 0;
  for (const mpsim::MemStats& m : mem) peak = std::max(peak, m.peak_total);
  return peak;
}

// ------------------------------------------------- machine-level stream --

/// Records every alloc/free the Machine emits, tracking the running
/// maximum of live_after per rank.
struct StreamRecorder : mpsim::ChargeObserver {
  struct PerRank {
    std::int64_t running_max = 0;
    std::int64_t min_live_after = 0;
    std::uint64_t events = 0;
  };
  std::vector<PerRank> ranks;

  void on_charge(mpsim::Rank, mpsim::ChargeKind, mpsim::Time, mpsim::Time,
                 double, double) override {}
  void see(mpsim::Rank r, std::int64_t live_after) {
    if (static_cast<std::size_t>(r) >= ranks.size()) {
      ranks.resize(static_cast<std::size_t>(r) + 1);
    }
    PerRank& pr = ranks[static_cast<std::size_t>(r)];
    pr.running_max = std::max(pr.running_max, live_after);
    pr.min_live_after = std::min(pr.min_live_after, live_after);
    ++pr.events;
  }
  void on_alloc(mpsim::Rank r, mpsim::MemTag, std::int64_t,
                std::int64_t live_after) override {
    see(r, live_after);
  }
  void on_free(mpsim::Rank r, mpsim::MemTag, std::int64_t,
               std::int64_t live_after) override {
    see(r, live_after);
  }
};

TEST(MemAccounts, PeakIsTheRunningMaxOfLiveAndLiveNeverGoesNegative) {
  mpsim::Machine m(2, mpsim::CostModel::sp2());
  StreamRecorder rec;
  m.set_observer(&rec);

  m.alloc_bytes(0, mpsim::MemTag::Records, 1000);
  m.alloc_bytes(0, mpsim::MemTag::Histogram, 400);
  m.free_bytes(0, mpsim::MemTag::Records, 600);
  m.alloc_bytes(0, mpsim::MemTag::Scratch, 100);
  m.free_bytes(0, mpsim::MemTag::Histogram, 400);
  m.free_bytes(0, mpsim::MemTag::Scratch, 100);
  m.free_bytes(0, mpsim::MemTag::Records, 400);
  m.alloc_bytes(1, mpsim::MemTag::CollectiveBuffer, 50);
  m.free_bytes(1, mpsim::MemTag::CollectiveBuffer, 50);

  EXPECT_EQ(m.mem(0).peak_total, 1400);
  EXPECT_EQ(m.mem(0).live_total, 0);
  EXPECT_EQ(m.mem(0).peak_for(mpsim::MemTag::Records), 1000);
  EXPECT_EQ(m.mem(1).peak_total, 50);
  ASSERT_EQ(rec.ranks.size(), 2u);
  EXPECT_EQ(rec.ranks[0].running_max, m.mem(0).peak_total);
  EXPECT_EQ(rec.ranks[1].running_max, m.mem(1).peak_total);
  for (const StreamRecorder::PerRank& pr : rec.ranks) {
    EXPECT_GE(pr.min_live_after, 0) << "live bytes dipped below zero";
  }
  EXPECT_EQ(rec.ranks[0].events, 7u);
  EXPECT_EQ(m.max_peak_bytes(), 1400);
}

TEST(MemAccounts, ZeroByteEventsAreDroppedAndResetClears) {
  mpsim::Machine m(1, mpsim::CostModel::sp2());
  StreamRecorder rec;
  m.set_observer(&rec);
  m.alloc_bytes(0, mpsim::MemTag::Records, 0);
  m.free_bytes(0, mpsim::MemTag::Records, 0);
  EXPECT_TRUE(rec.ranks.empty()) << "zero-byte events must not reach observers";
  m.alloc_bytes(0, mpsim::MemTag::Records, 64);
  m.reset();
  EXPECT_EQ(m.mem(0).live_total, 0);
  EXPECT_EQ(m.mem(0).peak_total, 0);
}

// ------------------------------------------------------- run invariants --

class MemLedgerRun
    : public ::testing::TestWithParam<std::tuple<core::Formulation, int>> {};

TEST_P(MemLedgerRun, ChargesTelescopeAndEveryByteIsReleased) {
  const auto [f, procs] = GetParam();
  const data::Dataset ds = quest_binned(2500);
  core::ParOptions opt;
  opt.num_procs = procs;
  Observability o;
  opt.obs = &o;
  const core::ParResult res = core::build(f, ds, opt);

  // Machine accounts: the run returned every byte it charged, on every
  // rank and for every structure, and peaked above the steady state.
  ASSERT_EQ(res.mem.size(), static_cast<std::size_t>(procs));
  std::int64_t sum_peaks = 0;
  for (int r = 0; r < procs; ++r) {
    const mpsim::MemStats& m = res.mem[static_cast<std::size_t>(r)];
    EXPECT_EQ(m.live_total, 0) << "rank " << r << " leaked bytes";
    EXPECT_GT(m.peak_total, 0) << "rank " << r << " never held memory";
    for (int t = 0; t < mpsim::kNumMemTags; ++t) {
      const auto tag = static_cast<mpsim::MemTag>(t);
      EXPECT_EQ(m.live_for(tag), 0)
          << "rank " << r << " leaked " << mpsim::to_string(tag);
      EXPECT_GE(m.peak_for(tag), 0);
    }
    sum_peaks += m.peak_total;
  }
  // All P ranks together must at some point have held at least the whole
  // dataset's records.
  const MemLedger& ledger = o.mem_ledger();
  EXPECT_GT(sum_peaks, 0);
  EXPECT_GT(ledger.events(), 0u);

  // Ledger mirror: same event stream, so same live/peak per rank; total
  // charged equals total released at teardown.
  ASSERT_EQ(ledger.num_ranks(), procs);
  for (int r = 0; r < procs; ++r) {
    EXPECT_EQ(ledger.live_bytes(r), 0) << "rank " << r;
    EXPECT_EQ(ledger.peak_bytes(r),
              res.mem[static_cast<std::size_t>(r)].peak_total)
        << "ledger peak must equal the machine's high-water mark, rank " << r;
    EXPECT_GT(ledger.charged_bytes(r), 0) << "rank " << r;
    EXPECT_EQ(ledger.charged_bytes(r), ledger.released_bytes(r))
        << "rank " << r << ": bytes charged != bytes released";
  }

  // Telescoping: the per-(tag, phase, level) cell deltas sum back to each
  // rank's live bytes (zero at teardown), and no cell's peak is below its
  // final live value.
  std::vector<std::int64_t> live_by_rank(static_cast<std::size_t>(procs), 0);
  for (const MemLedger::Row& row : ledger.rows()) {
    ASSERT_GE(row.rank, 0);
    ASSERT_LT(row.rank, procs);
    live_by_rank[static_cast<std::size_t>(row.rank)] += row.live;
    EXPECT_GE(row.peak, row.live);
  }
  for (int r = 0; r < procs; ++r) {
    EXPECT_EQ(live_by_rank[static_cast<std::size_t>(r)], 0)
        << "phase deltas must telescope to rank live bytes, rank " << r;
  }

  // top_segments is a size-limited, peak-descending view of the rows.
  const std::vector<MemLedger::Row> top = ledger.top_segments(0, 3);
  EXPECT_LE(top.size(), 3u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].peak, top[i].peak);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormulations, MemLedgerRun,
    ::testing::Combine(::testing::Values(core::Formulation::Sync,
                                         core::Formulation::Partitioned,
                                         core::Formulation::Hybrid),
                       ::testing::Values(4, 8)),
    [](const auto& info) {
      return std::string(core::to_string(std::get<0>(info.param))) + "_P" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------ prediction & scaling --

// With a small histogram buffer the O(N/P) records term dominates, and
// the measured bottleneck must match the Section-4 analytic bound within
// a stated tolerance (the slack is real: LPT packing and hybrid moves
// make some rank hold more than the even N/P share for a while).
TEST(MemPrediction, SyncBottleneckMatchesSectionFourBound) {
  const data::Dataset ds = quest_binned(4000);
  for (const int procs : {4, 8}) {
    core::ParOptions opt;
    opt.num_procs = procs;
    opt.comm_buffer_nodes = 4;
    const core::ParResult res = core::build_sync(ds, opt);
    ASSERT_FALSE(res.mem_predicted.empty());
    const double measured = static_cast<double>(max_rank_peak(res.mem));
    const double predicted = static_cast<double>(res.mem_predicted.total());
    EXPECT_GT(predicted, 0.0);
    const double err = (measured - predicted) / predicted;
    EXPECT_LT(std::abs(err), 0.35)
        << "P=" << procs << ": measured " << measured << " vs predicted "
        << predicted;
    // The records term alone must be a lower bound: some rank holds at
    // least the even share of the dataset.
    EXPECT_GE(measured,
              static_cast<double>(res.mem_predicted.records_bytes));
  }
}

// Fixed N, growing P: the synchronous formulation's per-rank bottleneck
// must never grow, and must strictly shrink from P=1 to P=8 — the
// memory-scalability verdict the report renders, as a hard test.
TEST(MemScaling, SyncPerRankPeakShrinksWithProcessors) {
  const data::Dataset ds = quest_binned(4000);
  std::vector<std::int64_t> peaks;
  for (const int procs : {1, 2, 4, 8}) {
    core::ParOptions opt;
    opt.num_procs = procs;
    opt.comm_buffer_nodes = 4;
    const core::ParResult res = core::build_sync(ds, opt);
    peaks.push_back(max_rank_peak(res.mem));
  }
  for (std::size_t i = 1; i < peaks.size(); ++i) {
    EXPECT_LE(peaks[i], peaks[i - 1])
        << "per-rank peak grew from P-step " << i - 1 << " to " << i;
  }
  EXPECT_LT(peaks.back(), peaks.front())
      << "max-rank peak must strictly decrease from P=1 to P=8";
}

// The SPRINT-vs-ScalParC contrast, now in measured bytes: the replicated
// hash table's per-rank peak is ~P times the distributed one's.
TEST(MemScaling, ReplicatedSprintHashTableDwarfsScalParC) {
  const data::Dataset raw =
      data::quest_generate(2000, {.function = 2, .seed = 9});
  alist::ParallelSprintOptions opt;
  opt.num_procs = 8;
  opt.grow.max_depth = 10;

  opt.scheme = alist::HashTableScheme::ReplicatedSprint;
  const auto sprint = alist::build_parallel_sprint(raw, opt);
  opt.scheme = alist::HashTableScheme::DistributedScalParC;
  const auto scalparc = alist::build_parallel_sprint(raw, opt);

  auto hash_peak = [](const alist::ParallelSprintResult& res) {
    std::int64_t peak = 0;
    for (const mpsim::MemStats& m : res.mem) {
      peak = std::max(peak, m.peak_for(mpsim::MemTag::HashTable));
    }
    return peak;
  };
  EXPECT_EQ(hash_peak(sprint), 8 * hash_peak(scalparc));
  // Both hold identical O(N/P) attribute-list sections.
  EXPECT_EQ(sprint.mem[0].peak_for(mpsim::MemTag::AttributeList),
            scalparc.mem[0].peak_for(mpsim::MemTag::AttributeList));
}

}  // namespace
}  // namespace pdt::obs
