// The event-sourced execution log (DESIGN.md §8): the recorder's shadow
// clocks track the machine's bit-exactly through charges, barriers,
// waits, and timeouts; phase/level stamps land on the right events; and
// the wait-for blame analyzer attributes idle gaps to the rank (and
// phase) everyone was waiting on.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "mpsim/event_log.hpp"
#include "mpsim/machine.hpp"
#include "obs/blame.hpp"
#include "obs/observability.hpp"

namespace pdt::obs {
namespace {

using mpsim::EventRecorder;
using mpsim::ExecEvent;
using mpsim::Machine;

TEST(EventLogTest, ShadowClocksTrackMachineBitExactly) {
  Machine m(4);
  EventRecorder rec;
  m.set_event_recorder(&rec);

  m.charge_compute_time(0, 10.7);
  m.charge_compute_time(1, 3.3);
  m.charge_comm(2, 40.0 + 5 * 0.11, 5.0, 5.0, 1, 40.0);
  m.charge_io(3, 2.5);
  m.barrier_over({0, 1, 2, 3});
  m.charge_compute_time(1, 0.1);
  m.wait_until(0, 55.0);
  m.wait_for(2, 1);

  ASSERT_EQ(rec.nprocs(), 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(rec.clocks()[static_cast<std::size_t>(r)], m.clock(r))
        << "rank " << r << " shadow clock diverged";
  }
  EXPECT_EQ(rec.max_clock(), m.max_clock());
}

TEST(EventLogTest, PhaseAndLevelStampsLandOnCharges) {
  Machine m(2);
  EventRecorder rec;
  m.set_event_recorder(&rec);

  rec.open_phase("histogram");
  m.set_rank_level(0, 3);
  m.charge_compute_time(0, 1.0);
  rec.close_phase();
  m.charge_compute_time(1, 2.0);  // outside any phase

  ASSERT_EQ(rec.events().size(), 2u);
  const ExecEvent& in_phase = rec.events()[0];
  EXPECT_EQ(rec.phase_names()[static_cast<std::size_t>(in_phase.phase)],
            "histogram");
  EXPECT_EQ(in_phase.level, 3);
  const ExecEvent& outside = rec.events()[1];
  EXPECT_EQ(outside.phase, 0);
  EXPECT_EQ(rec.phase_names()[0], "(unattributed)");
  EXPECT_EQ(outside.level, -1);
}

TEST(EventLogTest, BlameChargesIdleToTheLastArrival) {
  Machine m(3);
  EventRecorder rec;
  m.set_event_recorder(&rec);

  rec.open_phase("split-eval");
  m.set_rank_level(0, 2);
  m.set_rank_level(1, 2);
  m.set_rank_level(2, 2);
  m.charge_compute_time(0, 10.0);
  m.charge_compute_time(1, 30.0);  // rank 1 is the holder
  m.charge_compute_time(2, 25.0);
  rec.close_phase();
  m.barrier_over({0, 1, 2});

  const std::vector<BlameEdge> edges = blame_edges(rec);
  ASSERT_EQ(edges.size(), 2u);
  // Sorted by idle descending: rank 0 idled 20us, rank 2 idled 5us,
  // both waiting on rank 1's split-eval work.
  EXPECT_EQ(edges[0].idler, 0);
  EXPECT_EQ(edges[0].holder, 1);
  EXPECT_EQ(edges[0].idler_level, 2);
  EXPECT_DOUBLE_EQ(edges[0].idle_us, 20.0);
  EXPECT_EQ(rec.phase_names()[static_cast<std::size_t>(edges[0].holder_phase)],
            "split-eval");
  EXPECT_EQ(edges[1].idler, 2);
  EXPECT_EQ(edges[1].holder, 1);
  EXPECT_DOUBLE_EQ(edges[1].idle_us, 5.0);
  // idle_pct is relative to the idler's final clock (30us post-barrier).
  EXPECT_NEAR(edges[0].idle_pct, 20.0 / 30.0 * 100.0, 1e-9);
}

TEST(EventLogTest, WaitForBlamesThePeer) {
  Machine m(2);
  EventRecorder rec;
  m.set_event_recorder(&rec);

  rec.open_phase("host-gather");
  m.charge_compute_time(0, 50.0);
  rec.close_phase();
  m.charge_compute_time(1, 10.0);
  m.wait_for(1, 0);

  const std::vector<BlameEdge> edges = blame_edges(rec);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].idler, 1);
  EXPECT_EQ(edges[0].holder, 0);
  EXPECT_DOUBLE_EQ(edges[0].idle_us, 40.0);
  EXPECT_EQ(rec.phase_names()[static_cast<std::size_t>(edges[0].holder_phase)],
            "host-gather");
}

// Full-build parity: the recorder that rode along inside Observability
// reports exactly the parallel time the run returned, for every
// formulation at several processor counts.
class EventLogBuild
    : public ::testing::TestWithParam<std::tuple<core::Formulation, int>> {};

TEST_P(EventLogBuild, RecorderMaxClockEqualsParallelTime) {
  const auto [f, procs] = GetParam();
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(2000, {.function = 2, .seed = 17}),
      data::quest_paper_bins());
  core::ParOptions opt;
  opt.num_procs = procs;
  Observability o;
  o.enable_event_log();
  opt.obs = &o;
  const core::ParResult res = core::build(f, ds, opt);

  const EventRecorder* rec = o.event_log();
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->nprocs(), procs);
  EXPECT_GT(rec->events().size(), 0u);
  // Bit-exact, not approximate: the shadow clocks ran the same arithmetic.
  EXPECT_EQ(rec->max_clock(), res.parallel_time);
}

INSTANTIATE_TEST_SUITE_P(
    Formulations, EventLogBuild,
    ::testing::Combine(::testing::Values(core::Formulation::Sync,
                                         core::Formulation::Partitioned,
                                         core::Formulation::Hybrid),
                       ::testing::Values(2, 4, 8)));

}  // namespace
}  // namespace pdt::obs
