// The observability layer is passive: attaching it must not perturb the
// simulation by a single bit. These tests run every formulation with and
// without an Observability sink and require bit-identical virtual time
// and accounting — which also pins the disabled path to the pre-obs seed
// behaviour (the disabled path is the original code plus one branch).
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "obs/observability.hpp"

namespace pdt::core {
namespace {

data::Dataset quest_binned(std::size_t n, std::uint64_t seed = 31) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = seed}),
      data::quest_paper_bins());
}

void expect_bit_identical(const ParResult& off, const ParResult& on,
                          const char* what) {
  EXPECT_EQ(off.parallel_time, on.parallel_time) << what << ": max_clock";
  EXPECT_EQ(off.totals.compute_time, on.totals.compute_time) << what;
  EXPECT_EQ(off.totals.comm_time, on.totals.comm_time) << what;
  EXPECT_EQ(off.totals.io_time, on.totals.io_time) << what;
  EXPECT_EQ(off.totals.idle_time, on.totals.idle_time) << what;
  EXPECT_EQ(off.totals.words_sent, on.totals.words_sent) << what;
  EXPECT_EQ(off.totals.messages_sent, on.totals.messages_sent) << what;
  EXPECT_EQ(off.records_moved, on.records_moved) << what;
  EXPECT_EQ(off.histogram_words, on.histogram_words) << what;
  EXPECT_EQ(off.levels, on.levels) << what;
  EXPECT_EQ(off.partition_splits, on.partition_splits) << what;
  EXPECT_EQ(off.rejoins, on.rejoins) << what;
  ASSERT_EQ(off.per_rank.size(), on.per_rank.size()) << what;
  for (std::size_t r = 0; r < off.per_rank.size(); ++r) {
    EXPECT_EQ(off.per_rank[r].busy_time(), on.per_rank[r].busy_time())
        << what << ": rank " << r;
    EXPECT_EQ(off.per_rank[r].idle_time, on.per_rank[r].idle_time)
        << what << ": rank " << r;
  }
  // The byte accounts are always-on in the Machine; attaching the ledger
  // must not change a single byte of them.
  ASSERT_EQ(off.mem.size(), on.mem.size()) << what;
  for (std::size_t r = 0; r < off.mem.size(); ++r) {
    EXPECT_EQ(off.mem[r].peak_total, on.mem[r].peak_total)
        << what << ": mem peak, rank " << r;
    EXPECT_EQ(off.mem[r].live_total, on.mem[r].live_total)
        << what << ": mem live, rank " << r;
    for (int t = 0; t < mpsim::kNumMemTags; ++t) {
      const auto tag = static_cast<mpsim::MemTag>(t);
      EXPECT_EQ(off.mem[r].peak_for(tag), on.mem[r].peak_for(tag))
          << what << ": rank " << r << " " << mpsim::to_string(tag);
    }
  }
  EXPECT_EQ(off.mem_predicted.total(), on.mem_predicted.total()) << what;
  EXPECT_TRUE(off.tree.same_as(on.tree)) << what << ": tree";
}

class ObsParity : public ::testing::TestWithParam<std::tuple<Formulation, int>> {
};

TEST_P(ObsParity, AttachingObservabilityNeverChangesTheRun) {
  const auto [f, procs] = GetParam();
  const data::Dataset ds = quest_binned(2500);
  ParOptions opt;
  opt.num_procs = procs;

  const ParResult off = build(f, ds, opt);

  obs::Observability o(obs::ProfilerConfig{.timeline = true});
  opt.obs = &o;
  const ParResult on = build(f, ds, opt);

  expect_bit_identical(off, on, to_string(f));

  // And the instrumented run did actually observe the machine.
  EXPECT_GT(o.profiler().phase_totals(0, obs::kNoLevel, /*any_level=*/true)
                    .charges +
                o.profiler().rows().size(),
            0u);
  const auto totals = o.profiler().level_rank_totals(obs::kNoLevel, true);
  double busy = 0.0;
  for (const auto& t : totals) busy += t.busy();
  EXPECT_DOUBLE_EQ(busy, on.totals.busy_time())
      << "profiler must account every busy microsecond";

  // The comm ledger and critical-path tracer were attached for the
  // instrumented run (which the parity check above proved is bit-identical
  // to the bare run) and both actually observed it.
  EXPECT_GT(o.comm_ledger().entries().size(), 0u);
  EXPECT_EQ(o.comm_ledger().num_ranks(), procs);
  const auto path = o.critical_path().path();
  ASSERT_GT(path.segments.size(), 0u);
  EXPECT_EQ(path.max_clock_us, on.parallel_time)
      << "critical path must end exactly at max_clock";
  EXPECT_GT(o.critical_path().barriers(), 0u);

  // The mem ledger rode along on the same (bit-identical) run and saw
  // every byte event the machine accounts saw.
  EXPECT_GT(o.mem_ledger().events(), 0u);
  ASSERT_EQ(o.mem_ledger().num_ranks(), procs);
  for (int r = 0; r < procs; ++r) {
    EXPECT_EQ(o.mem_ledger().peak_bytes(r), on.mem[static_cast<std::size_t>(r)]
                                                .peak_total)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormulations, ObsParity,
    ::testing::Combine(::testing::Values(Formulation::Sync,
                                         Formulation::Partitioned,
                                         Formulation::Hybrid),
                       ::testing::Values(4, 8)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_P" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ObsParity, ExactContinuousSortPhaseAlsoBitIdentical) {
  const data::Dataset ds = data::quest_generate(800, {.function = 2,
                                                      .seed = 5});
  ParOptions opt;
  opt.num_procs = 4;
  opt.exact_continuous = true;
  const ParResult off = build_sync(ds, opt);
  obs::Observability o;
  opt.obs = &o;
  const ParResult on = build_sync(ds, opt);
  expect_bit_identical(off, on, "sync exact-continuous");
  bool has_sort = false;
  for (const auto& n : o.profiler().phase_names()) has_sort |= (n == "sort");
  EXPECT_TRUE(has_sort) << "the parallel-sort phase must be annotated";
}

// The host profiler reads a wall clock and writes its own cells; the
// virtual run it rides must stay bit-identical, and all the virtual
// observers must see exactly what they saw without it.
TEST(ObsParity, HostProfilerNeverChangesTheVirtualRun) {
  const data::Dataset ds = quest_binned(2500);
  for (const Formulation f :
       {Formulation::Sync, Formulation::Partitioned, Formulation::Hybrid}) {
    ParOptions opt;
    opt.num_procs = 8;

    obs::Observability plain(obs::ProfilerConfig{.timeline = true});
    opt.obs = &plain;
    const ParResult off = build(f, ds, opt);

    obs::Observability hosted(obs::ProfilerConfig{.timeline = true});
    hosted.enable_host_profiler();
    opt.obs = &hosted;
    const ParResult on = build(f, ds, opt);

    expect_bit_identical(off, on, to_string(f));

    // The virtual profiler cells must be identical too — same rows, same
    // totals — because nothing about the attribution machinery changed.
    const auto off_rows = plain.profiler().rows();
    const auto on_rows = hosted.profiler().rows();
    ASSERT_EQ(off_rows.size(), on_rows.size()) << to_string(f);
    for (std::size_t i = 0; i < off_rows.size(); ++i) {
      EXPECT_EQ(off_rows[i].phase, on_rows[i].phase);
      EXPECT_EQ(off_rows[i].level, on_rows[i].level);
      EXPECT_EQ(off_rows[i].rank, on_rows[i].rank);
      EXPECT_EQ(off_rows[i].totals.total(), on_rows[i].totals.total());
      EXPECT_EQ(off_rows[i].totals.charges, on_rows[i].totals.charges);
    }

    // And the host profiler actually rode along: it saw every charge
    // after the anchoring first one.
    const obs::HostProfiler* h = hosted.host_profiler();
    ASSERT_NE(h, nullptr);
    std::uint64_t virtual_charges = 0;
    for (const auto& row : on_rows) virtual_charges += row.totals.charges;
    EXPECT_EQ(h->samples(), virtual_charges - 1)
        << to_string(f) << ": one host sample per charge (first anchors)";
    EXPECT_EQ(h->num_ranks(), 8);
  }
}

// enable_host_profiler is idempotent and the accessor reflects state.
TEST(ObsParity, HostProfilerAccessor) {
  obs::Observability o;
  EXPECT_EQ(o.host_profiler(), nullptr);
  o.enable_host_profiler();
  const obs::HostProfiler* h = o.host_profiler();
  ASSERT_NE(h, nullptr);
  o.enable_host_profiler();  // second call keeps the first profiler
  EXPECT_EQ(o.host_profiler(), h);
}

TEST(ObsParity, MetricsAgreeWithRunAccounting) {
  const data::Dataset ds = quest_binned(2500);
  ParOptions opt;
  opt.num_procs = 8;
  obs::Observability o;
  opt.obs = &o;
  const ParResult res = build(Formulation::Hybrid, ds, opt);

  const auto& counters = o.metrics().counters();
  ASSERT_TRUE(counters.count("records_relocated"));
  ASSERT_TRUE(counters.count("words_all_reduced"));
  EXPECT_DOUBLE_EQ(counters.at("records_relocated").value(),
                   static_cast<double>(res.records_moved));
  EXPECT_DOUBLE_EQ(counters.at("words_all_reduced").value(),
                   res.histogram_words);

  const auto& gauges = o.metrics().gauges();
  ASSERT_TRUE(gauges.count("max_clock_us"));
  EXPECT_DOUBLE_EQ(gauges.at("max_clock_us").value(), res.parallel_time);
  ASSERT_TRUE(gauges.count("load_imbalance_overall"));
  EXPECT_GE(gauges.at("load_imbalance_overall").value(), 1.0);
}

}  // namespace
}  // namespace pdt::core
