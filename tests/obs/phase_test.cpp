#include "obs/phase.hpp"

#include <gtest/gtest.h>

#include "mpsim/machine.hpp"

namespace pdt::obs {
namespace {

/// Unit-friendly cost model: t_c = 1us so charge_compute(r, n) advances
/// the clock by exactly n microseconds.
mpsim::CostModel unit_costs() {
  mpsim::CostModel cm;
  cm.t_c = 1.0;
  cm.t_s = 0.0;
  cm.t_w = 0.0;
  cm.t_io = 1.0;
  return cm;
}

TEST(PhaseProfiler, ChargesOutsideAnyScopeAreUnattributed) {
  mpsim::Machine m(2, unit_costs());
  PhaseProfiler prof;
  m.set_observer(&prof);
  m.charge_compute(0, 5.0);

  EXPECT_EQ(prof.current_phase(), 0);
  EXPECT_EQ(prof.phase_name(0), "(unattributed)");
  const PhaseTotals t = prof.phase_totals(0, kNoLevel);
  EXPECT_DOUBLE_EQ(t.compute, 5.0);
  EXPECT_EQ(t.charges, 1u);
}

TEST(PhaseProfiler, InnermostOpenPhaseWins) {
  mpsim::Machine m(1, unit_costs());
  PhaseProfiler prof;
  m.set_observer(&prof);

  prof.open("outer");
  m.charge_compute(0, 1.0);
  prof.open("inner");
  m.charge_compute(0, 10.0);
  prof.close();
  m.charge_compute(0, 100.0);
  prof.close();
  m.charge_compute(0, 1000.0);

  const auto& names = prof.phase_names();
  ASSERT_EQ(names.size(), 3u);  // (unattributed), outer, inner
  const PhaseId outer = 1;
  const PhaseId inner = 2;
  EXPECT_EQ(names[outer], "outer");
  EXPECT_EQ(names[inner], "inner");
  EXPECT_DOUBLE_EQ(prof.phase_totals(outer, kNoLevel).compute, 101.0);
  EXPECT_DOUBLE_EQ(prof.phase_totals(inner, kNoLevel).compute, 10.0);
  EXPECT_DOUBLE_EQ(prof.phase_totals(0, kNoLevel).compute, 1000.0);
}

TEST(PhaseProfiler, ReusedNameAccumulatesIntoSameRow) {
  mpsim::Machine m(1, unit_costs());
  PhaseProfiler prof;
  m.set_observer(&prof);

  for (int i = 0; i < 3; ++i) {
    PhaseScope s(&prof, "histogram");
    m.charge_compute(0, 2.0);
  }
  ASSERT_EQ(prof.phase_names().size(), 2u);
  EXPECT_DOUBLE_EQ(prof.phase_totals(1, kNoLevel).compute, 6.0);
  EXPECT_EQ(prof.phase_totals(1, kNoLevel).charges, 3u);
}

TEST(PhaseProfiler, AllChargeKindsLandInTheirBuckets) {
  mpsim::Machine m(2, unit_costs());
  PhaseProfiler prof;
  m.set_observer(&prof);

  PhaseScope s(&prof, "p");
  m.charge_compute(0, 3.0);
  m.charge_comm(0, 7.0, 20.0, 10.0);
  m.charge_io(0, 2.0);
  m.wait_until(0, 20.0);  // clock at 12 -> 8us idle

  const PhaseTotals t = prof.phase_totals(1, kNoLevel);
  EXPECT_DOUBLE_EQ(t.compute, 3.0);
  EXPECT_DOUBLE_EQ(t.comm, 7.0);
  EXPECT_DOUBLE_EQ(t.io, 2.0);
  EXPECT_DOUBLE_EQ(t.idle, 8.0);
  EXPECT_DOUBLE_EQ(t.words_sent, 20.0);
  EXPECT_DOUBLE_EQ(t.words_received, 10.0);
  EXPECT_DOUBLE_EQ(t.busy(), 12.0);
  EXPECT_DOUBLE_EQ(t.total(), 20.0);
}

TEST(PhaseProfiler, NoOpWaitIsNotCounted) {
  mpsim::Machine m(1, unit_costs());
  PhaseProfiler prof;
  m.set_observer(&prof);
  m.charge_compute(0, 5.0);
  m.wait_until(0, 3.0);  // already past 3us: no idle charge
  EXPECT_EQ(prof.phase_totals(0, kNoLevel).charges, 1u);
  EXPECT_DOUBLE_EQ(prof.phase_totals(0, kNoLevel).idle, 0.0);
}

TEST(PhaseProfiler, LevelScopeAttributesAndRestores) {
  mpsim::Machine m(1, unit_costs());
  PhaseProfiler prof;
  m.set_observer(&prof);

  EXPECT_EQ(prof.current_level(), kNoLevel);
  {
    LevelScope l0(&prof, 0);
    m.charge_compute(0, 1.0);
    {
      LevelScope l3(&prof, 3);  // a nested partition at depth 3
      m.charge_compute(0, 10.0);
    }
    EXPECT_EQ(prof.current_level(), 0);
    m.charge_compute(0, 100.0);
  }
  EXPECT_EQ(prof.current_level(), kNoLevel);
  m.charge_compute(0, 1000.0);

  EXPECT_DOUBLE_EQ(prof.phase_totals(0, 0).compute, 101.0);
  EXPECT_DOUBLE_EQ(prof.phase_totals(0, 3).compute, 10.0);
  EXPECT_DOUBLE_EQ(prof.phase_totals(0, kNoLevel).compute, 1000.0);
  EXPECT_DOUBLE_EQ(prof.phase_totals(0, kNoLevel, /*any_level=*/true).compute,
                   1111.0);
  EXPECT_EQ(prof.max_level(), 3);
}

TEST(PhaseProfiler, NullScopesAreNoOps) {
  PhaseScope p(nullptr, "x");
  LevelScope l(nullptr, 5);
  // Nothing to assert beyond "does not crash": the disabled path.
  SUCCEED();
}

TEST(PhaseProfiler, RowsAreSortedAndComplete) {
  mpsim::Machine m(4, unit_costs());
  PhaseProfiler prof;
  m.set_observer(&prof);

  {
    PhaseScope s(&prof, "b");
    m.charge_compute(3, 1.0);
    m.charge_compute(1, 1.0);
  }
  {
    PhaseScope s(&prof, "a");
    m.charge_compute(2, 1.0);
  }
  const auto rows = prof.rows();
  ASSERT_EQ(rows.size(), 3u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const bool ordered =
        rows[i - 1].phase < rows[i].phase ||
        (rows[i - 1].phase == rows[i].phase &&
         (rows[i - 1].level < rows[i].level ||
          (rows[i - 1].level == rows[i].level &&
           rows[i - 1].rank < rows[i].rank)));
    EXPECT_TRUE(ordered) << "rows must sort by (phase, level, rank)";
  }
  EXPECT_EQ(prof.num_ranks(), 4);
}

TEST(PhaseProfiler, LoadImbalanceIsMaxOverMean) {
  mpsim::Machine m(2, unit_costs());
  PhaseProfiler prof;
  m.set_observer(&prof);
  LevelScope l(&prof, 0);
  m.charge_compute(0, 30.0);
  m.charge_compute(1, 10.0);
  // max 30 / mean 20 = 1.5
  EXPECT_DOUBLE_EQ(prof.load_imbalance(0), 1.5);
  EXPECT_DOUBLE_EQ(prof.load_imbalance(7), 0.0) << "no work at that level";
}

TEST(PhaseProfiler, TimelineCoalescesAdjacentCharges) {
  mpsim::Machine m(2, unit_costs());
  PhaseProfiler prof(ProfilerConfig{.timeline = true});
  m.set_observer(&prof);

  {
    PhaseScope s(&prof, "p");
    m.charge_compute(0, 1.0);
    m.charge_compute(0, 2.0);  // gapless, same attribution: coalesce
  }
  m.charge_compute(0, 4.0);    // phase changed: new slice
  m.charge_compute(1, 8.0);    // other rank: its own slice

  const auto& sl = prof.slices();
  ASSERT_EQ(sl.size(), 3u);
  EXPECT_EQ(sl[0].rank, 0);
  EXPECT_DOUBLE_EQ(sl[0].start, 0.0);
  EXPECT_DOUBLE_EQ(sl[0].dur, 3.0);
  EXPECT_EQ(sl[1].phase, 0);
  EXPECT_DOUBLE_EQ(sl[1].dur, 4.0);
  EXPECT_EQ(sl[2].rank, 1);
  EXPECT_FALSE(prof.truncated());
}

TEST(PhaseProfiler, TimelineOffCollectsNoSlices) {
  mpsim::Machine m(1, unit_costs());
  PhaseProfiler prof;  // timeline defaults to off
  m.set_observer(&prof);
  m.charge_compute(0, 5.0);
  EXPECT_TRUE(prof.slices().empty());
  EXPECT_DOUBLE_EQ(prof.phase_totals(0, kNoLevel).compute, 5.0)
      << "aggregates still collected";
}

TEST(PhaseProfiler, SliceCapSetsTruncatedFlag) {
  mpsim::Machine m(1, unit_costs());
  PhaseProfiler prof(ProfilerConfig{.timeline = true, .max_slices = 1});
  m.set_observer(&prof);
  {
    PhaseScope a(&prof, "a");
    m.charge_compute(0, 1.0);
  }
  {
    PhaseScope b(&prof, "b");
    m.charge_compute(0, 1.0);  // second distinct slice: over the cap
  }
  EXPECT_EQ(prof.slices().size(), 1u);
  EXPECT_TRUE(prof.truncated());
  EXPECT_DOUBLE_EQ(prof.phase_totals(2, kNoLevel).compute, 1.0)
      << "aggregation keeps going past the slice cap";
}

TEST(PhaseProfiler, ManyCellsSurviveTableGrowth) {
  mpsim::Machine m(8, unit_costs());
  PhaseProfiler prof;
  m.set_observer(&prof);
  // 4 phases x 32 levels x 8 ranks = 1024 cells, forcing several rehashes.
  const char* names[] = {"a", "b", "c", "d"};
  for (const char* n : names) {
    PhaseScope s(&prof, n);
    for (int level = 0; level < 32; ++level) {
      LevelScope l(&prof, level);
      for (int r = 0; r < 8; ++r) m.charge_compute(r, 1.0);
    }
  }
  EXPECT_EQ(prof.rows().size(), 4u * 32u * 8u);
  for (PhaseId p = 1; p <= 4; ++p) {
    EXPECT_DOUBLE_EQ(
        prof.phase_totals(p, kNoLevel, /*any_level=*/true).compute, 32.0 * 8.0);
  }
}

}  // namespace
}  // namespace pdt::obs
