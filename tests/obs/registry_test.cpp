#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

namespace pdt::obs {
namespace {

TEST(Counter, AddAndInc) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.add(2.5);
  c.inc();
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  g.set(1.0);
  g.set(-7.0);
  EXPECT_DOUBLE_EQ(g.value(), -7.0);
}

TEST(Histogram, EmptySummaryIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SummaryStatistics) {
  Histogram h;
  for (const double v : {4.0, 1.0, 10.0}) h.observe(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds everything below 1 (including 0 and negatives);
  // bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_of(-3.0), 0);
  EXPECT_EQ(Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(0.99), 0);
  EXPECT_EQ(Histogram::bucket_of(1.0), 1);
  EXPECT_EQ(Histogram::bucket_of(1.99), 1);
  EXPECT_EQ(Histogram::bucket_of(2.0), 2);
  EXPECT_EQ(Histogram::bucket_of(1024.0), 11);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<double>::infinity()),
            Histogram::kBuckets - 1)
      << "overflow clamps to the last bucket";
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<double>::quiet_NaN()), 0)
      << "NaN is not >= 1, lands in bucket 0";
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(3), 8.0);
}

TEST(Histogram, ObservationsFillBuckets) {
  Histogram h;
  h.observe(0.5);   // bucket 0
  h.observe(1.5);   // bucket 1
  h.observe(1.7);   // bucket 1
  h.observe(700.0); // bucket 10: [512, 1024)
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[10], 1u);
  std::uint64_t total = 0;
  for (const auto b : h.buckets()) total += b;
  EXPECT_EQ(total, h.count());
}

TEST(MetricsRegistry, SameNameSameHandle) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  a.add(1.0);
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_DOUBLE_EQ(b.value(), 1.0);
}

TEST(MetricsRegistry, HandlesSurviveLaterInsertions) {
  MetricsRegistry reg;
  Counter& first = reg.counter("aaa");
  // A burst of inserts that would invalidate vector-backed storage.
  for (int i = 0; i < 100; ++i) {
    reg.counter("k" + std::to_string(i)).inc();
  }
  first.add(5.0);
  EXPECT_DOUBLE_EQ(reg.counter("aaa").value(), 5.0);
}

TEST(MetricsRegistry, IterationIsLexicographic) {
  MetricsRegistry reg;
  reg.gauge("zeta").set(1);
  reg.gauge("alpha").set(2);
  reg.gauge("mid").set(3);
  std::vector<std::string> names;
  for (const auto& [name, g] : reg.gauges()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(MetricsRegistry, KindsAreIndependentNamespaces) {
  MetricsRegistry reg;
  reg.counter("n").add(1.0);
  reg.gauge("n").set(2.0);
  reg.histogram("n").observe(3.0);
  EXPECT_DOUBLE_EQ(reg.counter("n").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("n").value(), 2.0);
  EXPECT_EQ(reg.histogram("n").count(), 1u);
}

}  // namespace
}  // namespace pdt::obs
