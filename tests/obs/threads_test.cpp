// Unit tests for the thread-sharding runtime: ThreadRegistry shard-id
// handout and reuse, InstrumentedMutex contention telemetry, per-shard
// accumulation + deterministic shard-order folding in each collector,
// and the pdt-threads-v1 export shape.
//
// The registry and the contention table are process-global and shared
// with every other suite in this binary, so assertions are relative
// (deltas against a snapshot) rather than absolute.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/mem_ledger.hpp"
#include "obs/observability.hpp"
#include "obs/phase.hpp"
#include "obs/registry.hpp"
#include "obs/threads.hpp"

namespace pdt::obs {
namespace {

TEST(ThreadRegistry, ShardIdIsStablePerThreadAndDistinctAcrossThreads) {
  const int main_shard = ThreadRegistry::current_shard();
  ASSERT_GE(main_shard, 0);
  EXPECT_EQ(ThreadRegistry::current_shard(), main_shard)
      << "repeat calls must return the same lease";

  int worker_shard = -2;
  int worker_shard_again = -3;
  std::thread t([&] {
    worker_shard = ThreadRegistry::current_shard();
    worker_shard_again = ThreadRegistry::current_shard();
  });
  t.join();
  EXPECT_GE(worker_shard, 0);
  EXPECT_EQ(worker_shard, worker_shard_again);
  EXPECT_NE(worker_shard, main_shard);
}

TEST(ThreadRegistry, ExitedThreadsReleaseTheirIdForReuse) {
  int first = -1;
  std::thread a([&] { first = ThreadRegistry::current_shard(); });
  a.join();
  ASSERT_GE(first, 0);
  // Lowest-free-id acquire: with `a` gone its id is the lowest free one,
  // so the next registering thread gets exactly it.
  int second = -1;
  std::thread b([&] { second = ThreadRegistry::current_shard(); });
  b.join();
  EXPECT_EQ(second, first) << "ids must stay dense under thread churn";
}

TEST(ThreadRegistry, StatsTrackRegistrationsActiveAndPeak) {
  const ThreadRegistry::Stats before = ThreadRegistry::instance().stats();
  constexpr int kThreads = 3;
  std::atomic<int> registered{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> pool;
  std::vector<int> ids(kThreads, -1);
  for (int i = 0; i < kThreads; ++i) {
    pool.emplace_back([&, i] {
      ids[static_cast<std::size_t>(i)] = ThreadRegistry::current_shard();
      registered.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (registered.load() < kThreads) std::this_thread::yield();
  const ThreadRegistry::Stats held = ThreadRegistry::instance().stats();
  release.store(true);
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(held.registered, before.registered + kThreads);
  EXPECT_EQ(held.active, before.active + kThreads);
  EXPECT_GE(held.peak_active, before.active + kThreads);
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_GE(ids[static_cast<std::size_t>(i)], 0);
    for (int j = i + 1; j < kThreads; ++j) {
      EXPECT_NE(ids[static_cast<std::size_t>(i)],
                ids[static_cast<std::size_t>(j)])
          << "concurrent threads must hold distinct shards";
    }
  }
  const ThreadRegistry::Stats after = ThreadRegistry::instance().stats();
  EXPECT_EQ(after.active, before.active) << "joined threads release ids";
  EXPECT_EQ(after.overflow, before.overflow);
}

TEST(ContentionRegistry, InstrumentedMutexFeedsAcquisitionAndWaitCounters) {
  ContentionCounter* c =
      ContentionRegistry::instance().counter("test.threads.contention");
  const std::uint64_t acq0 = c->acquisitions.load();
  const std::uint64_t con0 = c->contended.load();

  InstrumentedMutex mu("test.threads.contention");
  mu.lock();
  mu.unlock();
  EXPECT_EQ(c->acquisitions.load(), acq0 + 1);
  EXPECT_EQ(c->contended.load(), con0) << "uncontended lock must not count";

  // Force contention: hold the lock while a second thread blocks on it.
  // The try_lock fast path fails for as long as we hold it, so one
  // attempt where the worker provably starts while we hold suffices;
  // retry a few times to be robust against scheduler delays.
  bool saw_contention = false;
  for (int attempt = 0; attempt < 50 && !saw_contention; ++attempt) {
    const std::uint64_t con_before = c->contended.load();
    mu.lock();
    std::atomic<bool> started{false};
    std::thread t([&] {
      started.store(true);
      mu.lock();
      mu.unlock();
    });
    while (!started.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    mu.unlock();
    t.join();
    saw_contention = c->contended.load() > con_before;
  }
  EXPECT_TRUE(saw_contention);
  EXPECT_GT(c->wait_ns.load(), 0u);
}

TEST(ContentionRegistry, StatsAreNameSortedAndShareCountersByName) {
  // Two mutexes with one name are one logical lock for telemetry.
  InstrumentedMutex a("test.threads.shared_name");
  InstrumentedMutex b("test.threads.shared_name");
  ContentionCounter* c =
      ContentionRegistry::instance().counter("test.threads.shared_name");
  const std::uint64_t acq0 = c->acquisitions.load();
  a.lock();
  a.unlock();
  b.lock();
  b.unlock();
  EXPECT_EQ(c->acquisitions.load(), acq0 + 2);

  const std::vector<LockStats> stats = ContentionRegistry::instance().stats();
  ASSERT_FALSE(stats.empty());
  for (std::size_t i = 1; i < stats.size(); ++i) {
    EXPECT_LT(stats[i - 1].name, stats[i].name)
        << "stats() must be name-sorted for deterministic export";
  }
}

TEST(PhaseProfilerShards, ConcurrentChargesFoldInShardOrder) {
  PhaseProfiler p;
  {
    PhaseScope ph(&p, "main-work");
    p.on_charge(0, mpsim::ChargeKind::Compute, 0.0, 10.0, 0.0, 0.0);
  }
  std::thread t([&] {
    PhaseScope ph(&p, "worker-work");
    LevelScope lv(&p, 1);
    p.on_charge(1, mpsim::ChargeKind::Comm, 0.0, 20.0, 3.0, 3.0);
  });
  t.join();

  // Both threads' cells fold into one deterministic view.
  const std::vector<PhaseProfiler::Row> before = p.rows();
  ASSERT_EQ(before.size(), 2u);
  EXPECT_EQ(p.phase_totals(1, kNoLevel, true).compute, 10.0);
  EXPECT_EQ(p.phase_totals(2, kNoLevel, true).comm, 20.0);
  EXPECT_EQ(p.num_ranks(), 2);
  EXPECT_EQ(p.max_level(), 1);

  const std::vector<ShardSample> live = p.shard_samples();
  ASSERT_GE(live.size(), 2u) << "each thread accumulates in its own shard";
  for (std::size_t i = 1; i < live.size(); ++i) {
    EXPECT_LT(live[i - 1].shard, live[i].shard) << "shard-id order";
  }

  // merge() folds shard-id-ordered, records provenance, and the folded
  // view is unchanged.
  p.merge();
  const std::vector<ShardSample>& prov = p.merged_samples();
  ASSERT_GE(prov.size(), 2u);
  for (std::size_t i = 1; i < prov.size(); ++i) {
    EXPECT_LT(prov[i - 1].shard, prov[i].shard) << "fold order";
  }
  const std::vector<PhaseProfiler::Row> after = p.rows();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].phase, before[i].phase);
    EXPECT_EQ(after[i].level, before[i].level);
    EXPECT_EQ(after[i].rank, before[i].rank);
    EXPECT_EQ(after[i].totals.total(), before[i].totals.total());
    EXPECT_EQ(after[i].totals.charges, before[i].totals.charges);
  }
  EXPECT_EQ(p.dropped(), 0u);
}

TEST(MetricsRegistryShards, CountersGaugesHistogramsFoldAcrossThreads) {
  MetricsRegistry m;
  m.counter("work.total").add(1.0);
  m.histogram("work.sizes").observe(4.0);
  std::thread t([&] {
    m.counter("work.total").add(2.0);
    m.histogram("work.sizes").observe(8.0);
    m.gauge("work.last").set(7.0);
  });
  t.join();

  EXPECT_EQ(m.counters().at("work.total").value(), 3.0);
  EXPECT_EQ(m.histograms().at("work.sizes").count(), 2u);
  EXPECT_EQ(m.histograms().at("work.sizes").sum(), 12.0);
  EXPECT_EQ(m.gauges().at("work.last").value(), 7.0);

  m.merge();
  EXPECT_EQ(m.counters().at("work.total").value(), 3.0)
      << "merge must not change the folded view";
  EXPECT_EQ(m.histograms().at("work.sizes").count(), 2u);
  ASSERT_GE(m.merged_samples().size(), 2u);
}

TEST(MemLedgerShards, EventsFromTwoThreadsFoldAdditively) {
  MemLedger l;
  l.on_alloc(0, mpsim::MemTag::Records, 100);
  std::thread t([&] { l.on_alloc(0, mpsim::MemTag::Records, 50); });
  t.join();

  EXPECT_EQ(l.live_bytes(0), 150);
  EXPECT_EQ(l.charged_bytes(0), 150);
  EXPECT_EQ(l.events(), 2u);
  l.merge();
  EXPECT_EQ(l.live_bytes(0), 150);
  l.on_free(0, mpsim::MemTag::Records, 150);
  EXPECT_EQ(l.live_bytes(0), 0);
  EXPECT_EQ(l.dropped(), 0u);
}

TEST(WriteThreads, EmitsSchemaCollectorsLocksAndRendersDeterministically) {
  Observability o;
  {
    PhaseScope ph(&o.profiler(), "export-work");
    o.profiler().on_charge(0, mpsim::ChargeKind::Compute, 0.0, 5.0, 0.0, 0.0);
  }
  o.metrics().counter("export.count").inc();
  o.mem_ledger().on_alloc(0, mpsim::MemTag::Records, 10);
  o.mem_ledger().on_free(0, mpsim::MemTag::Records, 10);

  std::ostringstream a;
  write_threads_report(a, o);
  const std::string out = a.str();

  EXPECT_NE(out.find("\"schema\":\"pdt-threads-v1\""), std::string::npos);
  EXPECT_NE(out.find("\"max_shards\":256"), std::string::npos);
  EXPECT_NE(out.find("\"registry\":{\"registered\":"), std::string::npos);
  EXPECT_NE(out.find("\"peak_active\":"), std::string::npos);
  // Collector order is fixed: phase, (host), metrics, mem, (events).
  const std::size_t phase_at = out.find("\"name\":\"phase\"");
  const std::size_t metrics_at = out.find("\"name\":\"metrics\"");
  const std::size_t mem_at = out.find("\"name\":\"mem\"");
  ASSERT_NE(phase_at, std::string::npos);
  ASSERT_NE(metrics_at, std::string::npos);
  ASSERT_NE(mem_at, std::string::npos);
  EXPECT_LT(phase_at, metrics_at);
  EXPECT_LT(metrics_at, mem_at);
  EXPECT_NE(out.find("\"merge_order\":[]"), std::string::npos)
      << "no merge happened, provenance must be empty";
  EXPECT_NE(out.find("\"drops\":{\"phase\":0,\"mem\":0}"), std::string::npos);
  EXPECT_NE(out.find("\"locks\":["), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"obs.phase.names\""), std::string::npos);

  // Deterministic double render: collectors quiesced, so two renders of
  // the same Observability produce identical bytes except for lock
  // telemetry, which the first render itself advances (it takes the
  // shard-creation and stats locks). Render from a snapshot instead:
  // same stream, same state, back to back.
  std::ostringstream b1;
  std::ostringstream b2;
  write_threads_report(b1, o);
  write_threads_report(b2, o);
  // The two back-to-back renders may differ only in the monotonic lock
  // counters; everything structural must be stable. Strip the lock
  // number payloads before comparing.
  const auto strip_lock_numbers = [](std::string s) {
    const std::size_t locks = s.find("\"locks\":[");
    return s.substr(0, locks);
  };
  EXPECT_EQ(strip_lock_numbers(b1.str()), strip_lock_numbers(b2.str()));
}

}  // namespace
}  // namespace pdt::obs
