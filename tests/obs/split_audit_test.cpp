// SplitAudit: per-decision recording, (phase, level) stamps, feed
// accumulation, make_leaf revocation, and passivity.
#include "obs/split_audit.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "dtree/builder.hpp"
#include "obs/phase.hpp"

namespace pdt::obs {
namespace {

data::Dataset quest_binned(std::size_t n, std::uint64_t seed) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = seed}),
      data::quest_paper_bins());
}

TEST(SplitAudit, OneEntryPerInternalNodeWithMargins) {
  const data::Dataset ds = quest_binned(2000, 11);
  SplitAudit audit;
  dtree::GrowOptions opt;
  opt.split_observer = &audit;
  const dtree::Tree t = dtree::grow_bfs(ds, opt);

  int internal = 0;
  for (int id = 0; id < t.num_nodes(); ++id) {
    if (!t.node(id).is_leaf()) ++internal;
  }
  ASSERT_EQ(audit.size(), static_cast<std::size_t>(internal));

  for (const dtree::SplitAuditEntry& e : audit.entries()) {
    ASSERT_GE(e.node_id, 0);
    ASSERT_LT(e.node_id, t.num_nodes());
    const dtree::Node& nd = t.node(e.node_id);
    EXPECT_FALSE(nd.is_leaf());
    EXPECT_GT(e.gain, 0.0);           // adopted splits cleared min_gain
    EXPECT_GE(e.gain, e.runner_up_gain);  // the winner won
    if (e.runner_up_attr >= 0) {
      EXPECT_NE(e.runner_up_attr, nd.test.attr);  // rival is a *different* attr
    } else {
      EXPECT_EQ(e.runner_up_gain, 0.0);
    }
    // No profiler attached: empty phase, level = node depth.
    EXPECT_TRUE(e.phase.empty());
    EXPECT_EQ(e.level, nd.depth);
    // The serial builder feeds everything as rank 0; the feed total is
    // exactly the records the node saw.
    ASSERT_EQ(e.per_rank_records.size(), 1u);
    const std::int64_t records = std::accumulate(
        nd.class_counts.begin(), nd.class_counts.end(), std::int64_t{0});
    EXPECT_EQ(e.per_rank_records[0], records);
  }
}

TEST(SplitAudit, StampsComeFromProfilerWhenAttached) {
  const data::Dataset ds = quest_binned(600, 12);
  PhaseProfiler prof;
  SplitAudit audit(&prof);
  dtree::GrowOptions opt;
  opt.split_observer = &audit;
  dtree::Tree t;
  {
    PhaseScope phase(&prof, "split-eval");
    LevelScope level(&prof, 7);
    t = dtree::grow_bfs(ds, opt);
  }
  ASSERT_GT(audit.size(), 0u);
  for (const dtree::SplitAuditEntry& e : audit.entries()) {
    EXPECT_EQ(e.phase, "split-eval");
    EXPECT_EQ(e.level, 7);  // profiler level overrides node depth
  }
}

TEST(SplitAudit, MakeLeafRevokesTheDecision) {
  const data::Dataset ds = quest_binned(1500, 13);
  SplitAudit audit;
  dtree::GrowOptions opt;
  opt.split_observer = &audit;
  dtree::Tree t = dtree::grow_bfs(ds, opt);
  const std::size_t before = audit.size();
  ASSERT_GT(before, 1u);

  int victim = -1;
  for (int id = t.num_nodes() - 1; id >= 0; --id) {
    if (!t.node(id).is_leaf()) {
      victim = id;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  t.make_leaf(victim);  // forwards to on_make_leaf

  EXPECT_EQ(audit.size(), before - 1);
  for (const dtree::SplitAuditEntry& e : audit.entries()) {
    EXPECT_NE(e.node_id, victim);
  }
  // Feeds for a revoked decision are dropped, not resurrected.
  audit.on_feed(victim, 0, 42);
  EXPECT_EQ(audit.size(), before - 1);

  // Revoking twice is harmless (make_leaf on an already-leaf node).
  audit.on_make_leaf(victim);
  EXPECT_EQ(audit.size(), before - 1);
}

TEST(SplitAudit, FeedsAccumulatePerRank) {
  SplitAudit audit;
  dtree::Tree t(std::vector<std::int64_t>{3, 4});
  dtree::SplitDecision d;
  d.test.kind = dtree::SplitTest::Kind::Threshold;
  d.test.attr = 0;
  d.test.threshold = 1.0;
  d.test.slot_threshold = 0;
  d.test.num_children = 2;
  d.gain = 0.9;
  d.child_counts = {3, 0, 0, 4};
  t.set_split_observer(&audit);
  t.expand(0, d);
  ASSERT_EQ(audit.size(), 1u);

  audit.on_feed(0, 2, 5);
  audit.on_feed(0, 0, 1);
  audit.on_feed(0, 2, 5);
  audit.on_feed(99, 0, 7);  // never-expanded node: ignored
  ASSERT_EQ(audit.size(), 1u);
  const dtree::SplitAuditEntry& e = audit.entries()[0];
  EXPECT_EQ(e.per_rank_records,
            (std::vector<std::int64_t>{1, 0, 10}));
}

TEST(SplitAudit, AttachingTheAuditIsPassive) {
  const data::Dataset ds = quest_binned(1500, 14);
  SplitAudit audit;
  dtree::GrowOptions with;
  with.split_observer = &audit;
  const dtree::Tree audited = dtree::grow_bfs(ds, with);
  const dtree::Tree plain = dtree::grow_bfs(ds, {});
  EXPECT_TRUE(audited.same_as(plain));
}

}  // namespace
}  // namespace pdt::obs
