#include "alist/presorted_builder.hpp"

#include <gtest/gtest.h>

#include "data/discretize.hpp"
#include "data/golf.hpp"
#include "data/quest.hpp"
#include "dtree/builder.hpp"
#include "dtree/metrics.hpp"

namespace pdt::alist {
namespace {

TEST(GrowPresorted, GolfMatchesExactDfsBuilder) {
  const data::Dataset golf = data::golf_dataset();
  const AttributeLists lists(golf);
  for (const auto policy :
       {dtree::SplitPolicy::Binary, dtree::SplitPolicy::Multiway}) {
    dtree::GrowOptions opt;
    opt.policy = policy;
    const dtree::Tree presorted = grow_presorted(lists, opt);
    const dtree::Tree reference = dtree::grow_dfs_exact(golf, opt);
    EXPECT_TRUE(presorted.same_as(reference))
        << "policy " << static_cast<int>(policy);
  }
}

class PresortedEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, dtree::Criterion>> {};

TEST_P(PresortedEquivalenceTest, MatchesExactDfsOnQuestData) {
  const auto [function, criterion] = GetParam();
  // The presorted scan must reproduce the per-node-sorting C4.5 builder
  // exactly: same candidates, same gains, same tie-breaks.
  const data::Dataset ds = data::quest_generate(
      800, {.function = function,
            .seed = static_cast<std::uint64_t>(function) * 7 + 1});
  dtree::GrowOptions opt;
  opt.criterion = criterion;
  opt.max_depth = 12;
  const AttributeLists lists(ds);
  const dtree::Tree presorted = grow_presorted(lists, opt);
  const dtree::Tree reference = dtree::grow_dfs_exact(ds, opt);
  EXPECT_TRUE(presorted.same_as(reference));
}

INSTANTIATE_TEST_SUITE_P(
    FunctionsAndCriteria, PresortedEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 5, 7, 10),
                       ::testing::Values(dtree::Criterion::Entropy,
                                         dtree::Criterion::Gini)));

TEST(GrowPresorted, DiscretizedDataMatchesToo) {
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(1500, {.function = 2, .seed = 9}),
      data::quest_paper_bins());
  dtree::GrowOptions opt;
  const AttributeLists lists(ds);
  const dtree::Tree presorted = grow_presorted(lists, opt);
  const dtree::Tree reference = dtree::grow_dfs_exact(ds, opt);
  EXPECT_TRUE(presorted.same_as(reference));
}

TEST(GrowPresorted, StatsCountScans) {
  const data::Dataset ds = data::quest_generate(400, {.seed = 4});
  const AttributeLists lists(ds);
  dtree::GrowOptions opt;
  opt.max_depth = 10;
  PresortedStats stats;
  const dtree::Tree tree = grow_presorted(lists, opt, &stats);
  EXPECT_GT(stats.levels, 1);
  // Each level scans all lists twice (split finding + splitting pass).
  EXPECT_EQ(stats.entries_scanned,
            static_cast<std::int64_t>(stats.levels) * 2 * 9 * 400);
  EXPECT_GT(stats.class_list_updates, 0);
  EXPECT_GT(dtree::evaluate(tree, ds).accuracy(), 0.9);
}

TEST(GrowPresorted, RespectsStoppingRules) {
  const data::Dataset ds = data::quest_generate(1000, {.seed = 5});
  const AttributeLists lists(ds);
  dtree::GrowOptions opt;
  opt.max_depth = 3;
  const dtree::Tree capped = grow_presorted(lists, opt);
  EXPECT_LE(capped.depth(), 3);

  dtree::GrowOptions big;
  big.min_records = 400;
  const dtree::Tree coarse = grow_presorted(lists, big);
  for (int id = 0; id < coarse.num_nodes(); ++id) {
    if (!coarse.node(id).is_leaf()) {
      EXPECT_GE(coarse.node(id).num_records(), 400);
    }
  }
}

TEST(GrowPresorted, PureDataIsALeaf) {
  data::Schema s({data::Attribute::continuous("x")}, 2);
  data::Dataset ds(s, 10);
  for (int i = 0; i < 10; ++i) {
    const std::size_t r = ds.add_row(1);
    ds.set_cont(0, r, static_cast<double>(i));
  }
  const AttributeLists lists(ds);
  const dtree::Tree tree = grow_presorted(lists, dtree::GrowOptions{});
  EXPECT_EQ(tree.num_nodes(), 1);
  EXPECT_EQ(tree.node(0).majority, 1);
}

}  // namespace
}  // namespace pdt::alist
