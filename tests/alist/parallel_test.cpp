#include "alist/parallel.hpp"

#include <gtest/gtest.h>

#include "alist/presorted_builder.hpp"
#include "data/quest.hpp"

namespace pdt::alist {
namespace {

data::Dataset workload(std::size_t n = 1200) {
  return data::quest_generate(n, {.function = 2, .seed = 13});
}

class SchemeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<HashTableScheme, int>> {};

TEST_P(SchemeEquivalenceTest, GrowsTheSerialTree) {
  const auto [scheme, procs] = GetParam();
  const data::Dataset ds = workload();
  ParallelSprintOptions opt;
  opt.scheme = scheme;
  opt.num_procs = procs;
  opt.grow.max_depth = 10;
  const ParallelSprintResult res = build_parallel_sprint(ds, opt);

  const AttributeLists lists(ds);
  const dtree::Tree reference = grow_presorted(lists, opt.grow);
  EXPECT_TRUE(res.tree.same_as(reference));
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndProcs, SchemeEquivalenceTest,
    ::testing::Combine(::testing::Values(HashTableScheme::ReplicatedSprint,
                                         HashTableScheme::DistributedScalParC),
                       ::testing::Values(1, 2, 4, 8, 16)));

TEST(ParallelSprint, ReplicatedHashIsFullSizePerProcessor) {
  const data::Dataset ds = workload();
  ParallelSprintOptions opt;
  opt.num_procs = 8;
  opt.grow.max_depth = 8;
  opt.scheme = HashTableScheme::ReplicatedSprint;
  const auto sprint = build_parallel_sprint(ds, opt);
  opt.scheme = HashTableScheme::DistributedScalParC;
  const auto scalparc = build_parallel_sprint(ds, opt);

  // "each processor requires O(N) memory to store the hash table" vs.
  // ScalParC's O(N/P) distributed table.
  EXPECT_DOUBLE_EQ(sprint.peak_hash_words_per_proc,
                   static_cast<double>(ds.num_rows()));
  EXPECT_DOUBLE_EQ(scalparc.peak_hash_words_per_proc,
                   static_cast<double>(ds.num_rows()) / 8);
}

TEST(ParallelSprint, ScalParCCommunicatesLessAndRunsFaster) {
  const data::Dataset ds = workload(4000);
  ParallelSprintOptions opt;
  opt.num_procs = 16;
  opt.grow.max_depth = 10;
  opt.scheme = HashTableScheme::ReplicatedSprint;
  const auto sprint = build_parallel_sprint(ds, opt);
  opt.scheme = HashTableScheme::DistributedScalParC;
  const auto scalparc = build_parallel_sprint(ds, opt);

  EXPECT_LT(scalparc.hash_comm_words, sprint.hash_comm_words);
  EXPECT_LT(scalparc.parallel_time, sprint.parallel_time);
  EXPECT_TRUE(scalparc.tree.same_as(sprint.tree));
}

TEST(ParallelSprint, SprintHashTrafficGrowsWithP) {
  // The replicated table is broadcast to every processor: total traffic
  // scales with P, the unscalability the paper calls out.
  const data::Dataset ds = workload(2000);
  double last = 0.0;
  for (const int p : {2, 4, 8}) {
    ParallelSprintOptions opt;
    opt.num_procs = p;
    opt.grow.max_depth = 8;
    const auto res = build_parallel_sprint(ds, opt);
    EXPECT_GT(res.hash_comm_words, last);
    last = res.hash_comm_words;
  }
}

TEST(ParallelSprint, ScalParCHashTrafficIndependentOfP) {
  const data::Dataset ds = workload(2000);
  ParallelSprintOptions opt;
  opt.grow.max_depth = 8;
  opt.scheme = HashTableScheme::DistributedScalParC;
  opt.num_procs = 2;
  const auto p2 = build_parallel_sprint(ds, opt);
  opt.num_procs = 16;
  const auto p16 = build_parallel_sprint(ds, opt);
  EXPECT_DOUBLE_EQ(p2.hash_comm_words, p16.hash_comm_words)
      << "total update traffic is O(N) regardless of P => O(N/P) each";
}

TEST(ParallelSprint, SpeedsUpWithProcessors) {
  const data::Dataset ds = workload(4000);
  ParallelSprintOptions opt;
  opt.grow.max_depth = 10;
  opt.scheme = HashTableScheme::DistributedScalParC;
  opt.num_procs = 1;
  const auto serial = build_parallel_sprint(ds, opt);
  opt.num_procs = 8;
  const auto par = build_parallel_sprint(ds, opt);
  EXPECT_GT(serial.parallel_time / par.parallel_time, 3.0);
}

}  // namespace
}  // namespace pdt::alist
