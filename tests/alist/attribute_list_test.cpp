#include "alist/attribute_list.hpp"

#include <gtest/gtest.h>

#include <set>

#include "data/golf.hpp"
#include "data/quest.hpp"

namespace pdt::alist {
namespace {

TEST(AttributeLists, ContinuousListsAreSorted) {
  const data::Dataset ds = data::quest_generate(500, {.seed = 1});
  const AttributeLists lists(ds);
  for (int a = 0; a < lists.num_attributes(); ++a) {
    if (!ds.schema().attr(a).is_continuous()) continue;
    const auto& list = lists.list(a);
    ASSERT_EQ(list.size(), ds.num_rows());
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_LE(list[i - 1].value, list[i].value);
    }
  }
}

TEST(AttributeLists, EveryRidAppearsOncePerList) {
  const data::Dataset ds = data::quest_generate(300, {.seed = 2});
  const AttributeLists lists(ds);
  for (int a = 0; a < lists.num_attributes(); ++a) {
    std::set<data::RowId> rids;
    for (const Entry& e : lists.list(a)) {
      EXPECT_TRUE(rids.insert(e.rid).second);
    }
    EXPECT_EQ(rids.size(), ds.num_rows());
  }
}

TEST(AttributeLists, EntriesCarryCorrectValueAndClass) {
  const data::Dataset golf = data::golf_dataset();
  const AttributeLists lists(golf);
  for (const Entry& e : lists.list(data::golf_attr::kHumidity)) {
    EXPECT_DOUBLE_EQ(e.value, golf.cont(data::golf_attr::kHumidity, e.rid));
    EXPECT_EQ(e.label, golf.label(e.rid));
  }
  for (const Entry& e : lists.list(data::golf_attr::kOutlook)) {
    EXPECT_DOUBLE_EQ(e.value,
                     static_cast<double>(golf.cat(data::golf_attr::kOutlook,
                                                  e.rid)));
  }
}

TEST(AttributeLists, SortTiesBrokenByRid) {
  const data::Dataset golf = data::golf_dataset();
  const AttributeLists lists(golf);
  const auto& list = lists.list(data::golf_attr::kHumidity);
  for (std::size_t i = 1; i < list.size(); ++i) {
    if (list[i - 1].value == list[i].value) {
      EXPECT_LT(list[i - 1].rid, list[i].rid);
    }
  }
}

TEST(ClassList, AssignAndQuery) {
  ClassList cl(5, 0);
  EXPECT_EQ(cl.size(), 5u);
  EXPECT_EQ(cl.node_of(3), 0);
  cl.assign(3, 7);
  EXPECT_EQ(cl.node_of(3), 7);
  EXPECT_EQ(cl.node_of(2), 0);
}

}  // namespace
}  // namespace pdt::alist
