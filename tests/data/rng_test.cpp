#include "data/rng.hpp"

#include <gtest/gtest.h>

namespace pdt::data {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform(-5.0, 3.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t x = r.uniform_int(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= x == -2;
    saw_hi |= x == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.uniform_int(5, 5), 5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, RoughlyUniformMean) {
  Rng r(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
}  // namespace pdt::data
