#include "data/discretize.hpp"

#include <gtest/gtest.h>

#include "data/quest.hpp"

namespace pdt::data {
namespace {

TEST(UniformBoundaries, EvenSpacing) {
  const auto cuts = uniform_boundaries(0.0, 10.0, 5);
  ASSERT_EQ(cuts.size(), 4u);
  EXPECT_DOUBLE_EQ(cuts[0], 2.0);
  EXPECT_DOUBLE_EQ(cuts[1], 4.0);
  EXPECT_DOUBLE_EQ(cuts[2], 6.0);
  EXPECT_DOUBLE_EQ(cuts[3], 8.0);
}

TEST(UniformBoundaries, SingleBinHasNoCuts) {
  EXPECT_TRUE(uniform_boundaries(0.0, 1.0, 1).empty());
}

TEST(BinOf, BoundaryValuesGoRight) {
  const std::vector<double> cuts{2.0, 4.0};
  EXPECT_EQ(bin_of(1.9, cuts), 0);
  EXPECT_EQ(bin_of(2.0, cuts), 1);
  EXPECT_EQ(bin_of(3.9, cuts), 1);
  EXPECT_EQ(bin_of(4.0, cuts), 2);
  EXPECT_EQ(bin_of(100.0, cuts), 2);
  EXPECT_EQ(bin_of(-5.0, cuts), 0);
}

TEST(DiscretizeUniform, QuestPaperBinsProduceAllCategorical) {
  const Dataset raw = quest_generate(2000, {.function = 2, .seed = 3});
  const Dataset ds = discretize_uniform(raw, quest_paper_bins());
  EXPECT_EQ(ds.num_rows(), raw.num_rows());
  EXPECT_EQ(ds.schema().num_categorical(), 9);
  EXPECT_EQ(ds.schema().num_continuous(), 0);
  // The paper's bin counts: salary 13, commission 14, age 6, hvalue 11,
  // hyears 10, loan 20; the 3 nominal attributes keep their cardinality.
  EXPECT_EQ(ds.schema().attr(quest_attr::kSalary).cardinality, 13);
  EXPECT_EQ(ds.schema().attr(quest_attr::kCommission).cardinality, 14);
  EXPECT_EQ(ds.schema().attr(quest_attr::kAge).cardinality, 6);
  EXPECT_EQ(ds.schema().attr(quest_attr::kElevel).cardinality, 5);
  EXPECT_EQ(ds.schema().attr(quest_attr::kCar).cardinality, 20);
  EXPECT_EQ(ds.schema().attr(quest_attr::kZipcode).cardinality, 9);
  EXPECT_EQ(ds.schema().attr(quest_attr::kHvalue).cardinality, 11);
  EXPECT_EQ(ds.schema().attr(quest_attr::kHyears).cardinality, 10);
  EXPECT_EQ(ds.schema().attr(quest_attr::kLoan).cardinality, 20);
  // Binned continuous attributes keep their order; nominal ones do not.
  EXPECT_TRUE(ds.schema().attr(quest_attr::kSalary).ordered);
  EXPECT_FALSE(ds.schema().attr(quest_attr::kCar).ordered);
}

TEST(DiscretizeUniform, PreservesLabelsAndMonotoneBinning) {
  const Dataset raw = quest_generate(1000, {.function = 2, .seed = 4});
  const Dataset ds = discretize_uniform(raw, quest_paper_bins());
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    EXPECT_EQ(ds.label(i), raw.label(i));
    const int bin = ds.cat(quest_attr::kAge, i);
    EXPECT_GE(bin, 0);
    EXPECT_LT(bin, 6);
  }
  // Monotone: a larger raw value never lands in a smaller bin.
  for (std::size_t i = 0; i + 1 < ds.num_rows(); ++i) {
    const double va = raw.cont(quest_attr::kAge, i);
    const double vb = raw.cont(quest_attr::kAge, i + 1);
    const int ba = ds.cat(quest_attr::kAge, i);
    const int bb = ds.cat(quest_attr::kAge, i + 1);
    if (va < vb) {
      EXPECT_LE(ba, bb);
    } else if (va > vb) {
      EXPECT_GE(ba, bb);
    }
  }
}

TEST(QuantileBoundaries, EqualWeightsSplitEvenly) {
  std::vector<WeightedValue> vals;
  for (int i = 0; i < 100; ++i) {
    vals.push_back({static_cast<double>(i), 1.0});
  }
  const auto cuts = quantile_boundaries(vals, 4);
  ASSERT_EQ(cuts.size(), 3u);
  EXPECT_NEAR(cuts[0], 24.5, 1.0);
  EXPECT_NEAR(cuts[1], 49.5, 1.0);
  EXPECT_NEAR(cuts[2], 74.5, 1.0);
}

TEST(QuantileBoundaries, SkewedWeights) {
  // Nearly all mass at value 0: the first boundary must hug it.
  std::vector<WeightedValue> vals{{0.0, 97.0}, {1.0, 1.0}, {2.0, 1.0},
                                  {3.0, 1.0}};
  const auto cuts = quantile_boundaries(vals, 2);
  ASSERT_LE(cuts.size(), 1u);
  if (!cuts.empty()) {
    EXPECT_LT(cuts[0], 1.0);
  }
}

TEST(QuantileBoundaries, EmptyAndZeroWeight) {
  EXPECT_TRUE(quantile_boundaries({}, 4).empty());
  EXPECT_TRUE(quantile_boundaries({{1.0, 0.0}}, 4).empty());
}

TEST(KMeansBoundaries, SeparatesTwoClearClusters) {
  std::vector<WeightedValue> vals;
  for (int i = 0; i < 10; ++i) {
    vals.push_back({static_cast<double>(i), 1.0});        // cluster near 5
    vals.push_back({100.0 + static_cast<double>(i), 1.0});  // near 105
  }
  const auto cuts = kmeans_boundaries(vals, 2);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_GT(cuts[0], 9.0);
  EXPECT_LT(cuts[0], 100.0);
}

TEST(KMeansBoundaries, AtMostKMinusOneCuts) {
  std::vector<WeightedValue> vals;
  for (int i = 0; i < 64; ++i) {
    vals.push_back({static_cast<double>(i * i % 37), 1.0 + i % 3});
  }
  for (int k = 1; k <= 8; ++k) {
    const auto cuts = kmeans_boundaries(vals, k);
    EXPECT_LT(static_cast<int>(cuts.size()), k);
    // Cuts are strictly ascending.
    for (std::size_t i = 1; i < cuts.size(); ++i) {
      EXPECT_LT(cuts[i - 1], cuts[i]);
    }
  }
}

TEST(KMeansBoundaries, DegenerateInputs) {
  EXPECT_TRUE(kmeans_boundaries({}, 4).empty());
  EXPECT_TRUE(kmeans_boundaries({{5.0, 2.0}}, 4).empty());
  // All mass at one point: no cuts even with k > 1.
  EXPECT_TRUE(
      kmeans_boundaries({{5.0, 1.0}, {5.0, 1.0}, {5.0, 3.0}}, 3).empty());
}

TEST(KMeansBoundaries, DeterministicAcrossCalls) {
  std::vector<WeightedValue> vals;
  for (int i = 0; i < 50; ++i) {
    vals.push_back({static_cast<double>((i * 17) % 23), 1.0});
  }
  EXPECT_EQ(kmeans_boundaries(vals, 5), kmeans_boundaries(vals, 5));
}

}  // namespace
}  // namespace pdt::data
