#include "data/dataset.hpp"

#include <gtest/gtest.h>

namespace pdt::data {
namespace {

Schema tiny_schema() {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::categorical("color", 3));
  attrs.push_back(Attribute::continuous("weight"));
  attrs.push_back(Attribute::categorical("size", 4, /*ordered=*/true));
  return Schema(std::move(attrs), 2, {"yes", "no"});
}

TEST(Schema, BasicAccessors) {
  const Schema s = tiny_schema();
  EXPECT_EQ(s.num_attributes(), 3);
  EXPECT_EQ(s.num_classes(), 2);
  EXPECT_EQ(s.class_name(0), "yes");
  EXPECT_EQ(s.attr(0).name, "color");
  EXPECT_TRUE(s.attr(0).is_categorical());
  EXPECT_FALSE(s.attr(0).ordered);
  EXPECT_TRUE(s.attr(1).is_continuous());
  EXPECT_TRUE(s.attr(2).ordered);
}

TEST(Schema, CategoricalStatistics) {
  const Schema s = tiny_schema();
  EXPECT_EQ(s.num_categorical(), 2);
  EXPECT_EQ(s.num_continuous(), 1);
  EXPECT_DOUBLE_EQ(s.mean_cardinality(), 3.5);
}

TEST(Schema, IndexOfByName) {
  const Schema s = tiny_schema();
  EXPECT_EQ(s.index_of("weight"), 1);
  EXPECT_EQ(s.index_of("size"), 2);
  EXPECT_EQ(s.index_of("missing"), -1);
}

TEST(Schema, GeneratesClassNamesWhenOmitted) {
  Schema s({Attribute::continuous("x")}, 3);
  EXPECT_EQ(s.class_name(0), "class0");
  EXPECT_EQ(s.class_name(2), "class2");
}

TEST(Dataset, RowRoundTrip) {
  Dataset ds(tiny_schema(), 2);
  const std::size_t r0 = ds.add_row(0);
  ds.set_cat(0, r0, 2);
  ds.set_cont(1, r0, 3.5);
  ds.set_cat(2, r0, 1);
  const std::size_t r1 = ds.add_row(1);
  ds.set_cat(0, r1, 0);
  ds.set_cont(1, r1, -1.0);
  ds.set_cat(2, r1, 3);

  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_EQ(ds.cat(0, r0), 2);
  EXPECT_DOUBLE_EQ(ds.cont(1, r0), 3.5);
  EXPECT_EQ(ds.label(r0), 0);
  EXPECT_EQ(ds.cat(2, r1), 3);
  EXPECT_EQ(ds.label(r1), 1);
}

TEST(Dataset, ColumnsExposeContiguousData) {
  Dataset ds(tiny_schema(), 3);
  for (int i = 0; i < 3; ++i) {
    const std::size_t r = ds.add_row(i % 2);
    ds.set_cat(0, r, i);
    ds.set_cont(1, r, i * 1.5);
    ds.set_cat(2, r, 0);
  }
  EXPECT_EQ(ds.cat_column(0).size(), 3u);
  EXPECT_EQ(ds.cont_column(1)[2], 3.0);
  EXPECT_EQ(ds.labels(), (std::vector<std::int32_t>{0, 1, 0}));
}

TEST(Dataset, ContRange) {
  Dataset ds(tiny_schema(), 3);
  for (const double v : {4.0, -2.0, 9.5}) {
    const std::size_t r = ds.add_row(0);
    ds.set_cat(0, r, 0);
    ds.set_cont(1, r, v);
    ds.set_cat(2, r, 0);
  }
  const auto [lo, hi] = ds.cont_range(1);
  EXPECT_DOUBLE_EQ(lo, -2.0);
  EXPECT_DOUBLE_EQ(hi, 9.5);
}

}  // namespace
}  // namespace pdt::data
