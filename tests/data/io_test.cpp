#include "data/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "data/golf.hpp"
#include "data/quest.hpp"

namespace pdt::data {
namespace {

TEST(Csv, GolfRoundTrip) {
  const Dataset original = golf_dataset();
  std::stringstream buf;
  save_csv(original, buf);
  const Dataset loaded = load_csv(buf);

  ASSERT_EQ(loaded.num_rows(), original.num_rows());
  ASSERT_EQ(loaded.num_attributes(), original.num_attributes());
  EXPECT_EQ(loaded.schema().num_classes(), 2);
  for (std::size_t i = 0; i < original.num_rows(); ++i) {
    EXPECT_EQ(loaded.label(i), original.label(i));
    EXPECT_EQ(loaded.cat(golf_attr::kOutlook, i),
              original.cat(golf_attr::kOutlook, i));
    EXPECT_DOUBLE_EQ(loaded.cont(golf_attr::kHumidity, i),
                     original.cont(golf_attr::kHumidity, i));
  }
}

TEST(Csv, QuestRoundTripPreservesDoublesExactly) {
  const Dataset original = quest_generate(50, {.function = 7, .seed = 2});
  std::stringstream buf;
  save_csv(original, buf);
  const Dataset loaded = load_csv(buf);
  ASSERT_EQ(loaded.num_rows(), original.num_rows());
  for (std::size_t i = 0; i < original.num_rows(); ++i) {
    for (int a = 0; a < original.num_attributes(); ++a) {
      if (original.schema().attr(a).is_continuous()) {
        EXPECT_DOUBLE_EQ(loaded.cont(a, i), original.cont(a, i));
      } else {
        EXPECT_EQ(loaded.cat(a, i), original.cat(a, i));
      }
    }
  }
}

TEST(Csv, HeaderEncodesSchema) {
  const Dataset original = golf_dataset();
  std::stringstream buf;
  save_csv(original, buf);
  const Dataset loaded = load_csv(buf);
  EXPECT_EQ(loaded.schema().attr(0).name, "Outlook");
  EXPECT_TRUE(loaded.schema().attr(0).is_categorical());
  EXPECT_EQ(loaded.schema().attr(0).cardinality, 3);
  EXPECT_TRUE(loaded.schema().attr(1).is_continuous());
}

TEST(Csv, OrderedFlagSurvives) {
  Schema s({Attribute::categorical("bin", 4, /*ordered=*/true),
            Attribute::categorical("nom", 3)},
           2);
  Dataset ds(s, 1);
  const std::size_t r = ds.add_row(1);
  ds.set_cat(0, r, 2);
  ds.set_cat(1, r, 1);
  std::stringstream buf;
  save_csv(ds, buf);
  const Dataset loaded = load_csv(buf);
  EXPECT_TRUE(loaded.schema().attr(0).ordered);
  EXPECT_FALSE(loaded.schema().attr(1).ordered);
}

TEST(Csv, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW((void)load_csv(empty), std::runtime_error);

  std::stringstream bad_header("foo,class:cat:2\n");
  EXPECT_THROW((void)load_csv(bad_header), std::runtime_error);

  std::stringstream bad_row("x:cont,class:cat:2\n1.0\n");
  EXPECT_THROW((void)load_csv(bad_row), std::runtime_error);
}

TEST(Csv, FileRoundTrip) {
  const Dataset original = golf_dataset();
  const std::string path = ::testing::TempDir() + "/golf_io_test.csv";
  save_csv_file(original, path);
  const Dataset loaded = load_csv_file(path);
  EXPECT_EQ(loaded.num_rows(), original.num_rows());
  EXPECT_THROW((void)load_csv_file(path + ".missing"), std::runtime_error);
}

}  // namespace
}  // namespace pdt::data
