#include "data/quest.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pdt::data {
namespace {

QuestRecord base_record() {
  QuestRecord r;
  r.salary = 60000;
  r.commission = 20000;
  r.age = 30;
  r.elevel = 1;
  r.car = 5;
  r.zipcode = 3;
  r.hvalue = 200000;
  r.hyears = 10;
  r.loan = 150000;
  return r;
}

TEST(QuestSchema, MatchesThePaper) {
  const Schema s = quest_schema();
  EXPECT_EQ(s.num_attributes(), 9);
  EXPECT_EQ(s.num_classes(), 2);
  EXPECT_EQ(s.num_categorical(), 3) << "3 categoric attributes";
  EXPECT_EQ(s.num_continuous(), 6) << "6 continuous attributes";
  EXPECT_EQ(s.attr(quest_attr::kElevel).cardinality, 5);
  EXPECT_EQ(s.attr(quest_attr::kCar).cardinality, 20);
  EXPECT_EQ(s.attr(quest_attr::kZipcode).cardinality, 9);
  EXPECT_EQ(s.class_name(0), "Group A");
}

TEST(QuestFunctions, Function1AgeOnly) {
  QuestRecord r = base_record();
  r.age = 30;
  EXPECT_EQ(quest_classify(1, r), 0);
  r.age = 50;
  EXPECT_EQ(quest_classify(1, r), 1);
  r.age = 65;
  EXPECT_EQ(quest_classify(1, r), 0);
  r.age = 40;  // boundary: age >= 40 and < 60 is Group B
  EXPECT_EQ(quest_classify(1, r), 1);
  r.age = 60;  // boundary: age >= 60 is Group A
  EXPECT_EQ(quest_classify(1, r), 0);
}

TEST(QuestFunctions, Function2AgeSalaryBands) {
  QuestRecord r = base_record();
  r.age = 30;
  r.salary = 60000;  // in [50K, 100K]
  EXPECT_EQ(quest_classify(2, r), 0);
  r.salary = 40000;  // below band
  EXPECT_EQ(quest_classify(2, r), 1);
  r.age = 50;
  r.salary = 100000;  // in [75K, 125K]
  EXPECT_EQ(quest_classify(2, r), 0);
  r.salary = 60000;
  EXPECT_EQ(quest_classify(2, r), 1);
  r.age = 70;
  r.salary = 50000;  // in [25K, 75K]
  EXPECT_EQ(quest_classify(2, r), 0);
  r.salary = 100000;
  EXPECT_EQ(quest_classify(2, r), 1);
}

TEST(QuestFunctions, Function3AgeElevel) {
  QuestRecord r = base_record();
  r.age = 30;
  r.elevel = 1;
  EXPECT_EQ(quest_classify(3, r), 0);
  r.elevel = 3;
  EXPECT_EQ(quest_classify(3, r), 1);
  r.age = 50;
  EXPECT_EQ(quest_classify(3, r), 0);
  r.elevel = 0;
  EXPECT_EQ(quest_classify(3, r), 1);
  r.age = 70;
  r.elevel = 4;
  EXPECT_EQ(quest_classify(3, r), 0);
  r.elevel = 1;
  EXPECT_EQ(quest_classify(3, r), 1);
}

TEST(QuestFunctions, Function4NestedElevelSalary) {
  QuestRecord r = base_record();
  r.age = 30;
  r.elevel = 0;
  r.salary = 50000;  // [25K, 75K]
  EXPECT_EQ(quest_classify(4, r), 0);
  r.salary = 90000;
  EXPECT_EQ(quest_classify(4, r), 1);
  r.elevel = 3;
  r.salary = 90000;  // [50K, 100K]
  EXPECT_EQ(quest_classify(4, r), 0);
}

TEST(QuestFunctions, Function5SalaryLoan) {
  QuestRecord r = base_record();
  r.age = 30;
  r.salary = 60000;   // in band
  r.loan = 200000;    // [100K, 300K]
  EXPECT_EQ(quest_classify(5, r), 0);
  r.loan = 350000;
  EXPECT_EQ(quest_classify(5, r), 1);
  r.salary = 30000;   // out of band
  r.loan = 350000;    // [200K, 400K]
  EXPECT_EQ(quest_classify(5, r), 0);
}

TEST(QuestFunctions, Function6TotalIncome) {
  QuestRecord r = base_record();
  r.age = 30;
  r.salary = 40000;
  r.commission = 20000;  // total 60K in [50K, 100K]
  EXPECT_EQ(quest_classify(6, r), 0);
  r.commission = 5000;  // total 45K
  EXPECT_EQ(quest_classify(6, r), 1);
}

TEST(QuestFunctions, Function7LinearDisposable) {
  QuestRecord r = base_record();
  r.salary = 60000;
  r.commission = 0;
  r.loan = 0;
  // 0.67 * 60000 - 20000 = 20200 > 0 -> Group A
  EXPECT_EQ(quest_classify(7, r), 0);
  r.loan = 500000;
  // 40200 - 100000 < 0 -> Group B
  EXPECT_EQ(quest_classify(7, r), 1);
}

TEST(QuestFunctions, Function8ElevelPenalty) {
  QuestRecord r = base_record();
  r.salary = 50000;
  r.commission = 0;
  r.elevel = 0;
  // 33500 - 0 - 20000 > 0
  EXPECT_EQ(quest_classify(8, r), 0);
  r.elevel = 4;
  // 33500 - 20000 - 20000 < 0
  EXPECT_EQ(quest_classify(8, r), 1);
}

TEST(QuestFunctions, Function9CombinedTerms) {
  QuestRecord r = base_record();
  r.salary = 60000;
  r.commission = 0;
  r.elevel = 1;
  r.loan = 100000;
  // 40200 - 5000 - 20000 - 10000 = 5200 > 0
  EXPECT_EQ(quest_classify(9, r), 0);
  r.loan = 200000;
  // 40200 - 5000 - 40000 - 10000 < 0
  EXPECT_EQ(quest_classify(9, r), 1);
}

TEST(QuestFunctions, Function10HomeEquity) {
  QuestRecord r = base_record();
  r.salary = 20000;
  r.commission = 0;
  r.elevel = 1;
  r.hyears = 10;  // < 20 -> zero equity
  r.hvalue = 500000;
  // 13400 - 5000 + 0 - 10000 < 0
  EXPECT_EQ(quest_classify(10, r), 1);
  r.hyears = 30;  // equity = 0.1 * 500000 * 10 = 500000
  // 13400 - 5000 + 100000 - 10000 > 0
  EXPECT_EQ(quest_classify(10, r), 0);
}

TEST(QuestGenerate, DeterministicForSeed) {
  const Dataset a = quest_generate(500, {.function = 2, .seed = 99});
  const Dataset b = quest_generate(500, {.function = 2, .seed = 99});
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (std::size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_DOUBLE_EQ(a.cont(quest_attr::kSalary, i),
                     b.cont(quest_attr::kSalary, i));
    EXPECT_EQ(a.cat(quest_attr::kCar, i), b.cat(quest_attr::kCar, i));
  }
}

TEST(QuestGenerate, AttributeRanges) {
  const Dataset ds = quest_generate(5000, {.function = 1, .seed = 5});
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    const double salary = ds.cont(quest_attr::kSalary, i);
    EXPECT_GE(salary, 20000.0);
    EXPECT_LT(salary, 150000.0);
    const double commission = ds.cont(quest_attr::kCommission, i);
    if (salary >= 75000.0) {
      EXPECT_DOUBLE_EQ(commission, 0.0);
    } else {
      EXPECT_GE(commission, 10000.0);
      EXPECT_LT(commission, 75000.0);
    }
    const double age = ds.cont(quest_attr::kAge, i);
    EXPECT_GE(age, 20.0);
    EXPECT_LT(age, 80.0);
    const int zip = ds.cat(quest_attr::kZipcode, i);
    const double hvalue = ds.cont(quest_attr::kHvalue, i);
    EXPECT_GE(hvalue, 0.5 * (zip + 1) * 100000.0);
    EXPECT_LT(hvalue, 1.5 * (zip + 1) * 100000.0);
    EXPECT_GE(ds.cont(quest_attr::kLoan, i), 0.0);
    EXPECT_LT(ds.cont(quest_attr::kLoan, i), 500000.0);
  }
}

TEST(QuestGenerate, LabelsMatchFunctionPredicate) {
  const Dataset ds = quest_generate(2000, {.function = 2, .seed = 31});
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    QuestRecord r;
    r.salary = ds.cont(quest_attr::kSalary, i);
    r.commission = ds.cont(quest_attr::kCommission, i);
    r.age = ds.cont(quest_attr::kAge, i);
    r.elevel = ds.cat(quest_attr::kElevel, i);
    r.loan = ds.cont(quest_attr::kLoan, i);
    EXPECT_EQ(ds.label(i), quest_classify(2, r));
  }
}

TEST(QuestGenerate, LabelNoiseFlipsRoughlyTheRequestedFraction) {
  const std::size_t n = 20000;
  const Dataset noisy = quest_generate(
      n, {.function = 2, .seed = 77, .label_noise = 0.1});
  // A label disagrees with the noise-free predicate exactly when it was
  // flipped, so the disagreement rate estimates the noise level.
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    QuestRecord r;
    r.salary = noisy.cont(quest_attr::kSalary, i);
    r.age = noisy.cont(quest_attr::kAge, i);
    flipped += noisy.label(i) != quest_classify(2, r) ? 1 : 0;
  }
  const double rate = static_cast<double>(flipped) / static_cast<double>(n);
  EXPECT_NEAR(rate, 0.1, 0.02);
}


TEST(QuestGenerate, PerturbationJittersContinuousValuesOnly) {
  const std::size_t n = 3000;
  const Dataset clean = quest_generate(n, {.function = 2, .seed = 88});
  const Dataset noisy = quest_generate(
      n, {.function = 2, .seed = 88, .perturbation = 0.05});
  std::size_t moved = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Categorical attributes are untouched by perturbation.
    EXPECT_EQ(noisy.cat(quest_attr::kElevel, i),
              clean.cat(quest_attr::kElevel, i));
    EXPECT_EQ(noisy.cat(quest_attr::kCar, i), clean.cat(quest_attr::kCar, i));
    EXPECT_EQ(noisy.cat(quest_attr::kZipcode, i),
              clean.cat(quest_attr::kZipcode, i));
    // Labels were assigned before perturbation.
    EXPECT_EQ(noisy.label(i), clean.label(i));
    const double da = std::abs(noisy.cont(quest_attr::kAge, i) -
                               clean.cont(quest_attr::kAge, i));
    moved += da > 0.0 ? 1 : 0;
    EXPECT_LE(da, 0.05 * (80.0 - 20.0) / 2.0 + 1e-9)
        << "jitter bounded by p * range / 2";
    EXPECT_GE(noisy.cont(quest_attr::kAge, i), 20.0);
    EXPECT_LE(noisy.cont(quest_attr::kAge, i), 80.0);
  }
  EXPECT_GT(moved, n / 2) << "perturbation actually moves values";
}

TEST(QuestGenerate, ZeroPerturbationIsIdentity) {
  const Dataset a = quest_generate(200, {.function = 3, .seed = 90});
  const Dataset b =
      quest_generate(200, {.function = 3, .seed = 90, .perturbation = 0.0});
  for (std::size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.cont(quest_attr::kLoan, i),
                     b.cont(quest_attr::kLoan, i));
  }
}

class QuestEveryFunctionTest : public ::testing::TestWithParam<int> {};

TEST_P(QuestEveryFunctionTest, ProducesBothClasses) {
  const int f = GetParam();
  const Dataset ds = quest_generate(
      3000, {.function = f, .seed = static_cast<std::uint64_t>(f) * 13 + 1});
  std::int64_t counts[2] = {0, 0};
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    ++counts[ds.label(i)];
  }
  EXPECT_GT(counts[0], 0) << "function " << f << " never produced Group A";
  EXPECT_GT(counts[1], 0) << "function " << f << " never produced Group B";
}

INSTANTIATE_TEST_SUITE_P(AllTenFunctions, QuestEveryFunctionTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace pdt::data
