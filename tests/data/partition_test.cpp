#include "data/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace pdt::data {
namespace {

TEST(PartitionBlock, ContiguousAndComplete) {
  const RowPartition part = partition_block(10, 3);
  ASSERT_EQ(part.size(), 3u);
  EXPECT_EQ(part[0], (std::vector<RowId>{0, 1, 2, 3}));
  EXPECT_EQ(part[1], (std::vector<RowId>{4, 5, 6}));
  EXPECT_EQ(part[2], (std::vector<RowId>{7, 8, 9}));
}

TEST(PartitionBlock, SingleProcessorGetsEverything) {
  const RowPartition part = partition_block(5, 1);
  ASSERT_EQ(part.size(), 1u);
  EXPECT_EQ(part[0].size(), 5u);
}

TEST(PartitionBlock, MoreProcsThanRows) {
  const RowPartition part = partition_block(2, 4);
  EXPECT_EQ(partition_size(part), 2u);
  int nonempty = 0;
  for (const auto& rows : part) nonempty += rows.empty() ? 0 : 1;
  EXPECT_EQ(nonempty, 2);
}

class RandomPartitionTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomPartitionTest, ConservesRowsAndBalances) {
  const auto [n, p] = GetParam();
  const RowPartition part =
      partition_random(static_cast<std::size_t>(n), p, 123);
  ASSERT_EQ(static_cast<int>(part.size()), p);
  EXPECT_EQ(partition_size(part), static_cast<std::size_t>(n));

  // Every row appears exactly once.
  std::set<RowId> seen;
  for (const auto& rows : part) {
    for (const RowId r : rows) {
      EXPECT_LT(r, static_cast<RowId>(n));
      EXPECT_TRUE(seen.insert(r).second) << "duplicate row " << r;
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));

  // Counts differ by at most one (the paper's N/P initial distribution).
  std::size_t lo = static_cast<std::size_t>(n), hi = 0;
  for (const auto& rows : part) {
    lo = std::min(lo, rows.size());
    hi = std::max(hi, rows.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomPartitionTest,
    ::testing::Values(std::make_tuple(100, 1), std::make_tuple(100, 4),
                      std::make_tuple(101, 4), std::make_tuple(7, 8),
                      std::make_tuple(1000, 16), std::make_tuple(1000, 128)));

TEST(PartitionRandom, DeterministicPerSeedAndActuallyShuffled) {
  const RowPartition a = partition_random(1000, 8, 42);
  const RowPartition b = partition_random(1000, 8, 42);
  EXPECT_EQ(a, b);
  const RowPartition c = partition_random(1000, 8, 43);
  EXPECT_NE(a, c);
  // Not the block layout.
  const RowPartition block = partition_block(1000, 8);
  EXPECT_NE(a, block);
}

}  // namespace
}  // namespace pdt::data
