#include "data/golf.hpp"

#include <gtest/gtest.h>

namespace pdt::data {
namespace {

TEST(Golf, FourteenRecordsNinePlayFiveDont) {
  const Dataset ds = golf_dataset();
  EXPECT_EQ(ds.num_rows(), 14u);
  std::int64_t play = 0, dont = 0;
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    (ds.label(i) == 0 ? play : dont) += 1;
  }
  EXPECT_EQ(play, 9);
  EXPECT_EQ(dont, 5);
}

TEST(Golf, SchemaMatchesTable1) {
  const Schema s = golf_schema();
  EXPECT_EQ(s.num_attributes(), 4);
  EXPECT_EQ(s.attr(golf_attr::kOutlook).cardinality, 3);
  EXPECT_EQ(s.attr(golf_attr::kOutlook).value_names[1], "overcast");
  EXPECT_TRUE(s.attr(golf_attr::kTemp).is_continuous());
  EXPECT_TRUE(s.attr(golf_attr::kHumidity).is_continuous());
  EXPECT_EQ(s.attr(golf_attr::kWindy).cardinality, 2);
  EXPECT_EQ(s.class_name(0), "Play");
  EXPECT_EQ(s.class_name(1), "Don't Play");
}

TEST(Golf, Table2OutlookDistribution) {
  // Table 2: sunny 2/3, overcast 4/0, rain 3/2.
  const Dataset ds = golf_dataset();
  std::int64_t table[3][2] = {};
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    ++table[ds.cat(golf_attr::kOutlook, i)][ds.label(i)];
  }
  EXPECT_EQ(table[0][0], 2);
  EXPECT_EQ(table[0][1], 3);
  EXPECT_EQ(table[1][0], 4);
  EXPECT_EQ(table[1][1], 0);
  EXPECT_EQ(table[2][0], 3);
  EXPECT_EQ(table[2][1], 2);
}

TEST(Golf, HumidityRangeMatchesTable3) {
  const Dataset ds = golf_dataset();
  const auto [lo, hi] = ds.cont_range(golf_attr::kHumidity);
  EXPECT_DOUBLE_EQ(lo, 65.0);
  EXPECT_DOUBLE_EQ(hi, 96.0);
}

}  // namespace
}  // namespace pdt::data
