// The headline invariant of the event-sourced log: pdt-replay's offline
// re-execution of a pdt-events-v1 file under the recorded constants
// reproduces every per-rank virtual clock bit-exactly (operator==, no
// tolerance) — for all three formulations, several processor counts, and
// a run that absorbed an injected failure. What-if semantics ride along:
// doubling every constant doubles every clock exactly, and raising t_w
// never makes a replay faster.
#include "replay/replay.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "common/json_value.hpp"
#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "mpsim/event_log.hpp"
#include "mpsim/fault.hpp"
#include "mpsim/machine.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"

namespace pdt::tools {
namespace {

// Serialize a recorder exactly as the bench harnesses do, then parse it
// back through the tool's own JSON reader — the round-trip every replay
// in production takes (json_double_exact must preserve every bit).
EventLog round_trip(const mpsim::EventRecorder& rec,
                    const obs::EventLogMeta& meta = {}) {
  std::ostringstream os;
  obs::write_events_report(os, rec, meta);
  JsonValue root;
  std::string err;
  EXPECT_TRUE(json_parse(os.str(), &root, &err)) << err;
  EventLog log;
  EXPECT_TRUE(parse_event_log(root, &log, &err)) << err;
  return log;
}

data::Dataset workload(std::size_t n, std::uint64_t seed = 11) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = seed}),
      data::quest_paper_bins());
}

class ReplayIdentity
    : public ::testing::TestWithParam<std::tuple<core::Formulation, int>> {};

TEST_P(ReplayIdentity, ReproducesEveryClockBitExactly) {
  const auto [f, procs] = GetParam();
  core::ParOptions opt;
  opt.num_procs = procs;
  obs::Observability o;
  o.enable_event_log();
  opt.obs = &o;
  const core::ParResult res = core::build(f, workload(2000), opt);

  const EventLog log = round_trip(*o.event_log());
  ASSERT_EQ(log.nprocs, procs);
  ASSERT_GT(log.events.size(), 0u);

  const ReplayResult r = replay_log(log, log.cost);
  EXPECT_FALSE(r.unscalable);
  for (int rank = 0; rank < procs; ++rank) {
    EXPECT_EQ(r.clocks[static_cast<std::size_t>(rank)],
              log.recorded_clocks[static_cast<std::size_t>(rank)])
        << "rank " << rank << " clock diverged on identity replay";
  }
  EXPECT_EQ(r.max_clock, log.recorded_max_clock);
  EXPECT_EQ(r.max_clock, res.parallel_time);
}

INSTANTIATE_TEST_SUITE_P(
    Formulations, ReplayIdentity,
    ::testing::Combine(::testing::Values(core::Formulation::Sync,
                                         core::Formulation::Partitioned,
                                         core::Formulation::Hybrid),
                       ::testing::Values(4, 8)));

TEST(ReplayFaultTest, IdentityHoldsThroughFailureDetectionAndRecovery) {
  mpsim::FaultPlan plan;
  plan.fail_stop(1, 2);
  core::ParOptions opt;
  opt.num_procs = 4;
  opt.fault = &plan;
  obs::Observability o;
  o.enable_event_log();
  opt.obs = &o;
  const core::ParResult res =
      core::build(core::Formulation::Hybrid, workload(2000), opt);
  ASSERT_EQ(res.recovery.failures, 1);

  const EventLog log = round_trip(*o.event_log());
  const ReplayResult r = replay_log(log, log.cost);
  for (int rank = 0; rank < 4; ++rank) {
    EXPECT_EQ(r.clocks[static_cast<std::size_t>(rank)],
              log.recorded_clocks[static_cast<std::size_t>(rank)]);
  }
  EXPECT_EQ(r.max_clock, res.parallel_time);
}

TEST(ReplayWhatIfTest, DoublingEveryConstantDoublesEveryClock) {
  // Hand-built log with every charge kind plus a barrier; multiplying
  // each constant by an exact power of two must scale each clock by
  // exactly 2.0 (dt * 2.0 is exact in IEEE arithmetic).
  mpsim::Machine m(2);
  mpsim::EventRecorder rec;
  m.set_event_recorder(&rec);
  const mpsim::CostModel& cm = m.cost();
  m.charge_compute_time(0, 100 * cm.t_c);
  m.charge_comm(1, cm.t_s + 12 * cm.t_w, 12.0, 12.0, 1, cm.t_s);
  m.charge_io(0, 30 * cm.t_io);
  m.barrier_over({0, 1});

  const EventLog log = round_trip(rec);
  ReplayCost doubled = log.cost;
  doubled.t_s *= 2.0;
  doubled.t_w *= 2.0;
  doubled.t_c *= 2.0;
  doubled.t_io *= 2.0;
  doubled.t_timeout *= 2.0;
  const ReplayResult r = replay_log(log, doubled);
  EXPECT_FALSE(r.unscalable);
  for (int rank = 0; rank < 2; ++rank) {
    EXPECT_EQ(r.clocks[static_cast<std::size_t>(rank)],
              2.0 * log.recorded_clocks[static_cast<std::size_t>(rank)]);
  }
}

TEST(ReplayWhatIfTest, RaisingBandwidthCostNeverSpeedsUpTheRun) {
  core::ParOptions opt;
  opt.num_procs = 4;
  obs::Observability o;
  o.enable_event_log();
  opt.obs = &o;
  (void)core::build(core::Formulation::Sync, workload(2000), opt);
  const EventLog log = round_trip(*o.event_log());

  double prev = 0.0;
  for (const double tw : {0.05, 0.11, 0.2, 0.5, 1.0}) {
    ReplayCost c = log.cost;
    c.t_w = tw;
    const double clock = replay_log(log, c).max_clock;
    EXPECT_GE(clock, prev) << "t_w=" << tw;
    prev = clock;
  }
}

TEST(ReplaySweepTest, ParsesGridsAndSinglePoints) {
  std::vector<SweepAxis> axes;
  std::string err;
  ASSERT_TRUE(parse_sweep_spec("t_s=10:80:10,t_w=0.11", &axes, &err)) << err;
  ASSERT_EQ(axes.size(), 2u);
  EXPECT_EQ(axes[0].key, "t_s");
  EXPECT_DOUBLE_EQ(axes[0].lo, 10.0);
  EXPECT_DOUBLE_EQ(axes[0].hi, 80.0);
  EXPECT_DOUBLE_EQ(axes[0].step, 10.0);
  EXPECT_EQ(axes[1].key, "t_w");
  EXPECT_DOUBLE_EQ(axes[1].lo, 0.11);
  EXPECT_DOUBLE_EQ(axes[1].hi, 0.11);

  axes.clear();
  EXPECT_FALSE(parse_sweep_spec("t_q=1:2:1", &axes, &err));  // unknown key
  EXPECT_FALSE(parse_sweep_spec("t_s=5:1:1", &axes, &err));  // hi < lo
  EXPECT_FALSE(parse_sweep_spec("t_s", &axes, &err));        // no value
}

TEST(ReplayCheckTest, CorruptedRecordedClockFailsTheGate) {
  core::ParOptions opt;
  opt.num_procs = 4;
  obs::Observability o;
  o.enable_event_log();
  opt.obs = &o;
  (void)core::build(core::Formulation::Sync, workload(1000), opt);
  EventLog log = round_trip(*o.event_log());

  ReplayOptions ropt;
  ropt.check = true;
  std::ostringstream sink;
  EXPECT_EQ(run_replay({log}, ropt, sink), 0);

  log.recorded_clocks[1] += 1e-9;  // even one ulp-scale nudge must trip it
  std::ostringstream sink2;
  EXPECT_EQ(run_replay({log}, ropt, sink2), 1);
}

// The host overlay: a profiled run's wall-clock account rides inside the
// events log, survives the JSON round trip, and run_replay charts
// predicted (virtual) vs measured (host) scaling from it.
TEST(ReplayHostTest, OverlayRoundTripsAndIdentityStillHolds) {
  core::ParOptions opt;
  opt.num_procs = 4;
  obs::Observability o;
  o.enable_event_log();
  o.enable_host_profiler();
  opt.obs = &o;
  (void)core::build(core::Formulation::Hybrid, workload(2000), opt);

  std::ostringstream os;
  obs::EventLogMeta meta;
  meta.procs = 4;
  obs::write_events_report(os, *o.event_log(), meta, o.host_profiler());
  JsonValue root;
  std::string err;
  ASSERT_TRUE(json_parse(os.str(), &root, &err)) << err;
  EventLog log;
  ASSERT_TRUE(parse_event_log(root, &log, &err)) << err;

  EXPECT_TRUE(log.has_host);
  EXPECT_EQ(log.host_clock, "steady_clock");
  EXPECT_GT(log.host_total_ns, 0.0);
  EXPECT_GT(log.host_samples, 0u);
  EXPECT_FALSE(log.host_by_phase.empty());
  for (const HostPhaseRow& row : log.host_by_phase) {
    EXPECT_FALSE(row.phase.empty());
    EXPECT_GE(row.host_ns, 0.0);
  }

  // The overlay is bookkeeping only — the identity replay of the event
  // stream itself must still be bit-exact.
  const ReplayResult r = replay_log(log, log.cost);
  EXPECT_EQ(r.max_clock, log.recorded_max_clock);
}

TEST(ReplayHostTest, RunReplayChartsPredictedVsMeasuredScaling) {
  auto record = [](int procs) {
    core::ParOptions opt;
    opt.num_procs = procs;
    obs::Observability o;
    o.enable_event_log();
    o.enable_host_profiler();
    opt.obs = &o;
    (void)core::build(core::Formulation::Hybrid, workload(2000), opt);
    std::ostringstream os;
    obs::EventLogMeta meta;
    meta.procs = procs;
    meta.n = 2000;
    obs::write_events_report(os, *o.event_log(), meta, o.host_profiler());
    JsonValue root;
    std::string err;
    EXPECT_TRUE(json_parse(os.str(), &root, &err)) << err;
    EventLog log;
    EXPECT_TRUE(parse_event_log(root, &log, &err)) << err;
    log.name = "P" + std::to_string(procs);
    return log;
  };
  const EventLog p2 = record(2);
  const EventLog p8 = record(8);

  std::ostringstream out;
  EXPECT_EQ(run_replay({p2, p8}, ReplayOptions{}, out), 0);
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"host\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"ns_per_virtual_us\""), std::string::npos);
  EXPECT_NE(doc.find("\"scaling\""), std::string::npos);
  EXPECT_NE(doc.find("\"predicted_speedup\""), std::string::npos);
  EXPECT_NE(doc.find("\"measured_host_ratio\""), std::string::npos);

  // Logs recorded without a host profiler produce no overlay.
  core::ParOptions opt;
  opt.num_procs = 4;
  obs::Observability o;
  o.enable_event_log();
  opt.obs = &o;
  (void)core::build(core::Formulation::Hybrid, workload(2000), opt);
  const EventLog plain = round_trip(*o.event_log());
  EXPECT_FALSE(plain.has_host);
  std::ostringstream out2;
  EXPECT_EQ(run_replay({plain}, ReplayOptions{}, out2), 0);
  EXPECT_EQ(out2.str().find("\"host\""), std::string::npos);
}

}  // namespace
}  // namespace pdt::tools
