// Tests for the pdt-report renderer: each schema renders its sections,
// the output is deterministic (render twice, compare byte-for-byte), and
// unrecognized schemas are reported without aborting the whole run.
#include "report/report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/json_value.hpp"

namespace pdt::tools {
namespace {

ReportInput make_input(const std::string& name, std::string_view json) {
  ReportInput in;
  in.name = name;
  std::string err;
  EXPECT_TRUE(json_parse(json, &in.root, &err)) << err;
  return in;
}

constexpr std::string_view kComm = R"({
  "schema": "pdt-comm-v1",
  "num_ranks": 2,
  "num_collective_calls": 3,
  "collectives": [
    {"kind": "all-reduce", "calls": 2, "words": 12.0,
     "predicted_us": 52.0, "measured_us": 52.0, "delta_us": 0.0,
     "io_us": 0.0, "messages": 4},
    {"kind": "pairwise-exchange", "calls": 1, "words": 14.0,
     "predicted_us": 24.0, "measured_us": 44.0, "delta_us": 20.0,
     "io_us": 0.0, "messages": 2}
  ],
  "levels": [
    {"level": 0, "calls": 3, "words": 26.0, "predicted_us": 76.0,
     "measured_us": 96.0, "delta_us": 20.0, "io_us": 0.0, "messages": 6}
  ],
  "matrix": {
    "bytes": [[0.0, 56.0], [48.0, 0.0]],
    "messages": [[0, 3], [3, 0]]
  },
  "critical_path": {
    "max_clock_us": 100.0, "end_rank": 1, "handoffs": 1, "barriers": 3,
    "num_segments": 2,
    "by_kind": {"compute_us": 40.0, "comm_us": 60.0, "io_us": 0.0,
                "idle_us": 0.0},
    "by_phase": [{"phase": "histogram", "us": 100.0, "blame_pct": 100.0}],
    "top_segments": [
      {"rank": 0, "phase": "histogram", "level": 0, "kind": "comm",
       "start_us": 40.0, "dur_us": 60.0, "blame_pct": 60.0},
      {"rank": 1, "phase": "histogram", "level": 0, "kind": "compute",
       "start_us": 0.0, "dur_us": 40.0, "blame_pct": 40.0}
    ]
  }
})";

constexpr std::string_view kBench = R"({
  "schema": "pdt-bench-v1",
  "harness": "fig6_speedup",
  "scale": 0.1,
  "cost_model": {"t_s": 40.0, "t_w": 0.11, "t_c": 0.15, "t_io": 0.05},
  "sections": [
    {"type": "speedup_series", "workload": "quest-f2", "formulation": "sync",
     "points": [
       {"procs": 1, "time_us": 100.0, "speedup": 1.0, "efficiency": 1.0},
       {"procs": 4, "time_us": 30.0, "speedup": 3.33, "efficiency": 0.83}
     ]},
    {"type": "speedup_series", "workload": "quest-f2",
     "formulation": "partitioned",
     "points": [
       {"procs": 4, "time_us": 40.0, "speedup": 2.5, "efficiency": 0.63}
     ]}
  ]
})";

TEST(Report, RendersCommSchemaSections) {
  std::ostringstream os;
  EXPECT_TRUE(render_report({make_input("c.json", kComm)}, os));
  const std::string out = os.str();
  EXPECT_NE(out.find("# Communication report: `c.json`"), std::string::npos);
  EXPECT_NE(out.find("Collective cost model"), std::string::npos);
  EXPECT_NE(out.find("| all-reduce | 2 | 12 | 52.0 | 52.0 | 0.0 | 0.00 |"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("pairwise-exchange"), std::string::npos);
  EXPECT_NE(out.find("Traffic matrix"), std::string::npos);
  // Row sums / column sums: rank 0 sent 56, received 48.
  EXPECT_NE(out.find("| 0 | 0 | 56 | 56 |"), std::string::npos) << out;
  EXPECT_NE(out.find("| **recv** | 48 | 56 | 104 |"), std::string::npos)
      << out;
  EXPECT_NE(out.find("Critical path"), std::string::npos);
  EXPECT_NE(out.find("ending on rank 1 (1 handoffs, 3 barriers"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("comm 60.0 us (60.0%)"), std::string::npos) << out;
}

TEST(Report, RendersBenchSpeedupTablesMergingFormulations) {
  std::ostringstream os;
  EXPECT_TRUE(render_report({make_input("b.json", kBench)}, os));
  const std::string out = os.str();
  EXPECT_NE(out.find("# Bench report: fig6_speedup"), std::string::npos);
  EXPECT_NE(out.find("### Speedup — quest-f2"), std::string::npos);
  EXPECT_NE(out.find("| P | sync | partitioned |"), std::string::npos) << out;
  EXPECT_NE(out.find("| 4 | 3.33 | 2.50 |"), std::string::npos) << out;
  // P=1 exists only in the sync series: the partitioned cell is a dash.
  EXPECT_NE(out.find("| 1 | 1.00 | — |"), std::string::npos) << out;
  EXPECT_NE(out.find("t_s=40.00us"), std::string::npos) << out;
}

TEST(Report, OutputIsDeterministic) {
  std::ostringstream a, b;
  const std::vector<ReportInput> inputs = {make_input("b.json", kBench),
                                           make_input("c.json", kComm)};
  EXPECT_TRUE(render_report(inputs, a));
  EXPECT_TRUE(render_report(inputs, b));
  EXPECT_EQ(a.str(), b.str());
  EXPECT_FALSE(a.str().empty());
}

TEST(Report, UnknownSchemaReturnsFalseButStillRenders) {
  std::ostringstream os;
  EXPECT_FALSE(render_report({make_input("x.json", R"({"schema":"nope"})"),
                              make_input("c.json", kComm)},
                             os));
  const std::string out = os.str();
  EXPECT_NE(out.find("Unrecognized report: `x.json`"), std::string::npos);
  EXPECT_NE(out.find("`nope`"), std::string::npos);
  // The recognized input after it still rendered.
  EXPECT_NE(out.find("# Communication report: `c.json`"), std::string::npos);
}

TEST(Report, MissingSchemaFieldIsReportedAsNone) {
  std::ostringstream os;
  EXPECT_FALSE(render_report({make_input("y.json", "{}")}, os));
  EXPECT_NE(os.str().find("`(none)`"), std::string::npos);
}

// Bench envelope with paired host accounts on two instrumented runs —
// enough for the host share table and the host-time speedup table.
constexpr std::string_view kHostBench = R"({
  "schema": "pdt-bench-v1",
  "harness": "fig6_speedup",
  "sections": [
    {"type": "speedup_series", "workload": "q", "formulation": "hybrid",
     "points": [
       {"procs": 4, "time_us": 30.0, "speedup": 3.0, "efficiency": 0.75}
     ]},
    {"type": "instrumented_run", "tag": "hybrid.P1", "formulation": "hybrid",
     "procs": 1, "max_clock_us": 1000.0,
     "host": {"schema": "pdt-host-v1", "clock": "steady_clock",
              "total_ns": 2000000.0, "samples": 10,
              "virtual_total_us": 1000.0,
              "by_phase": [
                {"phase": "histogram", "host_ns": 1500000.0,
                 "host_share_pct": 75.0, "virtual_us": 400.0,
                 "virtual_share_pct": 40.0, "divergence_pp": 35.0},
                {"phase": "all-reduce", "host_ns": 500000.0,
                 "host_share_pct": 25.0, "virtual_us": 600.0,
                 "virtual_share_pct": 60.0, "divergence_pp": -35.0}
              ]}},
    {"type": "instrumented_run", "tag": "hybrid.P4", "formulation": "hybrid",
     "procs": 4, "max_clock_us": 400.0,
     "host": {"schema": "pdt-host-v1", "clock": "steady_clock",
              "total_ns": 1000000.0, "samples": 10,
              "virtual_total_us": 400.0, "by_phase": []}}
  ]
})";

TEST(Report, RendersHostSectionsAndSpeedupTable) {
  std::ostringstream os;
  EXPECT_TRUE(render_report({make_input("h.json", kHostBench)}, os));
  const std::string out = os.str();
  EXPECT_NE(out.find("### Host wall-clock (pdt-host-v1)"), std::string::npos);
  EXPECT_NE(out.find("Host vs simulated time share by phase"),
            std::string::npos);
  EXPECT_NE(out.find("| histogram | 1.500 | 75.0 | 400.0 | 40.0 | 35.0 |"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("Largest simulated-vs-real divergences"),
            std::string::npos);
  EXPECT_NE(out.find("### Host-time speedup — hybrid (baseline P=1)"),
            std::string::npos)
      << out;
  // P=4: host 2.0ms -> 1.0ms = 2.00x, virtual 1000us -> 400us = 2.50x.
  EXPECT_NE(out.find("| 4 | 1.000 | 2.00 | 400.0 | 2.50 |"),
            std::string::npos)
      << out;
}

TEST(Report, SectionFilterGatesWhatRenders) {
  RenderOptions host_only;
  host_only.sections = {"host"};
  std::ostringstream os;
  EXPECT_TRUE(
      render_report({make_input("h.json", kHostBench)}, os, host_only));
  const std::string out = os.str();
  EXPECT_NE(out.find("Host-time speedup"), std::string::npos);
  EXPECT_NE(out.find("Host wall-clock"), std::string::npos);
  EXPECT_EQ(out.find("### Speedup —"), std::string::npos) << out;

  RenderOptions speedup_only;
  speedup_only.sections = {"speedup"};
  std::ostringstream os2;
  EXPECT_TRUE(
      render_report({make_input("h.json", kHostBench)}, os2, speedup_only));
  const std::string out2 = os2.str();
  EXPECT_NE(out2.find("### Speedup —"), std::string::npos) << out2;
  EXPECT_EQ(out2.find("Host-time speedup"), std::string::npos);
  EXPECT_EQ(out2.find("Host wall-clock"), std::string::npos);
}

TEST(Report, WantsIsAllWhenEmptyAndMembershipOtherwise) {
  RenderOptions all;
  EXPECT_TRUE(all.wants("host"));
  EXPECT_TRUE(all.wants("speedup"));
  RenderOptions some;
  some.sections = {"comm", "memory"};
  EXPECT_TRUE(some.wants("comm"));
  EXPECT_TRUE(some.wants("memory"));
  EXPECT_FALSE(some.wants("host"));
}

TEST(Report, TrendSchemaRendersSparklinesAndExplainTable) {
  constexpr std::string_view kTrendDoc = R"({
    "schema": "pdt-trend-v1", "runs": 3, "window": 5,
    "tol": 0.5, "mad_k": 5, "vtol": 0.02,
    "meta": [
      {"seq": 1, "timestamp": "2026-08-01T00:00:00Z", "label": "a",
       "git_sha": "abc123", "git_dirty": false},
      {"seq": 2, "timestamp": "", "label": "", "git_sha": "def456",
       "git_dirty": true},
      {"seq": 3, "timestamp": "2026-08-03T00:00:00Z", "label": "c",
       "git_sha": "abc789", "git_dirty": false}
    ],
    "tuples": [
      {"name": "fig6 0.8M hybrid P=8", "kind": "host",
       "verdict": "REGRESSION", "seqs": [1, 2, 3],
       "values": [100000000.0, 101000000.0, 300000000.0],
       "changepoints": [{"seq": 3, "direction": "up"}],
       "base": 100500000.0, "latest": 300000000.0, "band": 50250000.0,
       "explain": [
         {"phase": "comm", "level": 1, "before_ns": 20000000.0,
          "after_ns": 220000000.0, "delta_ns": 200000000.0,
          "share_pct": 100.2}
       ]},
      {"name": "fig6 0.8M hybrid P=8", "kind": "virtual", "verdict": "ok",
       "seqs": [1, 2, 3], "values": [1000.0, 1000.0, 1000.0],
       "changepoints": [], "base": 1000.0, "latest": 1000.0, "band": 20.0}
    ]
  })";
  std::ostringstream os1, os2;
  EXPECT_TRUE(render_report({make_input("trend.json", kTrendDoc)}, os1));
  EXPECT_TRUE(render_report({make_input("trend.json", kTrendDoc)}, os2));
  EXPECT_EQ(os1.str(), os2.str()) << "byte-identical re-render";
  const std::string out = os1.str();
  EXPECT_NE(out.find("# Trend report: `trend.json`"), std::string::npos);
  EXPECT_NE(out.find("| 2 | - | def456\\* | - |"), std::string::npos)
      << "dirty build marked, empty fields dashed:\n" << out;
  EXPECT_NE(out.find("▁"), std::string::npos) << "sparkline rendered";
  EXPECT_NE(out.find("^@3"), std::string::npos) << "changepoint marker";
  EXPECT_NE(out.find("**REGRESSION**"), std::string::npos);
  EXPECT_NE(out.find("#### Explain: fig6 0.8M hybrid P=8"),
            std::string::npos);
  EXPECT_NE(out.find("| comm | 1 | 20.000 | 220.000 | 200.000 | 100.2 |"),
            std::string::npos)
      << out;

  // The flat virtual series renders all-low bars and no markers.
  EXPECT_NE(out.find("▁▁▁ | 1000.0 us"), std::string::npos) << out;

  // Section filtering: without "trend", only the header renders.
  RenderOptions none;
  none.sections = {"speedup"};
  std::ostringstream os3;
  EXPECT_TRUE(render_report({make_input("trend.json", kTrendDoc)}, os3, none));
  EXPECT_EQ(os3.str(), "# Trend report: `trend.json`\n\n");
}

TEST(Report, StandaloneHostSchemaRenders) {
  constexpr std::string_view kHostDoc = R"({
    "schema": "pdt-host-v1", "clock": "steady_clock",
    "total_ns": 5000000.0, "samples": 42, "virtual_total_us": 900.0,
    "counters": {"requested": true, "enabled": false},
    "by_phase": []
  })";
  std::ostringstream os;
  EXPECT_TRUE(render_report({make_input("host.json", kHostDoc)}, os));
  const std::string out = os.str();
  EXPECT_NE(out.find("# Host report: `host.json`"), std::string::npos) << out;
  EXPECT_NE(out.find("`steady_clock`"), std::string::npos);
  EXPECT_NE(out.find("requested but unavailable"), std::string::npos);
}

TEST(Report, StandaloneThreadsSchemaRendersTablesDeterministically) {
  constexpr std::string_view kThreadsDoc = R"({
    "schema": "pdt-threads-v1", "hardware_concurrency": 8, "max_shards": 256,
    "registry": {"registered": 9, "overflow": 0, "active": 1,
                 "peak_active": 9},
    "collectors": [
      {"name": "phase", "samples": 16000,
       "shards": [{"shard": 0, "samples": 4000}],
       "merge_order": [{"shard": 0, "samples": 2000},
                       {"shard": 1, "samples": 10000}],
       "dropped": 0},
      {"name": "mem", "samples": 32000, "shards": [], "merge_order": [],
       "dropped": 3}
    ],
    "drops": {"phase": 0, "mem": 3, "host_clamped": 1},
    "locks": [
      {"name": "obs.phase.names", "acquisitions": 12, "contended": 2,
       "wait_ns": 1500000.0}
    ]
  })";
  std::ostringstream os1, os2;
  EXPECT_TRUE(render_report({make_input("t.json", kThreadsDoc)}, os1));
  EXPECT_TRUE(render_report({make_input("t.json", kThreadsDoc)}, os2));
  EXPECT_EQ(os1.str(), os2.str()) << "byte-identical re-render";
  const std::string out = os1.str();
  EXPECT_NE(out.find("# Concurrency report: `t.json`"), std::string::npos)
      << out;
  EXPECT_NE(out.find("- hardware concurrency: 8 (max shards 256)"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("- registered threads: 9 (peak active 9, active 1, "
                     "overflow 0)"),
            std::string::npos)
      << out;
  // Zero drop counters are suppressed; non-zero ones keep document order.
  EXPECT_NE(out.find("- drops: mem=3, host_clamped=1"), std::string::npos)
      << out;
  EXPECT_EQ(out.find("phase=0"), std::string::npos) << out;
  // Collector table: live shards and merge order as shard:samples pairs,
  // empty lists dashed.
  EXPECT_NE(out.find("| phase | 16000 | 0:4000 | 0:2000 1:10000 | 0 |"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("| mem | 32000 | - | - | 3 |"), std::string::npos) << out;
  EXPECT_NE(out.find("| `obs.phase.names` | 12 | 2 | 1.500 |"),
            std::string::npos)
      << out;

  // Section filtering: without "threads", only the header renders.
  RenderOptions none;
  none.sections = {"speedup"};
  std::ostringstream os3;
  EXPECT_TRUE(render_report({make_input("t.json", kThreadsDoc)}, os3, none));
  EXPECT_EQ(os3.str(), "# Concurrency report: `t.json`\n\n");
}

TEST(Report, EnvelopeThreadsSectionRendersAndIsGated) {
  constexpr std::string_view kEnvelope = R"({
    "schema": "pdt-bench-v1", "harness": "stress",
    "sections": [
      {"type": "instrumented_run", "tag": "s1", "formulation": "sync",
       "procs": 4, "n": 1000, "max_clock_us": 10.0,
       "threads": {
         "hardware_concurrency": 4, "max_shards": 256,
         "registry": {"registered": 5, "overflow": 0, "active": 5,
                      "peak_active": 5},
         "collectors": [], "drops": {}, "locks": []
       }}
    ]
  })";
  std::ostringstream os;
  EXPECT_TRUE(render_report({make_input("e.json", kEnvelope)}, os));
  const std::string out = os.str();
  EXPECT_NE(out.find("### Concurrency (pdt-threads-v1)"), std::string::npos)
      << out;
  EXPECT_NE(out.find("- hardware concurrency: 4 (max shards 256)"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("- drops: none"), std::string::npos) << out;

  RenderOptions no_threads;
  no_threads.sections = {"metrics"};
  std::ostringstream os2;
  EXPECT_TRUE(render_report({make_input("e.json", kEnvelope)}, os2,
                            no_threads));
  EXPECT_EQ(os2.str().find("Concurrency (pdt-threads-v1)"), std::string::npos)
      << os2.str();
}

}  // namespace
}  // namespace pdt::tools
