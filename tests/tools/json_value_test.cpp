// Tests for the pdt-report JSON reader: full-grammar parsing, insertion
// order preservation, escape handling, and error reporting with byte
// offsets.
#include "common/json_value.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pdt::tools {
namespace {

JsonValue parse_ok(std::string_view text) {
  JsonValue v;
  std::string err;
  EXPECT_TRUE(json_parse(text, &v, &err)) << err;
  return v;
}

TEST(JsonValue, ParsesScalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_EQ(parse_ok("true").as_bool(), true);
  EXPECT_EQ(parse_ok("false").as_bool(true), false);
  EXPECT_DOUBLE_EQ(parse_ok("3.5").as_double(), 3.5);
  EXPECT_DOUBLE_EQ(parse_ok("-1.25e2").as_double(), -125.0);
  EXPECT_EQ(parse_ok("42").as_int(), 42);
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
}

TEST(JsonValue, ParsesNestedContainers) {
  const JsonValue v = parse_ok(
      R"({"schema":"pdt-comm-v1","matrix":{"bytes":[[0,4],[8,0]]},"n":2})");
  EXPECT_EQ(v.get("schema").as_string(), "pdt-comm-v1");
  EXPECT_DOUBLE_EQ(v.get("matrix").get("bytes").at(1).at(0).as_double(), 8.0);
  EXPECT_EQ(v.get("n").as_int(), 2);
  EXPECT_TRUE(v.has("matrix"));
  EXPECT_FALSE(v.has("absent"));
  // Chained access through a missing key is safe and yields null.
  EXPECT_TRUE(v.get("absent").get("deeper").at(3).is_null());
}

TEST(JsonValue, ObjectKeepsInsertionOrder) {
  const JsonValue v = parse_ok(R"({"z":1,"a":2,"m":3})");
  ASSERT_EQ(v.object().size(), 3u);
  EXPECT_EQ(v.object()[0].first, "z");
  EXPECT_EQ(v.object()[1].first, "a");
  EXPECT_EQ(v.object()[2].first, "m");
}

TEST(JsonValue, HandlesEscapesAndUnicode) {
  const JsonValue v = parse_ok(R"(["a\"b", "tab\there", "\u00e9", "\ud83d\ude00"])");
  EXPECT_EQ(v.at(0).as_string(), "a\"b");
  EXPECT_EQ(v.at(1).as_string(), "tab\there");
  EXPECT_EQ(v.at(2).as_string(), "\xc3\xa9");          // é as UTF-8
  EXPECT_EQ(v.at(3).as_string(), "\xf0\x9f\x98\x80");  // surrogate pair
}

TEST(JsonValue, WrongTypeAccessorsFallBack) {
  const JsonValue v = parse_ok(R"({"s":"x"})");
  EXPECT_DOUBLE_EQ(v.get("s").as_double(7.5), 7.5);
  EXPECT_EQ(v.get("s").as_bool(true), true);
  EXPECT_EQ(v.get("missing").as_int(-3), -3);
  EXPECT_EQ(v.at(0).type(), JsonValue::Type::Null) << "not an array";
}

TEST(JsonValue, RejectsMalformedInputWithOffset) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse("{\"a\":}", &v, &err));
  EXPECT_NE(err.find("at byte"), std::string::npos) << err;
  EXPECT_FALSE(json_parse("[1,2", &v, &err));
  EXPECT_FALSE(json_parse("", &v, &err));
  EXPECT_FALSE(json_parse("nul", &v, &err));
  EXPECT_FALSE(json_parse("\"\\q\"", &v, &err)) << "bad escape";
}

TEST(JsonValue, RejectsTrailingContent) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse("{} extra", &v, &err));
  EXPECT_TRUE(json_parse("{}  \n", &v, &err)) << "trailing whitespace is fine";
}

TEST(JsonValue, RejectsOverDeepNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse(deep, &v, &err));
  EXPECT_NE(err.find("deep"), std::string::npos) << err;
}

// Malformed-corpus coverage for the hardened reader: the files pdt-report
// and pdt-diff ingest come from interrupted bench runs and hand edits, so
// truncation, IEEE-special literals, overflowing numbers, and duplicate
// keys must all fail loudly with a byte offset — never parse to garbage.

TEST(JsonValue, RejectsTruncatedDocument) {
  // A bench run killed mid-write: the envelope opens but never closes.
  const std::string doc =
      R"({"schema":"pdt-bench-v1","sections":[{"type":"fault_tolerance",)";
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse(doc, &v, &err));
  EXPECT_NE(err.find("at byte"), std::string::npos) << err;
  // Truncation mid-string and mid-number fail too.
  EXPECT_FALSE(json_parse(R"({"label":"unterm)", &v, &err));
  EXPECT_NE(err.find("unterminated string"), std::string::npos) << err;
  EXPECT_FALSE(json_parse(R"({"x": 12.)", &v, &err));
}

TEST(JsonValue, RejectsNaNAndInfinityLiterals) {
  JsonValue v;
  std::string err;
  for (const char* doc : {"[NaN]", "[Infinity]", "[-Infinity]",
                          R"({"overhead_pct": NaN})"}) {
    EXPECT_FALSE(json_parse(doc, &v, &err)) << doc;
    EXPECT_NE(err.find("NaN/Infinity literals are not valid JSON"),
              std::string::npos)
        << doc << ": " << err;
    EXPECT_NE(err.find("at byte"), std::string::npos) << err;
  }
  // The offset points at the literal, not past it ("[NaN]" -> byte 1;
  // "[-Infinity]" rewinds over the consumed minus sign).
  EXPECT_FALSE(json_parse("[NaN]", &v, &err));
  EXPECT_NE(err.find("at byte 1"), std::string::npos) << err;
  EXPECT_FALSE(json_parse("[-Infinity]", &v, &err));
  EXPECT_NE(err.find("at byte 1"), std::string::npos) << err;
}

TEST(JsonValue, RejectsOverflowingNumbers) {
  // strtod saturates 1e999 to +inf; accepting it would smuggle in the
  // very infinity the literal check rejects.
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse("[1e999]", &v, &err));
  EXPECT_NE(err.find("number out of range"), std::string::npos) << err;
  EXPECT_NE(err.find("at byte 1"), std::string::npos) << err;
  EXPECT_FALSE(json_parse("[-1e999]", &v, &err));
  EXPECT_NE(err.find("number out of range"), std::string::npos) << err;
  // Subnormal underflow is fine — it rounds, it does not explode.
  EXPECT_DOUBLE_EQ(parse_ok("[1e-999]").at(0).as_double(-1.0), 0.0);
}

TEST(JsonValue, RejectsDuplicateObjectKeys) {
  // get() returns the first match, so a duplicate would silently shadow
  // later data; our writers never emit one, so it marks corruption.
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse(R"({"a":1,"a":2})", &v, &err));
  EXPECT_NE(err.find("duplicate object key \"a\""), std::string::npos) << err;
  EXPECT_NE(err.find("at byte"), std::string::npos) << err;
  // Nested objects are checked per scope: the same key in two different
  // objects is fine.
  EXPECT_TRUE(json_parse(R"({"a":{"x":1},"b":{"x":2}})", &v, &err)) << err;
  // ...but a duplicate deep inside still fails.
  EXPECT_FALSE(json_parse(R"({"a":{"x":1,"x":2}})", &v, &err));
  EXPECT_NE(err.find("duplicate object key \"x\""), std::string::npos) << err;
}

TEST(JsonValue, ParsesNonFiniteAsNullPerWriterContract) {
  // The simulator's JsonWriter emits null for NaN/Inf; a reader round-trip
  // sees a null, and the fallback accessor turns it into the default.
  const JsonValue v = parse_ok(R"({"delta_us": null})");
  EXPECT_TRUE(v.get("delta_us").is_null());
  EXPECT_DOUBLE_EQ(v.get("delta_us").as_double(0.0), 0.0);
}

TEST(JsonValue, RejectsEmptyAndWhitespaceOnlyInput) {
  // An empty PDT_JSON_DIR artifact (e.g. a file touched but never
  // written) must read as a parse error with a position, not as a
  // silent null document.
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse("", &v, &err));
  EXPECT_NE(err.find("unexpected end of input"), std::string::npos) << err;
  EXPECT_NE(err.find("at byte 0"), std::string::npos) << err;
  err.clear();
  EXPECT_FALSE(json_parse("  \n\t ", &v, &err));
  EXPECT_NE(err.find("unexpected end of input"), std::string::npos) << err;
}

TEST(JsonValue, SerializeRoundTripsDocumentsCompactly) {
  // json_serialize is how pdt-trend copies fingerprint objects from
  // envelopes into registry records: insertion order and exact doubles
  // must survive a parse -> serialize -> parse cycle.
  const std::string text =
      R"({"git_sha":"abc","git_dirty":true,"cores":4,"ratio":0.1,)"
      R"("env":{"PDT_SCALE":"0.05"},"list":[1,"two",null,false]})";
  const JsonValue v = parse_ok(text);
  EXPECT_EQ(json_serialize(v), text) << "compact form is the fixed point";

  const JsonValue again = parse_ok(json_serialize(v));
  EXPECT_EQ(json_serialize(again), text);
  EXPECT_DOUBLE_EQ(again.get("ratio").as_double(), 0.1) << "bit-exact";
  // Escapes survive.
  const JsonValue esc = parse_ok(R"({"a":"q\"b\\c"})");
  EXPECT_EQ(json_serialize(esc), R"({"a":"q\"b\\c"})");
}

}  // namespace
}  // namespace pdt::tools
