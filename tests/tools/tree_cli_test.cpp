// pdt-tree: pdt-model-v1 parsing/validation, diff divergence reporting,
// and eval reproduction of the recorded held-out accuracy.
#include <gtest/gtest.h>

#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json_value.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "dtree/builder.hpp"
#include "dtree/metrics.hpp"
#include "dtree/serialize.hpp"
#include "tree/tree.hpp"

namespace pdt::tools {
namespace {

data::Dataset quest_binned(std::size_t n, std::uint64_t seed) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = seed}),
      data::quest_paper_bins());
}

dtree::ModelMeta meta_for(std::uint64_t train_seed) {
  dtree::ModelMeta meta;
  meta.harness = "tree_cli_test";
  meta.tag = "t.P1";
  meta.formulation = "serial";
  meta.quest_function = 2;
  meta.train_seed = train_seed;
  meta.train_rows = 1500;
  meta.paper_bins = true;
  meta.eval_seed = train_seed + 9000;
  meta.eval_rows = 500;
  return meta;
}

ModelDoc parse_doc(const std::string& text, const std::string& name) {
  JsonValue root;
  std::string error;
  EXPECT_TRUE(json_parse(text, &root, &error)) << error;
  ModelDoc doc;
  doc.name = name;
  EXPECT_EQ(parse_model(root, &doc), "");
  return doc;
}

/// Grow on the recorded provenance and serialize with the honestly
/// measured held-out accuracy, exactly as bench::emit_model does.
std::string model_text(std::uint64_t train_seed,
                       std::span<const dtree::SplitAuditEntry> audit = {}) {
  const dtree::ModelMeta meta = meta_for(train_seed);
  const data::Dataset train =
      quest_binned(static_cast<std::size_t>(meta.train_rows), train_seed);
  const dtree::Tree t = dtree::grow_bfs(train, {});
  const data::Dataset eval_ds = quest_binned(
      static_cast<std::size_t>(meta.eval_rows), meta.eval_seed);
  return dtree::model_json(t, meta, audit,
                           dtree::evaluate(t, eval_ds).accuracy());
}

TEST(TreeCli, ParseModelRoundTripsTreeAndDigest) {
  const std::string text = model_text(3);
  const ModelDoc doc = parse_doc(text, "a.json");
  EXPECT_TRUE(doc.digest_match());
  EXPECT_GT(doc.tree.num_nodes(), 1);
  EXPECT_EQ(doc.computed_digest, dtree::model_digest(doc.tree));
  EXPECT_EQ(static_cast<int>(doc.nodes.size()), doc.tree.num_nodes());
  EXPECT_EQ(doc.meta.get("harness").as_string(), "tree_cli_test");
}

TEST(TreeCli, ParseModelRejectsBadDocuments) {
  ModelDoc doc;
  JsonValue root;
  std::string error;
  ASSERT_TRUE(json_parse(R"({"schema": "pdt-other-v1"})", &root, &error));
  EXPECT_NE(parse_model(root, &doc), "");

  // A structurally broken node array must fail replay validation, not
  // produce a half-built tree.
  std::string text = model_text(3);
  const std::size_t at = text.find("\"depth\":0");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 9, "\"depth\":3");
  ASSERT_TRUE(json_parse(text, &root, &error)) << error;
  EXPECT_NE(parse_model(root, &doc), "");
}

TEST(TreeCli, RecomputedDigestWinsOverTamperedRecord) {
  std::string text = model_text(3);
  const std::size_t at = text.find("\"digest\":\"");
  ASSERT_NE(at, std::string::npos);
  // Flip the first hex char of the recorded digest.
  const std::size_t c = at + std::string("\"digest\":\"").size();
  text[c] = text[c] == '0' ? '1' : '0';
  JsonValue root;
  std::string error;
  ASSERT_TRUE(json_parse(text, &root, &error)) << error;
  ModelDoc doc;
  doc.name = "tampered.json";
  ASSERT_EQ(parse_model(root, &doc), "");  // tampering is flagged, not fatal
  EXPECT_FALSE(doc.digest_match());

  std::ostringstream os;
  EXPECT_EQ(run_inspect(doc, os), kExitOk);  // inspect stays informational
  EXPECT_NE(os.str().find("WARNING"), std::string::npos);
  EXPECT_NE(os.str().find("tampered.json"), std::string::npos);
}

TEST(TreeCli, DiffIdenticalModelsExitsOk) {
  const ModelDoc a = parse_doc(model_text(3), "a.json");
  const ModelDoc b = parse_doc(model_text(3), "b.json");
  std::ostringstream os;
  EXPECT_EQ(run_diff(a, b, os), kExitOk);
  EXPECT_NE(os.str().find("identical"), std::string::npos);
}

TEST(TreeCli, DiffDivergentModelsNamesTheFirstNode) {
  const ModelDoc a = parse_doc(model_text(3), "a.json");
  const ModelDoc b = parse_doc(model_text(4), "b.json");
  std::ostringstream os;
  EXPECT_EQ(run_diff(a, b, os), kExitFail);
  EXPECT_NE(os.str().find("first divergent node: canonical id"),
            std::string::npos);
}

TEST(TreeCli, AuditMarginLookupFindsRecordedEntries) {
  std::vector<dtree::SplitAuditEntry> audit(1);
  audit[0].node_id = 0;
  audit[0].gain = 0.25;
  audit[0].runner_up_gain = 0.1;
  audit[0].runner_up_attr = 5;
  audit[0].level = 0;
  const ModelDoc doc = parse_doc(model_text(3, audit), "a.json");
  const AuditMargin m = audit_margin(doc, 0);
  ASSERT_TRUE(m.found);
  EXPECT_DOUBLE_EQ(m.gain, 0.25);
  EXPECT_DOUBLE_EQ(m.runner_up_gain, 0.1);
  EXPECT_EQ(m.runner_up_attr, 5);
  EXPECT_FALSE(audit_margin(doc, 1).found);  // only node 0 was recorded
}

TEST(TreeCli, EvalReproducesRecordedAccuracyExactly) {
  const ModelDoc doc = parse_doc(model_text(3), "a.json");
  std::ostringstream os;
  EXPECT_EQ(run_eval(doc, os), kExitOk);
  EXPECT_NE(os.str().find("recorded accuracy reproduced exactly"),
            std::string::npos);
}

TEST(TreeCli, EvalFailsOnTamperedAccuracy) {
  std::string text = model_text(3);
  const std::size_t at = text.find("\"accuracy\":");
  ASSERT_NE(at, std::string::npos);
  const std::size_t end = text.find("}", at);
  text.replace(at, end - at, "\"accuracy\":0.125");
  JsonValue root;
  std::string error;
  ASSERT_TRUE(json_parse(text, &root, &error)) << error;
  ModelDoc doc;
  doc.name = "tampered.json";
  ASSERT_EQ(parse_model(root, &doc), "");
  std::ostringstream os;
  EXPECT_EQ(run_eval(doc, os), kExitFail);
  EXPECT_NE(os.str().find("does not reproduce"), std::string::npos);
}

TEST(TreeCli, EvalWithoutProvenanceFailsCleanly) {
  const data::Dataset train = quest_binned(800, 9);
  const dtree::Tree t = dtree::grow_bfs(train, {});
  dtree::ModelMeta meta;  // eval_seed 0: nothing recorded
  meta.harness = "tree_cli_test";
  const ModelDoc doc = parse_doc(dtree::model_json(t, meta), "a.json");
  std::ostringstream os;
  EXPECT_EQ(run_eval(doc, os), kExitFail);
  EXPECT_NE(os.str().find("cannot evaluate"), std::string::npos);
}

}  // namespace
}  // namespace pdt::tools
