// pdt-diff: baseline extraction, round-trip, and the regression gate.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "diff/diff.hpp"
#include "common/json_value.hpp"

namespace pdt::tools {
namespace {

ReportInput parse(const std::string& name, const std::string& text) {
  ReportInput in;
  in.name = name;
  std::string error;
  EXPECT_TRUE(json_parse(text, &in.root, &error)) << error;
  return in;
}

const char* kBench = R"({
  "schema": "pdt-bench-v1",
  "harness": "fig6_speedup",
  "scale": 0.005,
  "sections": [
    {"type": "speedup_series", "workload": "0.8M", "formulation": "hybrid",
     "points": [
       {"procs": 1, "time_us": 1000.0, "speedup": 1.0, "efficiency": 1.0},
       {"procs": 2, "time_us": 600.0, "speedup": 1.6667, "efficiency": 0.8333},
       {"procs": 4, "time_us": 400.0, "speedup": 2.5, "efficiency": 0.625}
     ]},
    {"type": "mem_scaling", "workload": "0.8M", "formulation": "hybrid",
     "points": []}
  ]
})";

TEST(DiffExtract, CollectsSpeedupPointsAndAppliesProcsFilter) {
  const std::vector<ReportInput> inputs{parse("bench.json", kBench)};
  const std::vector<DiffEntry> all = extract_entries(inputs, {});
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].harness, "fig6_speedup");
  EXPECT_EQ(all[0].workload, "0.8M");
  EXPECT_EQ(all[0].formulation, "hybrid");
  EXPECT_EQ(all[1].procs, 2);
  EXPECT_DOUBLE_EQ(all[1].time_us, 600.0);
  EXPECT_DOUBLE_EQ(all[2].speedup, 2.5);

  const std::vector<DiffEntry> filtered = extract_entries(inputs, {1, 4});
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].procs, 1);
  EXPECT_EQ(filtered[1].procs, 4);
}

TEST(DiffExtract, IgnoresNonBenchInputs) {
  const std::vector<ReportInput> inputs{
      parse("mem.json", R"({"schema": "pdt-mem-v1", "num_ranks": 2})")};
  EXPECT_TRUE(extract_entries(inputs, {}).empty());
}

TEST(DiffBaseline, WriteThenParseRoundTripsExactly) {
  const std::vector<ReportInput> inputs{parse("bench.json", kBench)};
  const std::vector<DiffEntry> entries = extract_entries(inputs, {});
  std::ostringstream os;
  write_baseline(entries, os);

  const ReportInput base = parse("base.json", os.str());
  std::vector<DiffEntry> back;
  std::string error;
  ASSERT_TRUE(parse_baseline(base.root, &back, &error)) << error;
  ASSERT_EQ(back.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(back[i].harness, entries[i].harness);
    EXPECT_EQ(back[i].procs, entries[i].procs);
    EXPECT_EQ(back[i].time_us, entries[i].time_us) << "bit-exact round trip";
    EXPECT_EQ(back[i].speedup, entries[i].speedup);
    EXPECT_EQ(back[i].efficiency, entries[i].efficiency);
  }
}

TEST(DiffBaseline, RejectsWrongSchemaAndMalformedEntries) {
  std::vector<DiffEntry> out;
  std::string error;
  const ReportInput wrong =
      parse("x.json", R"({"schema": "pdt-bench-v1", "entries": []})");
  EXPECT_FALSE(parse_baseline(wrong.root, &out, &error));
  EXPECT_NE(error.find("pdt-diff-baseline-v1"), std::string::npos);

  const ReportInput bad = parse("y.json", R"({
    "schema": "pdt-diff-baseline-v1",
    "entries": [{"harness": "", "procs": 4}]})");
  EXPECT_FALSE(parse_baseline(bad.root, &out, &error));
}

TEST(DiffGate, IdenticalResultsPassAndDriftPastTolFails) {
  const std::vector<ReportInput> inputs{parse("bench.json", kBench)};
  const std::vector<DiffEntry> baseline = extract_entries(inputs, {});

  std::ostringstream os;
  DiffOptions opt;
  EXPECT_EQ(run_diff(baseline, baseline, opt, os), 0);
  EXPECT_NE(os.str().find("OK: 0 of 3"), std::string::npos);

  // 1% slowdown on one tuple: caught at the default tolerance, admitted
  // at --tol 0.02.
  std::vector<DiffEntry> current = baseline;
  current[2].time_us *= 1.01;
  std::ostringstream os2;
  EXPECT_EQ(run_diff(baseline, current, opt, os2), 1);
  EXPECT_NE(os2.str().find("FAIL"), std::string::npos);
  opt.tol = 0.02;
  std::ostringstream os3;
  EXPECT_EQ(run_diff(baseline, current, opt, os3), 0);
}

TEST(DiffGate, MissingTupleIsAFailure) {
  const std::vector<ReportInput> inputs{parse("bench.json", kBench)};
  const std::vector<DiffEntry> baseline = extract_entries(inputs, {});
  std::vector<DiffEntry> current = baseline;
  current.pop_back();
  std::ostringstream os;
  EXPECT_EQ(run_diff(baseline, current, DiffOptions{}, os), 1);
  EXPECT_NE(os.str().find("MISSING"), std::string::npos);
}

// -------------------------------------------------------------------------
// --host mode: median-of-k collapse, MAD math, and the noise-aware gate.

// One bench envelope carrying one repeat's host measurement.
std::string host_bench(double total_ns) {
  std::ostringstream os;
  os << R"({"schema": "pdt-bench-v1", "harness": "fig6_speedup",
            "sections": [{"type": "instrumented_run", "tag": "hybrid.P8",
            "formulation": "hybrid", "procs": 8,
            "host": {"schema": "pdt-host-v1", "total_ns": )"
     << total_ns << "}}]}";
  return os.str();
}

std::vector<HostEntry> host_entries(std::vector<double> repeats) {
  std::vector<ReportInput> inputs;
  for (std::size_t i = 0; i < repeats.size(); ++i) {
    inputs.push_back(parse("r" + std::to_string(i) + ".json",
                           host_bench(repeats[i])));
  }
  return extract_host_entries(inputs);
}

TEST(HostDiffExtract, CollapsesRepeatsToMedianAndMad) {
  // median(100, 120, 90) = 100; deviations {0, 20, 10} -> MAD = 10.
  const std::vector<HostEntry> entries = host_entries({100e6, 120e6, 90e6});
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].harness, "fig6_speedup");
  EXPECT_EQ(entries[0].tag, "hybrid.P8");
  EXPECT_EQ(entries[0].formulation, "hybrid");
  EXPECT_EQ(entries[0].procs, 8);
  EXPECT_EQ(entries[0].k, 3);
  EXPECT_DOUBLE_EQ(entries[0].median_ns, 100e6);
  EXPECT_DOUBLE_EQ(entries[0].mad_ns, 10e6);

  // Even k: median is the average of the middle pair.
  const std::vector<HostEntry> even = host_entries({100e6, 120e6});
  ASSERT_EQ(even.size(), 1u);
  EXPECT_DOUBLE_EQ(even[0].median_ns, 110e6);
  EXPECT_EQ(even[0].k, 2);
}

TEST(HostDiffExtract, IgnoresEnvelopesWithoutHostSections) {
  const std::vector<ReportInput> inputs{parse("bench.json", kBench)};
  EXPECT_TRUE(extract_host_entries(inputs).empty());
}

TEST(HostDiffBaseline, WriteThenParseRoundTripsExactly) {
  const std::vector<HostEntry> entries = host_entries({100e6, 120e6, 90e6});
  std::ostringstream os;
  write_host_baseline(entries, os);
  EXPECT_NE(os.str().find("pdt-host-baseline-v1"), std::string::npos);

  const ReportInput base = parse("base.json", os.str());
  std::vector<HostEntry> back;
  std::string error;
  ASSERT_TRUE(parse_host_baseline(base.root, &back, &error)) << error;
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].tag, entries[0].tag);
  EXPECT_EQ(back[0].k, entries[0].k);
  EXPECT_EQ(back[0].median_ns, entries[0].median_ns) << "bit-exact";
  EXPECT_EQ(back[0].mad_ns, entries[0].mad_ns);

  std::vector<HostEntry> out;
  const ReportInput wrong =
      parse("x.json", R"({"schema": "pdt-diff-baseline-v1", "entries": []})");
  EXPECT_FALSE(parse_host_baseline(wrong.root, &out, &error));
  EXPECT_NE(error.find("pdt-host-baseline-v1"), std::string::npos);
}

TEST(HostDiffGate, MadBandForgivesJitterThatPlainTolWouldCatch) {
  // Baseline median 100ms (MAD 10ms); current median 160ms (MAD 10ms).
  const std::vector<HostEntry> baseline = host_entries({100e6, 120e6, 90e6});
  const std::vector<HostEntry> current = host_entries({160e6, 170e6, 150e6});

  // 60% drift: past any sane relative tolerance alone...
  HostDiffOptions strict;
  strict.tol = 0.1;
  strict.mad_k = 0.0;
  std::ostringstream os1;
  EXPECT_EQ(run_host_diff(baseline, current, strict, os1), 1);
  EXPECT_NE(os1.str().find("FAIL"), std::string::npos);

  // ...but inside the measured jitter band:
  // 5 * 1.4826 * (10ms + 10ms) = 148.26ms >= 60ms drift.
  HostDiffOptions noisy;
  noisy.tol = 0.0;
  noisy.mad_k = 5.0;
  std::ostringstream os2;
  EXPECT_EQ(run_host_diff(baseline, current, noisy, os2), 0);
  EXPECT_NE(os2.str().find("OK: 0 of 1"), std::string::npos);

  // Identical repeats always pass at the defaults.
  std::ostringstream os3;
  EXPECT_EQ(run_host_diff(baseline, baseline, HostDiffOptions{}, os3), 0);
}

TEST(HostDiffGate, MissingHostTupleIsAFailure) {
  const std::vector<HostEntry> baseline = host_entries({100e6});
  std::ostringstream os;
  EXPECT_EQ(run_host_diff(baseline, {}, HostDiffOptions{}, os), 1);
  EXPECT_NE(os.str().find("MISSING"), std::string::npos);
}

}  // namespace
}  // namespace pdt::tools
