// pdt-diff: baseline extraction, round-trip, and the regression gate.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "diff/diff.hpp"
#include "common/json_value.hpp"

namespace pdt::tools {
namespace {

ReportInput parse(const std::string& name, const std::string& text) {
  ReportInput in;
  in.name = name;
  std::string error;
  EXPECT_TRUE(json_parse(text, &in.root, &error)) << error;
  return in;
}

const char* kBench = R"({
  "schema": "pdt-bench-v1",
  "harness": "fig6_speedup",
  "scale": 0.005,
  "sections": [
    {"type": "speedup_series", "workload": "0.8M", "formulation": "hybrid",
     "points": [
       {"procs": 1, "time_us": 1000.0, "speedup": 1.0, "efficiency": 1.0},
       {"procs": 2, "time_us": 600.0, "speedup": 1.6667, "efficiency": 0.8333},
       {"procs": 4, "time_us": 400.0, "speedup": 2.5, "efficiency": 0.625}
     ]},
    {"type": "mem_scaling", "workload": "0.8M", "formulation": "hybrid",
     "points": []}
  ]
})";

TEST(DiffExtract, CollectsSpeedupPointsAndAppliesProcsFilter) {
  const std::vector<ReportInput> inputs{parse("bench.json", kBench)};
  const std::vector<DiffEntry> all = extract_entries(inputs, {});
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].harness, "fig6_speedup");
  EXPECT_EQ(all[0].workload, "0.8M");
  EXPECT_EQ(all[0].formulation, "hybrid");
  EXPECT_EQ(all[1].procs, 2);
  EXPECT_DOUBLE_EQ(all[1].time_us, 600.0);
  EXPECT_DOUBLE_EQ(all[2].speedup, 2.5);

  const std::vector<DiffEntry> filtered = extract_entries(inputs, {1, 4});
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].procs, 1);
  EXPECT_EQ(filtered[1].procs, 4);
}

TEST(DiffExtract, IgnoresNonBenchInputs) {
  const std::vector<ReportInput> inputs{
      parse("mem.json", R"({"schema": "pdt-mem-v1", "num_ranks": 2})")};
  EXPECT_TRUE(extract_entries(inputs, {}).empty());
}

TEST(DiffBaseline, WriteThenParseRoundTripsExactly) {
  const std::vector<ReportInput> inputs{parse("bench.json", kBench)};
  const std::vector<DiffEntry> entries = extract_entries(inputs, {});
  std::ostringstream os;
  write_baseline(entries, os);

  const ReportInput base = parse("base.json", os.str());
  std::vector<DiffEntry> back;
  std::string error;
  ASSERT_TRUE(parse_baseline(base.root, &back, &error)) << error;
  ASSERT_EQ(back.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(back[i].harness, entries[i].harness);
    EXPECT_EQ(back[i].procs, entries[i].procs);
    EXPECT_EQ(back[i].time_us, entries[i].time_us) << "bit-exact round trip";
    EXPECT_EQ(back[i].speedup, entries[i].speedup);
    EXPECT_EQ(back[i].efficiency, entries[i].efficiency);
  }
}

TEST(DiffBaseline, RejectsWrongSchemaAndMalformedEntries) {
  std::vector<DiffEntry> out;
  std::string error;
  const ReportInput wrong =
      parse("x.json", R"({"schema": "pdt-bench-v1", "entries": []})");
  EXPECT_FALSE(parse_baseline(wrong.root, &out, &error));
  EXPECT_NE(error.find("pdt-diff-baseline-v1"), std::string::npos);

  const ReportInput bad = parse("y.json", R"({
    "schema": "pdt-diff-baseline-v1",
    "entries": [{"harness": "", "procs": 4}]})");
  EXPECT_FALSE(parse_baseline(bad.root, &out, &error));
}

TEST(DiffGate, IdenticalResultsPassAndDriftPastTolFails) {
  const std::vector<ReportInput> inputs{parse("bench.json", kBench)};
  const std::vector<DiffEntry> baseline = extract_entries(inputs, {});

  std::ostringstream os;
  DiffOptions opt;
  EXPECT_EQ(run_diff(baseline, baseline, opt, os), 0);
  EXPECT_NE(os.str().find("OK: 0 of 3"), std::string::npos);

  // 1% slowdown on one tuple: caught at the default tolerance, admitted
  // at --tol 0.02.
  std::vector<DiffEntry> current = baseline;
  current[2].time_us *= 1.01;
  std::ostringstream os2;
  EXPECT_EQ(run_diff(baseline, current, opt, os2), 1);
  EXPECT_NE(os2.str().find("FAIL"), std::string::npos);
  opt.tol = 0.02;
  std::ostringstream os3;
  EXPECT_EQ(run_diff(baseline, current, opt, os3), 0);
}

TEST(DiffGate, MissingTupleIsAFailure) {
  const std::vector<ReportInput> inputs{parse("bench.json", kBench)};
  const std::vector<DiffEntry> baseline = extract_entries(inputs, {});
  std::vector<DiffEntry> current = baseline;
  current.pop_back();
  std::ostringstream os;
  EXPECT_EQ(run_diff(baseline, current, DiffOptions{}, os), 1);
  EXPECT_NE(os.str().find("MISSING"), std::string::npos);
}

}  // namespace
}  // namespace pdt::tools
