// pdt-trend: the pdt-runs-v1 registry, the changepoint gate against the
// trailing window, and the (phase, level) regression explanation.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json_value.hpp"
#include "trend/trend.hpp"

namespace pdt::tools {
namespace {

ReportInput parse(const std::string& name, const std::string& text) {
  ReportInput in;
  in.name = name;
  std::string error;
  EXPECT_TRUE(json_parse(text, &in.root, &error)) << error;
  return in;
}

/// One bench envelope carrying one repeat: a speedup point and an
/// instrumented_run whose host time splits across two (phase, level)
/// cells.
std::string envelope(double time_us, double build_ns, double comm_ns) {
  std::ostringstream os;
  os << R"({"schema": "pdt-bench-v1", "harness": "fig6_speedup",
    "fingerprint": {"git_sha": "abc123def456", "git_dirty": false},
    "sections": [
      {"type": "speedup_series", "workload": "0.8M", "formulation": "hybrid",
       "points": [{"procs": 8, "time_us": )"
     << json_double_exact(time_us)
     << R"(, "speedup": 4.0, "efficiency": 0.5}]},
      {"type": "instrumented_run", "tag": "hybrid.P8",
       "formulation": "hybrid", "procs": 8,
       "host": {"schema": "pdt-host-v1", "total_ns": )"
     << json_double_exact(build_ns + comm_ns) << R"(, "phases": [
         {"phase": "build", "level": 0, "total_ns": )"
     << json_double_exact(build_ns) << R"(, "virtual_us": 500.0},
         {"phase": "comm", "level": 1, "total_ns": )"
     << json_double_exact(comm_ns) << R"(, "virtual_us": 200.0}
       ]}}
    ]})";
  return os.str();
}

RunRecord record(std::int64_t seq, double time_us, double build_ns,
                 double comm_ns) {
  const std::vector<ReportInput> inputs{
      parse("r0.json", envelope(time_us, build_ns, comm_ns)),
      parse("r1.json", envelope(time_us, build_ns * 1.02, comm_ns)),
      parse("r2.json", envelope(time_us, build_ns * 0.98, comm_ns))};
  RunRecord rec = record_from_envelopes(inputs);
  rec.seq = seq;
  rec.timestamp = "2026-08-0" + std::to_string(seq) + "T00:00:00Z";
  return rec;
}

TEST(TrendRecord, FoldsRepeatsIntoOneRecordWithCellsAndFingerprint) {
  const RunRecord rec = record(1, 1000.0, 80e6, 20e6);
  // Virtual tuples dedupe across the deterministic repeats.
  ASSERT_EQ(rec.virt.size(), 1u);
  EXPECT_EQ(rec.virt[0].procs, 8);
  EXPECT_DOUBLE_EQ(rec.virt[0].time_us, 1000.0);

  ASSERT_EQ(rec.host.size(), 1u);
  EXPECT_EQ(rec.host[0].entry.tag, "hybrid.P8");
  EXPECT_EQ(rec.host[0].entry.k, 3);
  // Cells carry the median across repeats: build saw {80, 81.6, 78.4}e6.
  ASSERT_EQ(rec.host[0].cells.size(), 2u);
  EXPECT_EQ(rec.host[0].cells[0].phase, "build");
  EXPECT_DOUBLE_EQ(rec.host[0].cells[0].host_ns, 80e6);
  EXPECT_DOUBLE_EQ(rec.host[0].cells[0].virtual_us, 500.0);
  EXPECT_EQ(rec.host[0].cells[1].phase, "comm");
  EXPECT_DOUBLE_EQ(rec.host[0].cells[1].host_ns, 20e6);

  EXPECT_EQ(rec.fingerprint.get("git_sha").as_string(), "abc123def456");
}

TEST(TrendRegistry, LineRoundTripIsExactAndToleratesBlankLines) {
  std::vector<RunRecord> runs{record(1, 1000.0, 80e6, 20e6),
                              record(2, 1001.0, 81e6, 21e6)};
  runs[0].label = "run \"a\"";  // escaping must survive the round trip
  const std::string text = "\n" + registry_text(runs) + "  \n";

  std::vector<RunRecord> back;
  std::string error;
  ASSERT_TRUE(parse_registry(text, &back, &error)) << error;
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].seq, 1);
  EXPECT_EQ(back[0].label, "run \"a\"");
  EXPECT_EQ(back[0].timestamp, runs[0].timestamp);
  EXPECT_EQ(back[0].fingerprint.get("git_sha").as_string(), "abc123def456");
  ASSERT_EQ(back[0].host.size(), 1u);
  EXPECT_EQ(back[0].host[0].entry.median_ns, runs[0].host[0].entry.median_ns)
      << "bit-exact";
  EXPECT_EQ(back[0].host[0].entry.mad_ns, runs[0].host[0].entry.mad_ns);
  ASSERT_EQ(back[0].host[0].cells.size(), 2u);
  EXPECT_EQ(back[0].host[0].cells[0].host_ns, runs[0].host[0].cells[0].host_ns);
  EXPECT_EQ(back[1].virt[0].time_us, runs[1].virt[0].time_us);

  // Re-serializing the parsed registry reproduces the bytes.
  EXPECT_EQ(registry_text(back), registry_text(runs));
}

TEST(TrendRegistry, RejectsMalformedLinesWithLineNumbers) {
  std::vector<RunRecord> out;
  std::string error;
  EXPECT_FALSE(parse_registry("{\"schema\": \"pdt-bench-v1\"}", &out, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_NE(error.find("pdt-runs-v1"), std::string::npos);

  const std::string good = record_line(record(1, 1000.0, 80e6, 20e6));
  EXPECT_FALSE(parse_registry(good + "\nnot json\n", &out, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);

  // Empty/whitespace-only text is an empty registry, not an error.
  EXPECT_TRUE(parse_registry("", &out, &error));
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(parse_registry("\n  \n", &out, &error));
  EXPECT_TRUE(out.empty());
}

TEST(TrendIngest, FoldsCommittedBaselinesAndRejectsUnknownSchemas) {
  RunRecord rec;
  std::string error;
  const ReportInput virt = parse("v.json", R"({
    "schema": "pdt-diff-baseline-v1",
    "entries": [{"harness": "fig6_speedup", "workload": "0.8M",
                 "formulation": "hybrid", "procs": 8, "time_us": 1000.0,
                 "speedup": 4.0, "efficiency": 0.5}]})");
  ASSERT_TRUE(record_from_artifact(virt, &rec, &error)) << error;
  ASSERT_EQ(rec.virt.size(), 1u);
  EXPECT_TRUE(rec.host.empty());

  const ReportInput host = parse("h.json", R"({
    "schema": "pdt-host-baseline-v1",
    "entries": [{"harness": "fig6_speedup", "tag": "hybrid.P8",
                 "formulation": "hybrid", "procs": 8, "k": 3,
                 "median_ns": 100000000.0, "mad_ns": 1000000.0}]})");
  ASSERT_TRUE(record_from_artifact(host, &rec, &error)) << error;
  ASSERT_EQ(rec.host.size(), 1u);
  EXPECT_TRUE(rec.host[0].cells.empty()) << "baselines carry no cells";

  const ReportInput bad = parse("m.json", R"({"schema": "pdt-mem-v1"})");
  EXPECT_FALSE(record_from_artifact(bad, &rec, &error));
  EXPECT_NE(error.find("pdt-mem-v1"), std::string::npos);
}

// ---------------------------------------------------------------- check --

/// A registry of `n` flat-but-jittery runs around the given centers.
std::vector<RunRecord> flat_registry(int n) {
  std::vector<RunRecord> runs;
  for (int i = 0; i < n; ++i) {
    // Host jitter of a few percent, alternating sign; virtual bit-flat.
    const double jitter = 1.0 + 0.03 * (i % 2 == 0 ? 1 : -1);
    runs.push_back(
        record(i + 1, 1000.0, 80e6 * jitter, 20e6 * jitter));
  }
  return runs;
}

TEST(TrendCheck, JitteryButFlatRegistryPasses) {
  const std::vector<RunRecord> runs = flat_registry(6);
  std::ostringstream os;
  std::string doc;
  EXPECT_EQ(run_trend_check(runs, TrendOptions{}, os, &doc), 0);
  EXPECT_NE(os.str().find("OK: 0 tuples regressed"), std::string::npos);
  EXPECT_NE(doc.find("\"schema\": \"pdt-trend-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"verdict\": \"ok\""), std::string::npos);
  EXPECT_EQ(doc.find("REGRESSION"), std::string::npos);
}

TEST(TrendCheck, InjectedStepRegressionFailsAndExplainNamesTheCell) {
  std::vector<RunRecord> runs = flat_registry(5);
  // Step regression in the latest run: the comm L1 cell triples the
  // tuple's host time while build stays put.
  RunRecord bad = record(6, 1000.0, 80e6, 220e6);
  runs.push_back(std::move(bad));

  std::ostringstream os;
  std::string doc;
  EXPECT_EQ(run_trend_check(runs, TrendOptions{}, os, &doc), 1);
  EXPECT_NE(os.str().find("FAIL    [host] fig6_speedup hybrid.P8"),
            std::string::npos);
  EXPECT_NE(os.str().find("REGRESSION: 1 tuple regressed"),
            std::string::npos);
  // The pdt-trend-v1 doc carries the changepoint and the explain summary
  // blaming the comm L1 cell.
  EXPECT_NE(doc.find("\"verdict\": \"REGRESSION\""), std::string::npos);
  EXPECT_NE(doc.find("\"direction\": \"up\""), std::string::npos);
  const std::size_t explain = doc.find("\"explain\": [");
  ASSERT_NE(explain, std::string::npos);
  // comm ranks first (delta 200e6 vs build's ~0).
  const std::size_t comm = doc.find("{\"phase\": \"comm\", \"level\": 1",
                                    explain);
  EXPECT_NE(comm, std::string::npos);

  // explain on the CLI side names the same cell first.
  std::ostringstream ex;
  EXPECT_TRUE(run_trend_explain(runs, "", TrendOptions{}, ex));
  const std::string out = ex.str();
  const std::size_t top = out.find("top cells by |delta|:");
  ASSERT_NE(top, std::string::npos);
  const std::size_t comm_pos = out.find("comm L1", top);
  const std::size_t build_pos = out.find("build L0", top);
  ASSERT_NE(comm_pos, std::string::npos);
  EXPECT_TRUE(build_pos == std::string::npos || comm_pos < build_pos)
      << "comm L1 must rank above build L0:\n"
      << out;
  EXPECT_NE(out.find("abc123def456"), std::string::npos)
      << "explain names the builds";
}

TEST(TrendCheck, ImprovementIsAChangepointButNotAFailure) {
  std::vector<RunRecord> runs = flat_registry(5);
  runs.push_back(record(6, 1000.0, 20e6, 5e6));  // 4x faster
  std::ostringstream os;
  std::string doc;
  EXPECT_EQ(run_trend_check(runs, TrendOptions{}, os, &doc), 0);
  EXPECT_NE(os.str().find("IMPROVED"), std::string::npos);
  EXPECT_NE(doc.find("\"verdict\": \"IMPROVED\""), std::string::npos);
}

TEST(TrendCheck, VirtualDriftPastVtolFails) {
  std::vector<RunRecord> runs = flat_registry(3);
  runs.push_back(record(4, 1100.0, 80e6, 20e6));  // +10% virtual time
  std::ostringstream os;
  EXPECT_EQ(run_trend_check(runs, TrendOptions{}, os, nullptr), 1);
  EXPECT_NE(os.str().find("FAIL    [virt]"), std::string::npos);

  TrendOptions loose;
  loose.vtol = 0.2;
  std::ostringstream os2;
  EXPECT_EQ(run_trend_check(runs, loose, os2, nullptr), 0);
}

TEST(TrendCheck, TupleMissingFromLatestRunWarnsButPasses) {
  std::vector<RunRecord> runs = flat_registry(3);
  RunRecord narrow;  // a narrowed harness run: virtual tuple only
  narrow.seq = 4;
  narrow.virt = runs[0].virt;
  runs.push_back(std::move(narrow));
  std::ostringstream os;
  EXPECT_EQ(run_trend_check(runs, TrendOptions{}, os, nullptr), 0);
  EXPECT_NE(os.str().find("MISSING [host]"), std::string::npos);
  EXPECT_NE(os.str().find("warning"), std::string::npos);
}

TEST(TrendCheck, FewerThanTwoRunsIsVacuouslyOk) {
  std::ostringstream os;
  EXPECT_EQ(run_trend_check({}, TrendOptions{}, os, nullptr), 0);
  const std::vector<RunRecord> one = flat_registry(1);
  std::ostringstream os2;
  EXPECT_EQ(run_trend_check(one, TrendOptions{}, os2, nullptr), 0);
  EXPECT_NE(os2.str().find("no history"), std::string::npos);
}

TEST(TrendCheck, DocIsDeterministic) {
  const std::vector<RunRecord> runs = flat_registry(4);
  std::ostringstream os1, os2;
  std::string d1, d2;
  (void)run_trend_check(runs, TrendOptions{}, os1, &d1);
  (void)run_trend_check(runs, TrendOptions{}, os2, &d2);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(os1.str(), os2.str());
}

std::string model_envelope(const std::string& digest, double accuracy) {
  std::ostringstream os;
  os << R"({"schema": "pdt-bench-v1", "harness": "fig6_speedup",
    "fingerprint": {"git_sha": "abc123def456", "git_dirty": false},
    "sections": [
      {"type": "model", "tag": "hybrid.P8", "formulation": "hybrid",
       "procs": 8, "digest": ")"
     << digest << R"(", "nodes": 101, "leaves": 51, "depth": 9,
       "eval_seed": 9007, "eval_rows": 2000, "accuracy": )"
     << json_double_exact(accuracy) << R"(}]})";
  return os.str();
}

RunRecord model_record(std::int64_t seq, const std::string& digest,
                       double accuracy) {
  // Two repeats with identical model sections: the tuple dedupes.
  const std::vector<ReportInput> inputs{
      parse("m0.json", model_envelope(digest, accuracy)),
      parse("m1.json", model_envelope(digest, accuracy))};
  RunRecord rec = record_from_envelopes(inputs);
  rec.seq = seq;
  rec.timestamp = "2026-08-0" + std::to_string(seq) + "T00:00:00Z";
  return rec;
}

TEST(TrendModel, RecordExtractsAndRegistryRoundTripsModelTuples) {
  const RunRecord rec = model_record(1, "deadbeefcafe0123", 0.91);
  ASSERT_EQ(rec.model.size(), 1u);
  EXPECT_EQ(rec.model[0].harness, "fig6_speedup");
  EXPECT_EQ(rec.model[0].tag, "hybrid.P8");
  EXPECT_EQ(rec.model[0].formulation, "hybrid");
  EXPECT_EQ(rec.model[0].procs, 8);
  EXPECT_EQ(rec.model[0].digest, "deadbeefcafe0123");
  EXPECT_EQ(rec.model[0].nodes, 101);
  EXPECT_EQ(rec.model[0].leaves, 51);
  EXPECT_EQ(rec.model[0].depth, 9);
  EXPECT_DOUBLE_EQ(rec.model[0].accuracy, 0.91);

  std::vector<RunRecord> back;
  std::string error;
  ASSERT_TRUE(parse_registry(record_line(rec), &back, &error)) << error;
  ASSERT_EQ(back.size(), 1u);
  ASSERT_EQ(back[0].model.size(), 1u);
  EXPECT_EQ(back[0].model[0].digest, "deadbeefcafe0123");
  EXPECT_EQ(back[0].model[0].accuracy, rec.model[0].accuracy) << "bit-exact";
  EXPECT_EQ(record_line(back[0]), record_line(rec));
}

TEST(TrendModel, PreModelRegistryLinesParseWithEmptyModelList) {
  // A pre-0.9 line has no "model" key: backward compatible, not an error.
  const std::string line = record_line(record(1, 1000.0, 80e6, 20e6));
  std::string stripped = line;
  const std::size_t at = stripped.find(", \"model\": []");
  ASSERT_NE(at, std::string::npos) << "0.9 lines always carry the key";
  stripped.erase(at, std::string(", \"model\": []").size());
  std::vector<RunRecord> back;
  std::string error;
  ASSERT_TRUE(parse_registry(stripped, &back, &error)) << error;
  ASSERT_EQ(back.size(), 1u);
  EXPECT_TRUE(back[0].model.empty());
}

TEST(TrendModel, DigestChangeIsARegression) {
  std::vector<RunRecord> runs;
  for (int s = 1; s <= 3; ++s) {
    runs.push_back(model_record(s, "aaaa1111bbbb2222", 0.91));
  }
  std::ostringstream ok_os;
  std::string ok_doc;
  EXPECT_EQ(run_trend_check(runs, TrendOptions{}, ok_os, &ok_doc), 0);
  EXPECT_NE(ok_os.str().find("ok      [model] fig6_speedup hybrid.P8"),
            std::string::npos);
  EXPECT_NE(ok_doc.find("\"models\": ["), std::string::npos);

  runs.push_back(model_record(4, "cccc3333dddd4444", 0.87));
  std::ostringstream os;
  std::string doc;
  EXPECT_EQ(run_trend_check(runs, TrendOptions{}, os, &doc), 1);
  EXPECT_NE(os.str().find("FAIL    [model] fig6_speedup hybrid.P8"),
            std::string::npos);
  EXPECT_NE(os.str().find("digest aaaa1111bbbb -> cccc3333dddd"),
            std::string::npos);
  EXPECT_NE(doc.find("\"verdict\": \"REGRESSION\""), std::string::npos);
  EXPECT_NE(doc.find("\"prev_digest\": \"aaaa1111bbbb2222\""),
            std::string::npos);
}

TEST(TrendModel, MissingModelWarnsAndFirstAppearanceIsNew) {
  std::vector<RunRecord> runs{model_record(1, "aaaa1111bbbb2222", 0.91),
                              model_record(2, "aaaa1111bbbb2222", 0.91)};
  RunRecord narrowed;  // latest run dropped the model section
  narrowed.seq = 3;
  runs.push_back(std::move(narrowed));
  std::ostringstream os;
  EXPECT_EQ(run_trend_check(runs, TrendOptions{}, os, nullptr), 0);
  EXPECT_NE(os.str().find("MISSING [model]"), std::string::npos);

  // First appearance in the latest run: "new", not a regression.
  std::vector<RunRecord> fresh{record(1, 1000.0, 80e6, 20e6),
                               model_record(2, "eeee5555ffff6666", 0.9)};
  std::ostringstream os2;
  EXPECT_EQ(run_trend_check(fresh, TrendOptions{}, os2, nullptr), 0);
  EXPECT_NE(os2.str().find("first appearance, digest eeee5555ffff"),
            std::string::npos);
}

std::string ft_envelope(double time_us, double retry_us,
                        std::int64_t retries, bool identical) {
  // One pdt-ft-v1 section row, shaped like bench/fault_tolerance emits.
  std::ostringstream os;
  os << R"({"schema": "pdt-bench-v1", "harness": "fault_tolerance",
    "fingerprint": {"git_sha": "abc123def456", "git_dirty": false},
    "sections": [
      {"type": "fault_tolerance", "schema": "pdt-ft-v1",
       "formulation": "hybrid", "procs": 8, "n": 2000, "rows": [
        {"scenario": "transient-r2x2", "plan": "transient timeout",
         "time_us": )"
     << json_double_exact(time_us)
     << R"(, "overhead_pct": 1.0, "checkpoints": 5, "failures": 0,
         "checkpoint_bytes": 1024, "checkpoint_io_us": 100.0,
         "detect_us": 0.0, "recovery_us": 0.0,
         "records_redistributed": 0, "retries": )"
     << retries << R"(, "retry_us": )" << json_double_exact(retry_us)
     << R"(, "escalations": 0, "durable_checkpoints": 3,
         "durable_bytes": 4096, "durable_io_us": 50.0,
         "resumed": true, "resume_epoch": 1, "resume_skipped": 0,
         "resume_io_us": 25.0, "resume_records": 500,
         "tree_identical": )"
     << (identical ? "true" : "false") << R"(}]}]})";
  return os.str();
}

RunRecord ft_record(std::int64_t seq, double time_us, double retry_us,
                    std::int64_t retries, bool identical = true) {
  const std::vector<ReportInput> inputs{
      parse("f0.json", ft_envelope(time_us, retry_us, retries, identical)),
      parse("f1.json", ft_envelope(time_us, retry_us, retries, identical))};
  RunRecord rec = record_from_envelopes(inputs);
  rec.seq = seq;
  rec.timestamp = "2026-08-0" + std::to_string(seq) + "T00:00:00Z";
  return rec;
}

TEST(TrendFt, RecordExtractsAndRegistryRoundTripsFtTuples) {
  const RunRecord rec = ft_record(1, 5000.0, 8000.0, 2);
  ASSERT_EQ(rec.ft.size(), 1u);  // repeats dedupe to one tuple
  EXPECT_EQ(rec.ft[0].harness, "fault_tolerance");
  EXPECT_EQ(rec.ft[0].formulation, "hybrid");
  EXPECT_EQ(rec.ft[0].procs, 8);
  EXPECT_EQ(rec.ft[0].scenario, "transient-r2x2");
  EXPECT_DOUBLE_EQ(rec.ft[0].time_us, 5000.0);
  // overhead = ckpt_io + detect + recovery + retry + durable_io + resume_io
  EXPECT_DOUBLE_EQ(rec.ft[0].overhead_us, 100.0 + 8000.0 + 50.0 + 25.0);
  EXPECT_DOUBLE_EQ(rec.ft[0].retry_us, 8000.0);
  EXPECT_EQ(rec.ft[0].retries, 2);
  EXPECT_EQ(rec.ft[0].resume_records, 500);
  EXPECT_TRUE(rec.ft[0].tree_identical);

  std::vector<RunRecord> back;
  std::string error;
  ASSERT_TRUE(parse_registry(record_line(rec), &back, &error)) << error;
  ASSERT_EQ(back.size(), 1u);
  ASSERT_EQ(back[0].ft.size(), 1u);
  EXPECT_EQ(back[0].ft[0].scenario, "transient-r2x2");
  EXPECT_EQ(back[0].ft[0].retry_us, rec.ft[0].retry_us) << "bit-exact";
  EXPECT_EQ(record_line(back[0]), record_line(rec));
}

TEST(TrendFt, PreFtRegistryLinesParseWithEmptyFtList) {
  const std::string line = record_line(record(1, 1000.0, 80e6, 20e6));
  std::string stripped = line;
  const std::size_t at = stripped.find(", \"ft\": []");
  ASSERT_NE(at, std::string::npos) << "new lines always carry the key";
  stripped.erase(at, std::string(", \"ft\": []").size());
  std::vector<RunRecord> back;
  std::string error;
  ASSERT_TRUE(parse_registry(stripped, &back, &error)) << error;
  ASSERT_EQ(back.size(), 1u);
  EXPECT_TRUE(back[0].ft.empty());
}

TEST(TrendFt, RetryCostAppearingTripsTheOverheadGate) {
  // History with zero retry cost, latest run burns retries: the
  // [overhead] series steps off a zero baseline, which no vtol band
  // forgives — resilience cost may not silently creep in.
  std::vector<RunRecord> runs;
  for (int s = 1; s <= 3; ++s) runs.push_back(ft_record(s, 5000.0, 0.0, 0));
  std::ostringstream ok_os;
  EXPECT_EQ(run_trend_check(runs, TrendOptions{}, ok_os, nullptr), 0);

  runs.push_back(ft_record(4, 5000.0, 8000.0, 2));
  std::ostringstream os;
  EXPECT_EQ(run_trend_check(runs, TrendOptions{}, os, nullptr), 1);
  EXPECT_NE(os.str().find("fault_tolerance hybrid P=8 transient-r2x2 "
                          "[overhead]"),
            std::string::npos)
      << os.str();
}

TEST(TrendFt, TreeDivergenceIsAnUnconditionalRegression) {
  std::vector<RunRecord> runs{ft_record(1, 5000.0, 100.0, 1),
                              ft_record(2, 5000.0, 100.0, 1)};
  std::ostringstream ok_os;
  std::string ok_doc;
  EXPECT_EQ(run_trend_check(runs, TrendOptions{}, ok_os, &ok_doc), 0);
  EXPECT_NE(ok_doc.find("\"ft\": ["), std::string::npos);

  // Same costs, diverged tree: costs pass the bands, the identity gate
  // still fails the run.
  runs.push_back(ft_record(3, 5000.0, 100.0, 1, /*identical=*/false));
  std::ostringstream os;
  std::string doc;
  EXPECT_EQ(run_trend_check(runs, TrendOptions{}, os, &doc), 1);
  EXPECT_NE(os.str().find("FAIL    [ft]   fault_tolerance hybrid P=8 "
                          "transient-r2x2"),
            std::string::npos)
      << os.str();
  EXPECT_NE(os.str().find("tree diverged"), std::string::npos);
  EXPECT_NE(doc.find("\"tree_identical\": false"), std::string::npos);
}

/// The hybrid.P8 envelope with a pdt-threads-v1 overlay riding on the
/// instrumented run: two lossy collectors and one contended lock.
std::string threads_envelope(double time_us, double build_ns,
                             double comm_ns) {
  std::string text = envelope(time_us, build_ns, comm_ns);
  const std::string anchor = "\"host\": {";
  const std::size_t at = text.find(anchor);
  EXPECT_NE(at, std::string::npos);
  text.insert(at, R"("threads": {
    "schema": "pdt-threads-v1", "hardware_concurrency": 16,
    "max_shards": 256,
    "registry": {"registered": 9, "overflow": 0, "active": 9,
                 "peak_active": 9},
    "collectors": [
      {"name": "phase", "samples": 100, "shards": [], "merge_order": [],
       "dropped": 2},
      {"name": "mem", "samples": 200, "shards": [], "merge_order": [],
       "dropped": 3}
    ],
    "drops": {"phase": 2, "mem": 3},
    "locks": [
      {"name": "obs.phase.names", "acquisitions": 40, "contended": 4,
       "wait_ns": 1500000.0}
    ]
  }, )");
  return text;
}

TEST(TrendThreads, RecordExtractsAndRegistryRoundTripsThreadsTuples) {
  const std::vector<ReportInput> inputs{
      parse("r0.json", threads_envelope(1000.0, 80e6, 20e6)),
      parse("r1.json", threads_envelope(1000.0, 81e6, 20e6))};
  RunRecord rec = record_from_envelopes(inputs);
  rec.seq = 1;
  rec.timestamp = "2026-08-01T00:00:00Z";
  ASSERT_EQ(rec.threads.size(), 1u) << "repeats dedupe to one tuple";
  EXPECT_EQ(rec.threads[0].harness, "fig6_speedup");
  EXPECT_EQ(rec.threads[0].tag, "hybrid.P8");
  EXPECT_EQ(rec.threads[0].formulation, "hybrid");
  EXPECT_EQ(rec.threads[0].procs, 8);
  EXPECT_EQ(rec.threads[0].peak_active, 9);
  EXPECT_EQ(rec.threads[0].dropped, 2 + 3) << "summed across collectors";
  EXPECT_EQ(rec.threads[0].contended, 4);
  EXPECT_EQ(rec.threads[0].wait_ns, 1500000);

  std::vector<RunRecord> back;
  std::string error;
  ASSERT_TRUE(parse_registry(record_line(rec), &back, &error)) << error;
  ASSERT_EQ(back.size(), 1u);
  ASSERT_EQ(back[0].threads.size(), 1u);
  EXPECT_EQ(back[0].threads[0].tag, "hybrid.P8");
  EXPECT_EQ(back[0].threads[0].peak_active, 9);
  EXPECT_EQ(back[0].threads[0].wait_ns, 1500000);
  EXPECT_EQ(record_line(back[0]), record_line(rec));
}

TEST(TrendThreads, SingleThreadedRunsOmitTheKeyAndOldLinesParseClean) {
  // A run with no threads overlay must serialize byte-identically to a
  // registry line written before the telemetry existed: no "threads"
  // key at all, and such lines parse back to an empty list.
  const RunRecord rec = record(1, 1000.0, 80e6, 20e6);
  EXPECT_TRUE(rec.threads.empty());
  const std::string line = record_line(rec);
  EXPECT_EQ(line.find("\"threads\""), std::string::npos) << line;
  std::vector<RunRecord> back;
  std::string error;
  ASSERT_TRUE(parse_registry(line, &back, &error)) << error;
  ASSERT_EQ(back.size(), 1u);
  EXPECT_TRUE(back[0].threads.empty());
  EXPECT_EQ(record_line(back[0]), line);
}

TEST(TrendThreads, ExplainAttributesEnvAndTelemetryChanges) {
  std::vector<RunRecord> runs{record(1, 1000.0, 80e6, 20e6),
                              record(2, 1000.0, 90e6, 20e6)};
  std::string error;
  ASSERT_TRUE(json_parse(
      R"({"git_sha": "abc123", "git_dirty": false, "cores": 8})",
      &runs[0].fingerprint, &error))
      << error;
  ASSERT_TRUE(json_parse(R"({"git_sha": "def456", "git_dirty": false,
                             "cores": 16, "pdt_threads": "16"})",
                         &runs[1].fingerprint, &error))
      << error;
  TrendThreadsTuple t;
  t.harness = "fig6_speedup";
  t.tag = "hybrid.P8";
  t.formulation = "hybrid";
  t.procs = 8;
  t.peak_active = 9;
  t.dropped = 5;
  t.contended = 4;
  t.wait_ns = 1500000;
  runs[1].threads.push_back(t);

  std::ostringstream os;
  EXPECT_TRUE(run_trend_explain(runs, "hybrid.P8", TrendOptions{}, os));
  const std::string out = os.str();
  EXPECT_NE(out.find("cores: 8 -> 16"), std::string::npos) << out;
  EXPECT_NE(out.find("PDT_THREADS: (unset) -> 16"), std::string::npos) << out;
  EXPECT_NE(out.find("threads: peak_active - -> 9, dropped - -> 5, "
                     "contended - -> 4 (wait 1.500 ms)"),
            std::string::npos)
      << out;

  // A stable machine with no telemetry prints none of the attribution
  // lines — explanations stay byte-stable across the feature.
  std::vector<RunRecord> flat{record(1, 1000.0, 80e6, 20e6),
                              record(2, 1000.0, 90e6, 20e6)};
  std::ostringstream os2;
  EXPECT_TRUE(run_trend_explain(flat, "hybrid.P8", TrendOptions{}, os2));
  EXPECT_EQ(os2.str().find("cores:"), std::string::npos) << os2.str();
  EXPECT_EQ(os2.str().find("PDT_THREADS:"), std::string::npos);
  EXPECT_EQ(os2.str().find("threads:"), std::string::npos);
}

TEST(TrendExplain, FilterSelectsTuplesAndMissingFilterReportsCleanly) {
  const std::vector<RunRecord> runs = flat_registry(3);
  std::ostringstream os;
  // Explicit filter works even when nothing regressed.
  EXPECT_TRUE(run_trend_explain(runs, "hybrid.P8", TrendOptions{}, os));
  EXPECT_NE(os.str().find("top cells"), std::string::npos);

  std::ostringstream os2;
  EXPECT_FALSE(run_trend_explain(runs, "no-such-tuple", TrendOptions{}, os2));
  EXPECT_NE(os2.str().find("no host tuple"), std::string::npos);
}

}  // namespace
}  // namespace pdt::tools
