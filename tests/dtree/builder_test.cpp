#include "dtree/builder.hpp"

#include <gtest/gtest.h>

#include "data/golf.hpp"
#include "data/quest.hpp"
#include "data/discretize.hpp"
#include "dtree/metrics.hpp"

namespace pdt::dtree {
namespace {

TEST(GrowDfsExact, GolfReproducesQuinlansTree) {
  // Figure 1(c): Outlook at the root; the sunny branch tests Humidity at
  // 77.5 (exact midpoint of 75 and 80); the rain branch tests Windy.
  const data::Dataset golf = data::golf_dataset();
  GrowOptions opt;
  opt.policy = SplitPolicy::Multiway;
  const Tree t = grow_dfs_exact(golf, opt);

  const Node& root = t.node(t.root());
  ASSERT_FALSE(root.is_leaf());
  EXPECT_EQ(root.test.attr, data::golf_attr::kOutlook);
  EXPECT_EQ(root.test.kind, SplitTest::Kind::Multiway);

  const Node& sunny = t.node(root.first_child + 0);
  ASSERT_FALSE(sunny.is_leaf());
  EXPECT_EQ(sunny.test.attr, data::golf_attr::kHumidity);
  EXPECT_DOUBLE_EQ(sunny.test.threshold, 77.5);

  const Node& overcast = t.node(root.first_child + 1);
  EXPECT_TRUE(overcast.is_leaf());
  EXPECT_EQ(overcast.majority, 0) << "overcast -> Play";

  const Node& rain = t.node(root.first_child + 2);
  ASSERT_FALSE(rain.is_leaf());
  EXPECT_EQ(rain.test.attr, data::golf_attr::kWindy);

  EXPECT_EQ(t.num_nodes(), 8);
  EXPECT_EQ(t.depth(), 2);
  EXPECT_DOUBLE_EQ(evaluate(t, golf).accuracy(), 1.0);
}

TEST(GrowBfs, GolfAllCategoricalAfterBinningIsPerfect) {
  const data::Dataset golf = data::golf_dataset();
  GrowOptions opt;
  opt.policy = SplitPolicy::Multiway;
  opt.cont_bins = 16;
  const Tree t = grow_bfs(golf, opt);
  EXPECT_DOUBLE_EQ(evaluate(t, golf).accuracy(), 1.0);
}

TEST(GrowBfs, StatsAreFilled) {
  const data::Dataset golf = data::golf_dataset();
  GrowOptions opt;
  BuildStats stats;
  const Tree t = grow_bfs(golf, opt, &stats);
  EXPECT_GT(stats.levels, 0);
  EXPECT_GT(stats.nodes_expanded, 0);
  EXPECT_GT(stats.histogram_updates, 0);
  EXPECT_EQ(stats.nodes_expanded,
            static_cast<std::int64_t>(t.num_nodes() - t.num_leaves()));
}

TEST(GrowBfs, MaxDepthCapsTheTree) {
  const data::Dataset ds = data::quest_generate(2000, {.seed = 33});
  GrowOptions opt;
  opt.max_depth = 3;
  const Tree t = grow_bfs(ds, opt);
  EXPECT_LE(t.depth(), 3);
}

TEST(GrowBfs, MinRecordsStopsSplitting) {
  const data::Dataset ds = data::quest_generate(2000, {.seed = 34});
  GrowOptions big;
  big.min_records = 500;
  const Tree small_tree = grow_bfs(ds, big);
  GrowOptions tiny;
  tiny.min_records = 2;
  const Tree big_tree = grow_bfs(ds, tiny);
  EXPECT_LT(small_tree.num_nodes(), big_tree.num_nodes());
  // Internal nodes must all hold at least min_records.
  for (int id = 0; id < small_tree.num_nodes(); ++id) {
    if (!small_tree.node(id).is_leaf()) {
      EXPECT_GE(small_tree.node(id).num_records(), 500);
    }
  }
}

TEST(GrowBfs, SingleRecordIsALeaf) {
  data::Schema s({data::Attribute::categorical("v", 2)}, 2);
  data::Dataset ds(s, 1);
  const std::size_t r = ds.add_row(1);
  ds.set_cat(0, r, 0);
  const Tree t = grow_bfs(ds, GrowOptions{});
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_EQ(t.node(0).majority, 1);
}

TEST(GrowBfs, PureDatasetIsALeaf) {
  data::Schema s({data::Attribute::categorical("v", 3)}, 2);
  data::Dataset ds(s, 30);
  for (int i = 0; i < 30; ++i) {
    const std::size_t r = ds.add_row(0);
    ds.set_cat(0, r, i % 3);
  }
  const Tree t = grow_bfs(ds, GrowOptions{});
  EXPECT_EQ(t.num_nodes(), 1);
}

TEST(GrowBfs, HighAccuracyOnQuestFunction2) {
  // Discretized function-2 data: the tree should fit the training data
  // nearly perfectly (bins misaligned with the 25K boundaries leave a
  // little residual impurity at min_records).
  const data::Dataset raw = data::quest_generate(5000, {.seed = 35});
  const data::Dataset ds =
      data::discretize_uniform(raw, data::quest_paper_bins());
  const Tree t = grow_bfs(ds, GrowOptions{});
  EXPECT_GT(evaluate(t, ds).accuracy(), 0.97);
}

TEST(GrowDfsExact, HigherAccuracyThanCoarseBinsOnContinuousData) {
  const data::Dataset ds = data::quest_generate(1500, {.seed = 36});
  GrowOptions exact;
  const Tree t_exact = grow_dfs_exact(ds, exact);
  GrowOptions coarse;
  coarse.cont_bins = 4;
  const Tree t_bins = grow_bfs(ds, coarse);
  EXPECT_GE(evaluate(t_exact, ds).accuracy(),
            evaluate(t_bins, ds).accuracy());
  EXPECT_GT(evaluate(t_exact, ds).accuracy(), 0.99)
      << "exact thresholds fit the noise-free training data";
}

TEST(GrowBfs, GeneralizesToFreshSample) {
  const data::Dataset train = data::quest_generate(20000, {.seed = 37});
  const data::Dataset dtrain =
      data::discretize_uniform(train, data::quest_paper_bins());
  const Tree t = grow_bfs(dtrain, GrowOptions{});
  // Classify a fresh sample discretized with the same global cuts: rebuild
  // from the same generator stream continuation.
  const data::Dataset test =
      data::quest_generate(5000, {.seed = 999});
  const data::Dataset dtest =
      data::discretize_uniform(test, data::quest_paper_bins());
  EXPECT_GT(evaluate(t, dtest).accuracy(), 0.9);
}

class CriterionPolicyTest
    : public ::testing::TestWithParam<std::tuple<Criterion, SplitPolicy>> {};

TEST_P(CriterionPolicyTest, GolfPerfectFitUnderEveryConfiguration) {
  const auto [crit, policy] = GetParam();
  const data::Dataset golf = data::golf_dataset();
  GrowOptions opt;
  opt.criterion = crit;
  opt.policy = policy;
  opt.cont_bins = 16;
  const Tree t = grow_bfs(golf, opt);
  EXPECT_DOUBLE_EQ(evaluate(t, golf).accuracy(), 1.0);
  const Tree e = grow_dfs_exact(golf, opt);
  EXPECT_DOUBLE_EQ(evaluate(e, golf).accuracy(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, CriterionPolicyTest,
    ::testing::Combine(::testing::Values(Criterion::Entropy, Criterion::Gini),
                       ::testing::Values(SplitPolicy::Binary,
                                         SplitPolicy::Multiway)));

}  // namespace
}  // namespace pdt::dtree
