#include "dtree/histogram.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "data/golf.hpp"
#include "data/quest.hpp"

namespace pdt::dtree {
namespace {

std::vector<data::RowId> all_rows(const data::Dataset& ds) {
  std::vector<data::RowId> rows(ds.num_rows());
  std::iota(rows.begin(), rows.end(), data::RowId{0});
  return rows;
}

TEST(Histogram, Table2OutlookAtGolfRoot) {
  // The paper's Table 2: sunny 2/3, overcast 4/0, rain 3/2.
  const data::Dataset golf = data::golf_dataset();
  const auto rows = all_rows(golf);
  const auto table =
      categorical_distribution(golf, rows, data::golf_attr::kOutlook);
  EXPECT_EQ(table, (std::vector<std::int64_t>{2, 3, 4, 0, 3, 2}));
}

TEST(Histogram, Table3HumidityBinaryTests) {
  // The paper's Table 3: for each distinct Humidity value, the <=/> class
  // distributions. Spot-check the rows printed in the paper.
  const data::Dataset golf = data::golf_dataset();
  const auto rows = all_rows(golf);
  const auto table =
      continuous_binary_distribution(golf, rows, data::golf_attr::kHumidity);
  ASSERT_EQ(table.size(), 9u) << "nine distinct humidity values";

  // 65: <= gives 1 Play / 0 Don't; > gives 8 / 5.
  EXPECT_DOUBLE_EQ(table[0].value, 65.0);
  EXPECT_EQ(table[0].le, (std::vector<std::int64_t>{1, 0}));
  EXPECT_EQ(table[0].gt, (std::vector<std::int64_t>{8, 5}));
  // 70: <= gives 3 / 1; > gives 6 / 4.
  EXPECT_DOUBLE_EQ(table[1].value, 70.0);
  EXPECT_EQ(table[1].le, (std::vector<std::int64_t>{3, 1}));
  EXPECT_EQ(table[1].gt, (std::vector<std::int64_t>{6, 4}));
  // 75: <= gives 4 / 1.
  EXPECT_EQ(table[2].le, (std::vector<std::int64_t>{4, 1}));
  // 80: <= gives 7 / 2 (the paper's fifth row).
  EXPECT_DOUBLE_EQ(table[4].value, 80.0);
  EXPECT_EQ(table[4].le, (std::vector<std::int64_t>{7, 2}));
  EXPECT_EQ(table[4].gt, (std::vector<std::int64_t>{2, 3}));
  // 96: everything on the <= side: 9 / 5.
  EXPECT_DOUBLE_EQ(table[8].value, 96.0);
  EXPECT_EQ(table[8].le, (std::vector<std::int64_t>{9, 5}));
  EXPECT_EQ(table[8].gt, (std::vector<std::int64_t>{0, 0}));
}

TEST(Histogram, AccumulateMatchesDirectCounts) {
  const data::Dataset ds = data::quest_generate(300, {.seed = 12});
  const SlotMapper mapper(ds, 8);
  const AttrLayout layout(ds.schema(), 8);
  const auto rows = all_rows(ds);
  Hist h(static_cast<std::size_t>(layout.total()), 0);
  accumulate(h, layout, mapper, rows);

  // Every attribute's table has identical class marginals equal to the
  // overall class distribution.
  const auto expected = class_counts_of_rows(ds, rows);
  for (int a = 0; a < layout.num_attributes(); ++a) {
    std::vector<std::int64_t> marginal(2, 0);
    for (int s = 0; s < layout.slots(a); ++s) {
      for (int c = 0; c < 2; ++c) {
        marginal[static_cast<std::size_t>(c)] +=
            h[static_cast<std::size_t>(layout.index(a, s, c))];
      }
    }
    EXPECT_EQ(marginal, expected) << "attribute " << a;
  }
  EXPECT_EQ(class_counts(h, layout), expected);
}

TEST(Histogram, AccumulateIsAdditive) {
  const data::Dataset ds = data::quest_generate(200, {.seed = 14});
  const SlotMapper mapper(ds, 8);
  const AttrLayout layout(ds.schema(), 8);
  const auto rows = all_rows(ds);
  const std::span<const data::RowId> first(rows.data(), 90);
  const std::span<const data::RowId> rest(rows.data() + 90, rows.size() - 90);

  Hist whole(static_cast<std::size_t>(layout.total()), 0);
  accumulate(whole, layout, mapper, rows);
  Hist parts(static_cast<std::size_t>(layout.total()), 0);
  accumulate(parts, layout, mapper, first);
  accumulate(parts, layout, mapper, rest);
  EXPECT_EQ(whole, parts);
}

TEST(Histogram, EmptyRowsLeaveZeros) {
  const data::Dataset ds = data::golf_dataset();
  const SlotMapper mapper(ds, 4);
  const AttrLayout layout(ds.schema(), 4);
  Hist h(static_cast<std::size_t>(layout.total()), 0);
  accumulate(h, layout, mapper, {});
  for (const auto v : h) {
    EXPECT_EQ(v, 0);
  }
  EXPECT_EQ(class_counts(h, layout), (std::vector<std::int64_t>{0, 0}));
}

TEST(Histogram, FormattersMentionNamesAndCounts) {
  const data::Dataset golf = data::golf_dataset();
  const auto rows = all_rows(golf);
  const auto table =
      categorical_distribution(golf, rows, data::golf_attr::kOutlook);
  const std::string text = format_categorical_distribution(
      golf, table, data::golf_attr::kOutlook);
  EXPECT_NE(text.find("sunny"), std::string::npos);
  EXPECT_NE(text.find("overcast"), std::string::npos);
  EXPECT_NE(text.find("Play"), std::string::npos);

  const auto bin = continuous_binary_distribution(
      golf, rows, data::golf_attr::kHumidity);
  const std::string btext =
      format_binary_distribution(golf, bin, data::golf_attr::kHumidity);
  EXPECT_NE(btext.find("Humidity"), std::string::npos);
  EXPECT_NE(btext.find("<="), std::string::npos);
}

}  // namespace
}  // namespace pdt::dtree
