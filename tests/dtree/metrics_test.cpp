#include "dtree/metrics.hpp"

#include <gtest/gtest.h>

#include "data/golf.hpp"
#include "dtree/builder.hpp"

namespace pdt::dtree {
namespace {

TEST(Evaluate, PerfectTreeOnGolf) {
  const data::Dataset golf = data::golf_dataset();
  GrowOptions opt;
  opt.policy = SplitPolicy::Multiway;
  const Tree t = grow_dfs_exact(golf, opt);
  const Evaluation ev = evaluate(t, golf);
  EXPECT_EQ(ev.total, 14);
  EXPECT_EQ(ev.correct, 14);
  EXPECT_DOUBLE_EQ(ev.accuracy(), 1.0);
  // Diagonal confusion matrix: 9 Play, 5 Don't.
  EXPECT_EQ(ev.confusion, (std::vector<std::int64_t>{9, 0, 0, 5}));
}

TEST(Evaluate, StumpAccuracyAndConfusion) {
  const data::Dataset golf = data::golf_dataset();
  const Tree stump(std::vector<std::int64_t>{9, 5});  // predicts Play always
  const Evaluation ev = evaluate(stump, golf);
  EXPECT_EQ(ev.correct, 9);
  EXPECT_NEAR(ev.accuracy(), 9.0 / 14.0, 1e-12);
  EXPECT_EQ(ev.confusion, (std::vector<std::int64_t>{9, 0, 5, 0}));
}

TEST(Evaluate, EmptyDatasetGivesZeroAccuracy) {
  data::Dataset empty(data::golf_schema());
  const Tree stump(std::vector<std::int64_t>{1, 0});
  const Evaluation ev = evaluate(stump, empty);
  EXPECT_EQ(ev.total, 0);
  EXPECT_DOUBLE_EQ(ev.accuracy(), 0.0);
}

TEST(Evaluate, SingleClassDatasetIsPureLeaf) {
  // Every record shares one label: growth must stop at a pure root and
  // evaluation must score 100% with a one-hot confusion row.
  data::Dataset ds(data::golf_schema(), 20);
  for (std::size_t r = 0; r < 20; ++r) {
    ds.add_row(1);
    for (int a = 0; a < ds.num_attributes(); ++a) {
      if (ds.schema().attr(a).is_categorical()) {
        ds.set_cat(a, r, static_cast<std::int32_t>(r % 2));
      } else {
        ds.set_cont(a, r, static_cast<double>(r));
      }
    }
  }
  const Tree t = grow_dfs_exact(ds, {});
  EXPECT_EQ(t.num_nodes(), 1);
  const Evaluation ev = evaluate(t, ds);
  EXPECT_EQ(ev.correct, 20);
  EXPECT_DOUBLE_EQ(ev.accuracy(), 1.0);
  EXPECT_EQ(ev.confusion, (std::vector<std::int64_t>{0, 0, 0, 20}));
}

TEST(Evaluate, MakeLeafFallsBackToMajorityVote) {
  // Collapsing the root must leave a consistent classifier: the detached
  // subtree no longer routes records, so accuracy falls back to the
  // majority-class rate, and evaluation must not touch detached nodes.
  const data::Dataset golf = data::golf_dataset();
  GrowOptions opt;
  opt.policy = SplitPolicy::Multiway;
  Tree t = grow_dfs_exact(golf, opt);
  ASSERT_EQ(evaluate(t, golf).correct, 14);
  t.make_leaf(0);
  const Evaluation ev = evaluate(t, golf);
  EXPECT_EQ(ev.total, 14);
  EXPECT_EQ(ev.correct, 9);  // majority class (Play) only
  EXPECT_EQ(ev.confusion, (std::vector<std::int64_t>{9, 0, 5, 0}));
}

}  // namespace
}  // namespace pdt::dtree
