#include "dtree/metrics.hpp"

#include <gtest/gtest.h>

#include "data/golf.hpp"
#include "dtree/builder.hpp"

namespace pdt::dtree {
namespace {

TEST(Evaluate, PerfectTreeOnGolf) {
  const data::Dataset golf = data::golf_dataset();
  GrowOptions opt;
  opt.policy = SplitPolicy::Multiway;
  const Tree t = grow_dfs_exact(golf, opt);
  const Evaluation ev = evaluate(t, golf);
  EXPECT_EQ(ev.total, 14);
  EXPECT_EQ(ev.correct, 14);
  EXPECT_DOUBLE_EQ(ev.accuracy(), 1.0);
  // Diagonal confusion matrix: 9 Play, 5 Don't.
  EXPECT_EQ(ev.confusion, (std::vector<std::int64_t>{9, 0, 0, 5}));
}

TEST(Evaluate, StumpAccuracyAndConfusion) {
  const data::Dataset golf = data::golf_dataset();
  const Tree stump(std::vector<std::int64_t>{9, 5});  // predicts Play always
  const Evaluation ev = evaluate(stump, golf);
  EXPECT_EQ(ev.correct, 9);
  EXPECT_NEAR(ev.accuracy(), 9.0 / 14.0, 1e-12);
  EXPECT_EQ(ev.confusion, (std::vector<std::int64_t>{9, 0, 5, 0}));
}

TEST(Evaluate, EmptyDatasetGivesZeroAccuracy) {
  data::Dataset empty(data::golf_schema());
  const Tree stump(std::vector<std::int64_t>{1, 0});
  const Evaluation ev = evaluate(stump, empty);
  EXPECT_EQ(ev.total, 0);
  EXPECT_DOUBLE_EQ(ev.accuracy(), 0.0);
}

}  // namespace
}  // namespace pdt::dtree
