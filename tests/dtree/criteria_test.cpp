#include "dtree/criteria.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace pdt::dtree {
namespace {

TEST(Entropy, PureIsZero) {
  const std::array<std::int64_t, 2> pure{10, 0};
  EXPECT_DOUBLE_EQ(entropy(pure), 0.0);
  const std::array<std::int64_t, 3> pure3{0, 0, 7};
  EXPECT_DOUBLE_EQ(entropy(pure3), 0.0);
}

TEST(Entropy, UniformIsLogK) {
  const std::array<std::int64_t, 2> half{5, 5};
  EXPECT_DOUBLE_EQ(entropy(half), 1.0);
  const std::array<std::int64_t, 4> quarter{3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(entropy(quarter), 2.0);
}

TEST(Entropy, GolfRootValue) {
  // 9 Play / 5 Don't: H = 0.940 bits (Quinlan's classic number).
  const std::array<std::int64_t, 2> root{9, 5};
  EXPECT_NEAR(entropy(root), 0.940286, 1e-6);
}

TEST(Entropy, EmptyIsZero) {
  const std::array<std::int64_t, 2> none{0, 0};
  EXPECT_DOUBLE_EQ(entropy(none), 0.0);
}

TEST(Gini, KnownValues) {
  const std::array<std::int64_t, 2> pure{10, 0};
  EXPECT_DOUBLE_EQ(gini(pure), 0.0);
  const std::array<std::int64_t, 2> half{5, 5};
  EXPECT_DOUBLE_EQ(gini(half), 0.5);
  const std::array<std::int64_t, 2> root{9, 5};
  EXPECT_NEAR(gini(root), 1.0 - (81.0 + 25.0) / 196.0, 1e-12);
}

TEST(Impurity, DispatchesOnCriterion) {
  const std::array<std::int64_t, 2> half{5, 5};
  EXPECT_DOUBLE_EQ(impurity(Criterion::Entropy, half), 1.0);
  EXPECT_DOUBLE_EQ(impurity(Criterion::Gini, half), 0.5);
}

TEST(Total, Sums) {
  const std::array<std::int64_t, 3> c{1, 2, 3};
  EXPECT_EQ(total(c), 6);
}

TEST(Gain, OutlookGainMatchesQuinlan) {
  // Splitting golf's root on Outlook: gain = 0.940 - 0.694 = 0.2467 bits.
  const std::array<std::int64_t, 2> parent{9, 5};
  const std::array<std::int64_t, 6> children{2, 3, 4, 0, 3, 2};
  EXPECT_NEAR(gain(Criterion::Entropy, parent, children, 2), 0.24675, 1e-4);
}

TEST(Gain, PerfectSplitRecoversParentImpurity) {
  const std::array<std::int64_t, 2> parent{6, 6};
  const std::array<std::int64_t, 4> children{6, 0, 0, 6};
  EXPECT_DOUBLE_EQ(gain(Criterion::Entropy, parent, children, 2), 1.0);
  EXPECT_DOUBLE_EQ(gain(Criterion::Gini, parent, children, 2), 0.5);
}

TEST(Gain, UselessSplitIsZero) {
  const std::array<std::int64_t, 2> parent{8, 4};
  const std::array<std::int64_t, 4> children{4, 2, 4, 2};
  EXPECT_NEAR(gain(Criterion::Entropy, parent, children, 2), 0.0, 1e-12);
  EXPECT_NEAR(gain(Criterion::Gini, parent, children, 2), 0.0, 1e-12);
}

TEST(Gain, NonNegativeForEntropyOverManyPartitions) {
  // Information gain is non-negative for any split (concavity of H).
  const std::array<std::int64_t, 2> parent{13, 7};
  for (std::int64_t a = 0; a <= 13; ++a) {
    for (std::int64_t b = 0; b <= 7; ++b) {
      const std::array<std::int64_t, 4> children{a, b, 13 - a, 7 - b};
      EXPECT_GE(gain(Criterion::Entropy, parent, children, 2), -1e-12);
      EXPECT_GE(gain(Criterion::Gini, parent, children, 2), -1e-12);
    }
  }
}

TEST(Gain, EmptyChildrenIgnored) {
  const std::array<std::int64_t, 2> parent{5, 5};
  const std::array<std::int64_t, 6> children{5, 0, 0, 0, 0, 5};
  EXPECT_DOUBLE_EQ(gain(Criterion::Entropy, parent, children, 2), 1.0);
}

}  // namespace
}  // namespace pdt::dtree
