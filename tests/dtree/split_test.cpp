#include "dtree/split.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "data/golf.hpp"
#include "data/quest.hpp"
#include "dtree/histogram.hpp"

namespace pdt::dtree {
namespace {

struct Fixture {
  data::Dataset ds;
  SlotMapper mapper;
  AttrLayout layout;
  Hist hist;

  explicit Fixture(data::Dataset d, int cont_bins = 8)
      : ds(std::move(d)),
        mapper(ds, cont_bins),
        layout(ds.schema(), cont_bins),
        hist(static_cast<std::size_t>(layout.total()), 0) {
    std::vector<data::RowId> rows(ds.num_rows());
    std::iota(rows.begin(), rows.end(), data::RowId{0});
    accumulate(hist, layout, mapper, rows);
  }
};

TEST(ChooseSplit, GolfRootPicksOutlookUnderMultiway) {
  Fixture f(data::golf_dataset());
  GrowOptions opt;
  opt.policy = SplitPolicy::Multiway;
  const SplitDecision d =
      choose_split(f.hist, f.layout, f.ds.schema(), f.mapper, opt);
  ASSERT_FALSE(d.test.is_leaf());
  EXPECT_EQ(d.test.attr, data::golf_attr::kOutlook);
  EXPECT_EQ(d.test.kind, SplitTest::Kind::Multiway);
  EXPECT_EQ(d.test.num_children, 3);
  EXPECT_NEAR(d.gain, 0.24675, 1e-4);
  EXPECT_EQ(d.child_counts, (std::vector<std::int64_t>{2, 3, 4, 0, 3, 2}));
}

TEST(ChooseSplit, PureNodeBecomesLeaf) {
  Fixture f(data::golf_dataset());
  // Zero out the "Don't Play" class everywhere.
  for (int a = 0; a < f.layout.num_attributes(); ++a) {
    for (int s = 0; s < f.layout.slots(a); ++s) {
      f.hist[static_cast<std::size_t>(f.layout.index(a, s, 1))] = 0;
    }
  }
  GrowOptions opt;
  const SplitDecision d =
      choose_split(f.hist, f.layout, f.ds.schema(), f.mapper, opt);
  EXPECT_TRUE(d.test.is_leaf());
}

TEST(ChooseSplit, MinRecordsForcesLeaf) {
  Fixture f(data::golf_dataset());
  GrowOptions opt;
  opt.min_records = 100;  // more than the 14 golf records
  const SplitDecision d =
      choose_split(f.hist, f.layout, f.ds.schema(), f.mapper, opt);
  EXPECT_TRUE(d.test.is_leaf());
}

TEST(ChooseSplit, EmptyHistogramIsLeaf) {
  Fixture f(data::golf_dataset());
  std::fill(f.hist.begin(), f.hist.end(), 0);
  GrowOptions opt;
  const SplitDecision d =
      choose_split(f.hist, f.layout, f.ds.schema(), f.mapper, opt);
  EXPECT_TRUE(d.test.is_leaf());
}

TEST(ChooseSplit, BinaryPolicyUsesSubsetForNominal) {
  Fixture f(data::golf_dataset());
  GrowOptions opt;
  opt.policy = SplitPolicy::Binary;
  const SplitDecision d =
      choose_split(f.hist, f.layout, f.ds.schema(), f.mapper, opt);
  ASSERT_FALSE(d.test.is_leaf());
  EXPECT_EQ(d.test.num_children, 2);
  // The winning test may be a Subset (Outlook) or Threshold (Humidity);
  // on golf the overcast-vs-rest Outlook subset wins.
  EXPECT_EQ(d.test.kind, SplitTest::Kind::Subset);
  EXPECT_EQ(d.test.attr, data::golf_attr::kOutlook);
  // Child counts must partition the parent's 9/5.
  ASSERT_EQ(d.child_counts.size(), 4u);
  EXPECT_EQ(d.child_counts[0] + d.child_counts[2], 9);
  EXPECT_EQ(d.child_counts[1] + d.child_counts[3], 5);
}

TEST(ChooseSplit, ThresholdSplitOnOrderedSyntheticAttr) {
  // A dataset with one continuous attribute perfectly separating classes.
  data::Schema s({data::Attribute::continuous("x")}, 2);
  data::Dataset ds(s, 20);
  for (int i = 0; i < 20; ++i) {
    const std::size_t r = ds.add_row(i < 10 ? 0 : 1);
    ds.set_cont(0, r, static_cast<double>(i));
  }
  Fixture f(std::move(ds), 10);
  GrowOptions opt;
  const SplitDecision d =
      choose_split(f.hist, f.layout, f.ds.schema(), f.mapper, opt);
  ASSERT_FALSE(d.test.is_leaf());
  EXPECT_EQ(d.test.kind, SplitTest::Kind::Threshold);
  EXPECT_EQ(d.test.attr, 0);
  EXPECT_NEAR(d.gain, 1.0, 1e-9) << "perfect separation: full bit of gain";
  EXPECT_EQ(d.child_counts, (std::vector<std::int64_t>{10, 0, 0, 10}));
  // Every value below the threshold is class 0.
  EXPECT_GT(d.test.threshold, 9.0);
  EXPECT_LT(d.test.threshold, 10.0 + 1e-9);
}

TEST(ChooseSplit, OrderedCategoricalUsesOrderedSlotKind) {
  data::Schema s({data::Attribute::categorical("bin", 6, /*ordered=*/true)},
                 2);
  data::Dataset ds(s, 24);
  for (int i = 0; i < 24; ++i) {
    const std::size_t r = ds.add_row(i % 6 < 3 ? 0 : 1);
    ds.set_cat(0, r, i % 6);
  }
  Fixture f(std::move(ds));
  GrowOptions opt;
  const SplitDecision d =
      choose_split(f.hist, f.layout, f.ds.schema(), f.mapper, opt);
  ASSERT_FALSE(d.test.is_leaf());
  EXPECT_EQ(d.test.kind, SplitTest::Kind::OrderedSlot);
  EXPECT_EQ(d.test.slot_threshold, 2);
  EXPECT_NEAR(d.gain, 1.0, 1e-9);
}

TEST(ChooseSplit, GiniAndEntropyBothFindThePerfectSplit) {
  data::Schema s({data::Attribute::categorical("v", 4)}, 2);
  data::Dataset ds(s, 40);
  for (int i = 0; i < 40; ++i) {
    const std::size_t r = ds.add_row(i % 4 < 2 ? 0 : 1);
    ds.set_cat(0, r, i % 4);
  }
  Fixture f(std::move(ds));
  for (const Criterion crit : {Criterion::Entropy, Criterion::Gini}) {
    GrowOptions opt;
    opt.criterion = crit;
    const SplitDecision d =
        choose_split(f.hist, f.layout, f.ds.schema(), f.mapper, opt);
    ASSERT_FALSE(d.test.is_leaf());
    EXPECT_EQ(d.test.kind, SplitTest::Kind::Subset);
    const std::int64_t left0 = d.child_counts[0];
    const std::int64_t left1 = d.child_counts[1];
    EXPECT_TRUE((left0 == 20 && left1 == 0) || (left0 == 0 && left1 == 20));
  }
}

TEST(ChooseSplit, ChildOfSlotRouting) {
  SplitTest t;
  t.kind = SplitTest::Kind::Threshold;
  t.slot_threshold = 3;
  EXPECT_EQ(t.child_of_slot(0), 0);
  EXPECT_EQ(t.child_of_slot(3), 0);
  EXPECT_EQ(t.child_of_slot(4), 1);

  t.kind = SplitTest::Kind::Subset;
  t.in_left = {1, 0, 1};
  EXPECT_EQ(t.child_of_slot(0), 0);
  EXPECT_EQ(t.child_of_slot(1), 1);
  EXPECT_EQ(t.child_of_slot(2), 0);

  t.kind = SplitTest::Kind::Multiway;
  EXPECT_EQ(t.child_of_slot(5), 5);
}

TEST(ChooseSplit, DeterministicTieBreakPrefersLowerAttr) {
  // Two identical attributes: the split must pick attr 0.
  data::Schema s({data::Attribute::categorical("a", 2),
                  data::Attribute::categorical("b", 2)},
                 2);
  data::Dataset ds(s, 20);
  for (int i = 0; i < 20; ++i) {
    const std::size_t r = ds.add_row(i % 2);
    ds.set_cat(0, r, i % 2);
    ds.set_cat(1, r, i % 2);
  }
  Fixture f(std::move(ds));
  GrowOptions opt;
  const SplitDecision d =
      choose_split(f.hist, f.layout, f.ds.schema(), f.mapper, opt);
  ASSERT_FALSE(d.test.is_leaf());
  EXPECT_EQ(d.test.attr, 0);
}

TEST(ChooseSplit, PerNodeKMeansStillFindsGoodThreshold) {
  const data::Dataset raw = data::quest_generate(4000, {.seed = 21});
  Fixture f(raw, 32);
  GrowOptions opt;
  opt.cont_split = ContSplit::KMeans;
  opt.per_node_bins = 8;
  const SplitDecision d =
      choose_split(f.hist, f.layout, f.ds.schema(), f.mapper, opt);
  ASSERT_FALSE(d.test.is_leaf());
  // Function 2 predicates on age and salary.
  EXPECT_TRUE(d.test.attr == data::quest_attr::kAge ||
              d.test.attr == data::quest_attr::kSalary);
  EXPECT_GT(d.gain, 0.0);
}

TEST(ChooseSplit, PerNodeQuantileStillFindsGoodThreshold) {
  const data::Dataset raw = data::quest_generate(4000, {.seed = 22});
  Fixture f(raw, 32);
  GrowOptions opt;
  opt.cont_split = ContSplit::Quantile;
  opt.per_node_bins = 8;
  const SplitDecision d =
      choose_split(f.hist, f.layout, f.ds.schema(), f.mapper, opt);
  ASSERT_FALSE(d.test.is_leaf());
  EXPECT_GT(d.gain, 0.0);
}

TEST(ChooseSplit, PerNodeCandidatesNeverBeatFullScan) {
  const data::Dataset raw = data::quest_generate(2000, {.seed = 23});
  Fixture f(raw, 32);
  GrowOptions scan;
  scan.cont_split = ContSplit::ThresholdScan;
  GrowOptions km;
  km.cont_split = ContSplit::KMeans;
  km.per_node_bins = 6;
  const auto ds = choose_split(f.hist, f.layout, f.ds.schema(), f.mapper, scan);
  const auto dk = choose_split(f.hist, f.layout, f.ds.schema(), f.mapper, km);
  EXPECT_GE(ds.gain, dk.gain - 1e-12)
      << "restricting candidates cannot increase the best gain";
}

}  // namespace
}  // namespace pdt::dtree
