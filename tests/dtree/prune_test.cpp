#include "dtree/prune.hpp"

#include <gtest/gtest.h>

#include "data/quest.hpp"
#include "data/discretize.hpp"
#include "dtree/builder.hpp"
#include "dtree/metrics.hpp"

namespace pdt::dtree {
namespace {

TEST(PessimisticError, ZeroErrorsStillPositive) {
  // C4.5's point: an observed error of 0 on few records is not a true 0.
  const double e = pessimistic_error(0, 10, 0.25);
  EXPECT_GT(e, 0.0);
  EXPECT_LT(e, 0.5);
}

TEST(PessimisticError, ShrinksWithMoreData) {
  const double small = pessimistic_error(1, 10, 0.25);
  const double large = pessimistic_error(100, 1000, 0.25);
  EXPECT_GT(small, large) << "same 10% rate, tighter bound with more data";
}

TEST(PessimisticError, GrowsWithErrorRate) {
  EXPECT_LT(pessimistic_error(1, 100, 0.25),
            pessimistic_error(30, 100, 0.25));
}

TEST(PessimisticError, MoreConfidencePrunesLess) {
  // Larger CF -> smaller z -> smaller upper bound.
  EXPECT_GT(pessimistic_error(5, 50, 0.05), pessimistic_error(5, 50, 0.45));
}

TEST(Prune, LeavesPerfectSubtreesMostlyAlone) {
  // A clean, strongly-predictive dataset: pruning should not destroy the
  // fit.
  const data::Dataset raw = data::quest_generate(3000, {.seed = 41});
  const data::Dataset ds =
      data::discretize_uniform(raw, data::quest_paper_bins());
  Tree t = grow_bfs(ds, GrowOptions{});
  const double before = evaluate(t, ds).accuracy();
  const PruneStats stats = prune(t);
  EXPECT_EQ(stats.leaves_after, t.num_leaves());
  EXPECT_LE(stats.leaves_after, stats.leaves_before);
  EXPECT_GT(evaluate(t, ds).accuracy(), before - 0.1);
}

TEST(Prune, CollapsesNoiseFits) {
  // With 20% label noise the deep tree memorizes noise; pessimistic
  // pruning must collapse a substantial part of it.
  const data::Dataset raw = data::quest_generate(
      3000, {.function = 1, .seed = 42, .label_noise = 0.2});
  const data::Dataset ds =
      data::discretize_uniform(raw, data::quest_paper_bins());
  Tree t = grow_bfs(ds, GrowOptions{});
  const int leaves_before = t.num_leaves();
  const PruneStats stats = prune(t);
  EXPECT_GT(stats.subtrees_collapsed, 0);
  EXPECT_LT(t.num_leaves(), leaves_before);
}

TEST(Prune, RootOnlyTreeIsUntouched) {
  Tree t(std::vector<std::int64_t>{5, 5});
  const PruneStats stats = prune(t);
  EXPECT_EQ(stats.subtrees_collapsed, 0);
  EXPECT_EQ(stats.leaves_before, 1);
  EXPECT_EQ(stats.leaves_after, 1);
}

}  // namespace
}  // namespace pdt::dtree
