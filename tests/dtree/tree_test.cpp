#include "dtree/tree.hpp"

#include <gtest/gtest.h>

#include "data/golf.hpp"

namespace pdt::dtree {
namespace {

SplitDecision binary_decision(int attr, double threshold,
                              std::vector<std::int64_t> child_counts) {
  SplitDecision d;
  d.test.kind = SplitTest::Kind::Threshold;
  d.test.attr = attr;
  d.test.threshold = threshold;
  d.test.num_children = 2;
  d.child_counts = std::move(child_counts);
  d.gain = 0.5;
  return d;
}

TEST(MajorityClass, PicksLargestWithDeterministicTies) {
  EXPECT_EQ(majority_class(std::vector<std::int64_t>{3, 7}), 1);
  EXPECT_EQ(majority_class(std::vector<std::int64_t>{7, 3}), 0);
  EXPECT_EQ(majority_class(std::vector<std::int64_t>{5, 5}), 0)
      << "tie goes to the lower class id";
  EXPECT_EQ(majority_class(std::vector<std::int64_t>{0, 0}, 1), 1)
      << "empty counts fall back";
}

TEST(Tree, RootOnlyTree) {
  const Tree t(std::vector<std::int64_t>{9, 5});
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_EQ(t.num_leaves(), 1);
  EXPECT_EQ(t.depth(), 0);
  EXPECT_TRUE(t.node(0).is_leaf());
  EXPECT_EQ(t.node(0).majority, 0);
  EXPECT_EQ(t.node(0).num_records(), 14);
}

TEST(Tree, ExpandCreatesContiguousChildren) {
  Tree t(std::vector<std::int64_t>{9, 5});
  const int first = t.expand(0, binary_decision(1, 75.0, {7, 1, 2, 4}));
  EXPECT_EQ(first, 1);
  EXPECT_EQ(t.num_nodes(), 3);
  EXPECT_EQ(t.num_leaves(), 2);
  EXPECT_EQ(t.depth(), 1);
  EXPECT_FALSE(t.node(0).is_leaf());
  EXPECT_EQ(t.node(1).parent, 0);
  EXPECT_EQ(t.node(1).depth, 1);
  EXPECT_EQ(t.node(1).class_counts, (std::vector<std::int64_t>{7, 1}));
  EXPECT_EQ(t.node(1).majority, 0);
  EXPECT_EQ(t.node(2).majority, 1);
}

TEST(Tree, EmptyChildInheritsParentMajority) {
  // Hunt's method Case 3: a leaf with no records takes the parent's class.
  Tree t(std::vector<std::int64_t>{2, 12});
  const int first = t.expand(0, binary_decision(0, 1.0, {0, 0, 2, 12}));
  EXPECT_EQ(t.node(first).num_records(), 0);
  EXPECT_EQ(t.node(first).majority, 1) << "parent majority is class 1";
}

TEST(Tree, RouteThresholdIsStrictLess) {
  const data::Dataset golf = data::golf_dataset();
  Tree t(std::vector<std::int64_t>{9, 5});
  t.expand(0, binary_decision(data::golf_attr::kHumidity, 80.0, {5, 2, 4, 3}));
  // Row 0 has humidity 70 (< 80 -> child 0); row 1 has 90 (-> child 1);
  // row 9 has exactly 80 (boundary -> child 1, strict less).
  EXPECT_EQ(t.route(0, golf, 0), 0);
  EXPECT_EQ(t.route(0, golf, 1), 1);
  EXPECT_EQ(t.route(0, golf, 9), 1);
}

TEST(Tree, RouteSubsetAndMultiway) {
  const data::Dataset golf = data::golf_dataset();
  Tree sub(std::vector<std::int64_t>{9, 5});
  SplitDecision d;
  d.test.kind = SplitTest::Kind::Subset;
  d.test.attr = data::golf_attr::kOutlook;
  d.test.in_left = {0, 1, 0};  // overcast goes left
  d.test.num_children = 2;
  d.child_counts = {4, 0, 5, 5};
  sub.expand(0, d);
  EXPECT_EQ(sub.route(0, golf, 5), 0) << "row 5 is overcast";
  EXPECT_EQ(sub.route(0, golf, 0), 1) << "row 0 is sunny";

  Tree multi(std::vector<std::int64_t>{9, 5});
  SplitDecision m;
  m.test.kind = SplitTest::Kind::Multiway;
  m.test.attr = data::golf_attr::kOutlook;
  m.test.num_children = 3;
  m.child_counts = {2, 3, 4, 0, 3, 2};
  multi.expand(0, m);
  EXPECT_EQ(multi.route(0, golf, 0), 0);
  EXPECT_EQ(multi.route(0, golf, 5), 1);
  EXPECT_EQ(multi.route(0, golf, 9), 2);
}

TEST(Tree, ClassifyWalksToLeafMajority) {
  const data::Dataset golf = data::golf_dataset();
  Tree t(std::vector<std::int64_t>{9, 5});
  t.expand(0, binary_decision(data::golf_attr::kHumidity, 80.0, {6, 1, 3, 4}));
  EXPECT_EQ(t.classify(golf, 0), 0) << "humidity 70 -> left leaf, Play";
  EXPECT_EQ(t.classify(golf, 1), 1) << "humidity 90 -> right leaf, Don't";
}

TEST(Tree, SameAsDetectsStructuralDifferences) {
  Tree a(std::vector<std::int64_t>{9, 5});
  Tree b(std::vector<std::int64_t>{9, 5});
  EXPECT_TRUE(a.same_as(b));
  a.expand(0, binary_decision(1, 75.0, {7, 1, 2, 4}));
  EXPECT_FALSE(a.same_as(b));
  b.expand(0, binary_decision(1, 75.0, {7, 1, 2, 4}));
  EXPECT_TRUE(a.same_as(b));

  Tree c(std::vector<std::int64_t>{9, 5});
  c.expand(0, binary_decision(2, 75.0, {7, 1, 2, 4}));  // different attr
  EXPECT_FALSE(a.same_as(c));
  Tree d2(std::vector<std::int64_t>{9, 5});
  d2.expand(0, binary_decision(1, 76.0, {7, 1, 2, 4}));  // different cut
  EXPECT_FALSE(a.same_as(d2));
  Tree e(std::vector<std::int64_t>{9, 4});  // different counts
  EXPECT_FALSE(a.same_as(e));
}

TEST(Tree, MakeLeafCollapsesSubtree) {
  Tree t(std::vector<std::int64_t>{9, 5});
  t.expand(0, binary_decision(1, 75.0, {7, 1, 2, 4}));
  t.expand(1, binary_decision(2, 80.0, {6, 0, 1, 1}));
  EXPECT_EQ(t.num_leaves(), 3);
  t.make_leaf(0);
  EXPECT_EQ(t.num_leaves(), 1);
  EXPECT_EQ(t.depth(), 0);
  EXPECT_TRUE(t.node(0).is_leaf());
}

TEST(Tree, ToStringShowsTestsAndLeaves) {
  const data::Dataset golf = data::golf_dataset();
  Tree t(std::vector<std::int64_t>{9, 5});
  t.expand(0, binary_decision(data::golf_attr::kHumidity, 80.0, {6, 1, 3, 4}));
  const std::string s = t.to_string(golf.schema());
  EXPECT_NE(s.find("Humidity"), std::string::npos);
  EXPECT_NE(s.find("80"), std::string::npos);
  EXPECT_NE(s.find("Play"), std::string::npos);
}

}  // namespace
}  // namespace pdt::dtree
