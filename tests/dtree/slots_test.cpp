#include "dtree/slots.hpp"

#include <gtest/gtest.h>

#include "data/golf.hpp"
#include "data/quest.hpp"

namespace pdt::dtree {
namespace {

TEST(AttrLayout, OffsetsAndTotals) {
  const data::Schema s = data::golf_schema();
  const AttrLayout layout(s, 8);
  // Outlook(3), Temp(8 bins), Humidity(8 bins), Windy(2); 2 classes.
  EXPECT_EQ(layout.num_attributes(), 4);
  EXPECT_EQ(layout.num_classes(), 2);
  EXPECT_EQ(layout.slots(0), 3);
  EXPECT_EQ(layout.slots(1), 8);
  EXPECT_EQ(layout.slots(3), 2);
  EXPECT_EQ(layout.offset(0), 0);
  EXPECT_EQ(layout.offset(1), 6);
  EXPECT_EQ(layout.offset(2), 22);
  EXPECT_EQ(layout.offset(3), 38);
  EXPECT_EQ(layout.total(), 42);
  EXPECT_EQ(layout.index(1, 2, 1), 6 + 2 * 2 + 1);
}

TEST(AttrLayout, HistWordsMatchPaperFormulaForAllCategorical) {
  // For all-categorical data, total = C * sum(M_a) = C * A_d * M.
  const data::Dataset raw = data::quest_generate(10, {});
  const AttrLayout layout(raw.schema(), 16);
  const data::Schema& s = raw.schema();
  int expected = 0;
  for (int a = 0; a < s.num_attributes(); ++a) {
    expected += (s.attr(a).is_categorical() ? s.attr(a).cardinality : 16) * 2;
  }
  EXPECT_EQ(layout.total(), expected);
}

TEST(SlotMapper, CategoricalPassThrough) {
  const data::Dataset golf = data::golf_dataset();
  const SlotMapper mapper(golf, 4);
  for (std::size_t i = 0; i < golf.num_rows(); ++i) {
    EXPECT_EQ(mapper.slot(data::golf_attr::kOutlook, i),
              golf.cat(data::golf_attr::kOutlook, i));
    EXPECT_EQ(mapper.slot(data::golf_attr::kWindy, i),
              golf.cat(data::golf_attr::kWindy, i));
  }
}

TEST(SlotMapper, ContinuousBinsCoverRange) {
  const data::Dataset golf = data::golf_dataset();
  const SlotMapper mapper(golf, 4);
  for (std::size_t i = 0; i < golf.num_rows(); ++i) {
    const int s = mapper.slot(data::golf_attr::kHumidity, i);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
  }
  // Humidity range [65, 96]: min maps to slot 0, max to slot 3.
  EXPECT_EQ(mapper.slot_of_value(data::golf_attr::kHumidity, 65.0), 0);
  EXPECT_EQ(mapper.slot_of_value(data::golf_attr::kHumidity, 96.0), 3);
}

TEST(SlotMapper, BoundariesAreMonotoneAndConsistent) {
  const data::Dataset ds = data::quest_generate(500, {.seed = 6});
  const SlotMapper mapper(ds, 32);
  const int attr = data::quest_attr::kSalary;
  const auto& cuts = mapper.boundaries(attr);
  ASSERT_EQ(cuts.size(), 31u);
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    EXPECT_LT(cuts[i - 1], cuts[i]);
  }
  // slot_of_value is the inverse of the boundary relation: values strictly
  // below boundary(s) map to slots <= s.
  for (int s = 0; s < 31; ++s) {
    EXPECT_EQ(mapper.slot_of_value(attr, mapper.boundary(attr, s) - 1e-6), s);
    EXPECT_EQ(mapper.slot_of_value(attr, mapper.boundary(attr, s)), s + 1);
  }
}

TEST(SlotMapper, BinCentersBetweenBoundaries) {
  const data::Dataset ds = data::quest_generate(500, {.seed = 8});
  const SlotMapper mapper(ds, 8);
  const int attr = data::quest_attr::kAge;
  const auto [lo, hi] = ds.cont_range(attr);
  for (int s = 0; s < 8; ++s) {
    const double c = mapper.bin_center(attr, s);
    EXPECT_GE(c, lo);
    EXPECT_LE(c, hi);
    if (s > 0) {
      EXPECT_GE(c, mapper.boundary(attr, s - 1));
    }
    if (s < 7) {
      EXPECT_LE(c, mapper.boundary(attr, s));
    }
  }
}

}  // namespace
}  // namespace pdt::dtree
