// pdt-model-v1 canonical serialization: digest stability, round-trip
// reconstruction, pruning canonicalization, and the audit pairing rule.
#include "dtree/serialize.hpp"

#include <gtest/gtest.h>

#include "data/discretize.hpp"
#include "data/golf.hpp"
#include "data/quest.hpp"
#include "dtree/builder.hpp"
#include "dtree/metrics.hpp"
#include "dtree/sha256.hpp"

namespace pdt::dtree {
namespace {

data::Dataset quest_binned(std::size_t n, std::uint64_t seed) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = seed}),
      data::quest_paper_bins());
}

/// NodeSpec list straight from a tree's canonical order (what a reader
/// recovers from the "nodes" array of a well-formed document).
std::vector<NodeSpec> specs_of(const Tree& t) {
  const std::vector<int> order = canonical_order(t);
  std::vector<int> canon_of(static_cast<std::size_t>(t.num_nodes()), -1);
  for (std::size_t k = 0; k < order.size(); ++k) {
    canon_of[static_cast<std::size_t>(order[k])] = static_cast<int>(k);
  }
  std::vector<NodeSpec> specs;
  for (const int id : order) {
    const Node& nd = t.node(id);
    NodeSpec s;
    s.test = nd.test;
    s.parent =
        nd.parent < 0 ? -1 : canon_of[static_cast<std::size_t>(nd.parent)];
    s.first_child =
        nd.is_leaf() ? -1
                     : canon_of[static_cast<std::size_t>(nd.first_child)];
    s.depth = nd.depth;
    s.counts = nd.class_counts;
    s.majority = nd.majority;
    specs.push_back(std::move(s));
  }
  return specs;
}

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                       "nopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // Tail spanning two final blocks (len 56..63 needs a second pad block).
  EXPECT_EQ(sha256_hex(std::string(56, 'a')),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(Serialize, UnprunedBfsTreeKeepsArenaIds) {
  const data::Dataset ds = quest_binned(800, 3);
  const Tree t = grow_bfs(ds, {});
  const std::vector<int> order = canonical_order(t);
  ASSERT_EQ(static_cast<int>(order.size()), t.num_nodes());
  for (std::size_t k = 0; k < order.size(); ++k) {
    EXPECT_EQ(order[k], static_cast<int>(k));
  }
}

TEST(Serialize, DigestIsDeterministicAndContentSensitive) {
  const data::Dataset ds = quest_binned(800, 3);
  const Tree a = grow_bfs(ds, {});
  const Tree b = grow_bfs(ds, {});
  EXPECT_EQ(model_digest(a), model_digest(b));
  ASSERT_EQ(model_digest(a).size(), 64u);
  const Tree c = grow_bfs(quest_binned(800, 4), {});
  EXPECT_NE(model_digest(a), model_digest(c));
}

TEST(Serialize, RoundTripReconstructsIdenticalTree) {
  const data::Dataset ds = quest_binned(1200, 5);
  const Tree t = grow_bfs(ds, {});
  Tree back;
  ASSERT_EQ(tree_from_nodes(specs_of(t), &back), "");
  EXPECT_TRUE(back.same_as(t));
  EXPECT_EQ(model_digest(back), model_digest(t));
  // The rebuilt tree classifies identically, not just structurally.
  EXPECT_EQ(evaluate(back, ds).correct, evaluate(t, ds).correct);
}

TEST(Serialize, GolfMultiwayRoundTrip) {
  const data::Dataset golf = data::golf_dataset();
  GrowOptions opt;
  opt.policy = SplitPolicy::Multiway;
  const Tree t = grow_dfs_exact(golf, opt);
  Tree back;
  ASSERT_EQ(tree_from_nodes(specs_of(t), &back), "");
  EXPECT_TRUE(back.same_as(t));
}

TEST(Serialize, LeafIfiedSubtreesDropFromCanonicalForm) {
  const data::Dataset ds = quest_binned(1200, 5);
  Tree t = grow_bfs(ds, {});
  const int before = t.num_nodes();
  // Detach a subtree the way pruning does. Pick the deepest internal node
  // so at least its children fall out of the reachable set.
  int victim = -1;
  for (int id = before - 1; id >= 0; --id) {
    if (!t.node(id).is_leaf()) {
      victim = id;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  const std::string digest_before = model_digest(t);
  t.make_leaf(victim);
  EXPECT_NE(model_digest(t), digest_before);
  // The arena still holds the detached nodes; the canonical form drops
  // them and renumbers, so the rebuilt tree is the compact classifier.
  EXPECT_EQ(t.num_nodes(), before);
  const std::vector<int> order = canonical_order(t);
  EXPECT_LT(static_cast<int>(order.size()), before);
  Tree back;
  ASSERT_EQ(tree_from_nodes(specs_of(t), &back), "");
  EXPECT_TRUE(back.same_as(t));
  EXPECT_EQ(back.num_nodes(), static_cast<int>(order.size()));
  EXPECT_EQ(model_digest(back), model_digest(t));
}

TEST(Serialize, CorruptedDocumentsAreRejected) {
  const data::Dataset ds = quest_binned(600, 6);
  const Tree t = grow_bfs(ds, {});
  Tree back;
  {
    std::vector<NodeSpec> specs = specs_of(t);
    specs[0].depth = 1;  // root must sit at depth 0
    EXPECT_NE(tree_from_nodes(specs, &back), "");
  }
  {
    std::vector<NodeSpec> specs = specs_of(t);
    // Find an internal node and break its first_child link.
    for (NodeSpec& s : specs) {
      if (s.test.is_leaf()) continue;
      s.first_child += 1;
      break;
    }
    EXPECT_NE(tree_from_nodes(specs, &back), "");
  }
  {
    std::vector<NodeSpec> specs = specs_of(t);
    // A majority inconsistent with its counts must be caught.
    specs[0].majority = specs[0].majority == 0 ? 1 : 0;
    EXPECT_NE(tree_from_nodes(specs, &back), "");
  }
  EXPECT_NE(tree_from_nodes({}, &back), "");
}

TEST(Serialize, ModelJsonAppliesAuditPairingRule) {
  const data::Dataset ds = quest_binned(600, 7);
  Tree t = grow_bfs(ds, {});
  ASSERT_GT(t.num_nodes(), 3);
  // One entry per internal node, plus one for a node we then leaf-ify
  // and one for a bogus id; only entries for reachable internal nodes of
  // the final tree may serialize.
  std::vector<SplitAuditEntry> audit;
  for (int id = 0; id < t.num_nodes(); ++id) {
    if (t.node(id).is_leaf()) continue;
    SplitAuditEntry e;
    e.node_id = id;
    e.gain = 0.5;
    e.level = t.node(id).depth;
    e.phase = "split-eval";
    audit.push_back(std::move(e));
  }
  // Leaf-ify the last internal node: its entry (and its detached
  // children's) must drop out.
  int victim = -1;
  for (int id = t.num_nodes() - 1; id >= 0; --id) {
    if (!t.node(id).is_leaf()) {
      victim = id;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  t.make_leaf(victim);

  ModelMeta meta;
  meta.harness = "test";
  const std::string doc = model_json(t, meta, audit);
  // Count "node": occurrences in the audit section = reachable internal
  // nodes of the final tree.
  int internal = 0;
  const std::vector<int> order = canonical_order(t);
  for (const int id : order) {
    if (!t.node(id).is_leaf()) ++internal;
  }
  int recorded = 0;
  for (std::size_t pos = doc.find("{\"node\":"); pos != std::string::npos;
       pos = doc.find("{\"node\":", pos + 1)) {
    ++recorded;
  }
  EXPECT_EQ(recorded, internal);
  EXPECT_NE(doc.find("\"schema\":\"pdt-model-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"digest\":\"" + model_digest(t) + "\""),
            std::string::npos);
}

TEST(Serialize, DigestCoversNodesNotMeta) {
  const data::Dataset ds = quest_binned(600, 8);
  const Tree t = grow_bfs(ds, {});
  ModelMeta m1;
  m1.harness = "a";
  m1.procs = 1;
  ModelMeta m2;
  m2.harness = "b";
  m2.procs = 16;
  const std::string d1 = model_json(t, m1);
  const std::string d2 = model_json(t, m2);
  EXPECT_NE(d1, d2);  // meta differs...
  const std::string digest = "\"digest\":\"" + model_digest(t) + "\"";
  EXPECT_NE(d1.find(digest), std::string::npos);  // ...the digest does not
  EXPECT_NE(d2.find(digest), std::string::npos);
}

}  // namespace
}  // namespace pdt::dtree
