#include "mpsim/group.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <stdexcept>

namespace pdt::mpsim {
namespace {

CostModel unit_cost() {
  CostModel cm;
  cm.t_s = 1.0;
  cm.t_w = 1.0;
  cm.t_c = 1.0;
  cm.t_io = 0.0;  // isolate wire costs; I/O charging has its own tests
  return cm;
}

TEST(Group, WholeMachineIsASubcubeForPow2) {
  Machine m(8);
  const Group g = Group::whole(m);
  EXPECT_EQ(g.size(), 8);
  EXPECT_TRUE(g.is_subcube());
  EXPECT_EQ(g.dimension(), 3);
}

TEST(Group, WholeMachineHandlesNonPow2) {
  Machine m(6);
  const Group g = Group::whole(m);
  EXPECT_EQ(g.size(), 6);
  EXPECT_FALSE(g.is_subcube());
  EXPECT_EQ(g.dimension(), 3) << "collectives round up to 3 rounds";
}

TEST(Group, ExplicitRankListDetectsSubcube) {
  Machine m(8);
  const Group aligned(m, std::vector<Rank>{4, 5, 6, 7});
  EXPECT_TRUE(aligned.is_subcube());
  const Group unaligned(m, std::vector<Rank>{2, 3, 4, 5});
  EXPECT_FALSE(unaligned.is_subcube());
  const Group scattered(m, std::vector<Rank>{0, 3, 5});
  EXPECT_FALSE(scattered.is_subcube());
}

TEST(Group, BarrierAlignsClocksAndChargesIdle) {
  Machine m(4, unit_cost());
  m.charge_compute(2, 10.0);
  Group g = Group::whole(m);
  g.barrier();
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(m.clock(r), 10.0);
  }
  EXPECT_DOUBLE_EQ(m.stats(0).idle_time, 10.0);
  EXPECT_DOUBLE_EQ(m.stats(2).idle_time, 0.0);
}

TEST(Group, AllReduceSumsAndRedistributes) {
  Machine m(4, unit_cost());
  Group g = Group::whole(m);
  std::vector<std::vector<std::int64_t>> bufs(4, std::vector<std::int64_t>(3));
  for (int i = 0; i < 4; ++i) {
    bufs[static_cast<std::size_t>(i)] = {i, 2 * i, 10};
  }
  std::vector<std::int64_t*> ptrs;
  for (auto& b : bufs) ptrs.push_back(b.data());
  g.all_reduce_sum(ptrs, 3);
  for (const auto& b : bufs) {
    EXPECT_EQ(b, (std::vector<std::int64_t>{6, 12, 40}));
  }
  // Cost: (t_s + t_w * words) * log2(4), words = 3 * 8/4 = 6.
  EXPECT_DOUBLE_EQ(m.clock(0), (1.0 + 6.0) * 2);
}

TEST(Group, AllReduceHonoursExplicitWireWords) {
  Machine m(2, unit_cost());
  Group g = Group::whole(m);
  std::vector<std::int64_t> a{1}, b{2};
  const std::vector<std::int64_t*> bufs{a.data(), b.data()};
  g.all_reduce_sum(bufs, 1, /*words=*/100.0);
  EXPECT_EQ(a[0], 3);
  EXPECT_DOUBLE_EQ(m.clock(0), 1.0 + 100.0);
}

TEST(Group, SingletonCollectivesAreFree) {
  Machine m(4, unit_cost());
  Group g(m, std::vector<Rank>{2});
  g.charge_all_reduce(1000.0);
  g.charge_broadcast(1000.0);
  EXPECT_DOUBLE_EQ(m.clock(2), 0.0);
}

TEST(Group, PairwiseExchangeChargesMaxOfPair) {
  Machine m(4, unit_cost());
  Group g = Group::whole(m);
  // Members 0<->2 exchange (10 out, 4 back); 1<->3 exchange (0, 0).
  g.pairwise_exchange({10.0, 0.0, 4.0, 0.0});
  // Pair (0,2): t_s + t_w * max(10,4) = 11; pair (1,3): t_s = 1.
  // The final barrier aligns everyone to 11.
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(m.clock(r), 11.0);
  }
  EXPECT_EQ(m.stats(0).words_sent, 10u);
  EXPECT_EQ(m.stats(2).words_sent, 4u);
  EXPECT_EQ(m.stats(2).words_received, 10u);
}

TEST(Group, RecordMovesChargeLocalIo) {
  CostModel cm = unit_cost();
  cm.t_io = 2.0;
  Machine m(2, cm);
  Group g = Group::whole(m);
  g.pairwise_exchange({10.0, 4.0});
  // Each member reads what it sends and writes what it receives:
  // io = t_io * (10 + 4) = 28 on both ends.
  EXPECT_DOUBLE_EQ(m.stats(0).io_time, 28.0);
  EXPECT_DOUBLE_EQ(m.stats(1).io_time, 28.0);
  EXPECT_DOUBLE_EQ(cm.record_move_word_cost(), 1.0 + 2.0 * 2.0);
}

TEST(Group, PlanBalanceEvensCountsWithinOne) {
  const auto transfers = Group::plan_balance({10, 0, 2, 0});
  std::vector<std::int64_t> counts{10, 0, 2, 0};
  for (const Transfer& t : transfers) {
    counts[static_cast<std::size_t>(t.from)] -= t.count;
    counts[static_cast<std::size_t>(t.to)] += t.count;
    EXPECT_GT(t.count, 0);
  }
  const std::int64_t total =
      std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
  EXPECT_EQ(total, 12);
  for (const auto c : counts) {
    EXPECT_EQ(c, 3);
  }
}

TEST(Group, PlanBalanceHandlesAlreadyBalanced) {
  EXPECT_TRUE(Group::plan_balance({5, 5, 5, 5}).empty());
  EXPECT_TRUE(Group::plan_balance({3}).empty());
}

TEST(Group, PlanBalanceRemainderWithinOne) {
  const std::vector<std::int64_t> counts{13, 1, 0};
  auto cur = counts;
  for (const Transfer& t : Group::plan_balance(counts)) {
    cur[static_cast<std::size_t>(t.from)] -= t.count;
    cur[static_cast<std::size_t>(t.to)] += t.count;
  }
  const auto [lo, hi] = std::minmax_element(cur.begin(), cur.end());
  EXPECT_LE(*hi - *lo, 1);
}

TEST(Group, ChargeTransfersBillsBothEnds) {
  Machine m(2, unit_cost());
  Group g = Group::whole(m);
  g.charge_transfers({Transfer{0, 1, 5}}, 2.0);
  // Each end: t_s + t_w * 10 = 11; final barrier keeps them equal.
  EXPECT_DOUBLE_EQ(m.clock(0), 11.0);
  EXPECT_DOUBLE_EQ(m.clock(1), 11.0);
  EXPECT_EQ(m.stats(0).words_sent, 10u);
}

TEST(Group, AllToAllPersonalizedUsesMaxVolume) {
  Machine m(2, unit_cost());
  Group g = Group::whole(m);
  // Member 0 sends 10 words to 1; member 1 sends nothing.
  g.all_to_all_personalized({{0.0, 10.0}, {0.0, 0.0}});
  // Cost per member: t_s * log2(2) + t_w * max(sent, recv) = 1 + 10.
  EXPECT_DOUBLE_EQ(m.clock(0), 11.0);
  EXPECT_DOUBLE_EQ(m.clock(1), 11.0);
}

TEST(Group, AllToAllPersonalizedRejectsBadShapes) {
  Machine m(2, unit_cost());
  Group g = Group::whole(m);
  // Wrong number of rows.
  EXPECT_THROW(g.all_to_all_personalized({{0.0, 1.0}}), std::invalid_argument);
  // Non-square row.
  EXPECT_THROW(g.all_to_all_personalized({{0.0, 1.0}, {0.0}}),
               std::invalid_argument);
  // Negative entry.
  EXPECT_THROW(g.all_to_all_personalized({{0.0, -1.0}, {0.0, 0.0}}),
               std::invalid_argument);
  // Non-finite entry.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(g.all_to_all_personalized({{0.0, nan}, {0.0, 0.0}}),
               std::invalid_argument);
  // Validation happens before any charging: the failed calls must not
  // have advanced the clocks.
  EXPECT_DOUBLE_EQ(m.clock(0), 0.0);
  EXPECT_DOUBLE_EQ(m.clock(1), 0.0);
}

TEST(Group, HalvesOfSubcube) {
  Machine m(8);
  Group g = Group::whole(m);
  const auto [a, b] = g.halves();
  EXPECT_EQ(a.ranks(), (std::vector<Rank>{0, 1, 2, 3}));
  EXPECT_EQ(b.ranks(), (std::vector<Rank>{4, 5, 6, 7}));
  EXPECT_TRUE(a.is_subcube());
  EXPECT_TRUE(b.is_subcube());
}

TEST(Group, MergeSynchronizesClocks) {
  Machine m(4, unit_cost());
  m.charge_compute(0, 5.0);
  Group a(m, std::vector<Rank>{0, 1});
  Group b(m, std::vector<Rank>{2, 3});
  const Group merged = a.merged_with(b);
  EXPECT_EQ(merged.size(), 4);
  EXPECT_TRUE(merged.is_subcube());
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(m.clock(r), 5.0);
  }
}

class AllReducePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AllReducePropertyTest, ConservesTotalsAtAnyGroupSize) {
  const int p = GetParam();
  Machine m(p, unit_cost());
  Group g = Group::whole(m);
  std::vector<std::vector<std::int64_t>> bufs(
      static_cast<std::size_t>(p), std::vector<std::int64_t>(5));
  std::int64_t expect_total = 0;
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < 5; ++j) {
      bufs[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          i * 7 + j;
      expect_total += i * 7 + j;
    }
  }
  std::vector<std::int64_t*> ptrs;
  for (auto& b : bufs) ptrs.push_back(b.data());
  g.all_reduce_sum(ptrs, 5);
  for (const auto& b : bufs) {
    EXPECT_EQ(std::accumulate(b.begin(), b.end(), std::int64_t{0}),
              expect_total);
    EXPECT_EQ(b, bufs.front());
  }
  // Barrier semantics: all member clocks equal after the collective.
  for (int r = 1; r < p; ++r) {
    EXPECT_DOUBLE_EQ(m.clock(r), m.clock(0));
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, AllReducePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 32));

// Collective preconditions: every malformed call must throw
// std::invalid_argument naming the collective and the group's rank range,
// and charge nothing — a half-charged collective would corrupt the run.

TEST(GroupValidation, RejectsNonFiniteOrNegativeWordCounts) {
  Machine m(4, unit_cost());
  const Group g = Group::whole(m);
  for (const double bad :
       {-1.0, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    EXPECT_THROW(g.charge_all_reduce(bad), std::invalid_argument);
    EXPECT_THROW(g.charge_broadcast(bad), std::invalid_argument);
    EXPECT_THROW(g.charge_transfers({}, bad), std::invalid_argument);
  }
  try {
    g.charge_all_reduce(-1.0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("charge_all_reduce"), std::string::npos) << msg;
    EXPECT_NE(msg.find("group [0..3] of 4"), std::string::npos) << msg;
  }
  EXPECT_DOUBLE_EQ(m.max_clock(), 0.0) << "failed calls must charge nothing";
}

TEST(GroupValidation, AllReduceRequiresOneBufferPerMember) {
  Machine m(4, unit_cost());
  const Group g = Group::whole(m);
  std::vector<std::int64_t> buf(3, 0);
  const std::vector<std::int64_t*> short_list{buf.data(), buf.data()};
  EXPECT_THROW(g.all_reduce_sum(short_list, 3), std::invalid_argument);
  try {
    g.all_reduce_sum(short_list, 3);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("one buffer per member"),
              std::string::npos)
        << e.what();
  }
  EXPECT_DOUBLE_EQ(m.max_clock(), 0.0);
}

TEST(GroupValidation, PairwiseExchangeRejectsOddGroupAndShapeMismatch) {
  Machine m(4, unit_cost());
  const Group odd(m, std::vector<Rank>{0, 1, 2});
  EXPECT_THROW(odd.pairwise_exchange({1.0, 1.0, 1.0}), std::invalid_argument);
  try {
    odd.pairwise_exchange({1.0, 1.0, 1.0});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("even-sized group"),
              std::string::npos)
        << e.what();
  }
  const Group even = Group::whole(m);
  EXPECT_THROW(even.pairwise_exchange({1.0, 1.0}), std::invalid_argument)
      << "one entry per member";
  EXPECT_THROW(even.pairwise_exchange({1.0, -1.0, 1.0, 1.0}),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(m.max_clock(), 0.0);
}

TEST(GroupValidation, ChargeTransfersRejectsOutOfRangeEndpoints) {
  Machine m(4, unit_cost());
  const Group g = Group::whole(m);
  EXPECT_THROW(g.charge_transfers({Transfer{0, 4, 1}}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(g.charge_transfers({Transfer{-1, 2, 1}}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(g.charge_transfers({Transfer{0, 1, -5}}, 1.0),
               std::invalid_argument);
  try {
    g.charge_transfers({Transfer{0, 4, 1}}, 1.0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("charge_transfers"), std::string::npos) << msg;
    EXPECT_NE(msg.find("0->4"), std::string::npos) << msg;
  }
  EXPECT_DOUBLE_EQ(m.max_clock(), 0.0);
}

TEST(GroupValidation, AllToAllRejectsNonSquareMatrix) {
  Machine m(2, unit_cost());
  const Group g = Group::whole(m);
  EXPECT_THROW(g.all_to_all_personalized({{0.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(g.all_to_all_personalized({{0.0}, {0.0}}),
               std::invalid_argument);
  EXPECT_THROW(g.all_to_all_personalized({{0.0, -1.0}, {0.0, 0.0}}),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(m.max_clock(), 0.0);
}

}  // namespace
}  // namespace pdt::mpsim
