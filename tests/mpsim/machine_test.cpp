#include "mpsim/machine.hpp"

#include <gtest/gtest.h>

namespace pdt::mpsim {
namespace {

TEST(Machine, StartsAtZero) {
  Machine m(4);
  EXPECT_EQ(m.size(), 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(m.clock(r), 0.0);
  }
  EXPECT_DOUBLE_EQ(m.max_clock(), 0.0);
  EXPECT_DOUBLE_EQ(m.min_clock(), 0.0);
}

TEST(Machine, ComputeChargesUnitsTimesTc) {
  CostModel cm;
  cm.t_c = 2.0;
  Machine m(2, cm);
  m.charge_compute(0, 10.0);
  EXPECT_DOUBLE_EQ(m.clock(0), 20.0);
  EXPECT_DOUBLE_EQ(m.clock(1), 0.0);
  EXPECT_DOUBLE_EQ(m.stats(0).compute_time, 20.0);
  EXPECT_DOUBLE_EQ(m.max_clock(), 20.0);
  EXPECT_DOUBLE_EQ(m.min_clock(), 0.0);
}

TEST(Machine, CommChargeTracksTrafficAndMessages) {
  Machine m(2);
  m.charge_comm(1, 5.0, 100.0, 40.0, 3);
  EXPECT_DOUBLE_EQ(m.clock(1), 5.0);
  EXPECT_DOUBLE_EQ(m.stats(1).comm_time, 5.0);
  EXPECT_EQ(m.stats(1).words_sent, 100u);
  EXPECT_EQ(m.stats(1).words_received, 40u);
  EXPECT_EQ(m.stats(1).messages_sent, 3u);
}

TEST(Machine, WaitUntilAccruesIdleOnlyForward) {
  Machine m(1);
  m.wait_until(0, 7.5);
  EXPECT_DOUBLE_EQ(m.clock(0), 7.5);
  EXPECT_DOUBLE_EQ(m.stats(0).idle_time, 7.5);
  m.wait_until(0, 3.0);  // already past; no-op
  EXPECT_DOUBLE_EQ(m.clock(0), 7.5);
  EXPECT_DOUBLE_EQ(m.stats(0).idle_time, 7.5);
}

TEST(Machine, ClockIsMonotone) {
  Machine m(1);
  double last = 0.0;
  for (int i = 0; i < 100; ++i) {
    switch (i % 3) {
      case 0: m.charge_compute(0, static_cast<double>(i)); break;
      case 1: m.charge_comm(0, 1.0, 1.0, 1.0); break;
      default: m.wait_until(0, m.clock(0) + 0.5); break;
    }
    EXPECT_GE(m.clock(0), last);
    last = m.clock(0);
  }
}

TEST(Machine, TotalStatsSumsRanks) {
  Machine m(3);
  m.charge_compute(0, 1.0);
  m.charge_compute(1, 2.0);
  m.charge_comm(2, 4.0, 10.0, 20.0, 2);
  const RankStats t = m.total_stats();
  EXPECT_DOUBLE_EQ(t.compute_time, (1.0 + 2.0) * m.cost().t_c);
  EXPECT_DOUBLE_EQ(t.comm_time, 4.0);
  EXPECT_EQ(t.words_sent, 10u);
  EXPECT_EQ(t.messages_sent, 2u);
}

TEST(Machine, ResetClearsClocksAndStats) {
  Machine m(2);
  m.charge_compute(0, 5.0);
  m.wait_until(1, 3.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.max_clock(), 0.0);
  EXPECT_DOUBLE_EQ(m.stats(0).compute_time, 0.0);
  EXPECT_DOUBLE_EQ(m.stats(1).idle_time, 0.0);
}

TEST(Machine, BusyTimeExcludesIdle) {
  RankStats s;
  s.compute_time = 3.0;
  s.comm_time = 2.0;
  s.idle_time = 100.0;
  EXPECT_DOUBLE_EQ(s.busy_time(), 5.0);
}

TEST(Trace, DisabledByDefaultAndCountsKinds) {
  Machine m(2);
  EXPECT_FALSE(m.trace().enabled());
  m.trace().record({0.0, EventKind::Note, 0, 0, 1, 0.0, "dropped"});
  EXPECT_TRUE(m.trace().events().empty());
  m.trace().enable(true);
  m.trace().record({1.0, EventKind::AllReduce, 0, 0, 2, 10.0, "x"});
  m.trace().record({2.0, EventKind::AllReduce, 0, 0, 2, 10.0, "y"});
  m.trace().record({3.0, EventKind::MovingPhase, 0, 0, 2, 5.0, "z"});
  EXPECT_EQ(m.trace().count(EventKind::AllReduce), 2u);
  EXPECT_EQ(m.trace().count(EventKind::MovingPhase), 1u);
  EXPECT_EQ(m.trace().count(EventKind::Rejoin), 0u);
}

TEST(Trace, EventKindNames) {
  EXPECT_STREQ(to_string(EventKind::AllReduce), "all-reduce");
  EXPECT_STREQ(to_string(EventKind::PartitionSplit), "partition-split");
  EXPECT_STREQ(to_string(EventKind::LoadBalance), "load-balance");
}

}  // namespace
}  // namespace pdt::mpsim
