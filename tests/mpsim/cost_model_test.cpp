#include "mpsim/cost_model.hpp"

#include <gtest/gtest.h>

namespace pdt::mpsim {
namespace {

TEST(CeilLog2, SmallValues) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(8), 3);
  EXPECT_EQ(ceil_log2(9), 4);
  EXPECT_EQ(ceil_log2(128), 7);
  EXPECT_EQ(ceil_log2(1024), 10);
}

TEST(CostModel, MessageCostIsStartupPlusPerWord) {
  CostModel cm;
  cm.t_s = 10.0;
  cm.t_w = 0.5;
  EXPECT_DOUBLE_EQ(cm.message(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cm.message(100.0), 60.0);
}

TEST(CostModel, AllReduceScalesWithLogP) {
  CostModel cm;
  cm.t_s = 1.0;
  cm.t_w = 1.0;
  EXPECT_DOUBLE_EQ(cm.all_reduce(10.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(cm.all_reduce(10.0, 2), 11.0);
  EXPECT_DOUBLE_EQ(cm.all_reduce(10.0, 4), 22.0);
  EXPECT_DOUBLE_EQ(cm.all_reduce(10.0, 16), 44.0);
}

TEST(CostModel, BroadcastMatchesAllReduceShape) {
  CostModel cm;
  cm.t_s = 2.0;
  cm.t_w = 0.25;
  EXPECT_DOUBLE_EQ(cm.broadcast(8.0, 8), (2.0 + 0.25 * 8.0) * 3);
  EXPECT_DOUBLE_EQ(cm.broadcast(8.0, 1), 0.0);
}

TEST(CostModel, ZeroCommPresetHasNoCommunicationCost) {
  const CostModel cm = CostModel::zero_comm();
  EXPECT_DOUBLE_EQ(cm.t_s, 0.0);
  EXPECT_DOUBLE_EQ(cm.t_w, 0.0);
  EXPECT_GT(cm.t_c, 0.0);
  EXPECT_DOUBLE_EQ(cm.all_reduce(1000.0, 64), 0.0);
}

TEST(CostModel, CheapCommIsHundredTimesCheaper) {
  const CostModel base = CostModel::sp2();
  const CostModel cheap = CostModel::cheap_comm();
  EXPECT_DOUBLE_EQ(cheap.t_s * 100.0, base.t_s);
  EXPECT_DOUBLE_EQ(cheap.t_w * 100.0, base.t_w);
  EXPECT_DOUBLE_EQ(cheap.t_c, base.t_c);
}

TEST(CostModel, Sp2DefaultsAreSane) {
  const CostModel cm = CostModel::sp2();
  EXPECT_GT(cm.t_s, cm.t_w) << "latency dominates per-word cost";
  EXPECT_GT(cm.t_w, 0.0);
  EXPECT_GT(cm.t_c, 0.0);
}

}  // namespace
}  // namespace pdt::mpsim
