#include "mpsim/topology.hpp"

#include <gtest/gtest.h>

namespace pdt::mpsim {
namespace {

TEST(Pow2, Predicates) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(17), 32);
}

TEST(Subcube, DimensionAndValidity) {
  EXPECT_TRUE((Subcube{0, 8}).valid());
  EXPECT_TRUE((Subcube{8, 8}).valid());
  EXPECT_FALSE((Subcube{4, 8}).valid()) << "base must be aligned";
  EXPECT_FALSE((Subcube{0, 6}).valid()) << "size must be a power of two";
  EXPECT_EQ((Subcube{0, 8}).dimension(), 3);
  EXPECT_EQ((Subcube{0, 1}).dimension(), 0);
}

TEST(Subcube, HalvesAreAlignedAndDisjoint) {
  const Subcube c{8, 8};
  const auto [lo, hi] = c.halves();
  EXPECT_EQ(lo.base, 8);
  EXPECT_EQ(lo.size, 4);
  EXPECT_EQ(hi.base, 12);
  EXPECT_EQ(hi.size, 4);
  EXPECT_TRUE(lo.valid());
  EXPECT_TRUE(hi.valid());
}

TEST(Subcube, PartnerCrossesHighestFreeDimension) {
  const Subcube c{0, 8};
  EXPECT_EQ(c.partner(0), 4);
  EXPECT_EQ(c.partner(4), 0);
  EXPECT_EQ(c.partner(3), 7);
  EXPECT_EQ(c.partner(7), 3);
  const Subcube off{8, 4};
  EXPECT_EQ(off.partner(8), 10);
  EXPECT_EQ(off.partner(11), 9);
}

TEST(Subcube, PartnerIsAnInvolution) {
  const Subcube c{16, 16};
  for (Rank r = 16; r < 32; ++r) {
    EXPECT_EQ(c.partner(c.partner(r)), r);
    EXPECT_TRUE(c.contains(c.partner(r)));
  }
}

TEST(Subcube, RanksEnumeratesMembers) {
  const Subcube c{4, 4};
  EXPECT_EQ(c.ranks(), (std::vector<Rank>{4, 5, 6, 7}));
  EXPECT_TRUE(c.contains(5));
  EXPECT_FALSE(c.contains(3));
  EXPECT_FALSE(c.contains(8));
}

class SubcubeRecursionTest : public ::testing::TestWithParam<int> {};

TEST_P(SubcubeRecursionTest, RepeatedHalvingReachesSingletons) {
  const int size = GetParam();
  std::vector<Subcube> cubes{Subcube{0, size}};
  while (cubes.front().size > 1) {
    std::vector<Subcube> next;
    for (const Subcube& c : cubes) {
      const auto [a, b] = c.halves();
      EXPECT_TRUE(a.valid());
      EXPECT_TRUE(b.valid());
      next.push_back(a);
      next.push_back(b);
    }
    cubes = std::move(next);
  }
  EXPECT_EQ(static_cast<int>(cubes.size()), size);
  for (int i = 0; i < size; ++i) {
    EXPECT_EQ(cubes[static_cast<std::size_t>(i)].base, i);
  }
}

INSTANTIATE_TEST_SUITE_P(Pow2Sizes, SubcubeRecursionTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

}  // namespace
}  // namespace pdt::mpsim
