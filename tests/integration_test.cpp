// End-to-end pipeline tests: generate -> discretize -> distribute -> train
// in parallel -> classify, plus the cross-formulation performance shapes
// the paper reports.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/io.hpp"
#include "data/quest.hpp"
#include "dtree/builder.hpp"
#include "dtree/metrics.hpp"
#include "dtree/prune.hpp"

namespace pdt {
namespace {

TEST(Pipeline, FullMiningRunOnFunction2) {
  // The paper's workload end to end at reduced scale.
  const data::Dataset raw =
      data::quest_generate(10000, {.function = 2, .seed = 17});
  const data::Dataset train =
      data::discretize_uniform(raw, data::quest_paper_bins());

  core::ParOptions opt;
  opt.num_procs = 16;
  const core::ParResult res = core::build_hybrid(train, opt);

  EXPECT_GT(res.tree.num_nodes(), 100);
  EXPECT_GT(dtree::evaluate(res.tree, train).accuracy(), 0.97);

  // Fresh data from the same distribution classifies well too.
  const data::Dataset fresh_raw =
      data::quest_generate(4000, {.function = 2, .seed = 18});
  const data::Dataset fresh =
      data::discretize_uniform(fresh_raw, data::quest_paper_bins());
  EXPECT_GT(dtree::evaluate(res.tree, fresh).accuracy(), 0.9);
}

TEST(Pipeline, CsvRoundTripTrainsIdentically) {
  const data::Dataset raw =
      data::quest_generate(1500, {.function = 5, .seed = 19});
  const data::Dataset ds =
      data::discretize_uniform(raw, data::quest_paper_bins());
  const std::string path = ::testing::TempDir() + "/quest_f5.csv";
  data::save_csv_file(ds, path);
  const data::Dataset loaded = data::load_csv_file(path);

  const dtree::Tree a = dtree::grow_bfs(ds, dtree::GrowOptions{});
  const dtree::Tree b = dtree::grow_bfs(loaded, dtree::GrowOptions{});
  EXPECT_TRUE(a.same_as(b));
}

TEST(Pipeline, EveryQuestFunctionTrainsAndFits) {
  for (int f = 1; f <= 10; ++f) {
    const data::Dataset raw = data::quest_generate(
        2000, {.function = f, .seed = static_cast<std::uint64_t>(f)});
    const data::Dataset ds =
        data::discretize_uniform(raw, data::quest_paper_bins());
    core::ParOptions opt;
    opt.num_procs = 4;
    const core::ParResult res = core::build_hybrid(ds, opt);
    EXPECT_GT(dtree::evaluate(res.tree, ds).accuracy(), 0.9)
        << "function " << f;
  }
}

TEST(Shapes, Figure6OrderingAt16Processors) {
  // Who wins and roughly by what factor: hybrid > partitioned > sync.
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(12000, {.function = 2, .seed = 20}),
      data::quest_paper_bins());
  core::ParOptions opt;
  opt.num_procs = 16;
  const auto sync = core::build_sync(ds, opt);
  const auto part = core::build_partitioned(ds, opt);
  const auto hybrid = core::build_hybrid(ds, opt);
  EXPECT_LT(hybrid.parallel_time, part.parallel_time);
  EXPECT_LT(part.parallel_time, sync.parallel_time);
}

TEST(Shapes, SyncSpeedupCollapsesBeyondFourProcessors) {
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(8000, {.function = 2, .seed = 21}),
      data::quest_paper_bins());
  const auto series = core::speedup_series(core::Formulation::Sync, ds,
                                           core::ParOptions{}, {1, 2, 4, 16});
  // Speedup at 16 barely improves (or worsens) over 4 — the Figure 6
  // signature of the synchronous approach.
  EXPECT_LT(series[3].speedup, series[2].speedup * 1.5);
  EXPECT_LT(series[3].efficiency, 0.5);
}

TEST(Shapes, HybridScaleupStaysNearFlat) {
  // Figure 9: fixed 1000 records per processor; runtime growth from P=1
  // to P=16 stays modest (the log P term).
  auto run = [](int p) {
    const data::Dataset ds = data::discretize_uniform(
        data::quest_generate(static_cast<std::size_t>(1000) * p,
                             {.function = 2, .seed = 22}),
        data::quest_paper_bins());
    core::ParOptions opt;
    opt.num_procs = p;
    return core::build_hybrid(ds, opt).parallel_time;
  };
  const double t1 = run(1);
  const double t16 = run(16);
  EXPECT_LT(t16, t1 * 3.0) << "scaleup curve should be close to flat";
}

TEST(Shapes, PruningIsCheapRelativeToGrowth) {
  // Section 2.1: pruning is <1% of initial tree generation. Compare the
  // simulated growth cost against pruning's node-count-proportional work.
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(8000, {.function = 2, .seed = 23}),
      data::quest_paper_bins());
  core::ParOptions opt;
  const auto serial = core::build_serial(ds, opt);
  dtree::Tree tree = serial.tree;
  // Growth touches every record once per level; pruning touches every
  // node once.
  const double growth_work =
      static_cast<double>(ds.num_rows()) * (tree.depth() + 1);
  const double prune_work = static_cast<double>(tree.num_nodes());
  EXPECT_LT(prune_work / growth_work, 0.01);
  (void)dtree::prune(tree);
}

TEST(Shapes, GiniAndEntropyGiveComparableTrees) {
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(4000, {.function = 2, .seed = 24}),
      data::quest_paper_bins());
  core::ParOptions ent;
  core::ParOptions gin;
  gin.grow.criterion = dtree::Criterion::Gini;
  const auto a = core::build_serial(ds, ent);
  const auto b = core::build_serial(ds, gin);
  const double acc_a = dtree::evaluate(a.tree, ds).accuracy();
  const double acc_b = dtree::evaluate(b.tree, ds).accuracy();
  EXPECT_NEAR(acc_a, acc_b, 0.02);
}

}  // namespace
}  // namespace pdt
