// The fault-tolerance analogue of the central equivalence property: for
// every formulation, any single-rank fail-stop at any early level must be
// absorbed with a recovered tree bit-identical to the fault-free serial
// tree. Plus the determinism guarantee the virtual clock makes possible:
// the same fault seed reproduces the run byte-for-byte (virtual time,
// recovery accounting, trace).
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "mpsim/fault.hpp"

namespace pdt::core {
namespace {

data::Dataset workload() {
  return data::discretize_uniform(
      data::quest_generate(2000, {.function = 2, .seed = 3}),
      data::quest_paper_bins());
}

struct FtConfig {
  Formulation formulation;
  int procs;
  int level;   // tree level at which the victim dies
  int victim;  // rank that fail-stops
};

std::string ft_name(const ::testing::TestParamInfo<FtConfig>& info) {
  const FtConfig& c = info.param;
  std::string s = to_string(c.formulation);
  s += "_P" + std::to_string(c.procs);
  s += "_L" + std::to_string(c.level);
  s += "_r" + std::to_string(c.victim);
  return s;
}

class FtEquivalenceTest : public ::testing::TestWithParam<FtConfig> {};

TEST_P(FtEquivalenceTest, RecoveredTreeEqualsSerialTree) {
  const FtConfig& c = GetParam();
  const data::Dataset ds = workload();
  ParOptions opt;
  const ParResult serial = build_serial(ds, opt);
  opt.num_procs = c.procs;
  mpsim::FaultPlan plan;
  plan.fail_stop(c.victim, c.level);
  opt.fault = &plan;
  const ParResult res = build(c.formulation, ds, opt);
  EXPECT_TRUE(res.tree.same_as(serial.tree));
  EXPECT_EQ(res.tree.num_nodes(), serial.tree.num_nodes());
  // In the partitioned/hybrid formulations a victim's partition can finish
  // (or go idle) before its scheduled level, in which case the death never
  // fires — still a valid run. The synchronous formulation keeps every
  // rank in the one group for every level, so there the death must fire.
  if (c.formulation == Formulation::Sync) {
    EXPECT_EQ(res.recovery.failures, 1);
  } else {
    EXPECT_LE(res.recovery.failures, 1);
  }
  EXPECT_GT(res.recovery.checkpoints, 0);
}

std::vector<FtConfig> make_ft_configs() {
  std::vector<FtConfig> out;
  for (const Formulation f :
       {Formulation::Sync, Formulation::Partitioned, Formulation::Hybrid}) {
    for (const int p : {4, 8}) {
      for (const int level : {0, 1, 2}) {
        // Victims at the rank-space extremes plus the middle, so deaths
        // hit different partitions once the hybrid starts splitting.
        for (const int victim : {0, p / 2, p - 1}) {
          out.push_back({f, p, level, victim});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(SingleFailStop, FtEquivalenceTest,
                         ::testing::ValuesIn(make_ft_configs()), ft_name);

// Same seed, same run: the virtual clock makes the whole faulty episode —
// completion time, every recovery figure, the full event trace —
// reproducible to the last bit.
class FtDeterminismTest : public ::testing::TestWithParam<Formulation> {};

TEST_P(FtDeterminismTest, SameSeedReproducesRunExactly) {
  const data::Dataset ds = workload();
  const mpsim::FaultPlan plan = mpsim::FaultPlan::random(99, 8, 4);
  ParOptions opt;
  opt.num_procs = 8;
  opt.trace = true;
  opt.fault = &plan;
  const ParResult a = build(GetParam(), ds, opt);
  const ParResult b = build(GetParam(), ds, opt);

  EXPECT_EQ(a.parallel_time, b.parallel_time);  // exact, not approximate
  EXPECT_TRUE(a.tree.same_as(b.tree));
  EXPECT_EQ(a.recovery.checkpoints, b.recovery.checkpoints);
  EXPECT_EQ(a.recovery.failures, b.recovery.failures);
  EXPECT_EQ(a.recovery.checkpoint_bytes, b.recovery.checkpoint_bytes);
  EXPECT_EQ(a.recovery.checkpoint_io_us, b.recovery.checkpoint_io_us);
  EXPECT_EQ(a.recovery.detect_us, b.recovery.detect_us);
  EXPECT_EQ(a.recovery.recovery_us, b.recovery.recovery_us);
  EXPECT_EQ(a.recovery.records_redistributed,
            b.recovery.records_redistributed);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].time, b.trace[i].time) << "event " << i;
    EXPECT_EQ(a.trace[i].kind, b.trace[i].kind) << "event " << i;
    EXPECT_EQ(a.trace[i].rank, b.trace[i].rank) << "event " << i;
    EXPECT_EQ(a.trace[i].words, b.trace[i].words) << "event " << i;
    EXPECT_EQ(a.trace[i].detail, b.trace[i].detail) << "event " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormulations, FtDeterminismTest,
                         ::testing::Values(Formulation::Sync,
                                           Formulation::Partitioned,
                                           Formulation::Hybrid),
                         [](const ::testing::TestParamInfo<Formulation>& i) {
                           return std::string(to_string(i.param));
                         });

// Multiple deaths across the run: every absorbed failure still yields the
// serial tree, down to a single survivor if need be.
TEST(FtEquivalence, TwoDeathsAtDifferentLevels) {
  const data::Dataset ds = workload();
  ParOptions opt;
  const ParResult serial = build_serial(ds, opt);
  opt.num_procs = 4;
  mpsim::FaultPlan plan;
  plan.fail_stop(1, 0).fail_stop(3, 2);
  opt.fault = &plan;
  for (const Formulation f : {Formulation::Sync, Formulation::Partitioned,
                              Formulation::Hybrid}) {
    SCOPED_TRACE(to_string(f));
    const ParResult res = build(f, ds, opt);
    EXPECT_TRUE(res.tree.same_as(serial.tree));
    // The level-0 death always fires (every formulation starts with the
    // whole machine in one group); the later one fires only if its victim
    // is still busy at that level.
    EXPECT_GE(res.recovery.failures, 1);
    EXPECT_LE(res.recovery.failures, 2);
    if (f == Formulation::Sync) EXPECT_EQ(res.recovery.failures, 2);
  }
}

}  // namespace
}  // namespace pdt::core
