// Machine-level fault semantics: charges on a dead rank raise RankFailure
// without advancing its clock, collectives detect a dead member by waiting
// out the cost-model timeout instead of hanging, absorbed deaths are
// silently excluded, stragglers scale every charge kind, and a collective
// over an unreachable rank fails fast with a stamp-stack post-mortem.
#include "mpsim/machine.hpp"

#include <gtest/gtest.h>

namespace pdt::mpsim {
namespace {

const std::vector<Rank> kAll{0, 1, 2, 3};

TEST(MachineFault, ChargeOnDeadRankThrowsWithoutAdvancingClock) {
  Machine m(4);
  FaultPlan plan;
  plan.fail_stop(2, 0);
  m.arm_faults(plan);
  m.fault()->enter_level(0, kAll);
  ASSERT_FALSE(m.fault()->alive(2));

  const Time before = m.clock(2);
  EXPECT_THROW(m.charge_compute(2, 10.0), RankFailure);
  EXPECT_THROW(m.charge_compute_time(2, 10.0), RankFailure);
  EXPECT_THROW(m.charge_comm(2, 5.0, 1.0, 1.0), RankFailure);
  EXPECT_THROW(m.charge_io(2, 5.0), RankFailure);
  EXPECT_DOUBLE_EQ(m.clock(2), before);
  EXPECT_DOUBLE_EQ(m.stats(2).compute_time, 0.0);

  try {
    m.charge_compute(2, 1.0);
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& rf) {
    EXPECT_EQ(rf.rank, 2);
    EXPECT_EQ(rf.level, 0);
    EXPECT_FALSE(rf.detected);
  }
}

TEST(MachineFault, BarrierDetectsDeadMemberAfterTimeout) {
  Machine m(4);
  m.trace().enable(true);
  FaultPlan plan;
  plan.fail_stop(1, 0);
  m.arm_faults(plan);
  m.fault()->enter_level(0, kAll);
  m.charge_compute_time(0, 100.0);  // survivor horizon

  try {
    m.barrier_over(kAll, "all-reduce");
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& rf) {
    EXPECT_EQ(rf.rank, 1);
    EXPECT_TRUE(rf.detected);
  }
  // Survivors waited out the heartbeat window past the horizon, as idle.
  const Time expected = 100.0 + m.cost().t_timeout;
  for (const Rank r : {0, 2, 3}) {
    EXPECT_DOUBLE_EQ(m.clock(r), expected) << "rank " << r;
  }
  EXPECT_DOUBLE_EQ(m.stats(2).idle_time, expected);
  EXPECT_DOUBLE_EQ(m.clock(1), 0.0);  // the dead rank's clock froze
  EXPECT_EQ(m.trace().count(EventKind::RankFail), 1u);
}

TEST(MachineFault, RecoveredDeathIsSilentlyExcluded) {
  Machine m(4);
  FaultPlan plan;
  plan.fail_stop(1, 0);
  m.arm_faults(plan);
  m.fault()->enter_level(0, kAll);
  m.fault()->mark_recovered(1);

  m.charge_compute_time(0, 50.0);
  EXPECT_NO_THROW(m.barrier_over(kAll, "barrier"));
  // A stale group listing the absorbed rank just proceeds without it: the
  // survivors synchronize at the plain horizon, no timeout is charged.
  for (const Rank r : {0, 2, 3}) {
    EXPECT_DOUBLE_EQ(m.clock(r), 50.0) << "rank " << r;
  }
  EXPECT_DOUBLE_EQ(m.clock(1), 0.0);
}

TEST(MachineFault, StragglerScalesEveryChargeKind) {
  Machine m(2);
  FaultPlan plan;
  plan.straggler(1, 0, 0, 5.0);
  m.arm_faults(plan);
  m.fault()->enter_level(0, {0, 1});

  m.charge_compute_time(1, 10.0);
  EXPECT_DOUBLE_EQ(m.clock(1), 50.0);
  m.charge_comm(1, 10.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(m.clock(1), 100.0);
  m.charge_io(1, 10.0);
  EXPECT_DOUBLE_EQ(m.clock(1), 150.0);
  // charge_compute delegates to charge_compute_time, so the factor is
  // applied exactly once.
  m.charge_compute(1, 10.0);
  EXPECT_DOUBLE_EQ(m.clock(1), 150.0 + 10.0 * m.cost().t_c * 5.0);

  m.charge_compute_time(0, 10.0);  // the healthy rank pays face value
  EXPECT_DOUBLE_EQ(m.clock(0), 10.0);
}

TEST(MachineFault, EmptyArmedPlanChargesAtFaultFreeRates) {
  Machine plain(2);
  Machine armed(2);
  armed.arm_faults(FaultPlan{});
  for (Machine* m : {&plain, &armed}) {
    m->charge_compute_time(0, 12.5);
    m->charge_comm(1, 3.0, 2.0, 2.0);
    m->barrier_over({0, 1});
  }
  EXPECT_DOUBLE_EQ(armed.clock(0), plain.clock(0));
  EXPECT_DOUBLE_EQ(armed.clock(1), plain.clock(1));
}

TEST(MachineDeadlock, MismatchedCollectiveFailsFastWithStamps) {
  Machine m(4);
  // Build up stamp history: two healthy collectives at level 3.
  for (const Rank r : kAll) m.set_rank_level(r, 3);
  m.barrier_over(kAll, "all-reduce");
  m.barrier_over(kAll, "record-shuffle");
  // Rank 3 leaves the algorithm (a mismatched collective: the others will
  // enter a broadcast it never reaches).
  m.mark_unreachable(3, "exited after rejoin");

  try {
    m.barrier_over(kAll, "broadcast");
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock"), std::string::npos);
    EXPECT_NE(msg.find("\"broadcast\""), std::string::npos);
    EXPECT_NE(msg.find("rank 3"), std::string::npos);
    EXPECT_NE(msg.find("UNREACHABLE: exited after rejoin"),
              std::string::npos);
    // The per-rank stamp stack names the collectives each member last
    // entered, with their levels — the post-mortem payload.
    EXPECT_NE(msg.find("all-reduce@level 3"), std::string::npos);
    EXPECT_NE(msg.find("record-shuffle@level 3"), std::string::npos);
  }
}

TEST(MachineDeadlock, CollectivesAvoidingUnreachableRankStillRun) {
  Machine m(4);
  m.mark_unreachable(3, "done");
  EXPECT_NO_THROW(m.barrier_over({0, 1, 2}, "barrier"));
  EXPECT_THROW(m.barrier_over(kAll, "barrier"), DeadlockError);
}

TEST(MachineDeadlock, ResetClearsUnreachableMarks) {
  Machine m(2);
  m.mark_unreachable(1, "gone");
  m.reset();
  EXPECT_NO_THROW(m.barrier_over({0, 1}, "barrier"));
}

}  // namespace
}  // namespace pdt::mpsim
