// FaultPlan / FaultInjector semantics: plans are declarative and seeded
// plans reproducible; deaths fire exactly once at their scheduled
// (rank, level) and only for group members; straggler and link factors
// are pure functions of (plan, current level).
#include "mpsim/fault.hpp"

#include <gtest/gtest.h>

namespace pdt::mpsim {
namespace {

TEST(FaultPlan, BuilderAccumulatesEntries) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.fail_stop(2, 1).straggler(1, 0, 3, 4.0).delay_link(0, 3, 2.5);
  EXPECT_FALSE(plan.empty());
  ASSERT_EQ(plan.fail_stops().size(), 1u);
  EXPECT_EQ(plan.fail_stops()[0].rank, 2);
  EXPECT_EQ(plan.fail_stops()[0].level, 1);
  ASSERT_EQ(plan.stragglers().size(), 1u);
  EXPECT_EQ(plan.stragglers()[0].rank, 1);
  EXPECT_EQ(plan.stragglers()[0].from_level, 0);
  EXPECT_EQ(plan.stragglers()[0].to_level, 3);
  EXPECT_DOUBLE_EQ(plan.stragglers()[0].factor, 4.0);
  ASSERT_EQ(plan.link_delays().size(), 1u);
  EXPECT_EQ(plan.link_delays()[0].a, 0);
  EXPECT_EQ(plan.link_delays()[0].b, 3);
  const std::string d = plan.describe();
  EXPECT_NE(d.find("rank 2"), std::string::npos);
  EXPECT_NE(d.find("level 1"), std::string::npos);
}

TEST(FaultPlan, BuildersRejectOutOfRangeValues) {
  // A silently-accepted bad plan would fire nothing and make a fault
  // test vacuously pass, so every builder validates eagerly.
  FaultPlan plan;
  EXPECT_THROW(plan.fail_stop(-1, 0), std::invalid_argument);
  EXPECT_THROW(plan.fail_stop(0, -1), std::invalid_argument);
  EXPECT_THROW(plan.straggler(-1, 0, 1, 2.0), std::invalid_argument);
  EXPECT_THROW(plan.straggler(0, -1, 1, 2.0), std::invalid_argument);
  EXPECT_THROW(plan.straggler(0, 3, 1, 2.0), std::invalid_argument);
  EXPECT_THROW(plan.straggler(0, 0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(plan.straggler(0, 0, 1, -2.0), std::invalid_argument);
  EXPECT_THROW(plan.delay_link(-1, 2, 2.0), std::invalid_argument);
  EXPECT_THROW(plan.delay_link(2, 2, 2.0), std::invalid_argument);
  EXPECT_THROW(plan.delay_link(0, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(plan.corrupt_link(-1, 2, 0, 1), std::invalid_argument);
  EXPECT_THROW(plan.corrupt_link(1, 1, 0, 1), std::invalid_argument);
  EXPECT_THROW(plan.corrupt_link(0, 2, -1, 1), std::invalid_argument);
  EXPECT_THROW(plan.corrupt_link(0, 2, 0, 0), std::invalid_argument);
  EXPECT_THROW(plan.transient_timeout(-1, 0, 1), std::invalid_argument);
  EXPECT_THROW(plan.transient_timeout(0, -1, 1), std::invalid_argument);
  EXPECT_THROW(plan.transient_timeout(0, 0, 0), std::invalid_argument);
  // A rejected call leaves the plan untouched.
  EXPECT_TRUE(plan.empty());
  // The message names the module and the offending field.
  try {
    plan.transient_timeout(0, 0, -5);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find("FaultPlan:"), 0u) << what;
    EXPECT_NE(what.find("count"), std::string::npos) << what;
  }
}

TEST(FaultPlan, DescribeCoversEveryFaultKind) {
  EXPECT_EQ(FaultPlan{}.describe(), "no faults");
  FaultPlan plan;
  plan.fail_stop(2, 1)
      .straggler(1, 0, 3, 4.0)
      .delay_link(0, 3, 2.5)
      .corrupt_link(0, 2, 1, 3)
      .transient_timeout(3, 2, 2);
  const std::string d = plan.describe();
  EXPECT_NE(d.find("fail-stop rank 2 @ level 1"), std::string::npos) << d;
  EXPECT_NE(d.find("straggler rank 1"), std::string::npos) << d;
  EXPECT_NE(d.find("link 0<->3"), std::string::npos) << d;
  EXPECT_NE(d.find("corrupt link 0<->2 @ level 1 x3"), std::string::npos)
      << d;
  EXPECT_NE(d.find("transient timeout rank 3 @ level 2 x2"),
            std::string::npos)
      << d;
}

TEST(FaultPlan, RandomIsDeterministicAndInRange) {
  const FaultPlan a = FaultPlan::random(42, 8, 6);
  const FaultPlan b = FaultPlan::random(42, 8, 6);
  EXPECT_EQ(a.describe(), b.describe());
  ASSERT_EQ(a.fail_stops().size(), b.fail_stops().size());
  for (std::size_t i = 0; i < a.fail_stops().size(); ++i) {
    EXPECT_EQ(a.fail_stops()[i].rank, b.fail_stops()[i].rank);
    EXPECT_EQ(a.fail_stops()[i].level, b.fail_stops()[i].level);
  }
  ASSERT_FALSE(a.fail_stops().empty());
  for (const FailStop& fs : a.fail_stops()) {
    EXPECT_GE(fs.rank, 0);
    EXPECT_LT(fs.rank, 8);
    EXPECT_GE(fs.level, 0);
    EXPECT_LE(fs.level, 6);
  }
  for (const Straggler& s : a.stragglers()) {
    EXPECT_GE(s.rank, 0);
    EXPECT_LT(s.rank, 8);
    EXPECT_LE(s.from_level, s.to_level);
    EXPECT_GT(s.factor, 1.0);
  }
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  // Over a handful of seeds at least one must differ from seed 42's plan
  // (identical draws for all five would mean the stream ignores the seed).
  const std::string base = FaultPlan::random(42, 8, 6).describe();
  bool any_different = false;
  for (const std::uint64_t seed : {43ull, 44ull, 45ull, 46ull, 47ull}) {
    if (FaultPlan::random(seed, 8, 6).describe() != base) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(FaultInjector, DeathFiresOnceAtScheduledLevel) {
  FaultPlan plan;
  plan.fail_stop(2, 1);
  FaultInjector inj(plan, 4);
  const std::vector<Rank> all{0, 1, 2, 3};
  EXPECT_EQ(inj.num_alive(), 4);
  EXPECT_EQ(inj.deaths_fired(), 0);

  inj.enter_level(0, all);  // wrong level: nothing fires
  EXPECT_TRUE(inj.alive(2));

  inj.enter_level(1, all);
  EXPECT_FALSE(inj.alive(2));
  EXPECT_EQ(inj.num_alive(), 3);
  EXPECT_EQ(inj.deaths_fired(), 1);
  EXPECT_EQ(inj.alive_ranks(), (std::vector<Rank>{0, 1, 3}));

  inj.enter_level(1, all);  // already fired: no double-death
  EXPECT_EQ(inj.deaths_fired(), 1);

  EXPECT_FALSE(inj.recovered(2));
  inj.mark_recovered(2);
  EXPECT_TRUE(inj.recovered(2));

  inj.reset();
  EXPECT_TRUE(inj.alive(2));
  EXPECT_FALSE(inj.recovered(2));
  EXPECT_EQ(inj.deaths_fired(), 0);
  EXPECT_EQ(inj.num_alive(), 4);
}

TEST(FaultInjector, DeathRequiresGroupMembership) {
  FaultPlan plan;
  plan.fail_stop(2, 1);
  FaultInjector inj(plan, 4);
  inj.enter_level(1, {0, 1});  // rank 2 is in another partition
  EXPECT_TRUE(inj.alive(2));
  inj.enter_level(1, {2, 3});
  EXPECT_FALSE(inj.alive(2));
}

TEST(FaultInjector, StragglerWindowIsLevelScoped) {
  FaultPlan plan;
  plan.straggler(1, 2, 4, 3.0);
  FaultInjector inj(plan, 4);
  const std::vector<Rank> all{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(inj.time_factor(1), 1.0);  // before any enter_level
  inj.enter_level(2, all);
  EXPECT_DOUBLE_EQ(inj.time_factor(1), 3.0);
  EXPECT_DOUBLE_EQ(inj.time_factor(0), 1.0);
  inj.enter_level(4, all);
  EXPECT_DOUBLE_EQ(inj.time_factor(1), 3.0);  // inclusive upper bound
  inj.enter_level(5, all);
  EXPECT_DOUBLE_EQ(inj.time_factor(1), 1.0);  // window closed
}

TEST(FaultInjector, LinkFactorIsSymmetric) {
  FaultPlan plan;
  plan.delay_link(0, 3, 2.0);
  FaultInjector inj(plan, 4);
  EXPECT_DOUBLE_EQ(inj.link_factor(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(inj.link_factor(3, 0), 2.0);
  EXPECT_DOUBLE_EQ(inj.link_factor(0, 1), 1.0);
}

}  // namespace
}  // namespace pdt::mpsim
