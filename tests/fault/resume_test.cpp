// Crash-restart resume: for every formulation and machine size, a run
// restarted from any intermediate durable epoch must finish with a tree
// bit-identical to the uninterrupted run's (and to the serial tree) —
// the DESIGN.md §13 acceptance criterion. Corrupt or truncated epochs
// are skipped back, never trusted; incompatible checkpoints (different
// formulation, P, seed) are a caller bug and throw.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/ckpt.hpp"
#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"

namespace pdt::core {
namespace {

namespace fs = std::filesystem;

data::Dataset workload() {
  return data::discretize_uniform(
      data::quest_generate(2000, {.function = 2, .seed = 3}),
      data::quest_paper_bins());
}

fs::path scratch_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("resume_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Newest epoch file in `dir` (the one a skip-back test corrupts).
fs::path newest_epoch_file(const fs::path& dir) {
  const CheckpointStore store(dir.string(), 1000);
  const int e = store.latest_epoch();
  EXPECT_GE(e, 0);
  return store.epoch_path(e);
}

struct ResumeConfig {
  Formulation formulation;
  int procs;
  double cut_frac;  // fraction of the committed epochs to resume from
};

std::string resume_name(const ::testing::TestParamInfo<ResumeConfig>& info) {
  const ResumeConfig& c = info.param;
  std::string s = to_string(c.formulation);
  s += "_P" + std::to_string(c.procs);
  s += "_cut" + std::to_string(static_cast<int>(c.cut_frac * 100));
  return s;
}

class ResumeEquivalenceTest : public ::testing::TestWithParam<ResumeConfig> {};

TEST_P(ResumeEquivalenceTest, ResumedTreeEqualsUninterruptedTree) {
  const ResumeConfig& c = GetParam();
  const data::Dataset ds = workload();
  const fs::path dir =
      scratch_dir(resume_name({GetParam(), /*index=*/0}));

  ParOptions opt;
  opt.num_procs = c.procs;
  opt.ckpt_dir = dir.string();
  opt.ckpt_keep = 1000;  // keep every epoch so any cut is resumable
  const ParResult full = build(c.formulation, ds, opt);
  const ParResult serial = build_serial(ds, ParOptions{});
  ASSERT_TRUE(full.tree.same_as(serial.tree));
  ASSERT_GT(full.recovery.durable_checkpoints, 0);
  EXPECT_GT(full.recovery.durable_bytes, 0);
  EXPECT_GT(full.recovery.durable_io_us, 0.0);

  // Resume bounded at an intermediate epoch: the loader ignores later
  // files, which is exactly the on-disk state a process killed right
  // after that epoch's commit would leave behind.
  const int last = full.recovery.durable_checkpoints - 1;
  const int cut = static_cast<int>(c.cut_frac * last);
  ParOptions ropt;
  ropt.num_procs = c.procs;
  ropt.ckpt_dir = dir.string();
  ropt.ckpt_keep = 1000;
  ropt.resume = true;
  ropt.resume_epoch = cut;
  const ParResult resumed = build(c.formulation, ds, ropt);

  EXPECT_TRUE(resumed.tree.same_as(full.tree));
  EXPECT_TRUE(resumed.tree.same_as(serial.tree));
  EXPECT_TRUE(resumed.recovery.resumed);
  EXPECT_EQ(resumed.recovery.resume_epoch, cut);
  EXPECT_EQ(resumed.recovery.resume_skipped, 0);
  EXPECT_GT(resumed.recovery.resume_records, 0);
  EXPECT_GT(resumed.recovery.resume_io_us, 0.0);
  fs::remove_all(dir);
}

std::vector<ResumeConfig> make_resume_configs() {
  std::vector<ResumeConfig> out;
  for (const Formulation f :
       {Formulation::Sync, Formulation::Partitioned, Formulation::Hybrid}) {
    for (const int p : {4, 8}) {
      // Resume from the very first epoch, mid-run, and near the end.
      for (const double frac : {0.0, 0.5, 0.9}) {
        out.push_back({f, p, frac});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(KillAndResume, ResumeEquivalenceTest,
                         ::testing::ValuesIn(make_resume_configs()),
                         resume_name);

TEST(Resume, CorruptNewestEpochSkipsBackAndStillMatches) {
  const data::Dataset ds = workload();
  const fs::path dir = scratch_dir("corrupt_skip_back");
  ParOptions opt;
  opt.num_procs = 4;
  opt.ckpt_dir = dir.string();
  opt.ckpt_keep = 1000;
  const ParResult full = build(Formulation::Sync, ds, opt);
  ASSERT_GT(full.recovery.durable_checkpoints, 1);

  // Tear the newest epoch mid-file: resume must reject it, fall back to
  // the previous epoch, and still grow the identical tree.
  const fs::path victim = newest_epoch_file(dir);
  std::string bytes = slurp(victim);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  spit(victim, bytes);

  ParOptions ropt = opt;
  ropt.resume = true;
  const ParResult resumed = build(Formulation::Sync, ds, ropt);
  EXPECT_TRUE(resumed.tree.same_as(full.tree));
  EXPECT_TRUE(resumed.recovery.resumed);
  EXPECT_EQ(resumed.recovery.resume_skipped, 1);
  // The first run committed epochs 0..n-1; the torn newest (n-1) was
  // rejected, so the resume point is the one before it.
  EXPECT_EQ(resumed.recovery.resume_epoch,
            full.recovery.durable_checkpoints - 2);
  fs::remove_all(dir);
}

TEST(Resume, TruncatedNewestEpochSkipsBack) {
  const data::Dataset ds = workload();
  const fs::path dir = scratch_dir("truncate_skip_back");
  ParOptions opt;
  opt.num_procs = 4;
  opt.ckpt_dir = dir.string();
  opt.ckpt_keep = 1000;
  const ParResult full = build(Formulation::Partitioned, ds, opt);
  ASSERT_GT(full.recovery.durable_checkpoints, 1);

  const fs::path victim = newest_epoch_file(dir);
  spit(victim, slurp(victim).substr(0, 200));  // torn write

  ParOptions ropt = opt;
  ropt.resume = true;
  const ParResult resumed = build(Formulation::Partitioned, ds, ropt);
  EXPECT_TRUE(resumed.tree.same_as(full.tree));
  EXPECT_TRUE(resumed.recovery.resumed);
  EXPECT_EQ(resumed.recovery.resume_skipped, 1);
  fs::remove_all(dir);
}

TEST(Resume, NoValidEpochMeansColdStartNotCrash) {
  const data::Dataset ds = workload();
  const fs::path dir = scratch_dir("all_invalid");
  ParOptions opt;
  opt.num_procs = 4;
  opt.ckpt_dir = dir.string();
  opt.ckpt_keep = 1000;
  const ParResult full = build(Formulation::Hybrid, ds, opt);
  ASSERT_GT(full.recovery.durable_checkpoints, 0);

  // Corrupt every epoch: resume finds nothing trustworthy and starts
  // from scratch — same tree, resumed=false, every rejection counted.
  const CheckpointStore store(dir.string(), 1000);
  int epochs = 0;
  for (int e = 0; e <= store.latest_epoch(); ++e) {
    if (!fs::exists(store.epoch_path(e))) continue;
    spit(store.epoch_path(e), "pdt-ckpt-v1\nnot a checkpoint\n");
    ++epochs;
  }
  ParOptions ropt = opt;
  ropt.resume = true;
  const ParResult resumed = build(Formulation::Hybrid, ds, ropt);
  EXPECT_TRUE(resumed.tree.same_as(full.tree));
  EXPECT_FALSE(resumed.recovery.resumed);
  EXPECT_EQ(resumed.recovery.resume_skipped, epochs);
  fs::remove_all(dir);
}

TEST(Resume, ResumeOffIgnoresExistingEpochs) {
  const data::Dataset ds = workload();
  const fs::path dir = scratch_dir("resume_off");
  ParOptions opt;
  opt.num_procs = 4;
  opt.ckpt_dir = dir.string();
  opt.ckpt_keep = 1000;
  const ParResult first = build(Formulation::Sync, ds, opt);
  ASSERT_GT(first.recovery.durable_checkpoints, 0);
  // Same directory, resume still off: a fresh run that only writes.
  const ParResult second = build(Formulation::Sync, ds, opt);
  EXPECT_FALSE(second.recovery.resumed);
  EXPECT_TRUE(second.tree.same_as(first.tree));
  fs::remove_all(dir);
}

TEST(Resume, IncompatibleCheckpointIsACallerBugAndThrows) {
  const data::Dataset ds = workload();
  const fs::path dir = scratch_dir("incompatible");
  ParOptions opt;
  opt.num_procs = 4;
  opt.ckpt_dir = dir.string();
  opt.ckpt_keep = 1000;
  (void)build(Formulation::Sync, ds, opt);

  // Valid checkpoint, wrong run: corruption is skipped silently, but a
  // compatibility mismatch must fail loudly — resuming a sync P=4 run
  // as hybrid or P=8 or a different seed would grow garbage.
  ParOptions wrong_f = opt;
  wrong_f.resume = true;
  EXPECT_THROW((void)build(Formulation::Hybrid, ds, wrong_f),
               std::runtime_error);

  ParOptions wrong_p = opt;
  wrong_p.resume = true;
  wrong_p.num_procs = 8;
  EXPECT_THROW((void)build(Formulation::Sync, ds, wrong_p),
               std::runtime_error);

  ParOptions wrong_seed = opt;
  wrong_seed.resume = true;
  wrong_seed.seed = 12345;
  EXPECT_THROW((void)build(Formulation::Sync, ds, wrong_seed),
               std::runtime_error);
  fs::remove_all(dir);
}

TEST(Resume, DurableCheckpointsOffByDefault) {
  const data::Dataset ds = workload();
  ParOptions opt;
  opt.num_procs = 4;
  const ParResult res = build(Formulation::Sync, ds, opt);
  EXPECT_EQ(res.recovery.durable_checkpoints, 0);
  EXPECT_EQ(res.recovery.durable_bytes, 0);
  EXPECT_FALSE(res.recovery.resumed);
}

}  // namespace
}  // namespace pdt::core
