// pdt-ckpt-v1 durability semantics: the on-disk format round-trips
// exactly, every torn/flipped/truncated byte is detected and rejected,
// the store skips back over invalid epochs instead of trusting them,
// the crash hook leaves only committed epochs behind, and AtomicFile's
// commit really is a commit (reopen sees the exact bytes, no temp
// droppings left).
#include "core/ckpt.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "dtree/serialize.hpp"
#include "dtree/sha256.hpp"
#include "obs/atomic_file.hpp"

namespace pdt::core {
namespace {

namespace fs = std::filesystem;

data::Dataset workload() {
  return data::discretize_uniform(
      data::quest_generate(500, {.function = 1, .seed = 5}),
      data::quest_paper_bins());
}

/// A fresh scratch directory under the gtest temp root, unique per test.
fs::path scratch_dir(const char* tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A snapshot whose tree section holds a genuinely grown tree (so the
/// digest binding is the real model digest, not a toy string).
RunSnapshot sample_snapshot() {
  const data::Dataset ds = workload();
  ParOptions opt;
  const ParResult serial = build_serial(ds, opt);

  RunSnapshot snap;
  snap.formulation = "sync";
  snap.epoch = 0;
  snap.num_procs = 2;
  snap.seed = 7;
  snap.levels = 3;
  snap.partition_splits = 1;
  snap.rejoins = 2;
  snap.records_moved = 123;
  snap.histogram_words = 4567.375;
  snap.record_words = 9.0;
  snap.cost = mpsim::CostModel::sp2();
  snap.fingerprint = "g++ 13 | deadbeef+dirty | testhost";
  snap.tree_json = dtree::canonical_nodes_json(serial.tree);
  snap.tree_digest = dtree::sha256_hex(snap.tree_json);

  CkptPart part;
  part.ranks = {0, 1};
  part.acc_comm = 12.5;
  NodeWork nw;
  nw.node_id = 0;
  nw.local_rows = {{0, 2, 4}, {1, 3}};
  part.frontier.push_back(nw);
  snap.parts.push_back(part);
  snap.idle.push_back({1});
  snap.mem.resize(2);
  snap.mem[0].live_total = 640;
  snap.mem[0].peak_total = 1024;
  return snap;
}

TEST(Ckpt, TextRoundTripsExactly) {
  const RunSnapshot snap = sample_snapshot();
  const std::string text = ckpt_text(snap);

  RunSnapshot back;
  ASSERT_EQ(parse_ckpt(text, &back), "");
  EXPECT_EQ(back.formulation, snap.formulation);
  EXPECT_EQ(back.epoch, snap.epoch);
  EXPECT_EQ(back.num_procs, snap.num_procs);
  EXPECT_EQ(back.seed, snap.seed);
  EXPECT_EQ(back.levels, snap.levels);
  EXPECT_EQ(back.partition_splits, snap.partition_splits);
  EXPECT_EQ(back.rejoins, snap.rejoins);
  EXPECT_EQ(back.records_moved, snap.records_moved);
  // Exact, not approximate: hexfloat rendering must restore the bits.
  EXPECT_EQ(back.histogram_words, snap.histogram_words);
  EXPECT_EQ(back.record_words, snap.record_words);
  EXPECT_EQ(back.cost.t_s, snap.cost.t_s);
  EXPECT_EQ(back.cost.t_w, snap.cost.t_w);
  EXPECT_EQ(back.cost.t_c, snap.cost.t_c);
  EXPECT_EQ(back.cost.t_io, snap.cost.t_io);
  EXPECT_EQ(back.cost.t_timeout, snap.cost.t_timeout);
  EXPECT_EQ(back.fingerprint, snap.fingerprint);
  EXPECT_EQ(back.tree_digest, snap.tree_digest);
  EXPECT_EQ(back.tree_json, snap.tree_json);
  ASSERT_EQ(back.parts.size(), 1u);
  EXPECT_EQ(back.parts[0].ranks, snap.parts[0].ranks);
  EXPECT_EQ(back.parts[0].acc_comm, snap.parts[0].acc_comm);
  ASSERT_EQ(back.parts[0].frontier.size(), 1u);
  EXPECT_EQ(back.parts[0].frontier[0].node_id, 0);
  EXPECT_EQ(back.parts[0].frontier[0].local_rows,
            snap.parts[0].frontier[0].local_rows);
  EXPECT_EQ(back.idle, snap.idle);
  ASSERT_EQ(back.mem.size(), 2u);
  EXPECT_EQ(back.mem[0].live_total, 640);
  EXPECT_EQ(back.mem[0].peak_total, 1024);
}

TEST(Ckpt, HeaderTamperIsRejected) {
  const std::string text = ckpt_text(sample_snapshot());
  RunSnapshot out;
  EXPECT_NE(parse_ckpt("pdt-ckpt-v2\n" + text.substr(text.find('\n') + 1),
                       &out),
            "");
  EXPECT_NE(parse_ckpt("", &out), "");
  EXPECT_NE(parse_ckpt("pdt-ckpt-v1\n", &out), "");
  EXPECT_NE(parse_ckpt("pdt-ckpt-v1\nepoch -3\nsections 3\n", &out), "");
  // Trailing garbage after the last section is torn-write evidence too.
  EXPECT_NE(parse_ckpt(text + "x", &out), "");
}

TEST(Ckpt, EveryByteFlipIsDetected) {
  const std::string text = ckpt_text(sample_snapshot());
  // Sampled positions across the whole file: header lines, section
  // headers, every payload. A flip anywhere must fail the parse — the
  // per-section digests leave no unauthenticated byte.
  for (std::size_t pos = 0; pos < text.size(); pos += 7) {
    std::string bad = text;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x01);
    RunSnapshot out;
    EXPECT_NE(parse_ckpt(bad, &out), "") << "flip at byte " << pos;
  }
}

TEST(Ckpt, EveryTruncationIsDetected) {
  const std::string text = ckpt_text(sample_snapshot());
  for (std::size_t len = 0; len < text.size(); len += 13) {
    RunSnapshot out;
    EXPECT_NE(parse_ckpt(text.substr(0, len), &out), "")
        << "truncated to " << len << " bytes";
  }
}

TEST(Ckpt, TreeSectionMustMatchMetaDigest) {
  // A self-consistent tree section (its own sha is fine) that does not
  // match the digest the meta section names: the cross-section binding
  // must reject it — swapping tree bytes between epochs is corruption.
  RunSnapshot snap = sample_snapshot();
  snap.tree_digest = dtree::sha256_hex("some other tree");
  RunSnapshot out;
  EXPECT_EQ(parse_ckpt(ckpt_text(snap), &out),
            "tree section does not match meta tree_digest");
}

TEST(CheckpointStore, SavePrunesToKeepAndLoadsNewest) {
  const fs::path dir = scratch_dir("ckpt_store_prune");
  CheckpointStore store(dir.string(), /*keep=*/2);
  RunSnapshot snap = sample_snapshot();
  for (int e = 0; e < 4; ++e) {
    snap.epoch = e;
    ASSERT_TRUE(store.save(snap));
  }
  EXPECT_FALSE(fs::exists(store.epoch_path(0)));
  EXPECT_FALSE(fs::exists(store.epoch_path(1)));
  EXPECT_TRUE(fs::exists(store.epoch_path(2)));
  EXPECT_TRUE(fs::exists(store.epoch_path(3)));
  EXPECT_EQ(store.latest_epoch(), 3);

  RunSnapshot out;
  int skipped = -1;
  std::string err;
  EXPECT_EQ(store.load_latest(&out, /*max_epoch=*/-1, &skipped, &err), 3);
  EXPECT_EQ(out.epoch, 3);
  EXPECT_EQ(skipped, 0);
  // Bounded resume: a max_epoch cut makes later epochs invisible — the
  // exact on-disk state a process killed right after that commit leaves.
  EXPECT_EQ(store.load_latest(&out, /*max_epoch=*/2, &skipped, &err), 2);
  EXPECT_EQ(out.epoch, 2);
}

TEST(CheckpointStore, CorruptNewestEpochIsSkippedNotTrusted) {
  const fs::path dir = scratch_dir("ckpt_store_corrupt");
  CheckpointStore store(dir.string(), /*keep=*/10);
  RunSnapshot snap = sample_snapshot();
  for (int e = 0; e < 3; ++e) {
    snap.epoch = e;
    ASSERT_TRUE(store.save(snap));
  }
  // Flip one byte mid-file in the newest epoch, truncate the next one.
  std::string bytes = slurp(store.epoch_path(2));
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  spit(store.epoch_path(2), bytes);
  spit(store.epoch_path(1), slurp(store.epoch_path(1)).substr(0, 100));

  RunSnapshot out;
  int skipped = 0;
  std::string err;
  EXPECT_EQ(store.load_latest(&out, -1, &skipped, &err), 0);
  EXPECT_EQ(out.epoch, 0);
  EXPECT_EQ(skipped, 2);
  EXPECT_NE(err.find("ckpt-2.pdt"), std::string::npos) << err;

  // Corrupt the last survivor too: nothing validates, nothing loads —
  // and no exception either, corruption is a skip, never a crash.
  spit(store.epoch_path(0), "pdt-ckpt-v1\ngarbage");
  EXPECT_EQ(store.load_latest(&out, -1, &skipped, &err), -1);
  EXPECT_EQ(skipped, 3);
}

TEST(CheckpointStore, EpochFieldMustAgreeWithFileName) {
  const fs::path dir = scratch_dir("ckpt_store_rename");
  CheckpointStore store(dir.string(), /*keep=*/10);
  RunSnapshot snap = sample_snapshot();
  snap.epoch = 0;
  ASSERT_TRUE(store.save(snap));
  // A valid epoch-0 file masquerading as epoch 5 (e.g. a bad manual
  // copy): internally consistent, but the store must not trust it.
  fs::copy_file(store.epoch_path(0), store.epoch_path(5));
  RunSnapshot out;
  int skipped = 0;
  std::string err;
  EXPECT_EQ(store.load_latest(&out, -1, &skipped, &err), 0);
  EXPECT_EQ(skipped, 1);
  EXPECT_NE(err.find("disagrees"), std::string::npos) << err;
}

TEST(CheckpointStore, ManifestIsAdvisoryOnly) {
  const fs::path dir = scratch_dir("ckpt_store_manifest");
  CheckpointStore store(dir.string(), /*keep=*/10);
  RunSnapshot snap = sample_snapshot();
  snap.epoch = 0;
  ASSERT_TRUE(store.save(snap));
  // Point the manifest at an epoch that does not exist: the loader must
  // glob the real files and ignore the lie entirely.
  spit(dir / "MANIFEST",
       "pdt-ckpt-manifest-v1\nlatest 99\nfile ckpt-99.pdt\n");
  RunSnapshot out;
  int skipped = 0;
  std::string err;
  EXPECT_EQ(store.load_latest(&out, -1, &skipped, &err), 0);
  EXPECT_EQ(skipped, 0);
}

// Satellite (a): AtomicFile's commit is durable — the committed path
// reopens with the exact bytes, and neither success nor abandonment
// leaves temp files behind.
TEST(AtomicFile, CommitThenReopenSeesExactBytes) {
  const fs::path dir = scratch_dir("atomic_commit");
  const fs::path target = dir / "out.bin";
  const std::string payload = "line one\nbinary \x01\x02\x03 tail\n";
  {
    obs::AtomicFile f(target.string());
    ASSERT_TRUE(f.ok());
    f.stream().write(payload.data(),
                     static_cast<std::streamsize>(payload.size()));
    EXPECT_TRUE(f.commit());
    EXPECT_TRUE(f.commit());  // idempotent
  }
  EXPECT_EQ(slurp(target), payload);
  int entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1);  // only the committed file, no temp droppings
}

TEST(AtomicFile, AbandonedWriteLeavesNothing) {
  const fs::path dir = scratch_dir("atomic_abandon");
  const fs::path target = dir / "out.bin";
  {
    obs::AtomicFile f(target.string());
    ASSERT_TRUE(f.ok());
    f.stream() << "never committed";
  }
  EXPECT_FALSE(fs::exists(target));
  EXPECT_TRUE(fs::is_empty(dir));
}

// The ckpt_crash_epoch hook _Exit(137)s right after the named epoch
// commits — a SIGKILL stand-in. The child shares our filesystem, so the
// parent can verify exactly what a killed process leaves behind: every
// committed epoch valid, nothing after the crash epoch.
TEST(CkptCrashDeathTest, CrashAfterCommitLeavesOnlyValidEpochs) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const fs::path dir = scratch_dir("ckpt_crash");
  const data::Dataset ds = workload();
  ParOptions opt;
  opt.num_procs = 4;
  opt.ckpt_dir = dir.string();
  opt.ckpt_keep = 1000;
  opt.ckpt_crash_epoch = 1;
  EXPECT_EXIT((void)build(Formulation::Sync, ds, opt),
              ::testing::ExitedWithCode(137), "");

  CheckpointStore store(dir.string(), 1000);
  EXPECT_EQ(store.latest_epoch(), 1);
  RunSnapshot out;
  int skipped = -1;
  std::string err;
  EXPECT_EQ(store.load_latest(&out, -1, &skipped, &err), 1);
  EXPECT_EQ(skipped, 0) << err;
  EXPECT_EQ(out.formulation, "sync");
  EXPECT_EQ(out.num_procs, 4);
}

}  // namespace
}  // namespace pdt::core
