// Transient-fault retry with exponential backoff: admit_collective's
// arithmetic (attempt i burns a 2^i detection window charged idle to
// every member), the accrual handed to the comm ledger, escalation to a
// detected fail-stop when the budget outlives kMaxRetryAttempts, and —
// at the formulation level — convergence to the fault-free tree with
// the retry cost visible in RecoveryStats, the ledger and the trace.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "mpsim/comm_ledger.hpp"
#include "mpsim/fault.hpp"
#include "mpsim/machine.hpp"
#include "obs/observability.hpp"

namespace pdt::mpsim {
namespace {

const std::vector<Rank> kAll{0, 1, 2, 3};

TEST(Retry, TransientTimeoutHealsWithExponentialBackoff) {
  Machine m(4);
  const Time T = m.cost().t_timeout;
  FaultPlan plan;
  plan.transient_timeout(/*rank=*/1, /*level=*/0, /*count=*/2);
  m.arm_faults(plan);
  m.fault()->enter_level(0, kAll);
  m.wait_until(0, 100.0);  // stagger one clock so the horizon is 100
  m.trace().enable(true);

  m.admit_collective(kAll, "all-reduce");

  // Attempt 0 waits one window to 100+T, attempt 1 waits 2^1 windows on
  // top: every member lands at exactly 100 + 3T.
  for (const Rank r : kAll) EXPECT_EQ(m.clock(r), 100.0 + 3.0 * T) << r;
  EXPECT_EQ(m.retries(), 2u);
  // Each attempt charges its window to all 4 members: (1 + 2) * T * 4.
  EXPECT_EQ(m.retry_us(), 12.0 * T);
  EXPECT_EQ(m.escalations(), 0);
  EXPECT_TRUE(m.fault()->alive(1));  // healed, not killed

  std::vector<TraceEvent> retries;
  for (const TraceEvent& ev : m.trace().events()) {
    if (ev.kind == EventKind::Retry) retries.push_back(ev);
  }
  ASSERT_EQ(retries.size(), 2u);
  EXPECT_EQ(retries[0].rank, 1);
  EXPECT_EQ(retries[0].words, 1.0);  // backoff multiplier rides in words
  EXPECT_NE(retries[0].detail.find("attempt 1 of all-reduce"),
            std::string::npos);
  EXPECT_NE(retries[0].detail.find("backoff x1"), std::string::npos);
  EXPECT_EQ(retries[1].words, 2.0);
  EXPECT_NE(retries[1].detail.find("backoff x2"), std::string::npos);

  // Budget spent, fault healed: the next collective is clean.
  const Time before = m.clock(0);
  m.admit_collective(kAll, "all-reduce");
  EXPECT_EQ(m.clock(0), before);
  EXPECT_EQ(m.retries(), 2u);
}

TEST(Retry, AccrualIsHandedOverOnce) {
  Machine m(4);
  const Time T = m.cost().t_timeout;
  FaultPlan plan;
  plan.transient_timeout(1, 0, 2);
  m.arm_faults(plan);
  m.fault()->enter_level(0, kAll);
  m.admit_collective(kAll, "barrier");

  // The pending accrual is what the next ledger entry absorbs; taking
  // it clears it, so retry cost is attributed exactly once.
  const Machine::RetryAccrual acc = m.take_retry_accrual();
  EXPECT_EQ(acc.us, 12.0 * T);
  EXPECT_EQ(acc.attempts, 2u);
  const Machine::RetryAccrual again = m.take_retry_accrual();
  EXPECT_EQ(again.us, 0.0);
  EXPECT_EQ(again.attempts, 0u);
  // Run-cumulative counters are unaffected by the take.
  EXPECT_EQ(m.retries(), 2u);
  EXPECT_EQ(m.retry_us(), 12.0 * T);
}

TEST(Retry, CorruptLinkBlamesTheFlakyNicOwner) {
  Machine m(4);
  FaultPlan plan;
  plan.corrupt_link(/*a=*/0, /*b=*/2, /*level=*/0, /*count=*/1);
  m.arm_faults(plan);
  m.fault()->enter_level(0, kAll);
  m.trace().enable(true);

  // A collective without both endpoints never trips the checksum.
  m.admit_collective({1, 3}, "all-reduce");
  EXPECT_EQ(m.retries(), 0u);

  m.admit_collective(kAll, "all-reduce");
  EXPECT_EQ(m.retries(), 1u);
  ASSERT_EQ(m.trace().events().size(), 1u);
  EXPECT_EQ(m.trace().events()[0].kind, EventKind::Retry);
  EXPECT_EQ(m.trace().events()[0].rank, 0);  // rank a owns the flaky NIC
}

TEST(Retry, ExhaustedBudgetEscalatesToDetectedFailStop) {
  Machine m(4);
  FaultPlan plan;
  // More failures queued than the retry budget tolerates.
  plan.transient_timeout(2, 0, Machine::kMaxRetryAttempts + 2);
  m.arm_faults(plan);
  m.fault()->enter_level(0, kAll);

  try {
    m.admit_collective(kAll, "record-shuffle");
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& e) {
    EXPECT_EQ(e.rank, 2);
    // The backoff windows already charged the survivors: the recovery
    // path must not charge the detection timeout again.
    EXPECT_TRUE(e.detected);
  }
  EXPECT_EQ(m.retries(), static_cast<std::uint64_t>(Machine::kMaxRetryAttempts));
  EXPECT_EQ(m.escalations(), 1);
  EXPECT_FALSE(m.fault()->alive(2));
}

TEST(Retry, DisarmedAndSingletonCollectivesAreNoOps) {
  Machine m(4);
  m.admit_collective(kAll, "barrier");  // no plan armed
  EXPECT_EQ(m.retries(), 0u);

  FaultPlan plan;
  plan.transient_timeout(1, 0, 1);
  m.arm_faults(plan);
  m.fault()->enter_level(0, kAll);
  m.admit_collective({1}, "barrier");  // singleton: nothing to retry
  EXPECT_EQ(m.retries(), 0u);
  for (const Rank r : kAll) EXPECT_EQ(m.clock(r), 0.0);
}

}  // namespace
}  // namespace pdt::mpsim

namespace pdt::core {
namespace {

data::Dataset workload() {
  return data::discretize_uniform(
      data::quest_generate(2000, {.function = 2, .seed = 3}),
      data::quest_paper_bins());
}

// Transient faults never change the tree — only the clocks. Every
// formulation must converge to the serial digest with the retry cost
// accounted in RecoveryStats, attributed in the comm ledger, and
// visible as Retry events in the trace.
class RetryConvergenceTest : public ::testing::TestWithParam<Formulation> {};

TEST_P(RetryConvergenceTest, TransientRunConvergesToFaultFreeDigest) {
  const data::Dataset ds = workload();
  const ParResult serial = build_serial(ds, ParOptions{});

  ParOptions clean;
  clean.num_procs = 4;
  const ParResult fault_free = build(GetParam(), ds, clean);

  // Level 0 keeps the whole machine in one group in every formulation,
  // so the transient deterministically fires there.
  mpsim::FaultPlan plan;
  plan.transient_timeout(/*rank=*/1, /*level=*/0, /*count=*/2);
  plan.corrupt_link(/*a=*/0, /*b=*/3, /*level=*/1, /*count=*/1);
  obs::Observability obs;
  ParOptions opt;
  opt.num_procs = 4;
  opt.fault = &plan;
  opt.obs = &obs;
  opt.trace = true;
  const ParResult res = build(GetParam(), ds, opt);

  EXPECT_TRUE(res.tree.same_as(serial.tree));
  EXPECT_TRUE(res.tree.same_as(fault_free.tree));
  EXPECT_GE(res.recovery.retries, 2u);
  EXPECT_GT(res.recovery.retry_us, 0.0);
  EXPECT_EQ(res.recovery.escalations, 0);
  EXPECT_EQ(res.recovery.failures, 0);
  // Backoff windows are real idle time: the faulty run is slower.
  EXPECT_GT(res.parallel_time, fault_free.parallel_time);

  // Ledger attribution: the retry cost lands on collective entries.
  std::uint64_t ledger_retries = 0;
  mpsim::Time ledger_retry_us = 0.0;
  for (const mpsim::CollectiveEntry& e : obs.comm_ledger().entries()) {
    ledger_retries += e.retries;
    ledger_retry_us += e.retry_us;
  }
  EXPECT_GT(ledger_retries, 0u);
  EXPECT_GT(ledger_retry_us, 0.0);
  EXPECT_LE(ledger_retry_us, res.recovery.retry_us + 1e-9);

  // Event-log visibility: Retry events carry the backoff multiplier.
  int retry_events = 0;
  for (const mpsim::TraceEvent& ev : res.trace) {
    if (ev.kind == mpsim::EventKind::Retry) {
      ++retry_events;
      EXPECT_GE(ev.words, 1.0);
      EXPECT_NE(ev.detail.find("backoff"), std::string::npos);
    }
  }
  EXPECT_GE(retry_events, 2);
}

TEST_P(RetryConvergenceTest, RetryEpisodeIsDeterministic) {
  const data::Dataset ds = workload();
  mpsim::FaultPlan plan;
  plan.transient_timeout(1, 0, 2);
  ParOptions opt;
  opt.num_procs = 4;
  opt.fault = &plan;
  const ParResult a = build(GetParam(), ds, opt);
  const ParResult b = build(GetParam(), ds, opt);
  EXPECT_EQ(a.parallel_time, b.parallel_time);  // exact, not approximate
  EXPECT_EQ(a.recovery.retries, b.recovery.retries);
  EXPECT_EQ(a.recovery.retry_us, b.recovery.retry_us);
  EXPECT_TRUE(a.tree.same_as(b.tree));
}

TEST_P(RetryConvergenceTest, UnfiredTransientLeavesClocksUntouched) {
  // Two armed runs, one with a transient scheduled far beyond the tree's
  // depth: the retry machinery on the fault-free path must cost nothing.
  const data::Dataset ds = workload();
  mpsim::FaultPlan empty;
  ParOptions base;
  base.num_procs = 4;
  base.fault = &empty;
  const ParResult plain = build(GetParam(), ds, base);

  mpsim::FaultPlan never;
  never.transient_timeout(1, /*level=*/40, /*count=*/1);
  ParOptions opt = base;
  opt.fault = &never;
  const ParResult res = build(GetParam(), ds, opt);
  EXPECT_EQ(res.parallel_time, plain.parallel_time);
  EXPECT_EQ(res.recovery.retries, 0u);
  EXPECT_EQ(res.recovery.retry_us, 0.0);
  EXPECT_TRUE(res.tree.same_as(plain.tree));
}

INSTANTIATE_TEST_SUITE_P(AllFormulations, RetryConvergenceTest,
                         ::testing::Values(Formulation::Sync,
                                           Formulation::Partitioned,
                                           Formulation::Hybrid),
                         [](const ::testing::TestParamInfo<Formulation>& i) {
                           return std::string(to_string(i.param));
                         });

// Exhausted retries merge into the existing fail-stop recovery: the
// escalated rank dies, the run absorbs it, and the tree still matches.
TEST(RetryEscalation, ExhaustedRetriesRecoverLikeAFailStop) {
  const data::Dataset ds = workload();
  const ParResult serial = build_serial(ds, ParOptions{});
  mpsim::FaultPlan plan;
  plan.transient_timeout(/*rank=*/1, /*level=*/0,
                         /*count=*/mpsim::Machine::kMaxRetryAttempts + 3);
  ParOptions opt;
  opt.num_procs = 4;
  opt.fault = &plan;
  for (const Formulation f : {Formulation::Sync, Formulation::Partitioned,
                              Formulation::Hybrid}) {
    SCOPED_TRACE(to_string(f));
    const ParResult res = build(f, ds, opt);
    EXPECT_TRUE(res.tree.same_as(serial.tree));
    EXPECT_EQ(res.recovery.escalations, 1);
    EXPECT_EQ(res.recovery.failures, 1);
    EXPECT_EQ(res.recovery.retries,
              static_cast<std::uint64_t>(mpsim::Machine::kMaxRetryAttempts));
  }
}

}  // namespace
}  // namespace pdt::core
