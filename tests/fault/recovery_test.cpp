// Checkpoint/recovery mechanics (DESIGN.md §7): the pure checkpoint tax,
// direct take_checkpoint/recover_from_failure invariants (group shrink,
// row conservation, memory rollback), and end-to-end builds whose
// recovered tree matches the fault-free one with overheads accounted.
#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"

namespace pdt::core {
namespace {

data::Dataset small_dataset(std::size_t n = 1500) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = 3}),
      data::quest_paper_bins());
}

TEST(Checkpoint, DirectAccountingAndScratchRoundTrip) {
  const data::Dataset ds = small_dataset(400);
  mpsim::FaultPlan plan;  // empty but armed: checkpoints on, no faults
  ParOptions opt;
  opt.num_procs = 4;
  opt.fault = &plan;
  mpsim::Machine machine(4);
  ParContext ctx(ds, opt, machine);
  mpsim::Group g = mpsim::Group::whole(machine);
  std::vector<NodeWork> frontier{ctx.initial_root(g)};

  const LevelCheckpoint ck = take_checkpoint(ctx, g, frontier, 0);
  EXPECT_EQ(ck.level, 0);
  EXPECT_EQ(ck.ranks, g.ranks());
  EXPECT_EQ(frontier_records(ck.frontier),
            static_cast<std::int64_t>(ds.num_rows()));
  EXPECT_EQ(ck.bytes, static_cast<std::int64_t>(ds.num_rows()) *
                          ctx.record_bytes());
  EXPECT_EQ(ctx.recovery.checkpoints, 1);
  EXPECT_EQ(ctx.recovery.checkpoint_bytes, ck.bytes);

  // Each member paid t_io per record word it staged, and the staging
  // scratch was fully released again.
  mpsim::Time expected_io = 0.0;
  for (int m = 0; m < g.size(); ++m) {
    expected_io += machine.cost().t_io *
                   static_cast<double>(frontier_member_records(frontier, m)) *
                   ctx.record_words();
    EXPECT_EQ(machine.mem(g.rank(m)).live_for(mpsim::MemTag::Scratch), 0);
    EXPECT_GT(machine.mem(g.rank(m)).peak_for(mpsim::MemTag::Scratch), 0);
    EXPECT_GT(machine.stats(g.rank(m)).io_time, 0.0);
  }
  EXPECT_DOUBLE_EQ(ctx.recovery.checkpoint_io_us, expected_io);
}

TEST(Recovery, DirectRestoreShrinksGroupAndConservesRows) {
  const data::Dataset ds = small_dataset(400);
  mpsim::FaultPlan plan;
  plan.fail_stop(2, 0);
  ParOptions opt;
  opt.num_procs = 4;
  opt.fault = &plan;
  mpsim::Machine machine(4);
  ParContext ctx(ds, opt, machine);
  mpsim::Group g = mpsim::Group::whole(machine);
  std::vector<NodeWork> frontier{ctx.initial_root(g)};

  const LevelCheckpoint ck = take_checkpoint(ctx, g, frontier, 0);
  const std::int64_t dead_shard = ck.frontier[0].member_records(2);
  ASSERT_GT(dead_shard, 0);

  machine.fault()->enter_level(0, g.ranks());
  ASSERT_FALSE(machine.fault()->alive(2));
  try {
    machine.charge_compute(2, 1.0);
    FAIL() << "expected RankFailure";
  } catch (const mpsim::RankFailure& rf) {
    recover_from_failure(ctx, g, frontier, ck, rf);
  }

  // The group shrank to the survivors and the frontier re-indexed to it.
  EXPECT_EQ(g.ranks(), (std::vector<mpsim::Rank>{0, 1, 3}));
  ASSERT_EQ(frontier.size(), 1u);
  ASSERT_EQ(frontier[0].local_rows.size(), 3u);
  EXPECT_EQ(frontier_records(frontier),
            static_cast<std::int64_t>(ds.num_rows()));
  // The redistribution left the survivors balanced to within one record.
  std::int64_t lo = frontier[0].member_records(0);
  std::int64_t hi = lo;
  for (int m = 1; m < 3; ++m) {
    lo = std::min(lo, frontier[0].member_records(m));
    hi = std::max(hi, frontier[0].member_records(m));
  }
  EXPECT_LE(hi - lo, 1);

  EXPECT_EQ(ctx.recovery.failures, 1);
  EXPECT_EQ(ctx.recovery.records_redistributed, dead_shard);
  EXPECT_DOUBLE_EQ(ctx.recovery.detect_us, machine.cost().t_timeout);
  EXPECT_GT(ctx.recovery.recovery_us, 0.0);
  EXPECT_TRUE(machine.fault()->recovered(2));
  // The dead rank's memory is gone; survivors carry the whole row store.
  EXPECT_EQ(machine.mem(2).live_total, 0);
  std::int64_t live_records = 0;
  for (const mpsim::Rank r : g.ranks()) {
    live_records += machine.mem(r).live_for(mpsim::MemTag::Records);
  }
  EXPECT_EQ(live_records, static_cast<std::int64_t>(ds.num_rows()) *
                              ctx.record_bytes());
}

TEST(RecoveryBuild, EmptyPlanPaysPureCheckpointTax) {
  const data::Dataset ds = small_dataset();
  ParOptions opt;
  opt.num_procs = 4;
  const ParResult baseline = build(Formulation::Sync, ds, opt);
  mpsim::FaultPlan plan;
  opt.fault = &plan;
  const ParResult res = build(Formulation::Sync, ds, opt);

  EXPECT_TRUE(res.tree.same_as(baseline.tree));
  EXPECT_GT(res.parallel_time, baseline.parallel_time);
  EXPECT_EQ(res.recovery.checkpoints, res.levels);  // one per sync level
  EXPECT_EQ(res.recovery.failures, 0);
  EXPECT_GT(res.recovery.checkpoint_bytes, 0);
  EXPECT_GT(res.recovery.checkpoint_io_us, 0.0);
  EXPECT_DOUBLE_EQ(res.recovery.detect_us, 0.0);
  EXPECT_DOUBLE_EQ(res.recovery.recovery_us, 0.0);
  EXPECT_FALSE(baseline.recovery.any());
  EXPECT_TRUE(res.recovery.any());
}

TEST(RecoveryBuild, FailStopOverheadsAreAccounted) {
  const data::Dataset ds = small_dataset();
  ParOptions opt;
  opt.num_procs = 4;
  opt.trace = true;
  const ParResult serial = build_serial(ds, opt);
  mpsim::FaultPlan plan;
  plan.fail_stop(1, 1);
  opt.fault = &plan;
  for (const Formulation f : {Formulation::Sync, Formulation::Partitioned,
                              Formulation::Hybrid}) {
    const ParResult res = build(f, ds, opt);
    SCOPED_TRACE(to_string(f));
    EXPECT_TRUE(res.tree.same_as(serial.tree));
    EXPECT_EQ(res.recovery.failures, 1);
    EXPECT_GT(res.recovery.records_redistributed, 0);
    EXPECT_GE(res.recovery.detect_us, res.recovery.failures *
                                          opt.cost.t_timeout);
    EXPECT_GT(res.recovery.recovery_us, 0.0);
    // The trace narrates the episode: checkpoints, the detection, and the
    // recovery event.
    std::size_t ckpt = 0, fail = 0, rec = 0;
    for (const mpsim::TraceEvent& e : res.trace) {
      if (e.kind == mpsim::EventKind::Checkpoint) ++ckpt;
      if (e.kind == mpsim::EventKind::RankFail) ++fail;
      if (e.kind == mpsim::EventKind::Recovery) ++rec;
    }
    EXPECT_EQ(ckpt, static_cast<std::size_t>(res.recovery.checkpoints));
    EXPECT_GE(fail, 1u);
    EXPECT_EQ(rec, static_cast<std::size_t>(res.recovery.failures));
  }
}

TEST(RecoveryBuild, StragglerInflatesTimeButNotTheTree) {
  const data::Dataset ds = small_dataset();
  ParOptions opt;
  opt.num_procs = 4;
  mpsim::FaultPlan ckpt_only;
  opt.fault = &ckpt_only;
  for (const Formulation f : {Formulation::Sync, Formulation::Hybrid}) {
    SCOPED_TRACE(to_string(f));
    opt.fault = &ckpt_only;
    const ParResult base = build(f, ds, opt);
    mpsim::FaultPlan slow;
    slow.straggler(1, 0, 3, 4.0);
    opt.fault = &slow;
    const ParResult res = build(f, ds, opt);
    EXPECT_GT(res.parallel_time, base.parallel_time);
    EXPECT_TRUE(res.tree.same_as(base.tree));
    EXPECT_EQ(res.recovery.failures, 0);
  }
}

}  // namespace
}  // namespace pdt::core
