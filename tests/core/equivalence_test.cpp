// The central correctness property (DESIGN.md invariant 1): every parallel
// formulation, at every processor count, for every criterion, split policy,
// data distribution seed, and continuous-attribute handling, grows exactly
// the tree the serial algorithm grows.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "dtree/metrics.hpp"

namespace pdt::core {
namespace {

struct Config {
  Formulation formulation;
  int procs;
  dtree::Criterion criterion;
  std::uint64_t seed;
};

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  std::string s = to_string(c.formulation);
  s += "_P" + std::to_string(c.procs);
  s += c.criterion == dtree::Criterion::Entropy ? "_entropy" : "_gini";
  s += "_seed" + std::to_string(c.seed);
  return s;
}

class EquivalenceTest : public ::testing::TestWithParam<Config> {};

TEST_P(EquivalenceTest, ParallelTreeEqualsSerialTree) {
  const Config& c = GetParam();
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(2500, {.function = 2, .seed = c.seed}),
      data::quest_paper_bins());
  ParOptions opt;
  opt.grow.criterion = c.criterion;
  opt.seed = c.seed * 31 + 7;
  const ParResult serial = build_serial(ds, opt);
  opt.num_procs = c.procs;
  const ParResult res = build(c.formulation, ds, opt);
  EXPECT_TRUE(res.tree.same_as(serial.tree));
  EXPECT_EQ(res.tree.num_nodes(), serial.tree.num_nodes());
  EXPECT_EQ(dtree::evaluate(res.tree, ds).correct,
            dtree::evaluate(serial.tree, ds).correct);
}

std::vector<Config> make_configs() {
  std::vector<Config> out;
  for (const Formulation f :
       {Formulation::Sync, Formulation::Partitioned, Formulation::Hybrid}) {
    for (const int p : {2, 4, 8, 16}) {
      for (const dtree::Criterion crit :
           {dtree::Criterion::Entropy, dtree::Criterion::Gini}) {
        for (const std::uint64_t seed : {1ull, 42ull}) {
          out.push_back({f, p, crit, seed});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllFormulations, EquivalenceTest,
                         ::testing::ValuesIn(make_configs()), config_name);

// Continuous-attribute handling: the same equivalence with raw continuous
// data under every per-node discretization mode (Section 3.4).
struct ContConfig {
  Formulation formulation;
  int procs;
  dtree::ContSplit cont_split;
};

std::string cont_name(const ::testing::TestParamInfo<ContConfig>& info) {
  const ContConfig& c = info.param;
  std::string s = to_string(c.formulation);
  s += "_P" + std::to_string(c.procs);
  switch (c.cont_split) {
    case dtree::ContSplit::ThresholdScan: s += "_scan"; break;
    case dtree::ContSplit::KMeans: s += "_kmeans"; break;
    case dtree::ContSplit::Quantile: s += "_quantile"; break;
  }
  return s;
}

class ContinuousEquivalenceTest
    : public ::testing::TestWithParam<ContConfig> {};

TEST_P(ContinuousEquivalenceTest, ParallelTreeEqualsSerialTree) {
  const ContConfig& c = GetParam();
  const data::Dataset ds =
      data::quest_generate(2000, {.function = 2, .seed = 5});
  ParOptions opt;
  opt.grow.cont_split = c.cont_split;
  opt.grow.cont_bins = 24;
  opt.grow.per_node_bins = 6;
  opt.grow.max_depth = 12;  // keep continuous trees modest
  const ParResult serial = build_serial(ds, opt);
  opt.num_procs = c.procs;
  const ParResult res = build(c.formulation, ds, opt);
  EXPECT_TRUE(res.tree.same_as(serial.tree));
}

std::vector<ContConfig> make_cont_configs() {
  std::vector<ContConfig> out;
  for (const Formulation f :
       {Formulation::Sync, Formulation::Partitioned, Formulation::Hybrid}) {
    for (const int p : {4, 8}) {
      for (const dtree::ContSplit cs :
           {dtree::ContSplit::ThresholdScan, dtree::ContSplit::KMeans,
            dtree::ContSplit::Quantile}) {
        out.push_back({f, p, cs});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(ContinuousHandling, ContinuousEquivalenceTest,
                         ::testing::ValuesIn(make_cont_configs()), cont_name);

// Verify the bundled helper agrees.
TEST(VerifyEquivalence, ReportsSuccessOnHealthyConfig) {
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(1200, {.function = 2, .seed = 9}),
      data::quest_paper_bins());
  ParOptions opt;
  EXPECT_EQ(verify_equivalence(ds, opt, {2, 4}), "");
}

}  // namespace
}  // namespace pdt::core
