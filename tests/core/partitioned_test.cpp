#include "core/partitioned_tree.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"

namespace pdt::core {
namespace {

data::Dataset quest_binned(std::size_t n, std::uint64_t seed = 11) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = seed}),
      data::quest_paper_bins());
}

TEST(PartitionedTree, MatchesSerialTree) {
  const data::Dataset ds = quest_binned(3000);
  ParOptions opt;
  const ParResult serial = build_serial(ds, opt);
  for (const int p : {2, 4, 8}) {
    ParOptions o;
    o.num_procs = p;
    const ParResult res = build_partitioned(ds, o);
    EXPECT_TRUE(res.tree.same_as(serial.tree)) << "P=" << p;
  }
}

TEST(PartitionedTree, MovesDataDuringPartitioning) {
  const data::Dataset ds = quest_binned(2000);
  ParOptions opt;
  opt.num_procs = 8;
  const ParResult res = build_partitioned(ds, opt);
  EXPECT_GT(res.records_moved, 0)
      << "shuffles are the cost of the partitioned approach";
  EXPECT_GT(res.partition_splits, 0);
}

TEST(PartitionedTree, DataMovementGrowsWithProcessors) {
  // "As more processors are involved, it takes longer to reach the point
  // where all the processors work on their local data only" (Section 5).
  const data::Dataset ds = quest_binned(2000);
  std::int64_t last = 0;
  for (const int p : {2, 4, 8, 16}) {
    ParOptions opt;
    opt.num_procs = p;
    const ParResult res = build_partitioned(ds, opt);
    EXPECT_GE(res.records_moved, last) << "P=" << p;
    last = res.records_moved;
  }
}

TEST(PartitionedTree, EventuallyCommunicationFree) {
  // Once every processor owns a subtree, communication stops: total comm
  // time is concentrated in the early splits and bounded well below the
  // busy time for a reasonable machine.
  const data::Dataset ds = quest_binned(4000);
  ParOptions opt;
  opt.num_procs = 4;
  const ParResult res = build_partitioned(ds, opt);
  EXPECT_GT(res.totals.compute_time, res.totals.comm_time);
}

TEST(PartitionedTree, ParallelTimeBounds) {
  const data::Dataset ds = quest_binned(4000);
  ParOptions opt;
  const ParResult serial = build_serial(ds, opt);
  for (const int p : {2, 4, 8}) {
    ParOptions o;
    o.num_procs = p;
    const ParResult res = build_partitioned(ds, o);
    EXPECT_GE(res.parallel_time, serial.parallel_time / p * 0.9999);
    EXPECT_LE(res.parallel_time, serial.parallel_time * 1.5)
        << "moving costs should not blow past serial at these sizes";
  }
}

TEST(PartitionedTree, OneProcessorDegeneratesToSerial) {
  const data::Dataset ds = quest_binned(1000);
  ParOptions opt;
  opt.num_procs = 1;
  const ParResult res = build_partitioned(ds, opt);
  const ParResult serial = build_serial(ds, opt);
  EXPECT_TRUE(res.tree.same_as(serial.tree));
  EXPECT_DOUBLE_EQ(res.parallel_time, serial.parallel_time);
  EXPECT_EQ(res.records_moved, 0);
}

TEST(PartitionedTree, WorksWithNonPowerOfTwoProcessors) {
  const data::Dataset ds = quest_binned(1500);
  ParOptions opt;
  const ParResult serial = build_serial(ds, opt);
  for (const int p : {3, 5, 6, 7}) {
    ParOptions o;
    o.num_procs = p;
    const ParResult res = build_partitioned(ds, o);
    EXPECT_TRUE(res.tree.same_as(serial.tree)) << "P=" << p;
  }
}

}  // namespace
}  // namespace pdt::core
