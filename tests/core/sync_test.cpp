#include "core/sync_tree.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "dtree/builder.hpp"
#include "dtree/metrics.hpp"

namespace pdt::core {
namespace {

data::Dataset quest_binned(std::size_t n, std::uint64_t seed = 11) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = seed}),
      data::quest_paper_bins());
}

TEST(SyncTree, OneProcessorMatchesSerialBfsBuilder) {
  const data::Dataset ds = quest_binned(3000);
  ParOptions opt;
  opt.num_procs = 1;
  const ParResult res = build_sync(ds, opt);
  const dtree::Tree reference = dtree::grow_bfs(ds, opt.grow);
  EXPECT_TRUE(res.tree.same_as(reference))
      << "the parallel code on P=1 must be the serial algorithm";
  EXPECT_DOUBLE_EQ(res.totals.comm_time, 0.0);
}

TEST(SyncTree, NoRecordsEverMove) {
  const data::Dataset ds = quest_binned(2000);
  ParOptions opt;
  opt.num_procs = 8;
  const ParResult res = build_sync(ds, opt);
  EXPECT_EQ(res.records_moved, 0)
      << "the synchronous approach's defining advantage";
  EXPECT_EQ(res.partition_splits, 0);
  EXPECT_EQ(res.rejoins, 0);
}

TEST(SyncTree, CommunicationGrowsWithProcessors) {
  const data::Dataset ds = quest_binned(2000);
  double last = 0.0;
  for (const int p : {2, 4, 8}) {
    ParOptions opt;
    opt.num_procs = p;
    const ParResult res = build_sync(ds, opt);
    EXPECT_GT(res.totals.comm_time, last);
    last = res.totals.comm_time;
  }
}

TEST(SyncTree, ParallelTimeBounds) {
  const data::Dataset ds = quest_binned(4000);
  ParOptions opt;
  const ParResult serial = build_serial(ds, opt);
  for (const int p : {2, 4, 8, 16}) {
    ParOptions o;
    o.num_procs = p;
    const ParResult res = build_sync(ds, o);
    EXPECT_LE(res.parallel_time, serial.parallel_time * 1.0001)
        << "P=" << p << ": parallel no slower than serial (same charges)";
    EXPECT_GE(res.parallel_time, serial.parallel_time / p * 0.9999)
        << "P=" << p << ": cannot beat perfect speedup";
  }
}

TEST(SyncTree, LevelsMatchTreeDepth) {
  const data::Dataset ds = quest_binned(1000);
  ParOptions opt;
  opt.num_procs = 4;
  const ParResult res = build_sync(ds, opt);
  EXPECT_EQ(res.levels, res.tree.depth() + 1)
      << "one synchronous pass per tree level";
}

TEST(SyncTree, HistogramVolumeIndependentOfP) {
  const data::Dataset ds = quest_binned(1500);
  ParOptions a;
  a.num_procs = 2;
  ParOptions b;
  b.num_procs = 8;
  const ParResult ra = build_sync(ds, a);
  const ParResult rb = build_sync(ds, b);
  EXPECT_DOUBLE_EQ(ra.histogram_words, rb.histogram_words)
      << "identical tree -> identical per-flush reduction volume";
}

TEST(SyncTree, ZeroCommMachineScalesNearlyPerfectly) {
  const data::Dataset ds = quest_binned(8000);
  ParOptions opt;
  opt.cost = mpsim::CostModel::zero_comm();
  // A modest tree keeps the replicated table-initialization term of Eq. 1
  // (which no formulation parallelizes) from dominating at this scale.
  opt.grow.min_records = 16;
  const ParResult serial = build_serial(ds, opt);
  opt.num_procs = 8;
  const ParResult res = build_sync(ds, opt);
  const double speedup = serial.parallel_time / res.parallel_time;
  EXPECT_GT(speedup, 5.0)
      << "with free communication only load imbalance and replicated "
         "table work remain";
}

TEST(SyncTree, TrainedTreeClassifiesAccurately) {
  const data::Dataset ds = quest_binned(4000);
  ParOptions opt;
  opt.num_procs = 4;
  const ParResult res = build_sync(ds, opt);
  EXPECT_GT(dtree::evaluate(res.tree, ds).accuracy(), 0.97);
}

}  // namespace
}  // namespace pdt::core
