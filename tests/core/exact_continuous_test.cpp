// Section 3.4's parallel-sorting strategy: exact continuous thresholds
// inside the parallel formulations.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "data/quest.hpp"
#include "dtree/builder.hpp"
#include "dtree/metrics.hpp"

namespace pdt::core {
namespace {

data::Dataset raw_quest(std::size_t n = 1200) {
  return data::quest_generate(n, {.function = 2, .seed = 55});
}

class ExactContinuousTest
    : public ::testing::TestWithParam<std::tuple<Formulation, int>> {};

TEST_P(ExactContinuousTest, MatchesTheExactSerialBuilder) {
  const auto [f, procs] = GetParam();
  const data::Dataset ds = raw_quest();
  ParOptions opt;
  opt.exact_continuous = true;
  opt.grow.max_depth = 10;
  opt.num_procs = procs;
  const ParResult res = build(f, ds, opt);
  // The parallel-sorting strategy reproduces the per-node-sorting C4.5
  // tree exactly, regardless of formulation or processor count.
  const dtree::Tree reference = dtree::grow_dfs_exact(ds, opt.grow);
  EXPECT_TRUE(res.tree.same_as(reference));
}

INSTANTIATE_TEST_SUITE_P(
    FormulationsAndProcs, ExactContinuousTest,
    ::testing::Combine(::testing::Values(Formulation::Sync,
                                         Formulation::Partitioned,
                                         Formulation::Hybrid),
                       ::testing::Values(1, 2, 4, 8)));

TEST(ExactContinuous, CostsMoreCommunicationThanHistograms) {
  // "it is of much higher volume" — the sorted-value exchange dwarfs the
  // class-distribution exchange of the discretized path.
  // Compare at a fixed shallow depth so both runs process the same record
  // volume per level (exact cuts align with the function-2 boundaries and
  // would otherwise grow a much smaller tree).
  const data::Dataset ds = raw_quest(4000);
  ParOptions slots;
  slots.num_procs = 8;
  slots.grow.max_depth = 3;
  ParOptions exact = slots;
  exact.exact_continuous = true;
  const ParResult a = build_sync(ds, slots);
  const ParResult b = build_sync(ds, exact);
  EXPECT_GT(b.totals.comm_time, a.totals.comm_time);
}

TEST(ExactContinuous, HybridStillBeatsSyncUnderTheHeavierExchange) {
  const data::Dataset ds = raw_quest(6000);
  ParOptions opt;
  opt.exact_continuous = true;
  opt.grow.max_depth = 12;
  opt.num_procs = 16;
  const ParResult sync = build_sync(ds, opt);
  const ParResult hybrid = build_hybrid(ds, opt);
  EXPECT_LT(hybrid.parallel_time, sync.parallel_time);
  EXPECT_TRUE(hybrid.tree.same_as(sync.tree));
}

TEST(ExactContinuous, AccuracyBeatsCoarseBinning) {
  const data::Dataset ds = raw_quest(3000);
  ParOptions coarse;
  coarse.num_procs = 4;
  coarse.grow.cont_bins = 4;
  ParOptions exact = coarse;
  exact.exact_continuous = true;
  const ParResult a = build_hybrid(ds, coarse);
  const ParResult b = build_hybrid(ds, exact);
  EXPECT_GE(dtree::evaluate(b.tree, ds).accuracy(),
            dtree::evaluate(a.tree, ds).accuracy());
}

}  // namespace
}  // namespace pdt::core
