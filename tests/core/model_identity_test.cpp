// Model identity as an artifact property: every formulation at every
// processor count yields the same pdt-model-v1 digest as the serial
// build, and the ParContext-wired SplitAudit pairs with the final tree.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <numeric>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "dtree/serialize.hpp"
#include "obs/observability.hpp"

namespace pdt::core {
namespace {

data::Dataset quest_binned(std::size_t n, std::uint64_t seed) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = seed}),
      data::quest_paper_bins());
}

TEST(ModelIdentity, DigestInvariantAcrossFormulationsAndProcs) {
  const data::Dataset ds = quest_binned(3000, 21);
  ParOptions opt;
  const std::string want = dtree::model_digest(build_serial(ds, opt).tree);
  for (const Formulation f :
       {Formulation::Sync, Formulation::Partitioned, Formulation::Hybrid}) {
    for (const int p : {4, 8}) {
      opt.num_procs = p;
      const ParResult res = build(f, ds, opt);
      EXPECT_EQ(dtree::model_digest(res.tree), want)
          << to_string(f) << " P=" << p;
    }
  }
}

TEST(ModelIdentity, AuditedBuildEntriesPairWithInternalNodes) {
  const data::Dataset ds = quest_binned(2000, 22);
  for (const Formulation f :
       {Formulation::Sync, Formulation::Partitioned, Formulation::Hybrid}) {
    obs::Observability obs;
    obs.enable_split_audit();
    ParOptions opt;
    opt.num_procs = 8;
    opt.obs = &obs;
    const ParResult res = build(f, ds, opt);

    int internal = 0;
    for (int id = 0; id < res.tree.num_nodes(); ++id) {
      if (!res.tree.node(id).is_leaf()) ++internal;
    }
    ASSERT_EQ(obs.split_audit()->size(), static_cast<std::size_t>(internal))
        << to_string(f);

    // The root's feeds come from all 8 ranks and account for every record.
    const dtree::SplitAuditEntry* root = nullptr;
    for (const dtree::SplitAuditEntry& e : obs.split_audit()->entries()) {
      if (e.node_id == 0) root = &e;
    }
    ASSERT_NE(root, nullptr) << to_string(f);
    const std::int64_t fed =
        std::accumulate(root->per_rank_records.begin(),
                        root->per_rank_records.end(), std::int64_t{0});
    EXPECT_EQ(fed, static_cast<std::int64_t>(ds.num_rows())) << to_string(f);
    int ranks_feeding = 0;
    for (const std::int64_t r : root->per_rank_records) {
      if (r > 0) ++ranks_feeding;
    }
    EXPECT_GT(ranks_feeding, 1) << to_string(f);
  }
}

TEST(ModelIdentity, AuditAgreesWithSerialDecisions) {
  const data::Dataset ds = quest_binned(2000, 23);
  // Arena ids differ across formulations (hybrid merges partition
  // subtrees), so the comparison key is the canonical id — the same
  // remap model_json applies at export time.
  auto audit_by_canon = [&](Formulation f, int procs) {
    obs::Observability obs;
    obs.enable_split_audit();
    ParOptions opt;
    opt.num_procs = procs;
    opt.obs = &obs;
    const ParResult res =
        procs == 1 ? build_serial(ds, opt) : build(f, ds, opt);
    const std::vector<int> order = dtree::canonical_order(res.tree);
    std::vector<int> canon_of(static_cast<std::size_t>(res.tree.num_nodes()),
                              -1);
    for (std::size_t k = 0; k < order.size(); ++k) {
      canon_of[static_cast<std::size_t>(order[k])] = static_cast<int>(k);
    }
    std::map<int, dtree::SplitAuditEntry> out;
    for (const dtree::SplitAuditEntry& e : obs.split_audit()->entries()) {
      out[canon_of[static_cast<std::size_t>(e.node_id)]] = e;
    }
    return out;
  };
  const auto s = audit_by_canon(Formulation::Sync, 1);
  const auto p = audit_by_canon(Formulation::Hybrid, 8);
  ASSERT_EQ(s.size(), p.size());
  for (const auto& [canon, e] : s) {
    const auto it = p.find(canon);
    ASSERT_NE(it, p.end()) << "canonical node " << canon;
    EXPECT_DOUBLE_EQ(e.gain, it->second.gain);
    EXPECT_DOUBLE_EQ(e.runner_up_gain, it->second.runner_up_gain);
    EXPECT_EQ(e.runner_up_attr, it->second.runner_up_attr);
    EXPECT_EQ(e.level, it->second.level);
  }
}

TEST(ModelIdentity, AuditAttachmentKeepsClockAndTreeBitIdentical) {
  const data::Dataset ds = quest_binned(1500, 24);
  ParOptions plain_opt;
  plain_opt.num_procs = 8;
  const ParResult plain = build(Formulation::Partitioned, ds, plain_opt);

  obs::Observability obs;
  obs.enable_split_audit();
  ParOptions audited_opt;
  audited_opt.num_procs = 8;
  audited_opt.obs = &obs;
  const ParResult audited = build(Formulation::Partitioned, ds, audited_opt);

  EXPECT_TRUE(audited.tree.same_as(plain.tree));
  EXPECT_EQ(audited.parallel_time, plain.parallel_time);
  EXPECT_EQ(dtree::model_digest(audited.tree),
            dtree::model_digest(plain.tree));
}

}  // namespace
}  // namespace pdt::core
