#include "core/cost_analysis.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"

namespace pdt::core {
namespace {

AnalysisInput paper_input(double n, int p) {
  AnalysisInput in;
  in.N = n;
  in.P = p;
  in.A_d = 9;
  in.C = 2;
  in.M = 12;  // mean of {13,14,6,5,20,9,11,10,20}
  in.L1 = 20;
  return in;
}

TEST(CostAnalysis, FrontierIsCappedByRecords) {
  AnalysisInput in = paper_input(1600, 4);
  in.leaf_records = 16.0;
  EXPECT_DOUBLE_EQ(in.frontier(0), 1.0);
  EXPECT_DOUBLE_EQ(in.frontier(3), 8.0);
  EXPECT_DOUBLE_EQ(in.frontier(10), 100.0) << "cap at N / leaf_records";
}

TEST(CostAnalysis, Eq1ScalesWithRecordsOverProcessors) {
  const AnalysisInput in = paper_input(1e6, 16);
  const double t16 = eq1_local_compute(in, in.N, 16, 1.0);
  const double t1 = eq1_local_compute(in, in.N, 1, 1.0);
  EXPECT_NEAR(t1 / t16, 16.0, 0.1);
}

TEST(CostAnalysis, Eq2ZeroForOneProcessorAndLogGrowth) {
  const AnalysisInput in = paper_input(1e6, 16);
  EXPECT_DOUBLE_EQ(eq2_comm_per_level(in, 1, 64.0), 0.0);
  const double c4 = eq2_comm_per_level(in, 4, 64.0);
  const double c16 = eq2_comm_per_level(in, 16, 64.0);
  EXPECT_DOUBLE_EQ(c16 / c4, 2.0) << "log2(16)/log2(4)";
}

TEST(CostAnalysis, Eq2BufferLimitAddsStartups) {
  const AnalysisInput in = paper_input(1e6, 8);
  AnalysisInput tight = in;
  tight.buffer_nodes = 10;
  const double loose = eq2_comm_per_level(in, 8, 1000.0);
  const double strict = eq2_comm_per_level(tight, 8, 1000.0);
  EXPECT_GT(strict, loose);
}

TEST(CostAnalysis, MovingAndBalancingBoundsMatchEq3Eq4) {
  const AnalysisInput in = paper_input(1e6, 16);
  const double words = 13.0;
  EXPECT_DOUBLE_EQ(
      eq3_moving(in, in.N, 16, words),
      2.0 * (1e6 / 16) * words * in.cost.record_move_word_cost());
  EXPECT_DOUBLE_EQ(eq3_moving(in, in.N, 16, words),
                   eq4_load_balance(in, in.N, 16, words));
}

TEST(CostAnalysis, SerialGrowsLinearlyInN) {
  // In the scan-dominated regime (the paper's Section 4.1 assumption that
  // the tree size is independent of N) serial time is theta(N) * L1.
  AnalysisInput a = paper_input(1e6, 1);
  a.L1 = 12;
  AnalysisInput b = paper_input(2e6, 1);
  b.L1 = 12;
  EXPECT_NEAR(predicted_serial_time(b) / predicted_serial_time(a), 2.0,
              0.05);
}

TEST(CostAnalysis, HybridBeatsSyncAtScale) {
  const AnalysisInput in = paper_input(8e5, 16);
  const double sync = predicted_sync_time(in);
  const double hybrid = predicted_hybrid_time(in, 13.0);
  EXPECT_LT(hybrid, sync);
}

TEST(CostAnalysis, HybridSpeedupImprovesWithP) {
  double last = 0.0;
  for (const int p : {2, 4, 8, 16, 32, 64, 128}) {
    const AnalysisInput in = paper_input(8e5, p);
    const double speedup =
        predicted_serial_time(in) / predicted_hybrid_time(in, 13.0);
    EXPECT_GT(speedup, last) << "P=" << p;
    last = speedup;
  }
  EXPECT_GT(last, 20.0) << "keeps climbing through P=128";
}

TEST(CostAnalysis, SyncSpeedupSaturates) {
  // The model reproduces Figure 6's sync behaviour at the paper's scale:
  // decent speedup at P=2, decaying efficiency as P grows.
  const double s2 = predicted_serial_time(paper_input(8e5, 2)) /
                    predicted_sync_time(paper_input(8e5, 2));
  const double s16 = predicted_serial_time(paper_input(8e5, 16)) /
                     predicted_sync_time(paper_input(8e5, 16));
  EXPECT_GT(s2, 1.2) << "sync is worthwhile at 2 processors";
  EXPECT_GT(s2 / 2.0, s16 / 16.0) << "efficiency decays";
}

TEST(CostAnalysis, IsoefficiencyIsPLogP) {
  const AnalysisInput in = paper_input(1e6, 1);
  const double n16 = isoefficiency_records(in, 16, 0.8);
  const double n64 = isoefficiency_records(in, 64, 0.8);
  // N(P) / (P log P) constant: ratio = (64*6)/(16*4) = 6.
  EXPECT_NEAR(n64 / n16, 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(isoefficiency_records(in, 1, 0.8), 0.0);
}

TEST(CostAnalysis, IsoefficiencyGrowsWithTargetEfficiency) {
  const AnalysisInput in = paper_input(1e6, 1);
  EXPECT_LT(isoefficiency_records(in, 32, 0.5),
            isoefficiency_records(in, 32, 0.9));
}

TEST(CostAnalysis, ModelTracksSimulationOrdering) {
  // The closed-form model and the simulator must agree on who wins at 16
  // processors.
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(6000, {.function = 2, .seed = 3}),
      data::quest_paper_bins());
  ParOptions opt;
  opt.num_procs = 16;
  const ParResult sync = build_sync(ds, opt);
  const ParResult hybrid = build_hybrid(ds, opt);

  AnalysisInput in = paper_input(6000, 16);
  in.L1 = sync.tree.depth();
  const double model_sync = predicted_sync_time(in);
  const double model_hybrid = predicted_hybrid_time(in, 10.0);
  EXPECT_EQ(model_hybrid < model_sync,
            hybrid.parallel_time < sync.parallel_time);
}

}  // namespace
}  // namespace pdt::core
