#include "core/hybrid_tree.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"

namespace pdt::core {
namespace {

data::Dataset quest_binned(std::size_t n, std::uint64_t seed = 11) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = seed}),
      data::quest_paper_bins());
}

TEST(HybridTree, MatchesSerialTree) {
  const data::Dataset ds = quest_binned(3000);
  ParOptions opt;
  const ParResult serial = build_serial(ds, opt);
  for (const int p : {2, 4, 8, 16}) {
    ParOptions o;
    o.num_procs = p;
    const ParResult res = build_hybrid(ds, o);
    EXPECT_TRUE(res.tree.same_as(serial.tree)) << "P=" << p;
  }
}

TEST(HybridTree, SplitsPartitionsOnLargerRuns) {
  const data::Dataset ds = quest_binned(4000);
  ParOptions opt;
  opt.num_procs = 8;
  const ParResult res = build_hybrid(ds, opt);
  EXPECT_GT(res.partition_splits, 0);
  EXPECT_GT(res.records_moved, 0);
}

TEST(HybridTree, MovesLessDataThanPartitioned) {
  // The hybrid delays partitioning until communication justifies it, so it
  // shuffles far fewer records than the eager partitioned approach.
  const data::Dataset ds = quest_binned(4000);
  ParOptions opt;
  opt.num_procs = 8;
  const ParResult hybrid = build_hybrid(ds, opt);
  const ParResult part = build_partitioned(ds, opt);
  EXPECT_LT(hybrid.records_moved, part.records_moved);
}

TEST(HybridTree, FasterThanBothBasicFormulationsAt16Procs) {
  // Figure 6's headline: the hybrid dominates at higher processor counts.
  const data::Dataset ds = quest_binned(8000);
  ParOptions opt;
  opt.num_procs = 16;
  const ParResult hybrid = build_hybrid(ds, opt);
  const ParResult sync = build_sync(ds, opt);
  const ParResult part = build_partitioned(ds, opt);
  EXPECT_LT(hybrid.parallel_time, sync.parallel_time);
  EXPECT_LT(hybrid.parallel_time, part.parallel_time);
}

TEST(HybridTree, SpeedupImprovesWithProcessors) {
  const data::Dataset ds = quest_binned(8000);
  ParOptions base;
  const auto series =
      speedup_series(Formulation::Hybrid, ds, base, {1, 2, 4, 8, 16});
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].speedup, series[i - 1].speedup)
        << "P=" << series[i].procs;
  }
  EXPECT_GT(series.back().speedup, 4.0);
}

TEST(HybridTree, ParallelTimeBounds) {
  const data::Dataset ds = quest_binned(4000);
  ParOptions opt;
  const ParResult serial = build_serial(ds, opt);
  for (const int p : {2, 4, 8, 16}) {
    ParOptions o;
    o.num_procs = p;
    const ParResult res = build_hybrid(ds, o);
    EXPECT_GE(res.parallel_time, serial.parallel_time / p * 0.9999);
    EXPECT_LE(res.parallel_time, serial.parallel_time * 1.0001);
  }
}

TEST(HybridTree, ExtremeRatiosDegradeRuntime) {
  // Figure 7: runtime is minimized near ratio 1.0; splitting far too early
  // or far too late costs time.
  const data::Dataset ds = quest_binned(8000);
  auto run = [&](double ratio) {
    ParOptions opt;
    opt.num_procs = 8;
    opt.split_ratio = ratio;
    return build_hybrid(ds, opt).parallel_time;
  };
  const double at_1 = run(1.0);
  const double early = run(0.01);
  const double late = run(256.0);
  EXPECT_LT(at_1, early * 1.02);
  EXPECT_LT(at_1, late * 1.02);
}

TEST(HybridTree, RejoinFiresUnderEagerSplittingAndCanBeDisabled) {
  // Eager splitting idles partitions early, so busy partitions recruit
  // them at their next splitting round (Section 3.3 / 4.2).
  const data::Dataset ds = quest_binned(4000);
  ParOptions on;
  on.num_procs = 16;
  on.split_ratio = 0.005;
  ParOptions off = on;
  off.rejoin_idle = false;
  const ParResult with = build_hybrid(ds, on);
  const ParResult without = build_hybrid(ds, off);
  EXPECT_GT(with.rejoins, 0);
  EXPECT_EQ(without.rejoins, 0);
  // Both still grow the right tree, and help never hurts.
  EXPECT_TRUE(with.tree.same_as(without.tree));
  EXPECT_LE(with.parallel_time, without.parallel_time * 1.05);
}

TEST(HybridTree, SingletonPartitionsCannotRecruitHelp) {
  // A p=1 partition pays no communication, so its splitting criterion
  // never fires and idle processors cannot join it — the structural
  // penalty of splitting far too early (Figure 7's left side).
  const data::Dataset ds = quest_binned(4000);
  ParOptions opt;
  opt.num_procs = 4;
  opt.split_ratio = 0.0001;  // cascade to singletons almost immediately
  const ParResult res = build_hybrid(ds, opt);
  const ParResult serial = build_serial(ds, opt);
  EXPECT_TRUE(res.tree.same_as(serial.tree));
  EXPECT_GT(res.totals.idle_time, 0.0);
}

TEST(HybridTree, LoadBalanceTogglePreservesTree) {
  const data::Dataset ds = quest_binned(3000);
  ParOptions on;
  on.num_procs = 8;
  ParOptions off = on;
  off.load_balance = false;
  const ParResult a = build_hybrid(ds, on);
  const ParResult b = build_hybrid(ds, off);
  EXPECT_TRUE(a.tree.same_as(b.tree));
}

TEST(HybridTree, OneProcessorIsSerial) {
  const data::Dataset ds = quest_binned(1000);
  ParOptions opt;
  opt.num_procs = 1;
  const ParResult res = build_hybrid(ds, opt);
  const ParResult serial = build_serial(ds, opt);
  EXPECT_TRUE(res.tree.same_as(serial.tree));
  EXPECT_DOUBLE_EQ(res.parallel_time, serial.parallel_time);
  EXPECT_EQ(res.partition_splits, 0);
}

TEST(HybridTree, TraceRecordsTheLifecycle) {
  const data::Dataset ds = quest_binned(4000);
  ParOptions opt;
  opt.num_procs = 8;
  opt.trace = true;
  const ParResult res = build_hybrid(ds, opt);
  ASSERT_FALSE(res.trace.empty());
  int reduces = 0, moves = 0, splits = 0;
  for (const mpsim::TraceEvent& ev : res.trace) {
    reduces += ev.kind == mpsim::EventKind::AllReduce ? 1 : 0;
    moves += ev.kind == mpsim::EventKind::MovingPhase ? 1 : 0;
    splits += ev.kind == mpsim::EventKind::PartitionSplit ? 1 : 0;
  }
  EXPECT_GT(reduces, 0) << "synchronous phase";
  EXPECT_EQ(splits, res.partition_splits);
  EXPECT_EQ(moves, res.partition_splits)
      << "one moving phase per halving split";
  // Tracing must not perturb the run.
  ParOptions silent = opt;
  silent.trace = false;
  const ParResult quiet = build_hybrid(ds, silent);
  EXPECT_TRUE(quiet.trace.empty());
  EXPECT_DOUBLE_EQ(quiet.parallel_time, res.parallel_time);
  EXPECT_TRUE(quiet.tree.same_as(res.tree));
}

}  // namespace
}  // namespace pdt::core
