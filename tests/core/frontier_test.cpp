#include "core/frontier.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "data/discretize.hpp"
#include "data/golf.hpp"
#include "data/quest.hpp"

namespace pdt::core {
namespace {

data::Dataset quest_binned(std::size_t n, std::uint64_t seed) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = seed}),
      data::quest_paper_bins());
}

/// All row ids present across a frontier (for conservation checks).
std::multiset<data::RowId> frontier_rows(const std::vector<NodeWork>& f) {
  std::multiset<data::RowId> rows;
  for (const NodeWork& nw : f) {
    for (const auto& lr : nw.local_rows) {
      rows.insert(lr.begin(), lr.end());
    }
  }
  return rows;
}

TEST(ParContext, RecordWordsCountsContinuousTwice) {
  const data::Dataset golf = data::golf_dataset();
  ParOptions opt;
  mpsim::Machine m(2, opt.cost);
  ParContext ctx(golf, opt, m);
  // Outlook(1) + Temp(2) + Humidity(2) + Windy(1) + label(1) = 7 words.
  EXPECT_DOUBLE_EQ(ctx.record_words(), 7.0);
}

TEST(ParContext, HistWordsIsLayoutTotal) {
  const data::Dataset ds = quest_binned(100, 1);
  ParOptions opt;
  mpsim::Machine m(2, opt.cost);
  ParContext ctx(ds, opt, m);
  // All-categorical Quest: C * sum(M_a) = 2 * 108 = 216.
  EXPECT_DOUBLE_EQ(ctx.hist_words(), 216.0);
}

TEST(ParContext, InitialRootDistributesAllRows) {
  const data::Dataset ds = quest_binned(1000, 2);
  ParOptions opt;
  opt.num_procs = 8;
  mpsim::Machine m(8, opt.cost);
  ParContext ctx(ds, opt, m);
  const mpsim::Group g = mpsim::Group::whole(m);
  const NodeWork root = ctx.initial_root(g);
  EXPECT_EQ(root.node_id, 0);
  EXPECT_EQ(root.total_records(), 1000);
  ASSERT_EQ(root.local_rows.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(root.member_records(i), 125);
  }
}

TEST(ExpandLevel, ConservesRowsAcrossSplits) {
  const data::Dataset ds = quest_binned(2000, 3);
  ParOptions opt;
  opt.num_procs = 4;
  mpsim::Machine m(4, opt.cost);
  ParContext ctx(ds, opt, m);
  const mpsim::Group g = mpsim::Group::whole(m);
  std::vector<NodeWork> frontier{ctx.initial_root(g)};
  const auto before = frontier_rows(frontier);

  std::vector<NodeWork> next = expand_level(ctx, g, frontier);
  ASSERT_FALSE(next.empty());
  // Rows are conserved: every original row appears in exactly one child,
  // on the same member that held it before (no data movement in the
  // synchronous step).
  EXPECT_EQ(frontier_rows(next), before);
}

TEST(ExpandLevel, GrowsTheSharedTree) {
  const data::Dataset ds = quest_binned(2000, 4);
  ParOptions opt;
  opt.num_procs = 2;
  mpsim::Machine m(2, opt.cost);
  ParContext ctx(ds, opt, m);
  const mpsim::Group g = mpsim::Group::whole(m);
  std::vector<NodeWork> frontier{ctx.initial_root(g)};
  EXPECT_EQ(ctx.tree().num_nodes(), 1);
  frontier = expand_level(ctx, g, frontier);
  EXPECT_GT(ctx.tree().num_nodes(), 1);
  // Child node ids match the frontier's node ids.
  for (const NodeWork& nw : frontier) {
    EXPECT_GT(nw.node_id, 0);
    EXPECT_LT(nw.node_id, ctx.tree().num_nodes());
    EXPECT_GT(nw.total_records(), 0);
  }
}

TEST(ExpandLevel, ChargesComputeToEveryMember) {
  const data::Dataset ds = quest_binned(1000, 5);
  ParOptions opt;
  opt.num_procs = 4;
  mpsim::Machine m(4, opt.cost);
  ParContext ctx(ds, opt, m);
  const mpsim::Group g = mpsim::Group::whole(m);
  std::vector<NodeWork> frontier{ctx.initial_root(g)};
  (void)expand_level(ctx, g, frontier);
  for (int r = 0; r < 4; ++r) {
    EXPECT_GT(m.stats(r).compute_time, 0.0);
    EXPECT_GT(m.stats(r).comm_time, 0.0);
  }
}

TEST(ExpandLevel, ReportsCommCostMatchingEq2) {
  const data::Dataset ds = quest_binned(1000, 6);
  ParOptions opt;
  opt.num_procs = 4;
  opt.comm_buffer_nodes = 100;
  mpsim::Machine m(4, opt.cost);
  ParContext ctx(ds, opt, m);
  const mpsim::Group g = mpsim::Group::whole(m);
  std::vector<NodeWork> frontier{ctx.initial_root(g)};
  mpsim::Time comm = 0.0;
  (void)expand_level(ctx, g, frontier, &comm);
  // One node, one flush: (t_s + t_w * 216) * log2(4).
  const double expected = (opt.cost.t_s + opt.cost.t_w * 216.0) * 2;
  EXPECT_DOUBLE_EQ(comm, expected);
}

TEST(ExpandLevel, BufferLimitCausesMultipleFlushes) {
  const data::Dataset ds = quest_binned(4000, 7);
  ParOptions small = ParOptions{};
  small.num_procs = 2;
  small.comm_buffer_nodes = 1;
  ParOptions big = ParOptions{};
  big.num_procs = 2;
  big.comm_buffer_nodes = 1000;

  auto run = [&](const ParOptions& o) {
    mpsim::Machine m(o.num_procs, o.cost);
    ParContext ctx(ds, o, m);
    const mpsim::Group g = mpsim::Group::whole(m);
    std::vector<NodeWork> frontier{ctx.initial_root(g)};
    // Expand a few levels to get a multi-node frontier, then measure.
    for (int i = 0; i < 4 && !frontier.empty(); ++i) {
      frontier = expand_level(ctx, g, frontier);
    }
    mpsim::Time comm = 0.0;
    frontier = expand_level(ctx, g, frontier, &comm);
    return std::pair(comm, m.total_stats().messages_sent);
  };
  const auto [comm_small, msgs_small] = run(small);
  const auto [comm_big, msgs_big] = run(big);
  EXPECT_GT(comm_small, comm_big)
      << "per-node flushes pay the start-up latency many times";
  EXPECT_GT(msgs_small, msgs_big);
}

TEST(ExpandLevel, SingleProcessorHasZeroComm) {
  const data::Dataset ds = quest_binned(500, 8);
  ParOptions opt;
  opt.num_procs = 1;
  mpsim::Machine m(1, opt.cost);
  ParContext ctx(ds, opt, m);
  const mpsim::Group g = mpsim::Group::whole(m);
  std::vector<NodeWork> frontier{ctx.initial_root(g)};
  mpsim::Time comm = 0.0;
  while (!frontier.empty()) {
    frontier = expand_level(ctx, g, frontier, &comm);
  }
  EXPECT_DOUBLE_EQ(comm, 0.0);
  EXPECT_DOUBLE_EQ(m.total_stats().comm_time, 0.0);
  EXPECT_DOUBLE_EQ(m.total_stats().idle_time, 0.0);
}

TEST(ExpandLevel, MaxDepthFiltersNodes) {
  const data::Dataset ds = quest_binned(500, 9);
  ParOptions opt;
  opt.num_procs = 1;
  opt.grow.max_depth = 0;
  mpsim::Machine m(1, opt.cost);
  ParContext ctx(ds, opt, m);
  const mpsim::Group g = mpsim::Group::whole(m);
  std::vector<NodeWork> frontier{ctx.initial_root(g)};
  frontier = expand_level(ctx, g, frontier);
  EXPECT_TRUE(frontier.empty());
  EXPECT_EQ(ctx.tree().num_nodes(), 1);
}

TEST(FrontierHelpers, RecordCounts) {
  NodeWork a;
  a.local_rows = {{1, 2, 3}, {4}};
  NodeWork b;
  b.local_rows = {{}, {5, 6}};
  const std::vector<NodeWork> f{a, b};
  EXPECT_EQ(frontier_records(f), 6);
  EXPECT_EQ(frontier_member_records(f, 0), 3);
  EXPECT_EQ(frontier_member_records(f, 1), 3);
}

}  // namespace
}  // namespace pdt::core
