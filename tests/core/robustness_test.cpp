// Degenerate and adversarial inputs across every formulation: the library
// must behave (and agree with the serial algorithm) on tiny, skewed, and
// awkwardly-shaped workloads, not just the benchmark sweet spot.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "data/rng.hpp"

namespace pdt::core {
namespace {

void expect_all_formulations_match(const data::Dataset& ds,
                                   const ParOptions& base,
                                   const std::vector<int>& procs) {
  const ParResult serial = build_serial(ds, base);
  for (const Formulation f :
       {Formulation::Sync, Formulation::Partitioned, Formulation::Hybrid}) {
    for (const int p : procs) {
      ParOptions opt = base;
      opt.num_procs = p;
      const ParResult res = build(f, ds, opt);
      EXPECT_TRUE(res.tree.same_as(serial.tree))
          << to_string(f) << " P=" << p;
      EXPECT_GE(res.parallel_time, 0.0);
    }
  }
}

TEST(Robustness, MoreProcessorsThanRecords) {
  data::Schema s({data::Attribute::categorical("v", 3)}, 2);
  data::Dataset ds(s, 5);
  for (int i = 0; i < 5; ++i) {
    const std::size_t r = ds.add_row(i % 2);
    ds.set_cat(0, r, i % 3);
  }
  expect_all_formulations_match(ds, ParOptions{}, {8, 16});
}

TEST(Robustness, SingleRecord) {
  data::Schema s({data::Attribute::categorical("v", 2)}, 2);
  data::Dataset ds(s, 1);
  const std::size_t r = ds.add_row(1);
  ds.set_cat(0, r, 0);
  expect_all_formulations_match(ds, ParOptions{}, {2, 4});
}

TEST(Robustness, AllRecordsIdentical) {
  data::Schema s({data::Attribute::categorical("v", 4),
                  data::Attribute::continuous("x")},
                 2);
  data::Dataset ds(s, 64);
  for (int i = 0; i < 64; ++i) {
    const std::size_t r = ds.add_row(i % 2);  // mixed classes, no signal
    ds.set_cat(0, r, 2);
    ds.set_cont(1, r, 3.25);
  }
  // No attribute separates anything: everyone must settle for a root leaf.
  const ParResult serial = build_serial(ds, ParOptions{});
  EXPECT_EQ(serial.tree.num_nodes(), 1);
  expect_all_formulations_match(ds, ParOptions{}, {2, 8});
}

TEST(Robustness, SingleAttribute) {
  const data::Dataset raw = data::quest_generate(600, {.function = 1, .seed = 61});
  // Keep only the age column (function 1 is age-only).
  data::Schema s({data::Attribute::continuous("age")}, 2);
  data::Dataset ds(s, raw.num_rows());
  for (std::size_t i = 0; i < raw.num_rows(); ++i) {
    const std::size_t r = ds.add_row(raw.label(i));
    ds.set_cont(0, r, raw.cont(data::quest_attr::kAge, i));
  }
  ParOptions opt;
  opt.grow.max_depth = 8;
  expect_all_formulations_match(ds, opt, {2, 4, 8});
}

TEST(Robustness, HeavilySkewedClasses) {
  // 99:1 class imbalance.
  data::Schema s({data::Attribute::continuous("x")}, 2);
  data::Dataset ds(s, 500);
  data::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const int label = i < 5 ? 1 : 0;
    const std::size_t r = ds.add_row(label);
    ds.set_cont(0, r, label == 1 ? rng.uniform(0.0, 0.1)
                                 : rng.uniform(0.2, 1.0));
  }
  expect_all_formulations_match(ds, ParOptions{}, {2, 8});
}

TEST(Robustness, ManyClasses) {
  data::Schema s({data::Attribute::categorical("v", 8),
                  data::Attribute::continuous("x")},
                 6);
  data::Dataset ds(s, 600);
  data::Rng rng(4);
  for (int i = 0; i < 600; ++i) {
    const int cls = i % 6;
    const std::size_t r = ds.add_row(cls);
    ds.set_cat(0, r, (cls + i / 100) % 8);
    ds.set_cont(1, r, static_cast<double>(cls) + rng.uniform(-0.4, 0.4));
  }
  ParOptions opt;
  opt.grow.max_depth = 10;
  expect_all_formulations_match(ds, opt, {2, 4});
}

TEST(Robustness, NonPowerOfTwoProcessorCounts) {
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(1000, {.function = 2, .seed = 62}),
      data::quest_paper_bins());
  // The hypercube embedding rounds dimensions up; trees must not change.
  expect_all_formulations_match(ds, ParOptions{}, {3, 5, 7, 12});
}

TEST(Robustness, TinyCommBuffer) {
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(800, {.function = 2, .seed = 63}),
      data::quest_paper_bins());
  ParOptions opt;
  opt.comm_buffer_nodes = 1;
  expect_all_formulations_match(ds, opt, {4, 8});
}

TEST(Robustness, ExtremeSplitRatiosStillCorrect) {
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(1200, {.function = 2, .seed = 64}),
      data::quest_paper_bins());
  const ParResult serial = build_serial(ds, ParOptions{});
  for (const double ratio : {1e-6, 1e6}) {
    ParOptions opt;
    opt.num_procs = 8;
    opt.split_ratio = ratio;
    const ParResult res = build_hybrid(ds, opt);
    EXPECT_TRUE(res.tree.same_as(serial.tree)) << "ratio " << ratio;
  }
}

TEST(Robustness, DifferentSeedsDifferentDistributionSameTree) {
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(900, {.function = 2, .seed = 65}),
      data::quest_paper_bins());
  const ParResult serial = build_serial(ds, ParOptions{});
  for (const std::uint64_t seed : {1ull, 99ull, 12345ull}) {
    ParOptions opt;
    opt.num_procs = 8;
    opt.seed = seed;
    const ParResult res = build_hybrid(ds, opt);
    EXPECT_TRUE(res.tree.same_as(serial.tree)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace pdt::core
