#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"

namespace pdt::core {
namespace {

data::Dataset quest_binned(std::size_t n, std::uint64_t seed = 3) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = seed}),
      data::quest_paper_bins());
}

TEST(Vertical, MatchesSerialTree) {
  const data::Dataset ds = quest_binned(2000);
  ParOptions opt;
  const ParResult serial = build_serial(ds, opt);
  for (const int p : {2, 4, 8, 16}) {
    ParOptions o;
    o.num_procs = p;
    const ParResult res = build_vertical(ds, o);
    EXPECT_TRUE(res.tree.same_as(serial.tree)) << "P=" << p;
  }
}

TEST(Vertical, NoRecordMovementAndNoHistogramTraffic) {
  const data::Dataset ds = quest_binned(2000);
  ParOptions opt;
  opt.num_procs = 4;
  const ParResult res = build_vertical(ds, opt);
  EXPECT_EQ(res.records_moved, 0);
  EXPECT_DOUBLE_EQ(res.histogram_words, 0.0)
      << "statistics never cross processors under vertical partitioning";
}

TEST(Vertical, DoesNotScaleBeyondTheAttributeCount) {
  // "this scheme does not scale well with increasing number of
  // processors": with 9 attributes, P=16 cannot beat P=9 by much.
  const data::Dataset ds = quest_binned(4000);
  ParOptions opt;
  const ParResult serial = build_serial(ds, opt);
  auto speedup = [&](int p) {
    ParOptions o;
    o.num_procs = p;
    return serial.parallel_time / build_vertical(ds, o).parallel_time;
  };
  const double s9 = speedup(9);
  const double s16 = speedup(16);
  EXPECT_LT(s16, s9 * 1.05) << "extra processors idle";
  EXPECT_LT(s16, 9.5) << "cannot exceed the attribute count";
}

TEST(Vertical, PerformsReasonablyAtSmallP) {
  const data::Dataset ds = quest_binned(4000);
  ParOptions opt;
  const ParResult serial = build_serial(ds, opt);
  ParOptions o;
  o.num_procs = 3;
  const ParResult res = build_vertical(ds, o);
  EXPECT_GT(serial.parallel_time / res.parallel_time, 1.5)
      << "load-balanced and cheap to communicate at small P";
}

TEST(HostWorker, MatchesSerialTree) {
  const data::Dataset ds = quest_binned(2000);
  ParOptions opt;
  const ParResult serial = build_serial(ds, opt);
  for (const int p : {2, 4, 8, 16}) {
    ParOptions o;
    o.num_procs = p;
    const ParResult res = build_host_worker(ds, o);
    EXPECT_TRUE(res.tree.same_as(serial.tree)) << "P=" << p;
  }
}

TEST(HostWorker, HostSerializationBeatenBySyncAllReduce) {
  // PDT pays (P-1) serialized messages where the synchronous approach
  // pays a log P collective — the paper's "additional communication
  // bottleneck".
  const data::Dataset ds = quest_binned(4000);
  ParOptions opt;
  opt.num_procs = 16;
  const ParResult pdt_res = build_host_worker(ds, opt);
  const ParResult sync_res = build_sync(ds, opt);
  EXPECT_GT(pdt_res.parallel_time, sync_res.parallel_time);
}

TEST(HostWorker, HostHoldsNoDataButStaysBusy) {
  const data::Dataset ds = quest_binned(1500);
  ParOptions opt;
  opt.num_procs = 4;
  const ParResult res = build_host_worker(ds, opt);
  EXPECT_GT(res.per_rank[0].comm_time, 0.0);
  EXPECT_GT(res.per_rank[0].compute_time, 0.0) << "gain evaluation";
  EXPECT_DOUBLE_EQ(res.per_rank[0].io_time, 0.0) << "no local records";
  EXPECT_GT(res.per_rank[1].io_time, 0.0);
}

TEST(HostWorker, RecordsNeverMove) {
  const data::Dataset ds = quest_binned(1500);
  ParOptions opt;
  opt.num_procs = 8;
  const ParResult res = build_host_worker(ds, opt);
  EXPECT_EQ(res.records_moved, 0);
}

}  // namespace
}  // namespace pdt::core
