#include "dtree/sha256.hpp"

#include <cstring>

namespace pdt::dtree {

namespace {

constexpr std::array<std::uint32_t, 64> kRound = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

void compress(std::array<std::uint32_t, 8>& h, const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (int t = 16; t < 64; ++t) {
    const std::uint32_t s0 =
        rotr(w[t - 15], 7) ^ rotr(w[t - 15], 18) ^ (w[t - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[t - 2], 17) ^ rotr(w[t - 2], 19) ^ (w[t - 2] >> 10);
    w[t] = w[t - 16] + s0 + w[t - 7] + s1;
  }
  std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
  std::uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
  for (int t = 0; t < 64; ++t) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = hh + s1 + ch + kRound[t] + w[t];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    hh = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  h[0] += a;
  h[1] += b;
  h[2] += c;
  h[3] += d;
  h[4] += e;
  h[5] += f;
  h[6] += g;
  h[7] += hh;
}

}  // namespace

std::array<std::uint8_t, 32> sha256(std::string_view data) {
  std::array<std::uint32_t, 8> h = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                    0xa54ff53a, 0x510e527f, 0x9b05688c,
                                    0x1f83d9ab, 0x5be0cd19};
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(data.data());
  std::size_t n = data.size();
  while (n >= 64) {
    compress(h, bytes);
    bytes += 64;
    n -= 64;
  }
  // Final block(s): remainder + 0x80 + zero pad + 64-bit big-endian length.
  std::uint8_t tail[128] = {};
  std::memcpy(tail, bytes, n);
  tail[n] = 0x80;
  const std::size_t blocks = n + 1 + 8 > 64 ? 2 : 1;
  const std::uint64_t bits = static_cast<std::uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[blocks * 64 - 1 - i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
  compress(h, tail);
  if (blocks == 2) compress(h, tail + 64);
  std::array<std::uint8_t, 32> out{};
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(h[static_cast<std::size_t>(i)] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(h[static_cast<std::size_t>(i)] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(h[static_cast<std::size_t>(i)] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(h[static_cast<std::size_t>(i)]);
  }
  return out;
}

std::string sha256_hex(std::string_view data) {
  static const char* kHex = "0123456789abcdef";
  const std::array<std::uint8_t, 32> raw = sha256(data);
  std::string out;
  out.reserve(64);
  for (const std::uint8_t b : raw) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

}  // namespace pdt::dtree
