// Pessimistic error pruning (C4.5, chapter 4).
//
// The paper deliberately excludes pruning from its parallel analysis
// ("the time spent on pruning for a large dataset is a small fraction,
// less than 1% of the initial tree generation") — it is included here for
// completeness of the sequential library, and a bench measures that the
// <1% claim holds for our trees too.
#pragma once

#include "dtree/tree.hpp"

namespace pdt::dtree {

struct PruneOptions {
  /// C4.5 confidence factor CF (default 25%). Smaller values prune more.
  double confidence = 0.25;
};

struct PruneStats {
  int subtrees_collapsed = 0;
  int leaves_before = 0;
  int leaves_after = 0;
};

/// Upper confidence limit of the binomial error rate for `errors` errors
/// in `n` records (C4.5's U_CF, via the Wilson score interval).
[[nodiscard]] double pessimistic_error(std::int64_t errors, std::int64_t n,
                                       double confidence);

/// Prune `tree` in place, collapsing subtrees whose estimated error is not
/// better than the leaf that would replace them.
PruneStats prune(Tree& tree, const PruneOptions& opt = {});

}  // namespace pdt::dtree
