// Classifier evaluation: accuracy and confusion matrices.
#pragma once

#include <cstdint>
#include <vector>

#include "dtree/tree.hpp"

namespace pdt::dtree {

struct Evaluation {
  std::int64_t correct = 0;
  std::int64_t total = 0;
  /// confusion[actual * num_classes + predicted]
  std::vector<std::int64_t> confusion;
  int num_classes = 0;

  [[nodiscard]] double accuracy() const {
    return total == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(total);
  }
};

/// Classify every row of `ds` with `tree` and tally the results.
[[nodiscard]] Evaluation evaluate(const Tree& tree, const data::Dataset& ds);

}  // namespace pdt::dtree
