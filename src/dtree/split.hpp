// Split tests and the split chooser.
//
// choose_split() is a pure function of a node's *global* flat histogram.
// The serial builder evaluates it on the histogram of all rows; the
// parallel formulations evaluate it on the all-reduced sum of per-processor
// local histograms — identical input, identical decision, which is what
// guarantees the parallel algorithms grow exactly the serial tree (the
// paper's formulations have the same property; tests enforce it).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dtree/criteria.hpp"
#include "dtree/slots.hpp"

namespace pdt::dtree {

class SplitObserver;  // tree.hpp: passive expand/make_leaf hook

/// How categorical attributes are split.
enum class SplitPolicy {
  Binary,    ///< binary everywhere: thresholds on ordered attrs, value
             ///< subsets on nominal attrs (the paper's experiments)
  Multiway,  ///< one child per value for nominal attrs (C4.5 default)
};

/// How candidate thresholds for continuous attributes are derived from the
/// per-node micro-histogram (Section 3.4's discretization-at-every-node).
enum class ContSplit {
  ThresholdScan,  ///< every micro-bin boundary is a candidate
  KMeans,         ///< SPEC [23]: 1-D clustering picks <= per_node_bins bins
  Quantile,       ///< CLOUDS [3]: equi-depth quantiles pick the bins
};

struct GrowOptions {
  Criterion criterion = Criterion::Entropy;
  SplitPolicy policy = SplitPolicy::Binary;
  ContSplit cont_split = ContSplit::ThresholdScan;
  /// Micro-bins per continuous attribute (the M of continuous histograms).
  int cont_bins = 32;
  /// Target bin count for per-node KMeans / Quantile discretization.
  int per_node_bins = 8;
  int max_depth = 64;
  /// Nodes with fewer records become leaves.
  std::int64_t min_records = 2;
  /// Minimum impurity decrease for a split to be adopted.
  double min_gain = 1e-9;
  /// Passive split observer wired into the grown Tree (nullptr = off).
  /// Never influences the decision path; see obs::SplitAudit.
  SplitObserver* split_observer = nullptr;
};

struct SplitTest {
  enum class Kind {
    Leaf,         ///< no test: terminal node
    Threshold,    ///< continuous attr: value <= threshold -> child 0
    OrderedSlot,  ///< ordered categorical: slot <= slot_threshold -> child 0
    Subset,       ///< nominal: in_left[value] -> child 0
    Multiway,     ///< nominal: child = value
  };
  Kind kind = Kind::Leaf;
  int attr = -1;
  double threshold = 0.0;   ///< Threshold only: real-valued cut
  int slot_threshold = -1;  ///< Threshold/OrderedSlot: last slot going left
  std::vector<std::uint8_t> in_left;  ///< Subset only: one flag per value
  int num_children = 0;

  /// Which child a training row in slot `slot` routes to.
  [[nodiscard]] int child_of_slot(int slot) const;
  [[nodiscard]] bool is_leaf() const { return kind == Kind::Leaf; }
};

struct SplitDecision {
  SplitTest test;  ///< Kind::Leaf when the node should not be split
  double gain = 0.0;
  /// num_children x num_classes counts implied by the chosen test.
  std::vector<std::int64_t> child_counts;
  /// Best gain offered on any attribute *other than* the winner — the
  /// decision margin (gain - runner_up_gain) a voting formulation would
  /// need to respect. -1 attr when no second attribute had a candidate.
  double runner_up_gain = 0.0;
  int runner_up_attr = -1;
};

/// Decide the best split for a node from its global histogram. Returns a
/// Leaf decision when the node is pure, too small, or no candidate clears
/// min_gain. Deterministic: ties break toward the lower attribute index,
/// then the lower threshold.
[[nodiscard]] SplitDecision choose_split(std::span<const std::int64_t> hist,
                                         const AttrLayout& layout,
                                         const data::Schema& schema,
                                         const SlotMapper& mapper,
                                         const GrowOptions& opt);

}  // namespace pdt::dtree
