// The classification decision tree.
//
// Nodes live in a flat arena; children of a node are contiguous. The tree
// is grown by repeatedly calling expand() with a SplitDecision — the
// serial builder and all three parallel formulations use this same
// expansion path, so structural equality between their outputs is
// meaningful (and tested).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "dtree/split.hpp"

namespace pdt::dtree {

struct Node {
  SplitTest test;            ///< Leaf kind for terminal nodes
  int parent = -1;
  int first_child = -1;      ///< children occupy [first_child, +num_children)
  int depth = 0;
  std::vector<std::int64_t> class_counts;
  int majority = 0;          ///< predicted class at this node

  [[nodiscard]] bool is_leaf() const { return test.is_leaf(); }
  [[nodiscard]] std::int64_t num_records() const;
};

class Tree;

/// Passive hook on the tree's two mutations. Observers must never alter
/// growth (no calls back into the tree's mutating API); attaching one is
/// guaranteed not to change the grown tree, the simulated clocks, or any
/// export — the same contract as mpsim::ChargeObserver. obs::SplitAudit
/// is the canonical implementation.
class SplitObserver {
 public:
  virtual ~SplitObserver() = default;
  /// Fired by Tree::expand() after the children were appended; `d` is the
  /// adopted decision (gain, runner-up margin, child counts).
  virtual void on_expand(const Tree& tree, int id, const SplitDecision& d) = 0;
  /// Fired by Tree::make_leaf(): the subtree under `id` was detached.
  virtual void on_make_leaf(int id) = 0;
  /// Record-count annotation: `records` rows of `rank`'s local store fed
  /// the expansion of node `id` (serial builders report rank 0). Fired by
  /// the builders, not the tree, since the tree never sees rows.
  virtual void on_feed(int id, int rank, std::int64_t records) = 0;
};

class Tree {
 public:
  Tree() = default;
  /// Start a tree whose root has the given class counts.
  explicit Tree(std::vector<std::int64_t> root_counts);

  [[nodiscard]] int root() const { return 0; }
  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const Node& node(int id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] int num_leaves() const;
  [[nodiscard]] int depth() const;

  /// Apply a (non-Leaf) SplitDecision to node `id`: records the test and
  /// appends its children. Children that receive no records become leaves
  /// labeled with the parent's majority class (Hunt's method, Case 3).
  /// Returns the first child's id.
  int expand(int id, const SplitDecision& d);

  /// Replace the subtree under `id` by a leaf (used by pruning).
  /// Descendant nodes are detached, not reclaimed.
  void make_leaf(int id);

  /// Child index a record routes to at node `id`.
  [[nodiscard]] int route(int id, const data::Dataset& ds,
                          std::size_t row) const;
  /// Class prediction for a record.
  [[nodiscard]] int classify(const data::Dataset& ds, std::size_t row) const;

  /// Structural equality: same shape, same tests, same majorities, same
  /// class counts. (Detached pruned nodes are ignored.)
  [[nodiscard]] bool same_as(const Tree& other) const;

  /// Multi-line ASCII rendering (value names resolved via the schema).
  [[nodiscard]] std::string to_string(const data::Schema& schema,
                                      int max_depth = 1 << 20) const;

  /// Attach a passive split observer (nullptr detaches; the default).
  /// One branch per expand/make_leaf when detached.
  void set_split_observer(SplitObserver* observer) { observer_ = observer; }
  [[nodiscard]] SplitObserver* split_observer() const { return observer_; }

 private:
  [[nodiscard]] bool same_subtree(const Tree& other, int a, int b) const;
  void print_node(std::string& out, const data::Schema& schema, int id,
                  int indent, int max_depth) const;

  std::vector<Node> nodes_;
  SplitObserver* observer_ = nullptr;
};

/// Majority class of a count vector (ties -> lower class id); `fallback`
/// when all counts are zero.
[[nodiscard]] int majority_class(std::span<const std::int64_t> counts,
                                 int fallback = 0);

}  // namespace pdt::dtree
