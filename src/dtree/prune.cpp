#include "dtree/prune.hpp"

#include <cmath>

namespace pdt::dtree {

namespace {

/// Inverse of the standard normal CDF for the upper tail probability
/// `confidence` (e.g. 0.25 -> z ~ 0.6745). Beasley-Springer-Moro style
/// rational approximation — plenty for pruning decisions.
double z_of_confidence(double confidence) {
  // We need z with P(Z > z) = confidence, i.e. quantile(1 - confidence).
  const double p = 1.0 - confidence;
  // Acklam's approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - plow) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

/// log of the binomial CDF P(X <= e | n, p), summed in probability space
/// from log-space terms (n is small enough that this is exact and fast).
double binom_cdf(std::int64_t e, std::int64_t n, double p) {
  if (p <= 0.0) return 1.0;
  if (p >= 1.0) return e >= n ? 1.0 : 0.0;
  double cdf = 0.0;
  double log_term = static_cast<double>(n) * std::log1p(-p);  // k = 0
  for (std::int64_t k = 0; k <= e; ++k) {
    cdf += std::exp(log_term);
    // pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p)
    log_term += std::log(static_cast<double>(n - k)) -
                std::log(static_cast<double>(k + 1)) + std::log(p) -
                std::log1p(-p);
  }
  return cdf;
}

/// Exact binomial upper confidence limit: the largest error rate p such
/// that observing <= e errors in n records still has probability >= CF.
/// This is C4.5's U_CF (e.g. U_0.25(0, 1) = 0.75). Solved by bisection.
double binom_upper(std::int64_t e, std::int64_t n, double cf) {
  double lo = static_cast<double>(e) / static_cast<double>(n);
  double hi = 1.0;
  for (int iter = 0; iter < 50; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (binom_cdf(e, n, mid) > cf) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

struct Walker {
  Tree* tree;
  double z;
  double cf;
  PruneStats stats;

  /// Returns the estimated number of errors of the subtree at `id`, after
  /// possibly collapsing it.
  double visit(int id) {
    Node& nd = const_cast<Node&>(tree->node(id));
    const std::int64_t n = nd.num_records();
    const std::int64_t errors =
        n - (nd.majority < static_cast<int>(nd.class_counts.size())
                 ? nd.class_counts[static_cast<std::size_t>(nd.majority)]
                 : 0);
    const double leaf_estimate =
        static_cast<double>(n) *
        wilson_upper(static_cast<double>(errors), static_cast<double>(n));
    if (nd.is_leaf()) return leaf_estimate;

    double subtree_estimate = 0.0;
    for (int k = 0; k < nd.test.num_children; ++k) {
      subtree_estimate += visit(nd.first_child + k);
    }
    if (leaf_estimate <= subtree_estimate) {
      tree->make_leaf(id);
      ++stats.subtrees_collapsed;
      return leaf_estimate;
    }
    return subtree_estimate;
  }

  /// Exact binomial limit for the small leaves where the choice matters,
  /// normal (Wilson) approximation for large nodes where they agree.
  [[nodiscard]] double wilson_upper(double errors, double n) const {
    if (n <= 0.0) return 1.0;
    if (n <= 400.0) {
      return binom_upper(static_cast<std::int64_t>(errors),
                         static_cast<std::int64_t>(n), cf);
    }
    const double f = errors / n;
    const double z2 = z * z;
    return (f + z2 / (2.0 * n) +
            z * std::sqrt(f / n - f * f / n + z2 / (4.0 * n * n))) /
           (1.0 + z2 / n);
  }
};

}  // namespace

double pessimistic_error(std::int64_t errors, std::int64_t n,
                         double confidence) {
  Walker w{nullptr, z_of_confidence(confidence), confidence, {}};
  return w.wilson_upper(static_cast<double>(errors), static_cast<double>(n));
}

PruneStats prune(Tree& tree, const PruneOptions& opt) {
  Walker w{&tree, z_of_confidence(opt.confidence), opt.confidence, {}};
  w.stats.leaves_before = tree.num_leaves();
  w.visit(tree.root());
  w.stats.leaves_after = tree.num_leaves();
  return w.stats;
}

}  // namespace pdt::dtree
