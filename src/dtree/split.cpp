#include "dtree/split.hpp"

#include <algorithm>
#include <cassert>

#include "data/discretize.hpp"
#include "dtree/histogram.hpp"
#include "dtree/split_eval.hpp"

namespace pdt::dtree {

int SplitTest::child_of_slot(int slot) const {
  switch (kind) {
    case Kind::Threshold:
    case Kind::OrderedSlot:
      return slot <= slot_threshold ? 0 : 1;
    case Kind::Subset:
      return in_left[static_cast<std::size_t>(slot)] ? 0 : 1;
    case Kind::Multiway:
      return slot;
    case Kind::Leaf:
      return 0;
  }
  return 0;
}

namespace {

/// Candidate slot boundaries for a continuous attribute under per-node
/// discretization: the micro-histogram is re-binned by KMeans/Quantile and
/// only the resulting coarse boundaries are evaluated.
std::vector<int> per_node_candidates(std::span<const std::int64_t> table,
                                     const SlotMapper& mapper, int attr,
                                     int slots, int num_classes,
                                     const GrowOptions& opt) {
  std::vector<data::WeightedValue> values;
  values.reserve(static_cast<std::size_t>(slots));
  for (int s = 0; s < slots; ++s) {
    double mass = 0.0;
    for (int c = 0; c < num_classes; ++c) {
      mass += static_cast<double>(
          table[static_cast<std::size_t>(s * num_classes + c)]);
    }
    if (mass > 0.0) {
      values.push_back({mapper.bin_center(attr, s), mass});
    }
  }
  const std::vector<double> cuts =
      opt.cont_split == ContSplit::KMeans
          ? data::kmeans_boundaries(values, opt.per_node_bins)
          : data::quantile_boundaries(values, opt.per_node_bins);
  std::vector<int> out;
  for (double cut : cuts) {
    const int t = data::bin_of(cut, mapper.boundaries(attr)) - 1;
    if (t >= 0 && t <= slots - 2) out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

SplitDecision choose_split(std::span<const std::int64_t> hist,
                           const AttrLayout& layout,
                           const data::Schema& schema,
                           const SlotMapper& mapper, const GrowOptions& opt) {
  const int c_num = layout.num_classes();
  const std::vector<std::int64_t> parent = class_counts(hist, layout);
  BestTracker tracker(parent, opt);
  if (tracker.forced_leaf()) return tracker.take();

  std::vector<std::int64_t> left(static_cast<std::size_t>(c_num));
  for (int a = 0; a < layout.num_attributes(); ++a) {
    const int slots = layout.slots(a);
    const auto table = hist.subspan(static_cast<std::size_t>(layout.offset(a)),
                                    static_cast<std::size_t>(slots * c_num));
    const data::Attribute& attr = schema.attr(a);

    if (attr.is_continuous() && opt.cont_split != ContSplit::ThresholdScan) {
      // Per-node discretization (Section 3.4): only the KMeans/Quantile
      // boundaries are candidates.
      const std::vector<int> candidates =
          per_node_candidates(table, mapper, a, slots, c_num, opt);
      std::fill(left.begin(), left.end(), 0);
      std::size_t cand_i = 0;
      for (int t = 0; t <= slots - 2; ++t) {
        for (int c = 0; c < c_num; ++c) {
          left[static_cast<std::size_t>(c)] +=
              table[static_cast<std::size_t>(t * c_num + c)];
        }
        if (cand_i >= candidates.size() || candidates[cand_i] != t) continue;
        ++cand_i;
        SplitTest test;
        test.kind = SplitTest::Kind::Threshold;
        test.attr = a;
        test.slot_threshold = t;
        test.threshold = mapper.boundary(a, t);
        tracker.offer_binary(left, std::move(test));
      }
      continue;
    }
    if (attr.is_continuous()) {
      tracker.offer_ordered_table(a, table, slots, SplitTest::Kind::Threshold,
                                  [&](int t) { return mapper.boundary(a, t); });
      continue;
    }
    if (attr.ordered) {
      tracker.offer_ordered_table(a, table, slots,
                                  SplitTest::Kind::OrderedSlot,
                                  [](int t) { return static_cast<double>(t); });
      continue;
    }
    tracker.offer_nominal(a, table, slots);
  }
  return tracker.take();
}

}  // namespace pdt::dtree
