#include "dtree/criteria.hpp"

#include <cmath>

namespace pdt::dtree {

std::int64_t total(std::span<const std::int64_t> counts) {
  std::int64_t n = 0;
  for (auto c : counts) n += c;
  return n;
}

double entropy(std::span<const std::int64_t> counts) {
  const std::int64_t n = total(counts);
  if (n <= 0) return 0.0;
  double h = 0.0;
  for (auto c : counts) {
    if (c <= 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(n);
    h -= p * std::log2(p);
  }
  return h;
}

double gini(std::span<const std::int64_t> counts) {
  const std::int64_t n = total(counts);
  if (n <= 0) return 0.0;
  double sum_sq = 0.0;
  for (auto c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(n);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

double impurity(Criterion c, std::span<const std::int64_t> counts) {
  return c == Criterion::Entropy ? entropy(counts) : gini(counts);
}

double gain(Criterion c, std::span<const std::int64_t> parent,
            std::span<const std::int64_t> children, int num_classes) {
  const std::int64_t n = total(parent);
  if (n <= 0) return 0.0;
  double weighted = 0.0;
  const std::size_t k = children.size() / static_cast<std::size_t>(num_classes);
  for (std::size_t i = 0; i < k; ++i) {
    const auto child =
        children.subspan(i * static_cast<std::size_t>(num_classes),
                         static_cast<std::size_t>(num_classes));
    const std::int64_t ni = total(child);
    if (ni <= 0) continue;
    weighted += static_cast<double>(ni) / static_cast<double>(n) *
                impurity(c, child);
  }
  return impurity(c, parent) - weighted;
}

}  // namespace pdt::dtree
