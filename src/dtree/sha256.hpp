// Self-contained SHA-256 (FIPS 180-4) for model content digests.
//
// The model-identity gates (pdt-tree diff, CI) compare trees by hash, so
// the digest must be stable across platforms and toolchains and must not
// pull in an external crypto dependency. This is the plain single-shot
// byte-oriented implementation — model payloads are a few hundred KB at
// most, so streaming is unnecessary.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace pdt::dtree {

/// Raw 32-byte SHA-256 of `data`.
[[nodiscard]] std::array<std::uint8_t, 32> sha256(std::string_view data);

/// Lowercase hex rendering of sha256(data) — the digest format every
/// pdt-model-v1 document and gate uses.
[[nodiscard]] std::string sha256_hex(std::string_view data);

}  // namespace pdt::dtree
