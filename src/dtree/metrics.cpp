#include "dtree/metrics.hpp"

namespace pdt::dtree {

Evaluation evaluate(const Tree& tree, const data::Dataset& ds) {
  Evaluation ev;
  ev.num_classes = ds.schema().num_classes();
  ev.confusion.assign(
      static_cast<std::size_t>(ev.num_classes * ev.num_classes), 0);
  for (std::size_t row = 0; row < ds.num_rows(); ++row) {
    const int actual = ds.label(row);
    const int predicted = tree.classify(ds, row);
    ++ev.total;
    if (actual == predicted) ++ev.correct;
    ++ev.confusion[static_cast<std::size_t>(actual * ev.num_classes +
                                            predicted)];
  }
  return ev;
}

}  // namespace pdt::dtree
