// Serial decision-tree construction (Hunt's method, Section 2.1).
//
// Two growers are provided:
//  * grow_bfs   — breadth-first, histogram/slot based. This is the exact
//                 serial counterpart of the parallel formulations: the
//                 paper's experiments "use binary splitting at each
//                 decision tree node and grow the tree in breadth first
//                 manner". Parallel runs must reproduce its tree bit-for-
//                 bit (integration tests enforce this).
//  * grow_dfs_exact — depth-first, C4.5 style: continuous attributes are
//                 sorted at every node and every distinct value is a
//                 candidate binary cut (the costly path SLIQ/SPRINT avoid,
//                 Section 2.1). Used by the quickstart to reproduce
//                 Table 3 and as an accuracy reference.
#pragma once

#include "data/partition.hpp"
#include "dtree/tree.hpp"

namespace pdt::dtree {

struct BuildStats {
  int levels = 0;                   ///< tree levels processed
  std::int64_t nodes_expanded = 0;  ///< internal nodes created
  std::int64_t histogram_updates = 0;  ///< record-attribute work units
};

/// Breadth-first slot/histogram grower over all rows of `ds`.
[[nodiscard]] Tree grow_bfs(const data::Dataset& ds, const GrowOptions& opt,
                            BuildStats* stats = nullptr);

/// Depth-first C4.5-style grower with exact continuous thresholds.
[[nodiscard]] Tree grow_dfs_exact(const data::Dataset& ds,
                                  const GrowOptions& opt,
                                  BuildStats* stats = nullptr);

}  // namespace pdt::dtree
