#include "dtree/builder.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "dtree/histogram.hpp"
#include "dtree/split_eval.hpp"

namespace pdt::dtree {

namespace {

std::vector<data::RowId> all_rows(const data::Dataset& ds) {
  std::vector<data::RowId> rows(ds.num_rows());
  std::iota(rows.begin(), rows.end(), data::RowId{0});
  return rows;
}

}  // namespace

Tree grow_bfs(const data::Dataset& ds, const GrowOptions& opt,
              BuildStats* stats) {
  const SlotMapper mapper(ds, opt.cont_bins);
  const AttrLayout layout(ds.schema(), opt.cont_bins);

  Tree tree(class_counts_of_rows(ds, all_rows(ds)));
  tree.set_split_observer(opt.split_observer);
  struct FrontierNode {
    int id;
    std::vector<data::RowId> rows;
  };
  std::vector<FrontierNode> frontier;
  frontier.push_back({tree.root(), all_rows(ds)});

  Hist hist(static_cast<std::size_t>(layout.total()));
  BuildStats local{};
  while (!frontier.empty()) {
    ++local.levels;
    std::vector<FrontierNode> next;
    for (FrontierNode& fn : frontier) {
      if (tree.node(fn.id).depth >= opt.max_depth) continue;
      std::fill(hist.begin(), hist.end(), 0);
      accumulate(hist, layout, mapper, fn.rows);
      local.histogram_updates +=
          static_cast<std::int64_t>(fn.rows.size()) * layout.num_attributes();
      const SplitDecision d =
          choose_split(hist, layout, ds.schema(), mapper, opt);
      if (d.test.is_leaf()) continue;
      const int first = tree.expand(fn.id, d);
      if (opt.split_observer != nullptr) {
        opt.split_observer->on_feed(
            fn.id, 0, static_cast<std::int64_t>(fn.rows.size()));
      }
      ++local.nodes_expanded;
      std::vector<std::vector<data::RowId>> child_rows(
          static_cast<std::size_t>(d.test.num_children));
      for (const data::RowId row : fn.rows) {
        const int slot = mapper.slot(d.test.attr, row);
        child_rows[static_cast<std::size_t>(d.test.child_of_slot(slot))]
            .push_back(row);
      }
      for (int k = 0; k < d.test.num_children; ++k) {
        auto& rows = child_rows[static_cast<std::size_t>(k)];
        if (!rows.empty()) {
          next.push_back({first + k, std::move(rows)});
        }
      }
    }
    frontier = std::move(next);
  }
  if (stats != nullptr) *stats = local;
  return tree;
}

namespace {

/// Best split with exact continuous thresholds, evaluated from raw rows.
SplitDecision choose_exact(const data::Dataset& ds,
                           std::span<const data::RowId> rows,
                           const GrowOptions& opt) {
  const int c_num = ds.schema().num_classes();
  const std::vector<std::int64_t> parent = class_counts_of_rows(ds, rows);
  BestTracker tracker(parent, opt);
  if (tracker.forced_leaf()) return tracker.take();

  std::vector<std::int64_t> left(static_cast<std::size_t>(c_num));
  for (int a = 0; a < ds.num_attributes(); ++a) {
    const data::Attribute& attr = ds.schema().attr(a);
    if (attr.is_continuous()) {
      // C4.5: sort this node's values, scan distinct cuts.
      std::vector<std::pair<double, int>> vals;
      vals.reserve(rows.size());
      for (const data::RowId row : rows) {
        vals.emplace_back(ds.cont(a, row), ds.label(row));
      }
      std::sort(vals.begin(), vals.end());
      std::fill(left.begin(), left.end(), 0);
      for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
        ++left[static_cast<std::size_t>(vals[i].second)];
        if (vals[i].first == vals[i + 1].first) continue;
        SplitTest test;
        test.kind = SplitTest::Kind::Threshold;
        test.attr = a;
        test.threshold = 0.5 * (vals[i].first + vals[i + 1].first);
        tracker.offer_binary(left, std::move(test));
      }
      continue;
    }

    const std::vector<std::int64_t> table =
        categorical_distribution(ds, rows, a);
    const int slots = attr.cardinality;
    if (attr.ordered) {
      tracker.offer_ordered_table(a, table, slots,
                                  SplitTest::Kind::OrderedSlot,
                                  [](int t) { return static_cast<double>(t); });
      continue;
    }
    tracker.offer_nominal(a, table, slots);
  }
  return tracker.take();
}

void grow_exact_rec(Tree& tree, int id, const data::Dataset& ds,
                    std::vector<data::RowId> rows, const GrowOptions& opt,
                    BuildStats& stats) {
  if (tree.node(id).depth >= opt.max_depth) return;
  const SplitDecision d = choose_exact(ds, rows, opt);
  if (d.test.is_leaf()) return;
  const int first = tree.expand(id, d);
  if (opt.split_observer != nullptr) {
    opt.split_observer->on_feed(id, 0,
                                static_cast<std::int64_t>(rows.size()));
  }
  ++stats.nodes_expanded;
  stats.levels = std::max(stats.levels, tree.node(first).depth);
  std::vector<std::vector<data::RowId>> child_rows(
      static_cast<std::size_t>(d.test.num_children));
  for (const data::RowId row : rows) {
    child_rows[static_cast<std::size_t>(tree.route(id, ds, row))].push_back(
        row);
  }
  rows.clear();
  rows.shrink_to_fit();
  for (int k = 0; k < d.test.num_children; ++k) {
    auto& cr = child_rows[static_cast<std::size_t>(k)];
    if (!cr.empty()) {
      grow_exact_rec(tree, first + k, ds, std::move(cr), opt, stats);
    }
  }
}

}  // namespace

Tree grow_dfs_exact(const data::Dataset& ds, const GrowOptions& opt,
                    BuildStats* stats) {
  Tree tree(class_counts_of_rows(ds, all_rows(ds)));
  tree.set_split_observer(opt.split_observer);
  BuildStats local{};
  grow_exact_rec(tree, tree.root(), ds, all_rows(ds), opt, local);
  if (stats != nullptr) *stats = local;
  return tree;
}

}  // namespace pdt::dtree
