// Shared split-candidate evaluation.
//
// Every builder in this repository — the slot/histogram growers, the
// C4.5-style exact grower, and the SLIQ/SPRINT attribute-list growers —
// funnels its candidates through BestTracker, so the deterministic
// tie-breaking (higher gain, then lower attribute, then earlier candidate)
// is defined in exactly one place and "different algorithms grow the same
// tree" is a meaningful, testable statement.
#pragma once

#include <span>

#include "dtree/split.hpp"

namespace pdt::dtree {

/// Accumulates the best split seen so far. Candidates must be offered in
/// deterministic order (attributes ascending, thresholds ascending);
/// strictly-greater gain wins, so the first-seen candidate prevails on
/// ties.
class BestTracker {
 public:
  BestTracker(std::span<const std::int64_t> parent_counts,
              const GrowOptions& opt);

  /// True when the node must stay a leaf regardless of candidates
  /// (too small or pure).
  [[nodiscard]] bool forced_leaf() const { return forced_leaf_; }

  /// Offer a binary split: `left` is the class-count vector of child 0;
  /// `test` carries the attr/kind/threshold/subset fields (num_children
  /// is set by the tracker). No-op if either side would be empty.
  void offer_binary(std::span<const std::int64_t> left, SplitTest test);

  /// Offer a multiway split over a full (slots x classes) table.
  /// No-op unless at least two children are non-empty.
  void offer_multiway(int attr, std::span<const std::int64_t> table,
                      int slots);

  /// Evaluate a nominal attribute's (slots x classes) table under the
  /// configured policy: a Subset prefix scan in class-0-probability order
  /// (Binary policy) or one Multiway candidate (Multiway policy).
  void offer_nominal(int attr, std::span<const std::int64_t> table,
                     int slots);

  /// Evaluate an ordered attribute's (slots x classes) table: every slot
  /// boundary is a binary candidate. `kind` is Threshold or OrderedSlot;
  /// for Threshold the real-valued cut for boundary t is
  /// `threshold_of(t)`.
  template <typename ThresholdFn>
  void offer_ordered_table(int attr, std::span<const std::int64_t> table,
                           int slots, SplitTest::Kind kind,
                           ThresholdFn threshold_of) {
    std::vector<std::int64_t> left(static_cast<std::size_t>(num_classes_), 0);
    for (int t = 0; t <= slots - 2; ++t) {
      for (int c = 0; c < num_classes_; ++c) {
        left[static_cast<std::size_t>(c)] +=
            table[static_cast<std::size_t>(t * num_classes_ + c)];
      }
      SplitTest test;
      test.kind = kind;
      test.attr = attr;
      test.slot_threshold = t;
      test.threshold = kind == SplitTest::Kind::Threshold
                           ? threshold_of(t)
                           : static_cast<double>(t);
      offer_binary(left, std::move(test));
    }
  }

  /// The winning decision (Leaf if nothing beat min_gain).
  [[nodiscard]] SplitDecision take();

  [[nodiscard]] std::span<const std::int64_t> parent() const {
    return parent_;
  }
  [[nodiscard]] std::int64_t parent_total() const { return n_; }

 private:
  /// Track the top-2 gains on *distinct* attributes over every valid
  /// candidate (no min_gain floor): when a winner exists it is always the
  /// overall best, so top2 is the best rival attribute — the runner-up
  /// reported in SplitDecision. Strictly-greater updates keep the
  /// first-seen-wins determinism of the main tracker.
  void note_candidate(int attr, double g);

  std::span<const std::int64_t> parent_;
  const GrowOptions* opt_;
  int num_classes_;
  std::int64_t n_;
  bool forced_leaf_ = false;
  double best_gain_;
  SplitDecision best_;
  std::vector<std::int64_t> scratch_both_;
  double top1_gain_;
  int top1_attr_ = -1;
  double top2_gain_;
  int top2_attr_ = -1;
};

}  // namespace pdt::dtree
