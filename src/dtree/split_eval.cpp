#include "dtree/split_eval.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace pdt::dtree {

BestTracker::BestTracker(std::span<const std::int64_t> parent_counts,
                         const GrowOptions& opt)
    : parent_(parent_counts),
      opt_(&opt),
      num_classes_(static_cast<int>(parent_counts.size())),
      n_(total(parent_counts)),
      best_gain_(opt.min_gain),
      scratch_both_(static_cast<std::size_t>(2 * num_classes_)),
      top1_gain_(-std::numeric_limits<double>::infinity()),
      top2_gain_(-std::numeric_limits<double>::infinity()) {
  int nonzero = 0;
  for (const auto c : parent_) nonzero += c > 0 ? 1 : 0;
  forced_leaf_ = n_ < opt.min_records || nonzero <= 1;
}

void BestTracker::offer_binary(std::span<const std::int64_t> left,
                               SplitTest test) {
  if (forced_leaf_) return;
  const std::int64_t left_n = total(left);
  if (left_n == 0 || left_n == n_) return;
  for (int c = 0; c < num_classes_; ++c) {
    scratch_both_[static_cast<std::size_t>(c)] =
        left[static_cast<std::size_t>(c)];
    scratch_both_[static_cast<std::size_t>(num_classes_ + c)] =
        parent_[static_cast<std::size_t>(c)] -
        left[static_cast<std::size_t>(c)];
  }
  const double g = gain(opt_->criterion, parent_, scratch_both_, num_classes_);
  note_candidate(test.attr, g);
  if (g > best_gain_) {
    best_gain_ = g;
    best_.gain = g;
    test.num_children = 2;
    best_.test = std::move(test);
    best_.child_counts = scratch_both_;
  }
}

void BestTracker::offer_multiway(int attr,
                                 std::span<const std::int64_t> table,
                                 int slots) {
  if (forced_leaf_) return;
  int nonempty = 0;
  for (int s = 0; s < slots; ++s) {
    std::int64_t ns = 0;
    for (int c = 0; c < num_classes_; ++c) {
      ns += table[static_cast<std::size_t>(s * num_classes_ + c)];
    }
    nonempty += ns > 0 ? 1 : 0;
  }
  if (nonempty < 2) return;
  const double g = gain(opt_->criterion, parent_, table, num_classes_);
  note_candidate(attr, g);
  if (g > best_gain_) {
    best_gain_ = g;
    best_.gain = g;
    best_.test = SplitTest{};
    best_.test.kind = SplitTest::Kind::Multiway;
    best_.test.attr = attr;
    best_.test.num_children = slots;
    best_.child_counts.assign(table.begin(), table.end());
  }
}

void BestTracker::offer_nominal(int attr, std::span<const std::int64_t> table,
                                int slots) {
  if (forced_leaf_) return;
  if (opt_->policy == SplitPolicy::Multiway) {
    offer_multiway(attr, table, slots);
    return;
  }
  // Binary subset split: order values by class-0 probability (optimal for
  // two classes with Gini [Breiman et al. 84]; a strong heuristic
  // otherwise) and scan prefixes.
  std::vector<int> order;
  for (int s = 0; s < slots; ++s) {
    std::int64_t ns = 0;
    for (int c = 0; c < num_classes_; ++c) {
      ns += table[static_cast<std::size_t>(s * num_classes_ + c)];
    }
    if (ns > 0) order.push_back(s);
  }
  if (order.size() < 2) return;
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    std::int64_t nx = 0, ny = 0;
    for (int c = 0; c < num_classes_; ++c) {
      nx += table[static_cast<std::size_t>(x * num_classes_ + c)];
      ny += table[static_cast<std::size_t>(y * num_classes_ + c)];
    }
    const double px =
        static_cast<double>(table[static_cast<std::size_t>(x * num_classes_)]) /
        static_cast<double>(nx);
    const double py =
        static_cast<double>(table[static_cast<std::size_t>(y * num_classes_)]) /
        static_cast<double>(ny);
    if (px != py) return px > py;
    return x < y;
  });

  std::vector<std::int64_t> left(static_cast<std::size_t>(num_classes_), 0);
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(slots), 0);
  for (std::size_t k = 0; k + 1 < order.size(); ++k) {
    const int s = order[k];
    mask[static_cast<std::size_t>(s)] = 1;
    for (int c = 0; c < num_classes_; ++c) {
      left[static_cast<std::size_t>(c)] +=
          table[static_cast<std::size_t>(s * num_classes_ + c)];
    }
    const std::int64_t left_n = total(left);
    // Values unseen at this node route to the heavier child.
    std::vector<std::uint8_t> full = mask;
    const bool empty_to_left = left_n >= n_ - left_n;
    for (int s2 = 0; s2 < slots; ++s2) {
      std::int64_t ns = 0;
      for (int c = 0; c < num_classes_; ++c) {
        ns += table[static_cast<std::size_t>(s2 * num_classes_ + c)];
      }
      if (ns == 0) {
        full[static_cast<std::size_t>(s2)] = empty_to_left ? 1 : 0;
      }
    }
    SplitTest test;
    test.kind = SplitTest::Kind::Subset;
    test.attr = attr;
    test.in_left = std::move(full);
    offer_binary(left, std::move(test));
  }
}

void BestTracker::note_candidate(int attr, double g) {
  if (g > top1_gain_) {
    if (attr != top1_attr_) {
      top2_gain_ = top1_gain_;
      top2_attr_ = top1_attr_;
    }
    top1_gain_ = g;
    top1_attr_ = attr;
  } else if (attr != top1_attr_ && g > top2_gain_) {
    top2_gain_ = g;
    top2_attr_ = attr;
  }
}

SplitDecision BestTracker::take() {
  // A winner (if any) is the overall max, i.e. top1 — so top2 is the
  // best candidate on a different attribute. Leaf decisions keep the
  // defaults (0.0 / -1): no decision was made, so no margin exists.
  if (!best_.test.is_leaf() && top2_attr_ >= 0) {
    best_.runner_up_gain = top2_gain_;
    best_.runner_up_attr = top2_attr_;
  }
  return std::move(best_);
}

}  // namespace pdt::dtree
