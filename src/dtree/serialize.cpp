#include "dtree/serialize.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <sstream>

#include "dtree/sha256.hpp"

namespace pdt::dtree {

namespace {

// Shortest decimal that round-trips to the same double — the same rule
// tools/common's json_double_exact uses, so the digest bytes match what
// any tools-side re-serialization would produce.
std::string double_exact(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return std::string(buf);
}

std::string escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

const char* kind_name(SplitTest::Kind k) {
  switch (k) {
    case SplitTest::Kind::Leaf: return "leaf";
    case SplitTest::Kind::Threshold: return "threshold";
    case SplitTest::Kind::OrderedSlot: return "ordered_slot";
    case SplitTest::Kind::Subset: return "subset";
    case SplitTest::Kind::Multiway: return "multiway";
  }
  return "?";
}

void append_counts(std::string& out, std::span<const std::int64_t> counts) {
  out += "[";
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (c != 0) out += ",";
    out += std::to_string(counts[c]);
  }
  out += "]";
}

/// Serialize one node under its canonical ids. `canon_of` maps arena id
/// -> canonical id (-1 for detached nodes, which never appear here).
void append_node(std::string& out, const Node& nd, int canon_id,
                 int canon_parent, int canon_first_child) {
  out += "{\"id\":" + std::to_string(canon_id);
  out += ",\"parent\":" + std::to_string(canon_parent);
  out += ",\"first_child\":" + std::to_string(canon_first_child);
  out += ",\"depth\":" + std::to_string(nd.depth);
  out += ",\"majority\":" + std::to_string(nd.majority);
  out += ",\"counts\":";
  append_counts(out, nd.class_counts);
  out += ",\"kind\":\"";
  out += kind_name(nd.test.kind);
  out += "\"";
  if (!nd.is_leaf()) {
    out += ",\"attr\":" + std::to_string(nd.test.attr);
    out += ",\"children\":" + std::to_string(nd.test.num_children);
    switch (nd.test.kind) {
      case SplitTest::Kind::Threshold:
        out += ",\"threshold\":" + double_exact(nd.test.threshold);
        out += ",\"slot\":" + std::to_string(nd.test.slot_threshold);
        break;
      case SplitTest::Kind::OrderedSlot:
        out += ",\"slot\":" + std::to_string(nd.test.slot_threshold);
        break;
      case SplitTest::Kind::Subset: {
        out += ",\"in_left\":[";
        for (std::size_t v = 0; v < nd.test.in_left.size(); ++v) {
          if (v != 0) out += ",";
          out += nd.test.in_left[v] ? "1" : "0";
        }
        out += "]";
        break;
      }
      case SplitTest::Kind::Multiway:
      case SplitTest::Kind::Leaf:
        break;
    }
  }
  out += "}";
}

}  // namespace

std::vector<int> canonical_order(const Tree& tree) {
  std::vector<int> order;
  if (tree.num_nodes() == 0) return order;
  order.reserve(static_cast<std::size_t>(tree.num_nodes()));
  std::deque<int> queue{tree.root()};
  while (!queue.empty()) {
    const int id = queue.front();
    queue.pop_front();
    order.push_back(id);
    const Node& nd = tree.node(id);
    if (nd.is_leaf()) continue;
    for (int k = 0; k < nd.test.num_children; ++k) {
      queue.push_back(nd.first_child + k);
    }
  }
  return order;
}

std::string canonical_nodes_json(const Tree& tree) {
  const std::vector<int> order = canonical_order(tree);
  std::vector<int> canon_of(static_cast<std::size_t>(tree.num_nodes()), -1);
  for (std::size_t k = 0; k < order.size(); ++k) {
    canon_of[static_cast<std::size_t>(order[k])] = static_cast<int>(k);
  }
  // Canonical first_child falls out of the level-order walk: children are
  // enqueued contiguously, so child canonical ids are consecutive and the
  // next unassigned id advances exactly like Tree::expand()'s arena.
  std::string out = "[";
  for (std::size_t k = 0; k < order.size(); ++k) {
    if (k != 0) out += ",";
    const Node& nd = tree.node(order[k]);
    const int canon_parent =
        nd.parent < 0 ? -1 : canon_of[static_cast<std::size_t>(nd.parent)];
    const int canon_first =
        nd.is_leaf() ? -1
                     : canon_of[static_cast<std::size_t>(nd.first_child)];
    append_node(out, nd, static_cast<int>(k), canon_parent, canon_first);
  }
  out += "]";
  return out;
}

std::string model_digest(const Tree& tree) {
  return sha256_hex(canonical_nodes_json(tree));
}

std::string model_json(const Tree& tree, const ModelMeta& meta,
                       std::span<const SplitAuditEntry> audit,
                       double accuracy) {
  const std::string nodes = canonical_nodes_json(tree);
  std::string out = "{\"schema\":\"pdt-model-v1\"";
  out += ",\"meta\":{";
  out += "\"harness\":\"" + escaped(meta.harness) + "\"";
  out += ",\"tag\":\"" + escaped(meta.tag) + "\"";
  out += ",\"formulation\":\"" + escaped(meta.formulation) + "\"";
  out += ",\"procs\":" + std::to_string(meta.procs);
  out += ",\"workload\":{\"generator\":\"quest\"";
  out += ",\"function\":" + std::to_string(meta.quest_function);
  out += ",\"seed\":" + std::to_string(meta.train_seed);
  out += ",\"rows\":" + std::to_string(meta.train_rows);
  out += ",\"paper_bins\":";
  out += meta.paper_bins ? "true" : "false";
  out += "}";
  if (meta.eval_seed != 0) {
    out += ",\"eval\":{\"seed\":" + std::to_string(meta.eval_seed);
    out += ",\"rows\":" + std::to_string(meta.eval_rows);
    if (accuracy >= 0.0) out += ",\"accuracy\":" + double_exact(accuracy);
    out += "}";
  }
  out += "}";
  out += ",\"digest\":\"" + sha256_hex(nodes) + "\"";
  out += ",\"num_nodes\":" +
         std::to_string(static_cast<int>(canonical_order(tree).size()));
  out += ",\"num_leaves\":" + std::to_string(tree.num_leaves());
  out += ",\"depth\":" + std::to_string(tree.depth());
  out += ",\"nodes\":" + nodes;

  // Pairing rule: audit entries survive iff their node is a reachable
  // internal node of the *final* tree (a leaf-ified or detached node's
  // decision was revoked), remapped to canonical ids and sorted by them.
  const std::vector<int> order = canonical_order(tree);
  std::vector<int> canon_of(static_cast<std::size_t>(tree.num_nodes()), -1);
  for (std::size_t k = 0; k < order.size(); ++k) {
    canon_of[static_cast<std::size_t>(order[k])] = static_cast<int>(k);
  }
  std::vector<std::pair<int, const SplitAuditEntry*>> paired;
  for (const SplitAuditEntry& e : audit) {
    if (e.node_id < 0 || e.node_id >= tree.num_nodes()) continue;
    if (tree.node(e.node_id).is_leaf()) continue;
    const int canon = canon_of[static_cast<std::size_t>(e.node_id)];
    if (canon < 0) continue;
    paired.emplace_back(canon, &e);
  }
  std::sort(paired.begin(), paired.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (!paired.empty()) {
    out += ",\"audit\":[";
    for (std::size_t i = 0; i < paired.size(); ++i) {
      if (i != 0) out += ",";
      const SplitAuditEntry& e = *paired[i].second;
      out += "{\"node\":" + std::to_string(paired[i].first);
      out += ",\"gain\":" + double_exact(e.gain);
      out += ",\"runner_up_gain\":" + double_exact(e.runner_up_gain);
      out += ",\"runner_up_attr\":" + std::to_string(e.runner_up_attr);
      out += ",\"phase\":\"" + escaped(e.phase) + "\"";
      out += ",\"level\":" + std::to_string(e.level);
      out += ",\"per_rank_records\":";
      append_counts(out, e.per_rank_records);
      out += "}";
    }
    out += "]";
  }
  out += "}\n";
  return out;
}

namespace {

/// Cursor over the canonical byte grammar. Every helper either consumes
/// exactly what the writer emitted or records the position of the first
/// mismatch.
class CanonCursor {
 public:
  explicit CanonCursor(std::string_view text) : text_(text) {}

  [[nodiscard]] bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return fail();
    pos_ += lit.size();
    return true;
  }

  /// literal() without recording a failure — for probing alternatives.
  [[nodiscard]] bool try_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  [[nodiscard]] bool integer(int* out) {
    std::int64_t wide = 0;
    if (!integer64(&wide)) return false;
    if (wide < INT32_MIN || wide > INT32_MAX) return fail();
    *out = static_cast<int>(wide);
    return true;
  }

  [[nodiscard]] bool integer64(std::int64_t* out) {
    const std::size_t start = pos_;
    bool neg = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      neg = true;
      ++pos_;
    }
    std::uint64_t mag = 0;
    std::size_t digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      mag = mag * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
      if (mag > (std::uint64_t{1} << 63)) {
        pos_ = start;
        return fail();
      }
      ++pos_;
      ++digits;
    }
    if (digits == 0) {
      pos_ = start;
      return fail();
    }
    *out = neg ? -static_cast<std::int64_t>(mag)
               : static_cast<std::int64_t>(mag);
    return true;
  }

  [[nodiscard]] bool number(double* out) {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return fail();
    *out = v;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  [[nodiscard]] bool counts(std::vector<std::int64_t>* out) {
    out->clear();
    if (!literal("[")) return false;
    if (peek() == ']') return literal("]");
    while (true) {
      std::int64_t v = 0;
      if (!integer64(&v)) return false;
      out->push_back(v);
      if (peek() == ',') {
        if (!literal(",")) return false;
        continue;
      }
      return literal("]");
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  [[nodiscard]] bool done() const { return pos_ == text_.size(); }
  [[nodiscard]] std::size_t pos() const { return pos_; }

  [[nodiscard]] bool fail() {
    if (!failed_) {
      failed_ = true;
      fail_pos_ = pos_;
    }
    return false;
  }
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] std::size_t fail_pos() const { return fail_pos_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::size_t fail_pos_ = 0;
};

bool parse_one_node(CanonCursor& c, NodeSpec* spec, int* id) {
  spec->test = SplitTest{};
  spec->counts.clear();
  if (!c.literal("{\"id\":") || !c.integer(id)) return false;
  if (!c.literal(",\"parent\":") || !c.integer(&spec->parent)) return false;
  if (!c.literal(",\"first_child\":") || !c.integer(&spec->first_child)) {
    return false;
  }
  if (!c.literal(",\"depth\":") || !c.integer(&spec->depth)) return false;
  if (!c.literal(",\"majority\":") || !c.integer(&spec->majority)) {
    return false;
  }
  if (!c.literal(",\"counts\":") || !c.counts(&spec->counts)) return false;
  if (!c.literal(",\"kind\":\"")) return false;
  static constexpr SplitTest::Kind kKinds[] = {
      SplitTest::Kind::Leaf, SplitTest::Kind::Threshold,
      SplitTest::Kind::OrderedSlot, SplitTest::Kind::Subset,
      SplitTest::Kind::Multiway};
  bool matched = false;
  for (const SplitTest::Kind k : kKinds) {
    if (c.try_literal(std::string(kind_name(k)) + "\"")) {
      spec->test.kind = k;
      matched = true;
      break;
    }
  }
  if (!matched) return c.fail();
  if (spec->test.kind == SplitTest::Kind::Leaf) return c.literal("}");
  if (!c.literal(",\"attr\":") || !c.integer(&spec->test.attr)) return false;
  if (!c.literal(",\"children\":") || !c.integer(&spec->test.num_children)) {
    return false;
  }
  switch (spec->test.kind) {
    case SplitTest::Kind::Threshold: {
      if (!c.literal(",\"threshold\":") || !c.number(&spec->test.threshold)) {
        return false;
      }
      if (!c.literal(",\"slot\":") ||
          !c.integer(&spec->test.slot_threshold)) {
        return false;
      }
      break;
    }
    case SplitTest::Kind::OrderedSlot:
      if (!c.literal(",\"slot\":") ||
          !c.integer(&spec->test.slot_threshold)) {
        return false;
      }
      break;
    case SplitTest::Kind::Subset: {
      if (!c.literal(",\"in_left\":[")) return false;
      spec->test.in_left.clear();
      if (c.peek() != ']') {
        while (true) {
          if (c.peek() != '0' && c.peek() != '1') return c.fail();
          spec->test.in_left.push_back(c.peek() == '1' ? 1 : 0);
          if (!c.literal(c.peek() == '1' ? "1" : "0")) return false;
          if (c.peek() == ',') {
            if (!c.literal(",")) return false;
            continue;
          }
          break;
        }
      }
      if (!c.literal("]")) return false;
      break;
    }
    case SplitTest::Kind::Multiway:
    case SplitTest::Kind::Leaf:
      break;
  }
  return c.literal("}");
}

}  // namespace

std::string parse_canonical_nodes(std::string_view json,
                                  std::vector<NodeSpec>* out) {
  out->clear();
  CanonCursor c(json);
  const auto error_at = [&c]() {
    return "canonical nodes: malformed at byte " +
           std::to_string(c.failed() ? c.fail_pos() : c.pos());
  };
  if (!c.literal("[")) return error_at();
  if (c.peek() != ']') {
    while (true) {
      NodeSpec spec;
      int id = -1;
      if (!parse_one_node(c, &spec, &id)) return error_at();
      if (id != static_cast<int>(out->size())) {
        return "canonical nodes: node " + std::to_string(out->size()) +
               " carries id " + std::to_string(id);
      }
      out->push_back(std::move(spec));
      if (c.peek() == ',') {
        if (!c.literal(",")) return error_at();
        continue;
      }
      break;
    }
  }
  if (!c.literal("]") || !c.done()) return error_at();
  return {};
}

std::string tree_from_nodes(std::span<const NodeSpec> nodes, Tree* out) {
  std::ostringstream err;
  if (nodes.empty()) {
    return "model has no nodes";
  }
  const NodeSpec& root = nodes[0];
  if (root.parent != -1 || root.depth != 0) {
    return "node 0 is not a root (parent/depth mismatch)";
  }
  Tree tree(std::vector<std::int64_t>(root.counts));
  if (tree.node(0).majority != root.majority) {
    err << "node 0: majority " << root.majority
        << " does not match its counts (derived "
        << tree.node(0).majority << ")";
    return err.str();
  }
  // Replay expand() in canonical id order: children were numbered in the
  // same pop order, so every recorded first_child must equal the arena
  // size at its expansion — any drift means a corrupted document.
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const NodeSpec& spec = nodes[id];
    if (spec.test.is_leaf()) {
      if (spec.first_child != -1) {
        err << "node " << id << ": leaf with first_child "
            << spec.first_child;
        return err.str();
      }
      continue;
    }
    if (static_cast<int>(id) >= tree.num_nodes()) {
      err << "node " << id << ": unreachable from the root";
      return err.str();
    }
    const int nc = spec.test.num_children;
    if (nc < 2 || spec.first_child != tree.num_nodes()) {
      err << "node " << id << ": first_child " << spec.first_child
          << " does not match the replayed arena (expected "
          << tree.num_nodes() << ")";
      return err.str();
    }
    if (spec.first_child + nc > static_cast<int>(nodes.size())) {
      err << "node " << id << ": children run past the node array";
      return err.str();
    }
    SplitDecision d;
    d.test = spec.test;
    const std::size_t c_num = spec.counts.size();
    d.child_counts.reserve(static_cast<std::size_t>(nc) * c_num);
    for (int k = 0; k < nc; ++k) {
      const NodeSpec& child = nodes[static_cast<std::size_t>(spec.first_child + k)];
      if (child.parent != static_cast<int>(id) ||
          child.depth != spec.depth + 1 || child.counts.size() != c_num) {
        err << "node " << spec.first_child + k
            << ": parent/depth/counts do not match its parent " << id;
        return err.str();
      }
      d.child_counts.insert(d.child_counts.end(), child.counts.begin(),
                            child.counts.end());
    }
    tree.expand(static_cast<int>(id), d);
    for (int k = 0; k < nc; ++k) {
      const int cid = spec.first_child + k;
      if (tree.node(cid).majority !=
          nodes[static_cast<std::size_t>(cid)].majority) {
        err << "node " << cid << ": majority "
            << nodes[static_cast<std::size_t>(cid)].majority
            << " does not match the Hunt rule (derived "
            << tree.node(cid).majority << ")";
        return err.str();
      }
    }
  }
  if (tree.num_nodes() != static_cast<int>(nodes.size())) {
    err << "replay produced " << tree.num_nodes() << " nodes for a "
        << nodes.size() << "-node document (dangling leaves?)";
    return err.str();
  }
  if (out != nullptr) *out = std::move(tree);
  return {};
}

}  // namespace pdt::dtree
