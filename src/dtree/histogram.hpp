// Class-distribution histograms.
//
// The flat per-node histogram (AttrLayout) is what Hunt's method evaluates
// split tests from and what the parallel formulations globally reduce
// (Section 3.1 step 2-3). Also provides the human-readable distribution
// tables of the paper's Tables 2 and 3.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/partition.hpp"
#include "dtree/slots.hpp"

namespace pdt::dtree {

using Hist = std::vector<std::int64_t>;

/// Add `rows` of the mapper's dataset into the flat histogram `h`
/// (length layout.total()).
void accumulate(std::span<std::int64_t> h, const AttrLayout& layout,
                const SlotMapper& mapper, std::span<const data::RowId> rows);

/// Per-class totals recovered from a flat histogram (sums attribute 0's
/// table; every attribute's table has the same class marginals).
[[nodiscard]] std::vector<std::int64_t> class_counts(
    std::span<const std::int64_t> h, const AttrLayout& layout);

/// Class counts computed directly from rows.
[[nodiscard]] std::vector<std::int64_t> class_counts_of_rows(
    const data::Dataset& ds, std::span<const data::RowId> rows);

/// Table-2 style: per-value class counts of a categorical attribute over
/// `rows`. Result is cardinality x num_classes, row-major.
[[nodiscard]] std::vector<std::int64_t> categorical_distribution(
    const data::Dataset& ds, std::span<const data::RowId> rows, int attr);

/// Table-3 style: for each distinct value v of a continuous attribute, the
/// class counts of the binary tests (<= v) and (> v).
struct BinaryTestRow {
  double value = 0.0;
  std::vector<std::int64_t> le;  ///< class counts with attr <= value
  std::vector<std::int64_t> gt;  ///< class counts with attr >  value
};
[[nodiscard]] std::vector<BinaryTestRow> continuous_binary_distribution(
    const data::Dataset& ds, std::span<const data::RowId> rows, int attr);

/// Render a Table-2 style distribution as text (for the quickstart).
[[nodiscard]] std::string format_categorical_distribution(
    const data::Dataset& ds, std::span<const std::int64_t> table, int attr);
[[nodiscard]] std::string format_binary_distribution(
    const data::Dataset& ds, const std::vector<BinaryTestRow>& rows, int attr);

}  // namespace pdt::dtree
