// Canonical pdt-model-v1 serialization of dtree::Tree + content digest.
//
// The serial builder and the three parallel formulations are proven to
// grow identical trees; this module turns that identity into an artifact
// property: a canonical byte rendering of the tree whose SHA-256 is the
// model digest, so tree-identity gates become hash comparisons over
// committed files instead of in-process same_as() checks.
//
// Canonical form (the digest covers exactly these bytes):
//  * nodes are renumbered in level order over *reachable* nodes only
//    (pruning detaches arena nodes; they never serialize), children
//    contiguous — the same order Tree::expand() allocates, so unpruned
//    BFS-grown trees serialize with their arena ids unchanged;
//  * compact RFC 8259 JSON, no whitespace, fixed key order, shortest
//    round-trip doubles — byte-stable across platforms.
//
// The full document adds provenance meta (enough for `pdt-tree eval` to
// regenerate the datasets), summary counts, and the optional SplitAudit
// section; none of that is covered by the digest (per-rank feed counts
// depend on P, while the digest must not).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dtree/tree.hpp"

namespace pdt::dtree {

/// One audited split decision. obs::SplitAudit records these with arena
/// node ids; model_json() pairs them 1:1 with the reachable internal
/// nodes of the final tree (entries for pruned/leaf-ified nodes drop out)
/// and rewrites ids to canonical.
struct SplitAuditEntry {
  int node_id = -1;
  double gain = 0.0;
  double runner_up_gain = 0.0;   ///< best rival attribute's gain
  int runner_up_attr = -1;       ///< -1: no second attribute competed
  std::string phase;             ///< profiler phase active at expand time
  int level = -1;                ///< tree level (node depth)
  std::vector<std::int64_t> per_rank_records;  ///< feed counts by rank
};

/// Dataset + run provenance embedded in the model document. The workload
/// fields describe the Quest generator pipeline (the only data source the
/// bench harnesses use): `paper_bins` means the fig6 preprocessing —
/// discretize_uniform(quest_generate(...), quest_paper_bins()).
struct ModelMeta {
  std::string harness;
  std::string tag;
  std::string formulation;
  int procs = 1;
  int quest_function = 2;
  std::uint64_t train_seed = 1;
  std::int64_t train_rows = 0;
  bool paper_bins = false;
  std::uint64_t eval_seed = 0;   ///< 0: no held-out evaluation recorded
  std::int64_t eval_rows = 0;
};

/// Canonical (level-order, reachable-only) numbering: out[k] is the arena
/// id of canonical node k. Identity for unpruned BFS-grown trees.
[[nodiscard]] std::vector<int> canonical_order(const Tree& tree);

/// The canonical "nodes" array — the exact byte string the digest covers.
[[nodiscard]] std::string canonical_nodes_json(const Tree& tree);

/// SHA-256 hex of canonical_nodes_json(tree).
[[nodiscard]] std::string model_digest(const Tree& tree);

/// Full pdt-model-v1 document (compact JSON, trailing newline).
/// `accuracy` >= 0 records the held-out accuracy under meta's eval seed.
[[nodiscard]] std::string model_json(const Tree& tree, const ModelMeta& meta,
                                     std::span<const SplitAuditEntry> audit = {},
                                     double accuracy = -1.0);

/// A parsed canonical node, as read back from a model document's "nodes"
/// array (JSON parsing itself lives tools-side; this is the plain form).
struct NodeSpec {
  SplitTest test;
  int parent = -1;
  int first_child = -1;
  int depth = 0;
  std::vector<std::int64_t> counts;
  int majority = 0;
};

/// Rebuild a Tree by replaying expand() over canonical node specs in id
/// order, validating every derived field (parent/first_child/depth links,
/// Hunt-rule majorities) against the specs. Returns "" on success, else a
/// description of the first inconsistency. On success `tree_from_nodes ->
/// model_digest` round-trips the digest of the serialized tree.
[[nodiscard]] std::string tree_from_nodes(std::span<const NodeSpec> nodes,
                                          Tree* out);

/// Strict parser for the exact byte grammar canonical_nodes_json()
/// produces (fixed key order, compact separators): the inverse used by
/// the pdt-ckpt-v1 loader, which must rebuild a tree from a checkpoint's
/// tree section without depending on the tools-side JSON parser. Any
/// deviation from the canonical grammar — reordered keys, whitespace,
/// trailing bytes — is an error, not a tolerated variant, since the
/// section digest covers exactly these bytes. Returns "" on success, else
/// a description of the first offending byte.
[[nodiscard]] std::string parse_canonical_nodes(std::string_view json,
                                                std::vector<NodeSpec>* out);

}  // namespace pdt::dtree
