#include "dtree/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

namespace pdt::dtree {

void accumulate(std::span<std::int64_t> h, const AttrLayout& layout,
                const SlotMapper& mapper, std::span<const data::RowId> rows) {
  assert(h.size() == static_cast<std::size_t>(layout.total()));
  const data::Dataset& ds = mapper.dataset();
  const int num_attrs = layout.num_attributes();
  for (const data::RowId row : rows) {
    const int cls = ds.label(row);
    for (int a = 0; a < num_attrs; ++a) {
      const int s = mapper.slot(a, row);
      ++h[static_cast<std::size_t>(layout.index(a, s, cls))];
    }
  }
}

std::vector<std::int64_t> class_counts(std::span<const std::int64_t> h,
                                       const AttrLayout& layout) {
  const int c_num = layout.num_classes();
  std::vector<std::int64_t> counts(static_cast<std::size_t>(c_num), 0);
  for (int s = 0; s < layout.slots(0); ++s) {
    for (int c = 0; c < c_num; ++c) {
      counts[static_cast<std::size_t>(c)] +=
          h[static_cast<std::size_t>(layout.index(0, s, c))];
    }
  }
  return counts;
}

std::vector<std::int64_t> class_counts_of_rows(
    const data::Dataset& ds, std::span<const data::RowId> rows) {
  std::vector<std::int64_t> counts(
      static_cast<std::size_t>(ds.schema().num_classes()), 0);
  for (const data::RowId row : rows) {
    ++counts[static_cast<std::size_t>(ds.label(row))];
  }
  return counts;
}

std::vector<std::int64_t> categorical_distribution(
    const data::Dataset& ds, std::span<const data::RowId> rows, int attr) {
  const auto& a = ds.schema().attr(attr);
  assert(a.is_categorical());
  const int c_num = ds.schema().num_classes();
  std::vector<std::int64_t> table(
      static_cast<std::size_t>(a.cardinality * c_num), 0);
  for (const data::RowId row : rows) {
    const int v = ds.cat(attr, row);
    ++table[static_cast<std::size_t>(v * c_num + ds.label(row))];
  }
  return table;
}

std::vector<BinaryTestRow> continuous_binary_distribution(
    const data::Dataset& ds, std::span<const data::RowId> rows, int attr) {
  assert(ds.schema().attr(attr).is_continuous());
  const int c_num = ds.schema().num_classes();
  // distinct value -> class counts at that exact value
  std::map<double, std::vector<std::int64_t>> at_value;
  std::vector<std::int64_t> totals(static_cast<std::size_t>(c_num), 0);
  for (const data::RowId row : rows) {
    auto& counts = at_value[ds.cont(attr, row)];
    if (counts.empty()) counts.assign(static_cast<std::size_t>(c_num), 0);
    ++counts[static_cast<std::size_t>(ds.label(row))];
    ++totals[static_cast<std::size_t>(ds.label(row))];
  }
  std::vector<BinaryTestRow> out;
  std::vector<std::int64_t> below(static_cast<std::size_t>(c_num), 0);
  for (const auto& [value, counts] : at_value) {
    BinaryTestRow r;
    r.value = value;
    r.le.resize(static_cast<std::size_t>(c_num));
    r.gt.resize(static_cast<std::size_t>(c_num));
    for (int c = 0; c < c_num; ++c) {
      below[static_cast<std::size_t>(c)] += counts[static_cast<std::size_t>(c)];
      r.le[static_cast<std::size_t>(c)] = below[static_cast<std::size_t>(c)];
      r.gt[static_cast<std::size_t>(c)] =
          totals[static_cast<std::size_t>(c)] -
          below[static_cast<std::size_t>(c)];
    }
    out.push_back(std::move(r));
  }
  return out;
}

std::string format_categorical_distribution(
    const data::Dataset& ds, std::span<const std::int64_t> table, int attr) {
  const auto& a = ds.schema().attr(attr);
  const int c_num = ds.schema().num_classes();
  std::ostringstream os;
  os << "Attribute Value";
  for (int c = 0; c < c_num; ++c) os << " | " << ds.schema().class_name(c);
  os << '\n';
  for (int v = 0; v < a.cardinality; ++v) {
    const std::string& name =
        v < static_cast<int>(a.value_names.size())
            ? a.value_names[static_cast<std::size_t>(v)]
            : std::to_string(v);
    os << name;
    for (int c = 0; c < c_num; ++c) {
      os << " | " << table[static_cast<std::size_t>(v * c_num + c)];
    }
    os << '\n';
  }
  return os.str();
}

std::string format_binary_distribution(const data::Dataset& ds,
                                       const std::vector<BinaryTestRow>& rows,
                                       int attr) {
  const int c_num = ds.schema().num_classes();
  std::ostringstream os;
  os << ds.schema().attr(attr).name << " | test";
  for (int c = 0; c < c_num; ++c) os << " | " << ds.schema().class_name(c);
  os << '\n';
  for (const auto& r : rows) {
    os << r.value << " | <=";
    for (int c = 0; c < c_num; ++c) os << " | " << r.le[static_cast<std::size_t>(c)];
    os << '\n' << r.value << " | > ";
    for (int c = 0; c < c_num; ++c) os << " | " << r.gt[static_cast<std::size_t>(c)];
    os << '\n';
  }
  return os.str();
}

}  // namespace pdt::dtree
