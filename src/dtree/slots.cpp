#include "dtree/slots.hpp"

#include <cassert>

#include "data/discretize.hpp"

namespace pdt::dtree {

AttrLayout::AttrLayout(const data::Schema& schema, int cont_bins)
    : num_classes_(schema.num_classes()) {
  const int n = schema.num_attributes();
  slots_.reserve(static_cast<std::size_t>(n));
  offsets_.reserve(static_cast<std::size_t>(n));
  int off = 0;
  for (int a = 0; a < n; ++a) {
    const auto& attr = schema.attr(a);
    const int s = attr.is_categorical() ? attr.cardinality : cont_bins;
    assert(s >= 1);
    slots_.push_back(s);
    offsets_.push_back(off);
    off += s * num_classes_;
  }
  total_ = off;
}

SlotMapper::SlotMapper(const data::Dataset& ds, int cont_bins)
    : ds_(&ds), cont_bins_(cont_bins) {
  const int n = ds.num_attributes();
  cuts_.resize(static_cast<std::size_t>(n));
  lo_.resize(static_cast<std::size_t>(n), 0.0);
  hi_.resize(static_cast<std::size_t>(n), 0.0);
  for (int a = 0; a < n; ++a) {
    if (!ds.schema().attr(a).is_continuous()) continue;
    assert(cont_bins >= 2);
    const auto [lo, hi] = ds.cont_range(a);
    lo_[static_cast<std::size_t>(a)] = lo;
    hi_[static_cast<std::size_t>(a)] = hi;
    cuts_[static_cast<std::size_t>(a)] =
        data::uniform_boundaries(lo, hi, cont_bins);
  }
}

int SlotMapper::slot_of_value(int attr, double v) const {
  return data::bin_of(v, cuts_[static_cast<std::size_t>(attr)]);
}

double SlotMapper::bin_center(int attr, int s) const {
  const auto& cuts = cuts_[static_cast<std::size_t>(attr)];
  const double lo =
      s == 0 ? lo_[static_cast<std::size_t>(attr)] : cuts[static_cast<std::size_t>(s - 1)];
  const double hi = s == static_cast<int>(cuts.size())
                        ? hi_[static_cast<std::size_t>(attr)]
                        : cuts[static_cast<std::size_t>(s)];
  return 0.5 * (lo + hi);
}

}  // namespace pdt::dtree
