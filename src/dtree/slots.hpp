// Slot mapping: a uniform finite-domain view of every attribute.
//
// Histogram-based tree construction (SLIQ/SPRINT/ScalParC and this paper)
// reduces each attribute to a finite set of "slots" whose class
// distribution is what processors exchange:
//   * a categorical attribute's slots are its values (the paper's M
//     distinct values per discrete attribute);
//   * a continuous attribute's slots are micro-bins over its global range
//     (the histogram the per-node discretizers of Section 3.4 consume).
//
// AttrLayout packs all per-attribute class-distribution tables for one
// tree node into a single flat buffer of int64 counts — this buffer is the
// unit of communication in all three parallel formulations (size
// C * A_d * M in the paper's notation).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace pdt::dtree {

/// Where each attribute's (slots x classes) table lives inside the flat
/// per-node histogram buffer.
class AttrLayout {
 public:
  AttrLayout() = default;
  /// `cont_bins` micro-bins per continuous attribute.
  AttrLayout(const data::Schema& schema, int cont_bins);

  [[nodiscard]] int num_attributes() const {
    return static_cast<int>(slots_.size());
  }
  [[nodiscard]] int num_classes() const { return num_classes_; }
  [[nodiscard]] int slots(int attr) const {
    return slots_[static_cast<std::size_t>(attr)];
  }
  [[nodiscard]] int offset(int attr) const {
    return offsets_[static_cast<std::size_t>(attr)];
  }
  /// Total buffer length in int64 entries ("words" of the cost analysis
  /// are 4-byte; one entry = 2 words).
  [[nodiscard]] int total() const { return total_; }

  /// Resident bytes of the flat count buffer for `nodes` tree nodes —
  /// the O(attrs * bins * classes) histogram term of the Section-4
  /// memory analysis (counts are held as int64 entries).
  [[nodiscard]] std::int64_t table_bytes(std::int64_t nodes = 1) const {
    return nodes * static_cast<std::int64_t>(total_) *
           static_cast<std::int64_t>(sizeof(std::int64_t));
  }

  [[nodiscard]] int index(int attr, int slot, int cls) const {
    return offset(attr) + slot * num_classes_ + cls;
  }

 private:
  std::vector<int> slots_;
  std::vector<int> offsets_;
  int num_classes_ = 0;
  int total_ = 0;
};

/// Maps (attribute, row) -> slot id. For continuous attributes the slots
/// are `cont_bins` equal-width micro-bins over the attribute's global
/// [min, max]; boundaries are fixed once per training run so that every
/// processor maps rows identically.
class SlotMapper {
 public:
  SlotMapper() = default;
  SlotMapper(const data::Dataset& ds, int cont_bins);

  [[nodiscard]] int cont_bins() const { return cont_bins_; }

  [[nodiscard]] int slot(int attr, std::size_t row) const {
    const auto& cuts = cuts_[static_cast<std::size_t>(attr)];
    if (cuts.empty() && ds_->schema().attr(attr).is_categorical()) {
      return ds_->cat(attr, row);
    }
    return slot_of_value(attr, ds_->cont(attr, row));
  }

  /// Slot of a raw continuous value.
  [[nodiscard]] int slot_of_value(int attr, double v) const;

  /// The real-valued boundary between slot `s` and slot `s+1` of a
  /// continuous attribute (used to record thresholds in the tree).
  [[nodiscard]] double boundary(int attr, int s) const {
    return cuts_[static_cast<std::size_t>(attr)][static_cast<std::size_t>(s)];
  }

  /// All interior boundaries of a continuous attribute.
  [[nodiscard]] const std::vector<double>& boundaries(int attr) const {
    return cuts_[static_cast<std::size_t>(attr)];
  }

  /// Center value of a micro-bin (used by the per-node discretizers).
  [[nodiscard]] double bin_center(int attr, int s) const;

  [[nodiscard]] const data::Dataset& dataset() const { return *ds_; }

 private:
  const data::Dataset* ds_ = nullptr;
  int cont_bins_ = 0;
  std::vector<std::vector<double>> cuts_;  // empty for categorical attrs
  std::vector<double> lo_, hi_;            // per-attr global range (cont)
};

}  // namespace pdt::dtree
