#include "dtree/tree.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace pdt::dtree {

std::int64_t Node::num_records() const {
  std::int64_t n = 0;
  for (auto c : class_counts) n += c;
  return n;
}

int majority_class(std::span<const std::int64_t> counts, int fallback) {
  int best = -1;
  std::int64_t best_n = 0;
  for (int c = 0; c < static_cast<int>(counts.size()); ++c) {
    if (counts[static_cast<std::size_t>(c)] > best_n) {
      best_n = counts[static_cast<std::size_t>(c)];
      best = c;
    }
  }
  return best < 0 ? fallback : best;
}

Tree::Tree(std::vector<std::int64_t> root_counts) {
  Node root;
  root.class_counts = std::move(root_counts);
  root.majority = majority_class(root.class_counts);
  nodes_.push_back(std::move(root));
}

int Tree::num_leaves() const {
  // Count leaves reachable from the root (pruning may detach nodes).
  int leaves = 0;
  std::vector<int> stack{root()};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    const Node& nd = node(id);
    if (nd.is_leaf()) {
      ++leaves;
      continue;
    }
    for (int k = 0; k < nd.test.num_children; ++k) {
      stack.push_back(nd.first_child + k);
    }
  }
  return leaves;
}

int Tree::depth() const {
  int d = 0;
  std::vector<int> stack{root()};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    const Node& nd = node(id);
    d = std::max(d, nd.depth);
    if (!nd.is_leaf()) {
      for (int k = 0; k < nd.test.num_children; ++k) {
        stack.push_back(nd.first_child + k);
      }
    }
  }
  return d;
}

int Tree::expand(int id, const SplitDecision& d) {
  assert(!d.test.is_leaf());
  Node& parent = nodes_[static_cast<std::size_t>(id)];
  assert(parent.is_leaf() && "node already expanded");
  const int c_num = static_cast<int>(parent.class_counts.size());
  assert(static_cast<int>(d.child_counts.size()) ==
         d.test.num_children * c_num);
  const int first = num_nodes();
  const int parent_majority = parent.majority;
  const int parent_depth = parent.depth;
  parent.test = d.test;
  parent.first_child = first;
  for (int k = 0; k < d.test.num_children; ++k) {
    Node child;
    child.parent = id;
    child.depth = parent_depth + 1;
    child.class_counts.assign(
        d.child_counts.begin() + k * c_num,
        d.child_counts.begin() + (k + 1) * c_num);
    // Hunt's method Case 3: an empty child's class comes from the parent.
    child.majority = majority_class(child.class_counts, parent_majority);
    nodes_.push_back(std::move(child));
  }
  if (observer_ != nullptr) observer_->on_expand(*this, id, d);
  return first;
}

void Tree::make_leaf(int id) {
  Node& nd = nodes_[static_cast<std::size_t>(id)];
  nd.test = SplitTest{};
  nd.first_child = -1;
  if (observer_ != nullptr) observer_->on_make_leaf(id);
}

int Tree::route(int id, const data::Dataset& ds, std::size_t row) const {
  const Node& nd = node(id);
  const SplitTest& t = nd.test;
  switch (t.kind) {
    case SplitTest::Kind::Threshold:
      // Strict <: a value exactly on a micro-bin boundary belongs to the
      // bin to its right (data::bin_of uses upper_bound), so routing by
      // raw value must match routing by slot.
      return ds.cont(t.attr, row) < t.threshold ? 0 : 1;
    case SplitTest::Kind::OrderedSlot:
      return ds.cat(t.attr, row) <= t.slot_threshold ? 0 : 1;
    case SplitTest::Kind::Subset:
      return t.in_left[static_cast<std::size_t>(ds.cat(t.attr, row))] ? 0 : 1;
    case SplitTest::Kind::Multiway:
      return ds.cat(t.attr, row);
    case SplitTest::Kind::Leaf:
      return 0;
  }
  return 0;
}

int Tree::classify(const data::Dataset& ds, std::size_t row) const {
  int id = root();
  while (!node(id).is_leaf()) {
    id = node(id).first_child + route(id, ds, row);
  }
  return node(id).majority;
}

bool Tree::same_subtree(const Tree& other, int a, int b) const {
  const Node& x = node(a);
  const Node& y = other.node(b);
  if (x.class_counts != y.class_counts) return false;
  if (x.majority != y.majority) return false;
  if (x.test.kind != y.test.kind) return false;
  if (x.is_leaf()) return true;
  if (x.test.attr != y.test.attr ||
      x.test.num_children != y.test.num_children ||
      x.test.slot_threshold != y.test.slot_threshold ||
      x.test.in_left != y.test.in_left) {
    return false;
  }
  if (x.test.kind == SplitTest::Kind::Threshold &&
      x.test.threshold != y.test.threshold) {
    return false;
  }
  for (int k = 0; k < x.test.num_children; ++k) {
    if (!same_subtree(other, x.first_child + k, y.first_child + k)) {
      return false;
    }
  }
  return true;
}

bool Tree::same_as(const Tree& other) const {
  if (nodes_.empty() || other.nodes_.empty()) {
    return nodes_.empty() == other.nodes_.empty();
  }
  return same_subtree(other, root(), other.root());
}

void Tree::print_node(std::string& out, const data::Schema& schema, int id,
                      int indent, int max_depth) const {
  const Node& nd = node(id);
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::ostringstream os;
  if (nd.is_leaf()) {
    os << pad << "-> " << schema.class_name(nd.majority) << " (";
    for (std::size_t c = 0; c < nd.class_counts.size(); ++c) {
      os << (c ? "/" : "") << nd.class_counts[c];
    }
    os << ")\n";
    out += os.str();
    return;
  }
  if (nd.depth >= max_depth) {
    os << pad << "... (subtree elided)\n";
    out += os.str();
    return;
  }
  const data::Attribute& attr = schema.attr(nd.test.attr);
  for (int k = 0; k < nd.test.num_children; ++k) {
    std::ostringstream branch;
    switch (nd.test.kind) {
      case SplitTest::Kind::Threshold:
        branch << attr.name << (k == 0 ? " < " : " >= ") << nd.test.threshold;
        break;
      case SplitTest::Kind::OrderedSlot:
        branch << attr.name << (k == 0 ? " <= slot " : " > slot ")
               << nd.test.slot_threshold;
        break;
      case SplitTest::Kind::Subset:
        branch << attr.name << (k == 0 ? " in {" : " not in {");
        for (int v = 0, first = 1; v < attr.cardinality; ++v) {
          if (!nd.test.in_left[static_cast<std::size_t>(v)]) continue;
          if (!first) branch << ",";
          first = 0;
          branch << (v < static_cast<int>(attr.value_names.size())
                         ? attr.value_names[static_cast<std::size_t>(v)]
                         : std::to_string(v));
        }
        branch << "}";
        break;
      case SplitTest::Kind::Multiway:
        branch << attr.name << " = "
               << (k < static_cast<int>(attr.value_names.size())
                       ? attr.value_names[static_cast<std::size_t>(k)]
                       : std::to_string(k));
        break;
      case SplitTest::Kind::Leaf:
        break;
    }
    out += pad + branch.str() + "\n";
    print_node(out, schema, nd.first_child + k, indent + 1, max_depth);
  }
}

std::string Tree::to_string(const data::Schema& schema, int max_depth) const {
  std::string out;
  print_node(out, schema, root(), 0, max_depth);
  return out;
}

}  // namespace pdt::dtree
