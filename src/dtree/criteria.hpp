// Split-quality criteria: entropy / information gain (C4.5 [20]) and the
// Gini index (CART [4]) — the two measures Section 2.1 names.
#pragma once

#include <cstdint>
#include <span>

namespace pdt::dtree {

enum class Criterion { Entropy, Gini };

/// Shannon entropy (bits) of a class-count vector. Zero for empty counts.
[[nodiscard]] double entropy(std::span<const std::int64_t> counts);

/// Gini impurity of a class-count vector. Zero for empty counts.
[[nodiscard]] double gini(std::span<const std::int64_t> counts);

/// Impurity under the chosen criterion.
[[nodiscard]] double impurity(Criterion c, std::span<const std::int64_t> counts);

/// Total of a class-count vector.
[[nodiscard]] std::int64_t total(std::span<const std::int64_t> counts);

/// Impurity decrease of a partition of `parent` into `children`:
///   impurity(parent) - sum_i (n_i / n) * impurity(child_i).
/// `children` is a flattened array of num_children x num_classes counts.
[[nodiscard]] double gain(Criterion c, std::span<const std::int64_t> parent,
                          std::span<const std::int64_t> children,
                          int num_classes);

}  // namespace pdt::dtree
