#include "alist/attribute_list.hpp"

#include <algorithm>

namespace pdt::alist {

AttributeLists::AttributeLists(const data::Dataset& ds) : ds_(&ds) {
  const int num_attrs = ds.num_attributes();
  lists_.resize(static_cast<std::size_t>(num_attrs));
  for (int a = 0; a < num_attrs; ++a) {
    auto& list = lists_[static_cast<std::size_t>(a)];
    list.reserve(ds.num_rows());
    const bool continuous = ds.schema().attr(a).is_continuous();
    for (std::size_t row = 0; row < ds.num_rows(); ++row) {
      Entry e;
      e.value = continuous ? ds.cont(a, row)
                           : static_cast<double>(ds.cat(a, row));
      e.rid = static_cast<data::RowId>(row);
      e.label = ds.label(row);
      list.push_back(e);
    }
    if (continuous) {
      std::sort(list.begin(), list.end(), [](const Entry& x, const Entry& y) {
        if (x.value != y.value) return x.value < y.value;
        return x.rid < y.rid;
      });
    }
  }
}

}  // namespace pdt::alist
