#include "alist/presorted_builder.hpp"

#include <algorithm>

#include "alist/level.hpp"

namespace pdt::alist {

dtree::Tree grow_presorted(const AttributeLists& lists,
                           const dtree::GrowOptions& opt,
                           PresortedStats* stats) {
  const data::Dataset& ds = lists.dataset();
  std::vector<std::int64_t> root_counts(
      static_cast<std::size_t>(ds.schema().num_classes()), 0);
  for (std::size_t row = 0; row < ds.num_rows(); ++row) {
    ++root_counts[static_cast<std::size_t>(ds.label(row))];
  }
  dtree::Tree tree(std::move(root_counts));
  ClassList class_list(lists.num_records(), tree.root());

  std::vector<int> frontier{tree.root()};
  PresortedStats local{};
  while (!frontier.empty()) {
    ++local.levels;
    const LevelDecisions decisions =
        decide_level(lists, tree, class_list, frontier, opt);
    local.entries_scanned += decisions.entries_scanned;
    frontier = apply_level(lists, tree, class_list, frontier, decisions,
                           &local.class_list_updates);
    local.entries_scanned += static_cast<std::int64_t>(
        lists.num_records()) * lists.num_attributes();
  }
  if (stats != nullptr) *stats = local;
  return tree;
}

}  // namespace pdt::alist
