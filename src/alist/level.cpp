#include "alist/level.hpp"

#include <algorithm>

#include "dtree/split_eval.hpp"

namespace pdt::alist {

namespace {

/// node id -> frontier index (-1 for non-frontier nodes).
std::vector<int> slot_map(const dtree::Tree& tree,
                          const std::vector<int>& frontier) {
  std::vector<int> slot(static_cast<std::size_t>(tree.num_nodes()), -1);
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    slot[static_cast<std::size_t>(frontier[i])] = static_cast<int>(i);
  }
  return slot;
}

/// Child index for an attribute-list entry under a chosen test.
int child_of_value(const dtree::SplitTest& test, double value) {
  switch (test.kind) {
    case dtree::SplitTest::Kind::Threshold:
      return value < test.threshold ? 0 : 1;
    case dtree::SplitTest::Kind::OrderedSlot:
      return static_cast<int>(value) <= test.slot_threshold ? 0 : 1;
    case dtree::SplitTest::Kind::Subset:
      return test.in_left[static_cast<std::size_t>(value)] ? 0 : 1;
    case dtree::SplitTest::Kind::Multiway:
      return static_cast<int>(value);
    case dtree::SplitTest::Kind::Leaf:
      return 0;
  }
  return 0;
}

}  // namespace

LevelDecisions decide_level(const AttributeLists& lists,
                            const dtree::Tree& tree,
                            const ClassList& class_list,
                            const std::vector<int>& frontier,
                            const dtree::GrowOptions& opt) {
  const data::Schema& schema = lists.dataset().schema();
  const int c_num = schema.num_classes();
  const std::size_t nf = frontier.size();
  const std::vector<int> slot = slot_map(tree, frontier);

  // Trackers reference the tree nodes' class-count vectors, which are
  // stable for the duration of the level.
  std::vector<dtree::BestTracker> trackers;
  trackers.reserve(nf);
  std::vector<bool> active(nf, true);
  for (std::size_t i = 0; i < nf; ++i) {
    const dtree::Node& node = tree.node(frontier[i]);
    trackers.emplace_back(node.class_counts, opt);
    if (node.depth >= opt.max_depth) active[i] = false;
  }

  LevelDecisions out;
  for (int a = 0; a < lists.num_attributes(); ++a) {
    const auto& list = lists.list(a);
    out.entries_scanned += static_cast<std::int64_t>(list.size());
    const data::Attribute& attr = schema.attr(a);
    if (attr.is_continuous()) {
      // One pass over the sorted list; per-node running left counts give
      // every distinct-value boundary as a candidate, exactly as C4.5
      // would see them after its per-node sort.
      std::vector<std::vector<std::int64_t>> lefts(
          nf, std::vector<std::int64_t>(static_cast<std::size_t>(c_num), 0));
      std::vector<double> prev(nf, 0.0);
      std::vector<bool> seen(nf, false);
      for (const Entry& e : list) {
        const int node = class_list.node_of(e.rid);
        if (node < 0 || node >= tree.num_nodes()) continue;
        const int i = slot[static_cast<std::size_t>(node)];
        if (i < 0 || !active[static_cast<std::size_t>(i)]) continue;
        auto& left = lefts[static_cast<std::size_t>(i)];
        if (seen[static_cast<std::size_t>(i)] &&
            prev[static_cast<std::size_t>(i)] != e.value) {
          dtree::SplitTest test;
          test.kind = dtree::SplitTest::Kind::Threshold;
          test.attr = a;
          test.threshold =
              0.5 * (prev[static_cast<std::size_t>(i)] + e.value);
          trackers[static_cast<std::size_t>(i)].offer_binary(left,
                                                             std::move(test));
        }
        ++left[static_cast<std::size_t>(e.label)];
        prev[static_cast<std::size_t>(i)] = e.value;
        seen[static_cast<std::size_t>(i)] = true;
      }
      continue;
    }

    // Categorical: per-node (cardinality x classes) tables in one pass.
    const int slots = attr.cardinality;
    std::vector<std::vector<std::int64_t>> tables(
        nf, std::vector<std::int64_t>(
                static_cast<std::size_t>(slots * c_num), 0));
    for (const Entry& e : list) {
      const int node = class_list.node_of(e.rid);
      if (node < 0 || node >= tree.num_nodes()) continue;
      const int i = slot[static_cast<std::size_t>(node)];
      if (i < 0 || !active[static_cast<std::size_t>(i)]) continue;
      ++tables[static_cast<std::size_t>(i)][static_cast<std::size_t>(
          static_cast<int>(e.value) * c_num + e.label)];
    }
    for (std::size_t i = 0; i < nf; ++i) {
      if (!active[i]) continue;
      if (attr.ordered) {
        trackers[i].offer_ordered_table(
            a, tables[i], slots, dtree::SplitTest::Kind::OrderedSlot,
            [](int t) { return static_cast<double>(t); });
      } else {
        trackers[i].offer_nominal(a, tables[i], slots);
      }
    }
  }

  out.decisions.reserve(nf);
  for (std::size_t i = 0; i < nf; ++i) {
    out.decisions.push_back(active[i] ? trackers[i].take()
                                      : dtree::SplitDecision{});
  }
  return out;
}

std::vector<int> apply_level(const AttributeLists& lists, dtree::Tree& tree,
                             ClassList& class_list,
                             const std::vector<int>& frontier,
                             const LevelDecisions& level,
                             std::int64_t* class_list_updates) {
  const std::vector<int> slot = slot_map(tree, frontier);
  std::vector<int> first_child(frontier.size(), -1);
  std::vector<int> next;
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const dtree::SplitDecision& d = level.decisions[i];
    if (d.test.is_leaf()) continue;
    first_child[i] = tree.expand(frontier[i], d);
    for (int k = 0; k < d.test.num_children; ++k) {
      if (tree.node(first_child[i] + k).num_records() > 0) {
        next.push_back(first_child[i] + k);
      }
    }
  }

  // The splitting pass: each winning attribute's list re-routes its own
  // node's records (SPRINT records these rid -> child pairs in the hash
  // table other lists probe; with the class-list indirection the update
  // itself is the probe).
  std::int64_t updates = 0;
  for (int a = 0; a < lists.num_attributes(); ++a) {
    for (const Entry& e : lists.list(a)) {
      const int node = class_list.node_of(e.rid);
      if (node < 0 || node >= static_cast<int>(slot.size())) continue;
      const int i = slot[static_cast<std::size_t>(node)];
      if (i < 0 || first_child[static_cast<std::size_t>(i)] < 0) continue;
      const dtree::SplitTest& test =
          level.decisions[static_cast<std::size_t>(i)].test;
      if (test.attr != a) continue;
      class_list.assign(e.rid, first_child[static_cast<std::size_t>(i)] +
                                   child_of_value(test, e.value));
      ++updates;
    }
  }
  if (class_list_updates != nullptr) *class_list_updates += updates;
  return next;
}

}  // namespace pdt::alist
