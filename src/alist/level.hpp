// One breadth-first level of attribute-list tree growth: the split-finding
// scan and the class-list update ("splitting") pass. Shared by the serial
// presorted builder and the parallel SPRINT / ScalParC formulations, whose
// arithmetic is identical to the serial scan — they differ only in where
// list sections live and what the hash-table traffic costs.
#pragma once

#include "alist/attribute_list.hpp"
#include "dtree/split.hpp"
#include "dtree/tree.hpp"

namespace pdt::alist {

struct LevelDecisions {
  /// One decision per frontier node (Leaf kind when the node stops).
  std::vector<dtree::SplitDecision> decisions;
  std::int64_t entries_scanned = 0;
};

/// Scan every attribute list once and pick each frontier node's best
/// split. Continuous attributes contribute exact mid-point thresholds;
/// nodes at opt.max_depth get Leaf decisions.
[[nodiscard]] LevelDecisions decide_level(const AttributeLists& lists,
                                          const dtree::Tree& tree,
                                          const ClassList& class_list,
                                          const std::vector<int>& frontier,
                                          const dtree::GrowOptions& opt);

/// Expand the tree with the level's decisions and re-route records to
/// children via one pass over the lists of the winning attributes (the
/// SPRINT "splitting" phase). Returns the next frontier.
std::vector<int> apply_level(const AttributeLists& lists, dtree::Tree& tree,
                             ClassList& class_list,
                             const std::vector<int>& frontier,
                             const LevelDecisions& level,
                             std::int64_t* class_list_updates = nullptr);

}  // namespace pdt::alist
