// Parallel SPRINT and ScalParC (Section 2.2).
//
// Both distribute each (pre-sorted) attribute list over the processors in
// contiguous sections and find split points in parallel; they differ in
// how the record-to-node mapping is maintained during the splitting
// phase:
//
//  * Parallel SPRINT replicates the full hash table on every processor by
//    an all-to-all broadcast of each processor's rid -> child pairs. That
//    is O(N) memory per processor and O(N) communication per level — the
//    paper's scalability criticism.
//  * ScalParC distributes the hash table by rid range and updates/queries
//    it with personalized all-to-all communication — O(N/P) memory and
//    O(N/P) per-processor traffic, "making it scalable with respect to
//    memory and runtime requirements".
//
// The split-finding arithmetic is identical to the serial presorted scan
// (alist::decide_level); costs are charged per the protocols above, so
// both produce the exact serial tree while exhibiting the paper's
// contrasting memory/traffic profiles.
#pragma once

#include "alist/attribute_list.hpp"
#include "dtree/tree.hpp"
#include "mpsim/machine.hpp"

namespace pdt::alist {

enum class HashTableScheme {
  ReplicatedSprint,   ///< all-to-all broadcast, O(N) per processor
  DistributedScalParC ///< personalized updates, O(N/P) per processor
};

struct ParallelSprintOptions {
  int num_procs = 4;
  mpsim::CostModel cost = mpsim::CostModel::sp2();
  HashTableScheme scheme = HashTableScheme::ReplicatedSprint;
  dtree::GrowOptions grow;
};

struct ParallelSprintResult {
  dtree::Tree tree;
  mpsim::Time parallel_time = 0.0;
  mpsim::RankStats totals;
  int levels = 0;
  /// Peak per-processor hash-table footprint in 4-byte words: ~N for
  /// replicated SPRINT, ~N/P for ScalParC.
  double peak_hash_words_per_proc = 0.0;
  /// Total hash-table words communicated over the run.
  double hash_comm_words = 0.0;
  /// Per-rank byte accounts (AttributeList sections + HashTable): the
  /// measured form of the O(N) vs O(N/P) contrast above.
  std::vector<mpsim::MemStats> mem;
};

[[nodiscard]] ParallelSprintResult build_parallel_sprint(
    const data::Dataset& ds, const ParallelSprintOptions& opt);

}  // namespace pdt::alist
