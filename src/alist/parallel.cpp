#include "alist/parallel.hpp"

#include <algorithm>
#include <cmath>

#include "alist/level.hpp"
#include "mpsim/group.hpp"

namespace pdt::alist {

namespace {

/// Words of one attribute-list entry on disk/wire: value (2) + rid (1) +
/// class (1).
constexpr double kEntryWords = 4.0;
/// Words of one hash-table record: rid (1) + child node id (1).
constexpr double kHashPairWords = 2.0;

}  // namespace

ParallelSprintResult build_parallel_sprint(const data::Dataset& ds,
                                           const ParallelSprintOptions& opt) {
  const AttributeLists lists(ds);
  mpsim::Machine machine(opt.num_procs, opt.cost);
  const mpsim::Group all = mpsim::Group::whole(machine);
  const mpsim::CostModel& cm = machine.cost();
  const int p = opt.num_procs;
  const double n = static_cast<double>(ds.num_rows());
  const data::Schema& schema = ds.schema();
  const int c_num = schema.num_classes();
  const int num_attrs = ds.num_attributes();

  // Persistent per-rank structures, held for the whole build:
  //  * each rank's contiguous sections of every attribute list, N/P
  //    entries per attribute;
  //  * the record -> node mapping — the schemes' memory contrast: the
  //    replicated SPRINT hash table is O(N) per rank, ScalParC's
  //    distributed one O(N/P).
  const std::int64_t alist_bytes =
      std::llround(static_cast<double>(num_attrs) * (n / p) * kEntryWords * 4.0);
  const std::int64_t hash_bytes = std::llround(
      (opt.scheme == HashTableScheme::ReplicatedSprint ? n : n / p) *
      kHashPairWords * 4.0);
  for (int r = 0; r < p; ++r) {
    machine.alloc_bytes(r, mpsim::MemTag::AttributeList, alist_bytes);
    machine.alloc_bytes(r, mpsim::MemTag::HashTable, hash_bytes);
  }

  // Initial parallel sort of every continuous attribute list: each rank
  // sorts N/P entries locally, then a sample-sort style exchange streams
  // every entry across the network once.
  {
    const double local = n / p;
    for (int a = 0; a < num_attrs; ++a) {
      if (!schema.attr(a).is_continuous()) continue;
      for (int r = 0; r < p; ++r) {
        machine.charge_compute(
            r, local * std::max(1.0, std::log2(std::max(2.0, local))));
      }
      if (p > 1) {
        std::vector<std::vector<double>> words(
            static_cast<std::size_t>(p),
            std::vector<double>(static_cast<std::size_t>(p),
                                local * kEntryWords / p));
        all.all_to_all_personalized(words);
      }
    }
  }

  std::vector<std::int64_t> root_counts(static_cast<std::size_t>(c_num), 0);
  for (std::size_t row = 0; row < ds.num_rows(); ++row) {
    ++root_counts[static_cast<std::size_t>(ds.label(row))];
  }
  dtree::Tree tree(std::move(root_counts));
  ClassList class_list(lists.num_records(), tree.root());

  ParallelSprintResult res;
  res.peak_hash_words_per_proc =
      opt.scheme == HashTableScheme::ReplicatedSprint ? n : n / p;

  std::vector<int> frontier{tree.root()};
  while (!frontier.empty()) {
    ++res.levels;
    const double f = static_cast<double>(frontier.size());

    // --- Split-finding scan (arithmetic identical to the serial scan;
    // each rank owns 1/P of every list section-wise). ---
    const LevelDecisions level =
        decide_level(lists, tree, class_list, frontier, opt.grow);
    for (int r = 0; r < p; ++r) {
      machine.charge_compute(r, static_cast<double>(num_attrs) * n / p);
      machine.charge_io(r, static_cast<double>(num_attrs) * (n / p) *
                               kEntryWords * cm.t_io);
    }
    // Continuous attributes: exclusive prefix of per-node class counts
    // plus the section-boundary value; categorical: table reduction;
    // then one small reduction electing each node's best candidate.
    for (int a = 0; a < num_attrs; ++a) {
      const data::Attribute& attr = schema.attr(a);
      const double words =
          attr.is_continuous()
              ? f * (c_num + 2)
              : f * static_cast<double>(attr.cardinality) * c_num;
      all.charge_all_reduce(words);
    }
    all.charge_all_reduce(f * 4.0);

    // --- Splitting phase: expand and re-route via the hash table. ---
    double n_active = 0.0;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      if (!level.decisions[i].test.is_leaf()) {
        n_active +=
            static_cast<double>(tree.node(frontier[i]).num_records());
      }
    }
    frontier = apply_level(lists, tree, class_list, frontier, level);

    if (n_active > 0.0 && p > 1) {
      const double pairs_words = n_active * kHashPairWords;
      if (opt.scheme == HashTableScheme::ReplicatedSprint) {
        // All-to-all broadcast: every rank ends up holding every rid ->
        // child pair (O(N) traffic and memory per rank).
        for (int r = 0; r < p; ++r) {
          const mpsim::Time cost =
              cm.t_s * mpsim::ceil_log2(p) + cm.t_w * pairs_words;
          machine.charge_comm(r, cost, pairs_words / p, pairs_words,
                              static_cast<std::uint64_t>(mpsim::ceil_log2(p)),
                              cm.t_s * mpsim::ceil_log2(p));
          machine.charge_io(r, cm.t_io * pairs_words);
        }
        all.barrier();
        res.hash_comm_words += pairs_words * p;
      } else {
        // ScalParC: personalized updates to the rid-range owners, then
        // personalized responses updating each rank's section views —
        // O(N/P) traffic per rank.
        std::vector<std::vector<double>> words(
            static_cast<std::size_t>(p),
            std::vector<double>(static_cast<std::size_t>(p),
                                2.0 * pairs_words / (p * p)));
        all.all_to_all_personalized(words);
        res.hash_comm_words += 2.0 * pairs_words;
      }
    }
    // Probe/update pass over the local sections.
    for (int r = 0; r < p; ++r) {
      machine.charge_compute(r, static_cast<double>(num_attrs) * n / p);
      machine.charge_io(r, static_cast<double>(num_attrs) * (n / p) *
                               kEntryWords * cm.t_io);
    }
    all.barrier();
  }

  for (int r = 0; r < p; ++r) {
    machine.free_bytes(r, mpsim::MemTag::AttributeList, alist_bytes);
    machine.free_bytes(r, mpsim::MemTag::HashTable, hash_bytes);
  }

  res.tree = std::move(tree);
  res.parallel_time = machine.max_clock();
  res.totals = machine.total_stats();
  res.mem.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) res.mem.push_back(machine.mem(r));
  return res;
}

}  // namespace pdt::alist
