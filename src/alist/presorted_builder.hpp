// Serial SLIQ/SPRINT-style tree growth from presorted attribute lists
// (Section 2.1).
//
// One scan per attribute per level replaces C4.5's per-node sorting:
// continuous candidate cuts fall out of the sorted order, categorical
// tables accumulate per frontier node, and the class list routes records
// to children without disturbing any list. Exact continuous thresholds —
// the result is bit-identical to dtree::grow_dfs_exact (tests enforce it),
// it just gets there without ever re-sorting.
#pragma once

#include "alist/attribute_list.hpp"
#include "dtree/tree.hpp"

namespace pdt::alist {

struct PresortedStats {
  int levels = 0;
  std::int64_t entries_scanned = 0;  ///< attribute-list entries visited
  std::int64_t class_list_updates = 0;
};

/// Grow a tree breadth-first from presorted lists. Continuous attributes
/// use exact thresholds (ContSplit/cont_bins in `opt` are ignored).
[[nodiscard]] dtree::Tree grow_presorted(const AttributeLists& lists,
                                         const dtree::GrowOptions& opt,
                                         PresortedStats* stats = nullptr);

}  // namespace pdt::alist
