// SPRINT/SLIQ attribute lists (Section 2.1).
//
// SLIQ and SPRINT avoid C4.5's per-node re-sorting by sorting each
// continuous attribute once, up front, into an *attribute list* of
// (value, record id, class) entries. Tree growth then makes one scan per
// attribute per level; a record-to-node map (SLIQ's class list / the hash
// table SPRINT builds while splitting) tells each entry which frontier
// node it currently belongs to, and the sorted order is never disturbed.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "data/partition.hpp"

namespace pdt::alist {

struct Entry {
  double value = 0.0;       ///< attribute value (categorical ids widened)
  data::RowId rid = 0;
  std::int32_t label = 0;   ///< class travels with the entry (SPRINT)
};

/// One presorted list per attribute. Categorical attributes keep record
/// order (their statistics are order-independent); continuous attributes
/// are value-sorted with ties broken by rid so the order is deterministic.
class AttributeLists {
 public:
  explicit AttributeLists(const data::Dataset& ds);

  [[nodiscard]] const data::Dataset& dataset() const { return *ds_; }
  [[nodiscard]] int num_attributes() const {
    return static_cast<int>(lists_.size());
  }
  [[nodiscard]] const std::vector<Entry>& list(int attr) const {
    return lists_[static_cast<std::size_t>(attr)];
  }
  [[nodiscard]] std::size_t num_records() const { return ds_->num_rows(); }

 private:
  const data::Dataset* ds_;
  std::vector<std::vector<Entry>> lists_;
};

/// The record-to-frontier-node map: SLIQ's class list, and the content of
/// the hash table SPRINT communicates while splitting. node_of[rid] is the
/// frontier node the record currently sits in, or -1 once it reaches a
/// finished leaf.
class ClassList {
 public:
  explicit ClassList(std::size_t num_records, int root_node = 0)
      : node_of_(num_records, root_node) {}

  [[nodiscard]] int node_of(data::RowId rid) const {
    return node_of_[static_cast<std::size_t>(rid)];
  }
  void assign(data::RowId rid, int node) {
    node_of_[static_cast<std::size_t>(rid)] = node;
  }
  [[nodiscard]] std::size_t size() const { return node_of_.size(); }

 private:
  std::vector<int> node_of_;
};

}  // namespace pdt::alist
