// Closed-form performance model: a transcription of Section 4's analysis
// (Equations 1-9, Table 4 symbols) plus the isoefficiency function.
//
// The benches print these model predictions at the paper's full scale
// (0.8M / 1.6M records) next to the simulated measurements at the scaled-
// down default, so the reader can check both against the paper's figures.
#pragma once

#include "mpsim/cost_model.hpp"

namespace pdt::core {

/// Table-4 symbols describing one workload/machine configuration.
struct AnalysisInput {
  double N = 0;      ///< total training samples
  int P = 1;         ///< total processors
  double A_d = 0;    ///< number of (discrete) attributes
  double C = 2;      ///< number of classes
  double M = 0;      ///< mean distinct values per discrete attribute
  int L1 = 16;       ///< depth of the classification tree
  int buffer_nodes = 100;  ///< communication-buffer capacity in nodes
  double split_ratio = 1.0;
  /// Mean records per frontier node, used to cap the modeled frontier
  /// width (observed trees run well above the minimum of 2).
  double leaf_records = 64.0;
  /// Wire/disk size of one record in 4-byte words (per-level I/O scans
  /// and the moving/balancing phases are proportional to it).
  double record_words = 10.0;
  mpsim::CostModel cost = mpsim::CostModel::sp2();

  /// Frontier width the full-binary-tree model assumes at `level`,
  /// capped at N / leaf_records.
  [[nodiscard]] double frontier(int level) const;
};

/// Eq. 1: local computation cost at one level for a P_i-processor
/// partition holding `n_part` records.
[[nodiscard]] double eq1_local_compute(const AnalysisInput& in, double n_part,
                                       int p_i, double frontier_nodes);

/// Eq. 2: communication cost at one level (all buffer flushes).
[[nodiscard]] double eq2_comm_per_level(const AnalysisInput& in, int p_i,
                                        double frontier_nodes);

/// Eq. 3: moving-phase bound for a partition with n_part records on p_i
/// processors. `record_words` is the wire size of one record.
[[nodiscard]] double eq3_moving(const AnalysisInput& in, double n_part,
                                int p_i, double record_words);

/// Eq. 4: load-balancing bound (same form as Eq. 3).
[[nodiscard]] double eq4_load_balance(const AnalysisInput& in, double n_part,
                                      int p_i, double record_words);

/// Serial time: one scan per level (theta(N) * L1).
[[nodiscard]] double predicted_serial_time(const AnalysisInput& in);

/// Synchronous formulation: Eq. 1 + Eq. 2 summed over levels.
[[nodiscard]] double predicted_sync_time(const AnalysisInput& in);

/// Hybrid formulation: the Section 4.2 recurrence — synchronous levels
/// accumulate Eq. 2 cost until it reaches split_ratio x (Eq. 3 + Eq. 4),
/// then the partition halves (paying that cost) and proceeds.
[[nodiscard]] double predicted_hybrid_time(const AnalysisInput& in,
                                           double record_words);

/// The calibrated constant c = c_comm / c_comp of the isoefficiency
/// relation below. Embedded as `iso_c` in event-log metadata so offline
/// replays can chart the analytic curve without the full AnalysisInput.
[[nodiscard]] double isoefficiency_constant(const AnalysisInput& in);

/// Isoefficiency (Section 4.3): the N required to hold efficiency E at P
/// processors, N = E/(1-E) * c * P log2 P, with c calibrated from `in`.
[[nodiscard]] double isoefficiency_records(const AnalysisInput& in, int p,
                                           double efficiency);

}  // namespace pdt::core
