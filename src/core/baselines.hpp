// Related-work parallelization schemes (Section 2.2), implemented as
// baselines against the paper's three formulations:
//
//  * DP-att / Pearson's attribute-based decomposition ("vertical"):
//    attributes are partitioned over processors; every processor stores
//    its attributes' full columns, so statistics gathering needs no
//    record communication — but per-processor work stays Omega(N) per
//    level and no more than A_d processors can ever be busy, which is the
//    paper's "does not scale well with increasing number of processors".
//  * PDT (Kufrin) host-worker: records are partitioned as in the
//    synchronous approach, but statistics flow to a designated host that
//    computes the splits and notifies the workers. The host serializes
//    P-1 incoming messages per flush — the "additional communication
//    bottleneck" the paper describes.
//
// Both produce the identical tree to the serial algorithm (same global
// histograms, same split chooser).
#pragma once

#include "core/frontier.hpp"

namespace pdt::core {

/// DP-att: vertical (attribute) partitioning.
[[nodiscard]] ParResult build_vertical(const data::Dataset& ds,
                                       const ParOptions& opt);

/// PDT: host-worker statistics gathering. Processor 0 is the host and
/// holds no data; the remaining num_procs-1 workers split the records.
/// Requires num_procs >= 2.
[[nodiscard]] ParResult build_host_worker(const data::Dataset& ds,
                                          const ParOptions& opt);

}  // namespace pdt::core
