// Durable on-disk checkpoints (pdt-ckpt-v1) and crash-restart resume.
//
// The in-memory LevelCheckpoint (core/recovery.hpp) survives a rank
// fail-stop but not a process death: kill the driver and the whole tree
// is gone. This module makes the same cut durable. With
// ParOptions::ckpt_dir set, every worklist iteration of the three
// formulations serializes its run state to `ckpt-<epoch>.pdt` — the
// canonical tree bytes (dtree::canonical_nodes_json, so the section
// digest IS the model digest at the cut), the frontier row ownership of
// every partition, per-rank memory accounts as provenance, and the
// cost-model + environment fingerprint the run was built with. Files are
// committed through obs::AtomicFile (fsync + rename), each section
// carries its own SHA-256, and the loader validates newest-to-oldest:
// a corrupt, torn or truncated epoch is rejected and the previous valid
// epoch is used instead — a bad file is never trusted, only skipped.
//
// Resume (ParOptions::resume) rebuilds the tree by replaying expand()
// over the parsed canonical nodes (dtree::tree_from_nodes), re-charges
// the restore I/O at t_io per record word, and hands the builders back
// their worklists. Tree content is a pure function of the dataset and
// grow options — partitioning, virtual clocks and rng state affect only
// *when* work happens, never which split wins — so a resumed run's final
// model digest is bit-identical to an uninterrupted run's even though
// its clocks differ. That digest identity is the acceptance criterion
// (DESIGN.md §13); clock state is deliberately not checkpointed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/frontier.hpp"

namespace pdt::core {

/// One processor partition's share of a checkpoint: its member ranks,
/// the hybrid's accumulated communication cost since the last split
/// (zero for sync/partitioned), and the frontier it was about to expand.
/// On disk the frontier's node ids are canonical (level-order over
/// reachable nodes); DurableCheckpointer::save remaps from arena ids,
/// and the tree a resume rebuilds has arena == canonical, so loaded
/// ids are valid without a reverse map.
struct CkptPart {
  std::vector<mpsim::Rank> ranks;
  double acc_comm = 0.0;
  std::vector<NodeWork> frontier;
};

/// Everything one pdt-ckpt-v1 epoch holds. `tree_json` is the exact
/// canonical_nodes_json byte string; `tree_digest` is its SHA-256 — the
/// model digest of the partially grown tree at this cut.
struct RunSnapshot {
  std::string formulation;   ///< "sync" | "partitioned" | "hybrid"
  int epoch = -1;
  int num_procs = 0;
  std::uint64_t seed = 0;
  int levels = 0;
  int partition_splits = 0;
  int rejoins = 0;
  std::int64_t records_moved = 0;
  double histogram_words = 0.0;
  double record_words = 0.0;          ///< wire words per record (dataset check)
  mpsim::CostModel cost;              ///< constants the run was charged with
  std::string fingerprint;            ///< build/host provenance, never validated
  std::string tree_digest;
  std::string tree_json;
  std::vector<CkptPart> parts;        ///< active worklist, in restore order
  std::vector<std::vector<mpsim::Rank>> idle;  ///< hybrid idle groups
  std::vector<mpsim::MemStats> mem;   ///< per-rank byte accounts (provenance)
};

/// Serialize a snapshot to the full pdt-ckpt-v1 file bytes: a header
/// naming the epoch, then three sections (meta, tree, state), each
/// framed as `section <name> <bytes> <sha256hex>\n` + payload + `\n`.
[[nodiscard]] std::string ckpt_text(const RunSnapshot& snap);

/// Parse + validate pdt-ckpt-v1 bytes: header structure, section
/// framing, per-section digests, meta completeness, state consistency
/// (rank bounds, member counts). Returns "" on success, else a
/// description of the first problem — callers treat any non-empty
/// return as "this epoch is corrupt, skip back".
[[nodiscard]] std::string parse_ckpt(std::string_view text, RunSnapshot* out);

/// The on-disk epoch store: `<dir>/ckpt-<epoch>.pdt` files plus a
/// MANIFEST naming the newest commit. The manifest is written for
/// humans and tools; the loader never trusts it — it globs the epoch
/// files and validates their content directly.
class CheckpointStore {
 public:
  /// `dir` must already exist (empty disables the store); `keep` newest
  /// epochs are retained, older files pruned after each save.
  CheckpointStore(std::string dir, int keep);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::string epoch_path(int epoch) const;
  /// Newest epoch number present on disk (no content validation), -1
  /// when the directory holds no epoch files.
  [[nodiscard]] int latest_epoch() const;

  /// Write snap's epoch file atomically, refresh the MANIFEST, prune
  /// old epochs. `bytes_out` (optional) receives the committed size.
  [[nodiscard]] bool save(const RunSnapshot& snap,
                          std::int64_t* bytes_out = nullptr);

  /// Load the newest valid epoch (<= max_epoch when >= 0): epochs that
  /// fail to read or validate are counted in `skipped` and skipped
  /// back. Returns the loaded epoch, or -1 when none validates;
  /// `error` receives the first rejection reason (or why nothing was
  /// found). Never throws on corrupt input — corruption is a skip, not
  /// a crash.
  [[nodiscard]] int load_latest(RunSnapshot* out, int max_epoch, int* skipped,
                                std::string* error) const;

 private:
  [[nodiscard]] std::vector<int> list_epochs() const;  // ascending

  std::string dir_;
  int keep_;
};

/// Builder-side driver: constructed once per build_* call, it numbers
/// epochs after the newest already on disk (so a resumed run continues
/// the sequence), and save() snapshots the live ParContext + worklist,
/// charges each rank t_io per record word of frontier shard it writes
/// (staged through Scratch, same accounting as the in-memory
/// take_checkpoint), commits the epoch and honours the
/// ckpt_crash_epoch test hook (std::_Exit(137) after commit — a
/// SIGKILL stand-in that leaves only committed files behind).
class DurableCheckpointer {
 public:
  DurableCheckpointer(ParContext& ctx, std::string formulation);

  [[nodiscard]] bool enabled() const { return !store_.dir().empty(); }
  [[nodiscard]] int next_epoch() const { return epoch_; }

  /// Checkpoint the current cut. `parts` carry arena node ids (remapped
  /// to canonical internally); `idle` lists the hybrid's idle groups.
  /// Throws std::runtime_error when the write cannot be committed —
  /// a requested durability guarantee that silently is not one would
  /// be worse than failing the run.
  void save(std::vector<CkptPart> parts,
            std::vector<std::vector<mpsim::Rank>> idle = {});

 private:
  ParContext* ctx_;
  std::string formulation_;
  CheckpointStore store_;
  int epoch_ = 0;
};

/// Resume `ctx` from the newest valid epoch in options().ckpt_dir.
/// Returns false (leaving ctx untouched) when resume is off or no valid
/// epoch exists — the build starts from scratch. On success: the tree
/// is rebuilt from the canonical bytes, run counters restored, each
/// rank's Records account re-charged for the rows it re-reads (at t_io
/// per record word), recovery.resume_* filled in, and `out` holds the
/// snapshot whose parts/idle the caller turns back into its worklist.
/// Throws std::runtime_error when the checkpoint is valid but
/// incompatible with this run (different formulation, P, seed or
/// dataset record width) — that is a caller bug, not corruption.
[[nodiscard]] bool resume_from_checkpoint(ParContext& ctx,
                                          const std::string& formulation,
                                          RunSnapshot* out);

}  // namespace pdt::core
