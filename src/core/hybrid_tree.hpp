// Hybrid Parallel Formulation (Section 3.3) — the paper's contribution.
//
// A processor partition grows its share of the tree with the synchronous
// approach while accumulating the communication cost it pays per level.
// When that accumulated cost reaches
//     split_ratio x (moving cost + load-balancing cost)
// (the paper proposes split_ratio = 1.0, which keeps total communication
// within 2x of an optimal scheme [14]), the partition and its frontier are
// halved: frontier nodes are allocated to the two half subcubes with
// randomized roughly-equal record totals, corresponding processors of the
// two halves exchange the records that now belong to the other side
// ("moving" phase, Eq. 3), and each half evens out its members' record
// counts ("load balancing" phase, Eq. 4). Halves then proceed
// independently. A partition whose subtree finishes rejoins a busy
// partition of the same size, receiving half of each busy processor's
// records (Section 3.3's idle-partition donation).
#pragma once

#include "core/frontier.hpp"

namespace pdt::core {

[[nodiscard]] ParResult build_hybrid(const data::Dataset& ds,
                                     const ParOptions& opt);

}  // namespace pdt::core
