#include "core/cost_analysis.hpp"

#include <algorithm>
#include <cmath>

namespace pdt::core {

double AnalysisInput::frontier(int level) const {
  // Full binary tree: 2^L nodes at level L, capped by how many nodes the
  // data can populate (observed trees average >= leaf_records records per
  // frontier node).
  const double full = std::pow(2.0, level);
  return std::min(full, std::max(1.0, N / leaf_records));
}

double eq1_local_compute(const AnalysisInput& in, double n_part, int p_i,
                         double frontier_nodes) {
  const double scan = in.A_d * n_part / std::max(1, p_i);
  // Table init + gain evaluation, at the simulator's 0.5 t_c per entry.
  const double tables = 0.5 * in.C * in.A_d * in.M * frontier_nodes;
  // Eq. 1's I/O scan: the disk-resident attribute lists are re-read at
  // every level.
  const double scan_io =
      (n_part / std::max(1, p_i)) * in.record_words * in.cost.t_io;
  return (scan + tables) * in.cost.t_c + scan_io;
}

double eq2_comm_per_level(const AnalysisInput& in, int p_i,
                          double frontier_nodes) {
  if (p_i <= 1) return 0.0;
  const double hist_words = in.C * in.A_d * in.M;
  const double flushes =
      std::ceil(frontier_nodes / static_cast<double>(in.buffer_nodes));
  const double per_flush_nodes =
      std::min(frontier_nodes, static_cast<double>(in.buffer_nodes));
  return flushes * in.cost.all_reduce(hist_words * per_flush_nodes, p_i);
}

double eq3_moving(const AnalysisInput& in, double n_part, int p_i,
                  double record_words) {
  return 2.0 * (n_part / std::max(1, p_i)) * record_words *
         in.cost.record_move_word_cost();
}

double eq4_load_balance(const AnalysisInput& in, double n_part, int p_i,
                        double record_words) {
  return eq3_moving(in, n_part, p_i, record_words);
}

double predicted_serial_time(const AnalysisInput& in) {
  double t = 0.0;
  for (int level = 0; level <= in.L1; ++level) {
    t += eq1_local_compute(in, in.N, 1, in.frontier(level));
  }
  return t;
}

double predicted_sync_time(const AnalysisInput& in) {
  double t = 0.0;
  for (int level = 0; level <= in.L1; ++level) {
    const double f = in.frontier(level);
    t += eq1_local_compute(in, in.N, in.P, f) +
         eq2_comm_per_level(in, in.P, f);
  }
  return t;
}

double predicted_hybrid_time(const AnalysisInput& in, double record_words) {
  // Follow one partition down the tree (all partitions behave identically
  // under the symmetric full-tree assumption): it owns n records on p
  // processors and a share of the frontier.
  double t = 0.0;
  double n = in.N;
  int p = in.P;
  double acc_comm = 0.0;
  double frontier_share = 1.0;  // fraction of the global frontier owned
  for (int level = 0; level <= in.L1; ++level) {
    const double f = in.frontier(level) * frontier_share;
    t += eq1_local_compute(in, n, p, f);
    const double comm = eq2_comm_per_level(in, p, f);
    t += comm;
    acc_comm += comm;
    const double split_cost = eq3_moving(in, n, p, record_words) +
                              eq4_load_balance(in, n, p, record_words);
    if (p > 1 && f >= 2.0 &&
        acc_comm >= in.split_ratio * split_cost && split_cost > 0.0) {
      t += split_cost;
      p /= 2;
      n /= 2.0;
      frontier_share /= 2.0;
      acc_comm = 0.0;
    }
  }
  return t;
}

double isoefficiency_constant(const AnalysisInput& in) {
  // Parallel time ~ c_comm * log P + c_comp * N / P; serial ~ c_comp * N.
  const double hist_words = in.C * in.A_d * in.M;
  const double c_comm = (in.cost.t_s + in.cost.t_w * hist_words) *
                        static_cast<double>(in.L1);
  const double c_comp = in.A_d * in.cost.t_c * static_cast<double>(in.L1);
  return c_comm / c_comp;
}

double isoefficiency_records(const AnalysisInput& in, int p,
                             double efficiency) {
  // E = serial / (P * parallel)  =>  N = E/(1-E) * (c_comm/c_comp) P log P.
  if (p <= 1) return 0.0;
  return efficiency / (1.0 - efficiency) * isoefficiency_constant(in) * p *
         mpsim::ceil_log2(p);
}

}  // namespace pdt::core
