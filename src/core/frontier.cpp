#include "core/frontier.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dtree/split_eval.hpp"
#include "mpsim/comm_ledger.hpp"
#include "mpsim/fault.hpp"

namespace pdt::core {

namespace {

/// Section 3.4's parallel-sorting strategy: categorical attributes decide
/// from the reduced histogram tables, continuous attributes from an exact
/// sorted scan of the node's (globally gathered) values — the same
/// candidates dtree::grow_dfs_exact evaluates.
dtree::SplitDecision choose_split_exact(std::span<const std::int64_t> hist,
                                        const dtree::AttrLayout& layout,
                                        const data::Dataset& ds,
                                        const dtree::GrowOptions& grow,
                                        const NodeWork& work) {
  const int c_num = layout.num_classes();
  const std::vector<std::int64_t> parent = dtree::class_counts(hist, layout);
  dtree::BestTracker tracker(parent, grow);
  if (tracker.forced_leaf()) return tracker.take();

  std::vector<std::int64_t> left(static_cast<std::size_t>(c_num));
  std::vector<std::pair<double, int>> vals;
  for (int a = 0; a < layout.num_attributes(); ++a) {
    const data::Attribute& attr = ds.schema().attr(a);
    const auto table = hist.subspan(
        static_cast<std::size_t>(layout.offset(a)),
        static_cast<std::size_t>(layout.slots(a) * c_num));
    if (attr.is_continuous()) {
      vals.clear();
      for (const auto& rows : work.local_rows) {
        for (const data::RowId row : rows) {
          vals.emplace_back(ds.cont(a, row), ds.label(row));
        }
      }
      std::sort(vals.begin(), vals.end());
      std::fill(left.begin(), left.end(), 0);
      for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
        ++left[static_cast<std::size_t>(vals[i].second)];
        if (vals[i].first == vals[i + 1].first) continue;
        dtree::SplitTest test;
        test.kind = dtree::SplitTest::Kind::Threshold;
        test.attr = a;
        test.threshold = 0.5 * (vals[i].first + vals[i + 1].first);
        tracker.offer_binary(left, std::move(test));
      }
      continue;
    }
    if (attr.ordered) {
      tracker.offer_ordered_table(a, table, layout.slots(a),
                                  dtree::SplitTest::Kind::OrderedSlot,
                                  [](int t) { return static_cast<double>(t); });
    } else {
      tracker.offer_nominal(a, table, layout.slots(a));
    }
  }
  return tracker.take();
}

}  // namespace

std::int64_t NodeWork::total_records() const {
  std::int64_t n = 0;
  for (const auto& rows : local_rows) {
    n += static_cast<std::int64_t>(rows.size());
  }
  return n;
}

ParContext::ParContext(const data::Dataset& ds, const ParOptions& opt,
                       mpsim::Machine& machine)
    : ds_(&ds),
      opt_(&opt),
      machine_(&machine),
      mapper_(ds, opt.grow.cont_bins),
      layout_(ds.schema(), opt.grow.cont_bins),
      tree_(dtree::class_counts_of_rows(
          ds, [&] {
            std::vector<data::RowId> rows(ds.num_rows());
            for (std::size_t i = 0; i < rows.size(); ++i) {
              rows[i] = static_cast<data::RowId>(i);
            }
            return rows;
          }())) {
  double words = 1.0;  // label
  for (int a = 0; a < ds.num_attributes(); ++a) {
    words += ds.schema().attr(a).is_continuous() ? 2.0 : 1.0;
  }
  record_words_ = words;
  record_bytes_ = std::llround(words * 4.0);
  machine.trace().enable(opt.trace);
  if (opt.fault != nullptr) machine.arm_faults(*opt.fault);

  // Section 4's per-rank memory bound for this run: ceil(N/P) resident
  // records, one buffered chunk of histogram tables, plus the bounded
  // staging terms (all-reduce shadow buffer; the parallel-sorting
  // strategy's 3-words-per-row exchange staging when enabled).
  {
    const auto n = static_cast<std::int64_t>(ds.num_rows());
    const auto p = static_cast<std::int64_t>(opt.num_procs);
    const std::int64_t per_rank = (n + p - 1) / p;
    const std::int64_t buffer_nodes =
        std::max<std::int64_t>(1, opt.comm_buffer_nodes);
    mem_predicted_.records_bytes = per_rank * record_bytes_;
    mem_predicted_.histogram_bytes = layout_.table_bytes(buffer_nodes);
    mem_predicted_.scratch_bytes =
        buffer_nodes * static_cast<std::int64_t>(layout_.total()) * 4;
    const int num_cont = ds.schema().num_continuous();
    if (opt.exact_continuous && num_cont > 0) {
      mem_predicted_.scratch_bytes += per_rank * 3 * 4 * num_cont;
    }
  }

  if (opt.obs != nullptr) {
    obs_ = opt.obs;
    obs_->attach(machine);
    profiler_ = &obs_->profiler();
    split_audit_ = obs_->split_audit();
    obs_->mem_ledger().set_predicted(mem_predicted_);
    obs::MetricsRegistry& reg = obs_->metrics();
    records_relocated_ = &reg.counter("records_relocated");
    words_all_reduced_ = &reg.counter("words_all_reduced");
    splits_evaluated_ = &reg.counter("splits_evaluated");
    frontier_nodes_ = &reg.histogram("frontier_nodes_per_expansion");
    shuffle_records_ = &reg.histogram("records_per_shuffle");
  }
  // The audit observes the replicated tree regardless of which wiring
  // requested it (the observability bundle wins over a GrowOptions hook).
  tree_.set_split_observer(split_audit_ != nullptr
                               ? static_cast<dtree::SplitObserver*>(split_audit_)
                               : opt.grow.split_observer);
}

void ParContext::publish_summary_gauges() {
  if (obs_ == nullptr) return;
  obs::MetricsRegistry& reg = obs_->metrics();
  const int p = machine_->size();
  mpsim::Time max_busy = 0.0;
  mpsim::Time sum_busy = 0.0;
  mpsim::Time sum_compute = 0.0;
  mpsim::Time sum_comm = 0.0;
  for (int r = 0; r < p; ++r) {
    const mpsim::RankStats& s = machine_->stats(r);
    max_busy = std::max(max_busy, s.busy_time());
    sum_busy += s.busy_time();
    sum_compute += s.compute_time;
    sum_comm += s.comm_time;
  }
  reg.gauge("load_imbalance_overall")
      .set(sum_busy > 0.0 ? max_busy / (sum_busy / p) : 0.0);
  reg.gauge("comm_to_compute_overall")
      .set(sum_compute > 0.0 ? sum_comm / sum_compute : 0.0);
  reg.gauge("max_clock_us").set(machine_->max_clock());
  reg.gauge("levels").set(static_cast<double>(levels));
  reg.gauge("partition_splits").set(static_cast<double>(partition_splits));
  reg.gauge("rejoins").set(static_cast<double>(rejoins));
  reg.gauge("records_moved_total").set(static_cast<double>(records_moved));
  reg.gauge("histogram_words_total").set(histogram_words);
}

NodeWork ParContext::initial_root(const mpsim::Group& g) {
  NodeWork root;
  root.node_id = tree_.root();
  const data::RowPartition part =
      data::partition_random(ds_->num_rows(), g.size(), opt_->seed);
  root.local_rows.assign(part.begin(), part.end());
  // The initial N/P distribution enters the ranks' local stores.
  for (int m = 0; m < g.size(); ++m) {
    mem_records_alloc(g.rank(m), root.member_records(m));
  }
  return root;
}

std::int64_t frontier_records(const std::vector<NodeWork>& f) {
  std::int64_t n = 0;
  for (const auto& nw : f) n += nw.total_records();
  return n;
}

std::int64_t frontier_member_records(const std::vector<NodeWork>& f, int m) {
  std::int64_t n = 0;
  for (const auto& nw : f) n += nw.member_records(m);
  return n;
}

std::vector<NodeWork> expand_level(ParContext& ctx, const mpsim::Group& g,
                                   std::vector<NodeWork>& frontier,
                                   mpsim::Time* comm_cost_out) {
  const dtree::AttrLayout& layout = ctx.layout();
  const dtree::SlotMapper& mapper = ctx.mapper();
  const dtree::GrowOptions& grow = ctx.options().grow;
  mpsim::Machine& machine = ctx.machine();
  const mpsim::CostModel& cm = machine.cost();
  dtree::Tree& tree = ctx.tree();
  const int p = g.size();
  const int num_attrs = layout.num_attributes();
  const int entries = layout.total();

#ifndef NDEBUG
  // Scratch is strictly level-local: whatever histogram chunks, sort
  // staging, and collective buffers a level charges, it must release
  // before returning, or reported peaks would accumulate artifacts.
  std::vector<std::int64_t> scratch_baseline(static_cast<std::size_t>(p));
  for (int m = 0; m < p; ++m) {
    const mpsim::MemStats& mem = machine.mem(g.rank(m));
    scratch_baseline[static_cast<std::size_t>(m)] =
        mem.live_for(mpsim::MemTag::Histogram) +
        mem.live_for(mpsim::MemTag::Scratch) +
        mem.live_for(mpsim::MemTag::CollectiveBuffer);
  }
#endif

  // Nodes at the depth limit stay leaves and are not even histogrammed;
  // their rows leave the distributed store here.
  std::vector<NodeWork*> work;
  work.reserve(frontier.size());
  for (NodeWork& nw : frontier) {
    if (tree.node(nw.node_id).depth < grow.max_depth) {
      work.push_back(&nw);
    } else {
      for (int m = 0; m < p; ++m) {
        ctx.mem_records_free(g.rank(m), nw.member_records(m));
      }
    }
  }

  std::vector<NodeWork> next;
  mpsim::Time level_comm = 0.0;
  const int buffer_nodes = std::max(1, ctx.options().comm_buffer_nodes);
  dtree::Hist hist;

  // All nodes of one frontier share a depth; attribute this expansion's
  // charges to it (restores the caller's level on exit — partitions at
  // different depths interleave in the hybrid).
  const int frontier_level = work.empty()
                                 ? obs::kNoLevel
                                 : tree.node(work.front()->node_id).depth;
  const obs::LevelScope level_scope(ctx.profiler(), frontier_level);
  const mpsim::LedgerLevelScope ledger_level(machine.comm_ledger(),
                                             frontier_level);
  // Tag the members with the level they are expanding, so collective
  // stamps (deadlock reports) and fault events carry tree-depth context.
  for (int m = 0; m < p; ++m) {
    machine.set_rank_level(g.rank(m), frontier_level);
  }
  ctx.observe_frontier_nodes(static_cast<std::int64_t>(work.size()));

  for (std::size_t c0 = 0; c0 < work.size(); c0 += static_cast<std::size_t>(buffer_nodes)) {
    const std::size_t c1 =
        std::min(work.size(), c0 + static_cast<std::size_t>(buffer_nodes));
    const std::size_t chunk_nodes = c1 - c0;
    hist.assign(chunk_nodes * static_cast<std::size_t>(entries), 0);
    const std::int64_t chunk_table_bytes =
        layout.table_bytes(static_cast<std::int64_t>(chunk_nodes));

    {
      const obs::PhaseScope phase(ctx.profiler(), "histogram");
      // Every member materializes this chunk's count tables (the
      // communication buffer of Section 5's "after every 100 nodes");
      // released as soon as the chunk's splits are selected.
      for (int m = 0; m < p; ++m) {
        machine.alloc_bytes(g.rank(m), mpsim::MemTag::Histogram,
                            chunk_table_bytes);
      }
      // Local histogram construction. The sum over members lands directly
      // in the shared buffer — arithmetically identical to reducing
      // per-member local histograms, while each member is charged for its
      // own share of the update work (this is where load imbalance
      // surfaces as idle time at the following collective).
      for (std::size_t i = c0; i < c1; ++i) {
        auto node_hist =
            std::span<std::int64_t>(hist).subspan((i - c0) * static_cast<std::size_t>(entries),
                                                  static_cast<std::size_t>(entries));
        for (int m = 0; m < p; ++m) {
          const auto& rows = work[i]->local_rows[static_cast<std::size_t>(m)];
          if (rows.empty()) continue;
          dtree::accumulate(node_hist, layout, mapper, rows);
          machine.charge_compute(g.rank(m),
                                 static_cast<double>(rows.size()) * num_attrs);
          // Eq. 1's "I/O scan of the training set": the attribute lists are
          // disk-resident, so every level re-reads each local record once.
          machine.charge_io(g.rank(m), static_cast<double>(rows.size()) *
                                           ctx.record_words() * cm.t_io);
        }
      }
      // Table initialization plus split-gain evaluation (Eq. 1's
      // C*A_d*M*2^L term), identical on every member. Charged at 0.5 t_c
      // per entry: zeroing and a sequential gain scan are far cheaper per
      // entry than the random-access increments t_c is calibrated to.
      for (int m = 0; m < p; ++m) {
        machine.charge_compute(g.rank(m),
                               0.5 * static_cast<double>(chunk_nodes) * entries);
      }
    }

    // Flush the communication buffer: one global reduction of this chunk's
    // histograms (Section 3.1 step 3 / Eq. 2).
    const double words =
        static_cast<double>(chunk_nodes) * ctx.hist_words();
    {
      const obs::PhaseScope phase(ctx.profiler(), "all-reduce");
      if (machine.fault() != nullptr) {
        // The hybrid's split criterion must see the straggler-inflated
        // cost, so measure the horizon advance instead of the analytic
        // Eq. 2 value (the two agree whenever no straggler is active).
        const mpsim::Time before = g.horizon();
        g.charge_all_reduce(words);
        level_comm += g.horizon() - before;
      } else {
        g.charge_all_reduce(words);
        level_comm += cm.all_reduce(words, p);
      }
    }
    ctx.count_words_all_reduced(words);
    ctx.histogram_words += words;

    // Section 3.4's parallel sorting for exact continuous thresholds: the
    // chunk's values are sorted cooperatively (local sort + sample-sort
    // exchange) for every continuous attribute — the "much higher volume"
    // exchange the paper warns about.
    const int num_cont = ctx.dataset().schema().num_continuous();
    if (ctx.options().exact_continuous && num_cont > 0) {
      const obs::PhaseScope phase(ctx.profiler(), "sort");
      std::vector<double> member_rows(static_cast<std::size_t>(p), 0.0);
      for (std::size_t i = c0; i < c1; ++i) {
        for (int m = 0; m < p; ++m) {
          member_rows[static_cast<std::size_t>(m)] += static_cast<double>(
              work[i]->local_rows[static_cast<std::size_t>(m)].size());
        }
      }
      // Sort staging: 3 words (value, rid, class) per local row per
      // continuous attribute, held only through this chunk's sort.
      std::vector<std::int64_t> sort_bytes(static_cast<std::size_t>(p), 0);
      for (int m = 0; m < p; ++m) {
        sort_bytes[static_cast<std::size_t>(m)] = std::llround(
            member_rows[static_cast<std::size_t>(m)] * 3.0 * num_cont * 4.0);
        machine.alloc_bytes(g.rank(m), mpsim::MemTag::Scratch,
                            sort_bytes[static_cast<std::size_t>(m)]);
      }
      for (int m = 0; m < p; ++m) {
        const double rows_m = member_rows[static_cast<std::size_t>(m)];
        if (rows_m > 0.0) {
          machine.charge_compute(
              g.rank(m), num_cont * rows_m *
                             std::log2(std::max(2.0, rows_m)));
        }
      }
      if (p > 1) {
        // One combined exchange: 3 words (value, rid, class) per row per
        // continuous attribute.
        std::vector<std::vector<double>> matrix(
            static_cast<std::size_t>(p),
            std::vector<double>(static_cast<std::size_t>(p), 0.0));
        double sort_words = 0.0;
        for (int i = 0; i < p; ++i) {
          const double out =
              member_rows[static_cast<std::size_t>(i)] * 3.0 * num_cont;
          sort_words += out;
          for (int j = 0; j < p; ++j) {
            matrix[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
                out / p;
          }
        }
        const mpsim::Time before = g.horizon();
        g.all_to_all_personalized(matrix);
        level_comm += g.horizon() - before;
        ctx.histogram_words += sort_words;
      }
      for (int m = 0; m < p; ++m) {
        machine.free_bytes(g.rank(m), mpsim::MemTag::Scratch,
                           sort_bytes[static_cast<std::size_t>(m)]);
      }
    }

    // Split selection — computed simultaneously (and identically) by every
    // member (Section 3.1 step 4), then local row partitioning (step 5).
    const obs::PhaseScope split_phase(ctx.profiler(), "split-eval");
    ctx.count_splits_evaluated(static_cast<std::int64_t>(chunk_nodes));
    for (std::size_t i = c0; i < c1; ++i) {
      auto node_hist = std::span<const std::int64_t>(hist).subspan(
          (i - c0) * static_cast<std::size_t>(entries),
          static_cast<std::size_t>(entries));
      const dtree::SplitDecision d =
          ctx.options().exact_continuous
              ? choose_split_exact(node_hist, layout, ctx.dataset(), grow,
                                   *work[i])
              : dtree::choose_split(node_hist, layout,
                                    ctx.dataset().schema(), mapper, grow);
      if (d.test.is_leaf()) {
        // The node closes: its rows leave the distributed store.
        for (int m = 0; m < p; ++m) {
          ctx.mem_records_free(g.rank(m), work[i]->member_records(m));
        }
        continue;
      }
      const int first = tree.expand(work[i]->node_id, d);
      if (dtree::SplitObserver* audit = tree.split_observer()) {
        // Feed counts by *global* rank, taken before the partition loop
        // below clears the node's row lists.
        for (int m = 0; m < p; ++m) {
          const std::int64_t fed = work[i]->member_records(m);
          if (fed > 0) audit->on_feed(work[i]->node_id, g.rank(m), fed);
        }
      }

      std::vector<NodeWork> children(
          static_cast<std::size_t>(d.test.num_children));
      for (auto& ch : children) {
        ch.local_rows.resize(static_cast<std::size_t>(p));
      }
      for (int m = 0; m < p; ++m) {
        auto& rows = work[i]->local_rows[static_cast<std::size_t>(m)];
        if (rows.empty()) continue;
        machine.charge_compute(g.rank(m), static_cast<double>(rows.size()));
        for (const data::RowId row : rows) {
          // Threshold tests compare the raw value (equivalent to the slot
          // comparison when the cut is a micro-bin boundary, and required
          // for the exact thresholds of the parallel-sorting strategy).
          const int child =
              d.test.kind == dtree::SplitTest::Kind::Threshold
                  ? (ctx.dataset().cont(d.test.attr, row) < d.test.threshold
                         ? 0
                         : 1)
                  : d.test.child_of_slot(mapper.slot(d.test.attr, row));
          children[static_cast<std::size_t>(child)]
              .local_rows[static_cast<std::size_t>(m)]
              .push_back(row);
        }
        rows.clear();
        rows.shrink_to_fit();
      }
      for (int k = 0; k < d.test.num_children; ++k) {
        auto& ch = children[static_cast<std::size_t>(k)];
        if (ch.total_records() > 0) {
          ch.node_id = first + k;
          next.push_back(std::move(ch));
        }
      }
    }

    // Chunk done: release its count tables before the next chunk is
    // materialized (the buffer is reused, not accumulated). Attributed to
    // the histogram phase that charged them, so the ledger cell
    // telescopes to zero instead of leaving a positive remainder here
    // and a negative one under split-eval.
    {
      const obs::PhaseScope phase(ctx.profiler(), "histogram");
      for (int m = 0; m < p; ++m) {
        machine.free_bytes(g.rank(m), mpsim::MemTag::Histogram,
                           chunk_table_bytes);
      }
    }
  }

#ifndef NDEBUG
  for (int m = 0; m < p; ++m) {
    const mpsim::MemStats& mem = machine.mem(g.rank(m));
    assert(mem.live_for(mpsim::MemTag::Histogram) +
               mem.live_for(mpsim::MemTag::Scratch) +
               mem.live_for(mpsim::MemTag::CollectiveBuffer) ==
           scratch_baseline[static_cast<std::size_t>(m)]);
  }
#endif

  if (comm_cost_out != nullptr) *comm_cost_out += level_comm;
  return next;
}

}  // namespace pdt::core
