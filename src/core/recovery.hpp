// Checkpoint/recovery for the three parallel formulations (DESIGN.md §7).
//
// With a fault plan armed on the machine, every level expansion is wrapped
// by expand_level_ft(): the partition checkpoints its frontier (tree copy,
// row ownership, per-rank memory snapshot) at an explicit t_io cost, the
// injector fires any fail-stop scheduled for this level, and a raised
// RankFailure is absorbed by restoring the checkpoint onto the surviving
// ranks — the dead rank's records are re-read from stable storage and
// spread N/(P-1)-style over the survivors, the group shrinks, and the
// level is retried. Without a plan armed, expand_level_ft() is a plain
// call to expand_level(): fault-free runs stay bit-identical.
#pragma once

#include "core/frontier.hpp"
#include "mpsim/fault.hpp"

namespace pdt::core {

/// A consistent snapshot of one partition's state just before it expands a
/// level: everything recovery needs to roll the partition back.
struct LevelCheckpoint {
  int level = -1;                       ///< tree depth about to be expanded
  dtree::Tree tree;                     ///< replicated tree at the cut
  std::vector<NodeWork> frontier;       ///< row ownership at the cut
  std::vector<mpsim::Rank> ranks;       ///< group members at the cut
  std::vector<mpsim::MemStats> mem;     ///< per-member byte accounts
  std::int64_t bytes = 0;               ///< record bytes written to store
};

/// Write a level checkpoint: copy the partition state, charge each member
/// t_io per record word it owns (staged through Scratch), and account it
/// in ctx.recovery. Emits a Checkpoint trace event when tracing.
[[nodiscard]] LevelCheckpoint take_checkpoint(ParContext& ctx,
                                              const mpsim::Group& g,
                                              const std::vector<NodeWork>& f,
                                              int level);

/// Absorb a fail-stop: charge the detection timeout if no collective did,
/// restore survivors' memory to the checkpoint snapshot, roll the tree
/// back, rebuild the frontier on the surviving ranks with the dead rank's
/// shard re-read from the checkpoint and balanced over the survivors, and
/// shrink `g` to the survivor group. If the checkpoint group has no
/// survivor, the lowest alive rank machine-wide adopts the partition; if
/// the whole machine is dead, throws std::runtime_error.
void recover_from_failure(ParContext& ctx, mpsim::Group& g,
                          std::vector<NodeWork>& frontier,
                          const LevelCheckpoint& ckpt,
                          const mpsim::RankFailure& rf);

/// Fault-tolerant expand_level: checkpoint, fire scheduled faults for this
/// level, expand, and on RankFailure recover and retry (the group `g` is
/// replaced by the survivor group). Falls through to expand_level() when
/// no fault plan is armed.
[[nodiscard]] std::vector<NodeWork> expand_level_ft(
    ParContext& ctx, mpsim::Group& g, std::vector<NodeWork>& frontier,
    mpsim::Time* comm_cost_out = nullptr);

}  // namespace pdt::core
