#include "core/recovery.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace pdt::core {

namespace {

/// Survivor ranks of a checkpoint group, ascending. Falls back to the
/// lowest alive rank machine-wide when the whole group died (a size-1
/// partition's only member fail-stopped: some other processor must adopt
/// its subtrees, exactly as records would be re-read from stable storage
/// by any node).
std::vector<mpsim::Rank> pick_survivors(const mpsim::FaultInjector& inj,
                                        const std::vector<mpsim::Rank>& ranks,
                                        const mpsim::RankFailure& rf) {
  std::vector<mpsim::Rank> survivors;
  for (const mpsim::Rank r : ranks) {
    if (inj.alive(r)) survivors.push_back(r);
  }
  if (survivors.empty()) {
    const std::vector<mpsim::Rank> alive = inj.alive_ranks();
    if (alive.empty()) {
      throw std::runtime_error(
          "recover_from_failure: rank " + std::to_string(rf.rank) +
          " fail-stopped at level " + std::to_string(rf.level) +
          " and no processor is left alive to adopt its work");
    }
    survivors.push_back(alive.front());
  }
  return survivors;
}

}  // namespace

LevelCheckpoint take_checkpoint(ParContext& ctx, const mpsim::Group& g,
                                const std::vector<NodeWork>& f, int level) {
  const obs::PhaseScope phase(ctx.profiler(), "checkpoint");
  mpsim::Machine& machine = ctx.machine();
  const mpsim::CostModel& cm = machine.cost();

  // Synchronize first so the snapshot is a consistent cut of the
  // partition (no member is mid-level when its state is captured).
  machine.barrier_over(g.ranks(), "checkpoint");

  LevelCheckpoint ck;
  ck.level = level;
  ck.tree = ctx.tree();
  ck.frontier = f;
  ck.ranks = g.ranks();

  mpsim::Time io_total = 0.0;
  std::int64_t records = 0;
  for (int m = 0; m < g.size(); ++m) {
    const mpsim::Rank r = g.rank(m);
    const std::int64_t n = frontier_member_records(f, m);
    records += n;
    const std::int64_t staging = n * ctx.record_bytes();
    // The member serializes its shard through a staging buffer and pays
    // t_io per word written to stable storage.
    machine.alloc_bytes(r, mpsim::MemTag::Scratch, staging);
    const mpsim::Time t =
        cm.t_io * static_cast<double>(n) * ctx.record_words();
    machine.charge_io(r, t);
    machine.free_bytes(r, mpsim::MemTag::Scratch, staging);
    io_total += t;
    ck.bytes += staging;
  }
  // Snapshot the byte accounts after the staging round-trips, so restoring
  // to the snapshot never resurrects checkpoint scratch.
  ck.mem.reserve(static_cast<std::size_t>(g.size()));
  for (int m = 0; m < g.size(); ++m) {
    ck.mem.push_back(machine.mem(g.rank(m)));
  }

  ctx.recovery.checkpoints += 1;
  ctx.recovery.checkpoint_bytes += ck.bytes;
  ctx.recovery.checkpoint_io_us += io_total;
  if (machine.trace().enabled()) {
    machine.trace().record(
        {.time = g.horizon(),
         .kind = mpsim::EventKind::Checkpoint,
         .rank = g.rank(0),
         .group_base = g.rank(0),
         .group_size = g.size(),
         .words = static_cast<double>(ck.bytes) / 4.0,
         .detail = "level " + std::to_string(level) + " checkpoint: " +
                   std::to_string(records) + " records, " +
                   std::to_string(ck.bytes) + " bytes"});
  }
  return ck;
}

void recover_from_failure(ParContext& ctx, mpsim::Group& g,
                          std::vector<NodeWork>& frontier,
                          const LevelCheckpoint& ckpt,
                          const mpsim::RankFailure& rf) {
  const obs::PhaseScope phase(ctx.profiler(), "recovery");
  mpsim::Machine& machine = ctx.machine();
  const mpsim::CostModel& cm = machine.cost();
  mpsim::FaultInjector* inj = machine.fault();
  assert(inj != nullptr);

  const std::vector<mpsim::Rank> survivors =
      pick_survivors(*inj, ckpt.ranks, rf);
  const int q = static_cast<int>(survivors.size());

  // Detection: when the failure surfaced as a charge on the dead rank
  // itself (rather than at a collective, which already made the survivors
  // wait out the timeout), the heartbeat window is charged here.
  if (!rf.detected) {
    const mpsim::Time deadline = machine.charge_timeout(survivors, rf.rank);
    if (machine.trace().enabled()) {
      machine.trace().record(
          {.time = deadline,
           .kind = mpsim::EventKind::RankFail,
           .rank = rf.rank,
           .group_base = ckpt.ranks.front(),
           .group_size = static_cast<int>(ckpt.ranks.size()),
           .words = 0.0,
           .detail = "rank " + std::to_string(rf.rank) +
                     " fail-stop detected at level " +
                     std::to_string(rf.level)});
    }
  }
  ctx.recovery.detect_us += cm.t_timeout;
  inj->mark_recovered(rf.rank);

  mpsim::Time rec_start = 0.0;
  for (const mpsim::Rank r : survivors) {
    rec_start = std::max(rec_start, machine.clock(r));
  }

  // Roll every old member's byte account back to the snapshot (the failed
  // attempt may have died mid-collective, leaving staging live and record
  // frees half-applied). The dead rank's memory is simply gone.
  for (std::size_t m = 0; m < ckpt.ranks.size(); ++m) {
    const mpsim::Rank r = ckpt.ranks[m];
    const bool dead = !inj->alive(r);
    for (int t = 0; t < mpsim::kNumMemTags; ++t) {
      const auto tag = static_cast<mpsim::MemTag>(t);
      const std::int64_t target = dead ? 0 : ckpt.mem[m].live_for(tag);
      const std::int64_t cur = machine.mem(r).live_for(tag);
      if (cur > target) {
        machine.free_bytes(r, tag, cur - target);
      } else if (cur < target) {
        machine.alloc_bytes(r, tag, target - cur);
      }
    }
  }

  // Roll the replicated tree back to the cut. Nothing else ran between the
  // checkpoint and the failure (the simulation advances one partition at a
  // time), so a whole-tree copy cannot lose another partition's expansions.
  ctx.tree() = ckpt.tree;

  // Rebuild the frontier indexed to the survivor group: survivors keep
  // their own checkpointed shards, and each dead member's rows are cut
  // into contiguous near-equal chunks over the survivors (the N/(P-1)
  // redistribution), who re-read them from the checkpoint at t_io cost.
  std::vector<std::int64_t> received(static_cast<std::size_t>(q), 0);
  std::int64_t redistributed = 0;
  frontier.clear();
  frontier.reserve(ckpt.frontier.size());
  for (const NodeWork& nw : ckpt.frontier) {
    NodeWork out;
    out.node_id = nw.node_id;
    out.local_rows.resize(static_cast<std::size_t>(q));
    std::vector<data::RowId> dead_rows;
    for (std::size_t m = 0; m < ckpt.ranks.size(); ++m) {
      const auto it = std::find(survivors.begin(), survivors.end(),
                                ckpt.ranks[m]);
      if (it != survivors.end()) {
        out.local_rows[static_cast<std::size_t>(it - survivors.begin())] =
            nw.local_rows[m];
      } else {
        dead_rows.insert(dead_rows.end(), nw.local_rows[m].begin(),
                         nw.local_rows[m].end());
      }
    }
    const auto dn = static_cast<std::int64_t>(dead_rows.size());
    redistributed += dn;
    std::size_t pos = 0;
    for (int s = 0; s < q; ++s) {
      const std::int64_t take = dn / q + (s < dn % q ? 1 : 0);
      auto& dst = out.local_rows[static_cast<std::size_t>(s)];
      dst.insert(dst.end(), dead_rows.begin() + static_cast<std::ptrdiff_t>(pos),
                 dead_rows.begin() + static_cast<std::ptrdiff_t>(pos + take));
      received[static_cast<std::size_t>(s)] += take;
      pos += static_cast<std::size_t>(take);
    }
    frontier.push_back(std::move(out));
  }
  for (int s = 0; s < q; ++s) {
    const std::int64_t n = received[static_cast<std::size_t>(s)];
    if (n == 0) continue;
    machine.charge_io(survivors[static_cast<std::size_t>(s)],
                      cm.t_io * static_cast<double>(n) * ctx.record_words());
    ctx.mem_records_alloc(survivors[static_cast<std::size_t>(s)], n);
  }

  // Shrink to the survivor group, then even out per-member totals (the
  // contiguous chunks above balance the dead shard but not the survivors'
  // own uneven loads) with the usual Eq. 4 machinery.
  g = mpsim::Group(machine, survivors);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(q), 0);
  for (int s = 0; s < q; ++s) {
    counts[static_cast<std::size_t>(s)] = frontier_member_records(frontier, s);
  }
  const std::vector<mpsim::Transfer> transfers =
      mpsim::Group::plan_balance(counts);
  for (const mpsim::Transfer& t : transfers) {
    std::int64_t remaining = t.count;
    for (NodeWork& nw : frontier) {
      if (remaining == 0) break;
      auto& src = nw.local_rows[static_cast<std::size_t>(t.from)];
      auto& dst = nw.local_rows[static_cast<std::size_t>(t.to)];
      const std::int64_t take = std::min<std::int64_t>(
          remaining, static_cast<std::int64_t>(src.size()));
      dst.insert(dst.end(), src.end() - take, src.end());
      src.resize(src.size() - static_cast<std::size_t>(take));
      remaining -= take;
    }
    assert(remaining == 0);
    ctx.records_moved += t.count;
    ctx.count_records_relocated(t.count);
    ctx.mem_records_move(g.rank(t.from), g.rank(t.to), t.count);
  }
  g.charge_transfers(transfers, ctx.record_words());

  const mpsim::Time rec_end = g.horizon();
  ctx.recovery.failures += 1;
  ctx.recovery.recovery_us += rec_end - rec_start;
  ctx.recovery.records_redistributed += redistributed;
  if (machine.trace().enabled()) {
    machine.trace().record(
        {.time = rec_end,
         .kind = mpsim::EventKind::Recovery,
         .rank = survivors.front(),
         .group_base = survivors.front(),
         .group_size = q,
         .words = static_cast<double>(redistributed) * ctx.record_words(),
         .detail = "recovered from rank " + std::to_string(rf.rank) +
                   " at level " + std::to_string(rf.level) + ": " +
                   std::to_string(redistributed) + " records onto " +
                   std::to_string(q) + " survivors"});
  }
}

std::vector<NodeWork> expand_level_ft(ParContext& ctx, mpsim::Group& g,
                                      std::vector<NodeWork>& frontier,
                                      mpsim::Time* comm_cost_out) {
  mpsim::FaultInjector* inj = ctx.machine().fault();
  if (inj == nullptr || frontier.empty()) {
    return expand_level(ctx, g, frontier, comm_cost_out);
  }
  const int level = ctx.tree().node(frontier.front().node_id).depth;
  for (;;) {
    const LevelCheckpoint ckpt = take_checkpoint(ctx, g, frontier, level);
    inj->enter_level(level, g.ranks());
    try {
      return expand_level(ctx, g, frontier, comm_cost_out);
    } catch (const mpsim::RankFailure& rf) {
      recover_from_failure(ctx, g, frontier, ckpt, rf);
    }
  }
}

}  // namespace pdt::core
