#include "core/hybrid_tree.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/ckpt.hpp"
#include "core/recovery.hpp"
#include "core/sync_tree.hpp"
#include "data/rng.hpp"
#include "mpsim/comm_ledger.hpp"

namespace pdt::core {

namespace {

struct HPartition {
  mpsim::Group group;
  std::vector<NodeWork> frontier;
  mpsim::Time acc_comm = 0.0;  ///< Sum(Communication Cost) since last split
};

/// Allocate frontier nodes to the two halves with roughly equal record
/// totals. Node order is randomized first (the paper credits the largely
/// randomized node allocation for the hybrid's good load balance), then a
/// greedy lighter-side assignment balances the records.
std::vector<int> allocate_nodes(const std::vector<NodeWork>& frontier,
                                data::Rng& rng) {
  std::vector<std::size_t> order(frontier.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }
  std::vector<int> side(frontier.size(), 0);
  std::int64_t load[2] = {0, 0};
  for (const std::size_t j : order) {
    const int s = load[0] <= load[1] ? 0 : 1;
    side[j] = s;
    load[s] += frontier[j].total_records();
  }
  return side;
}

/// Even out per-member record counts inside one half after the moving
/// phase (the Eq. 4 load-balancing step). Rows move between members
/// without changing which tree node they belong to.
void balance_half(ParContext& ctx, const mpsim::Group& g,
                  std::vector<NodeWork>& frontier) {
  const obs::PhaseScope phase(ctx.profiler(), "load-balance");
  const int p = g.size();
  if (p <= 1) return;
  std::vector<std::int64_t> counts(static_cast<std::size_t>(p), 0);
  for (int m = 0; m < p; ++m) {
    counts[static_cast<std::size_t>(m)] = frontier_member_records(frontier, m);
  }
  const std::vector<mpsim::Transfer> transfers =
      mpsim::Group::plan_balance(counts);
  if (transfers.empty()) return;
  for (const mpsim::Transfer& t : transfers) {
    std::int64_t remaining = t.count;
    for (NodeWork& nw : frontier) {
      if (remaining == 0) break;
      auto& src = nw.local_rows[static_cast<std::size_t>(t.from)];
      auto& dst = nw.local_rows[static_cast<std::size_t>(t.to)];
      const std::int64_t take = std::min<std::int64_t>(
          remaining, static_cast<std::int64_t>(src.size()));
      dst.insert(dst.end(), src.end() - take, src.end());
      src.resize(src.size() - static_cast<std::size_t>(take));
      remaining -= take;
    }
    assert(remaining == 0);
    ctx.records_moved += t.count;
    ctx.count_records_relocated(t.count);
    ctx.mem_records_move(g.rank(t.from), g.rank(t.to), t.count);
  }
  g.charge_transfers(transfers, ctx.record_words());
}

/// Split a partition in two: allocate nodes, run the moving phase across
/// partner processors of the two half subcubes, then balance each half.
std::pair<HPartition, HPartition> split_partition(ParContext& ctx,
                                                  HPartition part,
                                                  data::Rng& rng) {
  const int p = part.group.size();
  const int h = p / 2;
  const std::vector<int> side = allocate_nodes(part.frontier, rng);
  auto [ga, gb] = part.group.halves();

  // Moving phase (Eq. 3): member m sends every row it holds of nodes
  // assigned to the other side to its partner m +/- h.
  const std::int64_t moved_before = ctx.records_moved;
  std::vector<double> words_out(static_cast<std::size_t>(p), 0.0);
  std::vector<NodeWork> fa, fb;
  {
    const obs::PhaseScope move_phase(ctx.profiler(), "record-shuffle");
    for (std::size_t j = 0; j < part.frontier.size(); ++j) {
      NodeWork& nw = part.frontier[j];
      NodeWork out;
      out.node_id = nw.node_id;
      out.local_rows.resize(static_cast<std::size_t>(h));
      const bool to_a = side[j] == 0;
      for (int m = 0; m < p; ++m) {
        auto& rows = nw.local_rows[static_cast<std::size_t>(m)];
        if (rows.empty()) continue;
        const bool stays = to_a == (m < h);
        if (!stays) {
          words_out[static_cast<std::size_t>(m)] +=
              static_cast<double>(rows.size()) * ctx.record_words();
          ctx.records_moved += static_cast<std::int64_t>(rows.size());
          // The row crosses to its partner across the split dimension.
          ctx.mem_records_move(part.group.rank(m),
                               part.group.rank(to_a ? m - h : m + h),
                               static_cast<std::int64_t>(rows.size()));
        }
        auto& dst = out.local_rows[static_cast<std::size_t>(m % h)];
        dst.insert(dst.end(), rows.begin(), rows.end());
        rows.clear();
        rows.shrink_to_fit();
      }
      (to_a ? fa : fb).push_back(std::move(out));
    }
    part.group.pairwise_exchange(words_out);
  }
  ctx.count_records_relocated(ctx.records_moved - moved_before);
  ctx.observe_shuffle_records(ctx.records_moved - moved_before);

  if (ctx.options().load_balance) {
    balance_half(ctx, ga, fa);
    balance_half(ctx, gb, fb);
  }
  ++ctx.partition_splits;
  if (ctx.machine().trace().enabled()) {
    ctx.machine().trace().record(
        {.time = ga.horizon(),
         .kind = mpsim::EventKind::PartitionSplit,
         .rank = part.group.rank(0),
         .group_base = part.group.rank(0),
         .group_size = p,
         .words = 0.0,
         .detail = "partition halved: " + std::to_string(fa.size()) + " + " +
                   std::to_string(fb.size()) + " frontier nodes"});
  }
  return {HPartition{std::move(ga), std::move(fa), 0.0},
          HPartition{std::move(gb), std::move(fb), 0.0}};
}

/// The paper's rejoin (Sections 3.3 / 4.2): an idle partition of the same
/// size is included "during the next round of splitting" of a busy
/// partition. Instead of halving itself, the busy partition allocates half
/// of its frontier (by records) to the idle group: busy processor i ships
/// the other side's rows to idle processor i, each side then balances
/// internally. Returns the idle group's new partition.
HPartition rejoin_split(ParContext& ctx, HPartition& busy, mpsim::Group idle,
                        data::Rng& rng) {
  const int p = busy.group.size();
  assert(idle.size() == p);
  const std::vector<int> side = allocate_nodes(busy.frontier, rng);
  std::vector<mpsim::Transfer> union_transfers;
  std::vector<NodeWork> keep_frontier;
  std::vector<NodeWork> give_frontier;
  std::vector<std::int64_t> given(static_cast<std::size_t>(p), 0);
  for (std::size_t j = 0; j < busy.frontier.size(); ++j) {
    NodeWork& nw = busy.frontier[j];
    if (side[j] == 0) {
      keep_frontier.push_back(std::move(nw));
      continue;
    }
    for (int i = 0; i < p; ++i) {
      given[static_cast<std::size_t>(i)] +=
          static_cast<std::int64_t>(nw.local_rows[static_cast<std::size_t>(i)].size());
    }
    give_frontier.push_back(std::move(nw));
  }
  // Cost: busy member i -> idle member i, all its rows of the given side.
  for (int i = 0; i < p; ++i) {
    if (given[static_cast<std::size_t>(i)] > 0) {
      union_transfers.push_back(mpsim::Transfer{i, p + i,
                                                given[static_cast<std::size_t>(i)]});
      ctx.records_moved += given[static_cast<std::size_t>(i)];
      ctx.count_records_relocated(given[static_cast<std::size_t>(i)]);
    }
  }
  {
    const obs::PhaseScope phase(ctx.profiler(), "record-shuffle");
    // Charge on a group whose member order is busy-then-idle so the
    // transfer indices line up.
    std::vector<mpsim::Rank> ordered = busy.group.ranks();
    const auto& ir = idle.ranks();
    ordered.insert(ordered.end(), ir.begin(), ir.end());
    // Group() sorts ranks, so build the transfer cost directly instead.
    const mpsim::CostModel& cm = ctx.machine().cost();
    ctx.machine().barrier_over(ordered);
    mpsim::CommLedger* ledger = ctx.machine().comm_ledger();
    for (const mpsim::Transfer& t : union_transfers) {
      const double words =
          static_cast<double>(t.count) * ctx.record_words();
      const mpsim::Rank from = ordered[static_cast<std::size_t>(t.from)];
      const mpsim::Rank to = ordered[static_cast<std::size_t>(t.to)];
      const double lf = ctx.machine().link_factor(from, to);
      const mpsim::Time wire = (cm.t_s + cm.t_w * words) * lf;
      ctx.machine().charge_comm(from, wire, words, 0.0, 1, cm.t_s * lf);
      ctx.machine().charge_comm(to, wire, 0.0, words, 1, cm.t_s * lf);
      ctx.machine().charge_io(from, cm.t_io * words);
      ctx.machine().charge_io(to, cm.t_io * words);
      ctx.mem_records_move(from, to, t.count);
      if (ledger != nullptr) ledger->add_traffic(from, to, words);
    }
    ctx.machine().barrier_over(ordered);
  }

  busy.frontier = std::move(keep_frontier);
  busy.acc_comm = 0.0;
  if (ctx.options().load_balance) {
    balance_half(ctx, busy.group, busy.frontier);
  }
  HPartition helper{std::move(idle), std::move(give_frontier), 0.0};
  if (ctx.options().load_balance) {
    balance_half(ctx, helper.group, helper.frontier);
  }
  ++ctx.rejoins;
  if (ctx.machine().trace().enabled()) {
    ctx.machine().trace().record(
        {.time = busy.group.horizon(),
         .kind = mpsim::EventKind::Rejoin,
         .rank = busy.group.rank(0),
         .group_base = busy.group.rank(0),
         .group_size = p,
         .words = 0.0,
         .detail = "idle partition recruited for " +
                   std::to_string(helper.frontier.size()) + " frontier nodes"});
  }
  return helper;
}

}  // namespace

ParResult build_hybrid(const data::Dataset& ds, const ParOptions& opt) {
  mpsim::Machine machine(opt.num_procs, opt.cost);
  ParContext ctx(ds, opt, machine);
  data::Rng rng(opt.seed ^ 0x9E3779B97F4A7C15ULL);
  const mpsim::CostModel& cm = machine.cost();

  DurableCheckpointer ckpt(ctx, "hybrid");
  std::vector<HPartition> active;
  std::vector<mpsim::Group> idle;
  RunSnapshot snap;
  if (resume_from_checkpoint(ctx, "hybrid", &snap)) {
    // Clocks restart at zero, so the earliest-horizon pick below may
    // visit partitions in a different order than the interrupted run —
    // that reorders *when* nodes expand, never which split wins, so the
    // final tree digest still matches an uninterrupted run's.
    for (CkptPart& p : snap.parts) {
      active.push_back(HPartition{mpsim::Group(machine, std::move(p.ranks)),
                                  std::move(p.frontier), p.acc_comm});
    }
    for (std::vector<mpsim::Rank>& g : snap.idle) {
      idle.emplace_back(machine, std::move(g));
    }
  } else {
    mpsim::Group all = mpsim::Group::whole(machine);
    std::vector<NodeWork> frontier;
    frontier.push_back(ctx.initial_root(all));
    active.push_back(HPartition{std::move(all), std::move(frontier), 0.0});
  }

  while (!active.empty()) {
    if (ckpt.enabled()) {
      std::vector<CkptPart> parts;
      parts.reserve(active.size());
      for (const HPartition& p : active) {
        parts.push_back(CkptPart{p.group.ranks(), p.acc_comm, p.frontier});
      }
      std::vector<std::vector<mpsim::Rank>> idle_ranks;
      idle_ranks.reserve(idle.size());
      for (const mpsim::Group& g : idle) idle_ranks.push_back(g.ranks());
      ckpt.save(std::move(parts), std::move(idle_ranks));
    }
    // Asynchronous partitions: advance the one earliest in virtual time.
    std::size_t pick = 0;
    for (std::size_t i = 1; i < active.size(); ++i) {
      if (active[i].group.horizon() < active[pick].group.horizon()) {
        pick = i;
      }
    }
    HPartition part = std::move(active[pick]);
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));

    part.frontier = expand_level_ft(ctx, part.group, part.frontier,
                                    &part.acc_comm);
    if (part.frontier.empty()) {
      idle.push_back(std::move(part.group));
      continue;
    }

    // Splitting criterion (Section 4.2): split when the accumulated
    // communication cost reaches split_ratio x (moving + load balancing).
    if (part.group.size() >= 1 && part.frontier.size() >= 2) {
      const double per_proc =
          static_cast<double>(frontier_records(part.frontier)) /
          part.group.size();
      const double moving_est = 2.0 * per_proc * ctx.record_words() *
                                cm.record_move_word_cost();
      const double lb_est = opt.load_balance ? moving_est : 0.0;
      const double threshold = opt.split_ratio * (moving_est + lb_est);
      if (part.acc_comm >= threshold && threshold > 0.0) {
        // "During the next round of splitting the idle partition is
        // included": a same-size idle group takes half the frontier in
        // preference to halving the busy group.
        int idle_match = -1;
        if (opt.rejoin_idle) {
          for (std::size_t i = 0; i < idle.size(); ++i) {
            if (idle[i].size() == part.group.size()) {
              idle_match = static_cast<int>(i);
              break;
            }
          }
        }
        if (idle_match >= 0) {
          mpsim::Group helper_group =
              std::move(idle[static_cast<std::size_t>(idle_match)]);
          idle.erase(idle.begin() + idle_match);
          HPartition helper =
              rejoin_split(ctx, part, std::move(helper_group), rng);
          active.push_back(std::move(part));
          active.push_back(std::move(helper));
          continue;
        }
        if (part.group.size() > 1 && part.group.size() % 2 == 0) {
          auto [a, b] = split_partition(ctx, std::move(part), rng);
          active.push_back(std::move(a));
          active.push_back(std::move(b));
          continue;
        }
      }
    }
    active.push_back(std::move(part));
  }

  ctx.levels = ctx.tree().depth();
  return collect_result(ctx);
}

}  // namespace pdt::core
