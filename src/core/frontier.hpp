// Shared machinery of the three parallel formulations: the distributed
// frontier representation and the synchronous level-expansion step
// (Section 3.1 steps 1-5) that all of them build on.
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.hpp"
#include "data/partition.hpp"
#include "dtree/histogram.hpp"
#include "mpsim/group.hpp"
#include "obs/observability.hpp"

namespace pdt::core {

/// One frontier tree node within a processor partition: which rows of the
/// node each group member holds locally.
struct NodeWork {
  int node_id = -1;
  /// local_rows[m] = rows held by group member m (index into group ranks).
  std::vector<std::vector<data::RowId>> local_rows;

  [[nodiscard]] std::int64_t total_records() const;
  [[nodiscard]] std::int64_t member_records(int m) const {
    return static_cast<std::int64_t>(local_rows[static_cast<std::size_t>(m)].size());
  }
};

/// Run-wide shared state: the dataset, slot machinery, the (replicated)
/// tree under construction, and accounting knobs.
class ParContext {
 public:
  ParContext(const data::Dataset& ds, const ParOptions& opt,
             mpsim::Machine& machine);

  [[nodiscard]] const data::Dataset& dataset() const { return *ds_; }
  [[nodiscard]] const ParOptions& options() const { return *opt_; }
  [[nodiscard]] mpsim::Machine& machine() const { return *machine_; }
  [[nodiscard]] const dtree::SlotMapper& mapper() const { return mapper_; }
  [[nodiscard]] const dtree::AttrLayout& layout() const { return layout_; }
  [[nodiscard]] dtree::Tree& tree() { return tree_; }

  /// Phase profiler of the attached observability sink, or nullptr when
  /// observability is disabled (obs::PhaseScope treats nullptr as no-op).
  [[nodiscard]] obs::PhaseProfiler* profiler() const { return profiler_; }

  /// Split-decision audit of the attached sink, or nullptr when model
  /// auditing is off (the default — one branch per expansion).
  [[nodiscard]] obs::SplitAudit* split_audit() const { return split_audit_; }

  // Branch-cheap metric updates (handles resolved once in the ctor;
  // no-ops when observability is disabled).
  void count_records_relocated(std::int64_t n) {
    if (records_relocated_ != nullptr) {
      records_relocated_->add(static_cast<double>(n));
    }
  }
  void count_words_all_reduced(double words) {
    if (words_all_reduced_ != nullptr) words_all_reduced_->add(words);
  }
  void count_splits_evaluated(std::int64_t n) {
    if (splits_evaluated_ != nullptr) {
      splits_evaluated_->add(static_cast<double>(n));
    }
  }
  void observe_frontier_nodes(std::int64_t n) {
    if (frontier_nodes_ != nullptr) {
      frontier_nodes_->observe(static_cast<double>(n));
    }
  }
  void observe_shuffle_records(std::int64_t n) {
    if (shuffle_records_ != nullptr) {
      shuffle_records_->observe(static_cast<double>(n));
    }
  }
  /// Publish run-summary gauges (overall load imbalance, comm:compute,
  /// lifecycle totals) into the registry; called by collect_result.
  void publish_summary_gauges();

  /// Words on the wire of one node's flat histogram (counts travel as
  /// 4-byte words, the unit of Eq. 2's C * A_d * M).
  [[nodiscard]] double hist_words() const {
    return static_cast<double>(layout_.total());
  }
  /// Words of one training record when it moves between processors: one
  /// word per categorical value, two per continuous value, one label.
  [[nodiscard]] double record_words() const { return record_words_; }
  /// Resident bytes of one record in a rank's local store (4 bytes per
  /// record word — the unit of the Records byte account).
  [[nodiscard]] std::int64_t record_bytes() const { return record_bytes_; }

  // Records-account bookkeeping: the distributed row store is the O(N/P)
  // term of the Section-4 memory argument. Rows are charged when they
  // enter a rank's local store (initial distribution, incoming shuffle)
  // and released when they leave it (leaf closure, outgoing shuffle).
  // Same-rank parent-to-child repartitioning is net zero.
  void mem_records_alloc(mpsim::Rank r, std::int64_t n) {
    if (n > 0) machine_->alloc_bytes(r, mpsim::MemTag::Records, n * record_bytes_);
  }
  void mem_records_free(mpsim::Rank r, std::int64_t n) {
    if (n > 0) machine_->free_bytes(r, mpsim::MemTag::Records, n * record_bytes_);
  }
  void mem_records_move(mpsim::Rank from, mpsim::Rank to, std::int64_t n) {
    if (from == to || n <= 0) return;
    machine_->free_bytes(from, mpsim::MemTag::Records, n * record_bytes_);
    machine_->alloc_bytes(to, mpsim::MemTag::Records, n * record_bytes_);
  }

  /// Section-4 analytic per-rank peak prediction for this run's N, P and
  /// communication-buffer size (computed once at construction).
  [[nodiscard]] const mpsim::MemPredicted& mem_predicted() const {
    return mem_predicted_;
  }

  /// The initial frontier: the root node with rows randomly distributed
  /// over the group's members (the paper's initial N/P distribution).
  [[nodiscard]] NodeWork initial_root(const mpsim::Group& g);

  /// Whether this run has a fault plan armed on the machine (recovery
  /// wrappers fall through to the plain path when it does not, keeping
  /// fault-free clocks bit-identical).
  [[nodiscard]] bool fault_active() const {
    return machine_->fault() != nullptr;
  }

  /// Fault-tolerance accounting (checkpoints written, failures absorbed),
  /// appended to by core/recovery.cpp and copied into ParResult.
  RecoveryStats recovery;

  /// Result accounting, appended to by the formulations.
  std::int64_t records_moved = 0;
  double histogram_words = 0.0;
  int levels = 0;
  int partition_splits = 0;
  int rejoins = 0;

 private:
  const data::Dataset* ds_;
  const ParOptions* opt_;
  mpsim::Machine* machine_;
  dtree::SlotMapper mapper_;
  dtree::AttrLayout layout_;
  dtree::Tree tree_;
  double record_words_ = 0.0;
  std::int64_t record_bytes_ = 0;
  mpsim::MemPredicted mem_predicted_;

  obs::Observability* obs_ = nullptr;
  obs::PhaseProfiler* profiler_ = nullptr;
  obs::SplitAudit* split_audit_ = nullptr;
  obs::Counter* records_relocated_ = nullptr;
  obs::Counter* words_all_reduced_ = nullptr;
  obs::Counter* splits_evaluated_ = nullptr;
  obs::Histogram* frontier_nodes_ = nullptr;
  obs::Histogram* shuffle_records_ = nullptr;
};

/// Expand every node of `frontier` by one level, synchronously within
/// group `g` (Section 3.1): local histograms per member, all-reduce in
/// comm_buffer_nodes-sized flushes, identical split selection everywhere,
/// local row partitioning. Returns the next frontier (children that
/// received records). `comm_cost_out`, when non-null, accrues the
/// communication cost charged to each member this level (the quantity the
/// hybrid's split criterion accumulates).
[[nodiscard]] std::vector<NodeWork> expand_level(
    ParContext& ctx, const mpsim::Group& g, std::vector<NodeWork>& frontier,
    mpsim::Time* comm_cost_out = nullptr);

/// Total records across a frontier.
[[nodiscard]] std::int64_t frontier_records(const std::vector<NodeWork>& f);
/// Records held by member m across a frontier.
[[nodiscard]] std::int64_t frontier_member_records(
    const std::vector<NodeWork>& f, int m);

}  // namespace pdt::core
