// Experiment driver: build with any formulation, compute speedups against
// the one-processor baseline, and verify that every formulation grows the
// identical tree (the correctness invariant all experiments rest on).
#pragma once

#include <string>
#include <vector>

#include "core/hybrid_tree.hpp"
#include "core/partitioned_tree.hpp"
#include "core/sync_tree.hpp"

namespace pdt::core {

enum class Formulation { Sync, Partitioned, Hybrid };

[[nodiscard]] const char* to_string(Formulation f);

/// Dispatch to the requested formulation.
[[nodiscard]] ParResult build(Formulation f, const data::Dataset& ds,
                              const ParOptions& opt);

/// The serial baseline: the same code path on a 1-processor machine
/// (communication-free by construction), as the paper's speedup
/// denominators are the parallel code run serially.
[[nodiscard]] ParResult build_serial(const data::Dataset& ds,
                                     ParOptions opt);

struct SpeedupPoint {
  int procs = 1;
  double time_us = 0.0;   ///< simulated virtual runtime
  double speedup = 1.0;   ///< serial_time / time
  double efficiency = 1.0;
  ParResult result;
};

/// Run `f` over each processor count, with the 1-processor run as the
/// baseline. Results come back in the order of `procs`.
[[nodiscard]] std::vector<SpeedupPoint> speedup_series(
    Formulation f, const data::Dataset& ds, const ParOptions& base,
    const std::vector<int>& procs);

/// Build with every formulation at every processor count and check all
/// trees match the serial tree. Returns an empty string on success or a
/// description of the first mismatch.
[[nodiscard]] std::string verify_equivalence(const data::Dataset& ds,
                                             const ParOptions& base,
                                             const std::vector<int>& procs);

}  // namespace pdt::core
