// Options and results shared by the three parallel formulations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dtree/split.hpp"
#include "dtree/tree.hpp"
#include "mpsim/machine.hpp"
#include "mpsim/trace.hpp"

namespace pdt::obs {
class Observability;
}

namespace pdt::mpsim {
class FaultPlan;
}

namespace pdt::core {

struct ParOptions {
  int num_procs = 4;
  mpsim::CostModel cost = mpsim::CostModel::sp2();
  dtree::GrowOptions grow;
  /// Histogram communication-buffer capacity in tree nodes: processors
  /// synchronize and flush after this many frontier nodes' histograms
  /// ("after every 100 nodes for our experiments", Section 5).
  int comm_buffer_nodes = 100;
  /// Hybrid split trigger: split when the accumulated communication cost
  /// reaches `split_ratio` x (moving cost + load-balancing cost). The
  /// paper proposes 1.0 as optimal; Figure 7 sweeps this knob.
  double split_ratio = 1.0;
  /// Hybrid: let idle processor partitions rejoin busy ones.
  bool rejoin_idle = true;
  /// Hybrid: perform the intra-subcube load-balancing phase after a split.
  bool load_balance = true;
  /// Section 3.4's first strategy for continuous attributes: a parallel
  /// sorting step at every node gives exact thresholds (the tree matches
  /// dtree::grow_dfs_exact), at the price of exchanging the records'
  /// values at every level — "of similar nature as the exchange of class
  /// distribution information, except that it is of much higher volume".
  /// When false, continuous attributes use the micro-histogram slots
  /// (grow.cont_split selects threshold-scan / KMeans / quantile).
  bool exact_continuous = false;
  /// Seed of the initial random record-to-processor distribution and of
  /// the randomized node allocation during hybrid splits.
  std::uint64_t seed = 7;
  /// Record run events in the machine trace (for the tour example).
  bool trace = false;
  /// Observability sink (phase profiler + metrics registry), borrowed from
  /// the caller; nullptr disables all instrumentation (one branch per
  /// charge). Attaching it never changes simulated time — tests enforce a
  /// bit-identical max_clock either way. Use one Observability per build_*
  /// call: a reused sink keeps accumulating across runs.
  obs::Observability* obs = nullptr;
  /// Fault plan to arm on the machine (borrowed from the caller; nullptr
  /// — the default — runs fault-free with zero checkpoint cost and a
  /// bit-identical clock to builds before fault support existed). With a
  /// plan armed, every level expansion checkpoints its frontier first and
  /// failures recover via core/recovery.hpp.
  const mpsim::FaultPlan* fault = nullptr;
  /// Durable-checkpoint directory (pdt-ckpt-v1, see core/ckpt.hpp): every
  /// worklist iteration writes an on-disk epoch via obs::AtomicFile so a
  /// killed process can restart mid-tree. Empty — the default — disables
  /// durable checkpoints entirely (fault-free clocks stay bit-identical).
  /// The directory must already exist.
  std::string ckpt_dir;
  /// Newest epochs retained in ckpt_dir (older files are pruned).
  int ckpt_keep = 3;
  /// Resume from the newest valid epoch in ckpt_dir before building:
  /// corrupt/torn/truncated epochs are skipped back, never trusted. When
  /// no valid epoch exists the build starts from scratch.
  bool resume = false;
  /// Resume from the newest valid epoch <= this bound (-1: latest). Lets
  /// tests resume a completed run from an intermediate cut.
  int resume_epoch = -1;
  /// Crash-restart test hook: terminate the process (std::_Exit(137), a
  /// SIGKILL stand-in that skips every exit handler) immediately after
  /// the checkpoint of this epoch commits. -1 disables.
  int ckpt_crash_epoch = -1;
};

/// Fault-tolerance accounting for one build: checkpoint volume/cost and
/// the detection + recovery overhead of every absorbed failure. All
/// virtual-time figures, deterministic for a fixed plan.
struct RecoveryStats {
  int checkpoints = 0;           ///< level checkpoints written
  int failures = 0;              ///< fail-stops detected and recovered
  std::int64_t checkpoint_bytes = 0;  ///< record bytes written to stable store
  mpsim::Time checkpoint_io_us = 0.0; ///< summed per-member checkpoint I/O
  mpsim::Time detect_us = 0.0;        ///< timeout time charged to survivors
  mpsim::Time recovery_us = 0.0;      ///< restore + redistribute wall time
  std::int64_t records_redistributed = 0;  ///< dead ranks' shards re-spread

  // Durable (on-disk pdt-ckpt-v1) checkpointing and crash-restart resume.
  int durable_checkpoints = 0;        ///< epochs committed to ckpt_dir
  std::int64_t durable_bytes = 0;     ///< bytes of committed epoch files
  mpsim::Time durable_io_us = 0.0;    ///< virtual I/O charged for the writes
  bool resumed = false;               ///< this run restarted from disk
  int resume_epoch = -1;              ///< epoch the run resumed from
  int resume_skipped = 0;             ///< invalid epochs rejected on resume
  mpsim::Time resume_io_us = 0.0;     ///< virtual I/O charged for the restore
  std::int64_t resume_records = 0;    ///< records re-read at resume

  // Transient-fault retry accounting (mirrors the machine's counters).
  std::uint64_t retries = 0;          ///< failed collective attempts retried
  mpsim::Time retry_us = 0.0;         ///< backoff windows charged, summed
  int escalations = 0;                ///< retry budgets exhausted -> fail-stop

  [[nodiscard]] bool any() const {
    return checkpoints > 0 || failures > 0 || durable_checkpoints > 0 ||
           resumed || retries > 0;
  }
};

struct ParResult {
  dtree::Tree tree;
  /// Completion time: max virtual clock over processors (microseconds).
  mpsim::Time parallel_time = 0.0;
  mpsim::RankStats totals;
  std::vector<mpsim::RankStats> per_rank;
  int levels = 0;
  int partition_splits = 0;
  int rejoins = 0;
  /// Records that crossed processors (moving + load-balance + shuffles).
  std::int64_t records_moved = 0;
  /// Total histogram words all-reduced.
  double histogram_words = 0.0;
  /// Per-rank virtual-memory accounts at run end (live/peak bytes per
  /// MemTag). Always populated — byte accounting runs with or without an
  /// observability sink, since it never touches the clocks.
  std::vector<mpsim::MemStats> mem;
  /// Section-4 analytic per-rank peak prediction for this run's N, P and
  /// buffer size (zeroed when the formulation has no closed-form bound).
  mpsim::MemPredicted mem_predicted;
  /// Event log of the run (populated when ParOptions::trace is set).
  std::vector<mpsim::TraceEvent> trace;
  /// Fault-tolerance accounting (all zeros when no plan was armed).
  RecoveryStats recovery;
};

}  // namespace pdt::core
