// Partitioned Tree Construction (Section 3.2).
//
// Processor groups recursively hand off subtrees: a group cooperatively
// expands its frontier, then splits into parts — one per successor node
// when nodes are scarce (Case 2, processors allocated proportionally to
// records), or one per processor when nodes are plentiful (Case 1, nodes
// packed into per-processor groups) — shuffling the training records so
// every part owns exactly the data of its nodes. Once a single processor
// owns a subtree it proceeds serially with zero communication; the price
// is heavy data movement at the top of the tree and load imbalance from
// the static by-record allocation (Figure 6's mid-field curve).
#pragma once

#include "core/frontier.hpp"

namespace pdt::core {

[[nodiscard]] ParResult build_partitioned(const data::Dataset& ds,
                                          const ParOptions& opt);

}  // namespace pdt::core
