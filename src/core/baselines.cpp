#include "core/baselines.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/sync_tree.hpp"
#include "dtree/histogram.hpp"

namespace pdt::core {

namespace {

std::vector<data::RowId> all_rows(const data::Dataset& ds) {
  std::vector<data::RowId> rows(ds.num_rows());
  std::iota(rows.begin(), rows.end(), data::RowId{0});
  return rows;
}

}  // namespace

ParResult build_vertical(const data::Dataset& ds, const ParOptions& opt) {
  mpsim::Machine machine(opt.num_procs, opt.cost);
  ParContext ctx(ds, opt, machine);
  const mpsim::Group all = mpsim::Group::whole(machine);
  const mpsim::CostModel& cm = machine.cost();
  const dtree::AttrLayout& layout = ctx.layout();
  const dtree::SlotMapper& mapper = ctx.mapper();
  const int p = opt.num_procs;
  const int num_attrs = layout.num_attributes();

  // Attribute ownership, round-robin; processors beyond A_d stay idle —
  // the scheme's structural scaling limit.
  const auto owner = [&](int attr) { return attr % p; };
  // Per-rank words of one record restricted to the rank's columns.
  std::vector<double> rank_record_words(static_cast<std::size_t>(p), 1.0);
  for (int a = 0; a < num_attrs; ++a) {
    rank_record_words[static_cast<std::size_t>(owner(a))] +=
        ds.schema().attr(a).is_continuous() ? 2.0 : 1.0;
  }

  dtree::Tree& tree = ctx.tree();
  struct FrontierNode {
    int id;
    std::vector<data::RowId> rows;
  };
  std::vector<FrontierNode> frontier;
  frontier.push_back({tree.root(), all_rows(ds)});

  dtree::Hist hist(static_cast<std::size_t>(layout.total()));
  const int buffer_nodes = std::max(1, opt.comm_buffer_nodes);
  while (!frontier.empty()) {
    ++ctx.levels;
    std::vector<FrontierNode> next;
    for (std::size_t c0 = 0; c0 < frontier.size();
         c0 += static_cast<std::size_t>(buffer_nodes)) {
      const std::size_t c1 = std::min(
          frontier.size(), c0 + static_cast<std::size_t>(buffer_nodes));
      std::int64_t chunk_rows = 0;
      std::vector<const FrontierNode*> chunk;
      for (std::size_t i = c0; i < c1; ++i) {
        if (tree.node(frontier[i].id).depth >= opt.grow.max_depth) continue;
        chunk.push_back(&frontier[i]);
        chunk_rows += static_cast<std::int64_t>(frontier[i].rows.size());
      }
      if (chunk.empty()) continue;

      // Statistics: each processor scans every record, but only its own
      // attributes' columns — perfectly load balanced across <= A_d
      // processors, no record communication.
      for (int a = 0; a < num_attrs; ++a) {
        machine.charge_compute(owner(a), static_cast<double>(chunk_rows));
        machine.charge_compute(owner(a),
                               0.5 * static_cast<double>(chunk.size()) *
                                   layout.slots(a) * layout.num_classes());
      }
      for (int r = 0; r < p; ++r) {
        machine.charge_io(r, static_cast<double>(chunk_rows) *
                                 rank_record_words[static_cast<std::size_t>(r)] *
                                 cm.t_io);
      }
      // Elect the best split per node: tiny reduction of per-attribute
      // winners.
      all.charge_all_reduce(static_cast<double>(chunk.size()) * 4.0);

      for (const FrontierNode* fn : chunk) {
        std::fill(hist.begin(), hist.end(), 0);
        dtree::accumulate(hist, layout, mapper, fn->rows);
        const dtree::SplitDecision d =
            dtree::choose_split(hist, layout, ds.schema(), mapper, opt.grow);
        if (d.test.is_leaf()) continue;
        const int first = tree.expand(fn->id, d);

        // The winning attribute's owner routes every record and
        // broadcasts the assignments; the others update their views.
        machine.charge_compute(owner(d.test.attr),
                               static_cast<double>(fn->rows.size()));
        all.charge_broadcast(static_cast<double>(fn->rows.size()));
        for (int r = 0; r < p; ++r) {
          machine.charge_compute(r, 0.25 *
                                        static_cast<double>(fn->rows.size()));
        }

        std::vector<std::vector<data::RowId>> child_rows(
            static_cast<std::size_t>(d.test.num_children));
        for (const data::RowId row : fn->rows) {
          const int slot = mapper.slot(d.test.attr, row);
          child_rows[static_cast<std::size_t>(d.test.child_of_slot(slot))]
              .push_back(row);
        }
        for (int k = 0; k < d.test.num_children; ++k) {
          auto& rows = child_rows[static_cast<std::size_t>(k)];
          if (!rows.empty()) next.push_back({first + k, std::move(rows)});
        }
      }
    }
    frontier = std::move(next);
  }
  all.barrier();
  return collect_result(ctx);
}

ParResult build_host_worker(const data::Dataset& ds, const ParOptions& opt) {
  assert(opt.num_procs >= 2 && "PDT needs a host plus at least one worker");
  mpsim::Machine machine(opt.num_procs, opt.cost);
  ParContext ctx(ds, opt, machine);
  const mpsim::CostModel& cm = machine.cost();
  const dtree::AttrLayout& layout = ctx.layout();
  const dtree::SlotMapper& mapper = ctx.mapper();
  const int workers = opt.num_procs - 1;  // rank 0 is the data-less host
  const mpsim::Rank host = 0;
  const int num_attrs = layout.num_attributes();

  dtree::Tree& tree = ctx.tree();
  // Rows over workers (ranks 1..P-1).
  const data::RowPartition part =
      data::partition_random(ds.num_rows(), workers, opt.seed);
  struct FrontierNode {
    int id;
    std::vector<std::vector<data::RowId>> worker_rows;
  };
  std::vector<FrontierNode> frontier;
  {
    FrontierNode root;
    root.id = tree.root();
    root.worker_rows.assign(part.begin(), part.end());
    frontier.push_back(std::move(root));
  }

  dtree::Hist hist;
  const int entries = layout.total();
  const int buffer_nodes = std::max(1, opt.comm_buffer_nodes);
  while (!frontier.empty()) {
    ++ctx.levels;
    std::vector<FrontierNode> next;
    for (std::size_t c0 = 0; c0 < frontier.size();
         c0 += static_cast<std::size_t>(buffer_nodes)) {
      const std::size_t c1 = std::min(
          frontier.size(), c0 + static_cast<std::size_t>(buffer_nodes));
      std::vector<FrontierNode*> chunk;
      for (std::size_t i = c0; i < c1; ++i) {
        if (tree.node(frontier[i].id).depth < opt.grow.max_depth) {
          chunk.push_back(&frontier[i]);
        }
      }
      if (chunk.empty()) continue;
      hist.assign(chunk.size() * static_cast<std::size_t>(entries), 0);

      // Workers: local statistics for the chunk.
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        auto node_hist = std::span<std::int64_t>(hist).subspan(
            i * static_cast<std::size_t>(entries),
            static_cast<std::size_t>(entries));
        for (int w = 0; w < workers; ++w) {
          const auto& rows = chunk[i]->worker_rows[static_cast<std::size_t>(w)];
          if (rows.empty()) continue;
          dtree::accumulate(node_hist, layout, mapper, rows);
          machine.charge_compute(w + 1,
                                 static_cast<double>(rows.size()) * num_attrs);
          machine.charge_io(w + 1, static_cast<double>(rows.size()) *
                                       ctx.record_words() * cm.t_io);
        }
      }
      for (int w = 0; w < workers; ++w) {
        machine.charge_compute(
            w + 1, 0.5 * static_cast<double>(chunk.size()) * entries);
      }

      // The bottleneck: every worker sends its statistics to the host "at
      // roughly the same time", and the host receives them one after
      // another.
      const double words = static_cast<double>(chunk.size()) * entries;
      ctx.histogram_words += words;
      for (int w = 0; w < workers; ++w) {
        const mpsim::Time send = cm.t_s + cm.t_w * words;
        machine.charge_comm(w + 1, send, words, 0.0, 1, cm.t_s);
        machine.wait_for(host, w + 1);
        machine.charge_comm(host, send, 0.0, words, 1, cm.t_s);
      }
      // Host alone evaluates the splits.
      machine.charge_compute(host, static_cast<double>(chunk.size()) * entries);

      std::vector<dtree::SplitDecision> decisions;
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        auto node_hist = std::span<const std::int64_t>(hist).subspan(
            i * static_cast<std::size_t>(entries),
            static_cast<std::size_t>(entries));
        decisions.push_back(dtree::choose_split(node_hist, layout,
                                                ds.schema(), mapper,
                                                opt.grow));
      }
      // Host notifies every worker, again serialized at the host.
      const double dec_words = static_cast<double>(chunk.size()) * 8.0;
      for (int w = 0; w < workers; ++w) {
        const mpsim::Time send = cm.t_s + cm.t_w * dec_words;
        machine.charge_comm(host, send, dec_words, 0.0, 1, cm.t_s);
        machine.wait_for(w + 1, host);
        machine.charge_comm(w + 1, 0.0, 0.0, dec_words);
      }

      // Workers split their local rows.
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        const dtree::SplitDecision& d = decisions[i];
        if (d.test.is_leaf()) continue;
        const int first = tree.expand(chunk[i]->id, d);
        std::vector<FrontierNode> children(
            static_cast<std::size_t>(d.test.num_children));
        for (auto& ch : children) {
          ch.worker_rows.resize(static_cast<std::size_t>(workers));
        }
        for (int w = 0; w < workers; ++w) {
          auto& rows = chunk[i]->worker_rows[static_cast<std::size_t>(w)];
          if (rows.empty()) continue;
          machine.charge_compute(w + 1, static_cast<double>(rows.size()));
          for (const data::RowId row : rows) {
            const int slot = mapper.slot(d.test.attr, row);
            children[static_cast<std::size_t>(d.test.child_of_slot(slot))]
                .worker_rows[static_cast<std::size_t>(w)]
                .push_back(row);
          }
          rows.clear();
          rows.shrink_to_fit();
        }
        for (int k = 0; k < d.test.num_children; ++k) {
          auto& ch = children[static_cast<std::size_t>(k)];
          std::int64_t total = 0;
          for (const auto& rows : ch.worker_rows) {
            total += static_cast<std::int64_t>(rows.size());
          }
          if (total > 0) {
            ch.id = first + k;
            next.push_back(std::move(ch));
          }
        }
      }
    }
    frontier = std::move(next);
  }
  mpsim::Group::whole(machine).barrier();
  return collect_result(ctx);
}

}  // namespace pdt::core
