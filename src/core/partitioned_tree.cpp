#include "core/partitioned_tree.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/ckpt.hpp"
#include "core/recovery.hpp"
#include "core/sync_tree.hpp"

namespace pdt::core {

namespace {

struct Partition {
  mpsim::Group group;
  std::vector<NodeWork> frontier;
};

/// Case 1: pack `children` into exactly `parts` node groups with roughly
/// equal record totals (LPT). Returns part id per child.
std::vector<int> pack_nodes_lpt(const std::vector<NodeWork>& children,
                                int parts) {
  std::vector<std::size_t> order(children.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return children[a].total_records() >
                            children[b].total_records();
                   });
  std::vector<std::int64_t> load(static_cast<std::size_t>(parts), 0);
  std::vector<int> part_of(children.size(), 0);
  for (const std::size_t j : order) {
    const int lightest = static_cast<int>(
        std::min_element(load.begin(), load.end()) - load.begin());
    part_of[j] = lightest;
    load[static_cast<std::size_t>(lightest)] += children[j].total_records();
  }
  return part_of;
}

/// Case 2: allocate `p` processors over `k` nodes proportionally to their
/// record counts, each node getting at least one (largest remainder).
std::vector<int> allocate_procs(const std::vector<NodeWork>& children, int p) {
  const int k = static_cast<int>(children.size());
  assert(k >= 1 && k <= p);
  std::int64_t total = 0;
  for (const auto& c : children) total += c.total_records();
  std::vector<int> sizes(static_cast<std::size_t>(k), 1);
  int assigned = k;
  std::vector<double> frac(static_cast<std::size_t>(k), 0.0);
  for (int j = 0; j < k; ++j) {
    const double ideal =
        total > 0 ? static_cast<double>(p) *
                        static_cast<double>(children[static_cast<std::size_t>(j)]
                                                .total_records()) /
                        static_cast<double>(total)
                  : static_cast<double>(p) / k;
    const int extra = std::max(0, static_cast<int>(ideal) - 1);
    sizes[static_cast<std::size_t>(j)] += extra;
    assigned += extra;
    frac[static_cast<std::size_t>(j)] = ideal - static_cast<double>(extra + 1);
  }
  while (assigned < p) {
    const int j = static_cast<int>(
        std::max_element(frac.begin(), frac.end()) - frac.begin());
    ++sizes[static_cast<std::size_t>(j)];
    frac[static_cast<std::size_t>(j)] -= 1.0;
    ++assigned;
  }
  while (assigned > p) {
    // Over-allocation can only come from the +1 floors; shrink the largest.
    const int j = static_cast<int>(
        std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
    assert(sizes[static_cast<std::size_t>(j)] > 1);
    --sizes[static_cast<std::size_t>(j)];
    --assigned;
  }
  return sizes;
}

/// Move records so that each part owns exactly its children's rows, spread
/// evenly over the part's members. Physically rebuilds the NodeWork row
/// lists (indexed by part-local member) and charges the all-to-all.
/// `part_of[j]` names the part of child j; `part_members[q]` lists group
/// member indices of part q.
std::vector<std::vector<NodeWork>> shuffle_to_parts(
    ParContext& ctx, const mpsim::Group& g, std::vector<NodeWork>& children,
    const std::vector<int>& part_of,
    const std::vector<std::vector<int>>& part_members) {
  const obs::PhaseScope phase(ctx.profiler(), "record-shuffle");
  const std::int64_t moved_before = ctx.records_moved;
  const int p = g.size();
  std::vector<std::vector<double>> words(
      static_cast<std::size_t>(p),
      std::vector<double>(static_cast<std::size_t>(p), 0.0));
  // Records that change ranks here leave the origin's local store and
  // enter the destination's (batched per ordered pair).
  std::vector<std::vector<std::int64_t>> moved_counts(
      static_cast<std::size_t>(p),
      std::vector<std::int64_t>(static_cast<std::size_t>(p), 0));
  std::vector<std::vector<NodeWork>> out(part_members.size());

  for (std::size_t j = 0; j < children.size(); ++j) {
    NodeWork& child = children[j];
    const auto& members = part_members[static_cast<std::size_t>(part_of[j])];
    const int q = static_cast<int>(members.size());
    const std::int64_t total = child.total_records();
    NodeWork moved;
    moved.node_id = child.node_id;
    moved.local_rows.resize(static_cast<std::size_t>(q));

    // Fair-share targets over the part's members.
    std::vector<std::int64_t> target(static_cast<std::size_t>(q));
    for (int m = 0; m < q; ++m) {
      target[static_cast<std::size_t>(m)] =
          total / q + (m < static_cast<int>(total % q) ? 1 : 0);
    }
    // Members of the part keep their own rows up to their target.
    std::vector<data::RowId> surplus;
    std::vector<int> surplus_origin;  // group member each surplus row is on
    for (int gm = 0; gm < p; ++gm) {
      auto& rows = child.local_rows[static_cast<std::size_t>(gm)];
      if (rows.empty()) continue;
      const auto it = std::find(members.begin(), members.end(), gm);
      if (it != members.end()) {
        const int lm = static_cast<int>(it - members.begin());
        const std::size_t keep = static_cast<std::size_t>(
            std::min<std::int64_t>(static_cast<std::int64_t>(rows.size()),
                                   target[static_cast<std::size_t>(lm)]));
        auto& dst = moved.local_rows[static_cast<std::size_t>(lm)];
        dst.assign(rows.begin(), rows.begin() + static_cast<std::ptrdiff_t>(keep));
        for (std::size_t i = keep; i < rows.size(); ++i) {
          surplus.push_back(rows[i]);
          surplus_origin.push_back(gm);
        }
      } else {
        for (const data::RowId row : rows) {
          surplus.push_back(row);
          surplus_origin.push_back(gm);
        }
      }
      rows.clear();
      rows.shrink_to_fit();
    }
    // Fill deficits in member order.
    std::size_t s = 0;
    for (int lm = 0; lm < q && s < surplus.size(); ++lm) {
      auto& dst = moved.local_rows[static_cast<std::size_t>(lm)];
      while (static_cast<std::int64_t>(dst.size()) <
                 target[static_cast<std::size_t>(lm)] &&
             s < surplus.size()) {
        dst.push_back(surplus[s]);
        const int from = surplus_origin[s];
        const int to = members[static_cast<std::size_t>(lm)];
        if (from != to) {
          words[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)] +=
              ctx.record_words();
          ++moved_counts[static_cast<std::size_t>(from)]
                        [static_cast<std::size_t>(to)];
          ++ctx.records_moved;
        }
        ++s;
      }
    }
    assert(s == surplus.size());
    out[static_cast<std::size_t>(part_of[j])].push_back(std::move(moved));
  }

  for (int from = 0; from < p; ++from) {
    for (int to = 0; to < p; ++to) {
      ctx.mem_records_move(g.rank(from), g.rank(to),
                           moved_counts[static_cast<std::size_t>(from)]
                                       [static_cast<std::size_t>(to)]);
    }
  }
  g.all_to_all_personalized(words);
  ctx.count_records_relocated(ctx.records_moved - moved_before);
  ctx.observe_shuffle_records(ctx.records_moved - moved_before);
  return out;
}

}  // namespace

ParResult build_partitioned(const data::Dataset& ds, const ParOptions& opt) {
  mpsim::Machine machine(opt.num_procs, opt.cost);
  ParContext ctx(ds, opt, machine);

  DurableCheckpointer ckpt(ctx, "partitioned");
  std::vector<Partition> work;
  RunSnapshot snap;
  if (resume_from_checkpoint(ctx, "partitioned", &snap)) {
    // The worklist was saved in vector order, so rebuilding it in the
    // same order preserves the LIFO pop sequence across the restart.
    for (CkptPart& p : snap.parts) {
      work.push_back(Partition{mpsim::Group(machine, std::move(p.ranks)),
                               std::move(p.frontier)});
    }
  } else {
    mpsim::Group all = mpsim::Group::whole(machine);
    std::vector<NodeWork> frontier;
    frontier.push_back(ctx.initial_root(all));
    work.push_back(Partition{std::move(all), std::move(frontier)});
  }

  while (!work.empty()) {
    if (ckpt.enabled()) {
      std::vector<CkptPart> parts;
      parts.reserve(work.size());
      for (const Partition& p : work) {
        parts.push_back(CkptPart{p.group.ranks(), 0.0, p.frontier});
      }
      ckpt.save(std::move(parts));
    }
    Partition part = std::move(work.back());
    work.pop_back();

    if (part.group.size() == 1) {
      // A lone processor develops its subtrees with the serial
      // algorithm — one level per worklist turn (the partition is
      // re-pushed and, being LIFO, popped right back), so a durable
      // epoch can land between any two levels of the serial phase too.
      part.frontier = expand_level_ft(ctx, part.group, part.frontier);
      if (!part.frontier.empty()) work.push_back(std::move(part));
      continue;
    }

    std::vector<NodeWork> children =
        expand_level_ft(ctx, part.group, part.frontier);
    if (children.empty()) continue;

    const int p = part.group.size();
    std::vector<int> part_of;
    std::vector<std::vector<int>> part_members;
    if (static_cast<int>(children.size()) >= p) {
      // Case 1: one node group per processor.
      part_of = pack_nodes_lpt(children, p);
      part_members.resize(static_cast<std::size_t>(p));
      for (int m = 0; m < p; ++m) {
        part_members[static_cast<std::size_t>(m)] = {m};
      }
    } else {
      // Case 2: processor subsets proportional to node record counts,
      // assigned as contiguous member ranges (Figure 3).
      const std::vector<int> sizes =
          allocate_procs(children, p);
      part_of.resize(children.size());
      int next_member = 0;
      for (std::size_t j = 0; j < children.size(); ++j) {
        part_of[j] = static_cast<int>(j);
        std::vector<int> members;
        for (int t = 0; t < sizes[j]; ++t) members.push_back(next_member++);
        part_members.push_back(std::move(members));
      }
      assert(next_member == p);
    }
    ++ctx.partition_splits;

    std::vector<std::vector<NodeWork>> shuffled =
        shuffle_to_parts(ctx, part.group, children, part_of, part_members);
    for (std::size_t q = 0; q < part_members.size(); ++q) {
      if (shuffled[q].empty()) continue;
      std::vector<mpsim::Rank> ranks;
      for (const int m : part_members[q]) {
        ranks.push_back(part.group.rank(m));
      }
      work.push_back(Partition{mpsim::Group(machine, std::move(ranks)),
                               std::move(shuffled[q])});
    }
  }

  ctx.levels = ctx.tree().depth();
  return collect_result(ctx);
}

}  // namespace pdt::core
