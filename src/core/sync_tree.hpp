// Synchronous Tree Construction (Section 3.1).
//
// All processors grow one shared decision tree level by level: each holds
// N/P records, computes local class-distribution histograms for every
// frontier node, and participates in a global reduction after every
// comm_buffer_nodes histograms. No training record ever moves — the
// approach's advantage — but communication volume grows with the frontier
// and per-node work shrinks, so deep bushy trees drown in communication
// and barrier idling (the behaviour Figure 6 shows for P >= 4).
#pragma once

#include "core/frontier.hpp"

namespace pdt::core {

[[nodiscard]] ParResult build_sync(const data::Dataset& ds,
                                   const ParOptions& opt);

/// Shared result assembly (used by all formulations).
[[nodiscard]] ParResult collect_result(ParContext& ctx);

}  // namespace pdt::core
