#include "core/ckpt.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dtree/serialize.hpp"
#include "dtree/sha256.hpp"
#include "obs/atomic_file.hpp"
#include "obs/fingerprint.hpp"

namespace pdt::core {

namespace {

namespace fs = std::filesystem;

/// Exact round-trip double rendering (C99 %a hexfloat): strtod restores
/// the identical bit pattern, which counters like histogram_words need —
/// a resumed run must finish with the same accounting as an
/// uninterrupted one, not one ulp off.
std::string double_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Read one whitespace-delimited token and strtod it (istream's >> does
/// not accept hexfloat). False when the token is missing or malformed.
bool read_double(std::istream& in, double* v) {
  std::string tok;
  if (!(in >> tok) || tok.empty()) return false;
  char* end = nullptr;
  *v = std::strtod(tok.c_str(), &end);
  return end == tok.c_str() + tok.size();
}

/// Expect the literal keyword `key` as the next token.
bool expect_key(std::istream& in, const char* key) {
  std::string tok;
  return (in >> tok) && tok == key;
}

// ---------------------------------------------------------------- meta --

std::string meta_text(const RunSnapshot& s) {
  std::ostringstream os;
  os << "formulation " << s.formulation << "\n"
     << "num_procs " << s.num_procs << "\n"
     << "seed " << s.seed << "\n"
     << "levels " << s.levels << "\n"
     << "partition_splits " << s.partition_splits << "\n"
     << "rejoins " << s.rejoins << "\n"
     << "records_moved " << s.records_moved << "\n"
     << "histogram_words " << double_exact(s.histogram_words) << "\n"
     << "record_words " << double_exact(s.record_words) << "\n"
     << "cost " << double_exact(s.cost.t_s) << " " << double_exact(s.cost.t_w)
     << " " << double_exact(s.cost.t_c) << " " << double_exact(s.cost.t_io)
     << " " << double_exact(s.cost.t_timeout) << "\n"
     << "fingerprint " << s.fingerprint << "\n"
     << "tree_digest " << s.tree_digest << "\n";
  return os.str();
}

std::string parse_meta(const std::string& text, RunSnapshot* out) {
  std::istringstream in(text);
  if (!expect_key(in, "formulation") || !(in >> out->formulation)) {
    return "meta: bad formulation";
  }
  if (!expect_key(in, "num_procs") || !(in >> out->num_procs) ||
      out->num_procs < 1) {
    return "meta: bad num_procs";
  }
  if (!expect_key(in, "seed") || !(in >> out->seed)) return "meta: bad seed";
  if (!expect_key(in, "levels") || !(in >> out->levels) || out->levels < 0) {
    return "meta: bad levels";
  }
  if (!expect_key(in, "partition_splits") || !(in >> out->partition_splits)) {
    return "meta: bad partition_splits";
  }
  if (!expect_key(in, "rejoins") || !(in >> out->rejoins)) {
    return "meta: bad rejoins";
  }
  if (!expect_key(in, "records_moved") || !(in >> out->records_moved)) {
    return "meta: bad records_moved";
  }
  if (!expect_key(in, "histogram_words") ||
      !read_double(in, &out->histogram_words)) {
    return "meta: bad histogram_words";
  }
  if (!expect_key(in, "record_words") || !read_double(in, &out->record_words)) {
    return "meta: bad record_words";
  }
  if (!expect_key(in, "cost") || !read_double(in, &out->cost.t_s) ||
      !read_double(in, &out->cost.t_w) || !read_double(in, &out->cost.t_c) ||
      !read_double(in, &out->cost.t_io) ||
      !read_double(in, &out->cost.t_timeout)) {
    return "meta: bad cost constants";
  }
  {
    std::string key;
    if (!(in >> key) || key != "fingerprint") return "meta: bad fingerprint";
    std::getline(in, out->fingerprint);
    if (!out->fingerprint.empty() && out->fingerprint.front() == ' ') {
      out->fingerprint.erase(0, 1);
    }
  }
  if (!expect_key(in, "tree_digest") || !(in >> out->tree_digest) ||
      out->tree_digest.size() != 64) {
    return "meta: bad tree_digest";
  }
  return "";
}

// --------------------------------------------------------------- state --

std::string state_text(const RunSnapshot& s) {
  std::ostringstream os;
  os << "parts " << s.parts.size() << "\n";
  for (std::size_t k = 0; k < s.parts.size(); ++k) {
    const CkptPart& p = s.parts[k];
    os << "part " << k << " acc_comm " << double_exact(p.acc_comm) << " ranks "
       << p.ranks.size();
    for (const mpsim::Rank r : p.ranks) os << " " << r;
    os << "\n"
       << "nodes " << p.frontier.size() << "\n";
    for (const NodeWork& nw : p.frontier) {
      os << "node " << nw.node_id << " " << nw.local_rows.size() << "\n";
      for (const auto& rows : nw.local_rows) {
        os << "rows " << rows.size();
        for (const data::RowId row : rows) os << " " << row;
        os << "\n";
      }
    }
  }
  os << "idle " << s.idle.size() << "\n";
  for (const auto& g : s.idle) {
    os << "igroup " << g.size();
    for (const mpsim::Rank r : g) os << " " << r;
    os << "\n";
  }
  os << "mem " << s.mem.size() << "\n";
  for (std::size_t r = 0; r < s.mem.size(); ++r) {
    const mpsim::MemStats& m = s.mem[r];
    os << "rank " << r << " live";
    for (const std::int64_t b : m.live) os << " " << b;
    os << " " << m.live_total << " peak";
    for (const std::int64_t b : m.peak) os << " " << b;
    os << " " << m.peak_total << "\n";
  }
  return os.str();
}

std::string parse_state(const std::string& text, RunSnapshot* out) {
  std::istringstream in(text);
  const int P = out->num_procs;
  const auto rank_ok = [P](mpsim::Rank r) { return r >= 0 && r < P; };

  std::size_t nparts = 0;
  if (!expect_key(in, "parts") || !(in >> nparts)) return "state: bad parts";
  out->parts.resize(nparts);
  for (std::size_t k = 0; k < nparts; ++k) {
    CkptPart& p = out->parts[k];
    std::size_t idx = 0, nranks = 0;
    if (!expect_key(in, "part") || !(in >> idx) || idx != k ||
        !expect_key(in, "acc_comm") || !read_double(in, &p.acc_comm) ||
        !expect_key(in, "ranks") || !(in >> nranks) || nranks == 0 ||
        nranks > static_cast<std::size_t>(P)) {
      return "state: bad part header";
    }
    p.ranks.resize(nranks);
    for (mpsim::Rank& r : p.ranks) {
      if (!(in >> r) || !rank_ok(r)) return "state: bad part rank";
    }
    std::size_t nnodes = 0;
    if (!expect_key(in, "nodes") || !(in >> nnodes)) {
      return "state: bad node count";
    }
    p.frontier.resize(nnodes);
    for (NodeWork& nw : p.frontier) {
      std::size_t nmembers = 0;
      if (!expect_key(in, "node") || !(in >> nw.node_id) || nw.node_id < 0 ||
          !(in >> nmembers) || nmembers != nranks) {
        return "state: bad node header";
      }
      nw.local_rows.resize(nmembers);
      for (auto& rows : nw.local_rows) {
        std::size_t count = 0;
        if (!expect_key(in, "rows") || !(in >> count)) {
          return "state: bad row count";
        }
        rows.resize(count);
        for (data::RowId& row : rows) {
          if (!(in >> row)) return "state: bad row id";
        }
      }
    }
  }

  std::size_t nidle = 0;
  if (!expect_key(in, "idle") || !(in >> nidle)) return "state: bad idle";
  out->idle.resize(nidle);
  for (auto& g : out->idle) {
    std::size_t n = 0;
    if (!expect_key(in, "igroup") || !(in >> n) || n == 0 ||
        n > static_cast<std::size_t>(P)) {
      return "state: bad idle group";
    }
    g.resize(n);
    for (mpsim::Rank& r : g) {
      if (!(in >> r) || !rank_ok(r)) return "state: bad idle rank";
    }
  }

  std::size_t nmem = 0;
  if (!expect_key(in, "mem") || !(in >> nmem) ||
      nmem != static_cast<std::size_t>(P)) {
    return "state: bad mem count";
  }
  out->mem.resize(nmem);
  for (std::size_t r = 0; r < nmem; ++r) {
    mpsim::MemStats& m = out->mem[r];
    std::size_t idx = 0;
    if (!expect_key(in, "rank") || !(in >> idx) || idx != r ||
        !expect_key(in, "live")) {
      return "state: bad mem rank";
    }
    for (std::int64_t& b : m.live) {
      if (!(in >> b)) return "state: bad mem live";
    }
    if (!(in >> m.live_total) || !expect_key(in, "peak")) {
      return "state: bad mem live total";
    }
    for (std::int64_t& b : m.peak) {
      if (!(in >> b)) return "state: bad mem peak";
    }
    if (!(in >> m.peak_total)) return "state: bad mem peak total";
  }
  std::string extra;
  if (in >> extra) return "state: trailing tokens";
  return "";
}

// ------------------------------------------------------------- framing --

void append_section(std::string& out, const char* name,
                    const std::string& payload) {
  out += "section ";
  out += name;
  out += " " + std::to_string(payload.size()) + " " +
         dtree::sha256_hex(payload) + "\n";
  out += payload;
  out += "\n";
}

/// Pull the next '\n'-terminated line off `rest`.
bool take_line(std::string_view& rest, std::string_view* line) {
  const std::size_t nl = rest.find('\n');
  if (nl == std::string_view::npos) return false;
  *line = rest.substr(0, nl);
  rest.remove_prefix(nl + 1);
  return true;
}

/// Parse `section <name> <bytes> <sha>` + payload + '\n' off `rest`,
/// verifying the framing and the payload digest.
std::string take_section(std::string_view& rest, const char* name,
                         std::string* payload) {
  std::string_view line;
  if (!take_line(rest, &line)) {
    return std::string("truncated before section ") + name;
  }
  std::istringstream hdr{std::string(line)};
  std::string tag, got;
  std::size_t nbytes = 0;
  std::string sha;
  if (!(hdr >> tag >> got >> nbytes >> sha) || tag != "section" ||
      got != name || sha.size() != 64) {
    return std::string("bad section header for ") + name;
  }
  if (rest.size() < nbytes + 1 || rest[nbytes] != '\n') {
    return std::string("section ") + name + " truncated";
  }
  *payload = std::string(rest.substr(0, nbytes));
  rest.remove_prefix(nbytes + 1);
  if (dtree::sha256_hex(*payload) != sha) {
    return std::string("section ") + name + " digest mismatch";
  }
  return "";
}

/// `epoch_path` file-name part, shared by writer and globber.
std::string epoch_file(int epoch) {
  return "ckpt-" + std::to_string(epoch) + ".pdt";
}

}  // namespace

std::string ckpt_text(const RunSnapshot& snap) {
  std::string out = "pdt-ckpt-v1\n";
  out += "epoch " + std::to_string(snap.epoch) + "\n";
  out += "sections 3\n";
  append_section(out, "meta", meta_text(snap));
  append_section(out, "tree", snap.tree_json);
  append_section(out, "state", state_text(snap));
  return out;
}

std::string parse_ckpt(std::string_view text, RunSnapshot* out) {
  *out = RunSnapshot{};
  std::string_view rest = text;
  std::string_view line;
  if (!take_line(rest, &line) || line != "pdt-ckpt-v1") {
    return "not a pdt-ckpt-v1 file";
  }
  if (!take_line(rest, &line) || line.substr(0, 6) != "epoch ") {
    return "missing epoch line";
  }
  {
    std::istringstream in{std::string(line.substr(6))};
    if (!(in >> out->epoch) || out->epoch < 0) return "bad epoch number";
  }
  if (!take_line(rest, &line) || line != "sections 3") {
    return "missing sections line";
  }

  std::string meta, tree, state;
  std::string err = take_section(rest, "meta", &meta);
  if (err.empty()) err = take_section(rest, "tree", &tree);
  if (err.empty()) err = take_section(rest, "state", &state);
  if (!err.empty()) return err;
  if (!rest.empty()) return "trailing bytes after state section";

  err = parse_meta(meta, out);
  if (!err.empty()) return err;
  out->tree_json = std::move(tree);
  // The meta's digest must name the tree payload — the cross-check that
  // binds the sections of one epoch together.
  if (dtree::sha256_hex(out->tree_json) != out->tree_digest) {
    return "tree section does not match meta tree_digest";
  }
  return parse_state(state, out);
}

// ------------------------------------------------------ CheckpointStore --

CheckpointStore::CheckpointStore(std::string dir, int keep)
    : dir_(std::move(dir)), keep_(std::max(1, keep)) {}

std::string CheckpointStore::epoch_path(int epoch) const {
  return dir_ + "/" + epoch_file(epoch);
}

std::vector<int> CheckpointStore::list_epochs() const {
  std::vector<int> epochs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 10 || name.compare(0, 5, "ckpt-") != 0 ||
        name.compare(name.size() - 4, 4, ".pdt") != 0) {
      continue;
    }
    const std::string num = name.substr(5, name.size() - 9);
    if (num.empty() ||
        num.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    epochs.push_back(std::atoi(num.c_str()));
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

int CheckpointStore::latest_epoch() const {
  const std::vector<int> epochs = list_epochs();
  return epochs.empty() ? -1 : epochs.back();
}

bool CheckpointStore::save(const RunSnapshot& snap, std::int64_t* bytes_out) {
  const std::string text = ckpt_text(snap);
  {
    obs::AtomicFile f(epoch_path(snap.epoch));
    if (!f.ok()) return false;
    f.stream().write(text.data(), static_cast<std::streamsize>(text.size()));
    if (!f.commit()) return false;
  }
  {
    // Best effort: the manifest is a convenience pointer, not the source
    // of truth — load_latest globs and validates the epoch files.
    obs::AtomicFile mf(dir_ + "/MANIFEST");
    if (mf.ok()) {
      mf.stream() << "pdt-ckpt-manifest-v1\n"
                  << "latest " << snap.epoch << "\n"
                  << "file " << epoch_file(snap.epoch) << "\n";
      (void)mf.commit();
    }
  }
  const std::vector<int> epochs = list_epochs();
  if (static_cast<int>(epochs.size()) > keep_) {
    for (std::size_t i = 0; i + static_cast<std::size_t>(keep_) < epochs.size();
         ++i) {
      std::error_code ec;
      fs::remove(epoch_path(epochs[i]), ec);
    }
  }
  if (bytes_out != nullptr) {
    *bytes_out = static_cast<std::int64_t>(text.size());
  }
  return true;
}

int CheckpointStore::load_latest(RunSnapshot* out, int max_epoch, int* skipped,
                                 std::string* error) const {
  const std::vector<int> epochs = list_epochs();
  int skip = 0;
  std::string first_err;
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    const int e = *it;
    if (max_epoch >= 0 && e > max_epoch) continue;  // bounded resume
    std::string err;
    std::ifstream in(epoch_path(e), std::ios::binary);
    if (!in) {
      err = "cannot open";
    } else {
      std::ostringstream buf;
      buf << in.rdbuf();
      RunSnapshot snap;
      err = parse_ckpt(buf.str(), &snap);
      if (err.empty() && snap.epoch != e) {
        err = "epoch field disagrees with file name";
      }
      if (err.empty()) *out = std::move(snap);
    }
    if (!err.empty()) {
      ++skip;
      if (first_err.empty()) first_err = epoch_file(e) + ": " + err;
      continue;
    }
    if (skipped != nullptr) *skipped = skip;
    if (error != nullptr) *error = first_err;
    return e;
  }
  if (skipped != nullptr) *skipped = skip;
  if (error != nullptr) {
    *error = first_err.empty() ? "no checkpoint epochs found" : first_err;
  }
  return -1;
}

// --------------------------------------------------- DurableCheckpointer --

DurableCheckpointer::DurableCheckpointer(ParContext& ctx,
                                         std::string formulation)
    : ctx_(&ctx),
      formulation_(std::move(formulation)),
      store_(ctx.options().ckpt_dir, ctx.options().ckpt_keep) {
  if (enabled()) epoch_ = store_.latest_epoch() + 1;
}

void DurableCheckpointer::save(std::vector<CkptPart> parts,
                               std::vector<std::vector<mpsim::Rank>> idle) {
  if (!enabled()) return;
  const obs::PhaseScope phase(ctx_->profiler(), "checkpoint");
  mpsim::Machine& machine = ctx_->machine();
  const mpsim::CostModel& cm = machine.cost();
  const dtree::Tree& tree = ctx_->tree();

  // Frontier node ids are arena ids mid-run; on disk they are canonical
  // (the ids the resumed, freshly replayed tree will carry).
  const std::vector<int> order = dtree::canonical_order(tree);
  std::vector<int> canon_of(static_cast<std::size_t>(tree.num_nodes()), -1);
  for (std::size_t k = 0; k < order.size(); ++k) {
    canon_of[static_cast<std::size_t>(order[k])] = static_cast<int>(k);
  }
  for (CkptPart& p : parts) {
    for (NodeWork& nw : p.frontier) {
      const int c = canon_of[static_cast<std::size_t>(nw.node_id)];
      assert(c >= 0);  // frontier nodes are reachable by construction
      nw.node_id = c;
    }
  }

  RunSnapshot snap;
  snap.formulation = formulation_;
  snap.epoch = epoch_;
  snap.num_procs = ctx_->options().num_procs;
  snap.seed = ctx_->options().seed;
  snap.levels = ctx_->levels;
  snap.partition_splits = ctx_->partition_splits;
  snap.rejoins = ctx_->rejoins;
  snap.records_moved = ctx_->records_moved;
  snap.histogram_words = ctx_->histogram_words;
  snap.record_words = ctx_->record_words();
  snap.cost = cm;
  {
    const obs::EnvFingerprint fp = obs::EnvFingerprint::collect();
    snap.fingerprint = fp.compiler + " | " + fp.git_sha +
                       (fp.git_dirty ? "+dirty" : "") + " | " + fp.hostname;
  }
  snap.tree_json = dtree::canonical_nodes_json(tree);
  snap.tree_digest = dtree::sha256_hex(snap.tree_json);
  snap.parts = std::move(parts);
  snap.idle = std::move(idle);

  // Each rank serializes its frontier shard to stable storage through a
  // staging buffer at t_io per record word — the same charge the
  // in-memory take_checkpoint makes, so durable and in-memory
  // checkpoints are comparable in the cost breakdowns. No barrier: the
  // single-threaded simulation makes the cut consistent for free, and a
  // global sync would serialize the hybrid's asynchronous partitions.
  std::vector<std::int64_t> owned(static_cast<std::size_t>(machine.size()), 0);
  for (const CkptPart& p : snap.parts) {
    for (std::size_t m = 0; m < p.ranks.size(); ++m) {
      for (const NodeWork& nw : p.frontier) {
        owned[static_cast<std::size_t>(p.ranks[m])] +=
            static_cast<std::int64_t>(nw.local_rows[m].size());
      }
    }
  }
  mpsim::Time io_total = 0.0;
  std::int64_t records = 0;
  for (int r = 0; r < machine.size(); ++r) {
    const std::int64_t n = owned[static_cast<std::size_t>(r)];
    if (n == 0) continue;
    records += n;
    const std::int64_t staging = n * ctx_->record_bytes();
    machine.alloc_bytes(r, mpsim::MemTag::Scratch, staging);
    const mpsim::Time t = cm.t_io * static_cast<double>(n) *
                          ctx_->record_words();
    machine.charge_io(r, t);
    machine.free_bytes(r, mpsim::MemTag::Scratch, staging);
    io_total += t;
  }
  snap.mem.reserve(static_cast<std::size_t>(machine.size()));
  for (int r = 0; r < machine.size(); ++r) {
    snap.mem.push_back(machine.mem(r));
  }

  std::int64_t bytes = 0;
  if (!store_.save(snap, &bytes)) {
    throw std::runtime_error("durable checkpoint write failed: " +
                             store_.epoch_path(epoch_));
  }
  ctx_->recovery.durable_checkpoints += 1;
  ctx_->recovery.durable_bytes += bytes;
  ctx_->recovery.durable_io_us += io_total;
  if (machine.trace().enabled()) {
    machine.trace().record(
        {.time = machine.max_clock(),
         .kind = mpsim::EventKind::Checkpoint,
         .rank = snap.parts.empty() ? 0 : snap.parts.front().ranks.front(),
         .group_base = 0,
         .group_size = machine.size(),
         .words = static_cast<double>(bytes) / 4.0,
         .detail = "durable epoch " + std::to_string(epoch_) + ": " +
                   std::to_string(records) + " records, " +
                   std::to_string(bytes) + " bytes"});
  }
  if (ctx_->options().ckpt_crash_epoch == epoch_) {
    // SIGKILL stand-in for the crash-restart tests: no exit handlers, no
    // flushes — only files already committed through AtomicFile survive.
    std::_Exit(137);
  }
  ++epoch_;
}

// ------------------------------------------------ resume_from_checkpoint --

bool resume_from_checkpoint(ParContext& ctx, const std::string& formulation,
                            RunSnapshot* out) {
  const ParOptions& opt = ctx.options();
  if (!opt.resume || opt.ckpt_dir.empty()) return false;
  const obs::PhaseScope phase(ctx.profiler(), "resume");
  mpsim::Machine& machine = ctx.machine();
  const mpsim::CostModel& cm = machine.cost();

  const CheckpointStore store(opt.ckpt_dir, opt.ckpt_keep);
  int skipped = 0;
  std::string err;
  const int epoch = store.load_latest(out, opt.resume_epoch, &skipped, &err);
  ctx.recovery.resume_skipped = skipped;
  if (epoch < 0) return false;  // nothing valid on disk: cold start

  if (out->formulation != formulation) {
    throw std::runtime_error("resume: checkpoint is a " + out->formulation +
                             " run, not " + formulation);
  }
  if (out->num_procs != opt.num_procs) {
    throw std::runtime_error(
        "resume: checkpoint has P=" + std::to_string(out->num_procs) +
        ", run has P=" + std::to_string(opt.num_procs));
  }
  if (out->seed != opt.seed) {
    throw std::runtime_error("resume: checkpoint seed " +
                             std::to_string(out->seed) + " != run seed " +
                             std::to_string(opt.seed));
  }
  if (out->record_words != ctx.record_words()) {
    throw std::runtime_error(
        "resume: checkpoint record width does not match this dataset");
  }

  // Rebuild the tree by replaying expand() over the canonical nodes; the
  // replayed arena ids equal the canonical ids, so the checkpointed
  // frontier node ids are directly valid. The split observer (model
  // audit) is detached during the replay — these are not new decisions.
  std::vector<dtree::NodeSpec> nodes;
  err = dtree::parse_canonical_nodes(out->tree_json, &nodes);
  if (err.empty()) {
    dtree::Tree rebuilt;
    err = dtree::tree_from_nodes(nodes, &rebuilt);
    if (err.empty()) {
      dtree::SplitObserver* observer = ctx.tree().split_observer();
      ctx.tree() = std::move(rebuilt);
      ctx.tree().set_split_observer(observer);
    }
  }
  if (!err.empty()) {
    throw std::runtime_error("resume: epoch " + std::to_string(epoch) +
                             " tree rejected: " + err);
  }
  for (const CkptPart& p : out->parts) {
    for (const NodeWork& nw : p.frontier) {
      if (nw.node_id >= ctx.tree().num_nodes() ||
          !ctx.tree().node(nw.node_id).is_leaf()) {
        throw std::runtime_error(
            "resume: frontier names node " + std::to_string(nw.node_id) +
            " which is not a leaf of the checkpointed tree");
      }
    }
  }

  ctx.levels = out->levels;
  ctx.partition_splits = out->partition_splits;
  ctx.rejoins = out->rejoins;
  ctx.records_moved = out->records_moved;
  ctx.histogram_words = out->histogram_words;

  // Every rank re-reads its frontier shard from the checkpoint at t_io
  // per record word and re-enters the rows in its Records account (peaks
  // restart at the live level — the pre-crash highs died with the
  // process and are kept in the file only as provenance).
  mpsim::Time io_total = 0.0;
  std::int64_t records = 0;
  for (const CkptPart& p : out->parts) {
    for (std::size_t m = 0; m < p.ranks.size(); ++m) {
      std::int64_t n = 0;
      for (const NodeWork& nw : p.frontier) {
        n += static_cast<std::int64_t>(nw.local_rows[m].size());
      }
      if (n == 0) continue;
      records += n;
      const mpsim::Rank r = p.ranks[m];
      const mpsim::Time t =
          cm.t_io * static_cast<double>(n) * ctx.record_words();
      machine.charge_io(r, t);
      ctx.mem_records_alloc(r, n);
      io_total += t;
    }
  }

  ctx.recovery.resumed = true;
  ctx.recovery.resume_epoch = epoch;
  ctx.recovery.resume_io_us = io_total;
  ctx.recovery.resume_records = records;
  if (machine.trace().enabled()) {
    machine.trace().record(
        {.time = machine.max_clock(),
         .kind = mpsim::EventKind::Resume,
         .rank = out->parts.empty() ? 0 : out->parts.front().ranks.front(),
         .group_base = 0,
         .group_size = machine.size(),
         .words = static_cast<double>(records) * ctx.record_words(),
         .detail = "resumed from epoch " + std::to_string(epoch) +
                   (skipped > 0
                        ? " (skipped " + std::to_string(skipped) + " invalid)"
                        : "") +
                   ": " + std::to_string(records) + " records, tree " +
                   out->tree_digest.substr(0, 12)});
  }
  return true;
}

}  // namespace pdt::core
