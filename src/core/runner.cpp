#include "core/runner.hpp"

#include <sstream>

namespace pdt::core {

const char* to_string(Formulation f) {
  switch (f) {
    case Formulation::Sync: return "synchronous";
    case Formulation::Partitioned: return "partitioned";
    case Formulation::Hybrid: return "hybrid";
  }
  return "?";
}

ParResult build(Formulation f, const data::Dataset& ds,
                const ParOptions& opt) {
  switch (f) {
    case Formulation::Sync: return build_sync(ds, opt);
    case Formulation::Partitioned: return build_partitioned(ds, opt);
    case Formulation::Hybrid: return build_hybrid(ds, opt);
  }
  return build_sync(ds, opt);
}

ParResult build_serial(const data::Dataset& ds, ParOptions opt) {
  opt.num_procs = 1;
  return build_sync(ds, opt);
}

std::vector<SpeedupPoint> speedup_series(Formulation f,
                                         const data::Dataset& ds,
                                         const ParOptions& base,
                                         const std::vector<int>& procs) {
  const ParResult serial = build_serial(ds, base);
  std::vector<SpeedupPoint> out;
  out.reserve(procs.size());
  for (const int p : procs) {
    SpeedupPoint pt;
    pt.procs = p;
    if (p == 1) {
      pt.time_us = serial.parallel_time;
      pt.result = serial;  // copy; serial reused as baseline
    } else {
      ParOptions opt = base;
      opt.num_procs = p;
      pt.result = build(f, ds, opt);
      pt.time_us = pt.result.parallel_time;
    }
    pt.speedup = serial.parallel_time / pt.time_us;
    pt.efficiency = pt.speedup / p;
    out.push_back(std::move(pt));
  }
  return out;
}

std::string verify_equivalence(const data::Dataset& ds,
                               const ParOptions& base,
                               const std::vector<int>& procs) {
  const ParResult serial = build_serial(ds, base);
  for (const Formulation f :
       {Formulation::Sync, Formulation::Partitioned, Formulation::Hybrid}) {
    for (const int p : procs) {
      ParOptions opt = base;
      opt.num_procs = p;
      const ParResult res = build(f, ds, opt);
      if (!res.tree.same_as(serial.tree)) {
        std::ostringstream os;
        os << to_string(f) << " with P=" << p
           << " grew a different tree than the serial baseline ("
           << res.tree.num_nodes() << " vs " << serial.tree.num_nodes()
           << " nodes)";
        return os.str();
      }
    }
  }
  return {};
}

}  // namespace pdt::core
