#include "core/sync_tree.hpp"

#include "core/ckpt.hpp"
#include "core/recovery.hpp"

namespace pdt::core {

ParResult collect_result(ParContext& ctx) {
  mpsim::Machine& m = ctx.machine();
  ctx.publish_summary_gauges();
  // Transient-retry cost accrues machine-side (admission control inside
  // Group collectives); fold it into the run's recovery accounting.
  ctx.recovery.retries = m.retries();
  ctx.recovery.retry_us = m.retry_us();
  ctx.recovery.escalations = m.escalations();
  ParResult res;
  res.tree = std::move(ctx.tree());
  res.parallel_time = m.max_clock();
  res.totals = m.total_stats();
  res.per_rank.reserve(static_cast<std::size_t>(m.size()));
  res.mem.reserve(static_cast<std::size_t>(m.size()));
  for (int r = 0; r < m.size(); ++r) {
    res.per_rank.push_back(m.stats(r));
    res.mem.push_back(m.mem(r));
  }
  res.mem_predicted = ctx.mem_predicted();
  res.levels = ctx.levels;
  res.partition_splits = ctx.partition_splits;
  res.rejoins = ctx.rejoins;
  res.records_moved = ctx.records_moved;
  res.histogram_words = ctx.histogram_words;
  res.recovery = ctx.recovery;
  res.trace = m.trace().events();
  return res;
}

ParResult build_sync(const data::Dataset& ds, const ParOptions& opt) {
  mpsim::Machine machine(opt.num_procs, opt.cost);
  ParContext ctx(ds, opt, machine);
  mpsim::Group all = mpsim::Group::whole(machine);

  DurableCheckpointer ckpt(ctx, "sync");
  std::vector<NodeWork> frontier;
  RunSnapshot snap;
  if (resume_from_checkpoint(ctx, "sync", &snap)) {
    if (!snap.parts.empty()) {
      frontier = std::move(snap.parts.front().frontier);
    }
  } else {
    frontier.push_back(ctx.initial_root(all));
  }
  while (!frontier.empty()) {
    if (ckpt.enabled()) {
      ckpt.save({CkptPart{all.ranks(), 0.0, frontier}});
    }
    ++ctx.levels;
    frontier = expand_level_ft(ctx, all, frontier);
  }
  all.barrier();
  return collect_result(ctx);
}

}  // namespace pdt::core
