// Distribution of training records over the P simulated processors.
//
// All parallel formulations assume "N training cases are randomly
// distributed to P processors initially such that each processor has N/P
// cases" (Section 3). Block distribution is provided for tests that need a
// predictable layout.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace pdt::data {

using RowId = std::uint32_t;

/// rows[p] = global row ids owned by processor p.
using RowPartition = std::vector<std::vector<RowId>>;

/// Contiguous blocks: processor p owns rows [p*N/P, (p+1)*N/P).
[[nodiscard]] RowPartition partition_block(std::size_t num_rows, int nprocs);

/// Random (seeded) permutation dealt round-robin — the paper's random
/// initial distribution. Every processor gets floor/ceil(N/P) rows.
[[nodiscard]] RowPartition partition_random(std::size_t num_rows, int nprocs,
                                            std::uint64_t seed);

/// Total row count across a partition.
[[nodiscard]] std::size_t partition_size(const RowPartition& part);

}  // namespace pdt::data
