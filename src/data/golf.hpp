// The 14-record "play / don't play" golf training set of Table 1
// (Quinlan, C4.5). Used by the quickstart example to reproduce Tables 1-3
// and Figure 1 of the paper, and by unit tests as a hand-checkable input.
#pragma once

#include "data/dataset.hpp"

namespace pdt::data {

namespace golf_attr {
inline constexpr int kOutlook = 0;   ///< categorical: sunny, overcast, rain
inline constexpr int kTemp = 1;      ///< continuous
inline constexpr int kHumidity = 2;  ///< continuous
inline constexpr int kWindy = 3;     ///< categorical: false, true
}  // namespace golf_attr

/// Classes: 0 = Play, 1 = Don't Play.
[[nodiscard]] Schema golf_schema();

/// The full Table-1 dataset (9 Play, 5 Don't Play).
[[nodiscard]] Dataset golf_dataset();

}  // namespace pdt::data
