#include "data/partition.hpp"

#include <cassert>
#include <numeric>

#include "data/rng.hpp"

namespace pdt::data {

RowPartition partition_block(std::size_t num_rows, int nprocs) {
  assert(nprocs >= 1);
  RowPartition part(static_cast<std::size_t>(nprocs));
  const std::size_t base = num_rows / static_cast<std::size_t>(nprocs);
  const std::size_t extra = num_rows % static_cast<std::size_t>(nprocs);
  std::size_t next = 0;
  for (int p = 0; p < nprocs; ++p) {
    const std::size_t count =
        base + (static_cast<std::size_t>(p) < extra ? 1 : 0);
    auto& rows = part[static_cast<std::size_t>(p)];
    rows.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      rows.push_back(static_cast<RowId>(next++));
    }
  }
  assert(next == num_rows);
  return part;
}

RowPartition partition_random(std::size_t num_rows, int nprocs,
                              std::uint64_t seed) {
  assert(nprocs >= 1);
  std::vector<RowId> perm(num_rows);
  std::iota(perm.begin(), perm.end(), RowId{0});
  Rng rng(seed);
  // Fisher-Yates with our deterministic generator.
  for (std::size_t i = num_rows; i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(perm[i - 1], perm[j]);
  }
  RowPartition part(static_cast<std::size_t>(nprocs));
  for (std::size_t i = 0; i < num_rows; ++i) {
    part[i % static_cast<std::size_t>(nprocs)].push_back(perm[i]);
  }
  return part;
}

std::size_t partition_size(const RowPartition& part) {
  std::size_t n = 0;
  for (const auto& rows : part) n += rows.size();
  return n;
}

}  // namespace pdt::data
