// Columnar training set.
//
// Storage is column-major: one int32 column per categorical attribute, one
// double column per continuous attribute, plus the int32 class-label
// column. Column-major layout matches the access pattern of histogram
// construction (one attribute scanned at a time) and of the attribute-list
// style algorithms (SLIQ/SPRINT) the paper builds on.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "data/schema.hpp"

namespace pdt::data {

class Dataset {
 public:
  Dataset() = default;
  /// Create an empty dataset with capacity reserved for `expected_rows`.
  explicit Dataset(Schema schema, std::size_t expected_rows = 0);

  [[nodiscard]] const Schema& schema() const { return schema_; }
  [[nodiscard]] std::size_t num_rows() const { return labels_.size(); }
  [[nodiscard]] int num_attributes() const { return schema_.num_attributes(); }

  /// Begin a new row; follow with set_cat/set_cont for every attribute.
  /// Returns the new row index.
  std::size_t add_row(std::int32_t label);
  void set_cat(int attr, std::size_t row, std::int32_t value);
  void set_cont(int attr, std::size_t row, double value);

  [[nodiscard]] std::int32_t cat(int attr, std::size_t row) const {
    assert(schema_.attr(attr).is_categorical());
    return cat_[static_cast<std::size_t>(attr)][row];
  }
  [[nodiscard]] double cont(int attr, std::size_t row) const {
    assert(schema_.attr(attr).is_continuous());
    return cont_[static_cast<std::size_t>(attr)][row];
  }
  [[nodiscard]] std::int32_t label(std::size_t row) const {
    return labels_[row];
  }

  [[nodiscard]] const std::vector<std::int32_t>& labels() const {
    return labels_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& cat_column(int attr) const {
    return cat_[static_cast<std::size_t>(attr)];
  }
  [[nodiscard]] const std::vector<double>& cont_column(int attr) const {
    return cont_[static_cast<std::size_t>(attr)];
  }

  /// Min / max of a continuous column (asserts non-empty).
  [[nodiscard]] std::pair<double, double> cont_range(int attr) const;

 private:
  Schema schema_;
  std::vector<std::vector<std::int32_t>> cat_;  // empty vec for continuous
  std::vector<std::vector<double>> cont_;       // empty vec for categorical
  std::vector<std::int32_t> labels_;
};

}  // namespace pdt::data
