// Deterministic random number generation.
//
// We do not use <random> distributions because the standard does not pin
// down their algorithms; this splitmix64-based generator produces
// bit-identical streams on every platform, which the test suite relies on
// (same seed => identical synthetic dataset => identical tree).
#pragma once

#include <cstdint>

namespace pdt::data {

/// splitmix64: tiny, fast, well-distributed, fully specified.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 raw bits.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Bernoulli(p).
  bool chance(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace pdt::data
