#include "data/discretize.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace pdt::data {

std::vector<double> uniform_boundaries(double lo, double hi, int bins) {
  assert(bins >= 1);
  std::vector<double> cuts;
  cuts.reserve(static_cast<std::size_t>(bins - 1));
  const double width = (hi - lo) / bins;
  for (int b = 1; b < bins; ++b) cuts.push_back(lo + width * b);
  return cuts;
}

int bin_of(double v, const std::vector<double>& cuts) {
  // Number of boundaries <= v; values exactly on a boundary go right.
  const auto it = std::upper_bound(cuts.begin(), cuts.end(), v);
  return static_cast<int>(it - cuts.begin());
}

Dataset discretize_uniform(const Dataset& ds,
                           const std::vector<int>& bins_per_attr) {
  const Schema& in = ds.schema();
  assert(static_cast<int>(bins_per_attr.size()) == in.num_attributes());

  std::vector<Attribute> attrs;
  std::vector<std::vector<double>> cuts(
      static_cast<std::size_t>(in.num_attributes()));
  for (int a = 0; a < in.num_attributes(); ++a) {
    const Attribute& src = in.attr(a);
    if (src.is_categorical()) {
      attrs.push_back(src);
      continue;
    }
    const int bins = bins_per_attr[static_cast<std::size_t>(a)];
    assert(bins >= 2);
    const auto [lo, hi] = ds.cont_range(a);
    cuts[static_cast<std::size_t>(a)] = uniform_boundaries(lo, hi, bins);
    Attribute binned =
        Attribute::categorical(src.name, bins, /*ordered=*/true);
    for (int b = 0; b < bins; ++b) {
      binned.value_names.push_back(src.name + "_bin" + std::to_string(b));
    }
    attrs.push_back(std::move(binned));
  }

  std::vector<std::string> class_names;
  for (int c = 0; c < in.num_classes(); ++c) {
    class_names.push_back(in.class_name(c));
  }
  Dataset out(Schema(std::move(attrs), in.num_classes(), std::move(class_names)),
              ds.num_rows());
  for (std::size_t row = 0; row < ds.num_rows(); ++row) {
    out.add_row(ds.label(row));
    for (int a = 0; a < in.num_attributes(); ++a) {
      if (in.attr(a).is_categorical()) {
        out.set_cat(a, row, ds.cat(a, row));
      } else {
        out.set_cat(a, row,
                    bin_of(ds.cont(a, row), cuts[static_cast<std::size_t>(a)]));
      }
    }
  }
  return out;
}

std::vector<int> quest_paper_bins() {
  // salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan
  return {13, 14, 6, 0, 0, 0, 11, 10, 20};
}

std::vector<double> quantile_boundaries(std::vector<WeightedValue> values,
                                        int bins) {
  assert(bins >= 1);
  std::sort(values.begin(), values.end(),
            [](const WeightedValue& a, const WeightedValue& b) {
              return a.value < b.value;
            });
  double total = 0.0;
  for (const auto& v : values) total += v.weight;
  if (total <= 0.0 || values.empty()) return {};

  std::vector<double> cuts;
  const double per_bin = total / bins;
  double acc = 0.0;
  int next_cut = 1;
  for (std::size_t i = 0; i + 1 < values.size() && next_cut < bins; ++i) {
    acc += values[i].weight;
    if (acc >= per_bin * next_cut) {
      // Boundary between this value and the next.
      cuts.push_back(0.5 * (values[i].value + values[i + 1].value));
      while (next_cut < bins && acc >= per_bin * next_cut) ++next_cut;
    }
  }
  return cuts;
}

std::vector<double> kmeans_boundaries(const std::vector<WeightedValue>& values,
                                      int k, int max_iters) {
  assert(k >= 1);
  std::vector<WeightedValue> pts;
  pts.reserve(values.size());
  for (const auto& v : values) {
    if (v.weight > 0.0) pts.push_back(v);
  }
  if (pts.empty()) return {};
  std::sort(pts.begin(), pts.end(),
            [](const WeightedValue& a, const WeightedValue& b) {
              return a.value < b.value;
            });
  k = std::min<int>(k, static_cast<int>(pts.size()));
  if (k <= 1) return {};

  // Initialize centers at weight quantiles (deterministic).
  double total = 0.0;
  for (const auto& p : pts) total += p.weight;
  std::vector<double> centers;
  centers.reserve(static_cast<std::size_t>(k));
  {
    double acc = 0.0;
    std::size_t i = 0;
    for (int c = 0; c < k; ++c) {
      const double want = total * (c + 0.5) / k;
      while (i + 1 < pts.size() && acc + pts[i].weight < want) {
        acc += pts[i].weight;
        ++i;
      }
      centers.push_back(pts[i].value);
    }
  }
  std::sort(centers.begin(), centers.end());
  centers.erase(std::unique(centers.begin(), centers.end()), centers.end());

  // Lloyd iterations; in 1-D each cluster is an interval, so assignment is
  // a merge-scan against midpoints between adjacent centers.
  for (int iter = 0; iter < max_iters; ++iter) {
    std::vector<double> sum(centers.size(), 0.0);
    std::vector<double> mass(centers.size(), 0.0);
    std::size_t c = 0;
    for (const auto& p : pts) {
      while (c + 1 < centers.size() &&
             std::abs(p.value - centers[c + 1]) <
                 std::abs(p.value - centers[c])) {
        ++c;
      }
      sum[c] += p.value * p.weight;
      mass[c] += p.weight;
    }
    double shift = 0.0;
    std::vector<double> next;
    next.reserve(centers.size());
    for (std::size_t j = 0; j < centers.size(); ++j) {
      if (mass[j] <= 0.0) continue;  // drop empty clusters
      const double m = sum[j] / mass[j];
      shift += std::abs(m - (j < centers.size() ? centers[j] : m));
      next.push_back(m);
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    const bool converged = next.size() == centers.size() && shift < 1e-9;
    centers = std::move(next);
    if (converged) break;
  }

  std::vector<double> cuts;
  for (std::size_t j = 0; j + 1 < centers.size(); ++j) {
    cuts.push_back(0.5 * (centers[j] + centers[j + 1]));
  }
  return cuts;
}

}  // namespace pdt::data
