#include "data/quest.hpp"

#include <algorithm>
#include <cassert>

#include "data/rng.hpp"

namespace pdt::data {

Schema quest_schema() {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::continuous("salary"));
  attrs.push_back(Attribute::continuous("commission"));
  attrs.push_back(Attribute::continuous("age"));
  attrs.push_back(Attribute::categorical("elevel", 5));
  attrs.push_back(Attribute::categorical("car", 20));
  attrs.push_back(Attribute::categorical("zipcode", 9));
  attrs.push_back(Attribute::continuous("hvalue"));
  attrs.push_back(Attribute::continuous("hyears"));
  attrs.push_back(Attribute::continuous("loan"));
  return Schema(std::move(attrs), 2, {"Group A", "Group B"});
}

QuestRecord quest_draw(Rng& rng) {
  QuestRecord r;
  r.salary = rng.uniform(20000.0, 150000.0);
  r.commission =
      r.salary >= 75000.0 ? 0.0 : rng.uniform(10000.0, 75000.0);
  r.age = rng.uniform(20.0, 80.0);
  r.elevel = static_cast<int>(rng.uniform_int(0, 4));
  r.car = static_cast<int>(rng.uniform_int(0, 19));
  r.zipcode = static_cast<int>(rng.uniform_int(0, 8));
  const double k = static_cast<double>(r.zipcode + 1);
  r.hvalue = rng.uniform(0.5 * k * 100000.0, 1.5 * k * 100000.0);
  r.hyears = rng.uniform(1.0, 30.0);
  r.loan = rng.uniform(0.0, 500000.0);
  return r;
}

namespace {

bool in(double v, double lo, double hi) { return lo <= v && v <= hi; }

/// Group A predicates of the ten functions [Agrawal et al. 93, Table].
bool group_a(int f, const QuestRecord& r) {
  switch (f) {
    case 1:
      return r.age < 40.0 || r.age >= 60.0;
    case 2:
      if (r.age < 40.0) return in(r.salary, 50000.0, 100000.0);
      if (r.age < 60.0) return in(r.salary, 75000.0, 125000.0);
      return in(r.salary, 25000.0, 75000.0);
    case 3:
      if (r.age < 40.0) return r.elevel >= 0 && r.elevel <= 1;
      if (r.age < 60.0) return r.elevel >= 1 && r.elevel <= 3;
      return r.elevel >= 2 && r.elevel <= 4;
    case 4:
      if (r.age < 40.0) {
        return (r.elevel >= 0 && r.elevel <= 1)
                   ? in(r.salary, 25000.0, 75000.0)
                   : in(r.salary, 50000.0, 100000.0);
      }
      if (r.age < 60.0) {
        return (r.elevel >= 1 && r.elevel <= 3)
                   ? in(r.salary, 50000.0, 100000.0)
                   : in(r.salary, 75000.0, 125000.0);
      }
      return (r.elevel >= 2 && r.elevel <= 4)
                 ? in(r.salary, 50000.0, 100000.0)
                 : in(r.salary, 25000.0, 75000.0);
    case 5:
      if (r.age < 40.0) {
        return in(r.salary, 50000.0, 100000.0)
                   ? in(r.loan, 100000.0, 300000.0)
                   : in(r.loan, 200000.0, 400000.0);
      }
      if (r.age < 60.0) {
        return in(r.salary, 75000.0, 125000.0)
                   ? in(r.loan, 200000.0, 400000.0)
                   : in(r.loan, 300000.0, 500000.0);
      }
      return in(r.salary, 25000.0, 75000.0)
                 ? in(r.loan, 300000.0, 500000.0)
                 : in(r.loan, 100000.0, 300000.0);
    case 6: {
      const double total = r.salary + r.commission;
      if (r.age < 40.0) return in(total, 50000.0, 100000.0);
      if (r.age < 60.0) return in(total, 75000.0, 125000.0);
      return in(total, 25000.0, 75000.0);
    }
    case 7:
      return 0.67 * (r.salary + r.commission) - 0.2 * r.loan - 20000.0 > 0.0;
    case 8:
      return 0.67 * (r.salary + r.commission) - 5000.0 * r.elevel -
                 20000.0 >
             0.0;
    case 9:
      return 0.67 * (r.salary + r.commission) - 5000.0 * r.elevel -
                 0.2 * r.loan - 10000.0 >
             0.0;
    case 10: {
      const double equity =
          r.hyears < 20.0 ? 0.0 : 0.1 * r.hvalue * (r.hyears - 20.0);
      return 0.67 * (r.salary + r.commission) - 5000.0 * r.elevel +
                 0.2 * equity - 10000.0 >
             0.0;
    }
    default:
      assert(false && "quest function must be 1..10");
      return false;
  }
}

}  // namespace

int quest_classify(int f, const QuestRecord& r) {
  return group_a(f, r) ? 0 : 1;
}

namespace {

double perturb(Rng& rng, double v, double lo, double hi, double p) {
  const double jittered = v + (rng.next_double() - 0.5) * p * (hi - lo);
  return std::clamp(jittered, lo, hi);
}

}  // namespace

Dataset quest_generate(std::size_t n, const QuestOptions& opt) {
  assert(opt.function >= 1 && opt.function <= 10);
  Rng rng(opt.seed);
  // Noise draws come from an independent stream so that enabling
  // label_noise / perturbation overlays the exact same base records
  // (useful for clean-vs-noisy comparisons; tests rely on it).
  Rng noise(opt.seed ^ 0x5DEECE66DULL);
  Dataset ds(quest_schema(), n);
  for (std::size_t i = 0; i < n; ++i) {
    QuestRecord r = quest_draw(rng);
    int label = quest_classify(opt.function, r);
    if (opt.label_noise > 0.0 && noise.chance(opt.label_noise)) {
      label = 1 - label;
    }
    if (opt.perturbation > 0.0) {
      const double p = opt.perturbation;
      r.salary = perturb(noise, r.salary, 20000.0, 150000.0, p);
      if (r.commission > 0.0) {
        r.commission = perturb(noise, r.commission, 10000.0, 75000.0, p);
      }
      r.age = perturb(noise, r.age, 20.0, 80.0, p);
      const double k = static_cast<double>(r.zipcode + 1);
      r.hvalue = perturb(noise, r.hvalue, 0.5 * k * 100000.0,
                         1.5 * k * 100000.0, p);
      r.hyears = perturb(noise, r.hyears, 1.0, 30.0, p);
      r.loan = perturb(noise, r.loan, 0.0, 500000.0, p);
    }
    const std::size_t row = ds.add_row(label);
    using namespace quest_attr;
    ds.set_cont(kSalary, row, r.salary);
    ds.set_cont(kCommission, row, r.commission);
    ds.set_cont(kAge, row, r.age);
    ds.set_cat(kElevel, row, r.elevel);
    ds.set_cat(kCar, row, r.car);
    ds.set_cat(kZipcode, row, r.zipcode);
    ds.set_cont(kHvalue, row, r.hvalue);
    ds.set_cont(kHyears, row, r.hyears);
    ds.set_cont(kLoan, row, r.loan);
  }
  return ds;
}

}  // namespace pdt::data
