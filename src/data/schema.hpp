// Attribute schema for a training set.
//
// Attributes are either continuous (ordered real values) or categorical
// (finite unordered value sets); one distinguished categorical attribute is
// the class label (Section 1 of the paper). Categorical attributes carry an
// `ordered` flag: bins produced by discretizing a continuous attribute keep
// their order (threshold splits apply), whereas genuinely nominal
// attributes (car make, zipcode) use subset splits.
#pragma once

#include <string>
#include <vector>

namespace pdt::data {

enum class AttrType { Categorical, Continuous };

struct Attribute {
  std::string name;
  AttrType type = AttrType::Continuous;
  /// Number of distinct values; meaningful for categorical attributes.
  int cardinality = 0;
  /// For categorical attributes: whether the value ids carry an order
  /// (true for discretized continuous attributes).
  bool ordered = false;
  /// Optional human-readable value names (categorical).
  std::vector<std::string> value_names;

  [[nodiscard]] bool is_categorical() const {
    return type == AttrType::Categorical;
  }
  [[nodiscard]] bool is_continuous() const {
    return type == AttrType::Continuous;
  }

  [[nodiscard]] static Attribute categorical(std::string name, int cardinality,
                                             bool ordered = false);
  [[nodiscard]] static Attribute continuous(std::string name);
};

class Schema {
 public:
  Schema() = default;
  Schema(std::vector<Attribute> attrs, int num_classes,
         std::vector<std::string> class_names = {});

  [[nodiscard]] int num_attributes() const {
    return static_cast<int>(attrs_.size());
  }
  [[nodiscard]] const Attribute& attr(int a) const {
    return attrs_[static_cast<std::size_t>(a)];
  }
  [[nodiscard]] const std::vector<Attribute>& attributes() const {
    return attrs_;
  }
  [[nodiscard]] int num_classes() const { return num_classes_; }
  [[nodiscard]] const std::string& class_name(int c) const;

  /// Number of categorical / continuous attributes (the paper's A_d and
  /// the continuous complement).
  [[nodiscard]] int num_categorical() const;
  [[nodiscard]] int num_continuous() const;
  /// Mean cardinality of the categorical attributes (the paper's M).
  [[nodiscard]] double mean_cardinality() const;

  /// Index of the attribute with the given name, or -1.
  [[nodiscard]] int index_of(const std::string& name) const;

 private:
  std::vector<Attribute> attrs_;
  int num_classes_ = 0;
  std::vector<std::string> class_names_;
};

}  // namespace pdt::data
