// CSV import/export for datasets.
//
// Format: a first header line `name:type[:cardinality[:o]]` per attribute
// plus a final `class:cat:<k>` column; then one row per record. Categorical
// values are stored as integer ids. The loader reconstructs the schema from
// the header, so save -> load round-trips exactly (tests enforce this).
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace pdt::data {

void save_csv(const Dataset& ds, std::ostream& out);
void save_csv_file(const Dataset& ds, const std::string& path);

/// Throws std::runtime_error on malformed input.
[[nodiscard]] Dataset load_csv(std::istream& in);
[[nodiscard]] Dataset load_csv_file(const std::string& path);

}  // namespace pdt::data
