#include "data/golf.hpp"

namespace pdt::data {

Schema golf_schema() {
  auto outlook = Attribute::categorical("Outlook", 3);
  outlook.value_names = {"sunny", "overcast", "rain"};
  auto windy = Attribute::categorical("Windy", 2);
  windy.value_names = {"false", "true"};
  std::vector<Attribute> attrs;
  attrs.push_back(std::move(outlook));
  attrs.push_back(Attribute::continuous("Temperature"));
  attrs.push_back(Attribute::continuous("Humidity"));
  attrs.push_back(std::move(windy));
  return Schema(std::move(attrs), 2, {"Play", "Don't Play"});
}

Dataset golf_dataset() {
  // outlook(0=sunny,1=overcast,2=rain), temp, humidity, windy, class
  struct Row {
    int outlook;
    double temp, humidity;
    int windy;
    int cls;  // 0 = Play, 1 = Don't Play
  };
  static constexpr Row kRows[] = {
      {0, 75, 70, 1, 0}, {0, 80, 90, 1, 1}, {0, 85, 85, 0, 1},
      {0, 72, 95, 0, 1}, {0, 69, 70, 0, 0}, {1, 72, 90, 1, 0},
      {1, 83, 78, 0, 0}, {1, 64, 65, 1, 0}, {1, 81, 75, 0, 0},
      {2, 71, 80, 1, 1}, {2, 65, 70, 1, 1}, {2, 75, 80, 0, 0},
      {2, 68, 80, 0, 0}, {2, 70, 96, 0, 0},
  };
  Dataset ds(golf_schema(), std::size(kRows));
  for (const Row& r : kRows) {
    const std::size_t row = ds.add_row(r.cls);
    ds.set_cat(golf_attr::kOutlook, row, r.outlook);
    ds.set_cont(golf_attr::kTemp, row, r.temp);
    ds.set_cont(golf_attr::kHumidity, row, r.humidity);
    ds.set_cat(golf_attr::kWindy, row, r.windy);
  }
  return ds;
}

}  // namespace pdt::data
