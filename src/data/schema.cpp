#include "data/schema.hpp"

#include <cassert>

namespace pdt::data {

Attribute Attribute::categorical(std::string name, int cardinality,
                                 bool ordered) {
  Attribute a;
  a.name = std::move(name);
  a.type = AttrType::Categorical;
  a.cardinality = cardinality;
  a.ordered = ordered;
  return a;
}

Attribute Attribute::continuous(std::string name) {
  Attribute a;
  a.name = std::move(name);
  a.type = AttrType::Continuous;
  return a;
}

Schema::Schema(std::vector<Attribute> attrs, int num_classes,
               std::vector<std::string> class_names)
    : attrs_(std::move(attrs)),
      num_classes_(num_classes),
      class_names_(std::move(class_names)) {
  assert(num_classes_ >= 2);
  if (class_names_.empty()) {
    for (int c = 0; c < num_classes_; ++c) {
      class_names_.push_back("class" + std::to_string(c));
    }
  }
  assert(static_cast<int>(class_names_.size()) == num_classes_);
}

const std::string& Schema::class_name(int c) const {
  return class_names_[static_cast<std::size_t>(c)];
}

int Schema::num_categorical() const {
  int n = 0;
  for (const auto& a : attrs_) n += a.is_categorical() ? 1 : 0;
  return n;
}

int Schema::num_continuous() const {
  return num_attributes() - num_categorical();
}

double Schema::mean_cardinality() const {
  int n = 0;
  long long sum = 0;
  for (const auto& a : attrs_) {
    if (a.is_categorical()) {
      ++n;
      sum += a.cardinality;
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(sum) / n;
}

int Schema::index_of(const std::string& name) const {
  for (int a = 0; a < num_attributes(); ++a) {
    if (attrs_[static_cast<std::size_t>(a)].name == name) return a;
  }
  return -1;
}

}  // namespace pdt::data
