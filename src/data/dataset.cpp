#include "data/dataset.hpp"

#include <algorithm>
#include <limits>

namespace pdt::data {

Dataset::Dataset(Schema schema, std::size_t expected_rows)
    : schema_(std::move(schema)) {
  const int n = schema_.num_attributes();
  cat_.resize(static_cast<std::size_t>(n));
  cont_.resize(static_cast<std::size_t>(n));
  for (int a = 0; a < n; ++a) {
    if (schema_.attr(a).is_categorical()) {
      cat_[static_cast<std::size_t>(a)].reserve(expected_rows);
    } else {
      cont_[static_cast<std::size_t>(a)].reserve(expected_rows);
    }
  }
  labels_.reserve(expected_rows);
}

std::size_t Dataset::add_row(std::int32_t label) {
  assert(label >= 0 && label < schema_.num_classes());
  const std::size_t row = labels_.size();
  labels_.push_back(label);
  for (int a = 0; a < num_attributes(); ++a) {
    if (schema_.attr(a).is_categorical()) {
      cat_[static_cast<std::size_t>(a)].push_back(0);
    } else {
      cont_[static_cast<std::size_t>(a)].push_back(0.0);
    }
  }
  return row;
}

void Dataset::set_cat(int attr, std::size_t row, std::int32_t value) {
  assert(schema_.attr(attr).is_categorical());
  assert(value >= 0 && value < schema_.attr(attr).cardinality);
  cat_[static_cast<std::size_t>(attr)][row] = value;
}

void Dataset::set_cont(int attr, std::size_t row, double value) {
  assert(schema_.attr(attr).is_continuous());
  cont_[static_cast<std::size_t>(attr)][row] = value;
}

std::pair<double, double> Dataset::cont_range(int attr) const {
  const auto& col = cont_column(attr);
  assert(!col.empty());
  const auto [lo, hi] = std::minmax_element(col.begin(), col.end());
  return {*lo, *hi};
}

}  // namespace pdt::data
