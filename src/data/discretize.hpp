// Discretization of continuous attributes.
//
// The paper uses three flavours:
//  * global uniform (equal-interval) binning as a preprocessing step — the
//    Figure 6/7 experiments discretize the six continuous Quest attributes
//    into 13/14/6/11/10/20 equal intervals;
//  * per-node quantile discretization (CLOUDS [3]);
//  * per-node clustering discretization (SPEC [23]) — used for the
//    Figure 8/9 experiments.
//
// Global binning produces a new all-categorical Dataset (bins keep their
// order). The per-node flavours operate on weighted value histograms and
// return bin boundaries; the core library applies them to the globally
// reduced per-node micro-histograms.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace pdt::data {

/// Equal-width bin boundaries: `bins`-1 interior cut points over [lo, hi].
[[nodiscard]] std::vector<double> uniform_boundaries(double lo, double hi,
                                                     int bins);

/// Bin index of `v` for interior boundaries `cuts` (ascending): the number
/// of cut points <= v, clamped to [0, cuts.size()].
[[nodiscard]] int bin_of(double v, const std::vector<double>& cuts);

/// Replace every continuous attribute with an ordered categorical attribute
/// of `bins_per_attr[a]` equal-width bins computed from the column's range.
/// Entries for categorical attributes are ignored (use 0).
[[nodiscard]] Dataset discretize_uniform(const Dataset& ds,
                                         const std::vector<int>& bins_per_attr);

/// The paper's bin counts for the Quest schema: salary 13, commission 14,
/// age 6, hvalue 11, hyears 10, loan 20 (categorical attrs: 0).
[[nodiscard]] std::vector<int> quest_paper_bins();

/// A weighted point on the real line (bin center + mass), the unit the
/// per-node discretizers consume.
struct WeightedValue {
  double value = 0.0;
  double weight = 0.0;
};

/// Equi-depth (quantile) cut points: choose `bins`-1 boundaries so that
/// each bin holds roughly equal total weight. Returns ascending interior
/// boundaries (possibly fewer than bins-1 when mass is concentrated).
[[nodiscard]] std::vector<double> quantile_boundaries(
    std::vector<WeightedValue> values, int bins);

/// SPEC-style 1-D k-means clustering of weighted values into at most `k`
/// clusters; returns the interior boundaries (midpoints between adjacent
/// cluster centers). Deterministic: centers initialize at weight quantiles
/// and Lloyd iterations run to a fixed tolerance.
[[nodiscard]] std::vector<double> kmeans_boundaries(
    const std::vector<WeightedValue>& values, int k, int max_iters = 32);

}  // namespace pdt::data
