// The IBM Quest synthetic classification-data generator.
//
// The paper evaluates on "the widely used synthetic dataset proposed in the
// SLIQ paper", which is the generator of Agrawal, Imielinski, Swami,
// "Database Mining: A Performance Perspective" (IEEE TKDE 5(6), 1993).
// Every record has nine attributes:
//
//   salary      continuous, uniform [20000, 150000]
//   commission  continuous, 0 if salary >= 75000 else uniform [10000, 75000]
//   age         continuous, uniform [20, 80]
//   elevel      categorical {0..4}, uniform
//   car         categorical {1..20} (stored 0-based), uniform
//   zipcode     categorical, 9 zipcodes, uniform
//   hvalue      continuous, uniform [0.5k, 1.5k] * 100000 with k = zipcode+1
//   hyears      continuous, uniform [1, 30]
//   loan        continuous, uniform [0, 500000]
//
// Ten classification functions assign each record to Group A (class 0) or
// Group B (class 1); the paper uses function 2. An optional perturbation
// randomly flips a fraction of labels to model noise.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "data/rng.hpp"

namespace pdt::data {

/// Attribute indices in the generated schema, in generation order.
namespace quest_attr {
inline constexpr int kSalary = 0;
inline constexpr int kCommission = 1;
inline constexpr int kAge = 2;
inline constexpr int kElevel = 3;
inline constexpr int kCar = 4;
inline constexpr int kZipcode = 5;
inline constexpr int kHvalue = 6;
inline constexpr int kHyears = 7;
inline constexpr int kLoan = 8;
}  // namespace quest_attr

/// One generated record before labeling; exposed so tests can check the
/// classification functions against hand-computed rows.
struct QuestRecord {
  double salary = 0, commission = 0, age = 0;
  int elevel = 0, car = 0, zipcode = 0;
  double hvalue = 0, hyears = 0, loan = 0;
};

struct QuestOptions {
  int function = 2;          ///< classification function, 1..10
  std::uint64_t seed = 1;
  double label_noise = 0.0;  ///< fraction of labels flipped uniformly
  /// Agrawal et al.'s perturbation factor p: after a record is labeled,
  /// each continuous value v is jittered to v + r * p * (hi - lo) with
  /// r uniform in [-0.5, 0.5], clamped to the attribute's range. Models
  /// measurement noise without touching the class boundary structure.
  double perturbation = 0.0;
};

/// The schema of Quest data: 6 continuous + 3 categorical attributes, two
/// classes "Group A" / "Group B".
[[nodiscard]] Schema quest_schema();

/// Draw one record's attribute values.
[[nodiscard]] QuestRecord quest_draw(Rng& rng);

/// Apply classification function `f` (1..10) to a record. Returns 0 for
/// Group A, 1 for Group B.
[[nodiscard]] int quest_classify(int f, const QuestRecord& r);

/// Generate `n` labeled records.
[[nodiscard]] Dataset quest_generate(std::size_t n, const QuestOptions& opt);

}  // namespace pdt::data
