#include "data/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace pdt::data {

namespace {

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (ch == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

void save_csv(const Dataset& ds, std::ostream& out) {
  const Schema& s = ds.schema();
  for (int a = 0; a < s.num_attributes(); ++a) {
    const Attribute& attr = s.attr(a);
    out << attr.name << ':';
    if (attr.is_categorical()) {
      out << "cat:" << attr.cardinality;
      if (attr.ordered) out << ":o";
    } else {
      out << "cont";
    }
    out << ',';
  }
  out << "class:cat:" << s.num_classes() << '\n';

  out.precision(17);
  for (std::size_t row = 0; row < ds.num_rows(); ++row) {
    for (int a = 0; a < s.num_attributes(); ++a) {
      if (s.attr(a).is_categorical()) {
        out << ds.cat(a, row);
      } else {
        out << ds.cont(a, row);
      }
      out << ',';
    }
    out << ds.label(row) << '\n';
  }
}

void save_csv_file(const Dataset& ds, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_csv(ds, out);
}

Dataset load_csv(std::istream& in) {
  std::string header;
  if (!std::getline(in, header)) {
    throw std::runtime_error("csv: empty input");
  }
  const auto cols = split(header, ',');
  if (cols.size() < 2) throw std::runtime_error("csv: header too short");

  std::vector<Attribute> attrs;
  int num_classes = 0;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    const auto parts = split(cols[i], ':');
    const bool is_class = i + 1 == cols.size();
    if (is_class) {
      if (parts.size() < 3 || parts[1] != "cat") {
        throw std::runtime_error("csv: malformed class column");
      }
      num_classes = std::stoi(parts[2]);
      continue;
    }
    if (parts.size() >= 3 && parts[1] == "cat") {
      attrs.push_back(Attribute::categorical(
          parts[0], std::stoi(parts[2]),
          parts.size() >= 4 && parts[3] == "o"));
    } else if (parts.size() >= 2 && parts[1] == "cont") {
      attrs.push_back(Attribute::continuous(parts[0]));
    } else {
      throw std::runtime_error("csv: malformed column spec: " + cols[i]);
    }
  }

  Dataset ds(Schema(std::move(attrs), num_classes));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = split(line, ',');
    if (fields.size() != cols.size()) {
      throw std::runtime_error("csv: wrong field count in row: " + line);
    }
    const std::size_t row = ds.add_row(std::stoi(fields.back()));
    for (int a = 0; a < ds.num_attributes(); ++a) {
      const auto& f = fields[static_cast<std::size_t>(a)];
      if (ds.schema().attr(a).is_categorical()) {
        ds.set_cat(a, row, std::stoi(f));
      } else {
        ds.set_cont(a, row, std::stod(f));
      }
    }
  }
  return ds;
}

Dataset load_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return load_csv(in);
}

}  // namespace pdt::data
