// Lightweight event trace of the simulated run. Used by the
// `formulations_tour` example to replay the schematics of Figures 2-5 and
// by tests to assert that the expected sequence of phases happened.
#pragma once

#include <string>
#include <vector>

#include "mpsim/cost_model.hpp"

namespace pdt::mpsim {

enum class EventKind {
  Compute,        ///< a local-computation charge
  AllReduce,      ///< a class-histogram (or other) reduction
  Broadcast,
  PointToPoint,
  MovingPhase,    ///< subcube<->subcube record exchange at a split
  LoadBalance,    ///< intra-subcube record-count evening
  PartitionSplit, ///< a processor partition divided in two
  Rejoin,         ///< an idle partition joined a busy one
  Barrier,
  Checkpoint,     ///< a per-level frontier checkpoint was written
  RankFail,       ///< a fail-stopped rank was detected by its group
  Recovery,       ///< the group shrank and restored from a checkpoint
  Retry,          ///< a collective attempt failed transiently and retried
  Resume,         ///< the run restarted from a durable on-disk checkpoint
  Note,           ///< free-form annotation from the algorithm
};

[[nodiscard]] const char* to_string(EventKind k);

struct TraceEvent {
  Time time = 0.0;       ///< virtual time at which the event completed
  EventKind kind = EventKind::Note;
  int rank = -1;         ///< representative rank (first group member for
                         ///< collectives); -1 when no rank applies
  int group_base = 0;    ///< subcube base of the group involved
  int group_size = 1;
  double words = 0.0;    ///< traffic volume, where applicable
  std::string detail;    ///< human-readable annotation
};

/// Append-only trace. Disabled by default (zero overhead beyond a branch);
/// enable for examples and debugging.
class Trace {
 public:
  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(TraceEvent ev) {
    if (enabled_) events_.push_back(std::move(ev));
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Number of recorded events of the given kind.
  [[nodiscard]] std::size_t count(EventKind k) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace pdt::mpsim
