#include "mpsim/cost_model.hpp"

namespace pdt::mpsim {

int ceil_log2(int p) {
  int bits = 0;
  int v = 1;
  while (v < p) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

Time CostModel::all_reduce(double words, int p) const {
  if (p <= 1) return 0.0;
  // Recursive doubling, the algorithm 1998-era MPI implementations used
  // and exactly the paper's Eq. 2: (t_s + t_w * m) * log P_i.
  return (t_s + t_w * words) * ceil_log2(p);
}

Time CostModel::broadcast(double words, int p) const {
  if (p <= 1) return 0.0;
  return (t_s + t_w * words) * ceil_log2(p);
}

Time CostModel::all_to_all(double volume, int p) const {
  if (p <= 1) return 0.0;
  return t_s * ceil_log2(p) + t_w * volume;
}

CostModel CostModel::sp2() { return CostModel{}; }

CostModel CostModel::zero_comm() {
  CostModel cm;
  cm.t_s = 0.0;
  cm.t_w = 0.0;
  cm.t_io = 0.0;
  return cm;
}

CostModel CostModel::cheap_comm() {
  CostModel cm;
  cm.t_s /= 100.0;
  cm.t_w /= 100.0;
  cm.t_io /= 100.0;
  return cm;
}

}  // namespace pdt::mpsim
