// A processor partition (Section 3.3 calls these "partitions") and its
// collective operations.
//
// A Group is normally an aligned hypercube subcube; after an idle-partition
// rejoin it may be an arbitrary rank set, in which case collective costs
// use ceil(log2 |group|) dimensions (the paper's virtual-hypercube
// embedding argument, Section 3.3).
//
// Collectives have barrier semantics: every member's clock first advances
// to the group maximum (waiting ranks accrue idle time — this is where the
// paper's load-imbalance penalty physically shows up), then the collective
// cost is charged to every member.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpsim/machine.hpp"
#include "mpsim/topology.hpp"

namespace pdt::mpsim {

enum class CollectiveKind;

/// A planned item transfer between two group members (indices into the
/// group's rank list, not raw ranks).
struct Transfer {
  int from = 0;
  int to = 0;
  std::int64_t count = 0;
};

class Group {
 public:
  /// Group over an aligned subcube.
  Group(Machine& m, Subcube cube);
  /// Group over an explicit rank list (used after rejoins).
  Group(Machine& m, std::vector<Rank> ranks);
  /// Convenience: the whole machine as one group.
  static Group whole(Machine& m);

  [[nodiscard]] Machine& machine() const { return *machine_; }
  [[nodiscard]] int size() const { return static_cast<int>(ranks_.size()); }
  [[nodiscard]] Rank rank(int member) const { return ranks_[static_cast<std::size_t>(member)]; }
  [[nodiscard]] const std::vector<Rank>& ranks() const { return ranks_; }
  [[nodiscard]] bool is_subcube() const { return is_subcube_; }
  /// Only valid when is_subcube().
  [[nodiscard]] Subcube subcube() const { return cube_; }
  [[nodiscard]] int dimension() const { return ceil_log2(size()); }

  /// Max clock over members.
  [[nodiscard]] Time horizon() const;
  /// Advance all members to the group max clock, accounting idle time.
  void barrier() const;

  /// All-reduce (element-wise sum) over per-member buffers; bufs has one
  /// pointer per member, all pointing at equal-length vectors. On return
  /// every buffer holds the element-wise sum. Charges the Eq. 2 cost:
  /// barrier, then ceil(log2 p) * (t_s + t_w * words) to each member.
  /// `words` defaults to length * sizeof(T) / 4; pass it explicitly when
  /// the wire format is narrower than the in-memory type (e.g. histogram
  /// counts kept in int64 locally but 4-byte words on the wire).
  void all_reduce_sum(const std::vector<std::int64_t*>& bufs, std::size_t len,
                      double words = -1.0) const;
  void all_reduce_sum(const std::vector<double*>& bufs, std::size_t len,
                      double words = -1.0) const;

  /// Cost-only all-reduce of `words` 4-byte words (for reductions whose
  /// result the caller computes directly in the shared address space).
  void charge_all_reduce(double words) const;
  /// Cost-only one-to-all broadcast of `words` words.
  void charge_broadcast(double words) const;

  /// The "moving" phase of a partition split (Eq. 3): member i exchanges
  /// with its partner across the highest free dimension of this subcube.
  /// words_out[i] is the number of words member i sends to its partner;
  /// pair cost = t_s + t_w * max(out_i, out_partner). Barrier first.
  /// Requires an even-sized group (subcube when possible).
  void pairwise_exchange(const std::vector<double>& words_out) const;

  /// Plan an intra-group load balance: given per-member item counts,
  /// produce transfers that leave every member with floor/ceil of the
  /// mean (counts differing by at most 1). Pure function of `counts`.
  [[nodiscard]] static std::vector<Transfer> plan_balance(
      const std::vector<std::int64_t>& counts);

  /// Charge the communication cost of executing `transfers`, each item
  /// costing `words_per_item` words (Eq. 4: each member pays
  /// t_w * words moved in or out, plus t_s per distinct transfer it
  /// participates in). Barrier first and after.
  void charge_transfers(const std::vector<Transfer>& transfers,
                        double words_per_item) const;

  /// All-to-all personalized exchange: words_out[i][j] words from member i
  /// to member j. Cost per member: t_s * ceil(log2 p) + t_w * max(total
  /// sent, total received) [KGGK94, optimal hypercube algorithm]. Barrier
  /// semantics.
  void all_to_all_personalized(
      const std::vector<std::vector<double>>& words_out) const;

  /// Split a subcube group into its two half subcubes.
  [[nodiscard]] std::pair<Group, Group> halves() const;

  /// Merge with another group (rejoin): the union rank set. Clocks are
  /// synchronized to the union max.
  [[nodiscard]] Group merged_with(const Group& other) const;

 private:
  void trace(EventKind kind, double words, const char* detail) const;
  /// Note the upcoming collective in the machine's event recorder (kind,
  /// member set, total payload, hypercube rounds) so replay analyzers can
  /// label the barrier that follows. No-op without a recorder.
  void annotate(CollectiveKind kind, double words) const;
  /// Barrier that names the collective for deadlock/fault diagnostics.
  /// Admission first: transient faults matching this member set burn
  /// their retry budget (backed-off idle, Retry events) before the
  /// collective is allowed to proceed; exhausted budgets escalate to
  /// RankFailure inside admit_collective. Note that collectives on
  /// singleton groups return before reaching sync(), so transient plans
  /// never fire for a group of one.
  void sync(const char* what) const {
    machine_->admit_collective(ranks_, what);
    machine_->barrier_over(ranks_, what);
  }
  /// "group [lo..hi] of p" — rank context for precondition errors.
  [[nodiscard]] std::string describe() const;
  /// Throw std::invalid_argument when `words` is not a finite
  /// non-negative word count (uniform precondition check, mirroring
  /// all_to_all_personalized's matrix validation).
  void check_words(double words, const char* where) const;

  Machine* machine_;
  std::vector<Rank> ranks_;
  bool is_subcube_ = false;
  Subcube cube_{};
};

}  // namespace pdt::mpsim
