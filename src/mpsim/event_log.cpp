#include "mpsim/event_log.hpp"

#include <algorithm>
#include <cassert>

namespace pdt::mpsim {

void EventRecorder::bind(int nprocs, const CostModel& cost) {
  assert(nprocs >= 1);
  events_.clear();
  clocks_.assign(static_cast<std::size_t>(nprocs), 0.0);
  cost_ = cost;
  bound_ = true;
}

int EventRecorder::intern(std::string_view name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  names_.emplace_back(name);
  return static_cast<int>(names_.size() - 1);
}

void EventRecorder::open_phase(std::string_view name) {
  stack_.push_back(intern(name));
}

void EventRecorder::close_phase() {
  assert(!stack_.empty());
  stack_.pop_back();
}

void EventRecorder::record_charge(Rank r, ChargeKind kind, Time dt,
                                  Time latency, double words_sent,
                                  double words_received,
                                  std::uint64_t messages, int level) {
  assert(bound_);
  ExecEvent e;
  e.type = ExecEvent::Type::Charge;
  e.kind = kind;
  e.rank = r;
  e.phase = current_phase();
  e.level = level;
  e.dt_us = dt;
  e.latency_us = latency;
  e.words_sent = words_sent;
  e.words_received = words_received;
  e.messages = messages;
  events_.push_back(std::move(e));
  // Same arithmetic as Machine: the shadow clock stays bit-identical.
  clocks_[static_cast<std::size_t>(r)] += dt;
}

void EventRecorder::record_barrier(const char* what,
                                   const std::vector<Rank>& members) {
  assert(bound_);
  ExecEvent e;
  e.type = ExecEvent::Type::Barrier;
  e.what = what;
  e.members = members;
  events_.push_back(std::move(e));
  // Mirror of Machine::barrier_over's main path: horizon = max over the
  // member clocks, then every member is assigned (not added) up to it.
  Time horizon = 0.0;
  for (const Rank r : members) {
    horizon = std::max(horizon, clocks_[static_cast<std::size_t>(r)]);
  }
  for (const Rank r : members) {
    if (clocks_[static_cast<std::size_t>(r)] < horizon) {
      clocks_[static_cast<std::size_t>(r)] = horizon;
    }
  }
}

void EventRecorder::record_timeout(Rank dead,
                                   const std::vector<Rank>& survivors) {
  assert(bound_);
  ExecEvent e;
  e.type = ExecEvent::Type::Timeout;
  e.rank = dead;
  e.members = survivors;
  events_.push_back(std::move(e));
  // Mirror of Machine::charge_timeout.
  Time horizon = 0.0;
  for (const Rank r : survivors) {
    horizon = std::max(horizon, clocks_[static_cast<std::size_t>(r)]);
  }
  const Time deadline = horizon + cost_.t_timeout;
  for (const Rank r : survivors) {
    if (clocks_[static_cast<std::size_t>(r)] < deadline) {
      clocks_[static_cast<std::size_t>(r)] = deadline;
    }
  }
}

void EventRecorder::record_retry(Rank faulty,
                                 const std::vector<Rank>& members,
                                 double mult) {
  assert(bound_);
  ExecEvent e;
  e.type = ExecEvent::Type::Retry;
  e.rank = faulty;
  e.members = members;
  e.mult = mult;
  events_.push_back(std::move(e));
  // Mirror of Machine::charge_retry: every member waits out a backed-off
  // timeout window from the members' common horizon.
  Time horizon = 0.0;
  for (const Rank r : members) {
    horizon = std::max(horizon, clocks_[static_cast<std::size_t>(r)]);
  }
  const Time deadline = horizon + cost_.t_timeout * mult;
  for (const Rank r : members) {
    if (clocks_[static_cast<std::size_t>(r)] < deadline) {
      clocks_[static_cast<std::size_t>(r)] = deadline;
    }
  }
}

void EventRecorder::record_wait(Rank r, Time until) {
  assert(bound_);
  ExecEvent e;
  e.type = ExecEvent::Type::Wait;
  e.rank = r;
  e.until_us = until;
  events_.push_back(std::move(e));
  if (clocks_[static_cast<std::size_t>(r)] < until) {
    clocks_[static_cast<std::size_t>(r)] = until;
  }
}

void EventRecorder::record_wait_for(Rank r, Rank src) {
  assert(bound_);
  ExecEvent e;
  e.type = ExecEvent::Type::WaitFor;
  e.rank = r;
  e.peer = src;
  events_.push_back(std::move(e));
  const Time until = clocks_[static_cast<std::size_t>(src)];
  if (clocks_[static_cast<std::size_t>(r)] < until) {
    clocks_[static_cast<std::size_t>(r)] = until;
  }
}

void EventRecorder::record_collective(const char* kind,
                                      const std::vector<Rank>& members,
                                      double words, int dim) {
  assert(bound_);
  ExecEvent e;
  e.type = ExecEvent::Type::Collective;
  e.what = kind;
  e.members = members;
  e.words = words;
  e.dim = dim;
  events_.push_back(std::move(e));
}

Time EventRecorder::max_clock() const {
  Time t = 0.0;
  for (const Time c : clocks_) t = std::max(t, c);
  return t;
}

}  // namespace pdt::mpsim
