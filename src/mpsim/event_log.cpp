#include "mpsim/event_log.hpp"

#include <algorithm>
#include <cassert>

namespace pdt::mpsim {

void EventRecorder::bind(int nprocs, const CostModel& cost) {
  assert(nprocs >= 1);
  events_.clear();
  clocks_.assign(static_cast<std::size_t>(nprocs), 0.0);
  cost_ = cost;
  bound_ = true;
  primary_ = std::this_thread::get_id();
  // Rebinding implies the previous run is over; any worker events still
  // sitting unmerged in a ring belong to it and would corrupt the fresh
  // clocks, so discard them (the recorded/drop totals stay cumulative).
  std::lock_guard<std::mutex> g(slots_mu_);
  for (auto& slot : slots_) {
    slot->ring.tail.store(slot->ring.head.load(std::memory_order_acquire),
                          std::memory_order_release);
  }
}

bool EventRecorder::Ring::push(ExecEvent&& e) {
  const std::size_t h = head.load(std::memory_order_relaxed);
  const std::size_t t = tail.load(std::memory_order_acquire);
  if (h - t >= buf.size()) return false;
  buf[h % buf.size()] = std::move(e);
  head.store(h + 1, std::memory_order_release);
  return true;
}

EventRecorder::WorkerSlot* EventRecorder::worker_slot() {
  const std::thread::id me = std::this_thread::get_id();
  {
    std::lock_guard<std::mutex> g(slots_mu_);
    for (auto& slot : slots_) {
      if (slot->claimed.load(std::memory_order_relaxed) &&
          slot->owner == me) {
        return slot.get();
      }
    }
    if (static_cast<int>(slots_.size()) < kMaxWorkerSlots) {
      slots_.push_back(std::make_unique<WorkerSlot>());
      WorkerSlot* s = slots_.back().get();
      s->owner = me;
      s->claimed.store(true, std::memory_order_release);
      return s;
    }
  }
  return nullptr;
}

int EventRecorder::intern_locked(std::string_view name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  names_.emplace_back(name);
  return static_cast<int>(names_.size() - 1);
}

int EventRecorder::intern(std::string_view name) {
  std::lock_guard<std::mutex> g(names_mu_);
  return intern_locked(name);
}

void EventRecorder::open_phase(std::string_view name) {
  const int id = intern(name);
  if (on_primary()) {
    stack_.push_back(id);
    return;
  }
  if (WorkerSlot* s = worker_slot()) s->stack.push_back(id);
}

void EventRecorder::close_phase() {
  if (on_primary()) {
    assert(!stack_.empty());
    stack_.pop_back();
    return;
  }
  if (WorkerSlot* s = worker_slot()) {
    if (!s->stack.empty()) s->stack.pop_back();
  }
}

void EventRecorder::apply(ExecEvent&& e) {
  switch (e.type) {
    case ExecEvent::Type::Charge: {
      // Same arithmetic as Machine: the shadow clock stays bit-identical.
      const auto r = static_cast<std::size_t>(e.rank);
      events_.push_back(std::move(e));
      clocks_[r] += events_.back().dt_us;
      return;
    }
    case ExecEvent::Type::Barrier: {
      events_.push_back(std::move(e));
      // Mirror of Machine::barrier_over's main path: horizon = max over
      // the member clocks, then every member is assigned (not added) up
      // to it.
      Time horizon = 0.0;
      for (const Rank r : events_.back().members) {
        horizon = std::max(horizon, clocks_[static_cast<std::size_t>(r)]);
      }
      for (const Rank r : events_.back().members) {
        if (clocks_[static_cast<std::size_t>(r)] < horizon) {
          clocks_[static_cast<std::size_t>(r)] = horizon;
        }
      }
      return;
    }
    case ExecEvent::Type::Timeout: {
      events_.push_back(std::move(e));
      // Mirror of Machine::charge_timeout.
      Time horizon = 0.0;
      for (const Rank r : events_.back().members) {
        horizon = std::max(horizon, clocks_[static_cast<std::size_t>(r)]);
      }
      const Time deadline = horizon + cost_.t_timeout;
      for (const Rank r : events_.back().members) {
        if (clocks_[static_cast<std::size_t>(r)] < deadline) {
          clocks_[static_cast<std::size_t>(r)] = deadline;
        }
      }
      return;
    }
    case ExecEvent::Type::Retry: {
      events_.push_back(std::move(e));
      // Mirror of Machine::charge_retry: every member waits out a
      // backed-off timeout window from the members' common horizon.
      Time horizon = 0.0;
      for (const Rank r : events_.back().members) {
        horizon = std::max(horizon, clocks_[static_cast<std::size_t>(r)]);
      }
      const Time deadline = horizon + cost_.t_timeout * events_.back().mult;
      for (const Rank r : events_.back().members) {
        if (clocks_[static_cast<std::size_t>(r)] < deadline) {
          clocks_[static_cast<std::size_t>(r)] = deadline;
        }
      }
      return;
    }
    case ExecEvent::Type::Wait: {
      const auto r = static_cast<std::size_t>(e.rank);
      const Time until = e.until_us;
      events_.push_back(std::move(e));
      if (clocks_[r] < until) clocks_[r] = until;
      return;
    }
    case ExecEvent::Type::WaitFor: {
      const auto r = static_cast<std::size_t>(e.rank);
      const auto src = static_cast<std::size_t>(e.peer);
      events_.push_back(std::move(e));
      const Time until = clocks_[src];
      if (clocks_[r] < until) clocks_[r] = until;
      return;
    }
    case ExecEvent::Type::Collective: {
      events_.push_back(std::move(e));
      return;
    }
  }
}

void EventRecorder::record(ExecEvent&& e) {
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  if (on_primary()) {
    apply(std::move(e));
    return;
  }
  WorkerSlot* s = worker_slot();
  if (s == nullptr || !s->ring.push(std::move(e))) {
    ring_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ++s->recorded;
}

std::size_t EventRecorder::merge_shards() {
  assert(on_primary());
  std::vector<ExecEvent> pending;
  {
    std::lock_guard<std::mutex> g(slots_mu_);
    for (auto& slot : slots_) {
      Ring& ring = slot->ring;
      const std::size_t h = ring.head.load(std::memory_order_acquire);
      std::size_t t = ring.tail.load(std::memory_order_relaxed);
      for (; t != h; ++t) {
        pending.push_back(std::move(ring.buf[t % ring.buf.size()]));
      }
      ring.tail.store(t, std::memory_order_release);
    }
  }
  // Sequence stamps restore the global record order across rings; the
  // clock arithmetic is then applied exactly as if each event had been
  // recorded directly, so replay sees one causally ordered log.
  std::stable_sort(pending.begin(), pending.end(),
                   [](const ExecEvent& a, const ExecEvent& b) {
                     return a.seq < b.seq;
                   });
  const std::size_t n = pending.size();
  for (ExecEvent& e : pending) apply(std::move(e));
  merged_events_ += n;
  return n;
}

void EventRecorder::record_charge(Rank r, ChargeKind kind, Time dt,
                                  Time latency, double words_sent,
                                  double words_received,
                                  std::uint64_t messages, int level) {
  assert(bound_);
  ExecEvent e;
  e.type = ExecEvent::Type::Charge;
  e.kind = kind;
  e.rank = r;
  if (on_primary()) {
    e.phase = stack_.empty() ? 0 : stack_.back();
  } else if (WorkerSlot* s = worker_slot()) {
    e.phase = s->stack.empty() ? 0 : s->stack.back();
  }
  e.level = level;
  e.dt_us = dt;
  e.latency_us = latency;
  e.words_sent = words_sent;
  e.words_received = words_received;
  e.messages = messages;
  record(std::move(e));
}

void EventRecorder::record_barrier(const char* what,
                                   const std::vector<Rank>& members) {
  assert(bound_);
  ExecEvent e;
  e.type = ExecEvent::Type::Barrier;
  e.what = what;
  e.members = members;
  record(std::move(e));
}

void EventRecorder::record_timeout(Rank dead,
                                   const std::vector<Rank>& survivors) {
  assert(bound_);
  ExecEvent e;
  e.type = ExecEvent::Type::Timeout;
  e.rank = dead;
  e.members = survivors;
  record(std::move(e));
}

void EventRecorder::record_retry(Rank faulty,
                                 const std::vector<Rank>& members,
                                 double mult) {
  assert(bound_);
  ExecEvent e;
  e.type = ExecEvent::Type::Retry;
  e.rank = faulty;
  e.members = members;
  e.mult = mult;
  record(std::move(e));
}

void EventRecorder::record_wait(Rank r, Time until) {
  assert(bound_);
  ExecEvent e;
  e.type = ExecEvent::Type::Wait;
  e.rank = r;
  e.until_us = until;
  record(std::move(e));
}

void EventRecorder::record_wait_for(Rank r, Rank src) {
  assert(bound_);
  ExecEvent e;
  e.type = ExecEvent::Type::WaitFor;
  e.rank = r;
  e.peer = src;
  record(std::move(e));
}

void EventRecorder::record_collective(const char* kind,
                                      const std::vector<Rank>& members,
                                      double words, int dim) {
  assert(bound_);
  ExecEvent e;
  e.type = ExecEvent::Type::Collective;
  e.what = kind;
  e.members = members;
  e.words = words;
  e.dim = dim;
  record(std::move(e));
}

std::vector<EventRecorder::WorkerStats> EventRecorder::worker_stats() const {
  std::vector<WorkerStats> out;
  std::lock_guard<std::mutex> g(slots_mu_);
  int i = 0;
  for (const auto& slot : slots_) {
    out.push_back(WorkerStats{i++, slot->recorded});
  }
  return out;
}

Time EventRecorder::max_clock() const {
  Time t = 0.0;
  for (const Time c : clocks_) t = std::max(t, c);
  return t;
}

}  // namespace pdt::mpsim
