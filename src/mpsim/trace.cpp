#include "mpsim/trace.hpp"

#include <algorithm>

namespace pdt::mpsim {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::Compute: return "compute";
    case EventKind::AllReduce: return "all-reduce";
    case EventKind::Broadcast: return "broadcast";
    case EventKind::PointToPoint: return "point-to-point";
    case EventKind::MovingPhase: return "moving-phase";
    case EventKind::LoadBalance: return "load-balance";
    case EventKind::PartitionSplit: return "partition-split";
    case EventKind::Rejoin: return "rejoin";
    case EventKind::Barrier: return "barrier";
    case EventKind::Checkpoint: return "checkpoint";
    case EventKind::RankFail: return "rank-fail";
    case EventKind::Recovery: return "recovery";
    case EventKind::Retry: return "retry";
    case EventKind::Resume: return "resume";
    case EventKind::Note: return "note";
  }
  return "?";
}

std::size_t Trace::count(EventKind k) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [k](const TraceEvent& e) { return e.kind == k; }));
}

}  // namespace pdt::mpsim
