// Event-sourced execution log for the simulated machine.
//
// An EventRecorder attached to a Machine captures the complete causal
// history of a run: every clock charge (with its phase/level stamp and,
// for communication, the latency/bandwidth decomposition), every barrier
// with its member set, every fault-detection timeout, and every collective
// annotation. Event order in the log *is* the happens-before order — the
// simulator is sequential, so the recording sequence totally orders the
// partial order the algorithm induced.
//
// The recorder keeps its own shadow clocks, advanced with arithmetic
// identical to Machine's (+= for charges, max-assignment for barriers), so
// that (a) the final clocks survive the Machine's destruction into the
// serialized log, and (b) an offline replay of the log against the same
// cost model reproduces every per-rank clock bit-exactly. That identity is
// the contract `tools/pdt-replay --check` and the replay test suite
// enforce; what-if replays (different constants) rescale each charge by
// the ratio of the constants instead.
//
// Charges are recorded *post* fault-injector scaling: a straggler's 2x
// charges appear as their doubled durations, so a recorded faulty run
// replays to the faulty clocks without the replayer knowing about faults.
//
// Like ChargeObserver, the recorder is strictly passive and lives in
// mpsim so that Machine can call it without depending on obs; the obs
// layer owns one (obs::Observability::enable_event_log) and serializes it
// (obs::write_events, schema "pdt-events-v1").
//
// Thread-safety (DESIGN.md §14): primary-thread direct, worker-thread
// ring-buffered. The thread that calls bind() is the primary recording
// thread; its events append directly and advance the shadow clocks
// exactly as before. Any other thread records through a claimed
// per-thread bounded SPSC ring (a full ring drops the event and counts
// it — never blocks, never races); every event carries a global
// sequence stamp. merge_shards(), called from the primary after workers
// quiesce, drains all rings, orders the drained events by stamp, and
// applies them — append plus the identical clock arithmetic — so the
// serialized log preserves the causal order pdt-replay needs. A
// single-thread run never touches a ring and its log is byte-identical
// to the pre-sharding recorder's.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "mpsim/cost_model.hpp"
#include "mpsim/observer.hpp"
#include "mpsim/topology.hpp"

namespace pdt::mpsim {

/// One entry of the execution log. The index in EventRecorder::events()
/// is the event's sequence number (happens-before order).
struct ExecEvent {
  enum class Type : std::uint8_t {
    Charge,      ///< compute / comm / io clock advance on one rank
    Barrier,     ///< members synchronized at their common horizon
    Timeout,     ///< survivors waited out t_timeout for a dead member
    Wait,        ///< one rank advanced to an absolute time
    WaitFor,     ///< one rank advanced to another rank's current clock
    Collective,  ///< annotation: a Group collective is about to run
    Retry,       ///< a transient collective failure: members waited out a
                 ///< backed-off timeout window blamed on one faulty rank
  };

  Type type = Type::Charge;
  ChargeKind kind = ChargeKind::Compute;  ///< Charge only
  Rank rank = -1;   ///< Charge/Wait/WaitFor subject; Timeout: dead rank
  Rank peer = -1;   ///< WaitFor: the rank whose clock was waited on
  int phase = 0;    ///< interned phase id at record time (Charge only)
  int level = -1;   ///< tree level of the charged rank (Charge only)
  Time dt_us = 0.0;       ///< Charge: amount (post fault-injector scaling)
  Time latency_us = 0.0;  ///< Comm charge: the t_s-proportional part of dt
  Time until_us = 0.0;    ///< Wait: absolute target time
  double words_sent = 0.0;
  double words_received = 0.0;
  std::uint64_t messages = 0;
  int dim = 0;              ///< Collective: hypercube rounds
  double words = 0.0;       ///< Collective: total payload words
  double mult = 1.0;        ///< Retry: backoff multiplier on t_timeout
  const char* what = "";    ///< Barrier/Collective label (string literal)
  std::vector<Rank> members;  ///< Barrier/Timeout/Collective member set
  /// Global record-order stamp (not serialized): merge_shards() uses it
  /// to restore causal order across per-thread rings.
  std::uint64_t seq = 0;
};

class EventRecorder {
 public:
  /// Worker ring capacity (events per recording worker thread between
  /// merges); a full ring drops and counts instead of blocking.
  static constexpr std::size_t kRingCapacity = 8192;
  /// Worker threads that can record concurrently; later claimants drop.
  static constexpr int kMaxWorkerSlots = 64;

  /// (Re)bind to a machine of `nprocs` ranks using `cost`: clears the
  /// event log and shadow clocks and makes the calling thread the
  /// primary recording thread. Called by Machine::set_event_recorder
  /// and Machine::reset; the interned phase names and the open phase
  /// stacks survive, since phase scopes may already be open when the
  /// machine is created. Pending (unmerged) worker events are discarded.
  void bind(int nprocs, const CostModel& cost);
  [[nodiscard]] bool bound() const { return bound_; }

  // -- Machine hooks (passive; called after the machine's own update) --
  void record_charge(Rank r, ChargeKind kind, Time dt, Time latency,
                     double words_sent, double words_received,
                     std::uint64_t messages, int level);
  void record_barrier(const char* what, const std::vector<Rank>& members);
  void record_timeout(Rank dead, const std::vector<Rank>& survivors);
  void record_retry(Rank faulty, const std::vector<Rank>& members,
                    double mult);
  void record_wait(Rank r, Time until);
  void record_wait_for(Rank r, Rank src);
  void record_collective(const char* kind, const std::vector<Rank>& members,
                         double words, int dim);

  // -- Phase sink (obs::PhaseProfiler forwards its scopes here) --
  void open_phase(std::string_view name);
  void close_phase();

  /// Drain every worker ring, restore global order by sequence stamp,
  /// and apply the drained events (append + shadow-clock arithmetic).
  /// Primary-thread only, after the workers have quiesced. Returns the
  /// number of events merged. Single-thread runs never need it.
  std::size_t merge_shards();

  [[nodiscard]] const std::vector<ExecEvent>& events() const {
    return events_;
  }
  /// Interned phase names; index == ExecEvent::phase. names()[0] is
  /// "(unattributed)".
  [[nodiscard]] const std::vector<std::string>& phase_names() const {
    return names_;
  }
  [[nodiscard]] int nprocs() const { return static_cast<int>(clocks_.size()); }
  [[nodiscard]] const CostModel& cost() const { return cost_; }
  /// Shadow clocks — equal to the machine's per-rank clocks after every
  /// recorded event (bit-exactly; tests enforce it).
  [[nodiscard]] const std::vector<Time>& clocks() const { return clocks_; }
  [[nodiscard]] Time max_clock() const;

  /// Worker events dropped on full rings or exhausted worker slots.
  [[nodiscard]] std::uint64_t ring_dropped() const {
    return ring_dropped_.load(std::memory_order_relaxed);
  }
  /// Cumulative events drained by merge_shards().
  [[nodiscard]] std::uint64_t merged_events() const { return merged_events_; }
  /// Worker slots claimed so far with the events each recorded
  /// (cumulative), in claim order. Quiesced-readers only.
  struct WorkerStats {
    int slot = 0;
    std::uint64_t recorded = 0;
  };
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;

 private:
  /// Bounded SPSC ring: the owning worker pushes, merge_shards() pops.
  struct Ring {
    std::vector<ExecEvent> buf = std::vector<ExecEvent>(kRingCapacity);
    std::atomic<std::size_t> head{0};  ///< next write (producer-owned)
    std::atomic<std::size_t> tail{0};  ///< next read (consumer-owned)

    bool push(ExecEvent&& e);
  };
  struct WorkerSlot {
    std::atomic<bool> claimed{false};
    std::thread::id owner;
    Ring ring;
    std::vector<int> stack;           ///< the worker's open-phase stack
    std::uint64_t recorded = 0;       ///< events pushed (owner-written)
  };

  [[nodiscard]] int intern(std::string_view name);
  [[nodiscard]] int intern_locked(std::string_view name);
  [[nodiscard]] bool on_primary() const {
    return std::this_thread::get_id() == primary_;
  }
  /// The calling worker's slot, claimed on first use; nullptr when all
  /// kMaxWorkerSlots are taken (the caller drops and counts).
  WorkerSlot* worker_slot();
  /// Append + shadow-clock arithmetic, shared by the primary direct
  /// path and the merge-on-flush path.
  void apply(ExecEvent&& e);
  void record(ExecEvent&& e);

  std::vector<ExecEvent> events_;
  std::vector<std::string> names_{"(unattributed)"};
  std::vector<int> stack_;
  std::vector<Time> clocks_;
  CostModel cost_{};
  bool bound_ = false;

  std::thread::id primary_ = std::this_thread::get_id();
  std::atomic<std::uint64_t> seq_{0};
  std::mutex names_mu_;
  mutable std::mutex slots_mu_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::atomic<std::uint64_t> ring_dropped_{0};
  std::uint64_t merged_events_ = 0;
};

}  // namespace pdt::mpsim
