// Event-sourced execution log for the simulated machine.
//
// An EventRecorder attached to a Machine captures the complete causal
// history of a run: every clock charge (with its phase/level stamp and,
// for communication, the latency/bandwidth decomposition), every barrier
// with its member set, every fault-detection timeout, and every collective
// annotation. Event order in the log *is* the happens-before order — the
// simulator is sequential, so the recording sequence totally orders the
// partial order the algorithm induced.
//
// The recorder keeps its own shadow clocks, advanced with arithmetic
// identical to Machine's (+= for charges, max-assignment for barriers), so
// that (a) the final clocks survive the Machine's destruction into the
// serialized log, and (b) an offline replay of the log against the same
// cost model reproduces every per-rank clock bit-exactly. That identity is
// the contract `tools/pdt-replay --check` and the replay test suite
// enforce; what-if replays (different constants) rescale each charge by
// the ratio of the constants instead.
//
// Charges are recorded *post* fault-injector scaling: a straggler's 2x
// charges appear as their doubled durations, so a recorded faulty run
// replays to the faulty clocks without the replayer knowing about faults.
//
// Like ChargeObserver, the recorder is strictly passive and lives in
// mpsim so that Machine can call it without depending on obs; the obs
// layer owns one (obs::Observability::enable_event_log) and serializes it
// (obs::write_events, schema "pdt-events-v1").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mpsim/cost_model.hpp"
#include "mpsim/observer.hpp"
#include "mpsim/topology.hpp"

namespace pdt::mpsim {

/// One entry of the execution log. The index in EventRecorder::events()
/// is the event's sequence number (happens-before order).
struct ExecEvent {
  enum class Type : std::uint8_t {
    Charge,      ///< compute / comm / io clock advance on one rank
    Barrier,     ///< members synchronized at their common horizon
    Timeout,     ///< survivors waited out t_timeout for a dead member
    Wait,        ///< one rank advanced to an absolute time
    WaitFor,     ///< one rank advanced to another rank's current clock
    Collective,  ///< annotation: a Group collective is about to run
    Retry,       ///< a transient collective failure: members waited out a
                 ///< backed-off timeout window blamed on one faulty rank
  };

  Type type = Type::Charge;
  ChargeKind kind = ChargeKind::Compute;  ///< Charge only
  Rank rank = -1;   ///< Charge/Wait/WaitFor subject; Timeout: dead rank
  Rank peer = -1;   ///< WaitFor: the rank whose clock was waited on
  int phase = 0;    ///< interned phase id at record time (Charge only)
  int level = -1;   ///< tree level of the charged rank (Charge only)
  Time dt_us = 0.0;       ///< Charge: amount (post fault-injector scaling)
  Time latency_us = 0.0;  ///< Comm charge: the t_s-proportional part of dt
  Time until_us = 0.0;    ///< Wait: absolute target time
  double words_sent = 0.0;
  double words_received = 0.0;
  std::uint64_t messages = 0;
  int dim = 0;              ///< Collective: hypercube rounds
  double words = 0.0;       ///< Collective: total payload words
  double mult = 1.0;        ///< Retry: backoff multiplier on t_timeout
  const char* what = "";    ///< Barrier/Collective label (string literal)
  std::vector<Rank> members;  ///< Barrier/Timeout/Collective member set
};

class EventRecorder {
 public:
  /// (Re)bind to a machine of `nprocs` ranks using `cost`: clears the
  /// event log and shadow clocks. Called by Machine::set_event_recorder
  /// and Machine::reset; the interned phase names and the open phase
  /// stack survive, since phase scopes may already be open when the
  /// machine is created.
  void bind(int nprocs, const CostModel& cost);
  [[nodiscard]] bool bound() const { return bound_; }

  // -- Machine hooks (passive; called after the machine's own update) --
  void record_charge(Rank r, ChargeKind kind, Time dt, Time latency,
                     double words_sent, double words_received,
                     std::uint64_t messages, int level);
  void record_barrier(const char* what, const std::vector<Rank>& members);
  void record_timeout(Rank dead, const std::vector<Rank>& survivors);
  void record_retry(Rank faulty, const std::vector<Rank>& members,
                    double mult);
  void record_wait(Rank r, Time until);
  void record_wait_for(Rank r, Rank src);
  void record_collective(const char* kind, const std::vector<Rank>& members,
                         double words, int dim);

  // -- Phase sink (obs::PhaseProfiler forwards its scopes here) --
  void open_phase(std::string_view name);
  void close_phase();

  [[nodiscard]] const std::vector<ExecEvent>& events() const {
    return events_;
  }
  /// Interned phase names; index == ExecEvent::phase. names()[0] is
  /// "(unattributed)".
  [[nodiscard]] const std::vector<std::string>& phase_names() const {
    return names_;
  }
  [[nodiscard]] int nprocs() const { return static_cast<int>(clocks_.size()); }
  [[nodiscard]] const CostModel& cost() const { return cost_; }
  /// Shadow clocks — equal to the machine's per-rank clocks after every
  /// recorded event (bit-exactly; tests enforce it).
  [[nodiscard]] const std::vector<Time>& clocks() const { return clocks_; }
  [[nodiscard]] Time max_clock() const;

 private:
  [[nodiscard]] int intern(std::string_view name);
  [[nodiscard]] int current_phase() const {
    return stack_.empty() ? 0 : stack_.back();
  }

  std::vector<ExecEvent> events_;
  std::vector<std::string> names_{"(unattributed)"};
  std::vector<int> stack_;
  std::vector<Time> clocks_;
  CostModel cost_{};
  bool bound_ = false;
};

}  // namespace pdt::mpsim
