#include "mpsim/comm_ledger.hpp"

#include <algorithm>
#include <cassert>

namespace pdt::mpsim {

const char* to_string(CollectiveKind k) {
  switch (k) {
    case CollectiveKind::AllReduce: return "all-reduce";
    case CollectiveKind::Broadcast: return "broadcast";
    case CollectiveKind::PairwiseExchange: return "pairwise-exchange";
    case CollectiveKind::Transfers: return "transfers";
    case CollectiveKind::AllToAll: return "all-to-all";
  }
  return "?";
}

void CommLedger::ensure_ranks(int n) {
  if (n <= n_) return;
  std::vector<double> words(static_cast<std::size_t>(n) *
                            static_cast<std::size_t>(n), 0.0);
  std::vector<std::uint64_t> messages(words.size(), 0);
  for (Rank f = 0; f < n_; ++f) {
    for (Rank t = 0; t < n_; ++t) {
      const std::size_t src = cell(f, t);
      const std::size_t dst = static_cast<std::size_t>(f) *
                                  static_cast<std::size_t>(n) +
                              static_cast<std::size_t>(t);
      words[dst] = words_[src];
      messages[dst] = messages_[src];
    }
  }
  words_ = std::move(words);
  messages_ = std::move(messages);
  n_ = n;
}

int CommLedger::set_level(int level) {
  const int prev = level_;
  level_ = level;
  return prev;
}

void CommLedger::record(CollectiveEntry e) {
  e.level = level_;
  max_level_ = std::max(max_level_, e.level);
  entries_.push_back(e);
}

void CommLedger::add_traffic(Rank from, Rank to, double words,
                             std::uint64_t messages) {
  ensure_ranks(std::max(from, to) + 1);
  assert(from >= 0 && to >= 0 && words >= 0.0);
  words_[cell(from, to)] += words;
  messages_[cell(from, to)] += messages;
}

double CommLedger::words(Rank from, Rank to) const {
  if (from >= n_ || to >= n_) return 0.0;
  return words_[cell(from, to)];
}

std::uint64_t CommLedger::messages(Rank from, Rank to) const {
  if (from >= n_ || to >= n_) return 0;
  return messages_[cell(from, to)];
}

double CommLedger::words_sent(Rank r) const {
  double sum = 0.0;
  if (r >= n_) return sum;
  for (Rank t = 0; t < n_; ++t) sum += words_[cell(r, t)];
  return sum;
}

double CommLedger::words_received(Rank r) const {
  double sum = 0.0;
  if (r >= n_) return sum;
  for (Rank f = 0; f < n_; ++f) sum += words_[cell(f, r)];
  return sum;
}

namespace {

void accumulate(CommLedger::Totals& t, const CollectiveEntry& e) {
  ++t.calls;
  t.words += e.words;
  t.predicted_us += e.predicted_us;
  t.measured_us += e.measured_us;
  t.io_us += e.io_us;
  t.retry_us += e.retry_us;
  t.messages += e.messages;
  t.retries += e.retries;
}

}  // namespace

CommLedger::Totals CommLedger::kind_totals(CollectiveKind k) const {
  Totals t;
  for (const CollectiveEntry& e : entries_) {
    if (e.kind == k) accumulate(t, e);
  }
  return t;
}

CommLedger::Totals CommLedger::level_totals(int level) const {
  Totals t;
  for (const CollectiveEntry& e : entries_) {
    if (e.level == level) accumulate(t, e);
  }
  return t;
}

void CommLedger::clear() {
  entries_.clear();
  std::fill(words_.begin(), words_.end(), 0.0);
  std::fill(messages_.begin(), messages_.end(), 0);
  max_level_ = -1;
}

}  // namespace pdt::mpsim
