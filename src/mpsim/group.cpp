#include "mpsim/group.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "mpsim/comm_ledger.hpp"
#include "mpsim/event_log.hpp"

namespace pdt::mpsim {

Group::Group(Machine& m, Subcube cube)
    : machine_(&m), ranks_(cube.ranks()), is_subcube_(true), cube_(cube) {
  assert(cube.valid());
  assert(cube.base + cube.size <= m.size());
}

Group::Group(Machine& m, std::vector<Rank> ranks)
    : machine_(&m), ranks_(std::move(ranks)) {
  assert(!ranks_.empty());
  // Detect whether the rank list happens to be an aligned subcube, so that
  // merged groups that reconstitute a subcube regain cheap split semantics.
  std::sort(ranks_.begin(), ranks_.end());
  const int n = static_cast<int>(ranks_.size());
  const bool contiguous = ranks_.back() - ranks_.front() + 1 == n;
  Subcube cube{ranks_.front(), n};
  if (contiguous && cube.valid()) {
    is_subcube_ = true;
    cube_ = cube;
  }
}

Group Group::whole(Machine& m) {
  if (is_pow2(m.size())) return Group(m, Subcube{0, m.size()});
  std::vector<Rank> all(static_cast<std::size_t>(m.size()));
  std::iota(all.begin(), all.end(), 0);
  return Group(m, std::move(all));
}

Time Group::horizon() const {
  Time t = 0.0;
  for (Rank r : ranks_) t = std::max(t, machine_->clock(r));
  return t;
}

std::string Group::describe() const {
  return "group [" + std::to_string(ranks_.front()) + ".." +
         std::to_string(ranks_.back()) + "] of " + std::to_string(size());
}

void Group::check_words(double words, const char* where) const {
  if (!std::isfinite(words) || words < 0.0) {
    throw std::invalid_argument(std::string("Group::") + where + ": " +
                                describe() +
                                ": word count must be finite and "
                                "non-negative");
  }
}

void Group::barrier() const { machine_->barrier_over(ranks_); }

void Group::annotate(CollectiveKind kind, double words) const {
  if (EventRecorder* rec = machine_->event_recorder()) {
    rec->record_collective(to_string(kind), ranks_, words, dimension());
  }
}

void Group::trace(EventKind kind, double words, const char* detail) const {
  if (!machine_->trace().enabled()) return;
  TraceEvent ev;
  ev.time = horizon();
  ev.kind = kind;
  ev.rank = ranks_.front();
  ev.group_base = ranks_.front();
  ev.group_size = size();
  ev.words = words;
  ev.detail = detail;
  machine_->trace().record(ev);
}

namespace {

// Message staging held only for the duration of a collective. Words are
// 4-byte units; rounding to integer bytes keeps charge/release pairs
// exact even for the fractional per-round volumes of all-to-all.
[[nodiscard]] std::int64_t staging_bytes(double words) {
  return std::llround(words * 4.0);
}

template <typename T>
void reduce_buffers(const std::vector<T*>& bufs, std::size_t len) {
  // Element-wise sum into bufs[0], then copy back out to every buffer.
  // The simulated collective is a recursive doubling all-reduce; in the
  // shared address space the arithmetic result is the same.
  for (std::size_t b = 1; b < bufs.size(); ++b) {
    T* acc = bufs[0];
    const T* src = bufs[b];
    for (std::size_t i = 0; i < len; ++i) acc[i] += src[i];
  }
  for (std::size_t b = 1; b < bufs.size(); ++b) {
    std::copy(bufs[0], bufs[0] + len, bufs[b]);
  }
}

}  // namespace

namespace {

void check_buffer_count(std::size_t bufs, int group_size,
                        const std::string& group) {
  if (static_cast<int>(bufs) != group_size) {
    throw std::invalid_argument(
        "Group::all_reduce_sum: " + group + ": expected one buffer per "
        "member, got " + std::to_string(bufs));
  }
}

}  // namespace

void Group::all_reduce_sum(const std::vector<std::int64_t*>& bufs,
                           std::size_t len, double words) const {
  check_buffer_count(bufs.size(), size(), describe());
  reduce_buffers(bufs, len);
  if (words < 0.0) {
    words = static_cast<double>(len) * sizeof(std::int64_t) / 4.0;
  }
  charge_all_reduce(words);
}

void Group::all_reduce_sum(const std::vector<double*>& bufs, std::size_t len,
                           double words) const {
  check_buffer_count(bufs.size(), size(), describe());
  reduce_buffers(bufs, len);
  if (words < 0.0) {
    words = static_cast<double>(len) * sizeof(double) / 4.0;
  }
  charge_all_reduce(words);
}

void Group::charge_all_reduce(double words) const {
  check_words(words, "charge_all_reduce");
  if (size() <= 1) return;
  annotate(CollectiveKind::AllReduce, words);
  sync("all-reduce");
  const Machine::RetryAccrual retry = machine_->take_retry_accrual();
  const CostModel& cm = machine_->cost();
  const int rounds = dimension();
  // Recursive doubling (the paper's Eq. 2): one full-size exchange per
  // hypercube dimension.
  const Time cost = cm.all_reduce(words, size());
  const Time latency = cm.t_s * rounds;
  // Recursive doubling holds one shadow buffer of the payload per member
  // while the exchange is in flight.
  const std::int64_t staging = staging_bytes(words);
  for (Rank r : ranks_) {
    machine_->alloc_bytes(r, MemTag::CollectiveBuffer, staging);
  }
  for (Rank r : ranks_) {
    machine_->charge_comm(r, cost, words * rounds, words * rounds,
                          static_cast<std::uint64_t>(rounds), latency);
  }
  for (Rank r : ranks_) {
    machine_->free_bytes(r, MemTag::CollectiveBuffer, staging);
  }
  if (CommLedger* ledger = machine_->comm_ledger()) {
    CollectiveEntry e;
    e.kind = CollectiveKind::AllReduce;
    e.group_base = ranks_.front();
    e.group_size = size();
    e.words = words;
    // Every member is charged the Eq. 2 formula directly, so measured
    // and predicted coincide bit-exactly.
    e.predicted_us = cost * size();
    e.measured_us = e.predicted_us;
    e.retry_us = retry.us;
    e.retries = retry.attempts;
    const int p = size();
    for (int d = 0; d < rounds; ++d) {
      for (int i = 0; i < p; ++i) {
        const int partner = i ^ (1 << d);
        if (partner < p) {
          ledger->add_traffic(rank(i), rank(partner), words);
          ++e.messages;
        }
      }
    }
    ledger->record(e);
  }
  trace(EventKind::AllReduce, words, "all-reduce");
}

void Group::charge_broadcast(double words) const {
  check_words(words, "charge_broadcast");
  if (size() <= 1) return;
  annotate(CollectiveKind::Broadcast, words);
  sync("broadcast");
  const Machine::RetryAccrual retry = machine_->take_retry_accrual();
  const CostModel& cm = machine_->cost();
  const int rounds = dimension();
  const Time cost = cm.broadcast(words, size());
  const Time latency = cm.t_s * rounds;
  const std::int64_t staging = staging_bytes(words);
  for (Rank r : ranks_) {
    machine_->alloc_bytes(r, MemTag::CollectiveBuffer, staging);
  }
  for (Rank r : ranks_) {
    machine_->charge_comm(r, cost, words, words,
                          static_cast<std::uint64_t>(rounds), latency);
  }
  for (Rank r : ranks_) {
    machine_->free_bytes(r, MemTag::CollectiveBuffer, staging);
  }
  if (CommLedger* ledger = machine_->comm_ledger()) {
    CollectiveEntry e;
    e.kind = CollectiveKind::Broadcast;
    e.group_base = ranks_.front();
    e.group_size = size();
    e.words = words;
    e.predicted_us = cost * size();
    e.measured_us = e.predicted_us;
    e.retry_us = retry.us;
    e.retries = retry.attempts;
    // Binomial tree rooted at the first member: in round d the members
    // that already hold the payload (indices < 2^d) send it 2^d ahead.
    const int p = size();
    for (int d = 0; d < rounds; ++d) {
      for (int i = 0; i < (1 << d); ++i) {
        const int target = i + (1 << d);
        if (target < p) {
          ledger->add_traffic(rank(i), rank(target), words);
          ++e.messages;
        }
      }
    }
    ledger->record(e);
  }
  trace(EventKind::Broadcast, words, "broadcast");
}

void Group::pairwise_exchange(const std::vector<double>& words_out) const {
  if (static_cast<int>(words_out.size()) != size()) {
    throw std::invalid_argument(
        "Group::pairwise_exchange: " + describe() +
        ": words_out must have one entry per member, got " +
        std::to_string(words_out.size()));
  }
  if (size() % 2 != 0) {
    throw std::invalid_argument("Group::pairwise_exchange: " + describe() +
                                ": requires an even-sized group");
  }
  for (const double w : words_out) check_words(w, "pairwise_exchange");
  annotate(CollectiveKind::PairwiseExchange,
           std::accumulate(words_out.begin(), words_out.end(), 0.0));
  sync("pairwise-exchange");
  Machine::RetryAccrual retry = machine_->take_retry_accrual();
  const CostModel& cm = machine_->cost();
  const int half = size() / 2;
  CommLedger* ledger = machine_->comm_ledger();
  double total = 0.0;
  Time predicted = 0.0;
  Time max_member = 0.0;
  Time io_total = 0.0;
  for (int i = 0; i < half; ++i) {
    // Member i pairs with member i + half. For a subcube this is exactly
    // the partner across the highest free dimension.
    const double out_a = words_out[static_cast<std::size_t>(i)];
    const double out_b = words_out[static_cast<std::size_t>(i + half)];
    const double lf = machine_->link_factor(rank(i), rank(i + half));
    const Time cost = (cm.t_s + cm.t_w * std::max(out_a, out_b)) * lf;
    const Time latency = cm.t_s * lf;
    // Both endpoints stage the outbound payload plus the inbound one.
    const std::int64_t staging = staging_bytes(out_a + out_b);
    machine_->alloc_bytes(rank(i), MemTag::CollectiveBuffer, staging);
    machine_->alloc_bytes(rank(i + half), MemTag::CollectiveBuffer, staging);
    machine_->charge_comm(rank(i), cost, out_a, out_b, 1, latency);
    machine_->charge_comm(rank(i + half), cost, out_b, out_a, 1, latency);
    machine_->free_bytes(rank(i), MemTag::CollectiveBuffer, staging);
    machine_->free_bytes(rank(i + half), MemTag::CollectiveBuffer, staging);
    // Records live in disk-resident attribute lists: the sender reads what
    // it ships, the receiver writes what arrives.
    const Time io = cm.t_io * (out_a + out_b);
    machine_->charge_io(rank(i), io);
    machine_->charge_io(rank(i + half), io);
    total += out_a + out_b;
    if (ledger != nullptr) {
      predicted += cost + cost;
      max_member = std::max(max_member, cost);
      io_total += io + io;
      ledger->add_traffic(rank(i), rank(i + half), out_a);
      ledger->add_traffic(rank(i + half), rank(i), out_b);
    }
  }
  sync("pairwise-exchange");
  {
    const Machine::RetryAccrual trailing = machine_->take_retry_accrual();
    retry.us += trailing.us;
    retry.attempts += trailing.attempts;
  }
  if (ledger != nullptr) {
    CollectiveEntry e;
    e.kind = CollectiveKind::PairwiseExchange;
    e.group_base = ranks_.front();
    e.group_size = size();
    e.words = total;
    e.predicted_us = predicted;
    // Unequal pair volumes serialize at the trailing barrier: every
    // member effectively pays for the heaviest pair.
    e.measured_us = max_member * size();
    e.io_us = io_total;
    e.retry_us = retry.us;
    e.retries = retry.attempts;
    e.messages = static_cast<std::uint64_t>(size());
    ledger->record(e);
  }
  trace(EventKind::MovingPhase, total, "pairwise exchange");
}

std::vector<Transfer> Group::plan_balance(
    const std::vector<std::int64_t>& counts) {
  const std::int64_t total =
      std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
  const int p = static_cast<int>(counts.size());
  const std::int64_t base = total / p;
  std::int64_t extra = total % p;  // first `extra` members get base + 1

  std::vector<std::int64_t> target(counts.size());
  for (int i = 0; i < p; ++i) {
    target[static_cast<std::size_t>(i)] = base + (i < extra ? 1 : 0);
  }

  // Two-pointer matching of surplus members against deficit members.
  std::vector<Transfer> transfers;
  int donor = 0;
  int taker = 0;
  std::vector<std::int64_t> cur = counts;
  while (true) {
    while (donor < p && cur[static_cast<std::size_t>(donor)] <=
                            target[static_cast<std::size_t>(donor)]) {
      ++donor;
    }
    while (taker < p && cur[static_cast<std::size_t>(taker)] >=
                            target[static_cast<std::size_t>(taker)]) {
      ++taker;
    }
    if (donor >= p || taker >= p) break;
    const std::int64_t give =
        std::min(cur[static_cast<std::size_t>(donor)] -
                     target[static_cast<std::size_t>(donor)],
                 target[static_cast<std::size_t>(taker)] -
                     cur[static_cast<std::size_t>(taker)]);
    transfers.push_back(Transfer{donor, taker, give});
    cur[static_cast<std::size_t>(donor)] -= give;
    cur[static_cast<std::size_t>(taker)] += give;
  }
  return transfers;
}

void Group::charge_transfers(const std::vector<Transfer>& transfers,
                             double words_per_item) const {
  check_words(words_per_item, "charge_transfers");
  for (const Transfer& t : transfers) {
    if (t.from < 0 || t.from >= size() || t.to < 0 || t.to >= size() ||
        t.count < 0) {
      throw std::invalid_argument(
          "Group::charge_transfers: " + describe() +
          ": transfer " + std::to_string(t.from) + "->" +
          std::to_string(t.to) + " x" + std::to_string(t.count) +
          " is outside the group or negative");
    }
  }
  double plan_words = 0.0;
  for (const Transfer& t : transfers) {
    plan_words += static_cast<double>(t.count) * words_per_item;
  }
  annotate(CollectiveKind::Transfers, plan_words);
  sync("load-balance");
  Machine::RetryAccrual retry = machine_->take_retry_accrual();
  const CostModel& cm = machine_->cost();
  // Each member pays t_w for every word it sends or receives, plus one
  // start-up per transfer it participates in. Transfers between disjoint
  // pairs overlap; we charge per-member serialized cost, which matches the
  // Eq. 3/4 bound of 2*(N/P)*t_w when counts are within [0, 2N/P].
  std::vector<Time> member_cost(static_cast<std::size_t>(size()), 0.0);
  std::vector<Time> member_latency(static_cast<std::size_t>(size()), 0.0);
  std::vector<double> member_words(static_cast<std::size_t>(size()), 0.0);
  CommLedger* ledger = machine_->comm_ledger();
  double total_words = 0.0;
  for (const Transfer& t : transfers) {
    const double words = static_cast<double>(t.count) * words_per_item;
    const double lf = machine_->link_factor(rank(t.from), rank(t.to));
    const Time wire = (cm.t_s + cm.t_w * words) * lf;
    member_cost[static_cast<std::size_t>(t.from)] += wire;
    member_cost[static_cast<std::size_t>(t.to)] += wire;
    member_latency[static_cast<std::size_t>(t.from)] += cm.t_s * lf;
    member_latency[static_cast<std::size_t>(t.to)] += cm.t_s * lf;
    member_words[static_cast<std::size_t>(t.from)] += words;
    member_words[static_cast<std::size_t>(t.to)] += words;
    total_words += words;
    if (ledger != nullptr) {
      ledger->add_traffic(rank(t.from), rank(t.to), words);
    }
  }
  for (int i = 0; i < size(); ++i) {
    if (member_cost[static_cast<std::size_t>(i)] > 0.0) {
      const std::int64_t staging =
          staging_bytes(member_words[static_cast<std::size_t>(i)]);
      machine_->alloc_bytes(rank(i), MemTag::CollectiveBuffer, staging);
      machine_->charge_comm(rank(i), member_cost[static_cast<std::size_t>(i)],
                            member_words[static_cast<std::size_t>(i)],
                            member_words[static_cast<std::size_t>(i)], 1,
                            member_latency[static_cast<std::size_t>(i)]);
      machine_->charge_io(
          rank(i), cm.t_io * member_words[static_cast<std::size_t>(i)]);
      machine_->free_bytes(rank(i), MemTag::CollectiveBuffer, staging);
    }
  }
  sync("load-balance");
  {
    const Machine::RetryAccrual trailing = machine_->take_retry_accrual();
    retry.us += trailing.us;
    retry.attempts += trailing.attempts;
  }
  // An empty transfer plan normally records nothing, but retry cost burned
  // at its barriers must still land in the ledger.
  if (ledger != nullptr && (!transfers.empty() || retry.attempts > 0)) {
    CollectiveEntry e;
    e.kind = CollectiveKind::Transfers;
    e.group_base = ranks_.front();
    e.group_size = size();
    e.words = total_words;
    e.retry_us = retry.us;
    e.retries = retry.attempts;
    Time max_member = 0.0;
    for (int i = 0; i < size(); ++i) {
      const Time c = member_cost[static_cast<std::size_t>(i)];
      if (c > 0.0) {
        e.predicted_us += c;
        e.io_us += cm.t_io * member_words[static_cast<std::size_t>(i)];
      }
      max_member = std::max(max_member, c);
    }
    // Members outside the transfer plan idle at the trailing barrier
    // while the busiest endpoint drains its queue.
    e.measured_us = max_member * size();
    e.messages = static_cast<std::uint64_t>(transfers.size());
    ledger->record(e);
  }
  trace(EventKind::LoadBalance, total_words, "load balance");
}

void Group::all_to_all_personalized(
    const std::vector<std::vector<double>>& words_out) const {
  const int p = size();
  // Shape/value errors here would otherwise silently misindex (the old
  // asserts vanish under NDEBUG), so validate for real before charging.
  if (static_cast<int>(words_out.size()) != p) {
    throw std::invalid_argument(
        "Group::all_to_all_personalized: words_out must have one row per "
        "group member");
  }
  for (const std::vector<double>& row : words_out) {
    if (static_cast<int>(row.size()) != p) {
      throw std::invalid_argument(
          "Group::all_to_all_personalized: words_out must be a square p x p "
          "matrix");
    }
    for (const double w : row) {
      if (!std::isfinite(w) || w < 0.0) {
        throw std::invalid_argument(
            "Group::all_to_all_personalized: words_out entries must be "
            "finite and non-negative");
      }
    }
  }
  if (p <= 1) return;
  std::vector<double> sent(static_cast<std::size_t>(p), 0.0);
  std::vector<double> recv(static_cast<std::size_t>(p), 0.0);
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < p; ++j) {
      const double w =
          words_out[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      sent[static_cast<std::size_t>(i)] += w;
      recv[static_cast<std::size_t>(j)] += w;
    }
  }
  annotate(CollectiveKind::AllToAll,
           std::accumulate(sent.begin(), sent.end(), 0.0));
  sync("all-to-all");
  Machine::RetryAccrual retry = machine_->take_retry_accrual();
  const CostModel& cm = machine_->cost();
  const int rounds = dimension();
  CommLedger* ledger = machine_->comm_ledger();
  double total = 0.0;
  Time predicted = 0.0;
  double max_vol = 0.0;
  Time io_total = 0.0;
  for (int i = 0; i < p; ++i) {
    const double vol = std::max(sent[static_cast<std::size_t>(i)],
                                recv[static_cast<std::size_t>(i)]);
    const Time cost = cm.all_to_all(vol, p);
    const Time latency = cm.t_s * rounds;
    const std::int64_t staging =
        staging_bytes(sent[static_cast<std::size_t>(i)] +
                      recv[static_cast<std::size_t>(i)]);
    machine_->alloc_bytes(rank(i), MemTag::CollectiveBuffer, staging);
    machine_->charge_comm(rank(i), cost, sent[static_cast<std::size_t>(i)],
                          recv[static_cast<std::size_t>(i)],
                          static_cast<std::uint64_t>(rounds), latency);
    const Time io = cm.t_io * (sent[static_cast<std::size_t>(i)] +
                               recv[static_cast<std::size_t>(i)]);
    machine_->charge_io(rank(i), io);
    machine_->free_bytes(rank(i), MemTag::CollectiveBuffer, staging);
    total += sent[static_cast<std::size_t>(i)];
    if (ledger != nullptr) {
      predicted += cost;
      max_vol = std::max(max_vol, vol);
      io_total += io;
    }
  }
  sync("all-to-all");
  {
    const Machine::RetryAccrual trailing = machine_->take_retry_accrual();
    retry.us += trailing.us;
    retry.attempts += trailing.attempts;
  }
  if (ledger != nullptr) {
    CollectiveEntry e;
    e.kind = CollectiveKind::AllToAll;
    e.group_base = ranks_.front();
    e.group_size = p;
    e.words = total;
    e.predicted_us = predicted;
    e.retry_us = retry.us;
    e.retries = retry.attempts;
    // The member with the heaviest send/receive volume sets the pace for
    // everyone at the trailing barrier.
    e.measured_us = cm.all_to_all(max_vol, p) * p;
    e.io_us = io_total;
    for (int i = 0; i < p; ++i) {
      for (int j = 0; j < p; ++j) {
        const double w =
            words_out[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        if (i != j && w > 0.0) {
          ledger->add_traffic(rank(i), rank(j), w);
          ++e.messages;
        }
      }
    }
    ledger->record(e);
  }
  trace(EventKind::PointToPoint, total, "all-to-all personalized");
}

std::pair<Group, Group> Group::halves() const {
  assert(size() >= 2);
  if (is_subcube_) {
    auto [a, b] = cube_.halves();
    return {Group(*machine_, a), Group(*machine_, b)};
  }
  const int half = size() / 2;
  std::vector<Rank> lo(ranks_.begin(), ranks_.begin() + half);
  std::vector<Rank> hi(ranks_.begin() + half, ranks_.end());
  return {Group(*machine_, std::move(lo)), Group(*machine_, std::move(hi))};
}

Group Group::merged_with(const Group& other) const {
  std::vector<Rank> all = ranks_;
  all.insert(all.end(), other.ranks_.begin(), other.ranks_.end());
  Group g(*machine_, std::move(all));
  g.barrier();
  g.trace(EventKind::Rejoin, 0.0, "groups merged");
  return g;
}

}  // namespace pdt::mpsim
