#include "mpsim/machine.hpp"

#include <algorithm>
#include <cstdint>

#include "mpsim/comm_ledger.hpp"
#include "mpsim/event_log.hpp"

namespace pdt::mpsim {

const char* to_string(ChargeKind k) {
  switch (k) {
    case ChargeKind::Compute: return "compute";
    case ChargeKind::Comm: return "comm";
    case ChargeKind::Io: return "io";
    case ChargeKind::Idle: return "idle";
  }
  return "?";
}

const char* to_string(MemTag t) {
  switch (t) {
    case MemTag::Records: return "records";
    case MemTag::Histogram: return "histogram";
    case MemTag::AttributeList: return "attribute_list";
    case MemTag::HashTable: return "hash_table";
    case MemTag::Scratch: return "scratch";
    case MemTag::CollectiveBuffer: return "collective_buffer";
  }
  return "?";
}

Machine::Machine(int nprocs, CostModel cost)
    : cost_(cost),
      clocks_(static_cast<std::size_t>(nprocs), 0.0),
      stats_(static_cast<std::size_t>(nprocs)),
      mem_(static_cast<std::size_t>(nprocs)),
      cur_level_(static_cast<std::size_t>(nprocs), -1),
      stamps_(static_cast<std::size_t>(nprocs)),
      stamp_count_(static_cast<std::size_t>(nprocs), 0),
      unreachable_(static_cast<std::size_t>(nprocs), 0),
      unreachable_note_(static_cast<std::size_t>(nprocs)) {
  assert(nprocs >= 1);
}

Time Machine::max_clock() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

Time Machine::min_clock() const {
  return *std::min_element(clocks_.begin(), clocks_.end());
}

void Machine::charge_compute(Rank r, double units) {
  charge_compute_time(r, units * cost_.t_c);
}

void Machine::charge_compute_time(Rank r, Time t) {
  assert(t >= 0.0);
  if (injector_ != nullptr) {
    if (!injector_->alive(r)) {
      throw RankFailure(r, injector_->level(r), /*detected=*/false);
    }
    t *= injector_->time_factor(r);
  }
  const Time start = clocks_[idx(r)];
  clocks_[idx(r)] += t;
  stats_[idx(r)].compute_time += t;
  if (observer_ != nullptr) {
    observer_->on_charge(r, ChargeKind::Compute, start, t, 0.0, 0.0);
  }
  if (recorder_ != nullptr) {
    recorder_->record_charge(r, ChargeKind::Compute, t, 0.0, 0.0, 0.0, 0,
                             cur_level_[idx(r)]);
  }
}

void Machine::charge_comm(Rank r, Time t, double words_sent,
                          double words_received, std::uint64_t messages,
                          Time latency) {
  assert(t >= 0.0);
  if (injector_ != nullptr) {
    if (!injector_->alive(r)) {
      throw RankFailure(r, injector_->level(r), /*detected=*/false);
    }
    const double factor = injector_->time_factor(r);
    t *= factor;
    latency *= factor;  // the decomposition scales with the whole charge
  }
  const Time start = clocks_[idx(r)];
  clocks_[idx(r)] += t;
  auto& s = stats_[idx(r)];
  s.comm_time += t;
  s.words_sent += static_cast<std::uint64_t>(words_sent);
  s.words_received += static_cast<std::uint64_t>(words_received);
  s.messages_sent += messages;
  if (observer_ != nullptr) {
    observer_->on_charge(r, ChargeKind::Comm, start, t, words_sent,
                         words_received);
  }
  if (recorder_ != nullptr) {
    recorder_->record_charge(r, ChargeKind::Comm, t, latency, words_sent,
                             words_received, messages, cur_level_[idx(r)]);
  }
}

void Machine::charge_io(Rank r, Time t) {
  assert(t >= 0.0);
  if (injector_ != nullptr) {
    if (!injector_->alive(r)) {
      throw RankFailure(r, injector_->level(r), /*detected=*/false);
    }
    t *= injector_->time_factor(r);
  }
  const Time start = clocks_[idx(r)];
  clocks_[idx(r)] += t;
  stats_[idx(r)].io_time += t;
  if (observer_ != nullptr) {
    observer_->on_charge(r, ChargeKind::Io, start, t, 0.0, 0.0);
  }
  if (recorder_ != nullptr) {
    recorder_->record_charge(r, ChargeKind::Io, t, 0.0, 0.0, 0.0, 0,
                             cur_level_[idx(r)]);
  }
}

void Machine::advance_to(Rank r, Time t) {
  const std::size_t i = idx(r);
  if (clocks_[i] < t) {
    const Time start = clocks_[i];
    stats_[i].idle_time += t - start;
    clocks_[i] = t;
    if (observer_ != nullptr) {
      observer_->on_charge(r, ChargeKind::Idle, start, t - start, 0.0, 0.0);
    }
  }
}

void Machine::wait_until(Rank r, Time t) {
  if (recorder_ != nullptr) recorder_->record_wait(r, t);
  advance_to(r, t);
}

void Machine::wait_for(Rank r, Rank src) {
  if (recorder_ != nullptr) recorder_->record_wait_for(r, src);
  advance_to(r, clocks_[idx(src)]);
}

Time Machine::charge_timeout(const std::vector<Rank>& survivors, Rank dead) {
  Time horizon = 0.0;
  for (const Rank r : survivors) {
    horizon = std::max(horizon, clocks_[idx(r)]);
  }
  const Time deadline = horizon + cost_.t_timeout;
  for (const Rank r : survivors) advance_to(r, deadline);
  if (recorder_ != nullptr) recorder_->record_timeout(dead, survivors);
  return deadline;
}

void Machine::admit_collective(const std::vector<Rank>& ranks,
                               const char* what) {
  if (injector_ == nullptr || ranks.size() < 2) return;
  const TransientVerdict v =
      injector_->take_transient(ranks, kMaxRetryAttempts);
  if (v.failures == 0) return;
  for (int attempt = 0; attempt < v.failures; ++attempt) {
    // Exponential backoff: attempt i waits out 2^i detection windows.
    const double mult = static_cast<double>(std::uint64_t{1} << attempt);
    Time horizon = 0.0;
    for (const Rank r : ranks) horizon = std::max(horizon, clocks_[idx(r)]);
    const Time deadline = horizon + cost_.t_timeout * mult;
    for (const Rank r : ranks) advance_to(r, deadline);
    if (recorder_ != nullptr) recorder_->record_retry(v.faulty, ranks, mult);
    const Time window =
        cost_.t_timeout * mult * static_cast<double>(ranks.size());
    retry_accrual_.us += window;
    ++retry_accrual_.attempts;
    total_retry_us_ += window;
    ++total_retries_;
    if (trace_.enabled()) {
      trace_.record({.time = deadline,
                     .kind = EventKind::Retry,
                     .rank = v.faulty,
                     .group_base = ranks.front(),
                     .group_size = static_cast<int>(ranks.size()),
                     .words = mult,
                     .detail = std::string("attempt ") +
                               std::to_string(attempt + 1) + " of " + what +
                               " failed (rank " + std::to_string(v.faulty) +
                               "), backoff x" +
                               std::to_string(static_cast<int>(mult))});
    }
  }
  if (v.exhausted) {
    ++escalations_;
    injector_->kill(v.faulty);
    if (trace_.enabled()) {
      trace_.record({.time = max_clock(),
                     .kind = EventKind::RankFail,
                     .rank = v.faulty,
                     .group_base = ranks.front(),
                     .group_size = static_cast<int>(ranks.size()),
                     .words = 0.0,
                     .detail = std::string("rank ") +
                               std::to_string(v.faulty) + " exhausted " +
                               std::to_string(kMaxRetryAttempts) +
                               " retries in " + what});
    }
    throw RankFailure(v.faulty, injector_->level(v.faulty),
                      /*detected=*/true);
  }
}

void Machine::barrier_over(const std::vector<Rank>& ranks, const char* what) {
  if (ranks.empty()) return;
  if (unreachable_count_ > 0) {
    for (Rank r : ranks) {
      if (unreachable_[idx(r)] != 0) throw_deadlock(ranks, what);
    }
  }
  // With faults armed, a member that fail-stopped and whose death has not
  // been absorbed yet is detected here: the survivors synchronize, wait
  // out the detection timeout (charged as idle — the cost-model stand-in
  // for a heartbeat expiring), and the failure is raised for the recovery
  // layer. Members whose death was already recovered are excluded — a
  // stale group that still lists them simply proceeds without them.
  const std::vector<Rank>* members = &ranks;
  std::vector<Rank> alive_members;
  if (injector_ != nullptr) {
    Rank dead = -1;
    bool any_excluded = false;
    for (Rank r : ranks) {
      if (injector_->alive(r)) continue;
      any_excluded = true;
      if (!injector_->recovered(r) && dead < 0) dead = r;
    }
    if (any_excluded) {
      for (Rank r : ranks) {
        if (injector_->alive(r)) alive_members.push_back(r);
      }
      if (dead >= 0) {
        const Time deadline = charge_timeout(alive_members, dead);
        if (trace_.enabled()) {
          trace_.record({.time = deadline,
                         .kind = EventKind::RankFail,
                         .rank = dead,
                         .group_base = ranks.front(),
                         .group_size = static_cast<int>(ranks.size()),
                         .words = 0.0,
                         .detail = std::string("rank ") +
                                   std::to_string(dead) +
                                   " timed out in " + what});
        }
        throw RankFailure(dead, injector_->level(dead), /*detected=*/true);
      }
      if (alive_members.empty()) return;
      members = &alive_members;
    }
  }
  Time horizon = 0.0;
  for (Rank r : *members) horizon = std::max(horizon, clocks_[idx(r)]);
  // The path holder must be identified before the waits equalize the
  // clocks: it is the first member already at the horizon.
  Rank holder = members->front();
  for (Rank r : *members) {
    if (clocks_[idx(r)] == horizon) {
      holder = r;
      break;
    }
  }
  for (Rank r : *members) advance_to(r, horizon);
  for (Rank r : *members) push_stamp(r, what);
  if (observer_ != nullptr && members->size() > 1) {
    observer_->on_barrier(*members, holder, horizon);
  }
  if (recorder_ != nullptr && members->size() > 1) {
    recorder_->record_barrier(what, *members);
  }
}

void Machine::push_stamp(Rank r, const char* what) {
  const std::size_t i = idx(r);
  auto& ring = stamps_[i];
  ring[static_cast<std::size_t>(stamp_count_[i] % kStampDepth)] =
      CollectiveStamp{what, clocks_[i], cur_level_[i]};
  ++stamp_count_[i];
}

void Machine::throw_deadlock(const std::vector<Rank>& ranks,
                             const char* what) const {
  std::string msg = "deadlock: collective \"";
  msg += what;
  msg += "\" over ranks {";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i > 0) msg += ",";
    msg += std::to_string(ranks[i]);
  }
  msg += "} includes unreachable member(s); per-rank collective stamps:";
  for (Rank r : ranks) {
    const std::size_t i = idx(r);
    msg += "\n  rank " + std::to_string(r);
    if (unreachable_[i] != 0) {
      msg += " [UNREACHABLE: " + unreachable_note_[i] + "]";
    }
    msg += " clock=" + std::to_string(clocks_[i]) + "us:";
    const int n = std::min(stamp_count_[i], kStampDepth);
    if (n == 0) msg += " (no collectives entered)";
    for (int k = n; k > 0; --k) {
      const auto& s = stamps_[i][static_cast<std::size_t>(
          (stamp_count_[i] - k) % kStampDepth)];
      msg += " ";
      msg += s.what;
      msg += "@level " + std::to_string(s.level) + " t=" +
             std::to_string(s.time);
    }
  }
  throw DeadlockError(msg);
}

void Machine::mark_unreachable(Rank r, std::string note) {
  if (unreachable_[idx(r)] == 0) ++unreachable_count_;
  unreachable_[idx(r)] = 1;
  unreachable_note_[idx(r)] = std::move(note);
}

void Machine::arm_faults(const FaultPlan& plan) {
  injector_ = std::make_unique<FaultInjector>(plan, size());
}

void Machine::disarm_faults() { injector_.reset(); }

void Machine::alloc_bytes(Rank r, MemTag tag, std::int64_t bytes) {
  assert(bytes >= 0);
  if (bytes == 0) return;
  MemStats& m = mem_[idx(r)];
  const auto t = static_cast<std::size_t>(tag);
  m.live[t] += bytes;
  if (m.live[t] > m.peak[t]) m.peak[t] = m.live[t];
  m.live_total += bytes;
  if (m.live_total > m.peak_total) m.peak_total = m.live_total;
  if (observer_ != nullptr) {
    observer_->on_alloc(r, tag, bytes, m.live_total);
  }
}

void Machine::free_bytes(Rank r, MemTag tag, std::int64_t bytes) {
  assert(bytes >= 0);
  if (bytes == 0) return;
  MemStats& m = mem_[idx(r)];
  const auto t = static_cast<std::size_t>(tag);
  assert(m.live[t] >= bytes && "freeing more than is live for this tag");
  m.live[t] -= bytes;
  if (m.live[t] < 0) m.live[t] = 0;
  m.live_total -= bytes;
  if (m.live_total < 0) m.live_total = 0;
  if (observer_ != nullptr) {
    observer_->on_free(r, tag, bytes, m.live_total);
  }
}

std::int64_t Machine::max_peak_bytes() const {
  std::int64_t peak = 0;
  for (const MemStats& m : mem_) peak = std::max(peak, m.peak_total);
  return peak;
}

void Machine::set_comm_ledger(CommLedger* ledger) {
  comm_ledger_ = ledger;
  if (comm_ledger_ != nullptr) comm_ledger_->ensure_ranks(size());
}

void Machine::set_event_recorder(EventRecorder* rec) {
  recorder_ = rec;
  if (recorder_ != nullptr) recorder_->bind(size(), cost_);
}

RankStats Machine::total_stats() const {
  RankStats total;
  for (const auto& s : stats_) total += s;
  return total;
}

void Machine::reset() {
  std::fill(clocks_.begin(), clocks_.end(), 0.0);
  std::fill(stats_.begin(), stats_.end(), RankStats{});
  std::fill(mem_.begin(), mem_.end(), MemStats{});
  std::fill(cur_level_.begin(), cur_level_.end(), -1);
  std::fill(stamp_count_.begin(), stamp_count_.end(), 0);
  std::fill(unreachable_.begin(), unreachable_.end(), static_cast<char>(0));
  unreachable_count_ = 0;
  retry_accrual_ = RetryAccrual{};
  total_retries_ = 0;
  total_retry_us_ = 0.0;
  escalations_ = 0;
  if (injector_ != nullptr) injector_->reset();
  if (recorder_ != nullptr) recorder_->bind(size(), cost_);
  trace_.clear();
}

}  // namespace pdt::mpsim
