#include "mpsim/machine.hpp"

#include <algorithm>

#include "mpsim/comm_ledger.hpp"

namespace pdt::mpsim {

const char* to_string(ChargeKind k) {
  switch (k) {
    case ChargeKind::Compute: return "compute";
    case ChargeKind::Comm: return "comm";
    case ChargeKind::Io: return "io";
    case ChargeKind::Idle: return "idle";
  }
  return "?";
}

const char* to_string(MemTag t) {
  switch (t) {
    case MemTag::Records: return "records";
    case MemTag::Histogram: return "histogram";
    case MemTag::AttributeList: return "attribute_list";
    case MemTag::HashTable: return "hash_table";
    case MemTag::Scratch: return "scratch";
    case MemTag::CollectiveBuffer: return "collective_buffer";
  }
  return "?";
}

Machine::Machine(int nprocs, CostModel cost)
    : cost_(cost),
      clocks_(static_cast<std::size_t>(nprocs), 0.0),
      stats_(static_cast<std::size_t>(nprocs)),
      mem_(static_cast<std::size_t>(nprocs)) {
  assert(nprocs >= 1);
}

Time Machine::max_clock() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

Time Machine::min_clock() const {
  return *std::min_element(clocks_.begin(), clocks_.end());
}

void Machine::charge_compute(Rank r, double units) {
  charge_compute_time(r, units * cost_.t_c);
}

void Machine::charge_compute_time(Rank r, Time t) {
  assert(t >= 0.0);
  const Time start = clocks_[idx(r)];
  clocks_[idx(r)] += t;
  stats_[idx(r)].compute_time += t;
  if (observer_ != nullptr) {
    observer_->on_charge(r, ChargeKind::Compute, start, t, 0.0, 0.0);
  }
}

void Machine::charge_comm(Rank r, Time t, double words_sent,
                          double words_received, std::uint64_t messages) {
  assert(t >= 0.0);
  const Time start = clocks_[idx(r)];
  clocks_[idx(r)] += t;
  auto& s = stats_[idx(r)];
  s.comm_time += t;
  s.words_sent += static_cast<std::uint64_t>(words_sent);
  s.words_received += static_cast<std::uint64_t>(words_received);
  s.messages_sent += messages;
  if (observer_ != nullptr) {
    observer_->on_charge(r, ChargeKind::Comm, start, t, words_sent,
                         words_received);
  }
}

void Machine::charge_io(Rank r, Time t) {
  assert(t >= 0.0);
  const Time start = clocks_[idx(r)];
  clocks_[idx(r)] += t;
  stats_[idx(r)].io_time += t;
  if (observer_ != nullptr) {
    observer_->on_charge(r, ChargeKind::Io, start, t, 0.0, 0.0);
  }
}

void Machine::wait_until(Rank r, Time t) {
  const std::size_t i = idx(r);
  if (clocks_[i] < t) {
    const Time start = clocks_[i];
    stats_[i].idle_time += t - start;
    clocks_[i] = t;
    if (observer_ != nullptr) {
      observer_->on_charge(r, ChargeKind::Idle, start, t - start, 0.0, 0.0);
    }
  }
}

void Machine::barrier_over(const std::vector<Rank>& ranks) {
  if (ranks.empty()) return;
  Time horizon = 0.0;
  for (Rank r : ranks) horizon = std::max(horizon, clocks_[idx(r)]);
  // The path holder must be identified before the waits equalize the
  // clocks: it is the first member already at the horizon.
  Rank holder = ranks.front();
  for (Rank r : ranks) {
    if (clocks_[idx(r)] == horizon) {
      holder = r;
      break;
    }
  }
  for (Rank r : ranks) wait_until(r, horizon);
  if (observer_ != nullptr && ranks.size() > 1) {
    observer_->on_barrier(ranks, holder, horizon);
  }
}

void Machine::alloc_bytes(Rank r, MemTag tag, std::int64_t bytes) {
  assert(bytes >= 0);
  if (bytes == 0) return;
  MemStats& m = mem_[idx(r)];
  const auto t = static_cast<std::size_t>(tag);
  m.live[t] += bytes;
  if (m.live[t] > m.peak[t]) m.peak[t] = m.live[t];
  m.live_total += bytes;
  if (m.live_total > m.peak_total) m.peak_total = m.live_total;
  if (observer_ != nullptr) {
    observer_->on_alloc(r, tag, bytes, m.live_total);
  }
}

void Machine::free_bytes(Rank r, MemTag tag, std::int64_t bytes) {
  assert(bytes >= 0);
  if (bytes == 0) return;
  MemStats& m = mem_[idx(r)];
  const auto t = static_cast<std::size_t>(tag);
  assert(m.live[t] >= bytes && "freeing more than is live for this tag");
  m.live[t] -= bytes;
  if (m.live[t] < 0) m.live[t] = 0;
  m.live_total -= bytes;
  if (m.live_total < 0) m.live_total = 0;
  if (observer_ != nullptr) {
    observer_->on_free(r, tag, bytes, m.live_total);
  }
}

std::int64_t Machine::max_peak_bytes() const {
  std::int64_t peak = 0;
  for (const MemStats& m : mem_) peak = std::max(peak, m.peak_total);
  return peak;
}

void Machine::set_comm_ledger(CommLedger* ledger) {
  comm_ledger_ = ledger;
  if (comm_ledger_ != nullptr) comm_ledger_->ensure_ranks(size());
}

RankStats Machine::total_stats() const {
  RankStats total;
  for (const auto& s : stats_) total += s;
  return total;
}

void Machine::reset() {
  std::fill(clocks_.begin(), clocks_.end(), 0.0);
  std::fill(stats_.begin(), stats_.end(), RankStats{});
  std::fill(mem_.begin(), mem_.end(), MemStats{});
  trace_.clear();
}

}  // namespace pdt::mpsim
