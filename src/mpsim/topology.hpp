// Hypercube topology helpers.
//
// The paper assumes processors are connected in a hypercube (Section 4.1)
// and that partition splits halve a subcube. A d-dimensional subcube is a
// set of ranks sharing all address bits except d free (low) bits; we use
// aligned contiguous rank ranges [base, base + 2^d), which are exactly the
// subcubes whose free dimensions are the low bits.
#pragma once

#include <cassert>
#include <vector>

namespace pdt::mpsim {

using Rank = int;

/// True iff p is a power of two (p >= 1).
[[nodiscard]] constexpr bool is_pow2(int p) { return p >= 1 && (p & (p - 1)) == 0; }

/// Smallest power of two >= p.
[[nodiscard]] int next_pow2(int p);

/// A subcube of a hypercube: the aligned rank range [base, base + size).
/// size must be a power of two and base a multiple of size.
struct Subcube {
  Rank base = 0;
  int size = 1;

  [[nodiscard]] int dimension() const;
  /// The two half subcubes obtained by fixing the highest free bit.
  [[nodiscard]] std::pair<Subcube, Subcube> halves() const;
  /// Partner of `r` across the highest free dimension (the rank it
  /// exchanges with in the "moving" phase of a split).
  [[nodiscard]] Rank partner(Rank r) const;
  /// All member ranks, ascending.
  [[nodiscard]] std::vector<Rank> ranks() const;
  [[nodiscard]] bool contains(Rank r) const { return r >= base && r < base + size; }
  /// True iff base/size describe a legal aligned subcube.
  [[nodiscard]] bool valid() const;
};

}  // namespace pdt::mpsim
