// The simulated message-passing machine.
//
// A Machine owns P virtual processors, each with its own virtual clock and
// accounting. Algorithms written against mpsim execute their *data* work
// for real (histograms are summed, records are moved between ranks'
// local stores) while *time* is charged to the clocks according to the
// CostModel — exactly the t_c/t_s/t_w model the paper's Section 4 uses.
//
// This substitutes for the paper's 128-node IBM SP-2 (see DESIGN.md §1):
// the algorithmic behaviour (tree shape, communication volume, load
// imbalance) is genuine; only wall-clock time is virtual.
#pragma once

#include <array>
#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "mpsim/cost_model.hpp"
#include "mpsim/fault.hpp"
#include "mpsim/observer.hpp"
#include "mpsim/stats.hpp"
#include "mpsim/topology.hpp"
#include "mpsim/trace.hpp"

namespace pdt::mpsim {

class CommLedger;
class EventRecorder;

class Machine {
 public:
  /// Create a machine of `nprocs` processors (any nprocs >= 1; hypercube
  /// collectives round the dimension up when nprocs is not a power of 2).
  explicit Machine(int nprocs, CostModel cost = CostModel::sp2());

  [[nodiscard]] int size() const { return static_cast<int>(clocks_.size()); }
  [[nodiscard]] const CostModel& cost() const { return cost_; }

  [[nodiscard]] Time clock(Rank r) const { return clocks_[idx(r)]; }
  /// Completion time of the whole run: the maximum clock over all ranks.
  [[nodiscard]] Time max_clock() const;
  [[nodiscard]] Time min_clock() const;

  /// Charge `units` abstract computation units (each costing t_c) to rank
  /// r's clock.
  void charge_compute(Rank r, double units);
  /// Charge raw virtual time to r's clock, accounted as computation.
  /// Used for work whose cost is not a clean multiple of t_c (e.g. the
  /// n log n term of a local sort).
  void charge_compute_time(Rank r, Time t);
  /// Charge communication time to r's clock and record traffic volume.
  /// `latency` is the t_s-proportional (start-up) part of `t`, recorded
  /// so an event-log replay can rescale the latency and bandwidth terms
  /// independently; it never affects the charge itself.
  void charge_comm(Rank r, Time t, double words_sent, double words_received,
                   std::uint64_t messages = 1, Time latency = 0.0);
  /// Charge disk-I/O time (record relocation) to r's clock.
  void charge_io(Rank r, Time t);
  /// Advance r's clock to `t` (>= current), accounting the gap as idle
  /// (barrier wait). No-op if r is already past t.
  void wait_until(Rank r, Time t);
  /// Advance r's clock to src's current clock (idle). Prefer this over
  /// wait_until(r, clock(src)): the event log records the *dependency*
  /// instead of the absolute time, so a what-if replay re-derives the
  /// wait from src's replayed clock.
  void wait_for(Rank r, Rank src);
  /// Fault-detection timeout: advance every survivor to the survivors'
  /// common horizon plus cost().t_timeout (charged as idle — the
  /// heartbeat window expiring on dead rank `dead`). Returns the
  /// deadline the survivors advanced to.
  Time charge_timeout(const std::vector<Rank>& survivors, Rank dead);
  /// Synchronize `ranks` at their common horizon (the maximum clock over
  /// the set): every member waits up to it, then the observer's
  /// on_barrier hook fires with the max-clock member as path holder.
  /// `what` names the collective for the per-rank stamp stacks a deadlock
  /// post-mortem reports. With faults armed, a dead un-recovered member
  /// makes the survivors wait out cost().t_timeout (charged as idle) and
  /// then raises RankFailure instead of hanging; dead members whose death
  /// was already recovered are silently excluded. A member previously
  /// marked unreachable raises DeadlockError immediately.
  void barrier_over(const std::vector<Rank>& ranks,
                    const char* what = "barrier");

  /// Bounded retry attempts a collective makes before escalating a
  /// transient fault to a fail-stop.
  static constexpr int kMaxRetryAttempts = 4;

  /// Admission control for a named Group collective: with faults armed,
  /// consume any transient-fault budget matching `ranks` (checksum-failed
  /// link, transient timeout). Each failed attempt advances every member
  /// to the members' horizon plus cost().t_timeout * 2^attempt (idle —
  /// exponential backoff on the detection window), records a Retry event,
  /// and accrues retry cost for the ledger entry the collective will
  /// write (take_retry_accrual). When the fault outlives the retry
  /// budget, the faulty rank is killed and escalated as a detected
  /// RankFailure for the recovery layer. One predictable branch when
  /// disarmed, so fault-free runs stay bit-identical.
  void admit_collective(const std::vector<Rank>& ranks, const char* what);

  /// Pending retry accrual since the last take: failed-attempt cost not
  /// yet attributed to a ledger entry.
  struct RetryAccrual {
    Time us = 0.0;
    std::uint64_t attempts = 0;
  };
  [[nodiscard]] RetryAccrual take_retry_accrual() {
    const RetryAccrual out = retry_accrual_;
    retry_accrual_ = RetryAccrual{};
    return out;
  }

  /// Run-cumulative transient-retry counters (reset() zeroes them).
  [[nodiscard]] std::uint64_t retries() const { return total_retries_; }
  [[nodiscard]] Time retry_us() const { return total_retry_us_; }
  [[nodiscard]] int escalations() const { return escalations_; }

  /// Charge `bytes` (>= 0) of virtual memory tagged `tag` to rank r's
  /// byte account, updating per-tag and total live/peak counters and
  /// firing the observer's on_alloc hook. Memory events never advance
  /// clocks: footprint accounting is orthogonal to simulated time, so
  /// obs-on and obs-off runs stay bit-identical.
  void alloc_bytes(Rank r, MemTag tag, std::int64_t bytes);
  /// Release `bytes` previously charged with the same tag. Releasing
  /// more than is live is a bug (asserted in debug builds; clamped to
  /// zero otherwise).
  void free_bytes(Rank r, MemTag tag, std::int64_t bytes);

  [[nodiscard]] const MemStats& mem(Rank r) const { return mem_[idx(r)]; }
  [[nodiscard]] std::int64_t live_bytes(Rank r) const {
    return mem_[idx(r)].live_total;
  }
  [[nodiscard]] std::int64_t peak_bytes(Rank r) const {
    return mem_[idx(r)].peak_total;
  }
  /// Maximum peak_bytes over all ranks — the machine's memory
  /// bottleneck, the quantity the Section-4 scalability argument bounds.
  [[nodiscard]] std::int64_t max_peak_bytes() const;

  [[nodiscard]] const RankStats& stats(Rank r) const { return stats_[idx(r)]; }
  /// Sum of all per-rank stats.
  [[nodiscard]] RankStats total_stats() const;

  [[nodiscard]] Trace& trace() { return trace_; }
  [[nodiscard]] const Trace& trace() const { return trace_; }

  /// Attach (or detach, with nullptr) a passive observer notified of every
  /// clock advance. Not owned. Costs one predictable branch per charge
  /// when detached; never alters simulated time either way.
  void set_observer(ChargeObserver* obs) { observer_ = obs; }
  [[nodiscard]] ChargeObserver* observer() const { return observer_; }

  /// Attach (or detach, with nullptr) a communication ledger that Group
  /// collectives record into. Not owned; strictly passive like the
  /// observer — never alters simulated time.
  void set_comm_ledger(CommLedger* ledger);
  [[nodiscard]] CommLedger* comm_ledger() const { return comm_ledger_; }

  /// Attach (or detach, with nullptr) an event recorder capturing the
  /// causal execution log (see event_log.hpp). Not owned; strictly
  /// passive. Attaching (re)binds the recorder to this machine's size
  /// and cost model, clearing any previously recorded events.
  void set_event_recorder(EventRecorder* rec);
  [[nodiscard]] EventRecorder* event_recorder() const { return recorder_; }

  /// Arm a fault plan: an injector is created and every subsequent charge
  /// / collective consults it (a straggler's charges are scaled, a dead
  /// rank's charges raise RankFailure). One predictable branch per charge
  /// when disarmed, so fault-free runs stay bit-identical.
  void arm_faults(const FaultPlan& plan);
  void disarm_faults();
  /// The armed injector, or nullptr on the fault-free path.
  [[nodiscard]] FaultInjector* fault() const { return injector_.get(); }

  /// Link cost multiplier between a and b (1.0 unless a plan delays it).
  [[nodiscard]] double link_factor(Rank a, Rank b) const {
    return injector_ != nullptr ? injector_->link_factor(a, b) : 1.0;
  }

  /// Record that rank r is working on tree level `level` (stamp metadata
  /// for deadlock reports and straggler windows; never touches clocks).
  void set_rank_level(Rank r, int level) { cur_level_[idx(r)] = level; }
  [[nodiscard]] int rank_level(Rank r) const { return cur_level_[idx(r)]; }

  /// Declare that rank r will never reach another collective (it exited
  /// the algorithm, or a mismatched collective left it behind). The next
  /// barrier_over that includes r fails fast with DeadlockError instead
  /// of modelling an infinite hang.
  void mark_unreachable(Rank r, std::string note);

  /// Reset all clocks and stats to zero (keeps the trace setting and the
  /// attached observer; an armed fault plan is re-armed from scratch).
  void reset();

 private:
  /// Last few collectives each rank entered (what / level / time).
  struct CollectiveStamp {
    const char* what = nullptr;
    Time time = 0.0;
    int level = -1;
  };
  static constexpr int kStampDepth = 4;

  /// wait_until without the event-log hook: barrier_over and
  /// charge_timeout advance clocks through this, because the recorded
  /// Barrier/Timeout event lets the replay *recompute* those idles from
  /// the member clocks (recording them too would double-advance).
  void advance_to(Rank r, Time t);

  void push_stamp(Rank r, const char* what);
  [[noreturn]] void throw_deadlock(const std::vector<Rank>& ranks,
                                   const char* what) const;
  [[nodiscard]] std::size_t idx(Rank r) const {
    assert(r >= 0 && r < size());
    return static_cast<std::size_t>(r);
  }

  CostModel cost_;
  std::vector<Time> clocks_;
  std::vector<RankStats> stats_;
  std::vector<MemStats> mem_;
  Trace trace_;
  ChargeObserver* observer_ = nullptr;
  CommLedger* comm_ledger_ = nullptr;
  EventRecorder* recorder_ = nullptr;
  std::unique_ptr<FaultInjector> injector_;
  std::vector<int> cur_level_;
  std::vector<std::array<CollectiveStamp, kStampDepth>> stamps_;
  std::vector<int> stamp_count_;
  std::vector<char> unreachable_;
  std::vector<std::string> unreachable_note_;
  int unreachable_count_ = 0;
  RetryAccrual retry_accrual_;
  std::uint64_t total_retries_ = 0;
  Time total_retry_us_ = 0.0;
  int escalations_ = 0;
};

}  // namespace pdt::mpsim
