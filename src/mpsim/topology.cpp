#include "mpsim/topology.hpp"

#include "mpsim/cost_model.hpp"

namespace pdt::mpsim {

int next_pow2(int p) {
  int v = 1;
  while (v < p) v <<= 1;
  return v;
}

int Subcube::dimension() const { return ceil_log2(size); }

std::pair<Subcube, Subcube> Subcube::halves() const {
  assert(size >= 2);
  const int half = size / 2;
  return {Subcube{base, half}, Subcube{base + half, half}};
}

Rank Subcube::partner(Rank r) const {
  assert(contains(r));
  const int half = size / 2;
  return base + ((r - base) ^ half);
}

std::vector<Rank> Subcube::ranks() const {
  std::vector<Rank> out(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) out[static_cast<std::size_t>(i)] = base + i;
  return out;
}

bool Subcube::valid() const {
  return is_pow2(size) && base >= 0 && base % size == 0;
}

}  // namespace pdt::mpsim
