// Communication / computation cost model for the simulated message-passing
// machine.
//
// The paper's analysis (Section 4, Table 4) is parameterized by three
// machine constants taken from Kumar, Grama, Gupta, Karypis, "Introduction
// to Parallel Computing" [KGGK94]:
//
//   t_s : start-up time of a message (latency), charged once per message
//   t_w : per-word transfer time, charged per 4-byte word
//   t_c : unit computation time, charged per elementary work unit
//         (one class-histogram update for one record-attribute pair)
//
// All times are in microseconds of *virtual* time. The defaults approximate
// the IBM SP-2 with the high-performance switch used in the paper's
// experiments (66.7 MHz POWER2 nodes).
#pragma once

#include <cstddef>
#include <cstdint>

namespace pdt::mpsim {

/// Virtual time, in microseconds.
using Time = double;

/// Machine cost constants. A "word" is 4 bytes throughout, matching the
/// convention of [KGGK94] that the paper's Equations 2-4 use.
struct CostModel {
  /// Message start-up latency (us). SP-2 w/ hps: ~40 us.
  double t_s = 40.0;
  /// Per-word transfer time (us/word). SP-2 w/ hps: ~35 MB/s sustained
  /// => ~0.11 us per 4-byte word.
  double t_w = 0.11;
  /// Unit computation time (us). One histogram update (load record field,
  /// index table, increment) on a 66.7 MHz POWER2 is a handful of cycles
  /// plus cache effects; 0.15 us lands the compute/communication balance
  /// in the regime the paper reports.
  double t_c = 0.15;
  /// Per-word local transfer time (us/word) paid when training records
  /// are scanned (Eq. 1's "I/O scan of the training set") or relocate
  /// between processors (read at the source, written at the destination:
  /// each moved word costs t_w on the wire plus 2*t_io locally). The
  /// paper keeps attribute lists "on disk", but a 0.8M x 9-attribute
  /// dataset is ~30 MB and fits the SP-2 node's 256 MB of memory, so the
  /// effective rate after the first read is the OS cache / memcpy rate:
  /// ~80 MB/s on a 66.7 MHz POWER2 => 0.05 us per 4-byte word. (The
  /// paper's partitioned-formulation speedups corroborate moves running
  /// near memory speed, not raw-disk speed.)
  double t_io = 0.05;
  /// Fault-detection timeout (us): how long the survivors of a collective
  /// wait for a dead member before declaring it failed (100 x t_s — the
  /// order of an MPI implementation's default heartbeat/retransmit
  /// window, scaled to the SP-2's latency). Charged as idle time to every
  /// surviving member exactly once per detected failure.
  double t_timeout = 4000.0;

  /// Full per-word cost of relocating record data (wire + read + write).
  [[nodiscard]] double record_move_word_cost() const {
    return t_w + 2.0 * t_io;
  }

  /// Cost of one point-to-point message of `words` 4-byte words.
  [[nodiscard]] Time message(double words) const { return t_s + t_w * words; }

  /// Cost of an all-reduce / recursive-doubling collective of `words`
  /// words among `p` processors: (t_s + t_w*m) * ceil(log2 p)  [KGGK94].
  [[nodiscard]] Time all_reduce(double words, int p) const;

  /// Cost of a one-to-all broadcast of `words` words among `p` processors.
  [[nodiscard]] Time broadcast(double words, int p) const;

  /// Cost per member of an all-to-all personalized exchange where the
  /// member sends/receives at most `volume` words:
  /// t_s * ceil(log2 p) + t_w * volume  [KGGK94, optimal hypercube].
  [[nodiscard]] Time all_to_all(double volume, int p) const;

  /// IBM SP-2 preset (same as the defaults; spelled out for call sites
  /// that want to be explicit about what they model).
  [[nodiscard]] static CostModel sp2();

  /// A communication-free machine: t_s = t_w = 0. Useful for isolating
  /// computation/load-imbalance effects in ablation benches.
  [[nodiscard]] static CostModel zero_comm();

  /// An idealized PRAM-ish machine where communication is 100x cheaper,
  /// used by ablations to show the formulations converge when
  /// communication is free.
  [[nodiscard]] static CostModel cheap_comm();
};

/// ceil(log2(p)) for p >= 1 (0 for p == 1).
[[nodiscard]] int ceil_log2(int p);

}  // namespace pdt::mpsim
