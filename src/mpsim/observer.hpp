// Observer hook for virtual-time accounting events.
//
// A ChargeObserver attached to a Machine is notified of every clock
// advance (compute / communication / I/O charges and barrier idling)
// *after* the clock has moved. Observers are strictly passive: they may
// not touch the machine, so attaching one can never change simulated
// time. The obs library's PhaseProfiler is the canonical implementation;
// mpsim itself only defines the interface so that it does not depend on
// obs.
#pragma once

#include <cstdint>
#include <vector>

#include "mpsim/cost_model.hpp"
#include "mpsim/topology.hpp"

namespace pdt::mpsim {

/// What a clock advance was accounted as (mirrors RankStats fields).
enum class ChargeKind {
  Compute,  ///< charge_compute / charge_compute_time
  Comm,     ///< charge_comm
  Io,       ///< charge_io
  Idle,     ///< wait_until gap
};

[[nodiscard]] const char* to_string(ChargeKind k);

/// Which data structure a byte charge belongs to. These are the
/// footprint-dominant structures from the paper's Section 4 memory
/// argument: O(N/P) resident records, O(attrs * bins * classes)
/// histogram tables per frontier node, and bounded per-level scratch.
enum class MemTag {
  Records,          ///< training records resident in a rank's local store
  Histogram,        ///< per-node class histograms / count matrices
  AttributeList,    ///< SPRINT/SLIQ presorted attribute-list sections
  HashTable,        ///< record->node map (SPRINT hash table / class list)
  Scratch,          ///< per-level scratch: sort staging, split buffers
  CollectiveBuffer, ///< message staging inside Group collectives
};

inline constexpr int kNumMemTags = 6;

[[nodiscard]] const char* to_string(MemTag t);

class ChargeObserver {
 public:
  virtual ~ChargeObserver() = default;

  /// Rank r's clock advanced from `start` to `start + dt` (dt >= 0).
  /// `words_sent` / `words_received` are nonzero only for Comm charges.
  virtual void on_charge(Rank r, ChargeKind kind, Time start, Time dt,
                         double words_sent, double words_received) = 0;

  /// The ranks in `members` synchronized at time `t` (a group barrier).
  /// `holder` is the max-clock member — the rank everyone else waited
  /// for, i.e. the critical-path holder at this barrier. Called *after*
  /// the waiting members' Idle charges, once per barrier with more than
  /// one member. Default: ignore (the phase profiler doesn't care).
  virtual void on_barrier(const std::vector<Rank>& members, Rank holder,
                          Time t) {
    (void)members;
    (void)holder;
    (void)t;
  }

  /// Rank r charged `bytes` (> 0) of virtual memory tagged `tag`;
  /// `live_after` is r's total live bytes after the charge. Memory
  /// events never move clocks, so observers stay strictly passive.
  /// Default: ignore (only the memory ledger cares).
  virtual void on_alloc(Rank r, MemTag tag, std::int64_t bytes,
                        std::int64_t live_after) {
    (void)r;
    (void)tag;
    (void)bytes;
    (void)live_after;
  }

  /// Rank r released `bytes` (> 0) of virtual memory tagged `tag`.
  virtual void on_free(Rank r, MemTag tag, std::int64_t bytes,
                       std::int64_t live_after) {
    (void)r;
    (void)tag;
    (void)bytes;
    (void)live_after;
  }
};

}  // namespace pdt::mpsim
