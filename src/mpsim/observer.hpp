// Observer hook for virtual-time accounting events.
//
// A ChargeObserver attached to a Machine is notified of every clock
// advance (compute / communication / I/O charges and barrier idling)
// *after* the clock has moved. Observers are strictly passive: they may
// not touch the machine, so attaching one can never change simulated
// time. The obs library's PhaseProfiler is the canonical implementation;
// mpsim itself only defines the interface so that it does not depend on
// obs.
#pragma once

#include <vector>

#include "mpsim/cost_model.hpp"
#include "mpsim/topology.hpp"

namespace pdt::mpsim {

/// What a clock advance was accounted as (mirrors RankStats fields).
enum class ChargeKind {
  Compute,  ///< charge_compute / charge_compute_time
  Comm,     ///< charge_comm
  Io,       ///< charge_io
  Idle,     ///< wait_until gap
};

[[nodiscard]] const char* to_string(ChargeKind k);

class ChargeObserver {
 public:
  virtual ~ChargeObserver() = default;

  /// Rank r's clock advanced from `start` to `start + dt` (dt >= 0).
  /// `words_sent` / `words_received` are nonzero only for Comm charges.
  virtual void on_charge(Rank r, ChargeKind kind, Time start, Time dt,
                         double words_sent, double words_received) = 0;

  /// The ranks in `members` synchronized at time `t` (a group barrier).
  /// `holder` is the max-clock member — the rank everyone else waited
  /// for, i.e. the critical-path holder at this barrier. Called *after*
  /// the waiting members' Idle charges, once per barrier with more than
  /// one member. Default: ignore (the phase profiler doesn't care).
  virtual void on_barrier(const std::vector<Rank>& members, Rank holder,
                          Time t) {
    (void)members;
    (void)holder;
    (void)t;
  }
};

}  // namespace pdt::mpsim
