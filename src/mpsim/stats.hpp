// Per-rank and machine-wide accounting of where virtual time goes and how
// much traffic the algorithms generate. The experiment harnesses use these
// to report the compute/communication/idle breakdowns the paper discusses
// qualitatively (Section 5).
#pragma once

#include <array>
#include <cstdint>

#include "mpsim/cost_model.hpp"
#include "mpsim/observer.hpp"

namespace pdt::mpsim {

/// Accounting for a single simulated processor.
struct RankStats {
  Time compute_time = 0.0;  ///< local computation (t_c charges)
  Time comm_time = 0.0;     ///< time inside communication operations
  Time io_time = 0.0;       ///< disk I/O while relocating records (t_io)
  Time idle_time = 0.0;     ///< time spent waiting at barriers / collectives

  std::uint64_t words_sent = 0;     ///< 4-byte words this rank injected
  std::uint64_t words_received = 0;
  std::uint64_t messages_sent = 0;  ///< point-to-point + per-collective-round

  [[nodiscard]] Time busy_time() const {
    return compute_time + comm_time + io_time;
  }

  RankStats& operator+=(const RankStats& o) {
    compute_time += o.compute_time;
    comm_time += o.comm_time;
    io_time += o.io_time;
    idle_time += o.idle_time;
    words_sent += o.words_sent;
    words_received += o.words_received;
    messages_sent += o.messages_sent;
    return *this;
  }
};

/// Virtual-memory accounting for a single simulated processor. Byte
/// accounts are exact integers so charge/release pairs cancel with no
/// floating-point residue: at algorithm teardown every live count must
/// return to zero.
struct MemStats {
  std::int64_t live_total = 0;  ///< bytes currently charged
  std::int64_t peak_total = 0;  ///< high-water mark of live_total
  std::array<std::int64_t, kNumMemTags> live{};  ///< live bytes per MemTag
  std::array<std::int64_t, kNumMemTags> peak{};  ///< peak bytes per MemTag

  [[nodiscard]] std::int64_t live_for(MemTag t) const {
    return live[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] std::int64_t peak_for(MemTag t) const {
    return peak[static_cast<std::size_t>(t)];
  }
};

/// Analytic per-rank peak-footprint prediction from the paper's Section-4
/// memory terms: O(N/P) resident records plus O(attrs * bins * classes)
/// histogram tables per buffered frontier node, plus any formulation-
/// specific scratch bound. Exported alongside the measured peaks the way
/// the comm ledger pairs Eq. 2-4 predictions with measured cost.
struct MemPredicted {
  std::int64_t records_bytes = 0;    ///< ceil(N/P) * bytes-per-record
  std::int64_t histogram_bytes = 0;  ///< buffer_nodes * table entries * 8
  std::int64_t scratch_bytes = 0;    ///< bounded per-level staging terms
  [[nodiscard]] std::int64_t total() const {
    return records_bytes + histogram_bytes + scratch_bytes;
  }
  [[nodiscard]] bool empty() const { return total() == 0; }
};

}  // namespace pdt::mpsim
