// Per-rank and machine-wide accounting of where virtual time goes and how
// much traffic the algorithms generate. The experiment harnesses use these
// to report the compute/communication/idle breakdowns the paper discusses
// qualitatively (Section 5).
#pragma once

#include <cstdint>

#include "mpsim/cost_model.hpp"

namespace pdt::mpsim {

/// Accounting for a single simulated processor.
struct RankStats {
  Time compute_time = 0.0;  ///< local computation (t_c charges)
  Time comm_time = 0.0;     ///< time inside communication operations
  Time io_time = 0.0;       ///< disk I/O while relocating records (t_io)
  Time idle_time = 0.0;     ///< time spent waiting at barriers / collectives

  std::uint64_t words_sent = 0;     ///< 4-byte words this rank injected
  std::uint64_t words_received = 0;
  std::uint64_t messages_sent = 0;  ///< point-to-point + per-collective-round

  [[nodiscard]] Time busy_time() const {
    return compute_time + comm_time + io_time;
  }

  RankStats& operator+=(const RankStats& o) {
    compute_time += o.compute_time;
    comm_time += o.comm_time;
    io_time += o.io_time;
    idle_time += o.idle_time;
    words_sent += o.words_sent;
    words_received += o.words_received;
    messages_sent += o.messages_sent;
    return *this;
  }
};

}  // namespace pdt::mpsim
