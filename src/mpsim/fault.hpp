// Deterministic fault injection for the simulated machine.
//
// A FaultPlan is a seeded, declarative description of what goes wrong in a
// run: fail-stop deaths (a rank dies when its group starts expanding a
// given tree level), transient stragglers (a rank's charge() costs are
// scaled by a factor over a level window), delayed links (point-to-point
// costs between two ranks are scaled), and *transient, retryable* faults:
// checksum-detectable corruption on a link and collective timeouts that
// heal after a bounded number of virtual retries. The Machine arms a plan
// into a FaultInjector, which tracks runtime state: which ranks are alive,
// which deaths already fired, what level each rank is working at, and how
// much transient-fault budget each entry has left.
//
// Because all time in mpsim is virtual, a plan is perfectly reproducible:
// the same seed yields the same deaths at the same virtual instants, so
// recovery can be tested bit-for-bit (DESIGN.md §7).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpsim/cost_model.hpp"
#include "mpsim/topology.hpp"

namespace pdt::mpsim {

/// Thrown when work is charged to (or a collective includes) a rank that
/// fail-stopped. Caught by the recovery layer (core/recovery.hpp), never
/// by user code on the fault-free path.
class RankFailure : public std::runtime_error {
 public:
  RankFailure(Rank rank, int level, bool detected);

  Rank rank = -1;      ///< the rank that died
  int level = -1;      ///< tree level its group was expanding
  /// True when a collective already charged the detection timeout to the
  /// survivors (a barrier-side detection); false when the failure surfaced
  /// at a charge on the dead rank itself, in which case the recovery path
  /// charges the timeout.
  bool detected = false;
};

/// Thrown by Machine::barrier_over when a collective includes a rank that
/// was marked unreachable: on a real machine this collective would hang
/// forever. The message carries every member's recent collective stamps
/// (what / level / virtual time) — the per-rank stack a deadlock
/// post-mortem needs.
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One scheduled fail-stop: `rank` dies when its group enters tree level
/// `level` (after that level's checkpoint is taken, so recovery always has
/// a consistent snapshot that includes the dead rank's shard).
struct FailStop {
  Rank rank = -1;
  int level = 0;
};

/// A transient slow-down: `rank`'s charges cost `factor`x while it works
/// on levels in [from_level, to_level] inclusive.
struct Straggler {
  Rank rank = -1;
  int from_level = 0;
  int to_level = 0;
  double factor = 1.0;
};

/// A degraded link: point-to-point costs between ranks a and b (either
/// direction) are scaled by `factor`.
struct LinkDelay {
  Rank a = -1;
  Rank b = -1;
  double factor = 1.0;
};

/// Checksum-detectable corruption on the a<->b link: the next `count`
/// collectives at tree level `level` that include both endpoints fail
/// their integrity check and must be retried. Rank `a` is blamed as the
/// faulty rank (it owns the flaky NIC in this model).
struct LinkCorrupt {
  Rank a = -1;
  Rank b = -1;
  int level = 0;
  int count = 1;
};

/// A transient collective timeout: the next `count` collectives at tree
/// level `level` that include `rank` time out and must be retried; the
/// fault heals once the budget is spent.
struct TransientTimeout {
  Rank rank = -1;
  int level = 0;
  int count = 1;
};

/// Outcome of consuming transient-fault budget for one collective (see
/// FaultInjector::take_transient): how many attempts failed before the
/// fault healed, which rank is blamed, and whether the retry budget of
/// the collective was exhausted (the caller escalates to RankFailure).
struct TransientVerdict {
  int failures = 0;      ///< failed attempts before success (0 = clean)
  Rank faulty = -1;      ///< blamed rank (valid when failures > 0)
  bool exhausted = false;  ///< true when failures == max_attempts and the
                           ///< fault still has budget: escalate
};

/// Declarative fault schedule. Built either explicitly (tests, CLI flags)
/// or from a seed via random().
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Builders validate their arguments eagerly and throw
  /// std::invalid_argument on out-of-range values (negative ranks/levels,
  /// non-positive factors/counts, self-links) — a silently-accepted bad
  /// plan would fire nothing and make a fault test vacuously pass.
  FaultPlan& fail_stop(Rank rank, int level);
  FaultPlan& straggler(Rank rank, int from_level, int to_level,
                       double factor);
  FaultPlan& delay_link(Rank a, Rank b, double factor);
  FaultPlan& corrupt_link(Rank a, Rank b, int level, int count);
  FaultPlan& transient_timeout(Rank rank, int level, int count);

  /// A seeded single-failure scenario: one fail-stop at a pseudo-random
  /// (rank, level) plus one straggler window, both drawn from a splitmix64
  /// stream of `seed`. Identical seeds yield identical plans.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed, int nprocs,
                                        int max_level);

  [[nodiscard]] const std::vector<FailStop>& fail_stops() const {
    return fail_stops_;
  }
  [[nodiscard]] const std::vector<Straggler>& stragglers() const {
    return stragglers_;
  }
  [[nodiscard]] const std::vector<LinkDelay>& link_delays() const {
    return link_delays_;
  }
  [[nodiscard]] const std::vector<LinkCorrupt>& link_corrupts() const {
    return link_corrupts_;
  }
  [[nodiscard]] const std::vector<TransientTimeout>& transient_timeouts()
      const {
    return transient_timeouts_;
  }
  [[nodiscard]] bool empty() const {
    return fail_stops_.empty() && stragglers_.empty() &&
           link_delays_.empty() && link_corrupts_.empty() &&
           transient_timeouts_.empty();
  }

  /// One-line human-readable description (for bench/report headers).
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<FailStop> fail_stops_;
  std::vector<Straggler> stragglers_;
  std::vector<LinkDelay> link_delays_;
  std::vector<LinkCorrupt> link_corrupts_;
  std::vector<TransientTimeout> transient_timeouts_;
};

/// Runtime state of an armed plan, owned by the Machine. Strictly
/// deterministic: deaths fire only at enter_level(), factors are pure
/// functions of (rank, current level).
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int nprocs);

  /// A group whose member ranks are `ranks` starts expanding tree level
  /// `level`: update the members' current level and fire any scheduled
  /// fail-stop matching (member, level) that has not fired yet. Called by
  /// the recovery layer after the level checkpoint is taken.
  void enter_level(int level, const std::vector<Rank>& ranks);

  [[nodiscard]] bool alive(Rank r) const {
    return alive_[static_cast<std::size_t>(r)] != 0;
  }
  /// True once the recovery path has absorbed r's death: stale groups that
  /// still list r simply exclude it from barriers instead of re-detecting.
  [[nodiscard]] bool recovered(Rank r) const {
    return recovered_[static_cast<std::size_t>(r)] != 0;
  }
  void mark_recovered(Rank r) { recovered_[static_cast<std::size_t>(r)] = 1; }

  /// Straggler cost multiplier for r at its current level (1.0 normally).
  [[nodiscard]] double time_factor(Rank r) const;
  /// Link cost multiplier between a and b (1.0 normally).
  [[nodiscard]] double link_factor(Rank a, Rank b) const;

  /// The tree level r last entered (-1 before any enter_level).
  [[nodiscard]] int level(Rank r) const {
    return level_[static_cast<std::size_t>(r)];
  }

  /// Consume transient-fault budget for one collective over `ranks`. A
  /// LinkCorrupt entry matches when both endpoints are members and the
  /// blamed rank works at the entry's level; a TransientTimeout entry
  /// matches when its rank is a member at the entry's level. The first
  /// matching entry with budget left yields up to `max_attempts` failed
  /// attempts: if its remaining count fits, that many attempts fail and
  /// the fault heals; otherwise `max_attempts` attempts fail, the budget
  /// is drained, and the verdict is marked exhausted (caller escalates
  /// the blamed rank to the fail-stop path). Deterministic: depends only
  /// on plan order and prior consumption.
  [[nodiscard]] TransientVerdict take_transient(const std::vector<Rank>& ranks,
                                                int max_attempts);

  /// Forcibly fail-stop `r` (exhausted-retry escalation): the rank is
  /// marked dead exactly as if a scheduled FailStop fired.
  void kill(Rank r);

  [[nodiscard]] int num_alive() const;
  /// All currently-alive ranks, ascending.
  [[nodiscard]] std::vector<Rank> alive_ranks() const;
  [[nodiscard]] int deaths_fired() const { return deaths_fired_; }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Revive everything and un-fire all deaths (Machine::reset()).
  void reset();

 private:
  FaultPlan plan_;
  std::vector<char> alive_;
  std::vector<char> recovered_;
  std::vector<int> level_;
  std::vector<char> fired_;     ///< parallel to plan_.fail_stops()
  std::vector<int> corrupt_remaining_;    ///< parallel to link_corrupts()
  std::vector<int> timeout_remaining_;    ///< parallel to transient_timeouts()
  int deaths_fired_ = 0;
};

}  // namespace pdt::mpsim
