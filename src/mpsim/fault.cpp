#include "mpsim/fault.hpp"

#include <algorithm>
#include <cassert>

namespace pdt::mpsim {

namespace {

/// Local splitmix64 so mpsim stays independent of the data library's Rng.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

RankFailure::RankFailure(Rank rank_in, int level_in, bool detected_in)
    : std::runtime_error("rank " + std::to_string(rank_in) +
                         " fail-stopped at level " +
                         std::to_string(level_in)),
      rank(rank_in),
      level(level_in),
      detected(detected_in) {}

namespace {

void require(bool ok, const char* what) {
  if (!ok) {
    throw std::invalid_argument(std::string("FaultPlan: ") + what);
  }
}

}  // namespace

FaultPlan& FaultPlan::fail_stop(Rank rank, int level) {
  require(rank >= 0, "fail_stop rank must be >= 0");
  require(level >= 0, "fail_stop level must be >= 0");
  fail_stops_.push_back(FailStop{rank, level});
  return *this;
}

FaultPlan& FaultPlan::straggler(Rank rank, int from_level, int to_level,
                                double factor) {
  require(rank >= 0, "straggler rank must be >= 0");
  require(from_level >= 0, "straggler from_level must be >= 0");
  require(to_level >= from_level, "straggler to_level must be >= from_level");
  require(factor > 0.0, "straggler factor must be > 0");
  stragglers_.push_back(Straggler{rank, from_level, to_level, factor});
  return *this;
}

FaultPlan& FaultPlan::delay_link(Rank a, Rank b, double factor) {
  require(a >= 0 && b >= 0, "delay_link ranks must be >= 0");
  require(a != b, "delay_link endpoints must differ");
  require(factor > 0.0, "delay_link factor must be > 0");
  link_delays_.push_back(LinkDelay{a, b, factor});
  return *this;
}

FaultPlan& FaultPlan::corrupt_link(Rank a, Rank b, int level, int count) {
  require(a >= 0 && b >= 0, "corrupt_link ranks must be >= 0");
  require(a != b, "corrupt_link endpoints must differ");
  require(level >= 0, "corrupt_link level must be >= 0");
  require(count >= 1, "corrupt_link count must be >= 1");
  link_corrupts_.push_back(LinkCorrupt{a, b, level, count});
  return *this;
}

FaultPlan& FaultPlan::transient_timeout(Rank rank, int level, int count) {
  require(rank >= 0, "transient_timeout rank must be >= 0");
  require(level >= 0, "transient_timeout level must be >= 0");
  require(count >= 1, "transient_timeout count must be >= 1");
  transient_timeouts_.push_back(TransientTimeout{rank, level, count});
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed, int nprocs, int max_level) {
  assert(nprocs >= 1 && max_level >= 1);
  std::uint64_t s = seed;
  FaultPlan plan;
  const Rank victim =
      static_cast<Rank>(splitmix64(s) % static_cast<std::uint64_t>(nprocs));
  const int fail_level =
      static_cast<int>(splitmix64(s) % static_cast<std::uint64_t>(max_level));
  plan.fail_stop(victim, fail_level);
  const Rank slow =
      static_cast<Rank>(splitmix64(s) % static_cast<std::uint64_t>(nprocs));
  const int from =
      static_cast<int>(splitmix64(s) % static_cast<std::uint64_t>(max_level));
  const double factor = 2.0 + static_cast<double>(splitmix64(s) % 7);
  plan.straggler(slow, from, from + 2, factor);
  return plan;
}

std::string FaultPlan::describe() const {
  if (empty()) return "no faults";
  std::string out;
  for (const FailStop& f : fail_stops_) {
    out += "fail-stop rank " + std::to_string(f.rank) + " @ level " +
           std::to_string(f.level) + "; ";
  }
  for (const Straggler& s : stragglers_) {
    out += "straggler rank " + std::to_string(s.rank) + " x" +
           std::to_string(s.factor).substr(0, 4) + " @ levels [" +
           std::to_string(s.from_level) + "," + std::to_string(s.to_level) +
           "]; ";
  }
  for (const LinkDelay& l : link_delays_) {
    out += "link " + std::to_string(l.a) + "<->" + std::to_string(l.b) +
           " x" + std::to_string(l.factor).substr(0, 4) + "; ";
  }
  for (const LinkCorrupt& c : link_corrupts_) {
    out += "corrupt link " + std::to_string(c.a) + "<->" +
           std::to_string(c.b) + " @ level " + std::to_string(c.level) +
           " x" + std::to_string(c.count) + "; ";
  }
  for (const TransientTimeout& t : transient_timeouts_) {
    out += "transient timeout rank " + std::to_string(t.rank) + " @ level " +
           std::to_string(t.level) + " x" + std::to_string(t.count) + "; ";
  }
  out.resize(out.size() - 2);
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan, int nprocs)
    : plan_(std::move(plan)),
      alive_(static_cast<std::size_t>(nprocs), 1),
      recovered_(static_cast<std::size_t>(nprocs), 0),
      level_(static_cast<std::size_t>(nprocs), -1),
      fired_(plan_.fail_stops().size(), 0) {
  assert(nprocs >= 1);
  corrupt_remaining_.reserve(plan_.link_corrupts().size());
  for (const LinkCorrupt& c : plan_.link_corrupts()) {
    corrupt_remaining_.push_back(c.count);
  }
  timeout_remaining_.reserve(plan_.transient_timeouts().size());
  for (const TransientTimeout& t : plan_.transient_timeouts()) {
    timeout_remaining_.push_back(t.count);
  }
}

void FaultInjector::enter_level(int level, const std::vector<Rank>& ranks) {
  for (const Rank r : ranks) {
    level_[static_cast<std::size_t>(r)] = level;
  }
  const auto& stops = plan_.fail_stops();
  for (std::size_t i = 0; i < stops.size(); ++i) {
    if (fired_[i] != 0 || stops[i].level != level) continue;
    for (const Rank r : ranks) {
      if (r == stops[i].rank && alive(r)) {
        alive_[static_cast<std::size_t>(r)] = 0;
        fired_[i] = 1;
        ++deaths_fired_;
        break;
      }
    }
  }
}

double FaultInjector::time_factor(Rank r) const {
  const int lvl = level_[static_cast<std::size_t>(r)];
  double factor = 1.0;
  for (const Straggler& s : plan_.stragglers()) {
    if (s.rank == r && lvl >= s.from_level && lvl <= s.to_level) {
      factor *= s.factor;
    }
  }
  return factor;
}

double FaultInjector::link_factor(Rank a, Rank b) const {
  double factor = 1.0;
  for (const LinkDelay& l : plan_.link_delays()) {
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
      factor *= l.factor;
    }
  }
  return factor;
}

TransientVerdict FaultInjector::take_transient(const std::vector<Rank>& ranks,
                                               int max_attempts) {
  assert(max_attempts >= 1);
  const auto is_member = [&ranks](Rank r) {
    return std::find(ranks.begin(), ranks.end(), r) != ranks.end();
  };
  const auto consume = [this, max_attempts](int* remaining,
                                            Rank faulty) -> TransientVerdict {
    TransientVerdict v;
    v.faulty = faulty;
    if (*remaining <= max_attempts) {
      v.failures = *remaining;
      *remaining = 0;
    } else {
      v.failures = max_attempts;
      v.exhausted = true;
      *remaining = 0;  // the rank escalates to dead; drop the stale budget
    }
    return v;
  };
  const auto& corrupts = plan_.link_corrupts();
  for (std::size_t i = 0; i < corrupts.size(); ++i) {
    const LinkCorrupt& c = corrupts[i];
    if (corrupt_remaining_[i] <= 0) continue;
    if (!is_member(c.a) || !is_member(c.b) || !alive(c.a) || !alive(c.b)) {
      continue;
    }
    if (level(c.a) != c.level) continue;
    return consume(&corrupt_remaining_[i], c.a);
  }
  const auto& timeouts = plan_.transient_timeouts();
  for (std::size_t i = 0; i < timeouts.size(); ++i) {
    const TransientTimeout& t = timeouts[i];
    if (timeout_remaining_[i] <= 0) continue;
    if (!is_member(t.rank) || !alive(t.rank)) continue;
    if (level(t.rank) != t.level) continue;
    return consume(&timeout_remaining_[i], t.rank);
  }
  return TransientVerdict{};
}

void FaultInjector::kill(Rank r) {
  if (!alive(r)) return;
  alive_[static_cast<std::size_t>(r)] = 0;
  ++deaths_fired_;
}

int FaultInjector::num_alive() const {
  return static_cast<int>(
      std::count(alive_.begin(), alive_.end(), static_cast<char>(1)));
}

std::vector<Rank> FaultInjector::alive_ranks() const {
  std::vector<Rank> out;
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i] != 0) out.push_back(static_cast<Rank>(i));
  }
  return out;
}

void FaultInjector::reset() {
  std::fill(alive_.begin(), alive_.end(), static_cast<char>(1));
  std::fill(recovered_.begin(), recovered_.end(), static_cast<char>(0));
  std::fill(level_.begin(), level_.end(), -1);
  std::fill(fired_.begin(), fired_.end(), static_cast<char>(0));
  const auto& corrupts = plan_.link_corrupts();
  for (std::size_t i = 0; i < corrupts.size(); ++i) {
    corrupt_remaining_[i] = corrupts[i].count;
  }
  const auto& timeouts = plan_.transient_timeouts();
  for (std::size_t i = 0; i < timeouts.size(); ++i) {
    timeout_remaining_[i] = timeouts[i].count;
  }
  deaths_fired_ = 0;
}

}  // namespace pdt::mpsim
