#include "mpsim/fault.hpp"

#include <algorithm>
#include <cassert>

namespace pdt::mpsim {

namespace {

/// Local splitmix64 so mpsim stays independent of the data library's Rng.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

RankFailure::RankFailure(Rank rank_in, int level_in, bool detected_in)
    : std::runtime_error("rank " + std::to_string(rank_in) +
                         " fail-stopped at level " +
                         std::to_string(level_in)),
      rank(rank_in),
      level(level_in),
      detected(detected_in) {}

FaultPlan& FaultPlan::fail_stop(Rank rank, int level) {
  fail_stops_.push_back(FailStop{rank, level});
  return *this;
}

FaultPlan& FaultPlan::straggler(Rank rank, int from_level, int to_level,
                                double factor) {
  stragglers_.push_back(Straggler{rank, from_level, to_level, factor});
  return *this;
}

FaultPlan& FaultPlan::delay_link(Rank a, Rank b, double factor) {
  link_delays_.push_back(LinkDelay{a, b, factor});
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed, int nprocs, int max_level) {
  assert(nprocs >= 1 && max_level >= 1);
  std::uint64_t s = seed;
  FaultPlan plan;
  const Rank victim =
      static_cast<Rank>(splitmix64(s) % static_cast<std::uint64_t>(nprocs));
  const int fail_level =
      static_cast<int>(splitmix64(s) % static_cast<std::uint64_t>(max_level));
  plan.fail_stop(victim, fail_level);
  const Rank slow =
      static_cast<Rank>(splitmix64(s) % static_cast<std::uint64_t>(nprocs));
  const int from =
      static_cast<int>(splitmix64(s) % static_cast<std::uint64_t>(max_level));
  const double factor = 2.0 + static_cast<double>(splitmix64(s) % 7);
  plan.straggler(slow, from, from + 2, factor);
  return plan;
}

std::string FaultPlan::describe() const {
  if (empty()) return "no faults";
  std::string out;
  for (const FailStop& f : fail_stops_) {
    out += "fail-stop rank " + std::to_string(f.rank) + " @ level " +
           std::to_string(f.level) + "; ";
  }
  for (const Straggler& s : stragglers_) {
    out += "straggler rank " + std::to_string(s.rank) + " x" +
           std::to_string(s.factor).substr(0, 4) + " @ levels [" +
           std::to_string(s.from_level) + "," + std::to_string(s.to_level) +
           "]; ";
  }
  for (const LinkDelay& l : link_delays_) {
    out += "link " + std::to_string(l.a) + "<->" + std::to_string(l.b) +
           " x" + std::to_string(l.factor).substr(0, 4) + "; ";
  }
  out.resize(out.size() - 2);
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan, int nprocs)
    : plan_(std::move(plan)),
      alive_(static_cast<std::size_t>(nprocs), 1),
      recovered_(static_cast<std::size_t>(nprocs), 0),
      level_(static_cast<std::size_t>(nprocs), -1),
      fired_(plan_.fail_stops().size(), 0) {
  assert(nprocs >= 1);
}

void FaultInjector::enter_level(int level, const std::vector<Rank>& ranks) {
  for (const Rank r : ranks) {
    level_[static_cast<std::size_t>(r)] = level;
  }
  const auto& stops = plan_.fail_stops();
  for (std::size_t i = 0; i < stops.size(); ++i) {
    if (fired_[i] != 0 || stops[i].level != level) continue;
    for (const Rank r : ranks) {
      if (r == stops[i].rank && alive(r)) {
        alive_[static_cast<std::size_t>(r)] = 0;
        fired_[i] = 1;
        ++deaths_fired_;
        break;
      }
    }
  }
}

double FaultInjector::time_factor(Rank r) const {
  const int lvl = level_[static_cast<std::size_t>(r)];
  double factor = 1.0;
  for (const Straggler& s : plan_.stragglers()) {
    if (s.rank == r && lvl >= s.from_level && lvl <= s.to_level) {
      factor *= s.factor;
    }
  }
  return factor;
}

double FaultInjector::link_factor(Rank a, Rank b) const {
  double factor = 1.0;
  for (const LinkDelay& l : plan_.link_delays()) {
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
      factor *= l.factor;
    }
  }
  return factor;
}

int FaultInjector::num_alive() const {
  return static_cast<int>(
      std::count(alive_.begin(), alive_.end(), static_cast<char>(1)));
}

std::vector<Rank> FaultInjector::alive_ranks() const {
  std::vector<Rank> out;
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i] != 0) out.push_back(static_cast<Rank>(i));
  }
  return out;
}

void FaultInjector::reset() {
  std::fill(alive_.begin(), alive_.end(), static_cast<char>(1));
  std::fill(recovered_.begin(), recovered_.end(), static_cast<char>(0));
  std::fill(level_.begin(), level_.end(), -1);
  std::fill(fired_.begin(), fired_.end(), static_cast<char>(0));
  deaths_fired_ = 0;
}

}  // namespace pdt::mpsim
