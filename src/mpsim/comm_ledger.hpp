// Communication-cost ledger for the simulated machine.
//
// A CommLedger attached to a Machine records one entry per Group
// collective — kind, group, payload words, the per-member cost the
// collective actually charged, and the Eq. 2-4 analytic prediction from
// the CostModel — and accumulates a rank x rank traffic matrix (words and
// messages) describing who sent how much to whom. This is the measured
// side of the paper's Section 4 cost analysis: the exporter
// (obs::write_comm, schema "pdt-comm-v1") reports the
// measured-vs-predicted delta per collective kind and per tree level.
//
// Accounting convention (model-level, exact arithmetic):
//
//   predicted = sum over members of the member's Eq. 2-4 communication
//               formula (what the collective charged as comm time);
//   measured  = the same sum after folding in trailing-barrier
//               serialization: collectives that end with a barrier
//               (pairwise exchange, transfers, all-to-all) leave every
//               member waiting for the slowest, so each member's measured
//               cost is the group maximum.
//
// Hence measured - predicted is exactly the barrier-idle penalty folded
// into the collective, and is bit-exact 0 for the uniform-cost
// collectives (all-reduce, broadcast) that charge the model formula
// directly to every member. Entry-barrier idle (waiting for stragglers
// *before* the collective starts) is load imbalance of the preceding
// phase and is deliberately not part of either number; I/O surcharges
// (t_io record relocation) are reported separately as io_us.
//
// The ledger is strictly passive: recording never touches the clocks, so
// attaching one can never change simulated time (the obs parity suite
// enforces this bit-for-bit).
#pragma once

#include <cstdint>
#include <vector>

#include "mpsim/cost_model.hpp"
#include "mpsim/topology.hpp"

namespace pdt::mpsim {

/// Which Group collective produced a ledger entry.
enum class CollectiveKind {
  AllReduce,         ///< all_reduce_sum / charge_all_reduce (Eq. 2)
  Broadcast,         ///< charge_broadcast
  PairwiseExchange,  ///< pairwise_exchange — the moving phase (Eq. 3)
  Transfers,         ///< charge_transfers — load balancing (Eq. 4)
  AllToAll,          ///< all_to_all_personalized [KGGK94]
};

inline constexpr int kNumCollectiveKinds = 5;

[[nodiscard]] const char* to_string(CollectiveKind k);

/// One collective call, as recorded by Group.
struct CollectiveEntry {
  CollectiveKind kind = CollectiveKind::AllReduce;
  /// Tree level the call was issued at (see CommLedger::set_level);
  /// -1 = outside any level scope (e.g. partition restructuring).
  int level = -1;
  Rank group_base = 0;  ///< representative (lowest) rank of the group
  int group_size = 1;
  double words = 0.0;      ///< payload words (kind-specific aggregate)
  Time predicted_us = 0.0; ///< sum over members of the Eq. 2-4 formula
  Time measured_us = 0.0;  ///< predicted + trailing-barrier fold
  Time io_us = 0.0;        ///< t_io surcharges billed inside the call
  /// Backed-off timeout windows burned on transient-fault retries before
  /// this collective succeeded (summed over members; 0 on a clean call).
  Time retry_us = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t retries = 0;  ///< failed attempts absorbed by this call

  [[nodiscard]] Time delta_us() const { return measured_us - predicted_us; }
};

class CommLedger {
 public:
  /// Size the traffic matrix for `n` ranks (called by Machine on attach;
  /// growing later is also fine — existing counts are preserved).
  void ensure_ranks(int n);
  [[nodiscard]] int num_ranks() const { return n_; }

  /// Tree level stamped onto subsequently recorded entries; returns the
  /// previous level so LedgerLevelScope can restore it. -1 = none.
  int set_level(int level);
  [[nodiscard]] int level() const { return level_; }

  /// Append a collective entry (the current level is stamped on).
  void record(CollectiveEntry e);
  /// Account `words` 4-byte words (and `messages` point-to-point sends)
  /// travelling from `from` to `to`.
  void add_traffic(Rank from, Rank to, double words,
                   std::uint64_t messages = 1);

  [[nodiscard]] const std::vector<CollectiveEntry>& entries() const {
    return entries_;
  }
  /// Words sent from `from` to `to` over the whole run.
  [[nodiscard]] double words(Rank from, Rank to) const;
  [[nodiscard]] std::uint64_t messages(Rank from, Rank to) const;
  /// Row / column sums of the traffic matrix.
  [[nodiscard]] double words_sent(Rank r) const;
  [[nodiscard]] double words_received(Rank r) const;

  /// Aggregate of all entries of one kind (or one level, any kind).
  struct Totals {
    std::uint64_t calls = 0;
    double words = 0.0;
    Time predicted_us = 0.0;
    Time measured_us = 0.0;
    Time io_us = 0.0;
    Time retry_us = 0.0;
    std::uint64_t messages = 0;
    std::uint64_t retries = 0;

    [[nodiscard]] Time delta_us() const { return measured_us - predicted_us; }
  };
  [[nodiscard]] Totals kind_totals(CollectiveKind k) const;
  [[nodiscard]] Totals level_totals(int level) const;
  /// Highest level seen on any entry (-1 if none).
  [[nodiscard]] int max_level() const { return max_level_; }

  void clear();

 private:
  [[nodiscard]] std::size_t cell(Rank from, Rank to) const {
    return static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(to);
  }

  int n_ = 0;
  int level_ = -1;
  int max_level_ = -1;
  std::vector<CollectiveEntry> entries_;
  std::vector<double> words_;            // n_ x n_, row = sender
  std::vector<std::uint64_t> messages_;  // n_ x n_
};

/// RAII level tag, null-safe so call sites stay branch-cheap when no
/// ledger is attached (mirrors obs::LevelScope for the profiler).
class LedgerLevelScope {
 public:
  LedgerLevelScope(CommLedger* l, int level) : l_(l) {
    if (l_ != nullptr) prev_ = l_->set_level(level);
  }
  ~LedgerLevelScope() {
    if (l_ != nullptr) l_->set_level(prev_);
  }
  LedgerLevelScope(const LedgerLevelScope&) = delete;
  LedgerLevelScope& operator=(const LedgerLevelScope&) = delete;

 private:
  CommLedger* l_;
  int prev_ = -1;
};

}  // namespace pdt::mpsim
