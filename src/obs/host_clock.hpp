// Host (wall-clock) time sources for the HostProfiler.
//
// Everything else in src/obs measures the *virtual* clocks of the
// simulated machine; this header is the one place that touches the real
// host CPU. A HostClock abstracts the nanosecond timestamp source so the
// profiler's attribution logic is testable against a deterministic fake,
// while SteadyHostClock (std::chrono::steady_clock) is what production
// runs use. HostCounterGroup optionally adds hardware cycle/instruction
// counts via perf_event_open on Linux; everywhere else — and whenever the
// kernel refuses the syscall (seccomp, perf_event_paranoid, containers) —
// it degrades to a disabled no-op, so callers never need to gate on the
// platform themselves.
#pragma once

#include <cstdint>

namespace pdt::obs {

/// Monotonic nanosecond timestamp source. Implementations must be
/// monotonic (now_ns() never decreases) and cheap: the profiler calls
/// now_ns() once per simulated charge.
class HostClock {
 public:
  virtual ~HostClock() = default;
  [[nodiscard]] virtual std::int64_t now_ns() = 0;
  /// Stable identifier serialized into pdt-host-v1 ("steady_clock",
  /// "fake", ...), so reports name their time source.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// The production clock: std::chrono::steady_clock in nanoseconds.
class SteadyHostClock final : public HostClock {
 public:
  [[nodiscard]] std::int64_t now_ns() override;
  [[nodiscard]] const char* name() const override { return "steady_clock"; }
};

/// Snapshot of the hardware counters over the profiled interval.
struct HostCounters {
  bool enabled = false;  ///< false: platform/kernel refused the counters
  std::int64_t cycles = 0;
  std::int64_t instructions = 0;
};

/// CPU cycle + retired-instruction counters over one measurement window,
/// backed by perf_event_open when the platform provides it.
///
/// Usage: open() once (false = unavailable, all later calls no-ops),
/// start() before the measured region, read() after. Opening counters is
/// best-effort by design: a profiler asked for counters on a machine
/// without them still produces its wall-clock accounts, just with
/// counters.enabled == false in the export.
class HostCounterGroup {
 public:
  HostCounterGroup() = default;
  ~HostCounterGroup();
  HostCounterGroup(const HostCounterGroup&) = delete;
  HostCounterGroup& operator=(const HostCounterGroup&) = delete;

  /// Try to open the cycle + instruction counters for this process.
  bool open();
  [[nodiscard]] bool opened() const { return cycles_fd_ >= 0; }
  /// Reset and enable the counters (no-op when not opened).
  void start();
  /// Read the counts accumulated since start().
  [[nodiscard]] HostCounters read() const;

 private:
  int cycles_fd_ = -1;
  int instructions_fd_ = -1;
};

}  // namespace pdt::obs
