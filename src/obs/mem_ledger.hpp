// Per-rank virtual-memory ledger.
//
// The Machine's byte accounts answer "how many bytes is rank r holding,
// and what was its high-water mark, per data structure?" — always on,
// integer-exact, clock-free. The MemLedger adds *attribution*: every
// alloc/free event is stamped with the innermost open phase and the
// active tree level from the PhaseProfiler, producing the live/peak
// footprint per (tag, phase, level, rank) — the memory analogue of the
// phase profiler's time breakdown. Section 4's memory-scalability claim
// (each rank holds O(N/P) records plus bounded per-level scratch) then
// becomes a measurable, per-structure invariant instead of prose.
//
// Like every observer in this codebase the ledger is strictly passive:
// it is fed through the Machine's single observer slot (via
// ObserverFanout) and can never change simulated time or the byte
// accounts themselves.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "mpsim/observer.hpp"
#include "mpsim/stats.hpp"
#include "obs/phase.hpp"

namespace pdt::obs {

class MemLedger {
 public:
  /// The profiler supplies the (phase, level) stamp for each event; it
  /// may be null, in which case everything lands in phase 0 / kNoLevel.
  explicit MemLedger(const PhaseProfiler* profiler = nullptr)
      : profiler_(profiler) {}

  void on_alloc(mpsim::Rank r, mpsim::MemTag tag, std::int64_t bytes);
  void on_free(mpsim::Rank r, mpsim::MemTag tag, std::int64_t bytes);

  /// Number of ranks seen (== 1 + max rank that charged memory).
  [[nodiscard]] int num_ranks() const {
    return static_cast<int>(ranks_.size());
  }
  [[nodiscard]] std::int64_t live_bytes(mpsim::Rank r) const;
  [[nodiscard]] std::int64_t peak_bytes(mpsim::Rank r) const;
  /// Total bytes ever charged / released by rank r. Equal at algorithm
  /// teardown: every structure the run allocates, it must release.
  [[nodiscard]] std::int64_t charged_bytes(mpsim::Rank r) const;
  [[nodiscard]] std::int64_t released_bytes(mpsim::Rank r) const;
  [[nodiscard]] std::uint64_t events() const { return events_; }

  /// One (tag, phase, level, rank) attribution cell.
  struct Row {
    mpsim::MemTag tag = mpsim::MemTag::Records;
    PhaseId phase = 0;
    int level = kNoLevel;
    mpsim::Rank rank = 0;
    std::int64_t live = 0;  ///< bytes still attributed to this cell
    std::int64_t peak = 0;  ///< high-water mark of this cell's live bytes
  };
  /// All cells ever touched, ordered by (tag, phase, level, rank) —
  /// deterministic for export.
  [[nodiscard]] std::vector<Row> rows() const;

  /// Rank r's heaviest attribution cells by peak bytes (ties broken by
  /// key order), at most `k` of them.
  [[nodiscard]] std::vector<Row> top_segments(mpsim::Rank r,
                                              std::size_t k) const;

  /// Analytic Section-4 prediction for the run this ledger observed,
  /// recorded by the formulation at setup time (empty if none was set).
  void set_predicted(const mpsim::MemPredicted& p) { predicted_ = p; }
  [[nodiscard]] const mpsim::MemPredicted& predicted() const {
    return predicted_;
  }

  [[nodiscard]] const PhaseProfiler* profiler() const { return profiler_; }

 private:
  struct RankAccount {
    std::int64_t live = 0;
    std::int64_t peak = 0;
    std::int64_t charged = 0;
    std::int64_t released = 0;
  };
  struct Cell {
    std::int64_t live = 0;
    std::int64_t peak = 0;
  };

  void ensure_rank(mpsim::Rank r);
  [[nodiscard]] std::uint64_t key(mpsim::MemTag tag, mpsim::Rank r) const;

  const PhaseProfiler* profiler_;
  mpsim::MemPredicted predicted_;
  std::vector<RankAccount> ranks_;
  // Ordered map keyed (tag, phase, level+1, rank) packed MSB-first, so
  // iteration order == export order. Memory events are per level / per
  // chunk, not per record, so the tree lookup is off the hot path.
  std::map<std::uint64_t, Cell> cells_;
  std::uint64_t events_ = 0;
};

}  // namespace pdt::obs
