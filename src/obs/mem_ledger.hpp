// Per-rank virtual-memory ledger.
//
// The Machine's byte accounts answer "how many bytes is rank r holding,
// and what was its high-water mark, per data structure?" — always on,
// integer-exact, clock-free. The MemLedger adds *attribution*: every
// alloc/free event is stamped with the innermost open phase and the
// active tree level from the PhaseProfiler, producing the live/peak
// footprint per (tag, phase, level, rank) — the memory analogue of the
// phase profiler's time breakdown. Section 4's memory-scalability claim
// (each rank holds O(N/P) records plus bounded per-level scratch) then
// becomes a measurable, per-structure invariant instead of prose.
//
// Like every observer in this codebase the ledger is strictly passive:
// it is fed through the Machine's single observer slot (via
// ObserverFanout) and can never change simulated time or the byte
// accounts themselves.
//
// Thread-safety (DESIGN.md §14): shard-per-thread. Events accumulate in
// the calling thread's shard (stamped through the profiler's per-thread
// scope state); folding accessors iterate shards in shard-id order
// after writers quiesce. Peaks fold additively — the sum of per-shard
// peaks is an upper bound on the true concurrent peak (exact for one
// shard, so single-thread exports stay byte-identical).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "mpsim/observer.hpp"
#include "mpsim/stats.hpp"
#include "obs/phase.hpp"
#include "obs/threads.hpp"

namespace pdt::obs {

class MemLedger {
 public:
  /// The profiler supplies the (phase, level) stamp for each event; it
  /// may be null, in which case everything lands in phase 0 / kNoLevel.
  explicit MemLedger(const PhaseProfiler* profiler = nullptr)
      : profiler_(profiler) {}

  void on_alloc(mpsim::Rank r, mpsim::MemTag tag, std::int64_t bytes);
  void on_free(mpsim::Rank r, mpsim::MemTag tag, std::int64_t bytes);

  /// Number of ranks seen (== 1 + max rank that charged memory).
  [[nodiscard]] int num_ranks() const;
  [[nodiscard]] std::int64_t live_bytes(mpsim::Rank r) const;
  [[nodiscard]] std::int64_t peak_bytes(mpsim::Rank r) const;
  /// Total bytes ever charged / released by rank r. Equal at algorithm
  /// teardown: every structure the run allocates, it must release.
  [[nodiscard]] std::int64_t charged_bytes(mpsim::Rank r) const;
  [[nodiscard]] std::int64_t released_bytes(mpsim::Rank r) const;
  [[nodiscard]] std::uint64_t events() const;
  /// Events dropped because the thread registry ran out of shard ids.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// One (tag, phase, level, rank) attribution cell.
  struct Row {
    mpsim::MemTag tag = mpsim::MemTag::Records;
    PhaseId phase = 0;
    int level = kNoLevel;
    mpsim::Rank rank = 0;
    std::int64_t live = 0;  ///< bytes still attributed to this cell
    std::int64_t peak = 0;  ///< high-water mark of this cell's live bytes
  };
  /// All cells ever touched, ordered by (tag, phase, level, rank) —
  /// deterministic for export.
  [[nodiscard]] std::vector<Row> rows() const;

  /// Rank r's heaviest attribution cells by peak bytes (ties broken by
  /// key order), at most `k` of them.
  [[nodiscard]] std::vector<Row> top_segments(mpsim::Rank r,
                                              std::size_t k) const;

  /// Fold every live shard into the merged store in shard-id order,
  /// recording provenance and resetting the folded shards.
  /// Quiesced-callers only; single-thread runs never need it.
  void merge();
  /// Live per-shard event counts, in shard-id order.
  [[nodiscard]] std::vector<ShardSample> shard_samples() const;
  [[nodiscard]] const std::vector<ShardSample>& merged_samples() const {
    return merged_samples_;
  }

  /// Analytic Section-4 prediction for the run this ledger observed,
  /// recorded by the formulation at setup time (empty if none was set).
  void set_predicted(const mpsim::MemPredicted& p) { predicted_ = p; }
  [[nodiscard]] const mpsim::MemPredicted& predicted() const {
    return predicted_;
  }

  [[nodiscard]] const PhaseProfiler* profiler() const { return profiler_; }

 private:
  struct RankAccount {
    std::int64_t live = 0;
    std::int64_t peak = 0;
    std::int64_t charged = 0;
    std::int64_t released = 0;

    RankAccount& operator+=(const RankAccount& o) {
      live += o.live;
      peak += o.peak;
      charged += o.charged;
      released += o.released;
      return *this;
    }
  };
  struct Cell {
    std::int64_t live = 0;
    std::int64_t peak = 0;
  };
  struct ShardState {
    std::vector<RankAccount> ranks;
    // Ordered map keyed (tag, phase, level+1, rank) packed MSB-first, so
    // iteration order == export order. Memory events are per level / per
    // chunk, not per record, so the tree lookup is off the hot path.
    std::map<std::uint64_t, Cell> cells;
    std::uint64_t events = 0;
  };

  static void ensure_rank(ShardState& s, mpsim::Rank r);
  [[nodiscard]] std::uint64_t key(mpsim::MemTag tag, mpsim::Rank r) const;
  /// Per-rank accounts folded across shards for rank r.
  [[nodiscard]] RankAccount rank_account(mpsim::Rank r) const;
  /// All cells folded across shards into one ordered map (live and peak
  /// both sum; see the peak caveat above).
  [[nodiscard]] std::map<std::uint64_t, Cell> folded_cells() const;

  const PhaseProfiler* profiler_;
  mpsim::MemPredicted predicted_;
  ShardSlots<ShardState> shards_{"obs.mem.shards"};
  ShardState merged_;
  std::vector<ShardSample> merged_samples_;
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace pdt::obs
