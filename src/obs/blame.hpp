// Wait-for blame analysis over an event-sourced execution log.
//
// Walks an EventRecorder's log in happens-before order, tracking each
// rank's clock plus the phase/level of its most recent charge. At every
// synchronization point (barrier, timeout, wait-for) the analyzer knows
// who arrived last — the *holder* — and charges every earlier arrival's
// idle gap to an edge keyed by (idler, idler's level, holder, holder's
// phase). The aggregated edges answer the question the per-phase idle
// totals cannot: "rank 3 idles 41% at level 2 *waiting on rank 0's
// histogram phase*".
//
// The same walk runs offline inside tools/pdt-replay (against replayed
// clocks, so what-if cost models shift the blame); this in-process
// variant serves scaling_explorer and the tests, and doubles as the
// reference for the blame-edge definition in DESIGN.md §8.
#pragma once

#include <vector>

#include "mpsim/event_log.hpp"

namespace pdt::obs {

/// One aggregated idle-blame edge. `holder_phase` is an interned phase
/// id (index into EventRecorder::phase_names()); kRankFailurePhase marks
/// idle caused by waiting out a dead rank's detection timeout.
struct BlameEdge {
  mpsim::Rank idler = -1;
  int idler_level = -1;     ///< tree level of the idler's last charge
  mpsim::Rank holder = -1;  ///< the rank (or dead rank) waited on
  int holder_phase = 0;     ///< phase of the holder's last charge
  mpsim::Time idle_us = 0.0;
  double idle_pct = 0.0;  ///< idle_us / idler's final clock * 100
};

/// Sentinel holder_phase for timeout-induced idleness (there is no
/// holder charge to attribute — the "holder" never arrived).
inline constexpr int kRankFailurePhase = -1;

/// Aggregate all blame edges of the recorded run, ordered by idle_us
/// descending (ties by idler, then holder — deterministic).
std::vector<BlameEdge> blame_edges(const mpsim::EventRecorder& rec);

}  // namespace pdt::obs
