#include "obs/threads.hpp"

#include <algorithm>

namespace pdt::obs {

ContentionRegistry& ContentionRegistry::instance() {
  static ContentionRegistry reg;
  return reg;
}

ContentionCounter* ContentionRegistry::counter(const char* name) {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& e : entries_) {
    if (e->name == name) return &e->counter;
  }
  entries_.push_back(std::make_unique<Entry>());
  entries_.back()->name = name;
  return &entries_.back()->counter;
}

std::vector<LockStats> ContentionRegistry::stats() const {
  std::vector<LockStats> out;
  {
    std::lock_guard<std::mutex> g(mu_);
    out.reserve(entries_.size());
    for (const auto& e : entries_) {
      LockStats s;
      s.name = e->name;
      s.acquisitions = e->counter.acquisitions.load(std::memory_order_relaxed);
      s.contended = e->counter.contended.load(std::memory_order_relaxed);
      s.wait_ns = e->counter.wait_ns.load(std::memory_order_relaxed);
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LockStats& a, const LockStats& b) { return a.name < b.name; });
  return out;
}

ThreadRegistry& ThreadRegistry::instance() {
  static ThreadRegistry reg;
  return reg;
}

// Thread-local lease: acquires a shard id on the thread's first
// current_shard() call and returns it to the registry when the thread
// exits. Main-thread thread_local destruction precedes static
// destruction, so the registry singleton outlives every lease.
struct ShardLease {
  int shard;
  ShardLease() : shard(ThreadRegistry::instance().acquire()) {}
  ~ShardLease() {
    if (shard >= 0) ThreadRegistry::instance().release(shard);
  }
};

int ThreadRegistry::current_shard() {
  thread_local ShardLease lease;
  return lease.shard;
}

int ThreadRegistry::acquire() {
  std::lock_guard<InstrumentedMutex> g(mu_);
  for (int i = 0; i < kMaxShards; ++i) {
    if (!used_[static_cast<std::size_t>(i)]) {
      used_[static_cast<std::size_t>(i)] = true;
      ++stats_.registered;
      ++stats_.active;
      stats_.peak_active = std::max(stats_.peak_active, stats_.active);
      return i;
    }
  }
  ++stats_.overflow;
  return -1;
}

void ThreadRegistry::release(int shard) {
  std::lock_guard<InstrumentedMutex> g(mu_);
  used_[static_cast<std::size_t>(shard)] = false;
  --stats_.active;
}

ThreadRegistry::Stats ThreadRegistry::stats() const {
  std::lock_guard<InstrumentedMutex> g(mu_);
  return stats_;
}

}  // namespace pdt::obs
