// Wall-clock profiler paired cell-for-cell with the virtual PhaseProfiler.
//
// The simulator executes the algorithms' *data* work for real on the host
// CPU while charging *virtual* time to the simulated clocks. The virtual
// side answers "what would the SP-2 have spent here"; the HostProfiler
// answers "what did this host actually spend here". Both ride the same
// (phase, level) stamps: on every Machine charge the profiler samples a
// monotonic host clock and attributes the nanoseconds elapsed since the
// previous charge to the same (phase, level, rank) cell the virtual
// charge landed in. A virtual-cost segment and its host-nanosecond
// account therefore share a key, which is what lets pdt-report render
// simulated-vs-real side by side and rank where the cost model and the
// host diverge.
//
// The attribution is interval-based: the host work *leading up to* a
// charge (building the histogram that is about to be charged, moving the
// records, ...) lands on that charge's cell. Work after the last charge
// of a run is not attributed (it is teardown, not algorithm).
//
// Like every observer here the profiler is strictly passive — it reads a
// clock and writes its own cells, never the machine — so enabling it
// cannot change virtual clocks, trees, or any pre-existing export by a
// single bit (the parity suite enforces this). When disabled it costs
// exactly one null-pointer branch in the observer fanout.
#pragma once

#include <cstdint>
#include <vector>

#include "mpsim/observer.hpp"
#include "obs/host_clock.hpp"
#include "obs/phase.hpp"

namespace pdt::obs {

/// Host-nanosecond totals of one (phase, level, rank) cell, split by the
/// kind of the virtual charge each interval was paired with.
struct HostTotals {
  std::int64_t compute_ns = 0;
  std::int64_t comm_ns = 0;
  std::int64_t io_ns = 0;
  std::int64_t idle_ns = 0;
  std::uint64_t samples = 0;

  [[nodiscard]] std::int64_t total_ns() const {
    return compute_ns + comm_ns + io_ns + idle_ns;
  }

  HostTotals& operator+=(const HostTotals& o) {
    compute_ns += o.compute_ns;
    comm_ns += o.comm_ns;
    io_ns += o.io_ns;
    idle_ns += o.idle_ns;
    samples += o.samples;
    return *this;
  }
};

struct HostProfilerConfig {
  /// Also try to open perf_event_open cycle/instruction counters (Linux
  /// only; silently unavailable elsewhere or when the kernel refuses).
  bool counters = false;
};

class HostProfiler {
 public:
  /// `stamps` supplies the (phase, level) attribution for each sample —
  /// the same PhaseProfiler the virtual charges are attributed through,
  /// so host and virtual cells pair up. May be null (everything lands in
  /// phase 0 / kNoLevel). `clock` may be null: a private SteadyHostClock
  /// is used. A non-null clock is borrowed (tests inject fakes).
  explicit HostProfiler(const PhaseProfiler* stamps = nullptr,
                        HostClock* clock = nullptr,
                        HostProfilerConfig cfg = {});

  /// Observer hook, called (via ObserverFanout) after every Machine
  /// charge: attributes the host time since the previous sample to the
  /// currently open (phase, level) at rank r under the charge's kind.
  void on_charge(mpsim::Rank r, mpsim::ChargeKind kind);

  /// One (phase, level, rank) row of the host breakdown.
  struct Row {
    PhaseId phase = 0;
    int level = kNoLevel;
    mpsim::Rank rank = 0;
    HostTotals totals;
  };
  /// All nonzero rows ordered by (phase, level, rank) — deterministic,
  /// and keyed identically to PhaseProfiler::rows().
  [[nodiscard]] std::vector<Row> rows() const;

  /// Host totals of one phase at one level summed over ranks; pass
  /// any_level == true to sum over levels too (mirrors
  /// PhaseProfiler::phase_totals).
  [[nodiscard]] HostTotals phase_totals(PhaseId p, int level,
                                        bool any_level = false) const;

  /// Host nanoseconds attributed so far, over all cells.
  [[nodiscard]] std::int64_t total_ns() const { return total_ns_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] int num_ranks() const { return num_ranks_; }
  [[nodiscard]] int max_level() const { return max_level_; }

  [[nodiscard]] const char* clock_name() const { return clock_->name(); }
  [[nodiscard]] const PhaseProfiler* stamps() const { return stamps_; }

  /// Hardware counter snapshot (enabled == false when the platform or
  /// kernel does not provide perf_event_open counters, or when the
  /// config did not ask for them).
  [[nodiscard]] HostCounters counters() const;
  /// Whether the config asked for counters at all (so exports can tell
  /// "not requested" from "requested but unavailable").
  [[nodiscard]] bool counters_requested() const { return cfg_.counters; }

 private:
  [[nodiscard]] HostTotals& cell(PhaseId p, int level, mpsim::Rank r);

  HostProfilerConfig cfg_;
  const PhaseProfiler* stamps_;
  SteadyHostClock default_clock_;
  HostClock* clock_;
  HostCounterGroup counter_group_;
  bool started_ = false;
  std::int64_t last_ns_ = 0;
  std::int64_t total_ns_ = 0;
  std::uint64_t samples_ = 0;
  int num_ranks_ = 0;
  int max_level_ = kNoLevel;

  // Same open-addressed (phase, level, rank)-packed cell store as the
  // virtual profiler — the pairing invariant is easiest to keep when the
  // two sides share key layout and iteration order.
  struct Cell {
    std::uint64_t key = ~0ull;
    HostTotals totals;
  };
  std::vector<Cell> cells_;
  std::size_t cells_used_ = 0;
  std::size_t last_hit_ = static_cast<std::size_t>(-1);
  void grow_cells();
};

}  // namespace pdt::obs
