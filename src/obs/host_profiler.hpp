// Wall-clock profiler paired cell-for-cell with the virtual PhaseProfiler.
//
// The simulator executes the algorithms' *data* work for real on the host
// CPU while charging *virtual* time to the simulated clocks. The virtual
// side answers "what would the SP-2 have spent here"; the HostProfiler
// answers "what did this host actually spend here". Both ride the same
// (phase, level) stamps: on every Machine charge the profiler samples a
// monotonic host clock and attributes the nanoseconds elapsed since the
// previous charge to the same (phase, level, rank) cell the virtual
// charge landed in. A virtual-cost segment and its host-nanosecond
// account therefore share a key, which is what lets pdt-report render
// simulated-vs-real side by side and rank where the cost model and the
// host diverge.
//
// The attribution is interval-based: the host work *leading up to* a
// charge (building the histogram that is about to be charged, moving the
// records, ...) lands on that charge's cell. Work after the last charge
// of a run is not attributed (it is teardown, not algorithm).
//
// Like every observer here the profiler is strictly passive — it reads a
// clock and writes its own cells, never the machine — so enabling it
// cannot change virtual clocks, trees, or any pre-existing export by a
// single bit (the parity suite enforces this). When disabled it costs
// exactly one null-pointer branch in the observer fanout.
//
// Thread-safety (DESIGN.md §14): shard-per-thread. The interval chain
// (started/last_ns) is inherently per-thread — each charging thread
// anchors and advances its own chain against the shared clock — and the
// cells accumulate in the calling thread's shard. Folding accessors
// iterate shards in shard-id order after writers quiesce; one thread ⇒
// one shard ⇒ byte-identical exports. A clock step that would go
// backwards is clamped to zero *and counted* (clamped()), surfaced in
// pdt-host-v1 and the pdt-threads-v1 drop/clamp block.
#pragma once

#include <cstdint>
#include <vector>

#include "mpsim/observer.hpp"
#include "obs/host_clock.hpp"
#include "obs/phase.hpp"
#include "obs/threads.hpp"

namespace pdt::obs {

/// Host-nanosecond totals of one (phase, level, rank) cell, split by the
/// kind of the virtual charge each interval was paired with.
struct HostTotals {
  std::int64_t compute_ns = 0;
  std::int64_t comm_ns = 0;
  std::int64_t io_ns = 0;
  std::int64_t idle_ns = 0;
  std::uint64_t samples = 0;

  [[nodiscard]] std::int64_t total_ns() const {
    return compute_ns + comm_ns + io_ns + idle_ns;
  }

  HostTotals& operator+=(const HostTotals& o) {
    compute_ns += o.compute_ns;
    comm_ns += o.comm_ns;
    io_ns += o.io_ns;
    idle_ns += o.idle_ns;
    samples += o.samples;
    return *this;
  }
};

struct HostProfilerConfig {
  /// Also try to open perf_event_open cycle/instruction counters (Linux
  /// only; silently unavailable elsewhere or when the kernel refuses).
  bool counters = false;
};

class HostProfiler {
 public:
  /// `stamps` supplies the (phase, level) attribution for each sample —
  /// the same PhaseProfiler the virtual charges are attributed through,
  /// so host and virtual cells pair up. May be null (everything lands in
  /// phase 0 / kNoLevel). `clock` may be null: a private SteadyHostClock
  /// is used. A non-null clock is borrowed (tests inject fakes).
  explicit HostProfiler(const PhaseProfiler* stamps = nullptr,
                        HostClock* clock = nullptr,
                        HostProfilerConfig cfg = {});

  /// Observer hook, called (via ObserverFanout) after every Machine
  /// charge: attributes the host time since the calling thread's
  /// previous sample to the currently open (phase, level) at rank r
  /// under the charge's kind.
  void on_charge(mpsim::Rank r, mpsim::ChargeKind kind);

  /// One (phase, level, rank) row of the host breakdown.
  struct Row {
    PhaseId phase = 0;
    int level = kNoLevel;
    mpsim::Rank rank = 0;
    HostTotals totals;
  };
  /// All nonzero rows ordered by (phase, level, rank) — deterministic,
  /// and keyed identically to PhaseProfiler::rows().
  [[nodiscard]] std::vector<Row> rows() const;

  /// Host totals of one phase at one level summed over ranks; pass
  /// any_level == true to sum over levels too (mirrors
  /// PhaseProfiler::phase_totals).
  [[nodiscard]] HostTotals phase_totals(PhaseId p, int level,
                                        bool any_level = false) const;

  /// Host nanoseconds attributed so far, over all cells.
  [[nodiscard]] std::int64_t total_ns() const;
  [[nodiscard]] std::uint64_t samples() const;
  [[nodiscard]] int num_ranks() const;
  [[nodiscard]] int max_level() const;
  /// Samples whose clock step would have been negative and was clamped
  /// to zero (a well-behaved monotonic clock never trips this).
  [[nodiscard]] std::uint64_t clamped() const;
  /// Samples dropped because the thread registry ran out of shard ids.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const char* clock_name() const { return clock_->name(); }
  [[nodiscard]] const PhaseProfiler* stamps() const { return stamps_; }

  /// Fold every live shard into the merged store in shard-id order,
  /// recording provenance and resetting the folded shards (their
  /// interval anchors survive, so later charges keep attributing).
  /// Quiesced-callers only; single-thread runs never need it.
  void merge();
  /// Live per-shard sample counts, in shard-id order.
  [[nodiscard]] std::vector<ShardSample> shard_samples() const;
  /// Provenance of every merge() so far (fold order).
  [[nodiscard]] const std::vector<ShardSample>& merged_samples() const {
    return merged_samples_;
  }

  /// Hardware counter snapshot (enabled == false when the platform or
  /// kernel does not provide perf_event_open counters, or when the
  /// config did not ask for them).
  [[nodiscard]] HostCounters counters() const;
  /// Whether the config asked for counters at all (so exports can tell
  /// "not requested" from "requested but unavailable").
  [[nodiscard]] bool counters_requested() const { return cfg_.counters; }

 private:
  // Same open-addressed (phase, level, rank)-packed cell store as the
  // virtual profiler — the pairing invariant is easiest to keep when the
  // two sides share key layout and iteration order.
  struct Cell {
    std::uint64_t key = ~0ull;
    HostTotals totals;
  };
  struct ShardState {
    bool started = false;
    std::int64_t last_ns = 0;
    std::int64_t total_ns = 0;
    std::uint64_t samples = 0;
    std::uint64_t clamped = 0;
    int num_ranks = 0;
    int max_level = kNoLevel;
    std::vector<Cell> cells = std::vector<Cell>(64);
    std::size_t cells_used = 0;
    std::size_t last_hit = static_cast<std::size_t>(-1);
  };
  static HostTotals& cell(ShardState& s, PhaseId p, int level, mpsim::Rank r);
  static void grow_cells(ShardState& s);
  template <typename Fn>
  void for_each_cell(Fn&& fn) const {
    for (const Cell& c : merged_.cells) {
      if (c.key != ~0ull) fn(c);
    }
    shards_.for_each([&](int, const ShardState& s) {
      for (const Cell& c : s.cells) {
        if (c.key != ~0ull) fn(c);
      }
    });
  }

  HostProfilerConfig cfg_;
  const PhaseProfiler* stamps_;
  SteadyHostClock default_clock_;
  HostClock* clock_;
  HostCounterGroup counter_group_;

  ShardSlots<ShardState> shards_{"obs.host.shards"};
  ShardState merged_;
  std::vector<ShardSample> merged_samples_;
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace pdt::obs
