#include "obs/host_clock.hpp"

#include <chrono>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace pdt::obs {

std::int64_t SteadyHostClock::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#if defined(__linux__)

namespace {

int open_counter(std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // pid = 0, cpu = -1: this process, any CPU.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

std::int64_t read_counter(int fd) {
  if (fd < 0) return 0;
  std::int64_t v = 0;
  if (read(fd, &v, sizeof v) != sizeof v) return 0;
  return v;
}

}  // namespace

HostCounterGroup::~HostCounterGroup() {
  if (cycles_fd_ >= 0) close(cycles_fd_);
  if (instructions_fd_ >= 0) close(instructions_fd_);
}

bool HostCounterGroup::open() {
  if (cycles_fd_ >= 0) return true;
  cycles_fd_ = open_counter(PERF_COUNT_HW_CPU_CYCLES);
  if (cycles_fd_ < 0) return false;  // paranoid kernel / seccomp / no PMU
  instructions_fd_ = open_counter(PERF_COUNT_HW_INSTRUCTIONS);
  return true;
}

void HostCounterGroup::start() {
  for (const int fd : {cycles_fd_, instructions_fd_}) {
    if (fd < 0) continue;
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

HostCounters HostCounterGroup::read() const {
  HostCounters c;
  if (cycles_fd_ < 0) return c;
  c.enabled = true;
  c.cycles = read_counter(cycles_fd_);
  c.instructions = read_counter(instructions_fd_);
  return c;
}

#else  // !__linux__ — the portable fallback: counters stay disabled.

HostCounterGroup::~HostCounterGroup() = default;

bool HostCounterGroup::open() { return false; }

void HostCounterGroup::start() {}

HostCounters HostCounterGroup::read() const { return HostCounters{}; }

#endif

}  // namespace pdt::obs
