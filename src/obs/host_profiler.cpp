#include "obs/host_profiler.hpp"

#include <algorithm>

namespace pdt::obs {

namespace {

// splitmix64 finalizer, identical to the virtual profiler's cell hash.
std::uint64_t hash64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Key layout mirrors PhaseProfiler::pack so host rows sort and pair with
// virtual rows cell-for-cell.
std::uint64_t pack(PhaseId p, int level, mpsim::Rank r) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p)) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(level + 1))
          << 20) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(r));
}

}  // namespace

HostProfiler::HostProfiler(const PhaseProfiler* stamps, HostClock* clock,
                           HostProfilerConfig cfg)
    : cfg_(cfg),
      stamps_(stamps),
      clock_(clock != nullptr ? clock : &default_clock_),
      cells_(64) {
  if (cfg_.counters && counter_group_.open()) counter_group_.start();
}

void HostProfiler::grow_cells() {
  std::vector<Cell> bigger(cells_.size() * 2);
  for (const Cell& c : cells_) {
    if (c.key == ~0ull) continue;
    std::size_t i = hash64(c.key) & (bigger.size() - 1);
    while (bigger[i].key != ~0ull) i = (i + 1) & (bigger.size() - 1);
    bigger[i] = c;
  }
  cells_ = std::move(bigger);
  last_hit_ = static_cast<std::size_t>(-1);
}

HostTotals& HostProfiler::cell(PhaseId p, int level, mpsim::Rank r) {
  const std::uint64_t key = pack(p, level, r);
  if (last_hit_ != static_cast<std::size_t>(-1) &&
      cells_[last_hit_].key == key) {
    return cells_[last_hit_].totals;
  }
  if (cells_used_ * 2 >= cells_.size()) grow_cells();
  std::size_t i = hash64(key) & (cells_.size() - 1);
  while (cells_[i].key != ~0ull && cells_[i].key != key) {
    i = (i + 1) & (cells_.size() - 1);
  }
  if (cells_[i].key == ~0ull) {
    cells_[i].key = key;
    ++cells_used_;
  }
  last_hit_ = i;
  return cells_[i].totals;
}

void HostProfiler::on_charge(mpsim::Rank r, mpsim::ChargeKind kind) {
  const std::int64_t now = clock_->now_ns();
  if (!started_) {
    // The first charge only anchors the interval chain: host work before
    // it belongs to setup (dataset generation, machine construction),
    // not to any simulated segment.
    started_ = true;
    last_ns_ = now;
    return;
  }
  const std::int64_t dt = std::max<std::int64_t>(0, now - last_ns_);
  last_ns_ = now;

  num_ranks_ = std::max(num_ranks_, r + 1);
  const PhaseId p = stamps_ != nullptr ? stamps_->current_phase() : 0;
  const int level = stamps_ != nullptr ? stamps_->current_level() : kNoLevel;
  max_level_ = std::max(max_level_, level);

  HostTotals& t = cell(p, level, r);
  switch (kind) {
    case mpsim::ChargeKind::Compute: t.compute_ns += dt; break;
    case mpsim::ChargeKind::Comm: t.comm_ns += dt; break;
    case mpsim::ChargeKind::Io: t.io_ns += dt; break;
    case mpsim::ChargeKind::Idle: t.idle_ns += dt; break;
  }
  ++t.samples;
  total_ns_ += dt;
  ++samples_;
}

std::vector<HostProfiler::Row> HostProfiler::rows() const {
  std::vector<Row> out;
  out.reserve(cells_used_);
  for (const Cell& c : cells_) {
    if (c.key == ~0ull) continue;
    Row row;
    row.phase = static_cast<PhaseId>(c.key >> 40);
    row.level = static_cast<int>((c.key >> 20) & 0xFFFFFu) - 1;
    row.rank = static_cast<mpsim::Rank>(c.key & 0xFFFFFu);
    row.totals = c.totals;
    out.push_back(row);
  }
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    if (a.phase != b.phase) return a.phase < b.phase;
    if (a.level != b.level) return a.level < b.level;
    return a.rank < b.rank;
  });
  return out;
}

HostTotals HostProfiler::phase_totals(PhaseId p, int level,
                                      bool any_level) const {
  HostTotals sum;
  for (const Cell& c : cells_) {
    if (c.key == ~0ull) continue;
    if (static_cast<PhaseId>(c.key >> 40) != p) continue;
    const int l = static_cast<int>((c.key >> 20) & 0xFFFFFu) - 1;
    if (!any_level && l != level) continue;
    sum += c.totals;
  }
  return sum;
}

HostCounters HostProfiler::counters() const { return counter_group_.read(); }

}  // namespace pdt::obs
