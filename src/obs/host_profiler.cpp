#include "obs/host_profiler.hpp"

#include <algorithm>

namespace pdt::obs {

namespace {

// splitmix64 finalizer, identical to the virtual profiler's cell hash.
std::uint64_t hash64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Key layout mirrors PhaseProfiler::pack so host rows sort and pair with
// virtual rows cell-for-cell.
std::uint64_t pack(PhaseId p, int level, mpsim::Rank r) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p)) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(level + 1))
          << 20) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(r));
}

}  // namespace

HostProfiler::HostProfiler(const PhaseProfiler* stamps, HostClock* clock,
                           HostProfilerConfig cfg)
    : cfg_(cfg),
      stamps_(stamps),
      clock_(clock != nullptr ? clock : &default_clock_) {
  if (cfg_.counters && counter_group_.open()) counter_group_.start();
}

void HostProfiler::grow_cells(ShardState& s) {
  std::vector<Cell> bigger(s.cells.size() * 2);
  for (const Cell& c : s.cells) {
    if (c.key == ~0ull) continue;
    std::size_t i = hash64(c.key) & (bigger.size() - 1);
    while (bigger[i].key != ~0ull) i = (i + 1) & (bigger.size() - 1);
    bigger[i] = c;
  }
  s.cells = std::move(bigger);
  s.last_hit = static_cast<std::size_t>(-1);
}

HostTotals& HostProfiler::cell(ShardState& s, PhaseId p, int level,
                               mpsim::Rank r) {
  const std::uint64_t key = pack(p, level, r);
  if (s.last_hit != static_cast<std::size_t>(-1) &&
      s.cells[s.last_hit].key == key) {
    return s.cells[s.last_hit].totals;
  }
  if (s.cells_used * 2 >= s.cells.size()) grow_cells(s);
  std::size_t i = hash64(key) & (s.cells.size() - 1);
  while (s.cells[i].key != ~0ull && s.cells[i].key != key) {
    i = (i + 1) & (s.cells.size() - 1);
  }
  if (s.cells[i].key == ~0ull) {
    s.cells[i].key = key;
    ++s.cells_used;
  }
  s.last_hit = i;
  return s.cells[i].totals;
}

void HostProfiler::on_charge(mpsim::Rank r, mpsim::ChargeKind kind) {
  ShardState* s = shards_.local();
  if (s == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::int64_t now = clock_->now_ns();
  if (!s->started) {
    // The first charge only anchors the interval chain: host work before
    // it belongs to setup (dataset generation, machine construction),
    // not to any simulated segment.
    s->started = true;
    s->last_ns = now;
    return;
  }
  std::int64_t dt = now - s->last_ns;
  if (dt < 0) {
    // A monotonic clock should never step backwards; clamp to zero but
    // leave the evidence on the clamp counter rather than hiding it.
    dt = 0;
    ++s->clamped;
  }
  s->last_ns = now;

  s->num_ranks = std::max(s->num_ranks, r + 1);
  const PhaseId p = stamps_ != nullptr ? stamps_->current_phase() : 0;
  const int level = stamps_ != nullptr ? stamps_->current_level() : kNoLevel;
  s->max_level = std::max(s->max_level, level);

  HostTotals& t = cell(*s, p, level, r);
  switch (kind) {
    case mpsim::ChargeKind::Compute: t.compute_ns += dt; break;
    case mpsim::ChargeKind::Comm: t.comm_ns += dt; break;
    case mpsim::ChargeKind::Io: t.io_ns += dt; break;
    case mpsim::ChargeKind::Idle: t.idle_ns += dt; break;
  }
  ++t.samples;
  s->total_ns += dt;
  ++s->samples;
}

void HostProfiler::merge() {
  shards_.for_each_mut([&](int i, ShardState& s) {
    merged_samples_.push_back(ShardSample{i, s.samples});
    for (const Cell& c : s.cells) {
      if (c.key == ~0ull) continue;
      const auto p = static_cast<PhaseId>(c.key >> 40);
      const int level = static_cast<int>((c.key >> 20) & 0xFFFFFu) - 1;
      const auto r = static_cast<mpsim::Rank>(c.key & 0xFFFFFu);
      cell(merged_, p, level, r) += c.totals;
    }
    merged_.total_ns += s.total_ns;
    merged_.samples += s.samples;
    merged_.clamped += s.clamped;
    merged_.num_ranks = std::max(merged_.num_ranks, s.num_ranks);
    merged_.max_level = std::max(merged_.max_level, s.max_level);
    // Reset the shard but keep the owner's interval anchor, so charges
    // after the merge keep attributing host time correctly.
    const bool started = s.started;
    const std::int64_t last_ns = s.last_ns;
    s = ShardState{};
    s.started = started;
    s.last_ns = last_ns;
  });
}

std::vector<ShardSample> HostProfiler::shard_samples() const {
  std::vector<ShardSample> out;
  shards_.for_each([&](int i, const ShardState& s) {
    out.push_back(ShardSample{i, s.samples});
  });
  return out;
}

std::int64_t HostProfiler::total_ns() const {
  std::int64_t n = merged_.total_ns;
  shards_.for_each([&](int, const ShardState& s) { n += s.total_ns; });
  return n;
}

std::uint64_t HostProfiler::samples() const {
  std::uint64_t n = merged_.samples;
  shards_.for_each([&](int, const ShardState& s) { n += s.samples; });
  return n;
}

std::uint64_t HostProfiler::clamped() const {
  std::uint64_t n = merged_.clamped;
  shards_.for_each([&](int, const ShardState& s) { n += s.clamped; });
  return n;
}

int HostProfiler::num_ranks() const {
  int n = merged_.num_ranks;
  shards_.for_each(
      [&](int, const ShardState& s) { n = std::max(n, s.num_ranks); });
  return n;
}

int HostProfiler::max_level() const {
  int l = merged_.max_level;
  shards_.for_each(
      [&](int, const ShardState& s) { l = std::max(l, s.max_level); });
  return l;
}

std::vector<HostProfiler::Row> HostProfiler::rows() const {
  std::vector<Row> out;
  for_each_cell([&](const Cell& c) {
    Row row;
    row.phase = static_cast<PhaseId>(c.key >> 40);
    row.level = static_cast<int>((c.key >> 20) & 0xFFFFFu) - 1;
    row.rank = static_cast<mpsim::Rank>(c.key & 0xFFFFFu);
    row.totals = c.totals;
    out.push_back(row);
  });
  std::stable_sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    if (a.phase != b.phase) return a.phase < b.phase;
    if (a.level != b.level) return a.level < b.level;
    return a.rank < b.rank;
  });
  std::size_t w = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (w > 0 && out[w - 1].phase == out[i].phase &&
        out[w - 1].level == out[i].level && out[w - 1].rank == out[i].rank) {
      out[w - 1].totals += out[i].totals;
    } else {
      out[w++] = out[i];
    }
  }
  out.resize(w);
  return out;
}

HostTotals HostProfiler::phase_totals(PhaseId p, int level,
                                      bool any_level) const {
  HostTotals sum;
  for_each_cell([&](const Cell& c) {
    if (static_cast<PhaseId>(c.key >> 40) != p) return;
    const int l = static_cast<int>((c.key >> 20) & 0xFFFFFu) - 1;
    if (!any_level && l != level) return;
    sum += c.totals;
  });
  return sum;
}

HostCounters HostProfiler::counters() const { return counter_group_.read(); }

}  // namespace pdt::obs
