#include "obs/atomic_file.hpp"

#include <cstdio>

#if defined(_WIN32)
#include <process.h>
#define PDT_GETPID _getpid
#else
#include <unistd.h>
#define PDT_GETPID getpid
#endif

namespace pdt::obs {

AtomicFile::AtomicFile(std::string path) : path_(std::move(path)) {
  tmp_path_ = path_ + ".tmp" + std::to_string(PDT_GETPID());
  os_.open(tmp_path_, std::ios::binary | std::ios::trunc);
}

AtomicFile::~AtomicFile() {
  if (committed_) return;
  if (os_.is_open()) os_.close();
  std::remove(tmp_path_.c_str());
}

bool AtomicFile::commit() {
  if (committed_) return true;
  if (!os_.is_open()) return false;
  os_.flush();
  const bool good = os_.good();
  os_.close();
  if (!good || std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return false;
  }
  committed_ = true;
  return true;
}

}  // namespace pdt::obs
