#include "obs/atomic_file.hpp"

#include <atomic>
#include <cstdint>
#include <cstdio>

#if defined(_WIN32)
#include <process.h>
#define PDT_GETPID _getpid
#else
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#define PDT_GETPID getpid
#endif

namespace pdt::obs {

namespace {

// A rename is only durable once the temp file's data AND the directory
// entry are on stable storage: without the fsyncs a power loss shortly
// after commit() can leave either an empty file or no file at the final
// path — exactly the torn-checkpoint case the pdt-ckpt-v1 loader must
// never see presented as "committed". Windows has no directory fsync;
// there the rename alone is the best available barrier.
[[nodiscard]] bool sync_file(const std::string& path) {
#if defined(_WIN32)
  (void)path;
  return true;
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#endif
}

void sync_parent_dir(const std::string& path) {
#if defined(_WIN32)
  (void)path;
#else
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir fsync
  ::fsync(fd);
  ::close(fd);
#endif
}

}  // namespace

AtomicFile::AtomicFile(std::string path) : path_(std::move(path)) {
  // The pid alone is not enough once harnesses run multithreaded: two
  // threads in one process targeting the same path would share a temp
  // file and interleave writes into it. A process-wide counter makes
  // every writer's temp unique; racing writers then resolve at the
  // rename, where the last one wins with a complete file.
  static std::atomic<std::uint64_t> next_writer{0};
  tmp_path_ = path_ + ".tmp" + std::to_string(PDT_GETPID()) + "." +
              std::to_string(next_writer.fetch_add(1,
                                                   std::memory_order_relaxed));
  os_.open(tmp_path_, std::ios::binary | std::ios::trunc);
}

AtomicFile::~AtomicFile() {
  if (committed_) return;
  if (os_.is_open()) os_.close();
  std::remove(tmp_path_.c_str());
}

bool AtomicFile::commit() {
  if (committed_) return true;
  if (!os_.is_open()) return false;
  os_.flush();
  const bool good = os_.good();
  os_.close();
  if (!good || !sync_file(tmp_path_) ||
      std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return false;
  }
  sync_parent_dir(path_);
  committed_ = true;
  return true;
}

}  // namespace pdt::obs
