// Split-decision audit: the model-side sibling of the phase profiler.
//
// SplitAudit implements dtree::SplitObserver and records, for every
// Tree::expand(), *why* the split won: the adopted gain, the best rival
// attribute's gain (the decision margin a voting formulation must
// respect), the (phase, level) stamp active at expansion time, and —
// via the builders' on_feed() annotations — how many records of each
// rank fed the node. Off by default; enabling it never changes the
// grown tree, the simulated clocks, or any pre-existing export (the
// parity suite covers it like every other observer).
//
// Entries carry arena node ids while the tree grows. make_leaf() revokes
// a decision (pruning detached the subtree), so its entry is dropped;
// dtree::model_json() applies the final pairing rule — entries pair 1:1
// with the reachable internal nodes of the finished tree — and rewrites
// ids to canonical.
#pragma once

#include <cstdint>
#include <vector>

#include "dtree/serialize.hpp"
#include "dtree/tree.hpp"
#include "obs/phase.hpp"

namespace pdt::obs {

class SplitAudit final : public dtree::SplitObserver {
 public:
  /// `profiler` supplies the (phase, level) stamp at expand time;
  /// nullptr stamps entries with an empty phase and the node's depth.
  explicit SplitAudit(const PhaseProfiler* profiler = nullptr)
      : profiler_(profiler) {}

  void on_expand(const dtree::Tree& tree, int id,
                 const dtree::SplitDecision& d) override;
  void on_make_leaf(int id) override;
  void on_feed(int id, int rank, std::int64_t records) override;

  /// All live entries (arena node ids, insertion order). Entries whose
  /// decision was revoked by make_leaf() are already gone.
  [[nodiscard]] const std::vector<dtree::SplitAuditEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  const PhaseProfiler* profiler_;
  std::vector<dtree::SplitAuditEntry> entries_;
  /// node id -> index into entries_ + 1 (0 = none); grows with the arena.
  std::vector<std::size_t> index_;
};

}  // namespace pdt::obs
