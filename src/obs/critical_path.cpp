#include "obs/critical_path.hpp"

#include <algorithm>

namespace pdt::obs {

CriticalPathTracer::~CriticalPathTracer() { clear(); }

void CriticalPathTracer::release(std::shared_ptr<Node> n) {
  // Walk the spine iteratively while we hold the last reference; stop as
  // soon as a node is shared (some other chain keeps the rest alive).
  while (n != nullptr && n.use_count() == 1) {
    std::shared_ptr<Node> prev = std::move(n->prev);
    n = std::move(prev);
  }
}

void CriticalPathTracer::ensure_rank(mpsim::Rank r) {
  if (static_cast<std::size_t>(r) >= chains_.size()) {
    chains_.resize(static_cast<std::size_t>(r) + 1);
  }
}

void CriticalPathTracer::on_charge(mpsim::Rank r, mpsim::ChargeKind kind,
                                   mpsim::Time start, mpsim::Time dt,
                                   double /*words_sent*/,
                                   double /*words_received*/) {
  if (dt <= 0.0) return;  // zero-cost charges don't move the clock
  ensure_rank(r);
  const PhaseId phase = profiler_ != nullptr ? profiler_->current_phase() : 0;
  const int level = profiler_ != nullptr ? profiler_->current_level() : kNoLevel;

  std::shared_ptr<Node>& head = chains_[static_cast<std::size_t>(r)];
  if (head != nullptr && head.use_count() == 1 && head->seg.phase == phase &&
      head->seg.level == level && head->seg.kind == kind &&
      head->seg.end_us == start) {
    // Contiguous same-attribution charge on an unshared head: coalesce.
    head->seg.end_us = start + dt;
    return;
  }
  auto node = std::make_shared<Node>();
  node->seg = PathSegment{r, phase, level, kind, start, start + dt};
  node->prev = std::move(head);
  head = std::move(node);
}

void CriticalPathTracer::on_barrier(const std::vector<mpsim::Rank>& members,
                                    mpsim::Rank holder, mpsim::Time /*t*/) {
  ++barriers_;
  mpsim::Rank max_rank = holder;
  for (mpsim::Rank r : members) max_rank = std::max(max_rank, r);
  ensure_rank(max_rank);
  const std::shared_ptr<Node>& holder_chain =
      chains_[static_cast<std::size_t>(holder)];
  for (mpsim::Rank r : members) {
    std::shared_ptr<Node>& chain = chains_[static_cast<std::size_t>(r)];
    if (chain == holder_chain) continue;
    // The member idled up to the holder's time, so its history no longer
    // explains the clock — the holder's does. Adopt it (sharing the
    // spine); the member's own suffix dies here unless shared elsewhere.
    release(std::move(chain));
    chain = holder_chain;
  }
}

CriticalPathTracer::Path CriticalPathTracer::path() const {
  Path p;
  const Node* best = nullptr;
  for (std::size_t r = 0; r < chains_.size(); ++r) {
    const Node* head = chains_[r].get();
    if (head == nullptr) continue;
    if (best == nullptr || head->seg.end_us > best->seg.end_us) {
      best = head;
      p.end_rank = static_cast<mpsim::Rank>(r);
    }
  }
  if (best == nullptr) return p;
  p.max_clock_us = best->seg.end_us;
  for (const Node* n = best; n != nullptr; n = n->prev.get()) {
    p.segments.push_back(n->seg);
  }
  std::reverse(p.segments.begin(), p.segments.end());
  for (std::size_t i = 1; i < p.segments.size(); ++i) {
    if (p.segments[i].rank != p.segments[i - 1].rank) ++p.handoffs;
  }
  return p;
}

void CriticalPathTracer::clear() {
  for (std::shared_ptr<Node>& chain : chains_) release(std::move(chain));
  chains_.clear();
  barriers_ = 0;
}

}  // namespace pdt::obs
