#include "obs/fingerprint.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string_view>
#include <thread>

#include "obs/export.hpp"

#if defined(_WIN32)
#include <winsock2.h>
#else
#include <unistd.h>
extern char** environ;
#endif

// Provenance embedded at configure time (src/obs/CMakeLists.txt runs
// git there); a tarball build that never saw git gets "unknown".
#ifndef PDT_GIT_SHA
#define PDT_GIT_SHA "unknown"
#endif
#ifndef PDT_GIT_DIRTY
#define PDT_GIT_DIRTY 0
#endif
#ifndef PDT_CXX_FLAGS
#define PDT_CXX_FLAGS ""
#endif

namespace pdt::obs {

namespace {

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string cpu_model() {
  std::ifstream is("/proc/cpuinfo");
  std::string line;
  while (std::getline(is, line)) {
    const std::string_view key = "model name";
    if (line.compare(0, key.size(), key) != 0) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) break;
    std::size_t start = colon + 1;
    while (start < line.size() && line[start] == ' ') ++start;
    return line.substr(start);
  }
  return "unknown";
}

std::string host_name() {
#if defined(_WIN32)
  const char* env = std::getenv("COMPUTERNAME");
  return env != nullptr ? env : "unknown";
#else
  char buf[256] = {};
  if (gethostname(buf, sizeof buf - 1) != 0) return "unknown";
  return buf;
#endif
}

std::vector<std::pair<std::string, std::string>> pdt_environment() {
  std::vector<std::pair<std::string, std::string>> out;
#if !defined(_WIN32)
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const std::string_view entry = *e;
    if (entry.substr(0, 4) != "PDT_") continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) continue;
    out.emplace_back(std::string(entry.substr(0, eq)),
                     std::string(entry.substr(eq + 1)));
  }
#endif
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

EnvFingerprint EnvFingerprint::collect() {
  EnvFingerprint fp;
  fp.git_sha = PDT_GIT_SHA;
  fp.git_dirty = PDT_GIT_DIRTY != 0;
  fp.compiler = compiler_id();
  fp.flags = PDT_CXX_FLAGS;
  fp.cpu = cpu_model();
  fp.cores = static_cast<int>(std::thread::hardware_concurrency());
  fp.hostname = host_name();
  const char* threads = std::getenv("PDT_THREADS");
  fp.pdt_threads = threads != nullptr ? threads : "";
  fp.pdt_env = pdt_environment();
  return fp;
}

void write_fingerprint(JsonWriter& w, const EnvFingerprint& fp) {
  w.begin_object();
  w.kv("git_sha", fp.git_sha);
  w.kv("git_dirty", fp.git_dirty);
  w.kv("compiler", fp.compiler);
  w.kv("flags", fp.flags);
  w.kv("cpu", fp.cpu);
  w.kv("cores", fp.cores);
  w.kv("hostname", fp.hostname);
  // Only when the run pinned a thread count: fingerprints written before
  // the field existed (and runs that never set it) keep their bytes.
  if (!fp.pdt_threads.empty()) w.kv("pdt_threads", fp.pdt_threads);
  w.key("env").begin_object();
  for (const auto& [k, v] : fp.pdt_env) w.kv(k, v);
  w.end_object();
  w.end_object();
}

}  // namespace pdt::obs
