// Environment fingerprint: the provenance block every perf artifact
// carries so a number in the cross-run history is never divorced from
// the build and machine that produced it.
//
// A bench envelope without provenance is a point with no coordinates:
// when the pdt-trend registry says "hybrid.P8 got 40% slower between
// run 12 and run 13", the first question is always "same binary? same
// box?". EnvFingerprint answers it: git SHA + dirty flag (embedded at
// configure time by src/obs/CMakeLists.txt), compiler id and the flags
// it was invoked with, CPU model and core count, hostname, and every
// PDT_* environment variable that shaped the run (PDT_SCALE, PDT_HOST,
// ...). bench_util stamps it into every pdt-bench-v1 envelope and
// pdt-events-v1 meta; pdt-trend copies it verbatim into each
// pdt-runs-v1 record.
//
// Everything here is collected once per process (the values cannot
// change mid-run) and written deterministically: env vars sorted by
// name, fixed field order.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace pdt::obs {

class JsonWriter;

struct EnvFingerprint {
  std::string git_sha;    ///< short SHA at configure time ("unknown" outside git)
  bool git_dirty = false; ///< uncommitted changes at configure time
  std::string compiler;   ///< e.g. "gcc 13.2.0" / "clang 17.0.6"
  std::string flags;      ///< CMAKE_CXX_FLAGS + build-type flags
  std::string cpu;        ///< /proc/cpuinfo model name ("unknown" elsewhere)
  int cores = 0;          ///< std::thread::hardware_concurrency()
  std::string hostname;
  /// PDT_THREADS (the requested worker-thread count), "" when unset.
  /// Also present in pdt_env; lifted out so pdt-trend explain can
  /// attribute a perf move to a thread-count change without parsing the
  /// env map.
  std::string pdt_threads;
  /// Every PDT_* environment variable, sorted by name.
  std::vector<std::pair<std::string, std::string>> pdt_env;

  /// Collect the current process's fingerprint. Cheap after the first
  /// call sites cache it; reads /proc/cpuinfo once.
  [[nodiscard]] static EnvFingerprint collect();
};

/// Emit the fingerprint as one JSON object value on `w` (composable —
/// the bench envelopes and event-log meta both embed it).
void write_fingerprint(JsonWriter& w, const EnvFingerprint& fp);

}  // namespace pdt::obs
