// Named-metrics registry: counters, gauges, and histograms that the
// formulations update on their hot paths and the exporters serialize.
//
// Handles (Counter* / Gauge* / Histogram*) are stable for the life of the
// registry, so call sites resolve a metric once and update it with a
// single null-check branch when observability is disabled.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace pdt::obs {

/// Monotonically increasing total. Double-valued so word counts (which
/// the cost model keeps fractional) fit; exported as a number.
class Counter {
 public:
  void add(double v) { value_ += v; }
  void inc() { value_ += 1.0; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Distribution summary: count/sum/min/max plus base-2 exponential
/// buckets (bucket i counts values in [2^(i-1), 2^i), bucket 0 counts
/// values < 1).
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void observe(double v) {
    ++count_;
    sum_ += v;
    min_ = count_ == 1 ? v : std::min(min_, v);
    max_ = count_ == 1 ? v : std::max(max_, v);
    ++buckets_[static_cast<std::size_t>(bucket_of(v))];
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }
  /// Upper bound of bucket i (inclusive lower bounds are the previous
  /// bucket's upper bound).
  [[nodiscard]] static double bucket_bound(int i) {
    return std::ldexp(1.0, i);
  }

  [[nodiscard]] static int bucket_of(double v) {
    if (!(v >= 1.0)) return 0;
    // Clamp before the int cast: log2(huge/inf) would overflow the cast.
    if (v >= std::ldexp(1.0, kBuckets - 2)) return kBuckets - 1;
    const int b = static_cast<int>(std::floor(std::log2(v))) + 1;
    return std::min(b, kBuckets - 1);
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Registry of named metrics. Lookup interns the name on first use;
/// iteration order is lexicographic (deterministic exports).
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name) {
    return counters_[std::string(name)];
  }
  [[nodiscard]] Gauge& gauge(std::string_view name) {
    return gauges_[std::string(name)];
  }
  [[nodiscard]] Histogram& histogram(std::string_view name) {
    return histograms_[std::string(name)];
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  // std::map node stability keeps handles valid across later insertions.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace pdt::obs
