// Named-metrics registry: counters, gauges, and histograms that the
// formulations update on their hot paths and the exporters serialize.
//
// Handles (Counter* / Gauge* / Histogram*) are stable for the life of the
// registry, so call sites resolve a metric once and update it with a
// single null-check branch when observability is disabled.
//
// Thread-safety (DESIGN.md §14): shard-per-thread. A handle resolves
// into the *calling thread's* shard and is thread-affine — each worker
// resolves its own handles and updates them lock-free; the exporting
// accessors return merged-by-value maps folded in shard-id order
// (counters sum, gauges last-set-in-shard-order wins, histograms fold
// bucket-wise). One thread ⇒ one shard ⇒ exports byte-identical to the
// pre-sharding registry. Threads beyond kMaxShards share a
// lock-protected overflow shard (lookup is serialized; such runs are
// out of the determinism contract anyway).
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/threads.hpp"

namespace pdt::obs {

/// Monotonically increasing total. Double-valued so word counts (which
/// the cost model keeps fractional) fit; exported as a number.
class Counter {
 public:
  void add(double v) { value_ += v; }
  void inc() { value_ += 1.0; }
  [[nodiscard]] double value() const { return value_; }

  Counter& operator+=(const Counter& o) {
    value_ += o.value_;
    return *this;
  }

 private:
  double value_ = 0.0;
};

/// Last-write-wins instantaneous value. Tracks whether it was ever set,
/// so the cross-shard fold can tell "set to 0" from "never touched".
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    set_ = true;
  }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool is_set() const { return set_; }

 private:
  double value_ = 0.0;
  bool set_ = false;
};

/// Distribution summary: count/sum/min/max plus base-2 exponential
/// buckets (bucket i counts values in [2^(i-1), 2^i), bucket 0 counts
/// values < 1).
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void observe(double v) {
    ++count_;
    sum_ += v;
    min_ = count_ == 1 ? v : std::min(min_, v);
    max_ = count_ == 1 ? v : std::max(max_, v);
    ++buckets_[static_cast<std::size_t>(bucket_of(v))];
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }
  /// Upper bound of bucket i (inclusive lower bounds are the previous
  /// bucket's upper bound).
  [[nodiscard]] static double bucket_bound(int i) {
    return std::ldexp(1.0, i);
  }

  [[nodiscard]] static int bucket_of(double v) {
    if (!(v >= 1.0)) return 0;
    // Clamp before the int cast: log2(huge/inf) would overflow the cast.
    if (v >= std::ldexp(1.0, kBuckets - 2)) return kBuckets - 1;
    const int b = static_cast<int>(std::floor(std::log2(v))) + 1;
    return std::min(b, kBuckets - 1);
  }

  Histogram& operator+=(const Histogram& o) {
    if (o.count_ == 0) return *this;
    min_ = count_ == 0 ? o.min_ : std::min(min_, o.min_);
    max_ = count_ == 0 ? o.max_ : std::max(max_, o.max_);
    count_ += o.count_;
    sum_ += o.sum_;
    for (int i = 0; i < kBuckets; ++i) {
      buckets_[static_cast<std::size_t>(i)] +=
          o.buckets_[static_cast<std::size_t>(i)];
    }
    return *this;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Registry of named metrics. Lookup interns the name on first use;
/// iteration order is lexicographic (deterministic exports).
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name) {
    if (ShardState* s = shards_.local()) return s->counters[std::string(name)];
    std::lock_guard<InstrumentedMutex> g(overflow_mu_);
    return overflow_.counters[std::string(name)];
  }
  [[nodiscard]] Gauge& gauge(std::string_view name) {
    if (ShardState* s = shards_.local()) return s->gauges[std::string(name)];
    std::lock_guard<InstrumentedMutex> g(overflow_mu_);
    return overflow_.gauges[std::string(name)];
  }
  [[nodiscard]] Histogram& histogram(std::string_view name) {
    if (ShardState* s = shards_.local()) {
      return s->histograms[std::string(name)];
    }
    std::lock_guard<InstrumentedMutex> g(overflow_mu_);
    return overflow_.histograms[std::string(name)];
  }

  /// Merged views, folded in shard-id order (quiesced-callers only).
  [[nodiscard]] std::map<std::string, Counter> counters() const {
    std::map<std::string, Counter> out = merged_.counters;
    for_each_shard([&](const ShardState& s) {
      for (const auto& [name, c] : s.counters) out[name] += c;
    });
    return out;
  }
  [[nodiscard]] std::map<std::string, Gauge> gauges() const {
    std::map<std::string, Gauge> out = merged_.gauges;
    for_each_shard([&](const ShardState& s) {
      for (const auto& [name, g] : s.gauges) {
        Gauge& dst = out[name];
        if (g.is_set()) dst.set(g.value());
      }
    });
    return out;
  }
  [[nodiscard]] std::map<std::string, Histogram> histograms() const {
    std::map<std::string, Histogram> out = merged_.histograms;
    for_each_shard([&](const ShardState& s) {
      for (const auto& [name, h] : s.histograms) out[name] += h;
    });
    return out;
  }

  /// Fold every live shard into the merged store in shard-id order,
  /// recording provenance and resetting the folded shards. Resetting
  /// destroys the shard maps, so a merge() invalidates every previously
  /// resolved handle — re-resolve afterwards (quiesced-callers only).
  void merge() {
    shards_.for_each_mut([&](int i, ShardState& s) {
      merged_samples_.push_back(ShardSample{i, s.size()});
      for (const auto& [name, c] : s.counters) merged_.counters[name] += c;
      for (const auto& [name, g] : s.gauges) {
        Gauge& dst = merged_.gauges[name];
        if (g.is_set()) dst.set(g.value());
      }
      for (const auto& [name, h] : s.histograms) {
        merged_.histograms[name] += h;
      }
      s = ShardState{};
    });
  }

  /// Live per-shard distinct-metric counts, in shard-id order.
  [[nodiscard]] std::vector<ShardSample> shard_samples() const {
    std::vector<ShardSample> out;
    shards_.for_each([&](int i, const ShardState& s) {
      out.push_back(ShardSample{i, s.size()});
    });
    return out;
  }
  [[nodiscard]] const std::vector<ShardSample>& merged_samples() const {
    return merged_samples_;
  }

 private:
  struct ShardState {
    // std::map node stability keeps handles valid across later
    // insertions.
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, Histogram> histograms;

    [[nodiscard]] std::uint64_t size() const {
      return counters.size() + gauges.size() + histograms.size();
    }
  };

  template <typename Fn>
  void for_each_shard(Fn&& fn) const {
    shards_.for_each([&](int, const ShardState& s) { fn(s); });
    std::lock_guard<InstrumentedMutex> g(overflow_mu_);
    fn(overflow_);
  }

  ShardSlots<ShardState> shards_{"obs.metrics.shards"};
  ShardState merged_;
  std::vector<ShardSample> merged_samples_;
  mutable InstrumentedMutex overflow_mu_{"obs.metrics.overflow"};
  ShardState overflow_;
};

}  // namespace pdt::obs
