// Scoped phase profiler for the simulated machine.
//
// Algorithm code opens nestable, named phases ("histogram", "all-reduce",
// "record-shuffle", ...) plus one level scope per tree level; every
// Machine charge (compute / comm / io / idle) issued while a phase is
// open is attributed to the *innermost* open phase at the *current*
// level, producing the per-rank x per-phase x per-level virtual-time
// breakdown the paper argues from qualitatively in Section 5.
//
// The profiler is a passive mpsim::ChargeObserver: attaching it can never
// change simulated time (tests enforce bit-identical max_clock with the
// profiler on and off). When no profiler is attached the cost is one
// branch per charge inside Machine.
//
// Thread-safety (DESIGN.md §14): shard-per-thread. Scope state (the
// phase stack and level) and the accumulation cells live in the calling
// thread's shard, so concurrent charges from a real-thread backend never
// race; interned names and the coalesced timeline are the only shared
// state and sit behind instrumented locks. Folding accessors (rows,
// totals, imbalance) iterate shards in shard-id order and may only run
// after the writing threads have quiesced; a single-thread run uses one
// shard and its exports are byte-identical to the pre-sharding output.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mpsim/observer.hpp"
#include "obs/threads.hpp"

namespace pdt::mpsim {
class EventRecorder;
}  // namespace pdt::mpsim

namespace pdt::obs {

/// Index into PhaseProfiler::phase_names(). 0 is always the implicit
/// "(unattributed)" phase that catches charges outside any scope.
using PhaseId = int;

/// Level value used when no LevelScope is open.
inline constexpr int kNoLevel = -1;

/// Virtual-time totals of one (phase, level, rank) cell.
struct PhaseTotals {
  mpsim::Time compute = 0.0;
  mpsim::Time comm = 0.0;
  mpsim::Time io = 0.0;
  mpsim::Time idle = 0.0;
  double words_sent = 0.0;
  double words_received = 0.0;
  std::uint64_t charges = 0;

  [[nodiscard]] mpsim::Time busy() const { return compute + comm + io; }
  [[nodiscard]] mpsim::Time total() const { return busy() + idle; }

  PhaseTotals& operator+=(const PhaseTotals& o) {
    compute += o.compute;
    comm += o.comm;
    io += o.io;
    idle += o.idle;
    words_sent += o.words_sent;
    words_received += o.words_received;
    charges += o.charges;
    return *this;
  }
};

/// One contiguous span of a rank's virtual timeline, for trace export.
/// Adjacent charges of the same (phase, level, kind) on the same rank are
/// coalesced, so the slice list stays far smaller than the charge count.
struct Slice {
  mpsim::Rank rank = 0;
  mpsim::Time start = 0.0;
  mpsim::Time dur = 0.0;
  PhaseId phase = 0;
  int level = kNoLevel;
  mpsim::ChargeKind kind = mpsim::ChargeKind::Compute;
};

struct ProfilerConfig {
  /// Collect per-charge timeline slices (needed for Perfetto export).
  /// Aggregated per-phase totals are always collected.
  bool timeline = false;
  /// Stop collecting slices beyond this many (aggregates keep going);
  /// truncated() reports whether the cap was hit.
  std::size_t max_slices = 2u << 20;
};

class PhaseProfiler final : public mpsim::ChargeObserver {
 public:
  explicit PhaseProfiler(ProfilerConfig cfg = {});

  /// Open the named phase (nested inside the currently open one, on the
  /// calling thread). Phase names are interned: reusing a name
  /// accumulates into the same row. Prefer the RAII PhaseScope below.
  void open(std::string_view name);
  void close();
  /// Set the tree level attributed to subsequent charges (of the calling
  /// thread); returns the previous level so LevelScope can restore it.
  int set_level(int level);

  /// Forward every open/close to an event recorder, so the execution log
  /// carries the same phase attribution as the profiler. Not owned.
  void set_event_sink(mpsim::EventRecorder* sink) { sink_ = sink; }

  /// Level of the calling thread (kNoLevel if it never set one).
  [[nodiscard]] int current_level() const;
  /// Innermost phase open on the calling thread (0 = unattributed).
  [[nodiscard]] PhaseId current_phase() const;

  // mpsim::ChargeObserver
  void on_charge(mpsim::Rank r, mpsim::ChargeKind kind, mpsim::Time start,
                 mpsim::Time dt, double words_sent,
                 double words_received) override;

  /// Interned phase names; index == PhaseId. phase_names()[0] is
  /// "(unattributed)". Quiesced-readers only.
  [[nodiscard]] const std::vector<std::string>& phase_names() const {
    return names_;
  }
  [[nodiscard]] std::string_view phase_name(PhaseId p) const {
    return names_[static_cast<std::size_t>(p)];
  }

  /// Number of ranks seen so far (== 1 + max rank charged).
  [[nodiscard]] int num_ranks() const;
  /// Highest level seen (kNoLevel if none).
  [[nodiscard]] int max_level() const;

  /// A (phase, level, rank) row of the breakdown.
  struct Row {
    PhaseId phase = 0;
    int level = kNoLevel;
    mpsim::Rank rank = 0;
    PhaseTotals totals;
  };
  /// All nonzero rows, ordered by (phase, level, rank) — deterministic.
  [[nodiscard]] std::vector<Row> rows() const;

  /// Totals of one phase at one level summed over ranks; pass
  /// level == kNoLevel & any_level == true to sum over levels too.
  [[nodiscard]] PhaseTotals phase_totals(PhaseId p, int level,
                                         bool any_level = false) const;
  /// Per-rank totals across all phases at one level (vector indexed by
  /// rank). With any_level == true, sums over levels.
  [[nodiscard]] std::vector<PhaseTotals> level_rank_totals(
      int level, bool any_level = false) const;

  /// max(busy) / mean(busy) over the ranks active at `level`
  /// (1.0 = perfectly balanced; 0.0 when the level did no work).
  [[nodiscard]] double load_imbalance(int level) const;

  [[nodiscard]] const std::vector<Slice>& slices() const { return slices_; }
  [[nodiscard]] bool truncated() const { return truncated_; }
  [[nodiscard]] const ProfilerConfig& config() const { return cfg_; }

  /// Fold every live shard's cells into the merged store, in shard-id
  /// order (the determinism rule), recording per-shard provenance and
  /// resetting the folded shards. Call only after writers quiesced; a
  /// single-thread run never needs it (accessors fold on the fly).
  void merge();

  /// Live per-shard charge counts, in shard-id order.
  [[nodiscard]] std::vector<ShardSample> shard_samples() const;
  /// Provenance of every merge() so far: the shards folded, in fold
  /// order, with the charge counts they contributed.
  [[nodiscard]] const std::vector<ShardSample>& merged_samples() const {
    return merged_samples_;
  }
  /// Charges dropped because the thread registry ran out of shard ids.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] PhaseId intern(std::string_view name);

  // Accumulation cells keyed by (phase, level, rank), stored sparsely:
  // cells[key] with key packed below, one open-addressed table per
  // shard. A one-entry cache covers the "same cell charged repeatedly"
  // pattern on the hot path.
  struct Cell {
    std::uint64_t key = ~0ull;
    PhaseTotals totals;
  };
  struct ShardState {
    std::vector<PhaseId> stack;
    int level = kNoLevel;
    int num_ranks = 0;
    int max_level = kNoLevel;
    std::vector<Cell> cells = std::vector<Cell>(64);
    std::size_t cells_used = 0;
    std::size_t last_hit = static_cast<std::size_t>(-1);
    std::uint64_t samples = 0;
  };
  static std::uint64_t pack(PhaseId p, int level, mpsim::Rank r) {
    // level is >= -1; bias by 1 so it packs as unsigned.
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p)) << 40) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(level + 1))
            << 20) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(r));
  }
  static PhaseTotals& cell(ShardState& s, PhaseId p, int level, mpsim::Rank r);
  static void grow_cells(ShardState& s);
  /// Visit every cell — merged store first, then live shards in shard-id
  /// order. With one shard and no merge this is exactly the pre-sharding
  /// iteration, so folded sums add in the identical order.
  template <typename Fn>
  void for_each_cell(Fn&& fn) const {
    for (const Cell& c : merged_.cells) {
      if (c.key != ~0ull) fn(c);
    }
    shards_.for_each([&](int, const ShardState& s) {
      for (const Cell& c : s.cells) {
        if (c.key != ~0ull) fn(c);
      }
    });
  }

  ProfilerConfig cfg_;
  mpsim::EventRecorder* sink_ = nullptr;
  std::vector<std::string> names_;
  mutable InstrumentedMutex names_mu_{"obs.phase.names"};

  ShardSlots<ShardState> shards_{"obs.phase.shards"};
  ShardState merged_;
  std::vector<ShardSample> merged_samples_;
  std::atomic<std::uint64_t> dropped_{0};

  // The coalesced timeline needs a total order of charges, so it stays
  // shared and lock-protected (charges only take the lock when the
  // timeline is enabled).
  mutable InstrumentedMutex slices_mu_{"obs.phase.timeline"};
  std::vector<Slice> slices_;
  /// Per-rank index of the rank's last slice (for coalescing), or -1.
  std::vector<std::ptrdiff_t> last_slice_;
  bool truncated_ = false;
};

/// RAII phase scope. Null profiler => no-op, so call sites stay
/// branch-cheap when observability is disabled.
class PhaseScope {
 public:
  PhaseScope(PhaseProfiler* p, std::string_view name) : p_(p) {
    if (p_ != nullptr) p_->open(name);
  }
  ~PhaseScope() {
    if (p_ != nullptr) p_->close();
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseProfiler* p_;
};

/// RAII tree-level scope (restores the previous level on exit, so nested
/// expansions of different partitions attribute correctly).
class LevelScope {
 public:
  LevelScope(PhaseProfiler* p, int level) : p_(p) {
    if (p_ != nullptr) prev_ = p_->set_level(level);
  }
  ~LevelScope() {
    if (p_ != nullptr) p_->set_level(prev_);
  }
  LevelScope(const LevelScope&) = delete;
  LevelScope& operator=(const LevelScope&) = delete;

 private:
  PhaseProfiler* p_;
  int prev_ = kNoLevel;
};

}  // namespace pdt::obs
