// Crash-safe JSON artifact writing: temp file + atomic rename.
//
// Every JSON artifact the harnesses emit is consumed downstream by the
// CI gates (pdt-diff, pdt-replay --check, pdt-report double-render). A
// harness killed mid-write used to leave a truncated file at the final
// path, turning the next gate run into a JSON parse error instead of a
// real verdict. AtomicFile writes to `<path>.tmp<pid>.<n>` (n = a
// process-wide writer counter, so concurrent threads never share a
// temp) and renames onto `<path>` only on commit(), so the final path
// either holds the complete previous artifact or the complete new one —
// never a torn write. Two threads racing the same path each commit a
// complete file; the last rename wins.
#pragma once

#include <fstream>
#include <ostream>
#include <string>

namespace pdt::obs {

class AtomicFile {
 public:
  /// Open the temporary sibling of `path` for writing. Check ok()
  /// before streaming: a failed open leaves a null-sink stream.
  explicit AtomicFile(std::string path);
  /// Removes the temp file if commit() was not called (or failed).
  ~AtomicFile();
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  [[nodiscard]] bool ok() const { return os_.is_open() && os_.good(); }
  [[nodiscard]] std::ostream& stream() { return os_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Flush, close, fsync the temp file, rename it onto the final path,
  /// and fsync the containing directory (where the platform allows) so
  /// the committed bytes survive power loss. Returns false (and removes
  /// the temp) on any failure. Idempotent: a second call after success
  /// is a no-op returning true.
  bool commit();

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream os_;
  bool committed_ = false;
};

}  // namespace pdt::obs
