// Critical-path tracer for the simulated machine.
//
// The run's completion time is Machine::max_clock() — but *which* chain of
// work composes it? At every barrier the max-clock member is the "path
// holder": everyone else idled waiting for it, so the critical path up to
// that instant runs entirely through the holder's timeline. The tracer
// maintains, per rank, the chain of (rank, phase, level, kind) segments
// explaining how that rank's clock reached its current value; at a barrier
// every member adopts the holder's chain (a handoff). At the end, the
// chain of the max-clock rank is the critical path of the whole run, and
// its segments telescope bit-exactly from 0 to max_clock — no gaps, no
// overlaps (the conservation tests enforce this).
//
// Chains are persistent cons-lists (shared_ptr spines), so a barrier
// handoff is O(members) pointer copies and the shared prefix is stored
// once. Like every ChargeObserver the tracer is strictly passive:
// attaching it never alters simulated time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mpsim/observer.hpp"
#include "obs/phase.hpp"

namespace pdt::obs {

/// One contiguous span of the critical path, attributed to the innermost
/// phase/level that was open when the time was charged (via the optional
/// PhaseProfiler; without one, phase is 0 and level is kNoLevel).
struct PathSegment {
  mpsim::Rank rank = 0;
  PhaseId phase = 0;
  int level = kNoLevel;
  mpsim::ChargeKind kind = mpsim::ChargeKind::Compute;
  mpsim::Time start_us = 0.0;
  mpsim::Time end_us = 0.0;

  [[nodiscard]] mpsim::Time dur_us() const { return end_us - start_us; }
};

class CriticalPathTracer final : public mpsim::ChargeObserver {
 public:
  /// `profiler` (optional, not owned) supplies phase/level attribution
  /// for segments; it must be the profiler attached to the same machine
  /// so that its current_phase()/current_level() are in sync with the
  /// charges the tracer sees.
  explicit CriticalPathTracer(const PhaseProfiler* profiler = nullptr)
      : profiler_(profiler) {}
  ~CriticalPathTracer() override;

  CriticalPathTracer(const CriticalPathTracer&) = delete;
  CriticalPathTracer& operator=(const CriticalPathTracer&) = delete;

  // mpsim::ChargeObserver
  void on_charge(mpsim::Rank r, mpsim::ChargeKind kind, mpsim::Time start,
                 mpsim::Time dt, double words_sent,
                 double words_received) override;
  void on_barrier(const std::vector<mpsim::Rank>& members, mpsim::Rank holder,
                  mpsim::Time t) override;

  /// The materialized critical path, valid at any point (typically read
  /// after the run; the Machine may already be gone).
  struct Path {
    mpsim::Time max_clock_us = 0.0;  ///< end of the last segment
    mpsim::Rank end_rank = 0;        ///< rank whose chain won
    std::uint64_t handoffs = 0;      ///< rank changes along the path
    std::vector<PathSegment> segments;  ///< in time order, telescoping
  };
  [[nodiscard]] Path path() const;

  /// Barriers observed (on_barrier calls).
  [[nodiscard]] std::uint64_t barriers() const { return barriers_; }

  void clear();

 private:
  struct Node {
    PathSegment seg;
    std::shared_ptr<Node> prev;
  };

  /// Drop a chain reference without recursing down the spine (a deep
  /// chain would otherwise overflow the stack in ~Node).
  static void release(std::shared_ptr<Node> n);
  void ensure_rank(mpsim::Rank r);

  const PhaseProfiler* profiler_;
  std::vector<std::shared_ptr<Node>> chains_;  // indexed by rank
  std::uint64_t barriers_ = 0;
};

}  // namespace pdt::obs
