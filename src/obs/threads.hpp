// Thread sharding for the observability runtime.
//
// Every collector in src/obs was born single-threaded: one serial caller
// drives the simulated machine, so plain member state was race-free by
// construction. The real-thread execution backend (ROADMAP item 1)
// breaks that assumption — N worker threads will charge the machine
// concurrently — so the collectors accumulate into *per-thread shards*
// instead: a process-global ThreadRegistry hands each registering thread
// a dense shard id, each collector keeps one lazily created shard per id
// (the owning thread mutates its shard without locks), and accessors
// fold shards in shard-id order. A single-thread run uses exactly one
// shard, so the fold degenerates to today's iteration and every export
// stays byte-identical (DESIGN.md §14 states the determinism rule).
//
// Reader contract: folding accessors and merge() may only run after the
// writing threads have quiesced (joined, or synchronized through a
// barrier that happens-before the fold). The release/acquire pair on a
// shard slot orders slot *creation*, not the owner's subsequent writes.
//
// The few pieces of genuinely shared collector state that remain
// (interned phase names, the coalesced timeline, shard-slot creation)
// sit behind InstrumentedMutex, which feeds per-lock acquisition /
// contention-wait telemetry into the process-global ContentionRegistry;
// obs::write_threads serializes all of it as pdt-threads-v1.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pdt::obs {

/// Upper bound on concurrently registered threads (== shard slots per
/// collector). Registrations beyond this get no shard; collectors count
/// such samples in their drop counters instead of racing or blocking.
inline constexpr int kMaxShards = 256;

/// Lock-acquisition telemetry of one named mutex (all fields monotonic).
struct ContentionCounter {
  std::atomic<std::uint64_t> acquisitions{0};
  std::atomic<std::uint64_t> contended{0};
  std::atomic<std::uint64_t> wait_ns{0};
};

/// Snapshot row of one named lock, for export.
struct LockStats {
  std::string name;
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  std::uint64_t wait_ns = 0;
};

/// Process-global table of named contention counters. Mutexes sharing a
/// name share a counter (every PhaseProfiler's name-intern lock is one
/// logical lock as far as telemetry goes). Counters live until process
/// exit; stats() snapshots name-sorted for deterministic export order.
class ContentionRegistry {
 public:
  static ContentionRegistry& instance();

  /// Counter for `name`, interning it on first use. The pointer is
  /// stable for the life of the process.
  ContentionCounter* counter(const char* name);

  [[nodiscard]] std::vector<LockStats> stats() const;

 private:
  ContentionRegistry() = default;
  struct Entry {
    std::string name;
    ContentionCounter counter;
  };
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// std::mutex wrapper that feeds a ContentionRegistry counter: every
/// lock() is an acquisition; a lock() that fails the try_lock fast path
/// also counts as contended and accumulates the wait. Satisfies
/// Lockable, so std::lock_guard / std::unique_lock work as usual.
class InstrumentedMutex {
 public:
  explicit InstrumentedMutex(const char* name)
      : counter_(ContentionRegistry::instance().counter(name)) {}
  InstrumentedMutex(const InstrumentedMutex&) = delete;
  InstrumentedMutex& operator=(const InstrumentedMutex&) = delete;

  void lock() {
    if (!mu_.try_lock()) {
      const auto t0 = std::chrono::steady_clock::now();
      mu_.lock();
      const auto waited = std::chrono::steady_clock::now() - t0;
      counter_->contended.fetch_add(1, std::memory_order_relaxed);
      counter_->wait_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                  .count()),
          std::memory_order_relaxed);
    }
    counter_->acquisitions.fetch_add(1, std::memory_order_relaxed);
  }
  bool try_lock() {
    const bool ok = mu_.try_lock();
    if (ok) counter_->acquisitions.fetch_add(1, std::memory_order_relaxed);
    return ok;
  }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
  ContentionCounter* counter_;
};

/// Process-global map from thread to dense shard id. A thread registers
/// on its first current_shard() call and holds the id until it exits
/// (thread_local RAII release), after which the id is reused by the next
/// registration — lowest free id first, so long-lived runs with worker
/// churn keep the shard set dense. Release and re-acquire synchronize
/// through the registry lock, so a reused shard's old writes
/// happen-before its new owner's.
class ThreadRegistry {
 public:
  static ThreadRegistry& instance();

  /// Dense shard id of the calling thread, registering it on first call.
  /// Returns -1 when all kMaxShards ids are in use (the overflow is
  /// counted; callers drop the sample instead of racing).
  static int current_shard();

  struct Stats {
    std::uint64_t registered = 0;  ///< cumulative registrations
    std::uint64_t overflow = 0;    ///< registrations refused (no free id)
    int active = 0;                ///< currently held ids
    int peak_active = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  friend struct ShardLease;
  ThreadRegistry() = default;
  int acquire();
  void release(int shard);

  mutable InstrumentedMutex mu_{"obs.thread_registry"};
  std::array<bool, static_cast<std::size_t>(kMaxShards)> used_{};
  Stats stats_;
};

/// Fixed slot array mapping shard id -> lazily created per-thread state.
/// The owning thread mutates its slot lock-free; for_each / folding
/// callers must observe the quiesce contract documented above.
template <typename T>
class ShardSlots {
 public:
  explicit ShardSlots(const char* lock_name) : create_mu_(lock_name) {}
  ~ShardSlots() {
    for (auto& s : slots_) delete s.load(std::memory_order_acquire);
  }
  ShardSlots(const ShardSlots&) = delete;
  ShardSlots& operator=(const ShardSlots&) = delete;

  /// The calling thread's slot, created on first use; nullptr when the
  /// registry is out of shard ids.
  T* local() {
    const int shard = ThreadRegistry::current_shard();
    return shard < 0 ? nullptr : &slot(shard);
  }

  /// The calling thread's slot if it already exists — never creates, so
  /// const readers (current-stamp queries) stay allocation-free.
  [[nodiscard]] const T* peek_local() const {
    const int shard = ThreadRegistry::current_shard();
    if (shard < 0) return nullptr;
    return slots_[static_cast<std::size_t>(shard)].load(
        std::memory_order_acquire);
  }

  /// Slot for an explicit shard id, created on first use.
  T& slot(int shard) {
    auto& a = slots_[static_cast<std::size_t>(shard)];
    T* p = a.load(std::memory_order_acquire);
    if (p == nullptr) {
      std::lock_guard<InstrumentedMutex> g(create_mu_);
      p = a.load(std::memory_order_relaxed);
      if (p == nullptr) {
        p = new T();
        a.store(p, std::memory_order_release);
      }
    }
    return *p;
  }

  /// Visit every created slot in shard-id order (the determinism rule:
  /// all folds iterate this way).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (int i = 0; i < kMaxShards; ++i) {
      if (const T* p =
              slots_[static_cast<std::size_t>(i)].load(std::memory_order_acquire)) {
        fn(i, *p);
      }
    }
  }
  template <typename Fn>
  void for_each_mut(Fn&& fn) {
    for (int i = 0; i < kMaxShards; ++i) {
      if (T* p =
              slots_[static_cast<std::size_t>(i)].load(std::memory_order_acquire)) {
        fn(i, *p);
      }
    }
  }

  /// Number of created slots.
  [[nodiscard]] int count() const {
    int n = 0;
    for_each([&](int, const T&) { ++n; });
    return n;
  }

 private:
  std::array<std::atomic<T*>, static_cast<std::size_t>(kMaxShards)> slots_{};
  InstrumentedMutex create_mu_;
};

/// Per-shard sample count, as reported by each collector for the
/// pdt-threads-v1 provenance block.
struct ShardSample {
  int shard = 0;
  std::uint64_t samples = 0;
};

}  // namespace pdt::obs
