#include "obs/split_audit.hpp"

#include <string>

namespace pdt::obs {

void SplitAudit::on_expand(const dtree::Tree& tree, int id,
                           const dtree::SplitDecision& d) {
  dtree::SplitAuditEntry e;
  e.node_id = id;
  e.gain = d.gain;
  e.runner_up_gain = d.runner_up_gain;
  e.runner_up_attr = d.runner_up_attr;
  e.level = tree.node(id).depth;
  if (profiler_ != nullptr) {
    e.phase = std::string(profiler_->phase_name(profiler_->current_phase()));
    if (profiler_->current_level() != kNoLevel) {
      e.level = profiler_->current_level();
    }
  }
  if (index_.size() < static_cast<std::size_t>(id) + 1) {
    index_.resize(static_cast<std::size_t>(id) + 1, 0);
  }
  entries_.push_back(std::move(e));
  index_[static_cast<std::size_t>(id)] = entries_.size();
}

void SplitAudit::on_make_leaf(int id) {
  // The decision at `id` was revoked. Entries for the detached subtree
  // become unreachable and are filtered by the export's pairing rule;
  // only this node's own entry must go, or a later re-expansion of the
  // node would leave two entries claiming it.
  if (static_cast<std::size_t>(id) < index_.size() &&
      index_[static_cast<std::size_t>(id)] != 0) {
    const std::size_t at = index_[static_cast<std::size_t>(id)] - 1;
    index_[static_cast<std::size_t>(id)] = 0;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(at));
    for (std::size_t& slot : index_) {
      if (slot > at + 1) --slot;
    }
  }
}

void SplitAudit::on_feed(int id, int rank, std::int64_t records) {
  if (static_cast<std::size_t>(id) >= index_.size() ||
      index_[static_cast<std::size_t>(id)] == 0) {
    return;  // feed for a node that was never expanded (or was revoked)
  }
  dtree::SplitAuditEntry& e = entries_[index_[static_cast<std::size_t>(id)] - 1];
  if (e.per_rank_records.size() < static_cast<std::size_t>(rank) + 1) {
    e.per_rank_records.resize(static_cast<std::size_t>(rank) + 1, 0);
  }
  e.per_rank_records[static_cast<std::size_t>(rank)] += records;
}

}  // namespace pdt::obs
