#include "obs/blame.hpp"

#include <algorithm>
#include <array>
#include <map>

namespace pdt::obs {

std::vector<BlameEdge> blame_edges(const mpsim::EventRecorder& rec) {
  const int p = rec.nprocs();
  std::vector<mpsim::Time> clocks(static_cast<std::size_t>(p), 0.0);
  std::vector<int> last_phase(static_cast<std::size_t>(p), 0);
  std::vector<int> last_level(static_cast<std::size_t>(p), -1);
  const auto at = [](std::vector<mpsim::Time>& v, mpsim::Rank r) -> mpsim::Time& {
    return v[static_cast<std::size_t>(r)];
  };

  // (idler, idler_level, holder, holder_phase) -> accumulated idle.
  std::map<std::array<int, 4>, mpsim::Time> acc;
  const auto blame = [&](mpsim::Rank idler, mpsim::Rank holder,
                         int holder_phase, mpsim::Time idle) {
    if (idle <= 0.0) return;
    acc[{idler, last_level[static_cast<std::size_t>(idler)], holder,
         holder_phase}] += idle;
  };

  using Type = mpsim::ExecEvent::Type;
  for (const mpsim::ExecEvent& e : rec.events()) {
    switch (e.type) {
      case Type::Charge: {
        at(clocks, e.rank) += e.dt_us;
        last_phase[static_cast<std::size_t>(e.rank)] = e.phase;
        last_level[static_cast<std::size_t>(e.rank)] = e.level;
        break;
      }
      case Type::Barrier: {
        mpsim::Time horizon = 0.0;
        for (const mpsim::Rank r : e.members) {
          horizon = std::max(horizon, at(clocks, r));
        }
        // Machine's tie rule: the first member at the horizon holds it.
        mpsim::Rank holder = e.members.empty() ? 0 : e.members.front();
        for (const mpsim::Rank r : e.members) {
          if (at(clocks, r) == horizon) {
            holder = r;
            break;
          }
        }
        for (const mpsim::Rank r : e.members) {
          if (r != holder) {
            blame(r, holder, last_phase[static_cast<std::size_t>(holder)],
                  horizon - at(clocks, r));
          }
          at(clocks, r) = horizon;
        }
        break;
      }
      case Type::Timeout: {
        mpsim::Time horizon = 0.0;
        for (const mpsim::Rank r : e.members) {
          horizon = std::max(horizon, at(clocks, r));
        }
        const mpsim::Time deadline = horizon + rec.cost().t_timeout;
        for (const mpsim::Rank r : e.members) {
          blame(r, e.rank, kRankFailurePhase, deadline - at(clocks, r));
          at(clocks, r) = deadline;
        }
        break;
      }
      case Type::Wait: {
        // Absolute-time wait: no holder identity to blame.
        if (e.until_us > at(clocks, e.rank)) at(clocks, e.rank) = e.until_us;
        break;
      }
      case Type::WaitFor: {
        const mpsim::Time target = at(clocks, e.peer);
        blame(e.rank, e.peer, last_phase[static_cast<std::size_t>(e.peer)],
              target - at(clocks, e.rank));
        if (target > at(clocks, e.rank)) at(clocks, e.rank) = target;
        break;
      }
      case Type::Collective:
        break;  // annotation only — no clock effect
    }
  }

  std::vector<BlameEdge> out;
  out.reserve(acc.size());
  for (const auto& [key, idle] : acc) {
    BlameEdge edge;
    edge.idler = key[0];
    edge.idler_level = key[1];
    edge.holder = key[2];
    edge.holder_phase = key[3];
    edge.idle_us = idle;
    const mpsim::Time total = at(clocks, edge.idler);
    edge.idle_pct = total > 0.0 ? 100.0 * idle / total : 0.0;
    out.push_back(edge);
  }
  std::sort(out.begin(), out.end(), [](const BlameEdge& a, const BlameEdge& b) {
    if (a.idle_us != b.idle_us) return a.idle_us > b.idle_us;
    if (a.idler != b.idler) return a.idler < b.idler;
    if (a.holder != b.holder) return a.holder < b.holder;
    if (a.idler_level != b.idler_level) return a.idler_level < b.idler_level;
    return a.holder_phase < b.holder_phase;
  });
  return out;
}

}  // namespace pdt::obs
