#include "obs/phase.hpp"

#include <algorithm>
#include <cassert>

#include "mpsim/event_log.hpp"

namespace pdt::obs {

namespace {

std::uint64_t hash64(std::uint64_t x) {
  // splitmix64 finalizer — cheap and well-distributed for packed keys.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

PhaseProfiler::PhaseProfiler(ProfilerConfig cfg)
    : cfg_(cfg), cells_(64) {
  names_.emplace_back("(unattributed)");
}

PhaseId PhaseProfiler::intern(std::string_view name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<PhaseId>(i);
  }
  names_.emplace_back(name);
  return static_cast<PhaseId>(names_.size() - 1);
}

void PhaseProfiler::open(std::string_view name) {
  stack_.push_back(intern(name));
  if (sink_ != nullptr) sink_->open_phase(name);
}

void PhaseProfiler::close() {
  assert(!stack_.empty());
  stack_.pop_back();
  if (sink_ != nullptr) sink_->close_phase();
}

int PhaseProfiler::set_level(int level) {
  const int prev = level_;
  level_ = level;
  max_level_ = std::max(max_level_, level);
  return prev;
}

void PhaseProfiler::grow_cells() {
  std::vector<Cell> bigger(cells_.size() * 2);
  for (const Cell& c : cells_) {
    if (c.key == ~0ull) continue;
    std::size_t i = hash64(c.key) & (bigger.size() - 1);
    while (bigger[i].key != ~0ull) i = (i + 1) & (bigger.size() - 1);
    bigger[i] = c;
  }
  cells_ = std::move(bigger);
  last_hit_ = static_cast<std::size_t>(-1);
}

PhaseTotals& PhaseProfiler::cell(PhaseId p, int level, mpsim::Rank r) {
  const std::uint64_t key = pack(p, level, r);
  if (last_hit_ != static_cast<std::size_t>(-1) &&
      cells_[last_hit_].key == key) {
    return cells_[last_hit_].totals;
  }
  if (cells_used_ * 2 >= cells_.size()) grow_cells();
  std::size_t i = hash64(key) & (cells_.size() - 1);
  while (cells_[i].key != ~0ull && cells_[i].key != key) {
    i = (i + 1) & (cells_.size() - 1);
  }
  if (cells_[i].key == ~0ull) {
    cells_[i].key = key;
    ++cells_used_;
  }
  last_hit_ = i;
  return cells_[i].totals;
}

void PhaseProfiler::on_charge(mpsim::Rank r, mpsim::ChargeKind kind,
                              mpsim::Time start, mpsim::Time dt,
                              double words_sent, double words_received) {
  num_ranks_ = std::max(num_ranks_, r + 1);
  const PhaseId p = current_phase();
  PhaseTotals& t = cell(p, level_, r);
  switch (kind) {
    case mpsim::ChargeKind::Compute: t.compute += dt; break;
    case mpsim::ChargeKind::Comm: t.comm += dt; break;
    case mpsim::ChargeKind::Io: t.io += dt; break;
    case mpsim::ChargeKind::Idle: t.idle += dt; break;
  }
  t.words_sent += words_sent;
  t.words_received += words_received;
  ++t.charges;

  if (!cfg_.timeline) return;
  if (static_cast<std::size_t>(r) >= last_slice_.size()) {
    last_slice_.resize(static_cast<std::size_t>(r) + 1, -1);
  }
  // Coalesce with the rank's previous slice when the timeline is gapless
  // and the attribution is unchanged.
  const std::ptrdiff_t li = last_slice_[static_cast<std::size_t>(r)];
  if (li >= 0) {
    Slice& last = slices_[static_cast<std::size_t>(li)];
    if (last.phase == p && last.level == level_ && last.kind == kind &&
        last.start + last.dur == start) {
      last.dur += dt;
      return;
    }
  }
  if (dt == 0.0) return;  // zero-width slice that cannot extend anything
  if (slices_.size() >= cfg_.max_slices) {
    truncated_ = true;
    return;
  }
  last_slice_[static_cast<std::size_t>(r)] =
      static_cast<std::ptrdiff_t>(slices_.size());
  slices_.push_back(Slice{r, start, dt, p, level_, kind});
}

std::vector<PhaseProfiler::Row> PhaseProfiler::rows() const {
  std::vector<Row> out;
  out.reserve(cells_used_);
  for (const Cell& c : cells_) {
    if (c.key == ~0ull) continue;
    Row row;
    row.phase = static_cast<PhaseId>(c.key >> 40);
    row.level = static_cast<int>((c.key >> 20) & 0xFFFFFu) - 1;
    row.rank = static_cast<mpsim::Rank>(c.key & 0xFFFFFu);
    row.totals = c.totals;
    out.push_back(row);
  }
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    if (a.phase != b.phase) return a.phase < b.phase;
    if (a.level != b.level) return a.level < b.level;
    return a.rank < b.rank;
  });
  return out;
}

PhaseTotals PhaseProfiler::phase_totals(PhaseId p, int level,
                                        bool any_level) const {
  PhaseTotals sum;
  for (const Cell& c : cells_) {
    if (c.key == ~0ull) continue;
    if (static_cast<PhaseId>(c.key >> 40) != p) continue;
    const int l = static_cast<int>((c.key >> 20) & 0xFFFFFu) - 1;
    if (!any_level && l != level) continue;
    sum += c.totals;
  }
  return sum;
}

std::vector<PhaseTotals> PhaseProfiler::level_rank_totals(
    int level, bool any_level) const {
  std::vector<PhaseTotals> out(static_cast<std::size_t>(num_ranks_));
  for (const Cell& c : cells_) {
    if (c.key == ~0ull) continue;
    const int l = static_cast<int>((c.key >> 20) & 0xFFFFFu) - 1;
    if (!any_level && l != level) continue;
    out[c.key & 0xFFFFFu] += c.totals;
  }
  return out;
}

double PhaseProfiler::load_imbalance(int level) const {
  const std::vector<PhaseTotals> per_rank = level_rank_totals(level);
  mpsim::Time max = 0.0;
  mpsim::Time sum = 0.0;
  int active = 0;
  for (const PhaseTotals& t : per_rank) {
    const mpsim::Time busy = t.busy();
    if (busy <= 0.0 && t.idle <= 0.0) continue;
    max = std::max(max, busy);
    sum += busy;
    ++active;
  }
  if (active == 0 || sum <= 0.0) return 0.0;
  return max / (sum / active);
}

}  // namespace pdt::obs
