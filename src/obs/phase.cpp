#include "obs/phase.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "mpsim/event_log.hpp"

namespace pdt::obs {

namespace {

std::uint64_t hash64(std::uint64_t x) {
  // splitmix64 finalizer — cheap and well-distributed for packed keys.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

PhaseProfiler::PhaseProfiler(ProfilerConfig cfg) : cfg_(cfg) {
  names_.emplace_back("(unattributed)");
}

PhaseId PhaseProfiler::intern(std::string_view name) {
  std::lock_guard<InstrumentedMutex> g(names_mu_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<PhaseId>(i);
  }
  names_.emplace_back(name);
  return static_cast<PhaseId>(names_.size() - 1);
}

void PhaseProfiler::open(std::string_view name) {
  if (ShardState* s = shards_.local()) s->stack.push_back(intern(name));
  if (sink_ != nullptr) sink_->open_phase(name);
}

void PhaseProfiler::close() {
  if (ShardState* s = shards_.local(); s != nullptr && !s->stack.empty()) {
    s->stack.pop_back();
  }
  if (sink_ != nullptr) sink_->close_phase();
}

int PhaseProfiler::set_level(int level) {
  ShardState* s = shards_.local();
  if (s == nullptr) return kNoLevel;
  const int prev = s->level;
  s->level = level;
  s->max_level = std::max(s->max_level, level);
  return prev;
}

int PhaseProfiler::current_level() const {
  const ShardState* s = shards_.peek_local();
  return s != nullptr ? s->level : kNoLevel;
}

PhaseId PhaseProfiler::current_phase() const {
  const ShardState* s = shards_.peek_local();
  return s != nullptr && !s->stack.empty() ? s->stack.back() : 0;
}

void PhaseProfiler::grow_cells(ShardState& s) {
  std::vector<Cell> bigger(s.cells.size() * 2);
  for (const Cell& c : s.cells) {
    if (c.key == ~0ull) continue;
    std::size_t i = hash64(c.key) & (bigger.size() - 1);
    while (bigger[i].key != ~0ull) i = (i + 1) & (bigger.size() - 1);
    bigger[i] = c;
  }
  s.cells = std::move(bigger);
  s.last_hit = static_cast<std::size_t>(-1);
}

PhaseTotals& PhaseProfiler::cell(ShardState& s, PhaseId p, int level,
                                 mpsim::Rank r) {
  const std::uint64_t key = pack(p, level, r);
  if (s.last_hit != static_cast<std::size_t>(-1) &&
      s.cells[s.last_hit].key == key) {
    return s.cells[s.last_hit].totals;
  }
  if (s.cells_used * 2 >= s.cells.size()) grow_cells(s);
  std::size_t i = hash64(key) & (s.cells.size() - 1);
  while (s.cells[i].key != ~0ull && s.cells[i].key != key) {
    i = (i + 1) & (s.cells.size() - 1);
  }
  if (s.cells[i].key == ~0ull) {
    s.cells[i].key = key;
    ++s.cells_used;
  }
  s.last_hit = i;
  return s.cells[i].totals;
}

void PhaseProfiler::on_charge(mpsim::Rank r, mpsim::ChargeKind kind,
                              mpsim::Time start, mpsim::Time dt,
                              double words_sent, double words_received) {
  ShardState* s = shards_.local();
  if (s == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  s->num_ranks = std::max(s->num_ranks, r + 1);
  ++s->samples;
  const PhaseId p = s->stack.empty() ? 0 : s->stack.back();
  PhaseTotals& t = cell(*s, p, s->level, r);
  switch (kind) {
    case mpsim::ChargeKind::Compute: t.compute += dt; break;
    case mpsim::ChargeKind::Comm: t.comm += dt; break;
    case mpsim::ChargeKind::Io: t.io += dt; break;
    case mpsim::ChargeKind::Idle: t.idle += dt; break;
  }
  t.words_sent += words_sent;
  t.words_received += words_received;
  ++t.charges;

  if (!cfg_.timeline) return;
  std::lock_guard<InstrumentedMutex> g(slices_mu_);
  if (static_cast<std::size_t>(r) >= last_slice_.size()) {
    last_slice_.resize(static_cast<std::size_t>(r) + 1, -1);
  }
  // Coalesce with the rank's previous slice when the timeline is gapless
  // and the attribution is unchanged.
  const std::ptrdiff_t li = last_slice_[static_cast<std::size_t>(r)];
  if (li >= 0) {
    Slice& last = slices_[static_cast<std::size_t>(li)];
    if (last.phase == p && last.level == s->level && last.kind == kind &&
        last.start + last.dur == start) {
      last.dur += dt;
      return;
    }
  }
  if (dt == 0.0) return;  // zero-width slice that cannot extend anything
  if (slices_.size() >= cfg_.max_slices) {
    truncated_ = true;
    return;
  }
  last_slice_[static_cast<std::size_t>(r)] =
      static_cast<std::ptrdiff_t>(slices_.size());
  slices_.push_back(Slice{r, start, dt, p, s->level, kind});
}

void PhaseProfiler::merge() {
  shards_.for_each_mut([&](int i, ShardState& s) {
    merged_samples_.push_back(ShardSample{i, s.samples});
    for (const Cell& c : s.cells) {
      if (c.key == ~0ull) continue;
      const auto p = static_cast<PhaseId>(c.key >> 40);
      const int level = static_cast<int>((c.key >> 20) & 0xFFFFFu) - 1;
      const auto r = static_cast<mpsim::Rank>(c.key & 0xFFFFFu);
      cell(merged_, p, level, r) += c.totals;
    }
    merged_.num_ranks = std::max(merged_.num_ranks, s.num_ranks);
    merged_.max_level = std::max(merged_.max_level, s.max_level);
    merged_.samples += s.samples;
    // Reset the shard but keep its owner's scope state: a merge at a
    // quiesce point must not re-attribute later charges.
    std::vector<PhaseId> stack = std::move(s.stack);
    const int level = s.level;
    s = ShardState{};
    s.stack = std::move(stack);
    s.level = level;
  });
}

std::vector<ShardSample> PhaseProfiler::shard_samples() const {
  std::vector<ShardSample> out;
  shards_.for_each([&](int i, const ShardState& s) {
    out.push_back(ShardSample{i, s.samples});
  });
  return out;
}

int PhaseProfiler::num_ranks() const {
  int n = merged_.num_ranks;
  shards_.for_each(
      [&](int, const ShardState& s) { n = std::max(n, s.num_ranks); });
  return n;
}

int PhaseProfiler::max_level() const {
  int l = merged_.max_level;
  shards_.for_each(
      [&](int, const ShardState& s) { l = std::max(l, s.max_level); });
  return l;
}

std::vector<PhaseProfiler::Row> PhaseProfiler::rows() const {
  std::vector<Row> out;
  for_each_cell([&](const Cell& c) {
    Row row;
    row.phase = static_cast<PhaseId>(c.key >> 40);
    row.level = static_cast<int>((c.key >> 20) & 0xFFFFFu) - 1;
    row.rank = static_cast<mpsim::Rank>(c.key & 0xFFFFFu);
    row.totals = c.totals;
    out.push_back(row);
  });
  // Shards may hold rows for the same key; fold duplicates after the
  // deterministic (phase, level, rank) sort — stable, so shard order is
  // preserved within a key.
  std::stable_sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    if (a.phase != b.phase) return a.phase < b.phase;
    if (a.level != b.level) return a.level < b.level;
    return a.rank < b.rank;
  });
  std::size_t w = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (w > 0 && out[w - 1].phase == out[i].phase &&
        out[w - 1].level == out[i].level && out[w - 1].rank == out[i].rank) {
      out[w - 1].totals += out[i].totals;
    } else {
      out[w++] = out[i];
    }
  }
  out.resize(w);
  return out;
}

PhaseTotals PhaseProfiler::phase_totals(PhaseId p, int level,
                                        bool any_level) const {
  PhaseTotals sum;
  for_each_cell([&](const Cell& c) {
    if (static_cast<PhaseId>(c.key >> 40) != p) return;
    const int l = static_cast<int>((c.key >> 20) & 0xFFFFFu) - 1;
    if (!any_level && l != level) return;
    sum += c.totals;
  });
  return sum;
}

std::vector<PhaseTotals> PhaseProfiler::level_rank_totals(
    int level, bool any_level) const {
  std::vector<PhaseTotals> out(static_cast<std::size_t>(num_ranks()));
  for_each_cell([&](const Cell& c) {
    const int l = static_cast<int>((c.key >> 20) & 0xFFFFFu) - 1;
    if (!any_level && l != level) return;
    out[c.key & 0xFFFFFu] += c.totals;
  });
  return out;
}

double PhaseProfiler::load_imbalance(int level) const {
  const std::vector<PhaseTotals> per_rank = level_rank_totals(level);
  mpsim::Time max = 0.0;
  mpsim::Time sum = 0.0;
  int active = 0;
  for (const PhaseTotals& t : per_rank) {
    const mpsim::Time busy = t.busy();
    if (busy <= 0.0 && t.idle <= 0.0) continue;
    max = std::max(max, busy);
    sum += busy;
    ++active;
  }
  if (active == 0 || sum <= 0.0) return 0.0;
  return max / (sum / active);
}

}  // namespace pdt::obs
