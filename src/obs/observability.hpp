// The per-run observability bundle: one PhaseProfiler plus one
// MetricsRegistry, attachable to a simulated Machine.
//
// Ownership: the caller (a bench harness, test, or example) owns the
// Observability and points ParOptions::obs at it; the run attaches the
// profiler to its Machine and resolves metric handles. One Observability
// per build_* call — reusing one across runs accumulates, which is only
// what you want when you mean it.
#pragma once

#include "mpsim/machine.hpp"
#include "obs/phase.hpp"
#include "obs/registry.hpp"

namespace pdt::obs {

class Observability {
 public:
  explicit Observability(ProfilerConfig cfg = {}) : profiler_(cfg) {}

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  [[nodiscard]] PhaseProfiler& profiler() { return profiler_; }
  [[nodiscard]] const PhaseProfiler& profiler() const { return profiler_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  /// Attach the profiler as the machine's charge observer.
  void attach(mpsim::Machine& m) { m.set_observer(&profiler_); }

 private:
  PhaseProfiler profiler_;
  MetricsRegistry metrics_;
};

}  // namespace pdt::obs
