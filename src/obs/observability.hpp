// The per-run observability bundle: one PhaseProfiler, one
// CriticalPathTracer, one CommLedger, and one MetricsRegistry, attachable
// to a simulated Machine in a single call.
//
// Ownership: the caller (a bench harness, test, or example) owns the
// Observability and points ParOptions::obs at it; the run attaches the
// observers to its Machine and resolves metric handles. One Observability
// per build_* call — reusing one across runs accumulates, which is only
// what you want when you mean it.
#pragma once

#include <memory>

#include "mpsim/comm_ledger.hpp"
#include "mpsim/event_log.hpp"
#include "mpsim/machine.hpp"
#include "obs/critical_path.hpp"
#include "obs/host_profiler.hpp"
#include "obs/mem_ledger.hpp"
#include "obs/phase.hpp"
#include "obs/registry.hpp"
#include "obs/split_audit.hpp"

namespace pdt::obs {

/// Forwards every Machine event to the profiler, the critical-path
/// tracer, and the memory ledger (Machine holds a single observer slot).
/// Passive like its constituents.
class ObserverFanout final : public mpsim::ChargeObserver {
 public:
  ObserverFanout(PhaseProfiler* profiler, CriticalPathTracer* critical,
                 MemLedger* mem)
      : profiler_(profiler), critical_(critical), mem_(mem) {}

  void on_charge(mpsim::Rank r, mpsim::ChargeKind kind, mpsim::Time start,
                 mpsim::Time dt, double words_sent,
                 double words_received) override {
    profiler_->on_charge(r, kind, start, dt, words_sent, words_received);
    critical_->on_charge(r, kind, start, dt, words_sent, words_received);
    if (host_ != nullptr) host_->on_charge(r, kind);
  }

  void on_barrier(const std::vector<mpsim::Rank>& members, mpsim::Rank holder,
                  mpsim::Time t) override {
    profiler_->on_barrier(members, holder, t);
    critical_->on_barrier(members, holder, t);
  }

  void on_alloc(mpsim::Rank r, mpsim::MemTag tag, std::int64_t bytes,
                std::int64_t live_after) override {
    (void)live_after;
    mem_->on_alloc(r, tag, bytes);
  }

  void on_free(mpsim::Rank r, mpsim::MemTag tag, std::int64_t bytes,
               std::int64_t live_after) override {
    (void)live_after;
    mem_->on_free(r, tag, bytes);
  }

  /// Start forwarding charges to a host profiler (nullptr detaches; the
  /// default). One branch per charge when detached — the virtual path is
  /// untouched either way.
  void set_host(HostProfiler* host) { host_ = host; }

 private:
  PhaseProfiler* profiler_;
  CriticalPathTracer* critical_;
  MemLedger* mem_;
  HostProfiler* host_ = nullptr;
};

class Observability {
 public:
  explicit Observability(ProfilerConfig cfg = {})
      : profiler_(cfg),
        critical_(&profiler_),
        mem_(&profiler_),
        fanout_(&profiler_, &critical_, &mem_) {}

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  [[nodiscard]] PhaseProfiler& profiler() { return profiler_; }
  [[nodiscard]] const PhaseProfiler& profiler() const { return profiler_; }
  [[nodiscard]] CriticalPathTracer& critical_path() { return critical_; }
  [[nodiscard]] const CriticalPathTracer& critical_path() const {
    return critical_;
  }
  [[nodiscard]] mpsim::CommLedger& comm_ledger() { return ledger_; }
  [[nodiscard]] const mpsim::CommLedger& comm_ledger() const {
    return ledger_;
  }
  [[nodiscard]] MemLedger& mem_ledger() { return mem_; }
  [[nodiscard]] const MemLedger& mem_ledger() const { return mem_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  /// Turn on event-sourced execution logging: creates the owned
  /// EventRecorder (idempotent) and wires the profiler's phase scopes
  /// into it; the next attach() hands it to the machine. Call before the
  /// run you want captured; serialize with obs::write_events afterwards.
  mpsim::EventRecorder& enable_event_log() {
    if (recorder_ == nullptr) {
      recorder_ = std::make_unique<mpsim::EventRecorder>();
      profiler_.set_event_sink(recorder_.get());
    }
    return *recorder_;
  }
  /// The owned recorder, or nullptr when event logging is off.
  [[nodiscard]] const mpsim::EventRecorder* event_log() const {
    return recorder_.get();
  }

  /// Turn on host (wall-clock) profiling: creates the owned HostProfiler
  /// riding the virtual profiler's (phase, level) stamps and wires it
  /// into the observer fanout (idempotent — the config of the first call
  /// wins). Strictly passive: the virtual clocks, trees, and every
  /// pre-existing export stay bit-identical (the parity suite enforces
  /// it). Serialize with obs::write_host afterwards.
  HostProfiler& enable_host_profiler(HostProfilerConfig cfg = {},
                                     HostClock* clock = nullptr) {
    if (host_ == nullptr) {
      host_ = std::make_unique<HostProfiler>(&profiler_, clock, cfg);
      fanout_.set_host(host_.get());
    }
    return *host_;
  }
  /// The owned host profiler, or nullptr when host profiling is off.
  [[nodiscard]] const HostProfiler* host_profiler() const {
    return host_.get();
  }

  /// Turn on the split-decision audit: creates the owned SplitAudit
  /// riding the profiler's (phase, level) stamps (idempotent). The run
  /// wires it into its Tree via ParContext / GrowOptions::split_observer;
  /// strictly passive like every other observer here. Serialize with
  /// dtree::model_json afterwards.
  SplitAudit& enable_split_audit() {
    if (split_audit_ == nullptr) {
      split_audit_ = std::make_unique<SplitAudit>(&profiler_);
    }
    return *split_audit_;
  }
  /// The owned audit, or nullptr when split auditing is off.
  [[nodiscard]] const SplitAudit* split_audit() const {
    return split_audit_.get();
  }
  [[nodiscard]] SplitAudit* split_audit() { return split_audit_.get(); }

  /// Attach the profiler + critical-path tracer as the machine's charge
  /// observer and the ledger as its communication ledger (plus the event
  /// recorder when enable_event_log() was called).
  void attach(mpsim::Machine& m) {
    m.set_observer(&fanout_);
    m.set_comm_ledger(&ledger_);
    if (recorder_ != nullptr) m.set_event_recorder(recorder_.get());
  }

 private:
  PhaseProfiler profiler_;
  CriticalPathTracer critical_;
  MemLedger mem_;
  ObserverFanout fanout_;
  mpsim::CommLedger ledger_;
  MetricsRegistry metrics_;
  std::unique_ptr<mpsim::EventRecorder> recorder_;
  std::unique_ptr<HostProfiler> host_;
  std::unique_ptr<SplitAudit> split_audit_;
};

}  // namespace pdt::obs
