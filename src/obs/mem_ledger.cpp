#include "obs/mem_ledger.hpp"

#include <algorithm>
#include <cassert>

namespace pdt::obs {

namespace {

// Unpack helpers for the (tag, phase, level+1, rank) key layout below.
constexpr int kRankBits = 20;
constexpr int kLevelBits = 20;
constexpr int kPhaseBits = 16;

mpsim::MemTag key_tag(std::uint64_t k) {
  return static_cast<mpsim::MemTag>(k >> (kRankBits + kLevelBits + kPhaseBits));
}
PhaseId key_phase(std::uint64_t k) {
  return static_cast<PhaseId>((k >> (kRankBits + kLevelBits)) &
                              ((1u << kPhaseBits) - 1));
}
int key_level(std::uint64_t k) {
  return static_cast<int>((k >> kRankBits) & ((1u << kLevelBits) - 1)) - 1;
}
mpsim::Rank key_rank(std::uint64_t k) {
  return static_cast<mpsim::Rank>(k & ((1u << kRankBits) - 1));
}

}  // namespace

std::uint64_t MemLedger::key(mpsim::MemTag tag, mpsim::Rank r) const {
  const PhaseId phase = profiler_ != nullptr ? profiler_->current_phase() : 0;
  const int level = profiler_ != nullptr ? profiler_->current_level() : kNoLevel;
  return (static_cast<std::uint64_t>(tag)
          << (kRankBits + kLevelBits + kPhaseBits)) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(phase))
          << (kRankBits + kLevelBits)) |
         // level >= -1; bias by 1 so it packs as unsigned.
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(level + 1))
          << kRankBits) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(r));
}

void MemLedger::ensure_rank(mpsim::Rank r) {
  if (static_cast<std::size_t>(r) >= ranks_.size()) {
    ranks_.resize(static_cast<std::size_t>(r) + 1);
  }
}

void MemLedger::on_alloc(mpsim::Rank r, mpsim::MemTag tag,
                         std::int64_t bytes) {
  assert(bytes > 0);
  ensure_rank(r);
  RankAccount& a = ranks_[static_cast<std::size_t>(r)];
  a.live += bytes;
  a.charged += bytes;
  if (a.live > a.peak) a.peak = a.live;
  Cell& c = cells_[key(tag, r)];
  c.live += bytes;
  if (c.live > c.peak) c.peak = c.live;
  ++events_;
}

void MemLedger::on_free(mpsim::Rank r, mpsim::MemTag tag, std::int64_t bytes) {
  assert(bytes > 0);
  ensure_rank(r);
  RankAccount& a = ranks_[static_cast<std::size_t>(r)];
  a.live -= bytes;
  a.released += bytes;
  if (a.live < 0) a.live = 0;
  // A release is attributed to the cell of the *current* scope, which may
  // differ from where the bytes were charged (e.g. records charged at
  // the root, released when a leaf closes levels later). Cell live may
  // therefore legitimately go negative; the per-rank account cannot.
  Cell& c = cells_[key(tag, r)];
  c.live -= bytes;
  ++events_;
}

std::int64_t MemLedger::live_bytes(mpsim::Rank r) const {
  const auto i = static_cast<std::size_t>(r);
  return i < ranks_.size() ? ranks_[i].live : 0;
}

std::int64_t MemLedger::peak_bytes(mpsim::Rank r) const {
  const auto i = static_cast<std::size_t>(r);
  return i < ranks_.size() ? ranks_[i].peak : 0;
}

std::int64_t MemLedger::charged_bytes(mpsim::Rank r) const {
  const auto i = static_cast<std::size_t>(r);
  return i < ranks_.size() ? ranks_[i].charged : 0;
}

std::int64_t MemLedger::released_bytes(mpsim::Rank r) const {
  const auto i = static_cast<std::size_t>(r);
  return i < ranks_.size() ? ranks_[i].released : 0;
}

std::vector<MemLedger::Row> MemLedger::rows() const {
  std::vector<Row> out;
  out.reserve(cells_.size());
  for (const auto& [k, c] : cells_) {
    Row row;
    row.tag = key_tag(k);
    row.phase = key_phase(k);
    row.level = key_level(k);
    row.rank = key_rank(k);
    row.live = c.live;
    row.peak = c.peak;
    out.push_back(row);
  }
  return out;
}

std::vector<MemLedger::Row> MemLedger::top_segments(mpsim::Rank r,
                                                    std::size_t k) const {
  std::vector<Row> mine;
  for (const Row& row : rows()) {
    if (row.rank == r && row.peak > 0) mine.push_back(row);
  }
  std::stable_sort(mine.begin(), mine.end(), [](const Row& a, const Row& b) {
    return a.peak > b.peak;
  });
  if (mine.size() > k) mine.resize(k);
  return mine;
}

}  // namespace pdt::obs
