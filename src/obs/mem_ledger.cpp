#include "obs/mem_ledger.hpp"

#include <algorithm>
#include <cassert>

namespace pdt::obs {

namespace {

// Unpack helpers for the (tag, phase, level+1, rank) key layout below.
constexpr int kRankBits = 20;
constexpr int kLevelBits = 20;
constexpr int kPhaseBits = 16;

mpsim::MemTag key_tag(std::uint64_t k) {
  return static_cast<mpsim::MemTag>(k >> (kRankBits + kLevelBits + kPhaseBits));
}
PhaseId key_phase(std::uint64_t k) {
  return static_cast<PhaseId>((k >> (kRankBits + kLevelBits)) &
                              ((1u << kPhaseBits) - 1));
}
int key_level(std::uint64_t k) {
  return static_cast<int>((k >> kRankBits) & ((1u << kLevelBits) - 1)) - 1;
}
mpsim::Rank key_rank(std::uint64_t k) {
  return static_cast<mpsim::Rank>(k & ((1u << kRankBits) - 1));
}

}  // namespace

std::uint64_t MemLedger::key(mpsim::MemTag tag, mpsim::Rank r) const {
  const PhaseId phase = profiler_ != nullptr ? profiler_->current_phase() : 0;
  const int level = profiler_ != nullptr ? profiler_->current_level() : kNoLevel;
  return (static_cast<std::uint64_t>(tag)
          << (kRankBits + kLevelBits + kPhaseBits)) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(phase))
          << (kRankBits + kLevelBits)) |
         // level >= -1; bias by 1 so it packs as unsigned.
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(level + 1))
          << kRankBits) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(r));
}

void MemLedger::ensure_rank(ShardState& s, mpsim::Rank r) {
  if (static_cast<std::size_t>(r) >= s.ranks.size()) {
    s.ranks.resize(static_cast<std::size_t>(r) + 1);
  }
}

void MemLedger::on_alloc(mpsim::Rank r, mpsim::MemTag tag,
                         std::int64_t bytes) {
  assert(bytes > 0);
  ShardState* s = shards_.local();
  if (s == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ensure_rank(*s, r);
  RankAccount& a = s->ranks[static_cast<std::size_t>(r)];
  a.live += bytes;
  a.charged += bytes;
  if (a.live > a.peak) a.peak = a.live;
  Cell& c = s->cells[key(tag, r)];
  c.live += bytes;
  if (c.live > c.peak) c.peak = c.live;
  ++s->events;
}

void MemLedger::on_free(mpsim::Rank r, mpsim::MemTag tag, std::int64_t bytes) {
  assert(bytes > 0);
  ShardState* s = shards_.local();
  if (s == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ensure_rank(*s, r);
  RankAccount& a = s->ranks[static_cast<std::size_t>(r)];
  a.live -= bytes;
  a.released += bytes;
  // A release is attributed to the shard and cell of the *current*
  // thread/scope, which may differ from where the bytes were charged
  // (records charged at the root, released when a leaf closes levels
  // later — or charged on one worker and released on another). Shard
  // live may therefore legitimately go negative; the clamp to zero is
  // applied at fold time (rank_account), where the cross-shard sum is
  // the per-rank account that cannot go negative.
  Cell& c = s->cells[key(tag, r)];
  c.live -= bytes;
  ++s->events;
}

MemLedger::RankAccount MemLedger::rank_account(mpsim::Rank r) const {
  const auto i = static_cast<std::size_t>(r);
  RankAccount sum;
  if (i < merged_.ranks.size()) sum += merged_.ranks[i];
  shards_.for_each([&](int, const ShardState& s) {
    if (i < s.ranks.size()) sum += s.ranks[i];
  });
  // Shard-local live may be negative (a free landing in a different
  // shard than its alloc); the folded per-rank account cannot be.
  if (sum.live < 0) sum.live = 0;
  return sum;
}

std::map<std::uint64_t, MemLedger::Cell> MemLedger::folded_cells() const {
  std::map<std::uint64_t, Cell> out = merged_.cells;
  shards_.for_each([&](int, const ShardState& s) {
    for (const auto& [k, c] : s.cells) {
      Cell& dst = out[k];
      dst.live += c.live;
      dst.peak += c.peak;
    }
  });
  return out;
}

int MemLedger::num_ranks() const {
  std::size_t n = merged_.ranks.size();
  shards_.for_each(
      [&](int, const ShardState& s) { n = std::max(n, s.ranks.size()); });
  return static_cast<int>(n);
}

std::int64_t MemLedger::live_bytes(mpsim::Rank r) const {
  return rank_account(r).live;
}

std::int64_t MemLedger::peak_bytes(mpsim::Rank r) const {
  return rank_account(r).peak;
}

std::int64_t MemLedger::charged_bytes(mpsim::Rank r) const {
  return rank_account(r).charged;
}

std::int64_t MemLedger::released_bytes(mpsim::Rank r) const {
  return rank_account(r).released;
}

std::uint64_t MemLedger::events() const {
  std::uint64_t n = merged_.events;
  shards_.for_each([&](int, const ShardState& s) { n += s.events; });
  return n;
}

void MemLedger::merge() {
  shards_.for_each_mut([&](int i, ShardState& s) {
    merged_samples_.push_back(ShardSample{i, s.events});
    if (merged_.ranks.size() < s.ranks.size()) {
      merged_.ranks.resize(s.ranks.size());
    }
    for (std::size_t r = 0; r < s.ranks.size(); ++r) {
      merged_.ranks[r] += s.ranks[r];
    }
    for (const auto& [k, c] : s.cells) {
      Cell& dst = merged_.cells[k];
      dst.live += c.live;
      dst.peak += c.peak;
    }
    merged_.events += s.events;
    s = ShardState{};
  });
}

std::vector<ShardSample> MemLedger::shard_samples() const {
  std::vector<ShardSample> out;
  shards_.for_each([&](int i, const ShardState& s) {
    out.push_back(ShardSample{i, s.events});
  });
  return out;
}

std::vector<MemLedger::Row> MemLedger::rows() const {
  const std::map<std::uint64_t, Cell> cells = folded_cells();
  std::vector<Row> out;
  out.reserve(cells.size());
  for (const auto& [k, c] : cells) {
    Row row;
    row.tag = key_tag(k);
    row.phase = key_phase(k);
    row.level = key_level(k);
    row.rank = key_rank(k);
    row.live = c.live;
    row.peak = c.peak;
    out.push_back(row);
  }
  return out;
}

std::vector<MemLedger::Row> MemLedger::top_segments(mpsim::Rank r,
                                                    std::size_t k) const {
  std::vector<Row> mine;
  for (const Row& row : rows()) {
    if (row.rank == r && row.peak > 0) mine.push_back(row);
  }
  std::stable_sort(mine.begin(), mine.end(), [](const Row& a, const Row& b) {
    return a.peak > b.peak;
  });
  if (mine.size() > k) mine.resize(k);
  return mine;
}

}  // namespace pdt::obs
