// Structured exporters for the observability layer:
//
//  * write_perfetto_trace — Chrome/Perfetto `trace_event` JSON of the
//    simulated timeline: one track (tid) per rank, coalesced phase slices
//    as complete ("X") duration events on the virtual clocks, and the
//    machine's collective TraceEvents as flow arrows spanning the group.
//    Load the file at https://ui.perfetto.dev or chrome://tracing.
//
//  * write_metrics — the machine-readable run report ("pdt-metrics-v1"):
//    registry counters/gauges/histograms, the per-phase x per-level x
//    per-rank virtual-time breakdown, and per-level rollups with
//    load-imbalance and comm-to-compute factors. Schema documented in
//    DESIGN.md §Observability.
//
//  * write_comm — the communication report ("pdt-comm-v1"): per-collective
//    and per-level measured-vs-predicted cost aggregates from the
//    CommLedger, the rank x rank traffic matrix, and the critical-path
//    breakdown (top-k segments with blame percentages) from the
//    CriticalPathTracer.
//
//  * write_mem — the memory report ("pdt-mem-v1"): per-rank live/peak
//    byte accounts per MemTag from the Machine, the Section-4 analytic
//    per-rank prediction, and (when a MemLedger observed the run) the
//    (tag, phase, level, rank) attribution segments.
//
//  * write_events — the execution log ("pdt-events-v1"): the complete
//    event-sourced history from an EventRecorder — every charge with its
//    latency decomposition and phase/level stamp, every barrier/timeout
//    with its member set, every collective annotation — plus the final
//    per-rank clocks. `tools/pdt-replay` consumes this to re-execute the
//    run under arbitrary cost models. Schema in DESIGN.md §8. When a
//    HostProfiler observed the same run, a "host" overlay object carries
//    its wall-clock account so replays can chart predicted vs. measured.
//
//  * write_host — the host-time report ("pdt-host-v1"): the HostProfiler's
//    wall-nanosecond account per (phase, level, rank) cell, each cell
//    paired with the virtual microseconds the same cell accumulated, plus
//    a per-phase rollup ranking where simulated and real time diverge.
//    Schema in DESIGN.md §9.
//
//  * write_threads — the concurrency report ("pdt-threads-v1"): the
//    thread registry's shard census, per-collector shard occupancy and
//    merge provenance, the clamp/drop counters, and the lock-contention
//    telemetry from every obs::InstrumentedMutex. Schema in DESIGN.md
//    §14.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "mpsim/trace.hpp"
#include "obs/observability.hpp"

namespace pdt::obs {

struct EnvFingerprint;

/// Minimal streaming JSON writer (comma/nesting management + escaping).
/// Also used by the bench harnesses for their report envelopes.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Object key; must be followed by exactly one value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(bool b);
  JsonWriter& null();

  /// Shorthand: key + value.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void separate();  // emit "," if not the first element at this depth
  void escaped(std::string_view s);

  std::ostream& os_;
  std::vector<bool> first_;   // per open container: next element is first?
  bool after_key_ = false;
};

/// Perfetto/Chrome trace_event JSON. `collectives` (typically
/// Machine::trace().events()) become flow events tying the group's first
/// and last rank tracks together at the collective's completion time.
void write_perfetto_trace(std::ostream& os, const PhaseProfiler& profiler,
                          const std::vector<mpsim::TraceEvent>& collectives = {});

/// Emit the "pdt-metrics-v1" report as one JSON object value on `w`
/// (composable into a larger document — the bench envelopes do this).
void write_metrics(JsonWriter& w, const Observability& o);

/// Standalone file variant of write_metrics.
void write_metrics_report(std::ostream& os, const Observability& o);

/// Emit the "pdt-comm-v1" report as one JSON object value on `w`.
/// `critical` adds the critical_path section; `profiler` resolves its
/// phase names (without one, phase ids are emitted as "phase<N>").
/// `top_k` bounds the exported top_segments list.
void write_comm(JsonWriter& w, const mpsim::CommLedger& ledger,
                const CriticalPathTracer* critical = nullptr,
                const PhaseProfiler* profiler = nullptr, int top_k = 10);

/// Emit the "pdt-mem-v1" report as one JSON object value on `w`.
/// `per_rank` is the Machine's end-of-run byte accounts (ParResult::mem).
/// `predicted` adds the Section-4 analytic terms (skipped when null or
/// empty). `ledger` adds the per-(tag, phase, level, rank) attribution
/// segments; `profiler` resolves its phase names. `top_k` bounds the
/// exported top_segments list.
void write_mem(JsonWriter& w, const std::vector<mpsim::MemStats>& per_rank,
               const mpsim::MemPredicted* predicted = nullptr,
               const MemLedger* ledger = nullptr,
               const PhaseProfiler* profiler = nullptr, int top_k = 10);

/// Run description carried in the event log's `meta` object so offline
/// replays can label surfaces and chart measured isoefficiency against
/// the analytic model without re-deriving workload parameters.
struct EventLogMeta {
  std::string formulation;  ///< "sync" / "part" / "hybrid" / ...
  std::string workload;     ///< e.g. "fig6"
  std::int64_t n = 0;       ///< training records
  int procs = 0;            ///< ranks in the recorded run
  double iso_c = 0.0;       ///< core::isoefficiency_constant (0 = absent)
  /// Build/machine provenance (borrowed; absent when null, so logs
  /// written without one keep their pre-fingerprint bytes).
  const EnvFingerprint* fingerprint = nullptr;
};

/// Emit the "pdt-events-v1" execution log as one JSON object value on
/// `w` (composable into larger documents). `host` (optional) appends a
/// "host" overlay object with the run's measured wall-clock account —
/// absent when null, so pre-host logs are byte-identical.
void write_events(JsonWriter& w, const mpsim::EventRecorder& rec,
                  const EventLogMeta& meta = {},
                  const HostProfiler* host = nullptr);

/// Standalone file variant of write_events.
void write_events_report(std::ostream& os, const mpsim::EventRecorder& rec,
                         const EventLogMeta& meta = {},
                         const HostProfiler* host = nullptr);

/// Emit the "pdt-host-v1" host-time report as one JSON object value on
/// `w`. Every (phase, level) group carries both the host nanoseconds and
/// the paired virtual microseconds from the profiler the HostProfiler
/// rode (the pairing rule: same (phase, level, rank) key on both sides).
void write_host(JsonWriter& w, const HostProfiler& host);

/// Standalone file variant of write_host.
void write_host_report(std::ostream& os, const HostProfiler& host);

/// Emit the "pdt-threads-v1" concurrency report as one JSON object value
/// on `w`: hardware concurrency, the thread registry's shard census,
/// each collector's per-shard sample counts (live shards plus the
/// merge-provenance log of folded shards in fold order), the drop/clamp
/// counters (shardless-thread drops, full event rings, host-clock
/// clamps), and the acquisition/contention/wait telemetry of every
/// instrumented runtime lock. Quiesced-callers only, like every folding
/// accessor it reads.
void write_threads(JsonWriter& w, const Observability& o);

/// Standalone file variant of write_threads.
void write_threads_report(std::ostream& os, const Observability& o);

}  // namespace pdt::obs
