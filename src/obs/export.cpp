#include "obs/export.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace pdt::obs {

// ---------------------------------------------------------------- JSON --

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) os_ << ',';
    first_.back() = false;
  }
}

void JsonWriter::escaped(std::string_view s) {
  os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!first_.empty());
  first_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!first_.empty());
  first_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  escaped(k);
  os_ << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separate();
  escaped(s);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  separate();
  if (!std::isfinite(d)) {
    os_ << "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  separate();
  os_ << i;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  separate();
  os_ << u;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  separate();
  os_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  os_ << "null";
  return *this;
}

// ------------------------------------------------------------ Perfetto --

void write_perfetto_trace(std::ostream& os, const PhaseProfiler& profiler,
                          const std::vector<mpsim::TraceEvent>& collectives) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.kv("generator", "pdtree obs");
  w.kv("clock", "virtual microseconds (mpsim)");
  w.kv("truncated", profiler.truncated());
  w.end_object();
  w.key("traceEvents").begin_array();

  // Track metadata: one process, one named thread per rank.
  w.begin_object();
  w.kv("ph", "M").kv("pid", 0).kv("tid", 0).kv("name", "process_name");
  w.key("args").begin_object().kv("name", "mpsim machine").end_object();
  w.end_object();
  for (int r = 0; r < profiler.num_ranks(); ++r) {
    w.begin_object();
    w.kv("ph", "M").kv("pid", 0).kv("tid", r).kv("name", "thread_name");
    w.key("args")
        .begin_object()
        .kv("name", "rank " + std::to_string(r))
        .end_object();
    w.end_object();
  }

  // Phase slices: complete duration events on the rank's track. "ts" is
  // already in microseconds — the virtual clock's unit.
  for (const Slice& s : profiler.slices()) {
    w.begin_object();
    w.kv("ph", "X").kv("pid", 0).kv("tid", s.rank);
    w.kv("ts", s.start).kv("dur", s.dur);
    w.kv("name", std::string(profiler.phase_name(s.phase)) + "/" +
                     mpsim::to_string(s.kind));
    w.kv("cat", mpsim::to_string(s.kind));
    w.key("args").begin_object();
    w.kv("level", s.level);
    w.kv("phase", profiler.phase_name(s.phase));
    w.end_object();
    w.end_object();
  }

  // Collectives as flow arrows from the group's first to its last rank at
  // the completion time (a point-tied visual cue of who synchronized).
  std::uint64_t flow_id = 1;
  for (const mpsim::TraceEvent& ev : collectives) {
    if (ev.group_size <= 1) continue;
    const int first = ev.group_base;
    const int last = ev.group_base + ev.group_size - 1;
    w.begin_object();
    w.kv("ph", "s").kv("id", flow_id).kv("pid", 0).kv("tid", first);
    w.kv("ts", ev.time).kv("name", mpsim::to_string(ev.kind));
    w.kv("cat", "collective");
    w.key("args").begin_object();
    w.kv("words", ev.words).kv("detail", ev.detail);
    w.end_object();
    w.end_object();
    w.begin_object();
    w.kv("ph", "f").kv("bp", "e").kv("id", flow_id).kv("pid", 0);
    w.kv("tid", last).kv("ts", ev.time);
    w.kv("name", mpsim::to_string(ev.kind)).kv("cat", "collective");
    w.end_object();
    ++flow_id;
  }

  w.end_array();
  w.end_object();
  os << '\n';
}

// ------------------------------------------------------------- metrics --

namespace {

void write_totals_fields(JsonWriter& w, const PhaseTotals& t) {
  w.kv("compute_us", t.compute);
  w.kv("comm_us", t.comm);
  w.kv("io_us", t.io);
  w.kv("idle_us", t.idle);
  w.kv("words_sent", t.words_sent);
  w.kv("words_received", t.words_received);
  w.kv("charges", t.charges);
}

}  // namespace

void write_metrics(JsonWriter& w, const Observability& o) {
  const PhaseProfiler& prof = o.profiler();
  w.begin_object();
  w.kv("schema", "pdt-metrics-v1");
  w.kv("num_ranks", prof.num_ranks());
  w.kv("max_level", prof.max_level());

  // Per-(phase, level, rank) breakdown — the full attribution table.
  w.key("phases").begin_array();
  {
    const auto rows = prof.rows();
    // Group rows by (phase, level); rows() is sorted that way already.
    std::size_t i = 0;
    while (i < rows.size()) {
      const PhaseId phase = rows[i].phase;
      const int level = rows[i].level;
      w.begin_object();
      w.kv("phase", prof.phase_name(phase));
      w.kv("level", level);
      PhaseTotals sum;
      w.key("per_rank").begin_array();
      for (; i < rows.size() && rows[i].phase == phase &&
             rows[i].level == level;
           ++i) {
        sum += rows[i].totals;
        w.begin_object();
        w.kv("rank", rows[i].rank);
        write_totals_fields(w, rows[i].totals);
        w.end_object();
      }
      w.end_array();
      write_totals_fields(w, sum);
      w.end_object();
    }
  }
  w.end_array();

  // Per-level rollup across phases: the Section-5 "where did the time go
  // at this depth" view, with the derived balance factors.
  w.key("levels").begin_array();
  for (int level = -1; level <= prof.max_level(); ++level) {
    const std::vector<PhaseTotals> per_rank = prof.level_rank_totals(level);
    PhaseTotals sum;
    for (const PhaseTotals& t : per_rank) sum += t;
    if (sum.charges == 0) continue;
    w.begin_object();
    w.kv("level", level);
    write_totals_fields(w, sum);
    w.kv("load_imbalance", prof.load_imbalance(level));
    w.kv("comm_to_compute",
         sum.compute > 0.0 ? sum.comm / sum.compute : 0.0);
    w.end_object();
  }
  w.end_array();

  const MetricsRegistry& reg = o.metrics();
  w.key("counters").begin_object();
  for (const auto& [name, c] : reg.counters()) w.kv(name, c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : reg.gauges()) w.kv(name, g.value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : reg.histograms()) {
    w.key(name).begin_object();
    w.kv("count", h.count());
    w.kv("sum", h.sum());
    w.kv("min", h.min());
    w.kv("max", h.max());
    w.kv("mean", h.mean());
    // Sparse buckets: [upper_bound, count] pairs, zero buckets omitted.
    w.key("buckets").begin_array();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h.buckets()[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      w.begin_array().value(Histogram::bucket_bound(b)).value(n).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.end_object();
}

void write_metrics_report(std::ostream& os, const Observability& o) {
  JsonWriter w(os);
  write_metrics(w, o);
  os << '\n';
}

}  // namespace pdt::obs
